// Quickstart: start an in-process NotebookOS deployment, create a
// notebook session (which provisions a 3-replica distributed kernel), run
// a few cells, and observe Raft-replicated state surviving across cells.
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/platform"
	"notebookos/internal/resources"
)

func main() {
	// A 4-server cluster with 8 GPUs each; train() durations compressed
	// 100x so the example finishes in seconds.
	p, err := platform.New(platform.Config{
		Hosts:     4,
		TimeScale: 0.01,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	sess, err := p.CreateSession("quickstart", resources.Spec{
		Millicpus: 8000, MemoryMB: 32 * 1024, GPUs: 2, VRAMGB: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s -> distributed kernel %s (3 replicas)\n\n", sess.ID, sess.KernelID)

	cells := []string{
		"x = 21\ny = x * 2\nprint(\"y =\", y)\n",
		"model = create_model(\"resnet18\")\ndata = load_dataset(\"cifar10\")\nprint(model.name, data.name)\n",
		"result = train(model, data, epochs=2, gpus=2, seconds=30)\nprint(\"loss:\", result.loss)\n",
		"print(\"epochs so far:\", model.epochs_trained)\nprint(\"y still:\", y)\n",
	}
	for i, code := range cells {
		fmt.Printf("In [%d]:\n%s", i+1, code)
		reply, err := p.ExecuteSync(sess.ID, code, 60*time.Second)
		if err != nil {
			log.Fatalf("cell %d: %v", i+1, err)
		}
		if reply.Status != "ok" {
			log.Fatalf("cell %d failed: %s: %s", i+1, reply.EName, reply.EValue)
		}
		fmt.Printf("Out[%d] (replica %d):\n%s\n", i+1, reply.Replica, reply.Output)
	}

	st := p.Status()
	fmt.Printf("cluster: %d GPUs total, %d subscribed, %d committed, SR=%.3f\n",
		st.TotalGPUs, st.SubscribedGPUs, st.CommittedGPUs, st.ClusterSR)
	fmt.Printf("scheduler: %d executions, %d immediate commits, %d migrations\n",
		st.SchedulerStats.Executions, st.SchedulerStats.ImmediateCommits, st.SchedulerStats.Migrations)
}
