// federation simulates NotebookOS across a heterogeneous three-cluster
// federation: a large 8-GPU-host cluster and two smaller ones (one with
// 4-GPU hosts), fed by one arrival stream. It compares the three route
// policies and prints per-cluster and federation-wide (merged) GPU-hour
// accounting — the multi-cluster scenario the paper's single-cluster
// evaluation points toward.
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/resources"
	"notebookos/internal/sim"
	"notebookos/internal/trace"
)

func main() {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	fmt.Printf("workload: %d sessions, %d training tasks over %.1fh\n\n",
		len(tr.Sessions), tr.NumTasks(), tr.End.Sub(tr.Start).Hours())

	// A deliberately heterogeneous federation: cluster sizes and even GPU
	// shapes differ (c2 runs 4-GPU hosts).
	clusters := []sim.FedClusterSpec{
		{Name: "large", Hosts: 16},
		{Name: "mid", Hosts: 8},
		{Name: "small-4gpu", Hosts: 12, HostCapacity: resources.P316xlarge().Scale(0.5)},
	}

	reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
	fmt.Printf("reservation baseline would bind %.1f GPU-hours\n\n", reserved)

	for _, route := range []federation.RoutePolicy{
		federation.LocalFirst{},
		federation.LeastSubscribed{},
		federation.LatencyAware{},
	} {
		res, err := sim.RunFederated(sim.FedConfig{
			Trace:               tr,
			Clusters:            clusters,
			Route:               route,
			InterClusterPenalty: 25 * time.Millisecond,
			Seed:                42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %-18s delay-p50=%6.0fms p99=%6.1fs remote-exec=%d/%d cross-migrations=%d saved=%.1f GPUh\n",
			route.Name(),
			res.Interactivity.Percentile(50)*1000, res.Interactivity.Percentile(99),
			res.RemoteExecutions, res.Tasks, res.CrossMigrations, res.GPUHoursSaved())
		for _, c := range res.Clusters {
			fmt.Printf("    %-12s sessions=%-3d tasks=%-4d committed=%6.1f GPUh provisioned=%7.1f GPUh\n",
				c.Name, c.PlacedSessions, c.Tasks,
				c.CommittedGPUs.Integral(tr.Start, tr.End),
				c.ProvisionedGPUs.Integral(tr.Start, tr.End))
		}
		fmt.Printf("    %-12s merged committed=%6.1f GPUh (equals the per-cluster sum)\n\n",
			"federation", res.CommittedGPUs.Integral(tr.Start, tr.End))
	}
}
