// idlt-session simulates the paper's motivating workload on the live
// platform: an interactive deep-learning session alternating between
// think time (editing/debugging, GPUs free for others) and short training
// bursts (GPUs bound only while the cell runs) — the usage pattern that
// makes Reservation waste >81% of reserved GPU time (§2.3).
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/platform"
	"notebookos/internal/resources"
)

func main() {
	p, err := platform.New(platform.Config{Hosts: 4, TimeScale: 0.002, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	// Two concurrent users on the same cluster: oversubscription in action.
	alice, err := p.CreateSession("alice", resources.Spec{Millicpus: 16000, MemoryMB: 64 * 1024, GPUs: 4, VRAMGB: 64})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := p.CreateSession("bob", resources.Spec{Millicpus: 16000, MemoryMB: 64 * 1024, GPUs: 4, VRAMGB: 64})
	if err != nil {
		log.Fatal(err)
	}

	type step struct {
		who  string
		sess string
		code string
	}
	steps := []step{
		{"alice", alice.ID, "model = create_model(\"bert\")\ndata = load_dataset(\"imdb\")\nprint(\"alice set up\", model.name)\n"},
		{"bob", bob.ID, "model = create_model(\"vgg16\")\ndata = load_dataset(\"cifar100\")\nprint(\"bob set up\", model.name)\n"},
		{"alice", alice.ID, "r = train(model, data, epochs=1, gpus=4, seconds=120)\nprint(\"alice loss\", r.loss)\n"},
		{"bob", bob.ID, "r = train(model, data, epochs=1, gpus=4, seconds=90)\nprint(\"bob loss\", r.loss)\n"},
		{"alice", alice.ID, "lr = 0.001\nbatch = 64\nprint(\"alice tweaks hyperparameters\", lr, batch)\n"},
		{"alice", alice.ID, "r = train(model, data, epochs=2, gpus=4, seconds=150)\nprint(\"alice loss\", r.loss)\n"},
		{"bob", bob.ID, "e = evaluate(model, data)\nprint(\"bob accuracy\", e.accuracy)\n"},
	}
	for _, s := range steps {
		reply, err := p.ExecuteSync(s.sess, s.code, 60*time.Second)
		if err != nil {
			log.Fatalf("%s: %v", s.who, err)
		}
		status := p.Status()
		fmt.Printf("[%s @ replica %d] %s", s.who, reply.Replica, reply.Output)
		fmt.Printf("    cluster: committed=%d/%d GPUs, SR=%.2f\n",
			status.CommittedGPUs, status.TotalGPUs, status.ClusterSR)
	}

	st := p.Status()
	fmt.Printf("\nfinal: %d executions, immediate commits %d/%d, executor reuse %d\n",
		st.SchedulerStats.Executions, st.SchedulerStats.ImmediateCommits,
		st.SchedulerStats.Executions, st.SchedulerStats.ExecutorReuse)
	fmt.Println("note: between cells both sessions hold ZERO committed GPUs —")
	fmt.Println("that idle time is what Reservation-style platforms waste.")
}
