// fed-autoscale walks through federated pooled autoscaling: the same
// six-cluster federation (a 30-host budget fragmented into a descending
// ramp, the worst case for per-member floors) simulated twice — once with
// each member scaling on its own committed load behind its own MinHosts
// floor, once with a single pooled FederatedAutoscaler decision per
// interval — and once more with a geo-banded latency matrix so crossings
// pay real pairwise distances. It prints the drain per cluster: under
// pooling, small members end near zero hosts while one anchor member
// keeps R, and the GPU-hour saving survives the fragmentation.
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/sim"
	"notebookos/internal/trace"
)

func main() {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	clusters := sim.DefaultFedClusters(6, 30)
	fmt.Printf("workload: %d sessions, %d tasks over %.1fh\n",
		len(tr.Sessions), tr.NumTasks(), tr.End.Sub(tr.Start).Hours())
	fmt.Print("federation: ")
	for i, c := range clusters {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%dh", c.Name, c.Hosts)
	}
	fmt.Println(" (30 hosts total)")
	fmt.Println()

	run := func(label string, mutate func(*sim.FedConfig)) *sim.FedResult {
		fc := sim.FedConfig{
			Trace:    tr,
			Clusters: clusters,
			Route:    federation.LeastSubscribed{},
			Seed:     42,
		}
		if mutate != nil {
			mutate(&fc)
		}
		res, err := sim.RunFederated(fc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s saved=%6.1f GPUh  delay-p50=%4.0fms  scale-ins=%-3d final-hosts=",
			label, res.GPUHoursSaved(), res.Interactivity.Percentile(50)*1000, res.ScaleIns)
		for i, c := range res.Clusters {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Print(c.FinalHosts)
		}
		fmt.Println()
		return res
	}

	// 1. Per-member scaling: every member is pinned at its own floor
	//    (max(Hosts/4, R) hosts), so six mostly-idle members still hold
	//    ~16 hosts between them and the saving goes negative.
	member := run("per-member floors", nil)

	// 2. Pooled scaling: one decision per interval against the
	//    federation-wide expected capacity, one federation-wide floor
	//    (total/4, clamped to R) plus the placement anchor. Small members
	//    drain to near-zero; the saving survives.
	pooled := run("pooled autoscaler", func(fc *sim.FedConfig) {
		fc.PooledAutoscale = true
	})

	// 3. Pooled scaling over a geo-banded latency matrix: members 0-1,
	//    2-3, and 4-5 form bands; crossing one band boundary costs
	//    5ms+40ms, two cost 5ms+80ms. Remote executions and migrations pay
	//    the pair's price, and latency-aware routing ranks on it.
	run("pooled + geo-banded matrix", func(fc *sim.FedConfig) {
		fc.PooledAutoscale = true
		fc.Route = federation.LatencyAware{}
		fc.Latency = federation.GeoBandedMatrix(6, 2, 5*time.Millisecond, 40*time.Millisecond)
	})

	fmt.Printf("\npooling retired the floor: %d live hosts -> %d (Δsaved %.1f GPUh)\n",
		member.FinalHosts(), pooled.FinalHosts(), pooled.GPUHoursSaved()-member.GPUHoursSaved())
	fmt.Println("the anchor invariant keeps one member at >= R hosts, so kernels homed")
	fmt.Println("at drained members still place somewhere via the route policy")
}
