// simulate runs a small policy-comparison study: a 4-hour synthetic IDLT
// excerpt replayed under all four scheduling policies, printing the
// summary rows behind Figs. 8 and 9 of the paper.
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/sim"
	"notebookos/internal/trace"
)

func main() {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	fmt.Printf("workload: %d sessions, %d training tasks over %.1fh\n\n",
		len(tr.Sessions), tr.NumTasks(), tr.End.Sub(tr.Start).Hours())

	reservedHours := tr.ReservedGPUs().Integral(tr.Start, tr.End)
	oracleHours := tr.UtilizedGPUs().Integral(tr.Start, tr.End)
	fmt.Printf("%-16s %12s %12s %12s %12s %12s\n",
		"policy", "gpu-hours", "saved", "delay-p50", "delay-p99", "tct-p50")
	fmt.Printf("%-16s %12.1f %12s %12s %12s %12s\n", "oracle", oracleHours, "-", "-", "-", "-")
	fmt.Printf("%-16s %12.1f %12s %12s %12s %12s\n", "reservation*", reservedHours, "-", "-", "-", "-")

	for _, policy := range []sim.Policy{sim.PolicyReservation, sim.PolicyBatch, sim.PolicyNotebookOS, sim.PolicyLCP} {
		res, err := sim.Run(sim.Config{Trace: tr, Policy: policy, Hosts: 30, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		hours := res.ProvisionedGPUs.Integral(tr.Start, tr.End)
		if policy == sim.PolicyReservation {
			hours = reservedHours
		}
		fmt.Printf("%-16s %12.1f %12.1f %12.2fs %12.2fs %12.1fs\n",
			policy, hours, reservedHours-hours,
			res.Interactivity.Percentile(50), res.Interactivity.Percentile(99),
			res.TCT.Percentile(50))
	}
	fmt.Println("\n* reservation provisions exactly what sessions reserve")
	fmt.Println("expected shape (paper Figs. 8-9): NotebookOS keeps Reservation-class")
	fmt.Println("interactivity while saving most of its GPU-hours; Batch is cheap but slow.")
}
