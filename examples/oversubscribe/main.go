// oversubscribe demonstrates the failed-election -> migration path
// (paper §3.2.3): a tiny cluster is saturated until no replica of a
// kernel can commit its GPUs, every replica YIELDs, and the Global
// Scheduler migrates a replica to a fresh host and resubmits pinned to it.
package main

import (
	"fmt"
	"log"
	"time"

	"notebookos/internal/platform"
	"notebookos/internal/resources"
)

func main() {
	p, err := platform.New(platform.Config{
		Hosts:     4,
		TimeScale: 0.002,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	req := resources.Spec{Millicpus: 8000, MemoryMB: 32 * 1024, GPUs: 8, VRAMGB: 128}
	victim, err := p.CreateSession("victim", req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim session %s requests all 8 GPUs of a host per task\n", victim.ID)

	// Saturate the three hosts carrying the victim's replicas so no
	// replica can bind 8 GPUs.
	blocked := 0
	for _, h := range p.Cluster.Hosts() {
		if h.NumReplicas() > 0 {
			if err := h.Commit("blocker-"+h.ID, resources.Spec{GPUs: 1}); err == nil {
				blocked++
			}
		}
	}
	fmt.Printf("saturated %d replica hosts with interfering work\n\n", blocked)

	fmt.Println("submitting a training cell: all replicas must YIELD -> migration")
	start := time.Now()
	reply, err := p.ExecuteSync(victim.ID,
		"m = create_model(\"gpt2\")\nd = load_dataset(\"cola\")\nr = train(m, d, gpus=8, seconds=60)\nprint(\"trained, loss\", r.loss)\n",
		120*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply after %.2fs (status %s): %s", time.Since(start).Seconds(), reply.Status, reply.Output)

	st := p.Status()
	fmt.Printf("\nscheduler stats: migrations=%d scale-outs=%d failed-migrations=%d\n",
		st.SchedulerStats.Migrations, st.SchedulerStats.ScaleOuts, st.SchedulerStats.FailedMigrations)
	for _, e := range p.Scheduler.Events() {
		fmt.Printf("  event: %-16s %s\n", e.Kind, e.Detail)
	}
	if st.SchedulerStats.Migrations == 0 {
		log.Fatal("expected a migration")
	}
	fmt.Println("\nthe replica now lives on the idle fourth host; the cell executed there.")
}
