// Command nbos-gateway runs a live NotebookOS deployment in one process
// and serves the Jupyter-style HTTP API.
//
// Usage:
//
//	nbos-gateway -addr :8888 -hosts 4 -prewarm 1
//
// Then:
//
//	curl -X POST localhost:8888/api/sessions -d '{"user":"alice","gpus":2}'
//	curl -X POST localhost:8888/api/sessions/sess-0001/execute \
//	     -d '{"code":"m = create_model(\"resnet18\")\nprint(m.name)\n"}'
//	curl localhost:8888/api/cluster
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"notebookos/internal/gateway"
	"notebookos/internal/platform"
)

func main() {
	var (
		addr      = flag.String("addr", ":8888", "listen address")
		hosts     = flag.Int("hosts", 4, "initial GPU servers")
		prewarm   = flag.Int("prewarm", 1, "pre-warmed containers per host")
		timeScale = flag.Float64("timescale", 0.05, "train() duration scale (1.0 = real time)")
		scaleOut  = flag.Bool("scaleout", true, "allow automatic scale-out")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	p, err := platform.New(platform.Config{
		Hosts:             *hosts,
		PrewarmPerHost:    *prewarm,
		TimeScale:         *timeScale,
		EnableScaleOut:    *scaleOut,
		AutoscaleInterval: 30 * time.Second,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("platform: %v", err)
	}
	defer p.Stop()

	log.Printf("NotebookOS gateway listening on %s (%d hosts, %d GPUs)",
		*addr, *hosts, p.Cluster.TotalGPUs())
	if err := http.ListenAndServe(*addr, gateway.New(p)); err != nil {
		log.Fatal(err)
	}
}
