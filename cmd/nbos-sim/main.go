// Command nbos-sim regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	nbos-sim -list
//	nbos-sim -exp fig8 [-seed 42] [-quick]
//	nbos-sim -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"notebookos/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (e.g. fig8), or 'all'")
		seed  = flag.Int64("seed", 42, "random seed")
		quick = flag.Bool("quick", false, "reduced-scale run")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := experiments.Options{Seed: *seed, Quick: *quick}
	run := func(e experiments.Experiment) {
		t0 := time.Now()
		out, err := e.Run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(t0).Seconds())
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
