// Command nbos-sim regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	nbos-sim -list
//	nbos-sim -exp fig8 [-seed 42] [-quick]
//	nbos-sim -exp federation            # multi-cluster scenario family
//	nbos-sim -exp fig12a -shards 4      # shard the trace across 4 workers
//	nbos-sim -exp summer-fed -shards 4  # 90-day trace, federated + sharded
//	nbos-sim -exp fig8 -stream          # simulate from a lazy session stream
//	nbos-sim -exp stream-scale          # 90-day 1M-session bounded-memory run
//	nbos-sim -exp scenario-sweep        # arrival shape x policy x federation
//	nbos-sim -scenario campus-diurnal   # one declarative scenario, all policies
//	nbos-sim -scenario my-workload.json # ... or a JSON trace.ScenarioSpec file
//	nbos-sim -scenario campus-diurnal -faults heavy  # ... under a chaos schedule
//	nbos-sim -exp fault-sweep           # fault intensity x policy x federation
//	nbos-sim -exp all [-jobs 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"notebookos/internal/experiments"
	"notebookos/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (e.g. fig8), or 'all'")
		seed     = flag.Int64("seed", 42, "random seed")
		quick    = flag.Bool("quick", false, "reduced-scale run")
		list     = flag.Bool("list", false, "list experiments")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "concurrent experiments for -exp all (output stays in paper order)")
		shards   = flag.Int("shards", 1, "session-partitioned trace shards per simulation (1 = unsharded; >1 merges parallel workers that lease capacity from a shared pool, so capacity metrics match the unsharded run exactly — see docs/SHARDING.md)")
		legacy   = flag.Bool("legacy-split", false, "with -shards N: use the legacy static capacity split instead of the shared lease pool (independent workers, documented saved-GPUh drift)")
		stream   = flag.Bool("stream", false, "synthesize sessions lazily per shard (sim.RunStreamSharded) instead of replaying a materialized trace; identical output at -shards 1, bounded memory at any scale")
		scenario = flag.String("scenario", "", "run one declarative workload scenario through every policy: a built-in name (see trace.BuiltinScenarios) or a JSON trace.ScenarioSpec file; honors -seed/-quick/-shards/-stream")
		faults   = flag.String("faults", "", "with -scenario: inject a deterministic fault schedule — a built-in profile (light, heavy, az-outage) or a JSON trace.FaultSpec file; overrides the scenario's own faults block (docs/FAULTS.md)")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed, Quick: *quick, Shards: *shards, LegacyShards: *legacy, Stream: *stream}
	if *faults != "" {
		if *scenario == "" {
			fmt.Fprintln(os.Stderr, "-faults requires -scenario (fault sweeps over the figure experiments run via -exp fault-sweep)")
			os.Exit(2)
		}
		f, err := trace.ResolveFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults %s: %v\n", *faults, err)
			os.Exit(1)
		}
		o.Faults = &f
	}
	if *scenario != "" {
		t0 := time.Now()
		out, err := experiments.ScenarioReport(*scenario, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s: %v\n", *scenario, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[scenario %s completed in %.1fs]\n\n", *scenario, time.Since(t0).Seconds())
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *exp == "all" {
		runAll(o, *jobs)
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	t0 := time.Now()
	out, err := e.Run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
		os.Exit(1)
	}
	fmt.Print(out)
	fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(t0).Seconds())
}

// runAll executes every experiment with up to jobs running concurrently.
// Experiment outputs print strictly in paper order — byte-identical to a
// sequential run (simulations are seed-deterministic regardless of
// scheduling) — and stream as soon as every earlier experiment has
// printed, rather than buffering behind the slowest of the whole suite.
func runAll(o experiments.Options, jobs int) {
	all := experiments.All()
	if jobs < 1 {
		jobs = 1
	}
	type outcome struct {
		out  string
		err  error
		took time.Duration
	}
	results := make([]outcome, len(all))
	done := make([]chan struct{}, len(all))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, jobs)
	for i, e := range all {
		go func(i int, e experiments.Experiment) {
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			out, err := e.Run(o)
			results[i] = outcome{out: out, err: err, took: time.Since(t0)}
			close(done[i])
		}(i, e)
	}
	for i, e := range all {
		<-done[i]
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, r.err)
			os.Exit(1)
		}
		fmt.Print(r.out)
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, r.took.Seconds())
	}
}
