// Command nbos-bench-diff is the benchmark regression gate: it collects a
// fresh snapshot of the internal/benchsnap scenarios (or loads one with
// -fresh) and compares it against the committed baseline.
//
// Usage:
//
//	nbos-bench-diff [-baseline BENCH_BASELINE.json] [-fresh snap.json] [-tol 0.001]
//
// Simulation metrics (gpuh_saved, delay_p50_ms, ...) are deterministic
// for the fixed seed, so any relative drift beyond the per-metric
// tolerance fails the gate (exit 1) — as does a scenario or metric
// missing on either side, which means the baseline is stale and must be
// regenerated with `go run ./cmd/nbos-bench-snap`. Timing numbers (ns/op,
// bytes/op, allocs/op) are machine-dependent and stay informational: they
// print as a delta table but never fail the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"notebookos/internal/benchsnap"
)

// metricTolerances loosens specific metrics beyond the default relative
// tolerance. Counter-like metrics (final_hosts, cross_migrations, tasks,
// scale_ins) and integrals are exact replays of a fixed seed, so nothing
// currently needs loosening; the table exists so a future
// machine-sensitive metric can declare itself without weakening the rest.
var metricTolerances = map[string]float64{}

func loadReport(path string) (benchsnap.Report, error) {
	var rep benchsnap.Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// relDrift returns |new-old| relative to |old| (or to 1 when old is ~0,
// so zero-valued baselines still gate on absolute drift).
func relDrift(old, new float64) float64 {
	den := math.Abs(old)
	if den < 1 {
		den = 1
	}
	return math.Abs(new-old) / den
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline snapshot")
	freshPath := flag.String("fresh", "", "pre-collected snapshot to compare (default: collect now)")
	tol := flag.Float64("tol", 0.001, "default per-metric relative tolerance")
	flag.Parse()

	baseline, err := loadReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbos-bench-diff: %v\n", err)
		os.Exit(1)
	}
	var fresh benchsnap.Report
	if *freshPath != "" {
		if fresh, err = loadReport(*freshPath); err != nil {
			fmt.Fprintf(os.Stderr, "nbos-bench-diff: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Println("collecting fresh snapshot...")
		fresh = benchsnap.Collect()
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// Informational timing/memory delta table (never gates).
	fmt.Printf("%-42s %14s %14s %10s %14s %14s %10s %12s\n",
		"scenario (timing, informational)", "base ns/op", "new ns/op", "Δns%",
		"base B/op", "new B/op", "ΔB%", "Δallocs")
	for _, bs := range baseline.Scenarios {
		fs, ok := fresh.Scenario(bs.Name)
		if !ok {
			continue
		}
		dns := 0.0
		if bs.NsPerOp > 0 {
			dns = (float64(fs.NsPerOp)/float64(bs.NsPerOp) - 1) * 100
		}
		db := 0.0
		if bs.BytesPerOp > 0 {
			db = (float64(fs.BytesPerOp)/float64(bs.BytesPerOp) - 1) * 100
		}
		fmt.Printf("%-42s %14d %14d %9.1f%% %14d %14d %9.1f%% %12d\n",
			bs.Name, bs.NsPerOp, fs.NsPerOp, dns,
			bs.BytesPerOp, fs.BytesPerOp, db, fs.AllocsPerOp-bs.AllocsPerOp)
	}
	fmt.Println()

	// Gated metric comparison.
	fmt.Printf("%-42s %-18s %16s %16s %10s\n", "scenario (metrics, gated)", "metric", "baseline", "fresh", "drift")
	for _, bs := range baseline.Scenarios {
		fs, ok := fresh.Scenario(bs.Name)
		if !ok {
			fail("scenario %q in baseline but not in fresh snapshot (stale baseline? regenerate with nbos-bench-snap)", bs.Name)
			continue
		}
		keys := make([]string, 0, len(bs.Metrics))
		for k := range bs.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			old := bs.Metrics[k]
			new, ok := fs.Metrics[k]
			if !ok {
				fail("%s: metric %q missing from fresh snapshot", bs.Name, k)
				continue
			}
			drift := relDrift(old, new)
			// Metrics named *_bytes report memory footprints (peak heap):
			// machine- and GC-timing-dependent, so they print like the
			// timing columns but never gate.
			if strings.HasSuffix(k, "_bytes") {
				fmt.Printf("%-42s %-18s %16.6g %16.6g %9.4f%%  (informational)\n", bs.Name, k, old, new, drift*100)
				continue
			}
			t := *tol
			if mt, ok := metricTolerances[k]; ok {
				t = mt
			}
			mark := ""
			if drift > t {
				mark = "  << FAIL"
				fail("%s: metric %q drifted %.4g%% (baseline %v, fresh %v, tolerance %.4g%%)",
					bs.Name, k, drift*100, old, new, t*100)
			}
			fmt.Printf("%-42s %-18s %16.6g %16.6g %9.4f%%%s\n", bs.Name, k, old, new, drift*100, mark)
		}
		for k := range fs.Metrics {
			if _, ok := bs.Metrics[k]; !ok {
				fail("%s: new metric %q not in baseline (regenerate with nbos-bench-snap)", bs.Name, k)
			}
		}
	}
	for _, fs := range fresh.Scenarios {
		if _, ok := baseline.Scenario(fs.Name); !ok {
			fail("new scenario %q not in baseline (regenerate with nbos-bench-snap)", fs.Name)
		}
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "nbos-bench-diff: %d metric regression(s); if intentional, regenerate the baseline with `go run ./cmd/nbos-bench-snap` and commit it\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("nbos-bench-diff: all gated metrics within tolerance")
}
