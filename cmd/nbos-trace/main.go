// Command nbos-trace generates and characterizes synthetic IDLT traces.
//
// Usage:
//
//	nbos-trace -trace adobe-excerpt -seed 42
//	nbos-trace -trace adobe-summer -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"notebookos/internal/trace"
)

func main() {
	var (
		kind = flag.String("trace", "adobe-excerpt", "adobe-excerpt | adobe-summer | philly | alibaba")
		seed = flag.Int64("seed", 42, "random seed")
		days = flag.Float64("days", 0, "override trace duration in days (0 = default)")
	)
	flag.Parse()

	var cfg trace.GenConfig
	switch *kind {
	case "adobe-excerpt":
		cfg = trace.AdobeExcerptConfig(*seed)
	case "adobe-summer":
		cfg = trace.AdobeSummerConfig(*seed)
	case "philly":
		cfg = trace.PhillyConfig(*seed)
	case "alibaba":
		cfg = trace.AlibabaConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown trace kind %q\n", *kind)
		os.Exit(2)
	}
	if *days > 0 {
		cfg.Duration = time.Duration(*days * 24 * float64(time.Hour))
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("trace %s: %d sessions, %d tasks, %s..%s\n",
		tr.Name, len(tr.Sessions), tr.NumTasks(),
		tr.Start.Format(time.RFC3339), tr.End.Format(time.RFC3339))
	fmt.Printf("durations: %s\n", tr.Durations().Summary("s"))
	fmt.Printf("IATs:      %s\n", tr.IATs().Summary("s"))
	fmt.Printf("sessions:  max active=%.0f\n", tr.ActiveSessions().Max())
	fmt.Printf("trainings: max active=%.0f mean=%.2f\n",
		tr.ActiveTasks().Max(), tr.ActiveTasks().MeanOver(tr.Start, tr.End))
	fmt.Printf("reserved GPU-hours=%.1f utilized GPU-hours=%.1f\n",
		tr.ReservedGPUs().Integral(tr.Start, tr.End),
		tr.UtilizedGPUs().Integral(tr.Start, tr.End))
	fracs := tr.ActiveFractions()
	fmt.Printf("session GPU-active fraction: never=%.1f%% <=5%%=%.1f%%\n",
		fracs.FracBelow(0)*100, fracs.FracBelow(0.05)*100)
}
