// Command nbos-linkcheck verifies that every relative link in the
// repository's Markdown files points at a file or directory that exists —
// the CI docs gate that keeps README.md, docs/, and examples/ from rotting
// as the tree is refactored.
//
// Usage:
//
//	nbos-linkcheck [root]
//
// It walks root (default ".") for *.md files, skipping dot-directories,
// extracts [text](target) and ![alt](target) links, ignores absolute URLs
// (a scheme prefix), mailto:, and pure in-page #fragments, strips any
// #fragment from the rest, and resolves each target against the linking
// file's directory. Broken targets are listed one per line and the exit
// status is 1.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links and images; the target group stops
// at the first ')' or whitespace, which covers every link this repo
// writes (no nested parentheses, no angle-bracketed targets).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// schemeRe detects absolute URLs (https://..., mailto:, etc.).
var schemeRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9+.-]*:`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	checked := 0
	files := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		files++
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if schemeRe.MatchString(target) || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %q (resolved %s)\n", path, m[1], resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("nbos-linkcheck: %d relative links across %d markdown files, %d broken\n",
		checked, files, broken)
	if broken > 0 {
		os.Exit(1)
	}
}
