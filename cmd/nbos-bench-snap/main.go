// Command nbos-bench-snap records a benchmark snapshot of the simulator's
// hot paths for tracking the performance trajectory across PRs. It runs
// the three headline benchmark scenarios (Fig. 8 provisioned GPUs, Fig. 9a
// interactivity, and the autoscaler-factor ablation sweep) via
// testing.Benchmark and writes a JSON summary.
//
// Usage:
//
//	nbos-bench-snap [-o BENCH_BASELINE.json]
//
// The JSON carries both machine-dependent numbers (ns/op) and
// machine-independent ones (allocs/op, simulated-event counts, benchmark
// metric values); compare like with like.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/sim"
	"notebookos/internal/trace"
)

// snapshot is one benchmark scenario's recorded result.
type snapshot struct {
	Name        string             `json:"name"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	GoVersion string     `json:"go_version"`
	GOARCH    string     `json:"goarch"`
	NumCPU    int        `json:"num_cpu"`
	Scenarios []snapshot `json:"scenarios"`
}

func quickTrace() *trace.Trace {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	return trace.MustGenerate(cfg)
}

func record(name string, metrics map[string]float64, fn func(b *testing.B)) snapshot {
	r := testing.Benchmark(fn)
	return snapshot{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     metrics,
	}
}

func main() {
	out := flag.String("o", "BENCH_BASELINE.json", "output path ('-' for stdout)")
	flag.Parse()

	tr := quickTrace()
	rep := report{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}

	// Fig. 8: NotebookOS provisioned-GPU run plus the headline GPU-hours
	// saved for the fixed seed.
	var fig8 map[string]float64
	rep.Scenarios = append(rep.Scenarios, record("fig08-provisioned-gpus", nil, func(b *testing.B) {
		b.ReportAllocs()
		var saved float64
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
			saved = reserved - res.ProvisionedGPUs.Integral(tr.Start, tr.End)
		}
		fig8 = map[string]float64{"gpuh_saved": saved}
	}))
	rep.Scenarios[len(rep.Scenarios)-1].Metrics = fig8

	// Fig. 9a: interactivity-delay p50 for the fixed seed.
	var fig9 map[string]float64
	rep.Scenarios = append(rep.Scenarios, record("fig09a-interactivity", nil, func(b *testing.B) {
		b.ReportAllocs()
		var p50 float64
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			p50 = res.Interactivity.Percentile(50) * 1000
		}
		fig9 = map[string]float64{"delay_p50_ms": p50}
	}))
	rep.Scenarios[len(rep.Scenarios)-1].Metrics = fig9

	// Autoscaler-factor ablation: a four-config parallel sweep, the
	// experiment harness's fan-out pattern.
	rep.Scenarios = append(rep.Scenarios, record("ablation-scale-factor-sweep", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, f := range []float64{1.0, 1.05, 1.25, 1.5} {
				wg.Add(1)
				go func(f float64) {
					defer wg.Done()
					if _, err := sim.Run(sim.Config{
						Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30,
						ScaleFactor: f, Seed: 42,
					}); err != nil {
						b.Error(err)
					}
				}(f)
			}
			wg.Wait()
		}
	}))

	// Federation: a 4-cluster federated run (least-subscribed routing),
	// covering the multi-cluster subsystem's hot path.
	var fed map[string]float64
	rep.Scenarios = append(rep.Scenarios, record("federation-4-clusters", nil, func(b *testing.B) {
		b.ReportAllocs()
		var res *sim.FedResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = sim.RunFederated(sim.FedConfig{
				Trace:    tr,
				Clusters: sim.DefaultFedClusters(4, 30),
				Route:    federation.LeastSubscribed{},
				Seed:     42,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		fed = map[string]float64{
			"gpuh_saved":       res.GPUHoursSaved(),
			"cross_migrations": float64(res.CrossMigrations),
		}
	}))
	rep.Scenarios[len(rep.Scenarios)-1].Metrics = fed

	// Federated pooled autoscaling: a 6-cluster federation with a
	// geo-banded latency matrix and one pooled scaling decision per
	// interval — the fed-autoscale subsystem's hot path. final_hosts is
	// the drained fleet size the per-member floors cannot reach.
	var fedAuto map[string]float64
	rep.Scenarios = append(rep.Scenarios, record("federation-pooled-autoscale-6-clusters", nil, func(b *testing.B) {
		b.ReportAllocs()
		var res *sim.FedResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = sim.RunFederated(sim.FedConfig{
				Trace:           tr,
				Clusters:        sim.DefaultFedClusters(6, 30),
				Route:           federation.LeastSubscribed{},
				Latency:         federation.GeoBandedMatrix(6, 2, 5*time.Millisecond, 40*time.Millisecond),
				PooledAutoscale: true,
				Seed:            42,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		fedAuto = map[string]float64{
			"gpuh_saved":  res.GPUHoursSaved(),
			"final_hosts": float64(res.FinalHosts()),
			"scale_ins":   float64(res.ScaleIns),
		}
	}))
	rep.Scenarios[len(rep.Scenarios)-1].Metrics = fedAuto

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
