// Command nbos-bench-snap records a benchmark snapshot of the simulator's
// hot paths for tracking the performance trajectory across PRs. The
// scenario list lives in internal/benchsnap and is shared with
// cmd/nbos-bench-diff, the CI gate that compares a fresh snapshot against
// the committed baseline.
//
// Usage:
//
//	nbos-bench-snap [-o BENCH_BASELINE.json]
//
// The JSON carries both machine-dependent numbers (ns/op) and
// machine-independent ones (allocs/op, deterministic simulation metric
// values); compare like with like.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"notebookos/internal/benchsnap"
)

func main() {
	out := flag.String("o", "BENCH_BASELINE.json", "output path ('-' for stdout)")
	flag.Parse()

	rep := benchsnap.Collect()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
