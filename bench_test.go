// Package notebookos_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks: `go test -bench=. -benchmem` runs
// each experiment at reduced (quick) scale and reports the headline
// metric of the corresponding figure via b.ReportMetric. Full-scale runs
// are available through cmd/nbos-sim.
package notebookos_bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/experiments"
	"notebookos/internal/federation"
	"notebookos/internal/platform"
	"notebookos/internal/resources"
	"notebookos/internal/sim"
	"notebookos/internal/trace"
)

// benchOpts are the shared reduced-scale options.
var benchOpts = experiments.Options{Seed: 42, Quick: true}

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
	if len(out) == 0 {
		b.Fatal("empty output")
	}
}

func BenchmarkFig02aTaskDurationCDF(b *testing.B)    { runExperiment(b, "fig2a") }
func BenchmarkFig02bIATCDF(b *testing.B)             { runExperiment(b, "fig2b") }
func BenchmarkFig02cGPUUtilCDF(b *testing.B)         { runExperiment(b, "fig2c") }
func BenchmarkFig02dReservedVsUtilized(b *testing.B) { runExperiment(b, "fig2d") }
func BenchmarkTable1Catalog(b *testing.B)            { runExperiment(b, "table1") }
func BenchmarkFig07ActiveTimeline(b *testing.B)      { runExperiment(b, "fig7") }

// BenchmarkFig08ProvisionedGPUs also reports the headline GPU-hours saved.
func BenchmarkFig08ProvisionedGPUs(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
		saved = reserved - res.ProvisionedGPUs.Integral(tr.Start, tr.End)
	}
	b.ReportMetric(saved, "GPUh-saved")
}

// BenchmarkFig09aInteractivity reports NotebookOS's p50 delay in ms.
func BenchmarkFig09aInteractivity(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var p50 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		p50 = res.Interactivity.Percentile(50) * 1000
	}
	b.ReportMetric(p50, "delay-p50-ms")
}

func BenchmarkFig09bTCT(b *testing.B)              { runExperiment(b, "fig9b") }
func BenchmarkFig10SubscriptionRatio(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SyncLatency measures the REAL protocol: a live 3-replica
// kernel on the in-memory transport, timing small-object Raft sync.
func BenchmarkFig11SyncLatency(b *testing.B) {
	p, err := platform.New(platform.Config{Hosts: 3, TimeScale: 0.0001, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	sess, err := p.CreateSession("bench", resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: 1, VRAMGB: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code := fmt.Sprintf("v = %d\n", i)
		if _, err := p.ExecuteSync(sess.ID, code, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12aCost(b *testing.B)                { runExperiment(b, "fig12a") }
func BenchmarkFig12bProfitMargin(b *testing.B)        { runExperiment(b, "fig12b") }
func BenchmarkFig13GPUHoursSaved(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkFig14aAllocatableGPUs(b *testing.B)     { runExperiment(b, "fig14a") }
func BenchmarkFig14bUsageRatio(b *testing.B)          { runExperiment(b, "fig14b") }
func BenchmarkFig16BreakdownReservation(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17BreakdownBatch(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18BreakdownNotebookOS(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19BreakdownLCP(b *testing.B)         { runExperiment(b, "fig19") }
func BenchmarkFig20SummerTimeline(b *testing.B)       { runExperiment(b, "fig20") }

func BenchmarkAblationReplicationFactor(b *testing.B) { runExperiment(b, "ablation-replicas") }
func BenchmarkAblationSRLimit(b *testing.B)           { runExperiment(b, "ablation-sr") }
func BenchmarkAblationScaleFactor(b *testing.B)       { runExperiment(b, "ablation-f") }
func BenchmarkAblationPrewarm(b *testing.B)           { runExperiment(b, "ablation-prewarm") }

func BenchmarkFederationClusterSweep(b *testing.B)  { runExperiment(b, "fed-scale") }
func BenchmarkFederationPenaltySweep(b *testing.B)  { runExperiment(b, "fed-penalty") }
func BenchmarkFederationPolicyCompare(b *testing.B) { runExperiment(b, "fed-policy") }
func BenchmarkFederationMatrixAblation(b *testing.B) {
	runExperiment(b, "fed-matrix")
}
func BenchmarkFederationFamily(b *testing.B) { runExperiment(b, "federation") }

// BenchmarkFederationAutoscale runs the pooled-vs-per-member ablation
// experiment end-to-end (16 federated sims); BenchmarkFederationPooledSim
// below reports the headline pooled metrics directly.
func BenchmarkFederationAutoscale(b *testing.B) {
	runExperiment(b, "fed-autoscale")
}

// BenchmarkFederationPooledSim measures one pooled-autoscaling federated
// simulation (6 clusters over a 30-host budget, geo-banded latency matrix)
// and reports GPU-hours saved plus the final live host count — the
// pooled-floor drain the per-member autoscalers cannot reach.
func BenchmarkFederationPooledSim(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var res *sim.FedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.RunFederated(sim.FedConfig{
			Trace:           tr,
			Clusters:        sim.DefaultFedClusters(6, 30),
			Route:           federation.LeastSubscribed{},
			Latency:         federation.GeoBandedMatrix(6, 2, 5*time.Millisecond, 40*time.Millisecond),
			PooledAutoscale: true,
			Seed:            42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GPUHoursSaved(), "GPUh-saved")
	b.ReportMetric(float64(res.FinalHosts()), "final-hosts")
}

// BenchmarkShardedSim measures one 4-shard sharded NotebookOS run: the
// trace splits into session-partitioned shards replayed by parallel
// worker simulations and merged deterministically (sim.RunSharded). The
// reported GPUh-saved is the sharded approximation of the fig8 headline.
func BenchmarkShardedSim(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSharded(sim.Config{Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30, Seed: 42}, 4)
		if err != nil {
			b.Fatal(err)
		}
		reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
		saved = reserved - res.ProvisionedGPUs.Integral(tr.Start, tr.End)
	}
	b.ReportMetric(saved, "GPUh-saved")
}

// BenchmarkShardedLeaseSim is BenchmarkShardedSim with the shared
// virtual capacity pool enabled (ShardCapacity == LeasePool): the four
// workers lease hosts from a capacity ledger at epoch barriers, so the
// reported GPUh-saved is exactly the unsharded fig8 headline rather than
// the legacy split's approximation. The timing delta against
// BenchmarkShardedSim is the price of the ledger's serial spine.
func BenchmarkShardedLeaseSim(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSharded(sim.Config{
			Trace: tr, Policy: sim.PolicyNotebookOS, Hosts: 30,
			Seed: 42, ShardCapacity: sim.LeasePool,
		}, 4)
		if err != nil {
			b.Fatal(err)
		}
		reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
		saved = reserved - res.ProvisionedGPUs.Integral(tr.Start, tr.End)
	}
	b.ReportMetric(saved, "GPUh-saved")
}

// BenchmarkShardDrift runs the shard-drift experiment end-to-end at
// quick scale: the legacy-split vs lease-pool drift table for
// k in {1,2,4,8} that docs/SHARDING.md quotes.
func BenchmarkShardDrift(b *testing.B) { runExperiment(b, "shard-drift") }

// BenchmarkStreamSharded measures the bounded-memory streaming sharded
// path at reduced scale (a 1/16 window of the 90-day million-session
// config, ~65k sessions): two workers synthesize their exact Poisson
// splits lazily and merge, with no materialized trace. The full-scale
// version is the stream-million-90d-2shards benchsnap scenario and the
// stream-scale experiment.
func BenchmarkStreamSharded(b *testing.B) {
	gcfg := trace.MillionSessionConfig(42)
	gcfg.Duration /= 16
	var sessions float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunStreamSharded(gcfg, sim.Config{
			Policy:      sim.PolicyNotebookOS,
			Hosts:       128,
			LeanMetrics: true,
			Seed:        42,
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
		sessions = float64(res.Sessions)
	}
	b.ReportMetric(sessions, "sessions")
}

// BenchmarkSummerFederation runs the summer-fed experiment (the 90-day
// trace federated; 10-day quick scale here) end-to-end.
func BenchmarkSummerFederation(b *testing.B) { runExperiment(b, "summer-fed") }

// BenchmarkScenarioSweep runs the declarative scenario lab end-to-end:
// three arrival shapes (diurnal, weekly overlay, flash crowd) crossed
// with the four policies and with 1/2/4-cluster federations.
func BenchmarkScenarioSweep(b *testing.B) { runExperiment(b, "scenario-sweep") }

// BenchmarkPolicyTournament runs the scorer-vs-baseline policy lab
// end-to-end at quick scale: every scorer configuration crossed with the
// scenario family and federation sizes 2 and 4, all on the SLO-aware
// priority wait-queue.
func BenchmarkPolicyTournament(b *testing.B) { runExperiment(b, "policy-tournament") }

// BenchmarkFaultSweep runs the fault-injection lab end-to-end at quick
// scale: the built-in fault profiles (none, light, heavy, az-outage)
// crossed with the four policies on the campus-diurnal scenario, plus a
// federated heavy-profile block at k in {1,2,4}.
func BenchmarkFaultSweep(b *testing.B) { runExperiment(b, "fault-sweep") }

// BenchmarkScoredRouting measures one scored routing decision on the hot
// path: snapshot every member, run the composite four-scorer sum, and
// sort — with a reused RouteScratch the whole decision must allocate
// nothing (0 allocs/op is the pinned expectation; see also
// TestDeploymentRouteAllocs for the live-platform path).
func BenchmarkScoredRouting(b *testing.B) {
	f := federation.New(25 * time.Millisecond)
	for i := 0; i < 4; i++ {
		c := cluster.New(3)
		for j := 0; j < 3; j++ {
			if err := c.AddHost(cluster.NewHost(fmt.Sprintf("c%d-h%d", i, j), resources.P316xlarge())); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := f.AddMember(fmt.Sprintf("c%d", i), c); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.SetLatencyMatrix(federation.GeoBandedMatrix(4, 2, 5*time.Millisecond, 40*time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	f.SetSnapshotExtras(func(m int) (int, int) { return m, 0 })
	policy := federation.NewScoredPolicy("bench",
		federation.WeightedScorer{Scorer: federation.SubscriptionScorer{}, Weight: 1},
		federation.WeightedScorer{Scorer: federation.LatencyScorer{}, Weight: federation.DefaultLatencyWeight},
		federation.WeightedScorer{Scorer: federation.QueueDepthScorer{}, Weight: 0.05},
		federation.WeightedScorer{Scorer: federation.SpreadScorer{}, Weight: 0.25},
	)
	var scratch federation.RouteScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.Order(f, i%4, &scratch)
	}
}

// BenchmarkFederationShardedSim measures one 2-shard federated run: two
// worker federations over split member clusters, merged with
// sim.MergeFedResults.
func BenchmarkFederationShardedSim(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var res *sim.FedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.RunFederatedSharded(sim.FedConfig{
			Trace:           tr,
			Clusters:        sim.DefaultFedClusters(4, 30),
			Route:           federation.LeastSubscribed{},
			PooledAutoscale: true,
			Seed:            42,
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GPUHoursSaved(), "GPUh-saved")
}

// BenchmarkFederationSim measures one federated simulation (4 clusters,
// least-subscribed routing) and reports the federation-wide GPU-hours
// saved and the remote-execution share.
func BenchmarkFederationSim(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	var res *sim.FedResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.RunFederated(sim.FedConfig{
			Trace:    tr,
			Clusters: sim.DefaultFedClusters(4, 30),
			Route:    federation.LeastSubscribed{},
			Seed:     42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GPUHoursSaved(), "GPUh-saved")
	if res.Tasks > 0 {
		b.ReportMetric(float64(res.RemoteExecutions)/float64(res.Tasks)*100, "remote-exec-%")
	}
}

// BenchmarkExecutorElection measures the live LEAD/VOTE election + cell
// execution round trip on a real 3-replica kernel (paper: "typically tens
// of milliseconds").
func BenchmarkExecutorElection(b *testing.B) {
	p, err := platform.New(platform.Config{Hosts: 3, TimeScale: 0.0001, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Stop()
	sess, err := p.CreateSession("bench", resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: 1, VRAMGB: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ExecuteSync(sess.ID, "x = 1\n", 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFourPoliciesParallel measures the parallel experiment
// harness's fan-out: all four policy baselines simulated concurrently
// over one shared read-only trace (the per-figure access pattern). Wall
// time approaches the slowest single policy rather than the sum.
func BenchmarkFourPoliciesParallel(b *testing.B) {
	cfg := trace.AdobeExcerptConfig(42)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	policies := []sim.Policy{sim.PolicyReservation, sim.PolicyBatch, sim.PolicyNotebookOS, sim.PolicyLCP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, len(policies))
		for j, p := range policies {
			wg.Add(1)
			go func(j int, p sim.Policy) {
				defer wg.Done()
				_, errs[j] = sim.Run(sim.Config{Trace: tr, Policy: p, Hosts: 30, Seed: 42})
			}(j, p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTraceGeneration measures synthetic-trace generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	var tasks int
	for i := 0; i < b.N; i++ {
		cfg := trace.AdobeExcerptConfig(int64(i + 1))
		tr := trace.MustGenerate(cfg)
		tasks = tr.NumTasks()
	}
	b.ReportMetric(float64(tasks), "tasks")
}

// sanity check that the bench file sees the same experiment set DESIGN.md
// promises.
func TestBenchCoversAllExperiments(t *testing.T) {
	covered := map[string]bool{
		"fig2a": true, "fig2b": true, "fig2c": true, "fig2d": true,
		"table1": true, "fig7": true, "fig8": true, "fig9a": true,
		"fig9b": true, "fig10": true, "fig11": true, "fig12a": true,
		"fig12b": true, "fig13": true, "fig14a": true, "fig14b": true,
		"fig16": true, "fig17": true, "fig18": true, "fig19": true,
		"fig20": true, "ablation-replicas": true, "ablation-sr": true,
		"ablation-f": true, "ablation-prewarm": true,
		"federation": true, "fed-scale": true, "fed-penalty": true,
		"fed-policy": true, "fed-autoscale": true, "fed-matrix": true,
		"summer-fed": true, "stream-scale": true, "shard-drift": true,
		"scenario-sweep": true, "policy-tournament": true,
		"fault-sweep": true,
	}
	for _, e := range experiments.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark", e.ID)
		}
	}
}
