module notebookos

go 1.24
