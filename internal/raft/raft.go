package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"notebookos/internal/simclock"
)

// NodeID identifies a Raft peer.
type NodeID string

// StateType is a node's role in the cluster.
type StateType int

// Raft node roles.
const (
	Follower StateType = iota
	Candidate
	Leader
)

// String returns the conventional role name.
func (s StateType) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// EntryType distinguishes application data from membership changes.
type EntryType int

// Entry types.
const (
	EntryNormal EntryType = iota
	EntryConfChange
)

// Entry is one replicated log entry.
type Entry struct {
	Index uint64
	Term  uint64
	Type  EntryType
	Data  []byte
}

// ConfChangeType is the kind of a membership change.
type ConfChangeType int

// Membership change kinds. Only single-server changes are supported; a
// second change is rejected until the first is applied, which keeps
// majorities of old and new configurations overlapping.
const (
	AddNode ConfChangeType = iota
	RemoveNode
)

// ConfChange is a single-server membership change.
type ConfChange struct {
	Type ConfChangeType `json:"type"`
	Node NodeID         `json:"node"`
}

// MsgType enumerates the Raft wire messages.
type MsgType int

// Message types.
const (
	MsgVote MsgType = iota
	MsgVoteResp
	MsgApp
	MsgAppResp
	MsgSnap
	MsgProp
)

// Message is the single wire format for all Raft RPCs.
type Message struct {
	Type MsgType
	From NodeID
	To   NodeID
	Term uint64

	// MsgVote
	LastLogIndex uint64
	LastLogTerm  uint64
	// MsgVoteResp
	Granted bool
	// MsgApp
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
	// MsgAppResp
	Success    bool
	MatchIndex uint64
	RejectHint uint64
	// MsgSnap
	SnapIndex uint64
	SnapTerm  uint64
	Snapshot  []byte
	SnapPeers []NodeID
	// MsgProp
	PropType EntryType
	PropData []byte
}

// Transport delivers messages to peers. Implementations must not block
// indefinitely; the in-memory LocalNetwork delivers asynchronously.
type Transport interface {
	Send(m Message)
}

// Logger receives diagnostic output.
type Logger interface {
	Logf(format string, args ...any)
}

type nopLogger struct{}

func (nopLogger) Logf(string, ...any) {}

// Errors returned by proposal paths.
var (
	ErrStopped     = errors.New("raft: node stopped")
	ErrNoLeader    = errors.New("raft: no known leader")
	ErrPendingConf = errors.New("raft: a configuration change is in flight")
	ErrRemoved     = errors.New("raft: node removed from configuration")
)

// Config configures a Node.
type Config struct {
	// ID is this node's identity; it must appear in Peers.
	ID NodeID
	// Peers is the initial cluster membership, including ID.
	Peers []NodeID
	// ElectionTicks is the base election timeout in ticks; the effective
	// timeout is randomized in [ElectionTicks, 2*ElectionTicks). Default 10.
	ElectionTicks int
	// HeartbeatTicks is the leader heartbeat interval in ticks. Default 1.
	HeartbeatTicks int
	// MaxEntriesPerAppend bounds entries per AppendEntries. Default 64.
	MaxEntriesPerAppend int
	// Transport sends messages to peers. Required.
	Transport Transport
	// Apply receives committed entries in log order on the applier
	// goroutine. Entries with empty Data (leader no-ops) are included.
	Apply func(e Entry)
	// ApplySnapshot is invoked when the node installs a leader snapshot;
	// the application must replace its state with the snapshot contents.
	ApplySnapshot func(index, term uint64, data []byte)
	// Seed randomizes election timeouts deterministically. Zero uses 1.
	Seed int64
	// Logger receives diagnostics; nil discards them.
	Logger Logger
}

func (c *Config) withDefaults() error {
	if c.ID == "" {
		return errors.New("raft: config requires ID")
	}
	if c.Transport == nil {
		return errors.New("raft: config requires Transport")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("raft: ID %q not in peers %v", c.ID, c.Peers)
	}
	if c.ElectionTicks <= 0 {
		c.ElectionTicks = 10
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 1
	}
	if c.MaxEntriesPerAppend <= 0 {
		c.MaxEntriesPerAppend = 64
	}
	if c.Logger == nil {
		c.Logger = nopLogger{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

type applyItem struct {
	entry      Entry
	isSnapshot bool
	snapIndex  uint64
	snapTerm   uint64
	snapshot   []byte
}

// Node is a single Raft peer.
type Node struct {
	mu sync.Mutex

	cfg   Config
	id    NodeID
	peers map[NodeID]bool

	state    StateType
	term     uint64
	votedFor NodeID
	leader   NodeID
	log      *raftLog

	commitIndex uint64
	appliedTo   uint64 // highest index handed to the applier queue

	votes map[NodeID]bool
	next  map[NodeID]uint64
	match map[NodeID]uint64

	electionElapsed   int
	heartbeatElapsed  int
	randomizedTimeout int
	rng               *rand.Rand

	pendingConf bool
	removed     bool
	stopped     atomic.Bool

	outbox []Message

	applyMu    sync.Mutex
	applyCond  *sync.Cond
	applyQueue []applyItem
	applyDone  chan struct{}

	tickStop chan struct{}
	tickWG   sync.WaitGroup
}

// NewNode creates and starts a node. The node is initially a follower; it
// begins elections after its randomized timeout elapses (driven by Tick).
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		id:        cfg.ID,
		peers:     make(map[NodeID]bool, len(cfg.Peers)),
		log:       newLog(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		applyDone: make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		n.peers[p] = true
	}
	n.applyCond = sync.NewCond(&n.applyMu)
	n.resetRandomizedTimeout()
	go n.runApplier()
	return n, nil
}

// ID returns this node's identity.
func (n *Node) ID() NodeID { return n.id }

// Status is a point-in-time snapshot of node state for introspection.
type Status struct {
	ID          NodeID
	State       StateType
	Term        uint64
	Leader      NodeID
	CommitIndex uint64
	LastIndex   uint64
	Peers       []NodeID
}

// Status returns the node's current status.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	peers := make([]NodeID, 0, len(n.peers))
	for p := range n.peers {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return Status{
		ID:          n.id,
		State:       n.state,
		Term:        n.term,
		Leader:      n.leader,
		CommitIndex: n.commitIndex,
		LastIndex:   n.log.lastIndex(),
		Peers:       peers,
	}
}

// Leader returns the node's current view of the leader ("" if unknown).
func (n *Node) Leader() NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// IsLeader reports whether this node currently believes it is the leader.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state == Leader
}

// Stop halts the node: it stops ticking, ignores further input, and shuts
// down the applier after draining queued applies.
func (n *Node) Stop() {
	n.StopTicker()
	if !n.stopped.CompareAndSwap(false, true) {
		<-n.applyDone
		return
	}
	n.applyMu.Lock()
	n.applyCond.Broadcast()
	n.applyMu.Unlock()
	<-n.applyDone
}

// StartTicker drives Tick on the given interval using clock until
// StopTicker or Stop is called.
func (n *Node) StartTicker(clock simclock.Clock, interval time.Duration) {
	n.mu.Lock()
	if n.tickStop != nil || n.stopped.Load() {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.tickStop = stop
	n.mu.Unlock()

	n.tickWG.Add(1)
	go func() {
		defer n.tickWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-clock.After(interval):
				n.Tick()
			}
		}
	}()
}

// StopTicker stops the background ticker, if running.
func (n *Node) StopTicker() {
	n.mu.Lock()
	stop := n.tickStop
	n.tickStop = nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		n.tickWG.Wait()
	}
}

// Tick advances the node's logical clock by one tick.
func (n *Node) Tick() {
	if n.stopped.Load() {
		return
	}
	n.mu.Lock()
	if n.removed {
		n.mu.Unlock()
		return
	}
	if n.state == Leader {
		n.heartbeatElapsed++
		if n.heartbeatElapsed >= n.cfg.HeartbeatTicks {
			n.heartbeatElapsed = 0
			n.broadcastAppend()
		}
	} else {
		n.electionElapsed++
		if n.electionElapsed >= n.randomizedTimeout {
			n.campaign()
		}
	}
	n.unlockAndSend()
}

// Propose submits application data for replication. On the leader it is
// appended directly; on a follower it is forwarded to the known leader.
// The caller learns of success by observing the entry via Apply.
func (n *Node) Propose(data []byte) error {
	return n.propose(EntryNormal, data)
}

// ProposeConfChange submits a single-server membership change.
func (n *Node) ProposeConfChange(cc ConfChange) error {
	data, err := encodeConfChange(cc)
	if err != nil {
		return err
	}
	return n.propose(EntryConfChange, data)
}

func (n *Node) propose(t EntryType, data []byte) error {
	if n.stopped.Load() {
		return ErrStopped
	}
	n.mu.Lock()
	if n.removed {
		n.mu.Unlock()
		return ErrRemoved
	}
	switch n.state {
	case Leader:
		err := n.appendAsLeader(t, data)
		n.unlockAndSend()
		return err
	default:
		leader := n.leader
		if leader == "" {
			n.mu.Unlock()
			return ErrNoLeader
		}
		n.outbox = append(n.outbox, Message{
			Type: MsgProp, From: n.id, To: leader, Term: n.term,
			PropType: t, PropData: data,
		})
		n.unlockAndSend()
		return nil
	}
}

// appendAsLeader appends an entry to the leader's log and replicates it.
// Caller holds n.mu.
func (n *Node) appendAsLeader(t EntryType, data []byte) error {
	if t == EntryConfChange {
		if n.pendingConf {
			return ErrPendingConf
		}
		n.pendingConf = true
	}
	e := Entry{
		Index: n.log.lastIndex() + 1,
		Term:  n.term,
		Type:  t,
		Data:  data,
	}
	n.log.append(e)
	n.match[n.id] = n.log.lastIndex()
	n.maybeCommit()
	n.broadcastAppend()
	return nil
}

// Step processes an incoming message from a peer.
func (n *Node) Step(m Message) {
	if n.stopped.Load() {
		return
	}
	n.mu.Lock()
	if m.Term > n.term {
		// A higher term always converts us to a follower of that term. We
		// only learn the leader's identity from append/snapshot traffic.
		leader := NodeID("")
		if m.Type == MsgApp || m.Type == MsgSnap {
			leader = m.From
		}
		n.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVote:
		n.handleVote(m)
	case MsgVoteResp:
		n.handleVoteResp(m)
	case MsgApp:
		n.handleApp(m)
	case MsgAppResp:
		n.handleAppResp(m)
	case MsgSnap:
		n.handleSnap(m)
	case MsgProp:
		n.handleProp(m)
	}
	n.unlockAndSend()
}

// unlockAndSend flushes the outbox outside the lock, then dispatches any
// newly queued applies.
func (n *Node) unlockAndSend() {
	msgs := n.outbox
	n.outbox = nil
	n.mu.Unlock()
	for _, m := range msgs {
		n.cfg.Transport.Send(m)
	}
}

func (n *Node) resetRandomizedTimeout() {
	n.randomizedTimeout = n.cfg.ElectionTicks + n.rng.Intn(n.cfg.ElectionTicks)
}

func (n *Node) becomeFollower(term uint64, leader NodeID) {
	n.state = Follower
	n.term = term
	n.votedFor = ""
	n.leader = leader
	n.electionElapsed = 0
	n.resetRandomizedTimeout()
}

func (n *Node) campaign() {
	if !n.peers[n.id] {
		// Removed from the configuration: do not disturb the cluster.
		n.removed = true
		return
	}
	n.state = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = ""
	n.votes = map[NodeID]bool{n.id: true}
	n.electionElapsed = 0
	n.resetRandomizedTimeout()
	n.cfg.Logger.Logf("raft %s: campaigning at term %d", n.id, n.term)
	if n.quorumReached(n.votes) {
		n.becomeLeader()
		return
	}
	for p := range n.peers {
		if p == n.id {
			continue
		}
		n.outbox = append(n.outbox, Message{
			Type: MsgVote, From: n.id, To: p, Term: n.term,
			LastLogIndex: n.log.lastIndex(), LastLogTerm: n.log.lastTerm(),
		})
	}
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.id
	n.heartbeatElapsed = 0
	n.next = make(map[NodeID]uint64, len(n.peers))
	n.match = make(map[NodeID]uint64, len(n.peers))
	for p := range n.peers {
		n.next[p] = n.log.lastIndex() + 1
		n.match[p] = 0
	}
	n.match[n.id] = n.log.lastIndex()
	n.cfg.Logger.Logf("raft %s: became leader at term %d", n.id, n.term)
	// Re-arm the single-conf-change guard if an uncommitted membership
	// change is still in our log from a previous leader.
	n.pendingConf = false
	for i := n.commitIndex + 1; i <= n.log.lastIndex(); i++ {
		if e, ok := n.log.entry(i); ok && e.Type == EntryConfChange {
			n.pendingConf = true
		}
	}
	// Commit entries from prior terms promptly by appending a no-op in the
	// new term (§5.4.2 of the Raft paper via the no-op convention).
	n.log.append(Entry{Index: n.log.lastIndex() + 1, Term: n.term, Type: EntryNormal})
	n.match[n.id] = n.log.lastIndex()
	n.maybeCommit()
	n.broadcastAppend()
}

func (n *Node) quorumReached(votes map[NodeID]bool) bool {
	count := 0
	for p := range n.peers {
		if votes[p] {
			count++
		}
	}
	return count >= len(n.peers)/2+1
}

func (n *Node) handleVote(m Message) {
	granted := false
	if m.Term == n.term && (n.votedFor == "" || n.votedFor == m.From) && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) {
		granted = true
		n.votedFor = m.From
		n.electionElapsed = 0
	}
	n.outbox = append(n.outbox, Message{
		Type: MsgVoteResp, From: n.id, To: m.From, Term: n.term, Granted: granted,
	})
}

// logUpToDate implements the Raft election restriction: the candidate's
// log must be at least as up-to-date as the voter's.
func (n *Node) logUpToDate(lastIndex, lastTerm uint64) bool {
	myTerm := n.log.lastTerm()
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= n.log.lastIndex()
}

func (n *Node) handleVoteResp(m Message) {
	if n.state != Candidate || m.Term != n.term || !m.Granted {
		return
	}
	n.votes[m.From] = true
	if n.quorumReached(n.votes) {
		n.becomeLeader()
	}
}

func (n *Node) handleApp(m Message) {
	if m.Term < n.term {
		n.outbox = append(n.outbox, Message{
			Type: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: false,
			RejectHint: n.log.lastIndex(),
		})
		return
	}
	// m.Term == n.term here (higher terms were folded in Step).
	n.state = Follower
	n.leader = m.From
	n.electionElapsed = 0

	if !n.log.matchTerm(m.PrevLogIndex, m.PrevLogTerm) {
		hint := n.log.lastIndex()
		if m.PrevLogIndex < hint {
			hint = m.PrevLogIndex - 1
		}
		n.outbox = append(n.outbox, Message{
			Type: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: false,
			RejectHint: hint,
		})
		return
	}
	for _, e := range m.Entries {
		if t, ok := n.log.term(e.Index); ok {
			if t == e.Term {
				continue // already have it
			}
			n.log.truncateFrom(e.Index)
		}
		if e.Index == n.log.lastIndex()+1 {
			n.log.append(e)
		}
	}
	matched := m.PrevLogIndex + uint64(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		c := m.LeaderCommit
		if matched < c {
			c = matched
		}
		n.advanceCommit(c)
	}
	n.outbox = append(n.outbox, Message{
		Type: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: true,
		MatchIndex: matched,
	})
}

func (n *Node) handleAppResp(m Message) {
	if n.state != Leader || m.Term != n.term {
		return
	}
	if m.Success {
		if m.MatchIndex > n.match[m.From] {
			n.match[m.From] = m.MatchIndex
		}
		if m.MatchIndex+1 > n.next[m.From] {
			n.next[m.From] = m.MatchIndex + 1
		}
		n.maybeCommit()
		// Keep streaming if the follower is still behind.
		if n.next[m.From] <= n.log.lastIndex() {
			n.sendAppend(m.From)
		}
		return
	}
	// Rejected: back off nextIndex using the follower's hint and retry.
	next := m.RejectHint + 1
	if next < 1 {
		next = 1
	}
	if next >= n.next[m.From] && n.next[m.From] > 1 {
		next = n.next[m.From] - 1
	}
	n.next[m.From] = next
	n.sendAppend(m.From)
}

func (n *Node) handleSnap(m Message) {
	if m.Term < n.term {
		return
	}
	n.state = Follower
	n.leader = m.From
	n.electionElapsed = 0
	if m.SnapIndex <= n.commitIndex {
		// Stale snapshot; just report progress.
		n.outbox = append(n.outbox, Message{
			Type: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: true,
			MatchIndex: n.commitIndex,
		})
		return
	}
	n.log.restore(m.SnapIndex, m.SnapTerm, m.Snapshot)
	n.commitIndex = m.SnapIndex
	n.appliedTo = m.SnapIndex
	if len(m.SnapPeers) > 0 {
		n.peers = make(map[NodeID]bool, len(m.SnapPeers))
		for _, p := range m.SnapPeers {
			n.peers[p] = true
		}
	}
	n.enqueueApply(applyItem{
		isSnapshot: true,
		snapIndex:  m.SnapIndex,
		snapTerm:   m.SnapTerm,
		snapshot:   m.Snapshot,
	})
	n.outbox = append(n.outbox, Message{
		Type: MsgAppResp, From: n.id, To: m.From, Term: n.term, Success: true,
		MatchIndex: m.SnapIndex,
	})
}

func (n *Node) handleProp(m Message) {
	if n.state != Leader {
		// Re-forward if we know a different leader; otherwise drop (the
		// proposer retries).
		if n.leader != "" && n.leader != n.id {
			m.To = n.leader
			n.outbox = append(n.outbox, m)
		}
		return
	}
	if err := n.appendAsLeader(m.PropType, m.PropData); err != nil {
		n.cfg.Logger.Logf("raft %s: forwarded proposal rejected: %v", n.id, err)
	}
}

// broadcastAppend sends AppendEntries (or heartbeats) to all peers.
// Caller holds n.mu.
func (n *Node) broadcastAppend() {
	for p := range n.peers {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

// sendAppend sends one AppendEntries or InstallSnapshot to peer p.
// Caller holds n.mu.
func (n *Node) sendAppend(p NodeID) {
	next := n.next[p]
	if next < 1 {
		next = 1
	}
	prev := next - 1
	prevTerm, ok := n.log.term(prev)
	if !ok {
		// The entries the follower needs were compacted: ship a snapshot.
		peers := make([]NodeID, 0, len(n.peers))
		for q := range n.peers {
			peers = append(peers, q)
		}
		n.outbox = append(n.outbox, Message{
			Type: MsgSnap, From: n.id, To: p, Term: n.term,
			SnapIndex: n.log.snapIndex, SnapTerm: n.log.snapTerm,
			Snapshot: n.log.snapshot, SnapPeers: peers,
		})
		n.next[p] = n.log.snapIndex + 1
		return
	}
	hi := n.log.lastIndex()
	if hi > prev+uint64(n.cfg.MaxEntriesPerAppend) {
		hi = prev + uint64(n.cfg.MaxEntriesPerAppend)
	}
	ents := n.log.slice(next, hi)
	n.outbox = append(n.outbox, Message{
		Type: MsgApp, From: n.id, To: p, Term: n.term,
		PrevLogIndex: prev, PrevLogTerm: prevTerm,
		Entries: ents, LeaderCommit: n.commitIndex,
	})
}

// maybeCommit advances commitIndex to the highest index replicated on a
// quorum whose entry belongs to the current term. Caller holds n.mu.
func (n *Node) maybeCommit() {
	if n.state != Leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for p := range n.peers {
		matches = append(matches, n.match[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	quorumIdx := matches[len(n.peers)/2]
	if quorumIdx <= n.commitIndex {
		return
	}
	// Only entries from the current term commit by counting replicas
	// (Raft paper §5.4.2).
	if t, ok := n.log.term(quorumIdx); ok && t == n.term {
		n.advanceCommit(quorumIdx)
	}
}

// advanceCommit moves commitIndex to c and queues newly committed entries
// for application, processing configuration changes. Caller holds n.mu.
func (n *Node) advanceCommit(c uint64) {
	if c <= n.commitIndex {
		return
	}
	n.commitIndex = c
	for i := n.appliedTo + 1; i <= c; i++ {
		e, ok := n.log.entry(i)
		if !ok {
			break
		}
		if e.Type == EntryConfChange {
			n.applyConfChange(e)
		}
		n.enqueueApply(applyItem{entry: e})
		n.appliedTo = i
	}
}

// applyConfChange updates the active configuration. Caller holds n.mu.
func (n *Node) applyConfChange(e Entry) {
	cc, err := decodeConfChange(e.Data)
	if err != nil {
		n.cfg.Logger.Logf("raft %s: bad conf change at %d: %v", n.id, e.Index, err)
		return
	}
	switch cc.Type {
	case AddNode:
		if !n.peers[cc.Node] {
			n.peers[cc.Node] = true
			if n.state == Leader {
				n.next[cc.Node] = n.log.lastIndex() + 1
				n.match[cc.Node] = 0
			}
		}
	case RemoveNode:
		delete(n.peers, cc.Node)
		if cc.Node == n.id {
			n.removed = true
			n.cfg.Logger.Logf("raft %s: removed from configuration", n.id)
		}
	}
	n.pendingConf = false
	n.cfg.Logger.Logf("raft %s: conf change applied: %+v peers=%d", n.id, cc, len(n.peers))
}

// Compact discards the log prefix up to and including upTo, recording the
// application-provided snapshot for that prefix. Followers that fall
// behind the compaction point receive the snapshot instead of entries.
func (n *Node) Compact(upTo uint64, snapshot []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if upTo > n.commitIndex {
		return fmt.Errorf("raft: cannot compact beyond commit index %d", n.commitIndex)
	}
	return n.log.compact(upTo, snapshot)
}

func (n *Node) enqueueApply(it applyItem) {
	n.applyMu.Lock()
	n.applyQueue = append(n.applyQueue, it)
	n.applyCond.Signal()
	n.applyMu.Unlock()
}

func (n *Node) runApplier() {
	defer close(n.applyDone)
	for {
		n.applyMu.Lock()
		for len(n.applyQueue) == 0 {
			if n.stopped.Load() {
				n.applyMu.Unlock()
				return
			}
			n.applyCond.Wait()
		}
		batch := n.applyQueue
		n.applyQueue = nil
		n.applyMu.Unlock()

		for _, it := range batch {
			if it.isSnapshot {
				if n.cfg.ApplySnapshot != nil {
					n.cfg.ApplySnapshot(it.snapIndex, it.snapTerm, it.snapshot)
				}
				continue
			}
			if n.cfg.Apply != nil {
				n.cfg.Apply(it.entry)
			}
		}
	}
}
