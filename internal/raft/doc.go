// Package raft implements the Raft consensus protocol (Ongaro &
// Ousterhout, ATC '14) used by NotebookOS distributed kernels for state
// machine replication (paper §3.2.2). It provides leader election with
// randomized timeouts, log replication, commitment, proposal forwarding,
// snapshot install/compaction, and single-server membership changes (used
// when a kernel replica is migrated to another GPU server, §3.2.3).
//
// A Node is driven by three inputs: Step (an incoming message from a
// peer), Tick (the passage of one logical clock tick), and Propose /
// ProposeConfChange (client requests). Committed entries are delivered in
// order to the configured Apply callback on a dedicated applier goroutine.
package raft
