package raft

import "encoding/json"

// encodeConfChange serializes a membership change for a log entry.
func encodeConfChange(cc ConfChange) ([]byte, error) {
	return json.Marshal(cc)
}

// decodeConfChange parses a membership change from a log entry.
func decodeConfChange(data []byte) (ConfChange, error) {
	var cc ConfChange
	err := json.Unmarshal(data, &cc)
	return cc, err
}

// DecodeConfChange exposes conf-change decoding to applications whose
// Apply callback wants to observe membership changes.
func DecodeConfChange(data []byte) (ConfChange, error) {
	return decodeConfChange(data)
}
