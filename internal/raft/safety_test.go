package raft

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// leaderRecorder observes Status() across a cluster and checks the
// Election Safety property: at most one leader per term.
type leaderRecorder struct {
	mu      sync.Mutex
	byTerm  map[uint64]map[NodeID]bool
	violate bool
}

func newLeaderRecorder() *leaderRecorder {
	return &leaderRecorder{byTerm: map[uint64]map[NodeID]bool{}}
}

func (lr *leaderRecorder) observe(nodes map[NodeID]*Node) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	for id, n := range nodes {
		st := n.Status()
		if st.State != Leader {
			continue
		}
		if lr.byTerm[st.Term] == nil {
			lr.byTerm[st.Term] = map[NodeID]bool{}
		}
		lr.byTerm[st.Term][id] = true
		if len(lr.byTerm[st.Term]) > 1 {
			lr.violate = true
		}
	}
}

// TestElectionSafetyUnderChaos runs a 5-node cluster through repeated
// partitions, heals, and message loss while continuously checking that no
// term ever has two leaders and that committed prefixes never diverge.
func TestElectionSafetyUnderChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, 5)
			rec := newLeaderRecorder()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						rec.observe(c.nodes)
						time.Sleep(2 * time.Millisecond)
					}
				}
			}()

			ids := ids(5)
			chaos := []func(){
				func() { c.net.SetDropProb(0.3) },
				func() { c.net.SetDropProb(0) },
				func() { c.net.Partition(ids[:2], ids[2:]) },
				func() { c.net.Heal() },
				func() { c.net.Isolate(ids[int(seed)%5]) },
				func() { c.net.Heal() },
			}
			proposed := 0
			for round := 0; round < len(chaos); round++ {
				chaos[round]()
				// Keep proposing through the chaos; only count accepted ones.
				for i := 0; i < 5; i++ {
					for _, n := range c.nodes {
						if n.IsLeader() {
							if err := n.Propose([]byte(fmt.Sprintf("c%d-%d", round, i))); err == nil {
								proposed++
							}
							break
						}
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			c.net.Heal()
			c.net.SetDropProb(0)
			// Let the cluster settle and commit what it can.
			c.waitLeader()
			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()

			if rec.violate {
				t.Fatal("two leaders observed in the same term")
			}
			// Log Matching on the applied prefix: every pair of nodes
			// agrees on the entries both have applied.
			var applied [][]string
			for _, id := range ids {
				applied = append(applied, c.appliedData(id))
			}
			for i := 0; i < len(applied); i++ {
				for j := i + 1; j < len(applied); j++ {
					n := len(applied[i])
					if len(applied[j]) < n {
						n = len(applied[j])
					}
					for k := 0; k < n; k++ {
						if applied[i][k] != applied[j][k] {
							t.Fatalf("applied prefix divergence at %d: %q vs %q",
								k, applied[i][k], applied[j][k])
						}
					}
				}
			}
			if proposed == 0 {
				t.Log("no proposals accepted during chaos (acceptable but unusual)")
			}
		})
	}
}

// TestCommittedEntriesSurviveLeaderChanges commits entries under one
// leader, forces several leadership changes, and verifies no committed
// entry is ever lost (Leader Completeness).
func TestCommittedEntriesSurviveLeaderChanges(t *testing.T) {
	c := newCluster(t, 5)
	for round := 0; round < 3; round++ {
		ldr := c.waitLeader()
		// Propose until the entry actually commits: right after a heal, a
		// stale minority leader may accept a proposal and then legitimately
		// discard it when it steps down.
		entry := fmt.Sprintf("round-%d", round)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			for _, n := range c.nodes {
				if n.IsLeader() {
					_ = n.Propose([]byte(entry))
					break
				}
			}
			time.Sleep(100 * time.Millisecond)
			committed := false
			for _, d := range c.appliedData(ldr.ID()) {
				if d == entry {
					committed = true
				}
			}
			if committed {
				break
			}
			ldr = c.waitLeader()
		}
		// Force a leadership change by isolating the current leader.
		c.net.Isolate(ldr.ID())
		deadline = time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			changed := false
			for id, n := range c.nodes {
				if id != ldr.ID() && n.IsLeader() {
					changed = true
				}
			}
			if changed {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		c.net.Heal()
	}
	c.waitApplied(3)
	for id := range c.nodes {
		data := c.appliedData(id)
		for round := 0; round < 3; round++ {
			found := false
			for _, d := range data {
				if d == fmt.Sprintf("round-%d", round) {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s lost committed entry round-%d: %v", id, round, data)
			}
		}
	}
}
