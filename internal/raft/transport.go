package raft

import (
	"math/rand"
	"sync"
	"time"
)

// Stepper receives messages; *Node implements it.
type Stepper interface {
	Step(m Message)
}

// LocalNetwork is an in-memory Transport connecting Raft nodes within a
// process. It models the peer-to-peer network kernel replicas form
// (§3.2.2) and supports fault injection for tests: per-link latency,
// random message drops, and partitions.
//
// Delivery is asynchronous: each message is delivered on its own goroutine
// after the configured latency, mirroring real network reordering.
type LocalNetwork struct {
	mu       sync.Mutex
	nodes    map[NodeID]Stepper
	minDelay time.Duration
	maxDelay time.Duration
	dropProb float64
	cut      map[NodeID]map[NodeID]bool
	rng      *rand.Rand
	closed   bool
	wg       sync.WaitGroup

	// counters for tests and benchmarks
	sent    int64
	dropped int64
}

// NewLocalNetwork returns a network with the given delivery latency range.
func NewLocalNetwork(minDelay, maxDelay time.Duration, seed int64) *LocalNetwork {
	if maxDelay < minDelay {
		maxDelay = minDelay
	}
	return &LocalNetwork{
		nodes:    make(map[NodeID]Stepper),
		minDelay: minDelay,
		maxDelay: maxDelay,
		cut:      make(map[NodeID]map[NodeID]bool),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Register attaches a node to the network under id.
func (ln *LocalNetwork) Register(id NodeID, s Stepper) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.nodes[id] = s
}

// Unregister detaches a node; in-flight messages to it are dropped.
func (ln *LocalNetwork) Unregister(id NodeID) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	delete(ln.nodes, id)
}

// SetDropProb sets the probability that any message is silently dropped.
func (ln *LocalNetwork) SetDropProb(p float64) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.dropProb = p
}

// Partition severs both directions between the two groups of nodes.
func (ln *LocalNetwork) Partition(a, b []NodeID) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			ln.cutLink(x, y)
			ln.cutLink(y, x)
		}
	}
}

// Heal removes all partitions.
func (ln *LocalNetwork) Heal() {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.cut = make(map[NodeID]map[NodeID]bool)
}

// Isolate severs a single node from everyone else.
func (ln *LocalNetwork) Isolate(id NodeID) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for other := range ln.nodes {
		if other == id {
			continue
		}
		ln.cutLink(id, other)
		ln.cutLink(other, id)
	}
}

func (ln *LocalNetwork) cutLink(from, to NodeID) {
	if ln.cut[from] == nil {
		ln.cut[from] = make(map[NodeID]bool)
	}
	ln.cut[from][to] = true
}

// Send implements Transport.
func (ln *LocalNetwork) Send(m Message) {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return
	}
	target, ok := ln.nodes[m.To]
	blocked := ln.cut[m.From][m.To]
	drop := ln.dropProb > 0 && ln.rng.Float64() < ln.dropProb
	var delay time.Duration
	if ln.maxDelay > ln.minDelay {
		delay = ln.minDelay + time.Duration(ln.rng.Int63n(int64(ln.maxDelay-ln.minDelay)))
	} else {
		delay = ln.minDelay
	}
	ln.sent++
	if !ok || blocked || drop {
		ln.dropped++
		ln.mu.Unlock()
		return
	}
	ln.wg.Add(1)
	ln.mu.Unlock()

	go func() {
		defer ln.wg.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		ln.mu.Lock()
		closed := ln.closed
		ln.mu.Unlock()
		if closed {
			return
		}
		target.Step(m)
	}()
}

// Stats returns (sent, dropped) message counts.
func (ln *LocalNetwork) Stats() (sent, dropped int64) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.sent, ln.dropped
}

// Close stops delivery and waits for in-flight deliveries to finish.
func (ln *LocalNetwork) Close() {
	ln.mu.Lock()
	ln.closed = true
	ln.mu.Unlock()
	ln.wg.Wait()
}
