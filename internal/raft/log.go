package raft

import "fmt"

// raftLog stores the replicated log in memory, supporting compaction: a
// prefix of the log may be replaced by a snapshot, after which entries are
// addressed relative to the snapshot's last included index.
type raftLog struct {
	// snapIndex/snapTerm describe the entry the current snapshot covers up
	// to (0/0 when no snapshot exists).
	snapIndex uint64
	snapTerm  uint64
	snapshot  []byte
	// entries holds log entries starting at index snapIndex+1.
	entries []Entry
}

func newLog() *raftLog { return &raftLog{} }

// firstIndex returns the index of the first entry physically present.
func (l *raftLog) firstIndex() uint64 { return l.snapIndex + 1 }

// lastIndex returns the index of the last entry (possibly covered only by
// the snapshot).
func (l *raftLog) lastIndex() uint64 {
	return l.snapIndex + uint64(len(l.entries))
}

// term returns the term of the entry at index i, or ok=false if i is out
// of range (compacted away below snapIndex, or beyond lastIndex).
func (l *raftLog) term(i uint64) (uint64, bool) {
	if i == l.snapIndex {
		return l.snapTerm, true
	}
	if i < l.firstIndex() || i > l.lastIndex() {
		return 0, false
	}
	return l.entries[i-l.firstIndex()].Term, true
}

// lastTerm returns the term of the last entry (snapshot term if empty).
func (l *raftLog) lastTerm() uint64 {
	t, _ := l.term(l.lastIndex())
	return t
}

// entry returns the entry at index i.
func (l *raftLog) entry(i uint64) (Entry, bool) {
	if i < l.firstIndex() || i > l.lastIndex() {
		return Entry{}, false
	}
	return l.entries[i-l.firstIndex()], true
}

// slice returns entries in [lo, hi] inclusive, copied.
func (l *raftLog) slice(lo, hi uint64) []Entry {
	if lo < l.firstIndex() {
		lo = l.firstIndex()
	}
	if hi > l.lastIndex() {
		hi = l.lastIndex()
	}
	if lo > hi {
		return nil
	}
	out := make([]Entry, hi-lo+1)
	copy(out, l.entries[lo-l.firstIndex():hi-l.firstIndex()+1])
	return out
}

// append adds entries at the tail. Entries must already carry correct
// Index/Term values continuing the log.
func (l *raftLog) append(ents ...Entry) {
	for _, e := range ents {
		if e.Index != l.lastIndex()+1 {
			panic(fmt.Sprintf("raft: non-contiguous append: entry %d after last %d", e.Index, l.lastIndex()))
		}
		l.entries = append(l.entries, e)
	}
}

// truncateFrom removes all entries with index >= i.
func (l *raftLog) truncateFrom(i uint64) {
	if i <= l.snapIndex {
		panic(fmt.Sprintf("raft: truncating into snapshot at %d (snap %d)", i, l.snapIndex))
	}
	if i > l.lastIndex() {
		return
	}
	l.entries = l.entries[:i-l.firstIndex()]
}

// matchTerm reports whether the entry at index i has term t. Index 0 with
// term 0 always matches (the log origin).
func (l *raftLog) matchTerm(i, t uint64) bool {
	if i == 0 {
		return t == 0
	}
	term, ok := l.term(i)
	return ok && term == t
}

// compact discards entries up to and including upTo, recording snapshot
// data for that prefix. It is a no-op if upTo is not beyond the current
// snapshot or exceeds the last index.
func (l *raftLog) compact(upTo uint64, snapshot []byte) error {
	if upTo <= l.snapIndex {
		return nil
	}
	if upTo > l.lastIndex() {
		return fmt.Errorf("raft: compact %d beyond last index %d", upTo, l.lastIndex())
	}
	t, ok := l.term(upTo)
	if !ok {
		return fmt.Errorf("raft: compact point %d unavailable", upTo)
	}
	l.entries = append([]Entry(nil), l.entries[upTo-l.firstIndex()+1:]...)
	l.snapIndex = upTo
	l.snapTerm = t
	l.snapshot = snapshot
	return nil
}

// restore replaces the entire log with a snapshot, as received from a
// leader via InstallSnapshot.
func (l *raftLog) restore(index, term uint64, snapshot []byte) {
	l.snapIndex = index
	l.snapTerm = term
	l.snapshot = snapshot
	l.entries = nil
}
