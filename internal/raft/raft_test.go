package raft

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// cluster is a test harness wiring N nodes over a LocalNetwork with real
// (short) tick intervals.
type cluster struct {
	t       *testing.T
	net     *LocalNetwork
	nodes   map[NodeID]*Node
	applied map[NodeID][]Entry
	mu      sync.Mutex
}

const testTick = 5 * time.Millisecond

func ids(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		net:     NewLocalNetwork(0, time.Millisecond, 42),
		nodes:   make(map[NodeID]*Node),
		applied: make(map[NodeID][]Entry),
	}
	peerList := ids(n)
	for i, id := range peerList {
		c.addNode(id, peerList, int64(i+1))
	}
	t.Cleanup(c.close)
	return c
}

func (c *cluster) addNode(id NodeID, peers []NodeID, seed int64) *Node {
	id2 := id
	node, err := NewNode(Config{
		ID:    id,
		Peers: peers,
		Seed:  seed,
		Apply: func(e Entry) {
			c.mu.Lock()
			c.applied[id2] = append(c.applied[id2], e)
			c.mu.Unlock()
		},
		Transport: c.net,
	})
	if err != nil {
		c.t.Fatalf("NewNode(%s): %v", id, err)
	}
	c.net.Register(id, node)
	c.nodes[id] = node
	node.StartTicker(realClock{}, testTick)
	return node
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

func (c *cluster) close() {
	for _, n := range c.nodes {
		n.Stop()
	}
	c.net.Close()
}

// waitLeader blocks until exactly one live, reachable node is leader and a
// quorum agrees on it, returning that node.
func (c *cluster) waitLeader() *Node {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		counts := map[NodeID]int{}
		for _, n := range c.nodes {
			st := n.Status()
			if st.Leader != "" {
				counts[st.Leader]++
			}
		}
		for id, cnt := range counts {
			if cnt >= len(c.nodes)/2+1 {
				if n, ok := c.nodes[id]; ok && n.IsLeader() {
					return n
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatal("no leader elected within deadline")
	return nil
}

// appliedData returns the non-empty Normal entries applied by id.
func (c *cluster) appliedData(id NodeID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, e := range c.applied[id] {
		if e.Type == EntryNormal && len(e.Data) > 0 {
			out = append(out, string(e.Data))
		}
	}
	return out
}

// waitApplied blocks until every node in nodes has applied want normal
// entries with payloads.
func (c *cluster) waitApplied(want int, nodes ...NodeID) {
	c.t.Helper()
	if len(nodes) == 0 {
		for id := range c.nodes {
			nodes = append(nodes, id)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range nodes {
			if len(c.appliedData(id)) < want {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range nodes {
		c.t.Logf("%s applied %d/%d: %v", id, len(c.appliedData(id)), want, c.appliedData(id))
	}
	c.t.Fatalf("entries not applied within deadline")
}

// propose retries a proposal until some node accepts it.
func (c *cluster) propose(data string) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range c.nodes {
			if n.IsLeader() {
				if err := n.Propose([]byte(data)); err == nil {
					return
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("could not propose %q", data)
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	c := newCluster(t, 1)
	ldr := c.waitLeader()
	if err := ldr.Propose([]byte("x")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	c.waitApplied(1)
}

func TestThreeNodeElectionAndReplication(t *testing.T) {
	c := newCluster(t, 3)
	c.waitLeader()
	for i := 0; i < 5; i++ {
		c.propose(fmt.Sprintf("cmd-%d", i))
	}
	c.waitApplied(5)
	// All logs must agree on the applied prefix (Log Matching property).
	base := c.appliedData("n1")
	for _, id := range []NodeID{"n2", "n3"} {
		got := c.appliedData(id)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s applied[%d]=%q, n1 has %q", id, i, got[i], base[i])
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 3)
	ldr := c.waitLeader()
	c.propose("before")
	c.waitApplied(1)

	// Kill the leader: the two survivors must elect a new one.
	c.net.Isolate(ldr.ID())
	deadline := time.Now().Add(10 * time.Second)
	var newLdr *Node
	for time.Now().Before(deadline) {
		for id, n := range c.nodes {
			if id != ldr.ID() && n.IsLeader() {
				newLdr = n
			}
		}
		if newLdr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLdr == nil {
		t.Fatal("no new leader after isolating old one")
	}
	if err := newLdr.Propose([]byte("after")); err != nil {
		t.Fatalf("Propose on new leader: %v", err)
	}
	var survivors []NodeID
	for id := range c.nodes {
		if id != ldr.ID() {
			survivors = append(survivors, id)
		}
	}
	c.waitApplied(2, survivors...)

	// Heal: the old leader must catch up and not diverge.
	c.net.Heal()
	c.waitApplied(2)
	if got := c.appliedData(ldr.ID()); got[len(got)-1] != "after" {
		t.Fatalf("old leader applied %v", got)
	}
}

func TestPartitionMinorityCannotCommit(t *testing.T) {
	c := newCluster(t, 5)
	ldr := c.waitLeader()
	// Put the leader in a minority of 2.
	var minority, majority []NodeID
	minority = append(minority, ldr.ID())
	for id := range c.nodes {
		if id == ldr.ID() {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.net.Partition(minority, majority)

	// The minority leader can append locally but must not commit the new
	// entry (acks already in flight may still commit pre-partition ones).
	_ = ldr.Propose([]byte("doomed"))
	doomedIndex := ldr.Status().LastIndex
	time.Sleep(300 * time.Millisecond)
	if got := ldr.Status().CommitIndex; got >= doomedIndex {
		t.Fatalf("minority leader committed doomed entry %d (commit=%d)", doomedIndex, got)
	}

	// The majority elects its own leader and commits.
	var majLdr *Node
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && majLdr == nil {
		for _, id := range majority {
			if c.nodes[id].IsLeader() {
				majLdr = c.nodes[id]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if majLdr == nil {
		t.Fatal("majority did not elect a leader")
	}
	if err := majLdr.Propose([]byte("survives")); err != nil {
		t.Fatalf("majority propose: %v", err)
	}
	c.waitApplied(1, majority...)

	// Heal: everyone converges on "survives"; "doomed" is discarded.
	c.net.Heal()
	c.waitApplied(1)
	for id := range c.nodes {
		for _, d := range c.appliedData(id) {
			if d == "doomed" {
				t.Fatalf("%s applied doomed entry", id)
			}
		}
	}
}

func TestProposalForwarding(t *testing.T) {
	c := newCluster(t, 3)
	c.waitLeader()
	// Propose via a follower; the entry must still commit everywhere.
	var follower *Node
	for _, n := range c.nodes {
		if !n.IsLeader() {
			follower = n
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for follower.Leader() == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := follower.Propose([]byte("via-follower")); err != nil {
		t.Fatalf("follower propose: %v", err)
	}
	c.waitApplied(1)
}

func TestMessageLossStillMakesProgress(t *testing.T) {
	c := newCluster(t, 3)
	c.waitLeader()
	c.net.SetDropProb(0.2)
	for i := 0; i < 5; i++ {
		c.propose(fmt.Sprintf("lossy-%d", i))
	}
	c.waitApplied(5)
}

func TestMembershipChangeAddNode(t *testing.T) {
	c := newCluster(t, 3)
	ldr := c.waitLeader()
	c.propose("pre-join")
	c.waitApplied(1)

	// Start n4 knowing the would-be membership, then add it via the leader.
	newID := NodeID("n4")
	c.addNode(newID, []NodeID{"n1", "n2", "n3", "n4"}, 99)
	if err := ldr.ProposeConfChange(ConfChange{Type: AddNode, Node: newID}); err != nil {
		t.Fatalf("ProposeConfChange: %v", err)
	}
	// The new node must replay the log, including pre-join.
	c.waitApplied(1, newID)
	c.propose("post-join")
	c.waitApplied(2)

	// The leader's config must now contain 4 peers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.waitLeader().Status().Peers) == 4 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("leader peers = %v, want 4", ldr.Status().Peers)
}

func TestMembershipChangeRemoveNode(t *testing.T) {
	c := newCluster(t, 3)
	ldr := c.waitLeader()
	var victim NodeID
	for id := range c.nodes {
		if id != ldr.ID() {
			victim = id
			break
		}
	}
	if err := ldr.ProposeConfChange(ConfChange{Type: RemoveNode, Node: victim}); err != nil {
		t.Fatalf("ProposeConfChange: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(ldr.Status().Peers) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(ldr.Status().Peers); got != 2 {
		t.Fatalf("leader peers = %d, want 2", got)
	}
	// The 2-node cluster must still commit (quorum = 2).
	c.propose("after-removal")
	var rest []NodeID
	for id := range c.nodes {
		if id != victim {
			rest = append(rest, id)
		}
	}
	c.waitApplied(1, rest...)
}

func TestPendingConfChangeRejected(t *testing.T) {
	c := newCluster(t, 3)
	ldr := c.waitLeader()
	// Stall replication so the first change stays pending.
	c.net.SetDropProb(1.0)
	if err := ldr.ProposeConfChange(ConfChange{Type: AddNode, Node: "n4"}); err != nil {
		t.Fatalf("first conf change: %v", err)
	}
	if err := ldr.ProposeConfChange(ConfChange{Type: AddNode, Node: "n5"}); err != ErrPendingConf {
		t.Fatalf("second conf change err = %v, want ErrPendingConf", err)
	}
	c.net.SetDropProb(0)
}

func TestCompactionAndSnapshotCatchUp(t *testing.T) {
	c := newCluster(t, 3)
	ldr := c.waitLeader()

	// Disconnect a follower, commit a batch, compact it away.
	var straggler NodeID
	for id := range c.nodes {
		if id != ldr.ID() {
			straggler = id
			break
		}
	}
	var healthy []NodeID
	for id := range c.nodes {
		if id != straggler {
			healthy = append(healthy, id)
		}
	}
	c.net.Isolate(straggler)
	for i := 0; i < 10; i++ {
		c.propose(fmt.Sprintf("batch-%d", i))
	}
	c.waitApplied(10, healthy...)

	ldr = c.waitLeader()
	st := ldr.Status()
	if err := ldr.Compact(st.CommitIndex, []byte("snapshot@"+fmt.Sprint(st.CommitIndex))); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := ldr.Compact(st.CommitIndex+100, nil); err == nil {
		t.Fatal("compacting past commit should fail")
	}

	// Track snapshot installation on the straggler.
	snapCh := make(chan uint64, 1)
	c.nodes[straggler].cfg.ApplySnapshot = func(index, term uint64, data []byte) {
		select {
		case snapCh <- index:
		default:
		}
	}
	c.net.Heal()
	select {
	case idx := <-snapCh:
		if idx < st.CommitIndex {
			t.Fatalf("snapshot at %d, want >= %d", idx, st.CommitIndex)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("straggler never received a snapshot")
	}
	// New proposals still reach everyone, including the restored node.
	c.propose("post-snap")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got := c.appliedData(straggler)
		if len(got) > 0 && got[len(got)-1] == "post-snap" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("straggler applied %v, want post-snap at end", c.appliedData(straggler))
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := NewNode(Config{ID: "a", Transport: NewLocalNetwork(0, 0, 1)}); err == nil {
		t.Error("ID not in peers must fail")
	}
	n, err := NewNode(Config{ID: "a", Peers: []NodeID{"a"}, Transport: NewLocalNetwork(0, 0, 1)})
	if err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	if n.cfg.ElectionTicks != 10 || n.cfg.HeartbeatTicks != 1 {
		t.Error("defaults not applied")
	}
	n.Stop()
	if err := n.Propose(nil); err != ErrStopped {
		t.Errorf("propose after stop = %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("state strings wrong")
	}
	if StateType(99).String() == "" {
		t.Error("unknown state should still render")
	}
}
