package raft

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func entriesFrom(start uint64, terms ...uint64) []Entry {
	out := make([]Entry, len(terms))
	for i, t := range terms {
		out[i] = Entry{Index: start + uint64(i), Term: t}
	}
	return out
}

func TestLogAppendAndQuery(t *testing.T) {
	l := newLog()
	if l.firstIndex() != 1 || l.lastIndex() != 0 || l.lastTerm() != 0 {
		t.Fatalf("empty log: first=%d last=%d term=%d", l.firstIndex(), l.lastIndex(), l.lastTerm())
	}
	l.append(entriesFrom(1, 1, 1, 2)...)
	if l.lastIndex() != 3 || l.lastTerm() != 2 {
		t.Fatalf("last=%d term=%d", l.lastIndex(), l.lastTerm())
	}
	if tm, ok := l.term(2); !ok || tm != 1 {
		t.Fatalf("term(2) = %d,%v", tm, ok)
	}
	if _, ok := l.term(4); ok {
		t.Fatal("term(4) should be out of range")
	}
	if !l.matchTerm(0, 0) {
		t.Fatal("origin must match (0,0)")
	}
	if l.matchTerm(0, 1) {
		t.Fatal("origin must not match term 1")
	}
}

func TestLogAppendNonContiguousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := newLog()
	l.append(Entry{Index: 5, Term: 1})
}

func TestLogTruncate(t *testing.T) {
	l := newLog()
	l.append(entriesFrom(1, 1, 1, 2, 2)...)
	l.truncateFrom(3)
	if l.lastIndex() != 2 {
		t.Fatalf("lastIndex = %d, want 2", l.lastIndex())
	}
	l.truncateFrom(10) // beyond end: no-op
	if l.lastIndex() != 2 {
		t.Fatalf("lastIndex = %d after no-op truncate", l.lastIndex())
	}
}

func TestLogSlice(t *testing.T) {
	l := newLog()
	l.append(entriesFrom(1, 1, 2, 3, 4, 5)...)
	s := l.slice(2, 4)
	if len(s) != 3 || s[0].Index != 2 || s[2].Index != 4 {
		t.Fatalf("slice = %+v", s)
	}
	if got := l.slice(4, 2); got != nil {
		t.Fatalf("inverted slice = %+v", got)
	}
	// Clamping.
	s = l.slice(0, 99)
	if len(s) != 5 {
		t.Fatalf("clamped slice len = %d", len(s))
	}
}

func TestLogCompactAndRestore(t *testing.T) {
	l := newLog()
	l.append(entriesFrom(1, 1, 1, 2, 2, 3)...)
	if err := l.compact(3, []byte("snap3")); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if l.firstIndex() != 4 || l.lastIndex() != 5 {
		t.Fatalf("first=%d last=%d", l.firstIndex(), l.lastIndex())
	}
	if tm, ok := l.term(3); !ok || tm != 2 {
		t.Fatalf("term at snap = %d,%v", tm, ok)
	}
	if _, ok := l.term(2); ok {
		t.Fatal("compacted entry should be unavailable")
	}
	// Compacting at or below snapIndex is a no-op.
	if err := l.compact(2, nil); err != nil {
		t.Fatalf("no-op compact errored: %v", err)
	}
	// Compacting beyond last index fails.
	if err := l.compact(10, nil); err == nil {
		t.Fatal("compact beyond last should fail")
	}
	l.restore(20, 7, []byte("snap20"))
	if l.lastIndex() != 20 || l.lastTerm() != 7 || len(l.entries) != 0 {
		t.Fatalf("restore: last=%d term=%d n=%d", l.lastIndex(), l.lastTerm(), len(l.entries))
	}
}

// Property: for any sequence of appends, truncates, and compactions, the
// log indices remain contiguous from firstIndex to lastIndex and term
// queries agree with what was appended.
func TestLogInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := newLog()
		shadow := map[uint64]uint64{} // index -> term, source of truth
		term := uint64(1)
		for op := 0; op < 300; op++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // append
				if r.Intn(5) == 0 {
					term++
				}
				idx := l.lastIndex() + 1
				l.append(Entry{Index: idx, Term: term})
				shadow[idx] = term
			case 6, 7: // truncate
				if l.lastIndex() > l.snapIndex {
					from := l.firstIndex() + uint64(r.Intn(int(l.lastIndex()-l.snapIndex)))
					l.truncateFrom(from)
					for i := from; i <= uint64(len(shadow))+64; i++ {
						delete(shadow, i)
					}
				}
			case 8: // compact a random committed prefix
				if l.lastIndex() > l.firstIndex() {
					upTo := l.firstIndex() + uint64(r.Intn(int(l.lastIndex()-l.firstIndex())))
					if err := l.compact(upTo, nil); err != nil {
						return false
					}
				}
			case 9: // verify
				for i := l.firstIndex(); i <= l.lastIndex(); i++ {
					tm, ok := l.term(i)
					if !ok || tm != shadow[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
