package scheduler

import (
	"fmt"
	"sync"

	"notebookos/internal/cluster"
	"notebookos/internal/container"
	"notebookos/internal/jupyter"
	"notebookos/internal/resources"
)

// LocalScheduler runs on each GPU server (paper §3.1): it provisions the
// containers kernel replicas run in, forwards messages from the Global
// Scheduler to its replicas, and performs dynamic GPU binding — deciding
// per execution request whether its replica can lead (resources
// committed) or must yield (request converted to a yield_request).
type LocalScheduler struct {
	Host *cluster.Host

	prov     *container.Provisioner
	prewarm  *container.Prewarmer
	mu       sync.Mutex
	replicas map[string]replicaEndpoint
	ctrs     map[string]*container.Container
}

// replicaEndpoint delivers a request to a replica hosted on this server.
type replicaEndpoint func(msg jupyter.Message) error

// NewLocalScheduler returns a local scheduler for host.
func NewLocalScheduler(host *cluster.Host, prov *container.Provisioner, prewarm *container.Prewarmer) *LocalScheduler {
	return &LocalScheduler{
		Host:     host,
		prov:     prov,
		prewarm:  prewarm,
		replicas: map[string]replicaEndpoint{},
		ctrs:     map[string]*container.Container{},
	}
}

// ProvisionReplica provisions a container for a kernel replica: from the
// pre-warm pool when possible, cold otherwise. It returns the container
// and whether it was warm.
func (ls *LocalScheduler) ProvisionReplica(replicaID string) (*container.Container, bool, error) {
	if ls.prewarm != nil {
		if c, err := ls.prewarm.Take(ls.Host.ID); err == nil {
			if err := c.Run(); err != nil {
				return nil, false, err
			}
			ls.track(replicaID, c)
			return c, true, nil
		}
	}
	c := ls.prov.Provision(ls.Host.ID)
	if err := c.Run(); err != nil {
		return nil, false, err
	}
	ls.track(replicaID, c)
	return c, false, nil
}

func (ls *LocalScheduler) track(replicaID string, c *container.Container) {
	ls.mu.Lock()
	ls.ctrs[replicaID] = c
	ls.mu.Unlock()
}

// RegisterReplica records how to deliver messages to a hosted replica
// (Fig. 4 step 4: the replica registers with its Local Scheduler).
func (ls *LocalScheduler) RegisterReplica(replicaID string, deliver func(msg jupyter.Message) error) {
	ls.mu.Lock()
	ls.replicas[replicaID] = replicaEndpoint(deliver)
	ls.mu.Unlock()
}

// UnregisterReplica removes a replica (termination or migration) and
// terminates its container.
func (ls *LocalScheduler) UnregisterReplica(replicaID string) {
	ls.mu.Lock()
	delete(ls.replicas, replicaID)
	c := ls.ctrs[replicaID]
	delete(ls.ctrs, replicaID)
	ls.mu.Unlock()
	if c != nil {
		c.Terminate()
	}
}

// ForwardExecute routes an execute_request to the hosted replica,
// converting it to a yield_request when the server lacks the resources to
// run the task (paper §3.2.2). When the replica can lead, the request's
// resources are committed under holder before delivery and the allocated
// GPU device IDs are embedded in the request metadata (§3.3).
func (ls *LocalScheduler) ForwardExecute(replicaID, holder string, msg jupyter.Message, req resources.Spec) (lead bool, err error) {
	ls.mu.Lock()
	deliver, ok := ls.replicas[replicaID]
	ls.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("scheduler: no replica %s on host %s", replicaID, ls.Host.ID)
	}
	if msg.Header.MsgType == jupyter.MsgYieldRequest {
		// Already converted by the Global Scheduler: no resources bind.
		return false, deliver(msg)
	}
	lead = true
	if err := ls.Host.Commit(holder, req); err != nil {
		lead = false
	} else if req.GPUs > 0 {
		ids, gerr := ls.Host.Devices().Allocate(holder, req.GPUs)
		if gerr != nil {
			// Commitment succeeded but devices are fragmented/busy; release
			// and yield.
			_ = ls.Host.Release(holder)
			lead = false
		} else {
			msg = msg.WithMeta(jupyter.MetaGPUDeviceIDs, fmt.Sprint(ids))
		}
	}
	if !lead {
		msg = msg.AsYield(0)
	}
	return lead, deliver(msg)
}

// ReleaseExecution returns the resources committed for holder, if any.
func (ls *LocalScheduler) ReleaseExecution(holder string) {
	if _, ok := ls.Host.Devices().Holding(holder); ok {
		_ = ls.Host.Devices().Release(holder)
	}
	_ = ls.Host.Release(holder)
}

// WarmPoolAvailable returns the number of pre-warmed containers on this
// server.
func (ls *LocalScheduler) WarmPoolAvailable() int {
	if ls.prewarm == nil {
		return 0
	}
	return ls.prewarm.Available(ls.Host.ID)
}
