package scheduler

import (
	"fmt"
	"math"
	"sync"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/container"
	"notebookos/internal/jupyter"
	"notebookos/internal/kernel"
	"notebookos/internal/pynb"
	"notebookos/internal/raft"
	"notebookos/internal/resources"
	"notebookos/internal/simclock"
	"notebookos/internal/store"
)

// EventKind labels scheduler events for the Fig. 10 timeline.
type EventKind string

// Scheduler event kinds.
const (
	EventKernelCreated EventKind = "kernel-created"
	EventMigration     EventKind = "kernel-migration"
	EventScaleOut      EventKind = "scale-out"
	EventScaleIn       EventKind = "scale-in"
)

// Event is one recorded scheduler event.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Detail string
}

// Stats aggregates Global Scheduler counters reported in §5.3.2.
type Stats struct {
	Executions int64
	// ImmediateCommits counts executions where GPUs were committed to a
	// replica at submission (the paper reports 89.6 %).
	ImmediateCommits int64
	// ExecutorReuse counts executions served by the same replica as the
	// previous execution of that kernel (the paper reports 89.45 %).
	ExecutorReuse    int64
	Migrations       int64
	FailedMigrations int64
	ScaleOuts        int64
	ScaleIns         int64
	// Recoveries counts replicas replaced after heartbeat failure
	// detection (§3.2.5).
	Recoveries int64
}

// Config configures the Global Scheduler.
type Config struct {
	// Cluster is the host inventory; hosts may also be added later via
	// AddHost or scale-out.
	Cluster *cluster.Cluster
	// Policy is the placement policy (default LeastLoaded).
	Policy PlacementPolicy
	// Clock drives all timing.
	Clock simclock.Clock
	// Store is the distributed data store shared by all kernels.
	Store store.Store
	// ContainerLatency models container provisioning costs.
	ContainerLatency container.LatencyModel
	// PrewarmPerHost is the pre-warmed pool size per server (§3.2.3).
	PrewarmPerHost int
	// HostFactory creates new hosts during scale-out. Nil disables
	// scale-out.
	HostFactory func(n int) []*cluster.Host
	// ScaleFactor is f in the auto-scaler's expected-capacity formula
	// (default 1.05, §3.4.2).
	ScaleFactor float64
	// MinHosts is the floor for scale-in.
	MinHosts int
	// ScalingBufferHosts keeps extra idle servers for request bursts.
	ScalingBufferHosts int
	// AutoscaleInterval is how often the auto-scaler runs (0 disables).
	AutoscaleInterval time.Duration
	// HeartbeatInterval is how often replica liveness is checked
	// (§3.2.5); dead replicas are replaced in place and restore their
	// state from the data store. Zero disables monitoring.
	HeartbeatInterval time.Duration
	// OnReply receives the aggregated (executor) execute_reply per
	// session; may be nil.
	OnReply func(session string, msg jupyter.Message)
	// InstallRuntime installs notebook builtins into each replica.
	InstallRuntime func(in *pynb.Interp, r *kernel.Replica)
	// KernelTickInterval is the Raft tick period inside kernels.
	KernelTickInterval time.Duration
	// NetMinDelay/NetMaxDelay bound replica P2P latency.
	NetMinDelay, NetMaxDelay time.Duration
	// LargeObjectThreshold is the kernel state inline/pointer cutoff.
	LargeObjectThreshold int64
	// MigrationRetries bounds target-search attempts per migration.
	MigrationRetries int
	// MigrationRetryDelay separates migration target searches.
	MigrationRetryDelay time.Duration
	// Seed makes behaviour deterministic.
	Seed int64
	// Logger receives diagnostics; may be nil.
	Logger raft.Logger
}

// MinHostsFloor is the one place the scale-in floor rule lives; every
// autoscaling path (the live GlobalScheduler, the simulator's per-member
// federated scaling, and the pooled federated autoscaler) clamps its
// configured MinHosts through it. The rule: the effective floor is the
// configured value, raised to at least replicas when the caller's floor
// must keep R-replica placement feasible (replicas of one kernel live on
// R distinct hosts, so dropping the floored tier below R hosts makes
// placement permanently infeasible), and to at least 1 host otherwise.
// The per-member federated floors pass replicas = R per cluster; the
// pooled federated autoscaler passes replicas = R for its single
// federation-wide floor (its per-member floors are replaced by the
// placement anchor, which keeps one member at >= R hosts). The live
// scheduler passes replicas = 0 and keeps its configured floor, because a
// failed placement there recovers by scaling back out through its
// HostFactory.
func MinHostsFloor(configured, replicas int) int {
	floor := configured
	if floor < replicas {
		floor = replicas
	}
	if floor < 1 {
		floor = 1
	}
	return floor
}

type nopLogger struct{}

func (nopLogger) Logf(string, ...any) {}

type pendingExec struct {
	msg      jupyter.Message
	session  string
	executor int // designated executor (0 if undesignated)
	leads    map[int]bool
	replied  bool
}

type kernelState struct {
	id      string
	session string
	req     resources.Spec
	k       *kernel.Kernel

	mu           sync.Mutex
	hosts        map[int]*cluster.Host // replica number -> host
	pending      map[uint64]*pendingExec
	lastExecutor int
	migrating    map[uint64]bool
}

// GlobalScheduler is NotebookOS's control plane (paper §3.1): it creates
// distributed kernels, routes execution requests to replicas via Local
// Schedulers, designates executors when it has sufficient resource
// information, migrates replicas after failed elections, and auto-scales
// the cluster.
type GlobalScheduler struct {
	cfg Config

	mu      sync.Mutex
	locals  map[string]*LocalScheduler
	kernels map[string]*kernelState
	events  []Event
	stats   Stats
	hostSeq int
	stopped bool

	prov     *container.Provisioner
	prewarm  *container.Prewarmer
	stopScal chan struct{}
	wg       sync.WaitGroup
}

// New creates a Global Scheduler and attaches Local Schedulers to every
// host already in the cluster.
func New(cfg Config) (*GlobalScheduler, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("scheduler: config requires Cluster")
	}
	if cfg.Policy == nil {
		cfg.Policy = LeastLoaded{}
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 1.05
	}
	// replicas = 0: a failed placement triggers scale-out via the host
	// factory, so the live scheduler need not floor at R (see MinHostsFloor).
	cfg.MinHosts = MinHostsFloor(cfg.MinHosts, 0)
	if cfg.MigrationRetries <= 0 {
		cfg.MigrationRetries = 3
	}
	if cfg.MigrationRetryDelay <= 0 {
		cfg.MigrationRetryDelay = 100 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = nopLogger{}
	}
	if cfg.ContainerLatency.ColdStart == nil {
		cfg.ContainerLatency = container.FastLatency()
	}
	gs := &GlobalScheduler{
		cfg:     cfg,
		locals:  map[string]*LocalScheduler{},
		kernels: map[string]*kernelState{},
	}
	gs.prov = container.NewProvisioner(cfg.Clock, cfg.ContainerLatency, cfg.Seed+101)
	gs.prewarm = container.NewPrewarmer(gs.prov, container.FixedPool{N: cfg.PrewarmPerHost})
	for _, h := range cfg.Cluster.Hosts() {
		gs.attachHost(h)
	}
	if cfg.AutoscaleInterval > 0 || cfg.HeartbeatInterval > 0 {
		gs.stopScal = make(chan struct{})
		if cfg.AutoscaleInterval > 0 {
			gs.wg.Add(1)
			go gs.autoscaleLoop()
		}
		if cfg.HeartbeatInterval > 0 {
			gs.wg.Add(1)
			go gs.heartbeatLoop()
		}
	}
	return gs, nil
}

// attachHost creates the Local Scheduler for h and pre-warms its pool.
func (gs *GlobalScheduler) attachHost(h *cluster.Host) *LocalScheduler {
	ls := NewLocalScheduler(h, gs.prov, gs.prewarm)
	gs.mu.Lock()
	gs.locals[h.ID] = ls
	gs.mu.Unlock()
	if gs.cfg.PrewarmPerHost > 0 {
		gs.wg.Add(1)
		go func() {
			defer gs.wg.Done()
			gs.prewarm.WarmHost(h.ID)
		}()
	}
	return ls
}

// AddHost adds a host to the cluster and attaches a Local Scheduler.
func (gs *GlobalScheduler) AddHost(h *cluster.Host) error {
	if err := gs.cfg.Cluster.AddHost(h); err != nil {
		return err
	}
	gs.attachHost(h)
	return nil
}

// Local returns the Local Scheduler for a host.
func (gs *GlobalScheduler) Local(hostID string) (*LocalScheduler, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	ls, ok := gs.locals[hostID]
	return ls, ok
}

// Stop shuts down the scheduler and every kernel it manages.
func (gs *GlobalScheduler) Stop() {
	gs.mu.Lock()
	if gs.stopped {
		gs.mu.Unlock()
		return
	}
	gs.stopped = true
	kernels := make([]*kernelState, 0, len(gs.kernels))
	for _, ks := range gs.kernels {
		kernels = append(kernels, ks)
	}
	stopScal := gs.stopScal
	gs.stopScal = nil
	gs.mu.Unlock()

	if stopScal != nil {
		close(stopScal)
	}
	for _, ks := range kernels {
		ks.k.Stop()
	}
	gs.wg.Wait()
}

// Events returns the recorded scheduler events.
func (gs *GlobalScheduler) Events() []Event {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return append([]Event(nil), gs.events...)
}

// Stats returns a snapshot of the scheduler counters.
func (gs *GlobalScheduler) Stats() Stats {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.stats
}

func (gs *GlobalScheduler) recordEvent(kind EventKind, detail string) {
	gs.mu.Lock()
	gs.events = append(gs.events, Event{Time: gs.cfg.Clock.Now(), Kind: kind, Detail: detail})
	gs.mu.Unlock()
}

// StartKernel creates a distributed kernel for a session (Fig. 4): select
// candidate hosts (scaling out if needed), provision replica containers
// via the Local Schedulers, start the replicas, and register routing.
func (gs *GlobalScheduler) StartKernel(kernelID, session string, req resources.Spec) error {
	r := gs.cfg.Cluster.ReplicasPerKernel()
	hosts, err := gs.selectHostsScalingOut(req, r)
	if err != nil {
		return err
	}
	// Subscribe the replicas on their hosts.
	for i, h := range hosts {
		if err := h.PlaceReplica(replicaKey(kernelID, i+1), req); err != nil {
			return err
		}
	}
	// Provision containers in parallel (cold or pre-warmed).
	var wg sync.WaitGroup
	provErrs := make([]error, len(hosts))
	for i, h := range hosts {
		ls, _ := gs.Local(h.ID)
		wg.Add(1)
		go func(i int, ls *LocalScheduler) {
			defer wg.Done()
			_, _, provErrs[i] = ls.ProvisionReplica(replicaKey(kernelID, i+1))
		}(i, ls)
	}
	wg.Wait()
	for _, err := range provErrs {
		if err != nil {
			return fmt.Errorf("scheduler: provision replica: %w", err)
		}
	}

	ks := &kernelState{
		id:        kernelID,
		session:   session,
		req:       req,
		hosts:     map[int]*cluster.Host{},
		pending:   map[uint64]*pendingExec{},
		migrating: map[uint64]bool{},
	}
	for i, h := range hosts {
		ks.hosts[i+1] = h
	}
	k, err := kernel.New(kernel.Config{
		ID:       kernelID,
		Replicas: r,
		Store:    gs.cfg.Store,
		Clock:    gs.cfg.Clock,
		OnReply: func(replica int, msg jupyter.Message) {
			gs.handleReply(ks, replica, msg)
		},
		OnAllYield: func(kid string, term uint64) {
			gs.wg.Add(1)
			go func() {
				defer gs.wg.Done()
				gs.handleAllYield(ks, term)
			}()
		},
		InstallRuntime:       gs.cfg.InstallRuntime,
		NetMinDelay:          gs.cfg.NetMinDelay,
		NetMaxDelay:          gs.cfg.NetMaxDelay,
		TickInterval:         gs.cfg.KernelTickInterval,
		LargeObjectThreshold: gs.cfg.LargeObjectThreshold,
		Seed:                 gs.cfg.Seed + int64(len(kernelID))*17,
		Logger:               gs.cfg.Logger,
	})
	if err != nil {
		return err
	}
	ks.k = k
	// Register delivery endpoints with the Local Schedulers.
	for i, h := range hosts {
		ls, _ := gs.Local(h.ID)
		rep, _ := k.Replica(i + 1)
		ls.RegisterReplica(replicaKey(kernelID, i+1), rep.HandleRequest)
	}
	gs.mu.Lock()
	gs.kernels[kernelID] = ks
	gs.mu.Unlock()
	gs.recordEvent(EventKernelCreated, kernelID)
	return nil
}

// selectHostsScalingOut runs the placement policy, triggering a scale-out
// and retrying when there are not enough viable candidates (§3.4.2).
func (gs *GlobalScheduler) selectHostsScalingOut(req resources.Spec, n int) ([]*cluster.Host, error) {
	hosts, err := gs.cfg.Policy.SelectHosts(gs.cfg.Cluster, req, n)
	if err == nil {
		return hosts, nil
	}
	if gs.hostFactory() == nil {
		return nil, err
	}
	missing := n - len(hosts)
	if missing < 1 {
		missing = 1
	}
	gs.ScaleOut(missing)
	return gs.cfg.Policy.SelectHosts(gs.cfg.Cluster, req, n)
}

// SetHostFactory installs (or replaces) the scale-out host factory after
// construction; the platform uses it because the standard factory needs a
// reference to the scheduler itself.
func (gs *GlobalScheduler) SetHostFactory(f func(n int) []*cluster.Host) {
	gs.mu.Lock()
	gs.cfg.HostFactory = f
	gs.mu.Unlock()
}

// hostFactory reads the factory under the lock.
func (gs *GlobalScheduler) hostFactory() func(n int) []*cluster.Host {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.cfg.HostFactory
}

// ScaleOut provisions n additional hosts via the host factory.
func (gs *GlobalScheduler) ScaleOut(n int) {
	factory := gs.hostFactory()
	if factory == nil || n <= 0 {
		return
	}
	newHosts := factory(n)
	for _, h := range newHosts {
		if err := gs.cfg.Cluster.AddHost(h); err != nil {
			gs.cfg.Logger.Logf("scheduler: scale-out add host: %v", err)
			continue
		}
		gs.attachHost(h)
	}
	gs.mu.Lock()
	gs.stats.ScaleOuts++
	gs.mu.Unlock()
	gs.recordEvent(EventScaleOut, fmt.Sprintf("+%d hosts", len(newHosts)))
}

// StopKernel terminates a kernel and releases its subscriptions.
func (gs *GlobalScheduler) StopKernel(kernelID string) error {
	gs.mu.Lock()
	ks, ok := gs.kernels[kernelID]
	delete(gs.kernels, kernelID)
	gs.mu.Unlock()
	if !ok {
		return fmt.Errorf("scheduler: unknown kernel %s", kernelID)
	}
	ks.k.Stop()
	ks.mu.Lock()
	hosts := ks.hosts
	ks.hosts = map[int]*cluster.Host{}
	ks.mu.Unlock()
	for i, h := range hosts {
		key := replicaKey(kernelID, i)
		if ls, ok := gs.Local(h.ID); ok {
			ls.UnregisterReplica(key)
		}
		_ = h.RemoveReplica(key)
	}
	return nil
}

// Execute routes a cell execution to a kernel's replicas. When some host
// can serve the task immediately, the Global Scheduler designates that
// replica as executor and converts the other replicas' requests to
// yield_requests (§3.2.2). Replies flow back via OnReply; clients
// correlate them by the returned request message ID (replies carry it as
// their parent header even across migration-driven resubmission, which
// allocates a fresh election term).
func (gs *GlobalScheduler) Execute(kernelID, code string) (term uint64, msgID string, err error) {
	gs.mu.Lock()
	ks, ok := gs.kernels[kernelID]
	gs.mu.Unlock()
	if !ok {
		return 0, "", fmt.Errorf("scheduler: unknown kernel %s", kernelID)
	}
	term = ks.k.NextTerm()
	msg, err := jupyter.New(jupyter.MsgExecuteRequest, ks.session, "user",
		jupyter.ExecuteRequestContent{Code: code})
	if err != nil {
		return 0, "", err
	}
	msg.KernelID = kernelID
	msg = msg.WithMeta(jupyter.MetaElectionTermID, fmt.Sprint(term))
	return term, msg.Header.MsgID, gs.dispatch(ks, term, msg, 0)
}

// dispatch designates an executor when resources allow and forwards the
// request to every replica via its Local Scheduler. forcedExecutor, when
// non-zero, pins the executor (used after migrations).
func (gs *GlobalScheduler) dispatch(ks *kernelState, term uint64, msg jupyter.Message, forcedExecutor int) error {
	ks.mu.Lock()
	replicaHosts := make(map[int]*cluster.Host, len(ks.hosts))
	for i, h := range ks.hosts {
		replicaHosts[i] = h
	}
	last := ks.lastExecutor
	ks.mu.Unlock()

	// Designate the executor: prefer the forced one, then the previous
	// executor's replica if its host has capacity (executor reuse), then
	// any replica whose host can commit immediately.
	executor := forcedExecutor
	if executor == 0 && last != 0 {
		if h, ok := replicaHosts[last]; ok && h.CanCommit(ks.req) {
			executor = last
		}
	}
	if executor == 0 {
		for i := 1; i <= len(replicaHosts); i++ {
			if h, ok := replicaHosts[i]; ok && h.CanCommit(ks.req) {
				executor = i
				break
			}
		}
	}

	pend := &pendingExec{msg: msg, session: ks.session, executor: executor, leads: map[int]bool{}}
	ks.mu.Lock()
	ks.pending[term] = pend
	ks.mu.Unlock()

	gs.mu.Lock()
	gs.stats.Executions++
	if executor != 0 {
		gs.stats.ImmediateCommits++
		if executor == last && last != 0 {
			gs.stats.ExecutorReuse++
		}
	}
	gs.mu.Unlock()

	var firstErr error
	for i, h := range replicaHosts {
		ls, ok := gs.Local(h.ID)
		if !ok {
			firstErr = fmt.Errorf("scheduler: no local scheduler for host %s", h.ID)
			continue
		}
		m := msg
		if executor != 0 && i != executor {
			m = m.AsYield(executor)
			m = m.WithMeta(jupyter.MetaElectionTermID, fmt.Sprint(term))
		}
		lead, err := ls.ForwardExecute(replicaKey(ks.id, i), execHolder(ks.id, i, term), m, ks.req)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if lead {
			ks.mu.Lock()
			pend.leads[i] = true
			ks.mu.Unlock()
		}
	}
	return firstErr
}

// handleReply processes a replica's execute_reply: it releases the
// replica's execution commitment and forwards the executor's reply
// (merged view) to the client exactly once.
func (gs *GlobalScheduler) handleReply(ks *kernelState, replica int, msg jupyter.Message) {
	content, err := msg.ParseExecuteReply()
	if err != nil {
		return
	}
	term := uint64(content.ExecutionCount)

	ks.mu.Lock()
	h := ks.hosts[replica]
	pend := ks.pending[term]
	var deliver bool
	if pend != nil && !content.Yielded && !pend.replied {
		pend.replied = true
		deliver = true
		ks.lastExecutor = replica
	}
	ks.mu.Unlock()

	if h != nil {
		if ls, ok := gs.Local(h.ID); ok {
			ls.ReleaseExecution(execHolder(ks.id, replica, term))
		}
	}
	if deliver && gs.cfg.OnReply != nil {
		gs.cfg.OnReply(ks.session, msg)
	}
}

// handleAllYield reacts to a failed election (§3.2.3): migrate one of the
// kernel's replicas to a server with sufficient idle resources, then
// resubmit the execution pinned to the migrated replica.
func (gs *GlobalScheduler) handleAllYield(ks *kernelState, term uint64) {
	ks.mu.Lock()
	if ks.migrating[term] {
		ks.mu.Unlock()
		return
	}
	ks.migrating[term] = true
	pend := ks.pending[term]
	ks.mu.Unlock()
	if pend == nil {
		return
	}

	victim, target := gs.findMigration(ks)
	if target == nil {
		gs.mu.Lock()
		gs.stats.FailedMigrations++
		gs.mu.Unlock()
		gs.failExecution(ks, term, "no viable migration target")
		return
	}

	oldKey := replicaKey(ks.id, victim)
	ks.mu.Lock()
	oldHost := ks.hosts[victim]
	ks.mu.Unlock()

	// Provision the destination container (pre-warmed when available).
	ls, _ := gs.Local(target.ID)
	if ls == nil {
		gs.failExecution(ks, term, "migration target has no local scheduler")
		return
	}
	if err := target.PlaceReplica(oldKey, ks.req); err != nil {
		gs.failExecution(ks, term, err.Error())
		return
	}
	if _, _, err := ls.ProvisionReplica(oldKey); err != nil {
		_ = target.RemoveReplica(oldKey)
		gs.failExecution(ks, term, err.Error())
		return
	}

	// Swap the replica onto a fresh Raft member (checkpoint, terminate,
	// reconfigure, restore, replay).
	newReplica, err := ks.k.ReplaceReplica(victim, 60*time.Second)
	if err != nil {
		_ = target.RemoveReplica(oldKey)
		gs.failExecution(ks, term, err.Error())
		return
	}
	// Update routing: old host loses the replica, target gains it.
	if oldHost != nil {
		if oldLS, ok := gs.Local(oldHost.ID); ok {
			oldLS.UnregisterReplica(oldKey)
		}
		_ = oldHost.RemoveReplica(oldKey)
	}
	ls.RegisterReplica(oldKey, newReplica.HandleRequest)
	ks.mu.Lock()
	ks.hosts[victim] = target
	ks.mu.Unlock()

	gs.mu.Lock()
	gs.stats.Migrations++
	gs.mu.Unlock()
	gs.recordEvent(EventMigration, fmt.Sprintf("%s r%d -> %s", ks.id, victim, target.ID))

	// Resubmit pinned to the migrated replica (Fig. 5 would now elect it).
	newTerm := ks.k.NextTerm()
	msg := pend.msg.WithMeta(jupyter.MetaElectionTermID, fmt.Sprint(newTerm))
	if err := gs.dispatch(ks, newTerm, msg, victim); err != nil {
		gs.failExecution(ks, newTerm, err.Error())
	}
}

// findMigration picks the replica to move and a destination host with
// idle resources, retrying per the configured policy. The destination
// must be able to immediately and exclusively commit the request.
func (gs *GlobalScheduler) findMigration(ks *kernelState) (victim int, target *cluster.Host) {
	for attempt := 0; attempt < gs.cfg.MigrationRetries; attempt++ {
		ks.mu.Lock()
		hosting := map[string]bool{}
		for _, h := range ks.hosts {
			hosting[h.ID] = true
		}
		// Victim: the replica on the host with the fewest idle GPUs.
		victim = 0
		worstIdle := math.MaxInt
		for i, h := range ks.hosts {
			if idle := h.IdleGPUs(); idle < worstIdle {
				worstIdle = idle
				victim = i
			}
		}
		ks.mu.Unlock()

		best := (*cluster.Host)(nil)
		bestIdle := -1
		for _, h := range gs.cfg.Cluster.Hosts() {
			if hosting[h.ID] {
				continue
			}
			if !h.CanCommit(ks.req) {
				continue
			}
			if idle := h.IdleGPUs(); idle > bestIdle {
				bestIdle = idle
				best = h
			}
		}
		if best != nil {
			return victim, best
		}
		// No viable server: scale out once, then keep retrying (§3.2.3
		// "enqueued and periodically retried").
		if attempt == 0 {
			gs.ScaleOut(1)
		}
		gs.cfg.Clock.Sleep(gs.cfg.MigrationRetryDelay)
	}
	return 0, nil
}

// failExecution returns an error execute_reply to the client (the aborted
// migration path of §3.2.3).
func (gs *GlobalScheduler) failExecution(ks *kernelState, term uint64, reason string) {
	ks.mu.Lock()
	pend := ks.pending[term]
	var msg jupyter.Message
	if pend != nil && !pend.replied {
		pend.replied = true
		reply, err := pend.msg.Child(jupyter.MsgExecuteReply, jupyter.ExecuteReplyContent{
			Status:         "error",
			ExecutionCount: int(term),
			EName:          "MigrationAborted",
			EValue:         reason,
		})
		if err == nil {
			msg = reply
		}
	}
	ks.mu.Unlock()
	if msg.Header.MsgID != "" && gs.cfg.OnReply != nil {
		gs.cfg.OnReply(ks.session, msg)
	}
}

// autoscaleLoop implements §3.4.2: on each interval, compare the cluster's
// GPU capacity to f times the actively-committed GPUs (plus the scaling
// buffer) and add or release servers.
func (gs *GlobalScheduler) autoscaleLoop() {
	defer gs.wg.Done()
	for {
		select {
		case <-gs.stopScal:
			return
		case <-gs.cfg.Clock.After(gs.cfg.AutoscaleInterval):
			gs.AutoscaleOnce()
		}
	}
}

// AutoscaleOnce runs one auto-scaler evaluation (exported for tests and
// the simulator).
func (gs *GlobalScheduler) AutoscaleOnce() {
	c := gs.cfg.Cluster
	committed := c.CommittedGPUs()
	expected := gs.cfg.ScaleFactor * float64(committed)
	gpusPerHost := 8
	if hosts := c.Hosts(); len(hosts) > 0 {
		gpusPerHost = hosts[0].Capacity.GPUs
	}
	expected += float64(gs.cfg.ScalingBufferHosts * gpusPerHost)
	total := c.TotalGPUs()

	if float64(total) < expected && gs.hostFactory() != nil {
		need := int(math.Ceil((expected - float64(total)) / float64(gpusPerHost)))
		gs.ScaleOut(need)
		return
	}
	// Scale in gradually: release 1-2 idle servers at a time.
	if float64(total)-float64(gpusPerHost) > expected && c.NumHosts() > gs.cfg.MinHosts {
		released := 0
		for _, h := range c.Hosts() {
			if released >= 2 || c.NumHosts() <= gs.cfg.MinHosts {
				break
			}
			if h.NumReplicas() == 0 && h.Committed().IsZero() {
				if err := c.RemoveHost(h.ID); err == nil {
					gs.mu.Lock()
					delete(gs.locals, h.ID)
					gs.stats.ScaleIns++
					gs.mu.Unlock()
					gs.recordEvent(EventScaleIn, h.ID)
					released++
				}
			}
			if float64(c.TotalGPUs())-float64(gpusPerHost) <= expected {
				break
			}
		}
	}
}

// heartbeatLoop implements §3.2.5's failure handling: if a replica's
// heartbeat stops (here: the replica is no longer alive), the Global
// Scheduler recreates it in place; the replacement restores state from
// remote storage and replays the Raft log.
func (gs *GlobalScheduler) heartbeatLoop() {
	defer gs.wg.Done()
	for {
		select {
		case <-gs.stopScal:
			return
		case <-gs.cfg.Clock.After(gs.cfg.HeartbeatInterval):
			gs.CheckHeartbeatsOnce()
		}
	}
}

// CheckHeartbeatsOnce scans every kernel replica for liveness and
// replaces dead ones (exported for tests).
func (gs *GlobalScheduler) CheckHeartbeatsOnce() {
	gs.mu.Lock()
	kernels := make([]*kernelState, 0, len(gs.kernels))
	for _, ks := range gs.kernels {
		kernels = append(kernels, ks)
	}
	gs.mu.Unlock()

	for _, ks := range kernels {
		for _, rep := range ks.k.Replicas() {
			if rep.Alive() {
				continue
			}
			num := rep.ID()
			gs.cfg.Logger.Logf("scheduler: kernel %s replica %d failed heartbeat; recovering", ks.id, num)
			newReplica, err := ks.k.ReplaceReplica(num, 60*time.Second)
			if err != nil {
				gs.cfg.Logger.Logf("scheduler: recover %s r%d: %v", ks.id, num, err)
				continue
			}
			ks.mu.Lock()
			h := ks.hosts[num]
			ks.mu.Unlock()
			if h != nil {
				if ls, ok := gs.Local(h.ID); ok {
					ls.RegisterReplica(replicaKey(ks.id, num), newReplica.HandleRequest)
				}
			}
			gs.mu.Lock()
			gs.stats.Recoveries++
			gs.mu.Unlock()
		}
	}
}

// NewHostFactory returns a HostFactory minting hosts with the given
// capacity and sequential IDs.
func (gs *GlobalScheduler) hostID() string {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	gs.hostSeq++
	return fmt.Sprintf("host-auto-%03d", gs.hostSeq)
}

// StandardHostFactory mints p3.16xlarge-shaped hosts for scale-out.
func StandardHostFactory(gs *GlobalScheduler) func(n int) []*cluster.Host {
	return func(n int) []*cluster.Host {
		out := make([]*cluster.Host, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, cluster.NewHost(gs.hostID(), resources.P316xlarge()))
		}
		return out
	}
}

func replicaKey(kernelID string, replica int) string {
	return fmt.Sprintf("%s/r%d", kernelID, replica)
}

func execHolder(kernelID string, replica int, term uint64) string {
	return fmt.Sprintf("%s/r%d/t%d", kernelID, replica, term)
}
