package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"notebookos/internal/cluster"
	"notebookos/internal/resources"
)

// ErrInsufficientHosts is returned when placement cannot find enough
// viable candidate servers; the Global Scheduler reacts by scaling out
// (paper §3.4.2).
var ErrInsufficientHosts = errors.New("scheduler: insufficient candidate hosts")

// DefaultSRHighWatermark caps any single host's subscription ratio
// regardless of the dynamic cluster-wide limit (§3.2.1's "configurable
// high watermark that prevents excessive over-subscription").
const DefaultSRHighWatermark = 3.0

// PlacementPolicy selects hosts for kernel replicas. Implementations must
// return n distinct hosts or ErrInsufficientHosts.
type PlacementPolicy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// SelectHosts picks n distinct hosts able to host a replica with the
	// given resource request.
	SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error)
}

// LeastLoaded is NotebookOS's default placement policy (§3.4.1): it
// prefers hosts with the most idle GPUs, subject to (1) physical
// capacity, (2) the per-host SR high watermark, and (3) the dynamic
// cluster-wide SR limit — hosts whose post-placement SR would exceed the
// cluster-wide limit are rejected in favor of others when possible.
type LeastLoaded struct {
	// SRHighWatermark overrides DefaultSRHighWatermark when > 0.
	SRHighWatermark float64
}

// Name implements PlacementPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// scored is one placement candidate with its selection keys.
type scored struct {
	h      *cluster.Host
	postSR float64
	idle   int
}

// better reports whether a ranks strictly before b in least-loaded order:
// most idle GPUs first, then lowest post-placement SR, then host ID.
func (a scored) better(b scored) bool {
	if a.idle != b.idle {
		return a.idle > b.idle
	}
	if a.postSR != b.postSR {
		return a.postSR < b.postSR
	}
	return a.h.ID < b.h.ID
}

// topN keeps the n best candidates in selection order via insertion into a
// small sorted array — a partial selection that replaces the former
// collect-everything-then-sort.Slice pass, doing O(hosts·n) comparisons
// with no per-host allocation.
type topN struct {
	buf []scored
	cap int
}

func (t *topN) insert(s scored) {
	if len(t.buf) == t.cap && t.buf[len(t.buf)-1].better(s) {
		return
	}
	i := len(t.buf)
	if i < t.cap {
		t.buf = append(t.buf, s)
	} else {
		i--
	}
	for i > 0 && s.better(t.buf[i-1]) {
		t.buf[i] = t.buf[i-1]
		i--
	}
	t.buf[i] = s
}

// SelectHosts implements PlacementPolicy. It streams over the cluster's
// hosts exactly once, maintaining two partial selections: hosts whose
// post-placement SR stays within the dynamic cluster-wide limit
// ("balanced"), and all viable hosts as a fallback when the balance rule
// leaves fewer than n candidates.
func (p LeastLoaded) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	watermark := p.SRHighWatermark
	if watermark <= 0 {
		watermark = DefaultSRHighWatermark
	}
	r := c.ReplicasPerKernel()
	limit := c.SRLimit()

	// One backing array serves both candidate heaps.
	scratch := make([]scored, 2*n)
	balanced := topN{buf: scratch[:0:n], cap: n}
	viable := topN{buf: scratch[n : n : 2*n], cap: n}
	balancedCount := 0
	c.ForEachHost(func(h *cluster.Host) bool {
		if !req.Fits(h.Capacity) {
			return true
		}
		postSubscribed := h.SubscribedGPUs() + req.GPUs
		postSR := 0.0
		if h.Capacity.GPUs > 0 && r > 0 {
			postSR = float64(postSubscribed) / float64(h.Capacity.GPUs*r)
		}
		if postSR > watermark {
			return true
		}
		s := scored{h: h, postSR: postSR, idle: h.IdleGPUs()}
		viable.insert(s)
		// The dynamic limit only constrains once the cluster has
		// subscriptions; at bootstrap (limit 0) every host balances.
		if limit == 0 || postSR <= limit {
			balancedCount++
			balanced.insert(s)
		}
		return true
	})
	// Prefer balanced hosts; fall back to all viable ones if the balance
	// rule leaves too few candidates.
	sel := balanced.buf
	if balancedCount < n {
		sel = viable.buf
	}
	if len(sel) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable (req %v)",
			ErrInsufficientHosts, n, len(sel), req)
	}
	out := make([]*cluster.Host, n)
	for i := 0; i < n; i++ {
		out[i] = sel[i].h
	}
	return out, nil
}

// Random places replicas on uniformly random viable hosts; a baseline for
// the placement ablation.
type Random struct {
	// Seed drives the deterministic shuffle sequence.
	Seed int64
	used int64
}

// Name implements PlacementPolicy.
func (*Random) Name() string { return "random" }

// SelectHosts implements PlacementPolicy.
func (p *Random) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	var viable []*cluster.Host
	c.ForEachHost(func(h *cluster.Host) bool {
		if req.Fits(h.Capacity) {
			viable = append(viable, h)
		}
		return true
	})
	if len(viable) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable", ErrInsufficientHosts, n, len(viable))
	}
	// xorshift-style deterministic shuffle seeded per call.
	s := uint64(p.Seed) + uint64(p.used)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	p.used++
	for i := len(viable) - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		viable[i], viable[j] = viable[j], viable[i]
	}
	return viable[:n], nil
}

// Packed prefers the most-loaded viable hosts (bin-packing); used by the
// placement ablation to show why least-loaded preserves interactivity.
type Packed struct {
	SRHighWatermark float64
}

// Name implements PlacementPolicy.
func (Packed) Name() string { return "packed" }

// SelectHosts implements PlacementPolicy.
func (p Packed) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	watermark := p.SRHighWatermark
	if watermark <= 0 {
		watermark = DefaultSRHighWatermark
	}
	r := c.ReplicasPerKernel()
	var viable []*cluster.Host
	c.ForEachHost(func(h *cluster.Host) bool {
		if !req.Fits(h.Capacity) {
			return true
		}
		postSubscribed := h.SubscribedGPUs() + req.GPUs
		postSR := 0.0
		if h.Capacity.GPUs > 0 && r > 0 {
			postSR = float64(postSubscribed) / float64(h.Capacity.GPUs*r)
		}
		if postSR > watermark {
			return true
		}
		viable = append(viable, h)
		return true
	})
	if len(viable) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable", ErrInsufficientHosts, n, len(viable))
	}
	sort.Slice(viable, func(i, j int) bool {
		// Most loaded first: fewest idle GPUs.
		if viable[i].IdleGPUs() != viable[j].IdleGPUs() {
			return viable[i].IdleGPUs() < viable[j].IdleGPUs()
		}
		return viable[i].ID < viable[j].ID
	})
	return viable[:n], nil
}
