// Package scheduler implements NotebookOS's resource scheduling layer
// (paper §3.4): pluggable kernel replica placement policies with the
// least-loaded default, subscription-ratio accounting with the dynamic
// cluster-wide SR limit, the Global Scheduler (kernel creation, routing,
// executor designation, migration, auto-scaling) and the per-server Local
// Scheduler (container provisioning, dynamic GPU binding).
package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"notebookos/internal/cluster"
	"notebookos/internal/resources"
)

// ErrInsufficientHosts is returned when placement cannot find enough
// viable candidate servers; the Global Scheduler reacts by scaling out
// (paper §3.4.2).
var ErrInsufficientHosts = errors.New("scheduler: insufficient candidate hosts")

// DefaultSRHighWatermark caps any single host's subscription ratio
// regardless of the dynamic cluster-wide limit (§3.2.1's "configurable
// high watermark that prevents excessive over-subscription").
const DefaultSRHighWatermark = 3.0

// PlacementPolicy selects hosts for kernel replicas. Implementations must
// return n distinct hosts or ErrInsufficientHosts.
type PlacementPolicy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// SelectHosts picks n distinct hosts able to host a replica with the
	// given resource request.
	SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error)
}

// LeastLoaded is NotebookOS's default placement policy (§3.4.1): it
// prefers hosts with the most idle GPUs, subject to (1) physical
// capacity, (2) the per-host SR high watermark, and (3) the dynamic
// cluster-wide SR limit — hosts whose post-placement SR would exceed the
// cluster-wide limit are rejected in favor of others when possible.
type LeastLoaded struct {
	// SRHighWatermark overrides DefaultSRHighWatermark when > 0.
	SRHighWatermark float64
}

// Name implements PlacementPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// SelectHosts implements PlacementPolicy.
func (p LeastLoaded) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	watermark := p.SRHighWatermark
	if watermark <= 0 {
		watermark = DefaultSRHighWatermark
	}
	r := c.ReplicasPerKernel()
	limit := c.SRLimit()

	type scored struct {
		h       *cluster.Host
		postSR  float64
		idle    int
		balance bool
	}
	var viable []scored
	for _, h := range c.Hosts() {
		if !req.Fits(h.Capacity) {
			continue
		}
		postSubscribed := h.Subscribed().GPUs + req.GPUs
		postSR := 0.0
		if h.Capacity.GPUs > 0 && r > 0 {
			postSR = float64(postSubscribed) / float64(h.Capacity.GPUs*r)
		}
		if postSR > watermark {
			continue
		}
		viable = append(viable, scored{
			h:      h,
			postSR: postSR,
			idle:   h.IdleGPUs(),
			// The dynamic limit only constrains once the cluster has
			// subscriptions; at bootstrap (limit 0) every host balances.
			balance: limit == 0 || postSR <= limit,
		})
	}
	// Prefer balanced hosts; fall back to all viable ones if the balance
	// rule leaves too few candidates.
	candidates := make([]scored, 0, len(viable))
	for _, s := range viable {
		if s.balance {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) < n {
		candidates = viable
	}
	if len(candidates) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable (req %v)",
			ErrInsufficientHosts, n, len(candidates), req)
	}
	sort.Slice(candidates, func(i, j int) bool {
		// Least-loaded: fewest actively-used GPUs first, i.e. most idle.
		if candidates[i].idle != candidates[j].idle {
			return candidates[i].idle > candidates[j].idle
		}
		if candidates[i].postSR != candidates[j].postSR {
			return candidates[i].postSR < candidates[j].postSR
		}
		return candidates[i].h.ID < candidates[j].h.ID
	})
	out := make([]*cluster.Host, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[i].h
	}
	return out, nil
}

// Random places replicas on uniformly random viable hosts; a baseline for
// the placement ablation.
type Random struct {
	// Seed drives the deterministic shuffle sequence.
	Seed int64
	used int64
}

// Name implements PlacementPolicy.
func (*Random) Name() string { return "random" }

// SelectHosts implements PlacementPolicy.
func (p *Random) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	var viable []*cluster.Host
	for _, h := range c.Hosts() {
		if req.Fits(h.Capacity) {
			viable = append(viable, h)
		}
	}
	if len(viable) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable", ErrInsufficientHosts, n, len(viable))
	}
	// xorshift-style deterministic shuffle seeded per call.
	s := uint64(p.Seed) + uint64(p.used)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	p.used++
	for i := len(viable) - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		viable[i], viable[j] = viable[j], viable[i]
	}
	return viable[:n], nil
}

// Packed prefers the most-loaded viable hosts (bin-packing); used by the
// placement ablation to show why least-loaded preserves interactivity.
type Packed struct {
	SRHighWatermark float64
}

// Name implements PlacementPolicy.
func (Packed) Name() string { return "packed" }

// SelectHosts implements PlacementPolicy.
func (p Packed) SelectHosts(c *cluster.Cluster, req resources.Spec, n int) ([]*cluster.Host, error) {
	watermark := p.SRHighWatermark
	if watermark <= 0 {
		watermark = DefaultSRHighWatermark
	}
	r := c.ReplicasPerKernel()
	var viable []*cluster.Host
	for _, h := range c.Hosts() {
		if !req.Fits(h.Capacity) {
			continue
		}
		postSubscribed := h.Subscribed().GPUs + req.GPUs
		postSR := 0.0
		if h.Capacity.GPUs > 0 && r > 0 {
			postSR = float64(postSubscribed) / float64(h.Capacity.GPUs*r)
		}
		if postSR > watermark {
			continue
		}
		viable = append(viable, h)
	}
	if len(viable) < n {
		return nil, fmt.Errorf("%w: need %d, found %d viable", ErrInsufficientHosts, n, len(viable))
	}
	sort.Slice(viable, func(i, j int) bool {
		// Most loaded first: fewest idle GPUs.
		if viable[i].IdleGPUs() != viable[j].IdleGPUs() {
			return viable[i].IdleGPUs() < viable[j].IdleGPUs()
		}
		return viable[i].ID < viable[j].ID
	})
	return viable[:n], nil
}
