package scheduler

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/jupyter"
	"notebookos/internal/kernel"
	"notebookos/internal/pynb"
	"notebookos/internal/resources"
	"notebookos/internal/simclock"
	"notebookos/internal/workload"
)

func gpuReq(n int) resources.Spec {
	return resources.Spec{Millicpus: int64(n) * 4000, MemoryMB: int64(n) * 32 * 1024, GPUs: n, VRAMGB: float64(n) * 16}
}

func newCluster(t *testing.T, hosts int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(3)
	for i := 0; i < hosts; i++ {
		if err := c.AddHost(cluster.NewHost(fmt.Sprintf("h%02d", i+1), resources.P316xlarge())); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestLeastLoadedSelectsIdlest(t *testing.T) {
	c := newCluster(t, 4)
	hosts := c.Hosts()
	// Commit GPUs on h1 and h2 so they look busy.
	hosts[0].Commit("x", gpuReq(6))
	hosts[1].Commit("y", gpuReq(4))

	p := LeastLoaded{}
	got, err := p.SelectHosts(c, gpuReq(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d hosts", len(got))
	}
	// The two untouched hosts must come first; busiest (h1) excluded.
	for _, h := range got {
		if h.ID == "h01" {
			t.Fatalf("busiest host selected: %v", ids(got))
		}
	}
}

func ids(hs []*cluster.Host) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.ID
	}
	return out
}

func TestLeastLoadedInsufficientHosts(t *testing.T) {
	c := newCluster(t, 2)
	p := LeastLoaded{}
	if _, err := p.SelectHosts(c, gpuReq(1), 3); err == nil {
		t.Fatal("2 hosts cannot serve 3 replicas")
	}
	// Requests beyond physical capacity are never viable.
	if _, err := p.SelectHosts(c, gpuReq(9), 1); err == nil {
		t.Fatal("9-GPU request cannot fit an 8-GPU host")
	}
}

func TestLeastLoadedHonorsWatermark(t *testing.T) {
	c := newCluster(t, 3)
	// Saturate subscriptions on every host up to the watermark.
	p := LeastLoaded{SRHighWatermark: 0.5}
	// watermark 0.5 with R=3, G=8 means subscribed <= 12 GPUs per host.
	for i := 0; i < 3; i++ {
		for _, h := range c.Hosts() {
			h.PlaceReplica(fmt.Sprintf("k%d/%s", i, h.ID), gpuReq(4))
		}
	}
	// Each host now has 12 subscribed GPUs = exactly at watermark for a
	// 0-GPU addition, over it for any more.
	if _, err := p.SelectHosts(c, gpuReq(4), 3); err == nil {
		t.Fatal("watermark should reject all hosts")
	}
}

func TestRandomAndPackedPolicies(t *testing.T) {
	c := newCluster(t, 5)
	r := &Random{Seed: 42}
	got, err := r.SelectHosts(c, gpuReq(1), 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("random: %v %v", ids(got), err)
	}
	seen := map[string]bool{}
	for _, h := range got {
		if seen[h.ID] {
			t.Fatal("random selected duplicate host")
		}
		seen[h.ID] = true
	}
	// Packed prefers busiest viable host.
	c.Hosts()[2].Commit("busy", gpuReq(6))
	pk := Packed{}
	got, err = pk.SelectHosts(c, gpuReq(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "h03" {
		t.Fatalf("packed picked %s, want h03", got[0].ID)
	}
	if r.Name() != "random" || pk.Name() != "packed" || (LeastLoaded{}).Name() != "least-loaded" {
		t.Fatal("policy names")
	}
}

func newGS(t *testing.T, hosts int, opts ...func(*Config)) *GlobalScheduler {
	t.Helper()
	c := newCluster(t, hosts)
	rt := workload.NewRuntime(workload.RuntimeOptions{TimeScale: 0.001})
	cfg := Config{
		Cluster:             c,
		KernelTickInterval:  4 * time.Millisecond,
		NetMaxDelay:         time.Millisecond,
		Seed:                5,
		InstallRuntime:      rt.Install,
		MigrationRetryDelay: 20 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	gs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gs.Stop)
	return gs
}

type replySink struct {
	mu      sync.Mutex
	replies []jupyter.ExecuteReplyContent
}

func (rs *replySink) onReply(session string, msg jupyter.Message) {
	content, err := msg.ParseExecuteReply()
	if err != nil {
		return
	}
	rs.mu.Lock()
	rs.replies = append(rs.replies, content)
	rs.mu.Unlock()
}

func (rs *replySink) count() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.replies)
}

func (rs *replySink) last() jupyter.ExecuteReplyContent {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.replies[len(rs.replies)-1]
}

func TestStartKernelPlacesThreeReplicas(t *testing.T) {
	gs := newGS(t, 4)
	if err := gs.StartKernel("k1", "sess1", gpuReq(2)); err != nil {
		t.Fatal(err)
	}
	placed := 0
	for _, h := range gs.cfg.Cluster.Hosts() {
		placed += h.NumReplicas()
	}
	if placed != 3 {
		t.Fatalf("placed %d replicas, want 3", placed)
	}
	if got := gs.cfg.Cluster.SubscribedGPUs(); got != 6 {
		t.Fatalf("subscribed = %d", got)
	}
	events := gs.Events()
	if len(events) != 1 || events[0].Kind != EventKernelCreated {
		t.Fatalf("events = %+v", events)
	}
}

func TestExecuteRoutesAndReplies(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 4, func(c *Config) { c.OnReply = sink.onReply })
	if err := gs.StartKernel("k1", "sess1", gpuReq(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gs.Execute("k1", "x = 41 + 1\nprint(x)\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 1 }, "one reply")
	got := sink.last()
	if got.Status != "ok" || !strings.Contains(got.Output, "42") {
		t.Fatalf("reply = %+v", got)
	}
	// All execution commitments must be released after the reply.
	waitFor(t, func() bool {
		return gs.cfg.Cluster.CommittedGPUs() == 0
	}, "commitments released")
	st := gs.Stats()
	if st.Executions != 1 || st.ImmediateCommits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecutorReuseCounted(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 4, func(c *Config) { c.OnReply = sink.onReply })
	if err := gs.StartKernel("k1", "s", gpuReq(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := gs.Execute("k1", "a = 1\n"); err != nil {
			t.Fatal(err)
		}
		want := i + 1
		waitFor(t, func() bool { return sink.count() == want }, "reply")
	}
	st := gs.Stats()
	if st.Executions != 3 {
		t.Fatalf("executions = %d", st.Executions)
	}
	if st.ExecutorReuse < 1 {
		t.Fatalf("expected executor reuse, stats = %+v", st)
	}
}

func TestExecuteUnknownKernel(t *testing.T) {
	gs := newGS(t, 3)
	if _, _, err := gs.Execute("nope", "x=1\n"); err == nil {
		t.Fatal("unknown kernel must fail")
	}
}

func TestStartKernelScalesOutWhenNeeded(t *testing.T) {
	gs := newGS(t, 1, func(c *Config) {
		c.HostFactory = func(n int) []*cluster.Host {
			out := make([]*cluster.Host, n)
			for i := range out {
				out[i] = cluster.NewHost(fmt.Sprintf("auto%d", i), resources.P316xlarge())
			}
			return out
		}
	})
	// One host cannot place 3 replicas: the scheduler must scale out.
	if err := gs.StartKernel("k1", "s", gpuReq(1)); err != nil {
		t.Fatalf("StartKernel with scale-out: %v", err)
	}
	if gs.cfg.Cluster.NumHosts() < 3 {
		t.Fatalf("hosts = %d, want >= 3", gs.cfg.Cluster.NumHosts())
	}
	if gs.Stats().ScaleOuts == 0 {
		t.Fatal("scale-out not recorded")
	}
}

func TestMigrationOnSaturatedHosts(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 4, func(c *Config) { c.OnReply = sink.onReply })
	if err := gs.StartKernel("k1", "s", gpuReq(8)); err != nil {
		t.Fatal(err)
	}
	// Saturate the three hosts holding k1's replicas so no replica can
	// commit 8 GPUs: the election fails and a migration must kick in.
	var kernelHosts []*cluster.Host
	for _, h := range gs.cfg.Cluster.Hosts() {
		if h.NumReplicas() > 0 {
			kernelHosts = append(kernelHosts, h)
		}
	}
	if len(kernelHosts) != 3 {
		t.Fatalf("kernel hosts = %d", len(kernelHosts))
	}
	for _, h := range kernelHosts {
		if err := h.Commit("blocker-"+h.ID, gpuReq(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := gs.Execute("k1", "v = 7\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() >= 1 }, "reply after migration")
	got := sink.last()
	if got.Status != "ok" {
		t.Fatalf("reply = %+v", got)
	}
	if gs.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", gs.Stats().Migrations)
	}
	// The migrated replica now lives on the fourth (previously empty) host.
	foundOnFourth := false
	for _, h := range gs.cfg.Cluster.Hosts() {
		if h.NumReplicas() > 0 && h.ID == "h04" {
			foundOnFourth = true
		}
	}
	if !foundOnFourth {
		t.Fatal("migration target should be the idle fourth host")
	}
}

func TestMigrationAbortsWithoutTarget(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 3, func(c *Config) {
		c.OnReply = sink.onReply
		c.MigrationRetries = 2
		c.MigrationRetryDelay = 10 * time.Millisecond
	})
	if err := gs.StartKernel("k1", "s", gpuReq(8)); err != nil {
		t.Fatal(err)
	}
	for _, h := range gs.cfg.Cluster.Hosts() {
		if err := h.Commit("blocker-"+h.ID, gpuReq(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := gs.Execute("k1", "v = 7\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() >= 1 }, "error reply")
	got := sink.last()
	if got.Status != "error" || got.EName != "MigrationAborted" {
		t.Fatalf("reply = %+v", got)
	}
	if gs.Stats().FailedMigrations != 1 {
		t.Fatalf("failed migrations = %d", gs.Stats().FailedMigrations)
	}
}

func TestAutoscalerScalesOutAndIn(t *testing.T) {
	clock := simclock.Real{}
	_ = clock
	gs := newGS(t, 2, func(c *Config) {
		c.HostFactory = func(n int) []*cluster.Host {
			out := make([]*cluster.Host, n)
			for i := range out {
				out[i] = cluster.NewHost(fmt.Sprintf("auto-%d-%d", time.Now().UnixNano(), i), resources.P316xlarge())
			}
			return out
		}
		c.MinHosts = 2
		c.ScaleFactor = 1.05
	})
	c := gs.cfg.Cluster
	// Commit 20 of 16 GPUs? Impossible; commit 15 to force expansion:
	// expected = 1.05*15 = 15.75 < 16, no scale-out. Commit 16:
	hosts := c.Hosts()
	hosts[0].Commit("a", gpuReq(8))
	hosts[1].Commit("b", gpuReq(8))
	gs.AutoscaleOnce() // expected = 16.8 > 16: add 1 host
	if c.NumHosts() != 3 {
		t.Fatalf("hosts = %d, want 3 after scale-out", c.NumHosts())
	}
	// Release everything: expected = 0, scale-in down to MinHosts.
	hosts[0].Release("a")
	hosts[1].Release("b")
	gs.AutoscaleOnce()
	if got := c.NumHosts(); got != 2 {
		t.Fatalf("hosts = %d, want 2 after scale-in", got)
	}
	st := gs.Stats()
	if st.ScaleOuts != 1 || st.ScaleIns < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStopKernelReleasesSubscriptions(t *testing.T) {
	gs := newGS(t, 3)
	if err := gs.StartKernel("k1", "s", gpuReq(2)); err != nil {
		t.Fatal(err)
	}
	if err := gs.StopKernel("k1"); err != nil {
		t.Fatal(err)
	}
	if err := gs.StopKernel("k1"); err == nil {
		t.Fatal("double stop must fail")
	}
	if got := gs.cfg.Cluster.SubscribedGPUs(); got != 0 {
		t.Fatalf("subscribed = %d after stop", got)
	}
}

func TestLocalSchedulerYieldConversion(t *testing.T) {
	h := cluster.NewHost("h1", resources.P316xlarge())
	gs := newGS(t, 1)
	ls, _ := gs.Local("h01")
	if ls == nil {
		t.Fatal("missing local scheduler")
	}
	_ = h
	var got []jupyter.Message
	var mu sync.Mutex
	ls.RegisterReplica("k/r1", func(m jupyter.Message) error {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		return nil
	})
	msg := jupyter.MustNew(jupyter.MsgExecuteRequest, "s", "u", jupyter.ExecuteRequestContent{Code: "x"})
	// Fill the host so commitment fails -> yield conversion.
	ls.Host.Commit("blocker", gpuReq(8))
	lead, err := ls.ForwardExecute("k/r1", "k/r1/t1", msg, gpuReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if lead {
		t.Fatal("lead should be false on a saturated host")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Header.MsgType != jupyter.MsgYieldRequest {
		t.Fatalf("delivered = %+v", got)
	}
}

func TestWorkloadRuntimeTrain(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 3, func(c *Config) { c.OnReply = sink.onReply })
	if err := gs.StartKernel("k1", "s", gpuReq(2)); err != nil {
		t.Fatal(err)
	}
	code := "model = create_model(\"resnet18\")\ndata = load_dataset(\"cifar10\")\nr = train(model, data, epochs=2, gpus=2, seconds=1)\nprint(r.loss)\n"
	if _, _, err := gs.Execute("k1", code); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 1 }, "train reply")
	got := sink.last()
	if got.Status != "ok" {
		t.Fatalf("reply = %+v", got)
	}
	// Model state (large object) must replicate to standby replicas.
	gs.mu.Lock()
	ks := gs.kernels["k1"]
	gs.mu.Unlock()
	waitFor(t, func() bool {
		for _, r := range ks.k.Replicas() {
			v, ok := r.Global("model")
			if !ok {
				return false
			}
			obj, ok := v.(*pynb.Object)
			if !ok || obj.Fields["epochs_trained"] != pynb.Int(2) {
				return false
			}
		}
		return true
	}, "model replicated to all replicas")
}

func TestReplicaKeyAndHolder(t *testing.T) {
	if replicaKey("k", 2) != "k/r2" {
		t.Fatal(replicaKey("k", 2))
	}
	if execHolder("k", 2, 9) != "k/r2/t9" {
		t.Fatal(execHolder("k", 2, 9))
	}
}

func TestKernelStatsExposed(t *testing.T) {
	gs := newGS(t, 3)
	if err := gs.StartKernel("k1", "s", gpuReq(1)); err != nil {
		t.Fatal(err)
	}
	gs.mu.Lock()
	ks := gs.kernels["k1"]
	gs.mu.Unlock()
	if ks.k.NumReplicas() != 3 {
		t.Fatal("kernel should have 3 replicas")
	}
	var _ *kernel.Kernel = ks.k
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestHeartbeatRecoveryAfterReplicaFailure(t *testing.T) {
	sink := &replySink{}
	gs := newGS(t, 3, func(c *Config) { c.OnReply = sink.onReply })
	if err := gs.StartKernel("k1", "s", gpuReq(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gs.Execute("k1", "important = 99\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 1 }, "pre-failure reply")

	// Fail-stop one replica (paper §3.2.5: a single replica failure is
	// tolerated and repaired).
	gs.mu.Lock()
	ks := gs.kernels["k1"]
	gs.mu.Unlock()
	victim := ks.k.Replicas()[1]
	// Wait for the state to reach the victim so its checkpoint carries it.
	waitFor(t, func() bool {
		v, ok := victim.Global("important")
		return ok && v == pynb.Int(99)
	}, "state on victim")
	victim.Stop()
	if victim.Alive() {
		t.Fatal("stopped replica still alive")
	}

	gs.CheckHeartbeatsOnce()
	if got := gs.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	// The replacement must be alive and carry the restored state.
	replacement := ks.k.Replicas()[1]
	if !replacement.Alive() || replacement == victim {
		t.Fatal("replica not replaced")
	}
	if v, _ := replacement.Global("important"); v != pynb.Int(99) {
		t.Fatalf("restored state = %v", v)
	}
	// The kernel still executes cells after recovery.
	if _, _, err := gs.Execute("k1", "important = important + 1\nprint(important)\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 2 }, "post-recovery reply")
	if got := sink.last(); got.Status != "ok" || !strings.Contains(got.Output, "100") {
		t.Fatalf("post-recovery reply = %+v", got)
	}
}
