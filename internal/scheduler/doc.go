// Package scheduler implements NotebookOS's resource scheduling layer
// (paper §3.4): pluggable kernel replica placement policies with the
// least-loaded default, subscription-ratio accounting with the dynamic
// cluster-wide SR limit, the Global Scheduler (kernel creation, routing,
// executor designation, migration, auto-scaling) and the per-server Local
// Scheduler (container provisioning, dynamic GPU binding).
package scheduler
