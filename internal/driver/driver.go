package driver

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"notebookos/internal/metrics"
	"notebookos/internal/platform"
	"notebookos/internal/trace"
	"notebookos/internal/workload"
)

// Config parameterizes a replay.
type Config struct {
	// Platform is the live deployment under test.
	Platform *platform.Platform
	// Trace is the workload to replay.
	Trace *trace.Trace
	// Compression divides all trace time intervals: 3600 replays one
	// trace-hour per wall-second. The platform's TimeScale should be set
	// to 1/Compression so train() durations shrink consistently.
	Compression float64
	// MaxSessions caps the number of sessions replayed (0 = all).
	MaxSessions int
	// MaxTasksPerSession caps tasks per session (0 = all).
	MaxTasksPerSession int
	// ExecTimeout bounds each cell execution (default 60s).
	ExecTimeout time.Duration
	// Seed drives the model/dataset assignment.
	Seed int64
}

// Report summarizes a replay.
type Report struct {
	Sessions int
	Tasks    int
	Errors   int
	// TCT is the wall-clock task completion time sample, in (compressed)
	// seconds.
	TCT *metrics.Sample
}

// TimeScale returns the platform TimeScale matching this driver config.
func (c Config) TimeScale() float64 {
	if c.Compression <= 0 {
		return 1
	}
	return 1 / c.Compression
}

// Replay runs the trace against the platform and blocks until every
// submitted task has completed.
func Replay(cfg Config) (*Report, error) {
	if cfg.Platform == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("driver: config requires Platform and Trace")
	}
	if cfg.Compression <= 0 {
		cfg.Compression = 1
	}
	if cfg.ExecTimeout <= 0 {
		cfg.ExecTimeout = 60 * time.Second
	}
	sessions := cfg.Trace.Sessions
	if cfg.MaxSessions > 0 && len(sessions) > cfg.MaxSessions {
		sessions = sessions[:cfg.MaxSessions]
	}

	rep := &Report{TCT: metrics.NewSample()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	start := time.Now()
	compress := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / cfg.Compression)
	}

	for _, src := range sessions {
		src := src
		assign := workload.Assign(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Wait until the session's (compressed) start time.
			offset := compress(src.Start.Sub(cfg.Trace.Start))
			if sleep := time.Until(start.Add(offset)); sleep > 0 {
				time.Sleep(sleep)
			}
			sess, err := cfg.Platform.CreateSession(src.ID, src.Request)
			if err != nil {
				mu.Lock()
				rep.Errors++
				mu.Unlock()
				return
			}
			mu.Lock()
			rep.Sessions++
			mu.Unlock()
			defer cfg.Platform.CloseSession(sess.ID)

			tasks := src.Tasks
			if cfg.MaxTasksPerSession > 0 && len(tasks) > cfg.MaxTasksPerSession {
				tasks = tasks[:cfg.MaxTasksPerSession]
			}
			for _, task := range tasks {
				offset := compress(task.Submit.Sub(cfg.Trace.Start))
				if sleep := time.Until(start.Add(offset)); sleep > 0 {
					time.Sleep(sleep)
				}
				code := assign.TrainingCell(1, task.GPUs, task.Duration.Seconds())
				t0 := time.Now()
				reply, err := cfg.Platform.ExecuteSync(sess.ID, code, cfg.ExecTimeout)
				mu.Lock()
				rep.Tasks++
				if err != nil || reply.Status != "ok" {
					rep.Errors++
				} else {
					rep.TCT.Add(time.Since(t0).Seconds())
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return rep, nil
}
