package driver

import (
	"testing"
	"time"

	"notebookos/internal/platform"
	"notebookos/internal/trace"
)

func TestReplaySmallExcerpt(t *testing.T) {
	// One trace-hour per 20ms of wall time.
	compression := 180_000.0
	cfg := trace.AdobeExcerptConfig(3)
	cfg.Duration = 2 * time.Hour
	tr := trace.MustGenerate(cfg)

	p, err := platform.New(platform.Config{
		Hosts:     4,
		TimeScale: 1 / compression,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	rep, err := Replay(Config{
		Platform:           p,
		Trace:              tr,
		Compression:        compression,
		MaxSessions:        6,
		MaxTasksPerSession: 2,
		ExecTimeout:        60 * time.Second,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions == 0 {
		t.Fatal("no sessions replayed")
	}
	if rep.Tasks == 0 {
		t.Fatal("no tasks replayed")
	}
	if rep.Errors > rep.Tasks/2 {
		t.Fatalf("too many errors: %d of %d", rep.Errors, rep.Tasks)
	}
	if rep.TCT.N() == 0 || rep.TCT.Percentile(50) <= 0 {
		t.Fatalf("TCT sample missing: %+v", rep.TCT.N())
	}
	// All sessions closed: subscriptions released.
	if got := p.Cluster.SubscribedGPUs(); got != 0 {
		t.Fatalf("subscribed GPUs after replay = %d", got)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if (Config{Compression: 100}).TimeScale() != 0.01 {
		t.Fatal("TimeScale")
	}
	if (Config{}).TimeScale() != 1 {
		t.Fatal("default TimeScale")
	}
}
