// Package driver is the workload driver of the paper's evaluation
// (§5.1.2): it replays an IDLT trace against a *live* platform deployment,
// creating a session (and its distributed kernel) per trace session,
// submitting one training cell per trace task with the model/dataset
// assignment drawn from the Table 1 catalog, and collecting task
// completion times and errors. Trace time is compressed so multi-hour
// excerpts replay in seconds of wall time.
package driver
