package kernel

import (
	"strings"
	"sync"
	"testing"
	"time"

	"notebookos/internal/jupyter"
	"notebookos/internal/pynb"
	"notebookos/internal/store"
)

const testTimeout = 20 * time.Second

func newTestKernel(t *testing.T, opts ...func(*Config)) *Kernel {
	t.Helper()
	cfg := Config{
		ID:           "k1",
		Replicas:     3,
		Store:        store.NewMem(),
		TickInterval: 4 * time.Millisecond,
		NetMaxDelay:  time.Millisecond,
		Seed:         11,
	}
	for _, o := range opts {
		o(&cfg)
	}
	k, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(k.Stop)
	return k
}

func TestExecuteCellSimple(t *testing.T) {
	k := newTestKernel(t)
	reply, err := k.ExecuteCell("sess", "x = 40 + 2\nprint(x)\n", testTimeout)
	if err != nil {
		t.Fatalf("ExecuteCell: %v", err)
	}
	if reply.Status != "ok" {
		t.Fatalf("reply = %+v", reply)
	}
	if !strings.Contains(reply.Output, "42") {
		t.Fatalf("output = %q", reply.Output)
	}
	if reply.ExecutionCount != 1 {
		t.Fatalf("execution count = %d", reply.ExecutionCount)
	}
}

func TestExactlyOneExecutorPerElection(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.ExecuteCell("sess", "x = 1\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Exactly one replica must have executed the cell.
	waitFor(t, func() bool {
		total := 0
		for _, r := range k.Replicas() {
			total += r.ExecCount()
		}
		return total == 1
	}, "exactly one executor")
	// All replicas eventually agree on the winner (standbys may apply the
	// VOTE entry a few milliseconds after the executor replies).
	waitFor(t, func() bool {
		w := k.Replicas()[0].ElectionWinner(1)
		if w == 0 {
			return false
		}
		for _, r := range k.Replicas() {
			if r.ElectionWinner(1) != w {
				return false
			}
		}
		return true
	}, "replicas agree on election winner")
}

func TestStateReplicatesToStandbys(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.ExecuteCell("sess", "counter = 7\nname = \"bert\"\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Small globals must appear in every replica's namespace via Raft.
	waitFor(t, func() bool {
		for _, r := range k.Replicas() {
			if !globalIs(r, "counter", pynb.Int(7)) {
				return false
			}
			if !globalIs(r, "name", pynb.Str("bert")) {
				return false
			}
		}
		return true
	}, "state replicated to all replicas")
}

func TestStateCarriesAcrossCells(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.ExecuteCell("s", "a = 10\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Wait for replication so whichever replica wins next sees `a`.
	waitFor(t, func() bool {
		for _, r := range k.Replicas() {
			if !globalIs(r, "a", pynb.Int(10)) {
				return false
			}
		}
		return true
	}, "a replicated")
	reply, err := k.ExecuteCell("s", "b = a * 2\nprint(b)\n", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != "ok" || !strings.Contains(reply.Output, "20") {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestLargeObjectGoesToStore(t *testing.T) {
	st := store.NewMem()
	k := newTestKernel(t, func(c *Config) {
		c.Store = st
		c.LargeObjectThreshold = 64 // tiny threshold: strings overflow it
	})
	// A string exceeding the threshold must be checkpointed, not inlined.
	code := "blob = \"" + strings.Repeat("m", 256) + "\"\n"
	if _, err := k.ExecuteCell("s", code, testTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		keys, _ := st.List("k1/state/")
		if len(keys) == 0 {
			return false
		}
		// Standbys must fetch the pointer target.
		for _, r := range k.Replicas() {
			v, ok := r.Global("blob")
			if !ok {
				return false
			}
			if s, ok := v.(pynb.Str); !ok || len(s) != 256 {
				return false
			}
		}
		return true
	}, "large object persisted and fetched")
}

func TestErrorReply(t *testing.T) {
	k := newTestKernel(t)
	reply, err := k.ExecuteCell("s", "x = undefined_var\n", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != "error" || reply.EName != "RuntimeError" {
		t.Fatalf("reply = %+v", reply)
	}
	reply, err = k.ExecuteCell("s", "x = = 1\n", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != "error" || reply.EName != "SyntaxError" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestAllRepliesArrive(t *testing.T) {
	var mu sync.Mutex
	replies := map[int]jupyter.ExecuteReplyContent{}
	k := newTestKernel(t, func(c *Config) {
		c.OnReply = func(replica int, msg jupyter.Message) {
			content, err := msg.ParseExecuteReply()
			if err != nil {
				return
			}
			mu.Lock()
			replies[replica] = content
			mu.Unlock()
		}
	})
	if _, err := k.ExecuteCell("s", "x = 5\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Fig. 5 step 9: all three replicas send execute_reply.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(replies) == 3
	}, "3 replies")
	mu.Lock()
	defer mu.Unlock()
	yielded := 0
	for _, c := range replies {
		if c.Yielded {
			yielded++
		}
	}
	if yielded != 2 {
		t.Fatalf("yielded replies = %d, want 2", yielded)
	}
}

func TestAllYieldTriggersCallback(t *testing.T) {
	ch := make(chan uint64, 3)
	k := newTestKernel(t, func(c *Config) {
		c.OnAllYield = func(kernelID string, term uint64) {
			ch <- term
		}
	})
	term := k.NextTerm()
	req := jupyter.MustNew(jupyter.MsgExecuteRequest, "s", "u",
		jupyter.ExecuteRequestContent{Code: "x = 1\n"})
	// Convert the request to yield for every replica: failed election.
	yield := map[int]bool{1: true, 2: true, 3: true}
	if err := k.Broadcast(req, term, yield); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if got != term {
			t.Fatalf("all-yield term = %d, want %d", got, term)
		}
	case <-time.After(testTimeout):
		t.Fatal("all-yield callback never fired")
	}
	// Deduplicated: no second callback for the same term.
	select {
	case <-ch:
		t.Fatal("duplicate all-yield callback")
	case <-time.After(300 * time.Millisecond):
	}
}

func TestYieldMaskDirectsExecutor(t *testing.T) {
	k := newTestKernel(t)
	term := k.NextTerm()
	req := jupyter.MustNew(jupyter.MsgExecuteRequest, "s", "u",
		jupyter.ExecuteRequestContent{Code: "y = 9\n"})
	// Only replica 2 may lead (the Global Scheduler picked it, §3.2.2).
	if err := k.Broadcast(req, term, map[int]bool{1: true, 3: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		r, _ := k.Replica(2)
		return r.ExecCount() == 1
	}, "replica 2 executes")
	r1, _ := k.Replica(1)
	r3, _ := k.Replica(3)
	if r1.ExecCount() != 0 || r3.ExecCount() != 0 {
		t.Fatal("yielded replicas must not execute")
	}
}

func TestReplaceReplicaMigration(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.ExecuteCell("s", "state = 123\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, r := range k.Replicas() {
			if !globalIs(r, "state", pynb.Int(123)) {
				return false
			}
		}
		return true
	}, "state replicated before migration")

	// Migrate replica 2 (checkpoint -> terminate -> reconfigure -> join).
	nr, err := k.ReplaceReplica(2, testTimeout)
	if err != nil {
		t.Fatalf("ReplaceReplica: %v", err)
	}
	if nr.ID() != 2 {
		t.Fatalf("replacement replica number = %d", nr.ID())
	}
	// The replacement restored checkpointed state.
	if v, _ := nr.Global("state"); v != pynb.Int(123) {
		t.Fatalf("restored state = %v", v)
	}
	// The kernel still executes cells, and the replacement sees updates.
	reply, err := k.ExecuteCell("s", "state = state + 1\nprint(state)\n", testTimeout)
	if err != nil {
		t.Fatalf("post-migration execute: %v", err)
	}
	if reply.Status != "ok" || !strings.Contains(reply.Output, "124") {
		t.Fatalf("post-migration reply = %+v", reply)
	}
	waitFor(t, func() bool {
		return globalIs(nr, "state", pynb.Int(124))
	}, "replacement receives post-migration state")
}

func TestSequentialExecutions(t *testing.T) {
	k := newTestKernel(t)
	for i := 0; i < 5; i++ {
		code := "n = " + string(rune('0'+i)) + "\n"
		reply, err := k.ExecuteCell("s", code, testTimeout)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if reply.Status != "ok" {
			t.Fatalf("cell %d reply = %+v", i, reply)
		}
		if reply.ExecutionCount != i+1 {
			t.Fatalf("cell %d count = %d", i, reply.ExecutionCount)
		}
	}
	// Executions are spread or concentrated depending on raft leadership,
	// but the total must be exactly 5.
	waitFor(t, func() bool {
		total := 0
		for _, r := range k.Replicas() {
			total += r.ExecCount()
		}
		return total == 5
	}, "5 total executions")
}

func TestSyncLatenciesRecorded(t *testing.T) {
	k := newTestKernel(t)
	if _, err := k.ExecuteCell("s", "v = 1\n", testTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return len(k.SyncLatencies()) >= 1
	}, "sync latency recorded")
	for _, l := range k.SyncLatencies() {
		if l < 0 || l > 10 {
			t.Fatalf("implausible sync latency %v s", l)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing ID must fail")
	}
	if _, err := NewReplica(ReplicaConfig{}); err == nil {
		t.Error("empty replica config must fail")
	}
	if _, err := NewReplica(ReplicaConfig{KernelID: "k", Replica: 1}); err == nil {
		t.Error("missing OnReply must fail")
	}
}

func TestOpCodec(t *testing.T) {
	op := Op{Kind: OpVote, Term: 3, Replica: 2, VoteFor: 1}
	back, err := DecodeOp(op.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != op.Kind || back.Term != op.Term || back.Replica != op.Replica || back.VoteFor != op.VoteFor {
		t.Fatalf("round trip: %+v != %+v", back, op)
	}
	if _, err := DecodeOp([]byte("junk")); err == nil {
		t.Error("bad op must fail")
	}
	if _, err := DecodeOp([]byte("{}")); err == nil {
		t.Error("missing kind must fail")
	}
}

func globalIs(r *Replica, name string, want pynb.Value) bool {
	v, ok := r.Global(name)
	return ok && v == want
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
