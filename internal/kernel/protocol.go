package kernel

import (
	"encoding/json"
	"fmt"
)

// OpKind enumerates the kernel's Raft log entry kinds.
type OpKind string

// Log entry kinds of the executor election and state sync protocols.
const (
	// OpLead proposes that the sender executes this election's cell task.
	OpLead OpKind = "LEAD"
	// OpYield declines to execute (insufficient GPUs, or the Global
	// Scheduler converted the request to a yield_request).
	OpYield OpKind = "YIELD"
	// OpVote confirms the first committed LEAD proposal (Fig. 5 step 4).
	OpVote OpKind = "VOTE"
	// OpDone announces that the executor finished the cell task and
	// carries the execution result (Fig. 5 step 7).
	OpDone OpKind = "DONE"
	// OpState replicates one small updated global inline (Fig. 6).
	OpState OpKind = "STATE"
	// OpStatePtr replicates a pointer to a large object persisted in the
	// distributed data store (§3.2.4 "Handling Large Objects").
	OpStatePtr OpKind = "STATEPTR"
)

// Op is one kernel log entry. Term is the election term: the per-kernel
// execution counter, not Raft's internal term.
type Op struct {
	Kind    OpKind `json:"kind"`
	Term    uint64 `json:"term"`
	Replica int    `json:"replica"`

	// OpVote: the replica being voted for.
	VoteFor int `json:"vote_for,omitempty"`

	// OpDone: execution result.
	Status string `json:"status,omitempty"` // "ok" or "error"
	Output string `json:"output,omitempty"`
	EName  string `json:"ename,omitempty"`
	EValue string `json:"evalue,omitempty"`

	// OpState / OpStatePtr: replicated variable.
	VarName string `json:"var,omitempty"`
	// Value is the serialized pynb value (OpState only).
	Value []byte `json:"value,omitempty"`
	// Key locates the object in the data store (OpStatePtr only).
	Key string `json:"key,omitempty"`
	// Size is the object's size in bytes (OpStatePtr only).
	Size int64 `json:"size,omitempty"`
}

// Encode serializes the op for a Raft log entry.
func (o Op) Encode() []byte {
	data, err := json.Marshal(o)
	if err != nil {
		// Op contains only marshalable fields; failure is programmer error.
		panic(fmt.Sprintf("kernel: encode op: %v", err))
	}
	return data
}

// DecodeOp parses an op from a Raft log entry.
func DecodeOp(data []byte) (Op, error) {
	var o Op
	if err := json.Unmarshal(data, &o); err != nil {
		return Op{}, fmt.Errorf("kernel: decode op: %w", err)
	}
	if o.Kind == "" {
		return Op{}, fmt.Errorf("kernel: op missing kind")
	}
	return o, nil
}
