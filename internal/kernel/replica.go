package kernel

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"notebookos/internal/jupyter"
	"notebookos/internal/pynb"
	"notebookos/internal/raft"
	"notebookos/internal/simclock"
	"notebookos/internal/store"
)

// DefaultLargeObjectThreshold splits small globals (replicated inline via
// Raft) from large ones (checkpointed to the data store): 1 MiB.
const DefaultLargeObjectThreshold = 1 << 20

// ReplyFunc delivers an execute_reply toward the replica's Local Scheduler.
type ReplyFunc func(msg jupyter.Message)

// AllYieldFunc reports a failed election (every replica yielded) so the
// Global Scheduler can migrate a replica (paper §3.2.3).
type AllYieldFunc func(kernelID string, electionTerm uint64)

// ReplicaConfig configures one kernel replica.
type ReplicaConfig struct {
	KernelID string
	// Replica is this replica's number, 1..R.
	Replica int
	// RaftID is this replica's Raft node ID; it must be unique across
	// replica generations (migrated replacements get fresh IDs).
	RaftID raft.NodeID
	// RaftPeers is the full Raft membership at creation time.
	RaftPeers []raft.NodeID
	// Transport connects the replica to its peers.
	Transport raft.Transport
	// Store is the distributed data store for large objects.
	Store store.Store
	// Clock drives timeouts and the train() builtin.
	Clock simclock.Clock
	// OnReply receives execute_reply messages (required).
	OnReply ReplyFunc
	// OnAllYield is invoked when an election fails with all replicas
	// yielding (may be nil).
	OnAllYield AllYieldFunc
	// LargeObjectThreshold overrides DefaultLargeObjectThreshold when >0.
	LargeObjectThreshold int64
	// InstallRuntime is called with the replica's interpreter at startup
	// so the notebook runtime (e.g. workload.Install) can add builtins.
	InstallRuntime func(in *pynb.Interp, r *Replica)
	// TickInterval is the Raft tick period (default 10ms).
	TickInterval time.Duration
	// Seed randomizes Raft election timeouts.
	Seed int64
	// Logger receives diagnostics (may be nil).
	Logger raft.Logger
}

type election struct {
	term       uint64
	msg        jupyter.Message
	haveMsg    bool
	proposed   bool
	leadSeen   bool
	leader     int
	voted      bool
	winner     int
	yields     map[int]bool
	execStart  bool
	done       bool
	doneOp     Op
	allYielded bool
}

// Replica is one of a distributed kernel's R replicas: a pynb interpreter
// (standing in for the IPython process) plus a Raft node, the election
// state machine, and the state replication logic.
type Replica struct {
	cfg  ReplicaConfig
	node *raft.Node

	mu        sync.Mutex
	interp    *pynb.Interp
	elections map[uint64]*election
	execCount int
	peers     int
	stopped   bool

	// syncLatencies records end-to-end small-object sync latencies
	// (propose -> apply), the "Sync" series of Fig. 11.
	syncMu        sync.Mutex
	syncStart     map[string]time.Time
	syncLatencies []float64

	wg sync.WaitGroup
}

type nopLogger struct{}

func (nopLogger) Logf(string, ...any) {}

// NewReplica creates and starts a replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.KernelID == "" || cfg.Replica <= 0 {
		return nil, fmt.Errorf("kernel: config requires KernelID and Replica")
	}
	if cfg.OnReply == nil {
		return nil, fmt.Errorf("kernel: config requires OnReply")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.LargeObjectThreshold <= 0 {
		cfg.LargeObjectThreshold = DefaultLargeObjectThreshold
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 10 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = nopLogger{}
	}
	r := &Replica{
		cfg:       cfg,
		interp:    pynb.New(),
		elections: map[uint64]*election{},
		peers:     len(cfg.RaftPeers),
		syncStart: map[string]time.Time{},
	}
	if cfg.InstallRuntime != nil {
		cfg.InstallRuntime(r.interp, r)
	}
	node, err := raft.NewNode(raft.Config{
		ID:        cfg.RaftID,
		Peers:     cfg.RaftPeers,
		Transport: cfg.Transport,
		Apply:     r.apply,
		ApplySnapshot: func(index, term uint64, data []byte) {
			if err := r.restoreSnapshot(data); err != nil {
				cfg.Logger.Logf("kernel %s r%d: snapshot restore: %v", cfg.KernelID, cfg.Replica, err)
			}
		},
		Seed:   cfg.Seed,
		Logger: cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	r.node = node
	node.StartTicker(cfg.Clock, cfg.TickInterval)
	return r, nil
}

// Node exposes the replica's Raft node (for membership changes and tests).
func (r *Replica) Node() *raft.Node { return r.node }

// ID returns the replica number (1..R).
func (r *Replica) ID() int { return r.cfg.Replica }

// KernelID returns the owning distributed kernel's ID.
func (r *Replica) KernelID() string { return r.cfg.KernelID }

// Interp exposes the replica's interpreter for runtime installation at
// construction time. For concurrent reads of kernel state, use Global.
func (r *Replica) Interp() *pynb.Interp { return r.interp }

// Global returns the named kernel-namespace variable, synchronized against
// concurrent cell execution and state replication.
func (r *Replica) Global(name string) (pynb.Value, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.interp.Globals[name]
	return v, ok
}

// SetGlobal installs a value into the kernel namespace (used by runtimes
// and tests).
func (r *Replica) SetGlobal(name string, v pynb.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.interp.Globals[name] = v
}

// Stop terminates the replica and its Raft node.
func (r *Replica) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	r.node.Stop()
	r.wg.Wait()
}

// Alive reports whether the replica is still running. The schedulers use
// it as the heartbeat signal of §3.2.5: a replica that stops responding
// is detected and replaced.
func (r *Replica) Alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.stopped
}

// SyncLatencies returns recorded small-object sync latencies in seconds.
func (r *Replica) SyncLatencies() []float64 {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return append([]float64(nil), r.syncLatencies...)
}

// HandleRequest processes an execute_request or yield_request forwarded by
// the Local Scheduler. It is asynchronous: the reply arrives via OnReply.
func (r *Replica) HandleRequest(msg jupyter.Message) error {
	if err := msg.Validate(); err != nil {
		return err
	}
	var term uint64
	if t, ok := msg.Metadata[jupyter.MetaElectionTermID]; ok {
		if _, err := fmt.Sscanf(t, "%d", &term); err != nil {
			return fmt.Errorf("kernel: bad election term %q: %v", t, err)
		}
	}
	if term == 0 {
		return fmt.Errorf("kernel: request missing election term metadata")
	}
	kind := OpLead
	if msg.Header.MsgType == jupyter.MsgYieldRequest {
		kind = OpYield
	}

	r.mu.Lock()
	el := r.electionLocked(term)
	el.msg = msg
	el.haveMsg = true
	proposed := el.proposed
	el.proposed = true
	r.mu.Unlock()
	if proposed {
		return fmt.Errorf("kernel %s r%d: duplicate request for term %d", r.cfg.KernelID, r.cfg.Replica, term)
	}

	op := Op{Kind: kind, Term: term, Replica: r.cfg.Replica}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.proposeWithRetry(op.Encode(), 30*time.Second)
	}()
	return nil
}

// electionLocked returns (creating if needed) the election for term.
// Caller holds r.mu.
func (r *Replica) electionLocked(term uint64) *election {
	el, ok := r.elections[term]
	if !ok {
		el = &election{term: term, yields: map[int]bool{}}
		r.elections[term] = el
	}
	return el
}

// proposeWithRetry forwards a proposal until the Raft cluster accepts it
// or the timeout elapses. Proposals can be dropped while leadership is
// unsettled; the protocol tolerates re-proposal (duplicate LEAD/YIELD ops
// for a term are idempotent at the election layer).
func (r *Replica) proposeWithRetry(data []byte, timeout time.Duration) {
	deadline := r.cfg.Clock.Now().Add(timeout)
	backoff := 20 * time.Millisecond
	for {
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return
		}
		err := r.node.Propose(data)
		if err == nil {
			return
		}
		if r.cfg.Clock.Now().After(deadline) {
			r.cfg.Logger.Logf("kernel %s r%d: proposal timed out: %v", r.cfg.KernelID, r.cfg.Replica, err)
			return
		}
		r.cfg.Clock.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// apply consumes committed Raft entries in order (single applier
// goroutine per node).
func (r *Replica) apply(e raft.Entry) {
	if e.Type != raft.EntryNormal || len(e.Data) == 0 {
		return
	}
	op, err := DecodeOp(e.Data)
	if err != nil {
		r.cfg.Logger.Logf("kernel %s r%d: %v", r.cfg.KernelID, r.cfg.Replica, err)
		return
	}
	switch op.Kind {
	case OpLead:
		r.applyLead(op)
	case OpYield:
		r.applyYield(op)
	case OpVote:
		r.applyVote(op)
	case OpDone:
		r.applyDone(op)
	case OpState:
		r.applyState(op)
	case OpStatePtr:
		r.applyStatePtr(op)
	}
}

func (r *Replica) applyLead(op Op) {
	r.mu.Lock()
	el := r.electionLocked(op.Term)
	if el.leadSeen {
		// Later LEAD proposals lose: the first committed one wins.
		r.mu.Unlock()
		return
	}
	el.leadSeen = true
	el.leader = op.Replica
	alreadyVoted := el.voted
	el.voted = true
	r.mu.Unlock()

	if alreadyVoted {
		return
	}
	// Fig. 5 step 4: vote for the first committed LEAD proposal.
	vote := Op{Kind: OpVote, Term: op.Term, Replica: r.cfg.Replica, VoteFor: op.Replica}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.proposeWithRetry(vote.Encode(), 30*time.Second)
	}()
}

func (r *Replica) applyYield(op Op) {
	r.mu.Lock()
	el := r.electionLocked(op.Term)
	el.yields[op.Replica] = true
	failed := !el.leadSeen && len(el.yields) >= r.peers && !el.allYielded
	if failed {
		el.allYielded = true
	}
	r.mu.Unlock()

	if failed && r.cfg.OnAllYield != nil {
		// Every replica observes the failure; the Global Scheduler
		// deduplicates (kernel, term) reports.
		r.cfg.OnAllYield(r.cfg.KernelID, op.Term)
	}
}

func (r *Replica) applyVote(op Op) {
	r.mu.Lock()
	el := r.electionLocked(op.Term)
	if el.winner == 0 {
		el.winner = op.VoteFor
	}
	shouldExec := el.winner == r.cfg.Replica && !el.execStart && el.haveMsg
	if shouldExec {
		el.execStart = true
	}
	msg := el.msg
	r.mu.Unlock()

	if shouldExec {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.execute(op.Term, msg)
		}()
	}
}

// execute runs the user-submitted cell as the executor replica, then
// replicates updated state and announces completion.
func (r *Replica) execute(term uint64, msg jupyter.Message) {
	content, err := msg.ParseExecuteRequest()
	done := Op{Kind: OpDone, Term: term, Replica: r.cfg.Replica, Status: "ok"}
	var assigned []string
	if err != nil {
		done.Status = "error"
		done.EName = "ProtocolError"
		done.EValue = err.Error()
	} else {
		mod, perr := pynb.Parse(content.Code)
		if perr != nil {
			done.Status = "error"
			done.EName = "SyntaxError"
			done.EValue = perr.Error()
		} else {
			r.mu.Lock()
			execErr := r.interp.Exec(mod)
			done.Output = r.interp.Stdout()
			r.execCount++
			r.mu.Unlock()
			if execErr != nil {
				done.Status = "error"
				done.EName = "RuntimeError"
				done.EValue = execErr.Error()
			}
			assigned = pynb.AnalyzeAssigned(mod)
		}
	}
	// Announce completion first: the reply is on the critical path, state
	// replication is not (§3.2.4 "this process occurs entirely outside the
	// user request's critical path").
	r.proposeWithRetry(done.Encode(), 30*time.Second)
	r.replicateState(term, assigned)
}

// replicateState replicates the globals the cell assigned: small values
// inline through Raft, large ones via the data store plus a pointer entry.
func (r *Replica) replicateState(term uint64, assigned []string) {
	for _, name := range assigned {
		r.mu.Lock()
		val, ok := r.interp.Globals[name]
		r.mu.Unlock()
		if !ok {
			continue
		}
		data, err := pynb.EncodeValue(val)
		if err != nil {
			// Unserializable (e.g. builtin rebind): skip, like the paper's
			// "state of external processes cannot be synchronized".
			continue
		}
		if val.SizeBytes() < r.cfg.LargeObjectThreshold {
			op := Op{Kind: OpState, Term: term, Replica: r.cfg.Replica, VarName: name, Value: data}
			r.markSyncStart(term, name)
			r.proposeWithRetry(op.Encode(), 30*time.Second)
			continue
		}
		key := fmt.Sprintf("%s/state/%d/%s", r.cfg.KernelID, term, name)
		size := val.SizeBytes()
		r.wg.Add(1)
		go func(name, key string, size int64, data []byte) {
			defer r.wg.Done()
			if err := r.cfg.Store.Put(key, data); err != nil {
				r.cfg.Logger.Logf("kernel %s r%d: checkpoint %s: %v", r.cfg.KernelID, r.cfg.Replica, key, err)
				return
			}
			op := Op{Kind: OpStatePtr, Term: term, Replica: r.cfg.Replica, VarName: name, Key: key, Size: size}
			r.proposeWithRetry(op.Encode(), 60*time.Second)
		}(name, key, size, data)
	}
}

func (r *Replica) markSyncStart(term uint64, name string) {
	r.syncMu.Lock()
	r.syncStart[fmt.Sprintf("%d/%s", term, name)] = r.cfg.Clock.Now()
	r.syncMu.Unlock()
}

func (r *Replica) applyDone(op Op) {
	r.mu.Lock()
	el := r.electionLocked(op.Term)
	if el.done {
		r.mu.Unlock()
		return
	}
	el.done = true
	el.doneOp = op
	msg := el.msg
	haveMsg := el.haveMsg
	r.mu.Unlock()

	if !haveMsg {
		// This replica never saw the request (e.g. it joined after a
		// migration); it cannot form a reply envelope.
		return
	}
	// Fig. 5 step 9: every replica sends an execute_reply; the Global
	// Scheduler aggregates them.
	content := jupyter.ExecuteReplyContent{
		Status:         op.Status,
		ExecutionCount: int(op.Term),
		Replica:        r.cfg.Replica,
		Yielded:        op.Replica != r.cfg.Replica,
		EName:          op.EName,
		EValue:         op.EValue,
	}
	if op.Replica == r.cfg.Replica {
		content.Output = op.Output
	}
	reply, err := msg.Child(jupyter.MsgExecuteReply, content)
	if err != nil {
		r.cfg.Logger.Logf("kernel %s r%d: build reply: %v", r.cfg.KernelID, r.cfg.Replica, err)
		return
	}
	r.cfg.OnReply(reply)
}

func (r *Replica) applyState(op Op) {
	if op.Replica == r.cfg.Replica {
		// The executor already has the value; record the sync latency.
		r.syncMu.Lock()
		key := fmt.Sprintf("%d/%s", op.Term, op.VarName)
		if start, ok := r.syncStart[key]; ok {
			r.syncLatencies = append(r.syncLatencies, r.cfg.Clock.Now().Sub(start).Seconds())
			delete(r.syncStart, key)
		}
		r.syncMu.Unlock()
		return
	}
	val, err := pynb.DecodeValue(op.Value)
	if err != nil {
		r.cfg.Logger.Logf("kernel %s r%d: apply state %s: %v", r.cfg.KernelID, r.cfg.Replica, op.VarName, err)
		return
	}
	r.mu.Lock()
	r.interp.Globals[op.VarName] = val
	r.mu.Unlock()
}

func (r *Replica) applyStatePtr(op Op) {
	if op.Replica == r.cfg.Replica {
		return
	}
	// Large objects are fetched asynchronously; the high task IATs of IDLT
	// workloads hide this latency (§3.2.4).
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		data, err := r.cfg.Store.Get(op.Key)
		if err != nil {
			r.cfg.Logger.Logf("kernel %s r%d: fetch %s: %v", r.cfg.KernelID, r.cfg.Replica, op.Key, err)
			return
		}
		val, err := pynb.DecodeValue(data)
		if err != nil {
			r.cfg.Logger.Logf("kernel %s r%d: decode %s: %v", r.cfg.KernelID, r.cfg.Replica, op.Key, err)
			return
		}
		r.mu.Lock()
		r.interp.Globals[op.VarName] = val
		r.mu.Unlock()
	}()
}

// snapshotState is the serialized kernel namespace used for checkpoints
// (migration) and Raft snapshots.
type snapshotState struct {
	ExecCount int               `json:"exec_count"`
	Globals   map[string][]byte `json:"globals"`
}

// Checkpoint persists the replica's serializable state to the data store
// under the kernel's checkpoint key and returns that key. The Global
// Scheduler invokes this before migrating the replica (§3.2.3).
func (r *Replica) Checkpoint() (string, error) {
	data, err := r.snapshotBytes()
	if err != nil {
		return "", err
	}
	key := fmt.Sprintf("%s/ckpt/r%d", r.cfg.KernelID, r.cfg.Replica)
	if err := r.cfg.Store.Put(key, data); err != nil {
		return "", fmt.Errorf("kernel: checkpoint: %w", err)
	}
	return key, nil
}

func (r *Replica) snapshotBytes() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := snapshotState{ExecCount: r.execCount, Globals: map[string][]byte{}}
	for name, val := range r.interp.Globals {
		data, err := pynb.EncodeValue(val)
		if err != nil {
			continue // unserializable globals are skipped
		}
		snap.Globals[name] = data
	}
	return json.Marshal(snap)
}

// RestoreFromStore loads a checkpoint written by Checkpoint.
func (r *Replica) RestoreFromStore(key string) error {
	data, err := r.cfg.Store.Get(key)
	if err != nil {
		return fmt.Errorf("kernel: restore: %w", err)
	}
	return r.restoreSnapshot(data)
}

func (r *Replica) restoreSnapshot(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var snap snapshotState
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("kernel: parse snapshot: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.execCount = snap.ExecCount
	for name, raw := range snap.Globals {
		val, err := pynb.DecodeValue(raw)
		if err != nil {
			continue
		}
		r.interp.Globals[name] = val
	}
	return nil
}

// ExecCount returns the number of cells this replica has executed locally.
func (r *Replica) ExecCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.execCount
}

// ElectionWinner reports the winner of an election term (0 if undecided).
func (r *Replica) ElectionWinner(term uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.elections[term]; ok {
		return el.winner
	}
	return 0
}
