// Package kernel implements NotebookOS's Distributed Kernel (paper §3.2):
// a logical Jupyter kernel realized as R Raft-replicated replicas spread
// across GPU servers. It provides the executor election protocol
// (LEAD/YIELD proposals and VOTE confirmation, Fig. 5), AST-based state
// synchronization of small globals through the Raft log (Fig. 6),
// large-object checkpointing to the distributed data store with pointer
// entries, failed-election reporting (the trigger for replica migration),
// and replica replacement via Raft membership changes.
package kernel
