package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"notebookos/internal/jupyter"
	"notebookos/internal/pynb"
	"notebookos/internal/raft"
	"notebookos/internal/simclock"
	"notebookos/internal/store"
)

// Config configures a distributed kernel.
type Config struct {
	// ID is the kernel's unique identifier.
	ID string
	// Replicas is R, the replication factor (default 3, see §3.1).
	Replicas int
	// Store is the distributed data store shared by the replicas.
	Store store.Store
	// Clock drives Raft ticks, retries, and runtimes.
	Clock simclock.Clock
	// OnReply receives each replica's execute_reply (may be nil; the
	// kernel still aggregates replies internally for ExecuteCell).
	OnReply func(replica int, msg jupyter.Message)
	// OnAllYield is invoked once per failed election after deduplication.
	OnAllYield AllYieldFunc
	// InstallRuntime installs notebook builtins into each replica.
	InstallRuntime func(in *pynb.Interp, r *Replica)
	// NetMinDelay/NetMaxDelay bound the simulated P2P link latency
	// between replicas.
	NetMinDelay, NetMaxDelay time.Duration
	// TickInterval is the Raft tick period.
	TickInterval time.Duration
	// LargeObjectThreshold is the inline-vs-pointer state cutoff.
	LargeObjectThreshold int64
	// Seed randomizes Raft timeouts deterministically.
	Seed int64
	// Logger receives diagnostics (may be nil).
	Logger raft.Logger
}

// Kernel is a NotebookOS distributed kernel: R replicas connected by a
// peer-to-peer network running Raft (paper §3.2.2).
type Kernel struct {
	cfg Config
	net *raft.LocalNetwork

	mu       sync.Mutex
	replicas map[int]*Replica
	raftIDs  map[int]raft.NodeID
	gen      int
	stopped  bool

	term atomic.Uint64

	// reply fan-in for ExecuteCell.
	waiterMu sync.Mutex
	waiters  map[uint64]chan jupyter.Message

	// all-yield dedup.
	yieldMu   sync.Mutex
	yieldSeen map[uint64]bool
}

// New creates a distributed kernel with R running replicas.
func New(cfg Config) (*Kernel, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("kernel: config requires ID")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.NetMaxDelay < cfg.NetMinDelay {
		cfg.NetMaxDelay = cfg.NetMinDelay
	}
	k := &Kernel{
		cfg:       cfg,
		net:       raft.NewLocalNetwork(cfg.NetMinDelay, cfg.NetMaxDelay, cfg.Seed+7),
		replicas:  map[int]*Replica{},
		raftIDs:   map[int]raft.NodeID{},
		gen:       1,
		waiters:   map[uint64]chan jupyter.Message{},
		yieldSeen: map[uint64]bool{},
	}
	peers := make([]raft.NodeID, 0, cfg.Replicas)
	for i := 1; i <= cfg.Replicas; i++ {
		peers = append(peers, k.raftID(i, 1))
	}
	for i := 1; i <= cfg.Replicas; i++ {
		r, err := k.startReplica(i, k.raftID(i, 1), peers)
		if err != nil {
			k.Stop()
			return nil, err
		}
		k.replicas[i] = r
		k.raftIDs[i] = k.raftID(i, 1)
	}
	return k, nil
}

func (k *Kernel) raftID(replica, gen int) raft.NodeID {
	return raft.NodeID(fmt.Sprintf("%s-r%d-g%d", k.cfg.ID, replica, gen))
}

func (k *Kernel) startReplica(num int, id raft.NodeID, peers []raft.NodeID) (*Replica, error) {
	r, err := NewReplica(ReplicaConfig{
		KernelID:  k.cfg.ID,
		Replica:   num,
		RaftID:    id,
		RaftPeers: peers,
		Transport: k.net,
		Store:     k.cfg.Store,
		Clock:     k.cfg.Clock,
		OnReply: func(msg jupyter.Message) {
			k.deliverReply(num, msg)
		},
		OnAllYield:           k.handleAllYield,
		LargeObjectThreshold: k.cfg.LargeObjectThreshold,
		InstallRuntime:       k.cfg.InstallRuntime,
		TickInterval:         k.cfg.TickInterval,
		Seed:                 k.cfg.Seed + int64(num)*13,
		Logger:               k.cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	k.net.Register(id, r.Node())
	return r, nil
}

func (k *Kernel) deliverReply(replica int, msg jupyter.Message) {
	if k.cfg.OnReply != nil {
		k.cfg.OnReply(replica, msg)
	}
	content, err := msg.ParseExecuteReply()
	if err != nil {
		return
	}
	if content.Yielded {
		return
	}
	k.waiterMu.Lock()
	ch, ok := k.waiters[uint64(content.ExecutionCount)]
	k.waiterMu.Unlock()
	if ok {
		select {
		case ch <- msg:
		default:
		}
	}
}

func (k *Kernel) handleAllYield(kernelID string, term uint64) {
	k.yieldMu.Lock()
	seen := k.yieldSeen[term]
	k.yieldSeen[term] = true
	k.yieldMu.Unlock()
	if seen {
		return
	}
	if k.cfg.OnAllYield != nil {
		k.cfg.OnAllYield(kernelID, term)
	}
}

// ID returns the kernel's identifier.
func (k *Kernel) ID() string { return k.cfg.ID }

// NumReplicas returns R.
func (k *Kernel) NumReplicas() int { return k.cfg.Replicas }

// Replica returns replica number i (1-based).
func (k *Kernel) Replica(i int) (*Replica, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	r, ok := k.replicas[i]
	return r, ok
}

// Replicas returns the current replicas in replica-number order.
func (k *Kernel) Replicas() []*Replica {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Replica, 0, len(k.replicas))
	for i := 1; i <= k.cfg.Replicas; i++ {
		if r, ok := k.replicas[i]; ok {
			out = append(out, r)
		}
	}
	return out
}

// NextTerm allocates the next election term (execution counter). The
// Global Scheduler stamps it into request metadata so all replicas agree
// which election a request belongs to.
func (k *Kernel) NextTerm() uint64 { return k.term.Add(1) }

// Stop terminates all replicas and the P2P network.
func (k *Kernel) Stop() {
	k.mu.Lock()
	if k.stopped {
		k.mu.Unlock()
		return
	}
	k.stopped = true
	reps := make([]*Replica, 0, len(k.replicas))
	for _, r := range k.replicas {
		reps = append(reps, r)
	}
	k.mu.Unlock()
	for _, r := range reps {
		r.Stop()
	}
	k.net.Close()
}

// Broadcast stamps the election term onto msg and delivers a copy to every
// replica, converting it to a yield_request for replicas in yield.
// It mirrors the Global Scheduler broadcasting a cell execution (Fig. 5
// step 1) without the scheduler layers; the platform uses its own routing.
func (k *Kernel) Broadcast(msg jupyter.Message, term uint64, yield map[int]bool) error {
	msg = msg.WithMeta(jupyter.MetaElectionTermID, fmt.Sprint(term))
	msg.KernelID = k.cfg.ID
	var firstErr error
	for _, r := range k.Replicas() {
		m := msg
		if yield[r.ID()] {
			m = m.AsYield(0)
			m = m.WithMeta(jupyter.MetaElectionTermID, fmt.Sprint(term))
		}
		if err := r.HandleRequest(m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrExecuteTimeout is returned by ExecuteCell when no executor reply
// arrives in time.
var ErrExecuteTimeout = errors.New("kernel: execute timed out")

// ExecuteCell submits code to the kernel and waits for the executor
// replica's reply — the library-level convenience entry point used by the
// examples and tests. Production traffic flows through the platform's
// Global Scheduler instead.
func (k *Kernel) ExecuteCell(session, code string, timeout time.Duration) (jupyter.ExecuteReplyContent, error) {
	term := k.NextTerm()
	req, err := jupyter.New(jupyter.MsgExecuteRequest, session, "user",
		jupyter.ExecuteRequestContent{Code: code})
	if err != nil {
		return jupyter.ExecuteReplyContent{}, err
	}
	ch := make(chan jupyter.Message, 1)
	k.waiterMu.Lock()
	k.waiters[term] = ch
	k.waiterMu.Unlock()
	defer func() {
		k.waiterMu.Lock()
		delete(k.waiters, term)
		k.waiterMu.Unlock()
	}()

	if err := k.Broadcast(req, term, nil); err != nil {
		return jupyter.ExecuteReplyContent{}, err
	}
	select {
	case msg := <-ch:
		return msg.ParseExecuteReply()
	case <-k.cfg.Clock.After(timeout):
		return jupyter.ExecuteReplyContent{}, fmt.Errorf("%w after %v (term %d)", ErrExecuteTimeout, timeout, term)
	}
}

// ReplaceReplica migrates replica number num onto a fresh Raft node,
// following the paper's migration sequence (§3.2.3): checkpoint state to
// the data store, terminate the original replica, remove it from the Raft
// configuration, add the replacement, and let it restore the checkpoint
// and replay the log.
func (k *Kernel) ReplaceReplica(num int, timeout time.Duration) (*Replica, error) {
	k.mu.Lock()
	old, ok := k.replicas[num]
	if !ok {
		k.mu.Unlock()
		return nil, fmt.Errorf("kernel: no replica %d", num)
	}
	oldID := k.raftIDs[num]
	k.gen++
	newID := k.raftID(num, k.gen)
	// Membership after the swap: all current raft IDs minus old plus new.
	peers := []raft.NodeID{newID}
	for i, id := range k.raftIDs {
		if i != num {
			peers = append(peers, id)
		}
	}
	k.mu.Unlock()

	// 1. Persist important state to the data store.
	ckptKey, err := old.Checkpoint()
	if err != nil {
		return nil, err
	}

	// 2. Terminate the original replica.
	k.net.Unregister(oldID)
	old.Stop()

	// 3. Reconfigure: remove the terminated replica, then add the new one.
	deadline := k.cfg.Clock.Now().Add(timeout)
	if err := k.proposeConfChange(raft.ConfChange{Type: raft.RemoveNode, Node: oldID}, num, deadline); err != nil {
		return nil, fmt.Errorf("kernel: remove old replica: %w", err)
	}
	if err := k.proposeConfChange(raft.ConfChange{Type: raft.AddNode, Node: newID}, num, deadline); err != nil {
		return nil, fmt.Errorf("kernel: add new replica: %w", err)
	}

	// 4. Start the replacement; it restores the checkpoint, then replays
	// the Raft log from the leader to catch up.
	nr, err := k.startReplica(num, newID, peers)
	if err != nil {
		return nil, err
	}
	if err := nr.RestoreFromStore(ckptKey); err != nil {
		nr.Stop()
		return nil, err
	}
	k.mu.Lock()
	k.replicas[num] = nr
	k.raftIDs[num] = newID
	k.mu.Unlock()
	return nr, nil
}

// proposeConfChange pushes a membership change through the replicas,
// retrying around leader elections, dropped forwards, and in-flight
// changes (conf-change application is idempotent, so re-proposal is safe).
// skip excludes the being-replaced replica number.
func (k *Kernel) proposeConfChange(cc raft.ConfChange, skip int, deadline time.Time) error {
	backoff := 20 * time.Millisecond
	for k.cfg.Clock.Now().Before(deadline) {
		// Propose via every live replica; follower proposals are forwarded
		// to the Raft leader and may be dropped, hence the verify loop.
		for _, r := range k.Replicas() {
			if r.ID() == skip {
				continue
			}
			_ = r.Node().ProposeConfChange(cc)
		}
		settle := k.cfg.Clock.Now().Add(500 * time.Millisecond)
		for k.cfg.Clock.Now().Before(settle) {
			for _, r := range k.Replicas() {
				if r.ID() == skip {
					continue
				}
				if r.Node().IsLeader() && k.confApplied(r, cc) {
					return nil
				}
			}
			k.cfg.Clock.Sleep(10 * time.Millisecond)
		}
		k.cfg.Clock.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("kernel: conf change %+v not applied before deadline", cc)
}

func (k *Kernel) confApplied(r *Replica, cc raft.ConfChange) bool {
	peers := r.Node().Status().Peers
	found := false
	for _, p := range peers {
		if p == cc.Node {
			found = true
		}
	}
	if cc.Type == raft.AddNode {
		return found
	}
	return !found
}

// SyncLatencies aggregates small-object sync latencies across replicas
// (the Fig. 11 "Sync" series).
func (k *Kernel) SyncLatencies() []float64 {
	var out []float64
	for _, r := range k.Replicas() {
		out = append(out, r.SyncLatencies()...)
	}
	return out
}
