// Package metrics provides the measurement primitives used throughout the
// evaluation: latency/duration samples with percentiles and CDFs, step
// timelines with time integrals (GPU-hours), and the provider billing model
// from the paper's simulation study (§5.5.1).
//
// # Representation
//
// Timelines are columnar: breakpoints live in an []int64 of nanoseconds
// since the Unix epoch (the DES engine's native ordering key) beside a
// parallel []float64 of values — 16 bytes per point instead of the 32 a
// time.Time-backed pair costs. time.Time crosses the API boundary exactly
// once (UnixNano), and because a.Sub(b) of two in-range wall-clock times
// equals time.Duration(a.UnixNano()-b.UnixNano()) exactly, every float
// the metric values flow through (Duration.Hours() in Integral, in
// particular) is bit-identical to the time.Time representation. The
// property tests in timeline_ref_test.go pin this with == against a
// reference time.Time implementation. Timestamps must lie in int64-ns
// range (years 1678-2262). Timeline.Grow and Sample.Grow accept pre-size
// hints (typically derived from a trace's task count) so long simulations
// allocate each column once.
//
// # Merge invariants
//
// A Timeline is a right-continuous step function with non-decreasing
// timestamps; Integral is linear, so MergeTimelines (the pointwise sum of
// several timelines, used to combine per-cluster series into
// federation-wide ones) preserves the invariant
//
//	merged.Integral(a, b) == Σ tl.Integral(a, b)
//
// up to floating-point rounding. This is what lets federation-wide
// GPU-hour accounting be computed either from the merged series or from
// the per-cluster ones interchangeably. MergeTimelines exploits that its
// inputs are individually sorted: a pre-sized k-way sweep with ties to
// the lowest input index, no intermediate records, no sort.
//
// MergeSamples preserves sortedness rather than discovering it: each
// input sample is sorted in place (exactly what its first percentile
// query would have forced) and the sorted runs k-way merge into an
// output that is born sorted. Merging sorted runs produces exactly the
// sequence a concatenate-then-sort would, so every order statistic of a
// merged sample is bit-identical to the concatenation's and independent
// of the order the inputs finished in — the contract the sharded
// simulation merges rely on. Sample.Min and Sample.Max are tracked
// incrementally on Add and never trigger a sort.
package metrics
