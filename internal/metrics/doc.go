// Package metrics provides the measurement primitives used throughout the
// evaluation: latency/duration samples with percentiles and CDFs, step
// timelines with time integrals (GPU-hours), and the provider billing model
// from the paper's simulation study (§5.5.1).
//
// A Timeline is a right-continuous step function with non-decreasing
// timestamps; Integral is linear, so MergeTimelines (the pointwise sum of
// several timelines, used to combine per-cluster series into
// federation-wide ones) preserves the invariant
//
//	merged.Integral(a, b) == Σ tl.Integral(a, b)
//
// up to floating-point rounding. This is what lets federation-wide
// GPU-hour accounting be computed either from the merged series or from
// the per-cluster ones interchangeably.
package metrics
