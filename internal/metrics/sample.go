package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Sample accumulates float64 observations and answers percentile and CDF
// queries. It is not safe for concurrent use; each goroutine should own its
// own Sample or callers must synchronize.
//
// Min and max are tracked incrementally on Add, so reading an extremum
// never forces the O(n log n) sort that percentile queries need. Order
// statistics still sort lazily, once, on first query; a Sample produced by
// MergeSamples is born sorted and never pays that sort at all.
type Sample struct {
	xs     []float64
	sorted bool
	min    float64
	max    float64
	// Reservoir mode (see Reservoir): resCap bounds len(xs), resN counts
	// every observation ever Added, resRng drives the eviction draws.
	resCap int
	resN   int
	resRng *rand.Rand
}

// NewSample returns an empty sample, optionally seeded with xs.
func NewSample(xs ...float64) *Sample {
	s := &Sample{}
	s.Add(xs...)
	return s
}

// Grow ensures capacity for at least n additional observations without
// reallocating — the pre-size hint simulations derive from their trace's
// task count.
func (s *Sample) Grow(n int) {
	if n <= 0 {
		return
	}
	need := len(s.xs) + n
	if cap(s.xs) < need {
		xs := make([]float64, len(s.xs), need)
		copy(xs, s.xs)
		s.xs = xs
	}
}

// Reservoir switches the sample to bounded-memory reservoir mode: at most
// cap observations are kept, each of the N observations ever Added having
// kept-probability cap/N (Vitter's algorithm R), with eviction driven by
// the given seed so runs reproduce. Min, Max, and N stay exact over every
// observation; percentiles, Mean, and Sum become estimates over the kept
// subset. Must be called while the sample is empty. The streaming
// simulator's lean mode uses this to keep million-task latency
// distributions at a fixed footprint.
func (s *Sample) Reservoir(cap int, seed int64) {
	if len(s.xs) > 0 {
		panic("metrics: Reservoir on a non-empty sample")
	}
	if cap <= 0 {
		cap = 1
	}
	s.resCap = cap
	s.resRng = rand.New(rand.NewSource(seed))
	s.Grow(cap)
}

// Add records one or more observations.
func (s *Sample) Add(xs ...float64) {
	if len(xs) == 0 {
		return
	}
	if len(s.xs) == 0 && (s.resCap == 0 || s.resN == 0) {
		s.min, s.max = xs[0], xs[0]
	}
	for _, x := range xs {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	if s.resCap > 0 {
		for _, x := range xs {
			s.resN++
			if len(s.xs) < s.resCap {
				s.xs = append(s.xs, x)
			} else if j := s.resRng.Intn(s.resN); j < s.resCap {
				s.xs[j] = x
			}
		}
		s.sorted = false
		return
	}
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations (every observation ever Added, even
// those a reservoir evicted).
func (s *Sample) N() int {
	if s.resCap > 0 {
		return s.resN
	}
	return len(s.xs)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns NaN on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the arithmetic mean, or NaN on an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or NaN on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.max
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

// FracBelow returns the empirical CDF at x: the fraction of observations <= x.
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in [0, 1]
}

// CDF returns n evenly spaced (in probability) points of the empirical CDF,
// suitable for plotting the paper's CDF figures.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i+1) / float64(n)
		idx := int(p*float64(len(s.xs))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{X: s.xs[idx], P: p})
	}
	return pts
}

// Summary renders the canonical percentile row used across EXPERIMENTS.md.
func (s *Sample) Summary(unit string) string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%.2f%s p75=%.2f%s p90=%.2f%s p95=%.2f%s p99=%.2f%s max=%.2f%s",
		s.N(),
		s.Percentile(50), unit, s.Percentile(75), unit, s.Percentile(90), unit,
		s.Percentile(95), unit, s.Percentile(99), unit, s.Max(), unit)
}

// Values returns a copy of the observations in sorted order.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// MergeSamples combines samples into one, pre-sized to the exact total and
// already sorted: each input is sorted in place (exactly what a percentile
// query would have forced anyway), then the sorted runs are k-way merged
// with ties resolved in input order. Because merging sorted runs yields the
// same sorted sequence a concat-then-sort would, every order statistic of
// the merged sample is bit-identical to the concatenation's — without the
// copy-concat-resort allocation ladder the shard merges used to pay. Nil
// inputs are skipped.
func MergeSamples(samples ...*Sample) *Sample {
	runs := make([][]float64, 0, len(samples))
	total := 0
	for _, s := range samples {
		if s == nil || len(s.xs) == 0 {
			continue
		}
		s.sort()
		runs = append(runs, s.xs)
		total += len(s.xs)
	}
	out := &Sample{xs: make([]float64, 0, total), sorted: true}
	if total == 0 {
		return out
	}
	out.xs = MergeSorted(out.xs, func(a, b float64) bool { return a < b }, runs...)
	out.min, out.max = out.xs[0], out.xs[total-1]
	return out
}

// FormatCDFTable renders named CDFs side by side at the given percentiles —
// the textual equivalent of the paper's multi-series CDF plots.
func FormatCDFTable(names []string, samples []*Sample, percentiles []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "pct")
	for _, n := range names {
		fmt.Fprintf(&b, "%16s", n)
	}
	b.WriteByte('\n')
	for _, p := range percentiles {
		fmt.Fprintf(&b, "p%-7g", p)
		for _, s := range samples {
			fmt.Fprintf(&b, "%14.2f%s", s.Percentile(p), unit)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
