package metrics

// Billing implements the simple billing model of the paper's simulation
// study (§5.5.1):
//
//   - The provider pays the raw VM rate for every provisioned server-hour.
//   - Users pay UserMultiplier (1.15x) times the provider rate, proportional
//     to the fraction of the server's resources they actively use.
//   - Standby distributed-kernel replicas are charged StandbyFraction
//     (12.5 %) of the base rate: a $10/hr 8-GPU VM yields a $1.44/hr
//     standby charge (10 x 1.15 x 0.125).
//   - A replica actively training on g of the server's G GPUs is charged
//     rate x 1.15 x g/G ($5.75/hr for 4 of 8 GPUs on a $10/hr VM).
type Billing struct {
	// ServerHourlyUSD is the provider's cost for one 8-GPU server-hour.
	ServerHourlyUSD float64
	// GPUsPerServer is G in the per-GPU proration.
	GPUsPerServer int
	// UserMultiplier is the markup users pay over the provider rate.
	UserMultiplier float64
	// StandbyFraction is the fraction of the base rate billed for each
	// standby replica.
	StandbyFraction float64
}

// DefaultBilling matches the constants in §5.5.1 with the p3.16xlarge
// long-term-reservation rate implied by §2.4 (about $18.3M/month for 3,000
// 8-GPU servers, i.e. roughly $8.36 per server-hour).
func DefaultBilling() Billing {
	return Billing{
		ServerHourlyUSD: 8.36,
		GPUsPerServer:   8,
		UserMultiplier:  1.15,
		StandbyFraction: 0.125,
	}
}

// ProviderCost returns the provider's cost for the given server-hours.
func (b Billing) ProviderCost(serverHours float64) float64 {
	return b.ServerHourlyUSD * serverHours
}

// ActiveRevenue returns the user charge for gpuHours of active training,
// prorated per GPU.
func (b Billing) ActiveRevenue(gpuHours float64) float64 {
	perGPUHour := b.ServerHourlyUSD * b.UserMultiplier / float64(b.GPUsPerServer)
	return perGPUHour * gpuHours
}

// StandbyRevenue returns the charge for standby replica-hours.
func (b Billing) StandbyRevenue(replicaHours float64) float64 {
	return b.ServerHourlyUSD * b.UserMultiplier * b.StandbyFraction * replicaHours
}

// ReservationRevenue returns the user charge under the Reservation baseline,
// which bills the 1.15x rate for reserved GPU-hours whether or not they are
// used.
func (b Billing) ReservationRevenue(reservedGPUHours float64) float64 {
	perGPUHour := b.ServerHourlyUSD * b.UserMultiplier / float64(b.GPUsPerServer)
	return perGPUHour * reservedGPUHours
}

// ProfitMargin returns (revenue-cost)/revenue as a percentage, or 0 when
// revenue is 0.
func ProfitMargin(revenueUSD, costUSD float64) float64 {
	if revenueUSD == 0 {
		return 0
	}
	return (revenueUSD - costUSD) / revenueUSD * 100
}
