package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refTimeline is the pre-columnar reference implementation: time.Time
// breakpoints, the exact code the int64 Timeline replaced. The property
// tests below drive random operation sequences through both and require
// bit-identical answers — the "provably value-preserving" contract of the
// columnar rewrite. Keep this in sync with Timeline's documented semantics,
// not its representation.
type refTimeline struct {
	times  []time.Time
	values []float64
}

func (tl *refTimeline) Set(t time.Time, v float64) {
	n := len(tl.times)
	if n > 0 && t.Before(tl.times[n-1]) {
		panic("ref: backwards")
	}
	if n > 0 && t.Equal(tl.times[n-1]) {
		tl.values[n-1] = v
		return
	}
	tl.times = append(tl.times, t)
	tl.values = append(tl.values, v)
}

func (tl *refTimeline) Last() float64 {
	if len(tl.values) == 0 {
		return 0
	}
	return tl.values[len(tl.values)-1]
}

func (tl *refTimeline) Delta(t time.Time, d float64) { tl.Set(t, tl.Last()+d) }

func (tl *refTimeline) At(t time.Time) float64 {
	lo, hi := 0, len(tl.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tl.times[mid].After(t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return tl.values[lo-1]
}

func (tl *refTimeline) Integral(from, to time.Time) float64 {
	if !to.After(from) || len(tl.times) == 0 {
		return 0
	}
	idx := sort.Search(len(tl.times), func(i int) bool { return tl.times[i].After(from) })
	var total float64
	cur := from
	curVal := 0.0
	if idx > 0 {
		curVal = tl.values[idx-1]
	}
	for i := idx; i < len(tl.times); i++ {
		ti := tl.times[i]
		if ti.After(to) {
			break
		}
		total += curVal * ti.Sub(cur).Hours()
		cur = ti
		curVal = tl.values[i]
	}
	total += curVal * to.Sub(cur).Hours()
	return total
}

// refMerge is the pre-columnar MergeTimelines: gather every breakpoint,
// stable-sort, sweep.
func refMerge(tls ...*refTimeline) *refTimeline {
	out := &refTimeline{}
	type point struct{ idx, pos int }
	var pts []point
	for i, tl := range tls {
		for j := range tl.times {
			pts = append(pts, point{i, j})
		}
	}
	sort.SliceStable(pts, func(a, b int) bool {
		return tls[pts[a].idx].times[pts[a].pos].Before(tls[pts[b].idx].times[pts[b].pos])
	})
	cur := make([]float64, len(tls))
	sum := 0.0
	for _, p := range pts {
		tl := tls[p.idx]
		sum += tl.values[p.pos] - cur[p.idx]
		cur[p.idx] = tl.values[p.pos]
		out.Set(tl.times[p.pos], sum)
	}
	return out
}

// TestTimelineMatchesReferenceProperty drives random Set/Delta/At/Integral
// sequences through the columnar Timeline and the time.Time reference and
// requires exactly equal (==, not approximately equal) results.
func TestTimelineMatchesReferenceProperty(t *testing.T) {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		ref := &refTimeline{}
		cur := base
		end := base
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0: // Set at a strictly or equally advanced time
				cur = cur.Add(time.Duration(r.Intn(3600*1000)) * time.Millisecond)
				v := math.Floor(r.Float64()*1e6) / 64
				tl.Set(cur, v)
				ref.Set(cur, v)
			case 1: // Delta, occasionally at the exact same timestamp
				if r.Intn(3) > 0 {
					cur = cur.Add(time.Duration(r.Intn(1800)) * time.Second)
				}
				d := float64(r.Intn(64)) - 16
				tl.Delta(cur, d)
				ref.Delta(cur, d)
			case 2: // point query at an arbitrary instant (before/inside/after)
				q := base.Add(time.Duration(r.Int63n(int64(400 * time.Hour))))
				if got, want := tl.At(q), ref.At(q); got != want {
					t.Fatalf("seed %d op %d: At(%v) = %v, ref %v", seed, op, q, got, want)
				}
				if got, want := tl.Last(), ref.Last(); got != want {
					t.Fatalf("seed %d op %d: Last = %v, ref %v", seed, op, got, want)
				}
			case 3: // window integral with random, possibly inverted, bounds
				a := base.Add(time.Duration(r.Int63n(int64(300 * time.Hour))))
				b := base.Add(time.Duration(r.Int63n(int64(300 * time.Hour))))
				if got, want := tl.Integral(a, b), ref.Integral(a, b); got != want {
					t.Fatalf("seed %d op %d: Integral(%v,%v) = %v, ref %v", seed, op, a, b, got, want)
				}
			}
			if cur.After(end) {
				end = cur
			}
		}
		if tl.Len() != len(ref.times) {
			t.Fatalf("seed %d: len %d, ref %d", seed, tl.Len(), len(ref.times))
		}
		if got, want := tl.Integral(base, end.Add(time.Hour)), ref.Integral(base, end.Add(time.Hour)); got != want {
			t.Fatalf("seed %d: full integral %v, ref %v", seed, got, want)
		}
	}
}

// TestMergeTimelinesMatchesReferenceProperty merges random families of
// timelines — including nil and empty members and heavy timestamp
// collisions — through both implementations and requires identical points
// and bit-identical swept values.
func TestMergeTimelinesMatchesReferenceProperty(t *testing.T) {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		k := 1 + r.Intn(6)
		tls := make([]*Timeline, 0, k+1)
		refs := make([]*refTimeline, 0, k)
		for i := 0; i < k; i++ {
			if r.Intn(6) == 0 {
				tls = append(tls, nil) // nil members must be harmless
				continue
			}
			tl := NewTimeline()
			ref := &refTimeline{}
			cur := base
			n := r.Intn(80)
			for j := 0; j < n; j++ {
				// Coarse steps make cross-timeline collisions common.
				cur = cur.Add(time.Duration(r.Intn(4)) * 30 * time.Minute)
				v := float64(r.Intn(512)) / 8
				tl.Set(cur, v)
				ref.Set(cur, v)
			}
			tls = append(tls, tl)
			refs = append(refs, ref)
		}
		got := MergeTimelines(tls...)
		want := refMerge(refs...)
		if got.Len() != len(want.times) {
			t.Fatalf("seed %d: merged len %d, ref %d", seed, got.Len(), len(want.times))
		}
		for i := range want.times {
			if got.times[i] != want.times[i].UnixNano() || got.values[i] != want.values[i] {
				t.Fatalf("seed %d: point %d = (%d, %v), ref (%d, %v)", seed, i,
					got.times[i], got.values[i], want.times[i].UnixNano(), want.values[i])
			}
		}
		// Spot-check the swept function, not just the stored points.
		for q := 0; q < 50; q++ {
			at := base.Add(time.Duration(r.Int63n(int64(72 * time.Hour))))
			if g, w := got.At(at), want.At(at); g != w {
				t.Fatalf("seed %d: merged At(%v) = %v, ref %v", seed, at, g, w)
			}
		}
	}
}
