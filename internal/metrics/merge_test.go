package metrics

import (
	"math"
	"testing"
	"time"
)

func TestMergeTimelinesPointwiseSum(t *testing.T) {
	t0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	a := NewTimeline()
	a.Set(t0, 2)
	a.Set(t0.Add(10*time.Minute), 5)
	a.Set(t0.Add(30*time.Minute), 0)
	b := NewTimeline()
	b.Set(t0.Add(5*time.Minute), 3)
	b.Set(t0.Add(10*time.Minute), 7) // coincides with a's second point
	c := NewTimeline()               // empty input must be harmless

	m := MergeTimelines(a, b, c, nil)
	checks := []struct {
		at   time.Duration
		want float64
	}{
		{0, 2},                 // a=2 b=0
		{5 * time.Minute, 5},   // a=2 b=3
		{10 * time.Minute, 12}, // a=5 b=7
		{20 * time.Minute, 12},
		{30 * time.Minute, 7}, // a=0 b=7
	}
	for _, ck := range checks {
		if got := m.At(t0.Add(ck.at)); got != ck.want {
			t.Errorf("merged.At(+%v) = %v, want %v", ck.at, got, ck.want)
		}
	}
}

func TestMergeTimelinesIntegralIsSumOfIntegrals(t *testing.T) {
	t0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	end := t0.Add(6 * time.Hour)
	// Deterministic pseudo-random step functions.
	mk := func(seed int64, points int) *Timeline {
		tl := NewTimeline()
		s := uint64(seed)*0x9E3779B97F4A7C15 + 1
		at := t0
		for i := 0; i < points; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			at = at.Add(time.Duration(s%1800+1) * time.Second)
			tl.Set(at, float64(s%64))
		}
		return tl
	}
	tls := []*Timeline{mk(1, 40), mk(2, 25), mk(3, 60), mk(4, 1)}
	m := MergeTimelines(tls...)
	var sum float64
	for _, tl := range tls {
		sum += tl.Integral(t0, end)
	}
	got := m.Integral(t0, end)
	if math.Abs(got-sum) > 1e-9*math.Max(math.Abs(got), math.Abs(sum)) {
		t.Errorf("merged integral %v != sum of integrals %v", got, sum)
	}
}

func TestMergeTimelinesEmpty(t *testing.T) {
	if m := MergeTimelines(); m.Len() != 0 {
		t.Errorf("merge of nothing has %d points", m.Len())
	}
	if m := MergeTimelines(NewTimeline(), nil); m.Len() != 0 {
		t.Errorf("merge of empties has %d points", m.Len())
	}
}
