package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Timeline is a right-continuous step function of time: the value set at
// time t holds until the next point. It backs every "X over time" figure in
// the paper (provisioned GPUs, subscription ratio, active sessions, cost).
//
// Points are stored columnar: times as int64 nanoseconds since the Unix
// epoch (the same ordering key the DES engine uses) alongside a parallel
// []float64 of values. That is 16 bytes per point instead of the 32 a
// time.Time-backed pair costs, and integer compares on the query paths.
// Conversion happens once at the API boundary, so every arithmetic the
// metric values flow through (Duration.Hours() in Integral, in particular)
// is bit-identical to the time.Time representation: time.Time.Sub of two
// wall-clock timestamps equals the difference of their UnixNano keys.
// Timestamps must lie in int64-nanosecond range (years 1678-2262), which
// every simulated trace does.
type Timeline struct {
	times  []int64 // Unix nanoseconds, non-decreasing
	values []float64
	// coalesce, when positive, floor-quantizes every timestamp to a
	// multiple of this many nanoseconds, so consecutive points landing in
	// the same bucket collapse into one (Set overwrite). See
	// NewCoalescedTimeline.
	coalesce int64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// NewCoalescedTimeline returns a timeline that floor-quantizes timestamps
// to multiples of g, collapsing every point within one bucket into the
// bucket's last value. A delta series over an N-task workload normally
// stores 2N points; coalesced at the sampling period it stores at most
// span/g — bounded by the window, not the workload, which is what keeps a
// streaming million-session run's memory flat. Quantization flooring is
// monotone, so non-decreasing inputs stay non-decreasing; integrals drift
// only within one bucket's width per step edge. g <= 0 is a plain timeline.
func NewCoalescedTimeline(g time.Duration) *Timeline {
	tl := &Timeline{}
	if g > 0 {
		tl.coalesce = int64(g)
	}
	return tl
}

// Grow ensures capacity for at least n additional points without
// reallocating. Simulations call it with hints derived from the trace
// (2 points per task for delta series, span/period for sampled series) so
// long-trace runs pay one allocation per column instead of a geometric
// growth ladder.
func (tl *Timeline) Grow(n int) {
	if n <= 0 {
		return
	}
	need := len(tl.times) + n
	if cap(tl.times) < need {
		ts := make([]int64, len(tl.times), need)
		copy(ts, tl.times)
		tl.times = ts
	}
	if cap(tl.values) < need {
		vs := make([]float64, len(tl.values), need)
		copy(vs, tl.values)
		tl.values = vs
	}
}

// Set records value v at time t. Times must be non-decreasing; setting at
// the same timestamp overwrites the previous value at that timestamp.
func (tl *Timeline) Set(t time.Time, v float64) {
	tl.set(t.UnixNano(), v)
}

func (tl *Timeline) set(tns int64, v float64) {
	if tl.coalesce > 0 {
		// Floor toward negative infinity so pre-epoch timestamps (never
		// produced by the simulators, but cheap to get right) quantize
		// monotonically too.
		if r := tns % tl.coalesce; r != 0 {
			if r < 0 {
				r += tl.coalesce
			}
			tns -= r
		}
	}
	n := len(tl.times)
	if n > 0 && tns < tl.times[n-1] {
		panic(fmt.Sprintf("metrics: timeline time moved backwards: %v < %v",
			time.Unix(0, tns).UTC(), time.Unix(0, tl.times[n-1]).UTC()))
	}
	if n > 0 && tns == tl.times[n-1] {
		tl.values[n-1] = v
		return
	}
	tl.times = append(tl.times, tns)
	tl.values = append(tl.values, v)
}

// Delta adds d to the current value at time t (starting from 0).
func (tl *Timeline) Delta(t time.Time, d float64) {
	tl.set(t.UnixNano(), tl.Last()+d)
}

// Last returns the most recent value, or 0 if empty.
func (tl *Timeline) Last() float64 {
	if len(tl.values) == 0 {
		return 0
	}
	return tl.values[len(tl.values)-1]
}

// Len returns the number of recorded points.
func (tl *Timeline) Len() int { return len(tl.times) }

// At returns the value in effect at time t (0 before the first point).
func (tl *Timeline) At(t time.Time) float64 {
	tns := t.UnixNano()
	// Binary search for the last point with time <= t.
	lo, hi := 0, len(tl.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tl.times[mid] > tns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return tl.values[lo-1]
}

// Integral returns the time integral of the step function over [from, to],
// expressed in value-hours. Integrating a GPUs-provisioned timeline yields
// GPU-hours, the paper's headline savings unit.
func (tl *Timeline) Integral(from, to time.Time) float64 {
	fromNS, toNS := from.UnixNano(), to.UnixNano()
	if toNS <= fromNS || len(tl.times) == 0 {
		return 0
	}
	// Binary-search the first point after from instead of scanning from
	// index 0: integrating a suffix of a long timeline is O(log n + span).
	idx := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > fromNS })
	var total float64
	cur := fromNS
	curVal := 0.0
	if idx > 0 {
		curVal = tl.values[idx-1]
	}
	for i := idx; i < len(tl.times); i++ {
		ti := tl.times[i]
		if ti > toNS {
			break
		}
		total += curVal * time.Duration(ti-cur).Hours()
		cur = ti
		curVal = tl.values[i]
	}
	total += curVal * time.Duration(toNS-cur).Hours()
	return total
}

// Max returns the maximum recorded value (0 if empty).
func (tl *Timeline) Max() float64 {
	var m float64
	for _, v := range tl.values {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanOver returns the time-weighted mean over [from, to].
func (tl *Timeline) MeanOver(from, to time.Time) float64 {
	h := to.Sub(from).Hours()
	if h <= 0 {
		return math.NaN()
	}
	return tl.Integral(from, to) / h
}

// SamplePoint is one downsampled timeline point.
type SamplePoint struct {
	T time.Time
	V float64
}

// Downsample returns the timeline evaluated at n evenly spaced instants in
// [from, to], for compact textual plots.
func (tl *Timeline) Downsample(from, to time.Time, n int) []SamplePoint {
	if n <= 1 || !to.After(from) {
		return nil
	}
	step := to.Sub(from) / time.Duration(n-1)
	out := make([]SamplePoint, 0, n)
	for i := 0; i < n; i++ {
		t := from.Add(step * time.Duration(i))
		out = append(out, SamplePoint{T: t, V: tl.At(t)})
	}
	return out
}

// FormatSeries renders named timelines sampled at n instants as a table
// whose first column is hours since from — the textual analogue of the
// paper's timeline figures.
func FormatSeries(from, to time.Time, n int, names []string, tls []*Timeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "hour")
	for _, name := range names {
		fmt.Fprintf(&b, "%14s", name)
	}
	b.WriteByte('\n')
	if n <= 1 {
		return b.String()
	}
	step := to.Sub(from) / time.Duration(n-1)
	for i := 0; i < n; i++ {
		t := from.Add(step * time.Duration(i))
		fmt.Fprintf(&b, "%-10.2f", t.Sub(from).Hours())
		for _, tl := range tls {
			fmt.Fprintf(&b, "%14.2f", tl.At(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
