package metrics

import (
	"runtime"
	"time"
)

// PeakHeapDuring runs f and returns the high-water runtime.ReadMemStats
// HeapAlloc (bytes) observed while it ran, sampled from a background
// goroutine a few hundred times per second. It garbage-collects before
// starting so the reading reflects f, not leftovers from the caller.
//
// The sampler is the measurement half of the bounded-memory contract the
// streaming simulation makes (see sim.RunStreamSharded): scale canaries
// wrap a run in PeakHeapDuring and assert the peak stays bounded by
// session concurrency rather than total session count. Sampling is
// coarse, but allocation in a long simulation is steady enough that the
// high-water mark is stable to well within the factor-scale bounds those
// canaries assert.
func PeakHeapDuring(f func()) uint64 {
	runtime.GC()
	read := func() uint64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	peak := read()
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if h := read(); h > peak {
					peak = h
				}
			}
		}
	}()
	f()
	close(done)
	<-sampled
	if h := read(); h > peak {
		peak = h
	}
	return peak
}
