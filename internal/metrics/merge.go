package metrics

import "sort"

// MergeTimelines returns the pointwise sum of the given step functions:
// the merged value at any instant equals the sum of the inputs' values at
// that instant. It is how per-cluster series (committed GPUs, provisioned
// GPUs) combine into federation-wide ones.
//
// Because integration is linear, the merged timeline's Integral over any
// window equals the sum of the inputs' Integrals over that window (up to
// floating-point rounding) — the property the federated metrics tests pin.
func MergeTimelines(tls ...*Timeline) *Timeline {
	out := NewTimeline()
	// Gather every breakpoint across the inputs.
	total := 0
	for _, tl := range tls {
		if tl != nil {
			total += len(tl.times)
		}
	}
	if total == 0 {
		return out
	}
	type point struct {
		idx int // which timeline
		pos int // which point within it
	}
	pts := make([]point, 0, total)
	for i, tl := range tls {
		if tl == nil {
			continue
		}
		for j := range tl.times {
			pts = append(pts, point{i, j})
		}
	}
	// Sort breakpoints by time; ties keep input order, which is irrelevant
	// to the result because coincident points collapse into one Set below.
	sort.SliceStable(pts, func(a, b int) bool {
		return tls[pts[a].idx].times[pts[a].pos].Before(tls[pts[b].idx].times[pts[b].pos])
	})
	// Sweep: track each input's current value; at every breakpoint emit
	// the sum. Timeline.Set collapses same-timestamp writes.
	cur := make([]float64, len(tls))
	sum := 0.0
	for _, p := range pts {
		tl := tls[p.idx]
		sum += tl.values[p.pos] - cur[p.idx]
		cur[p.idx] = tl.values[p.pos]
		out.Set(tl.times[p.pos], sum)
	}
	return out
}
