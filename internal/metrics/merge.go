package metrics

// MergeSorted k-way merges individually sorted runs onto dst (appended in
// place and returned), picking the least head under less at each step with
// ties resolved toward the earliest run — exactly the order a
// concatenate-then-stable-sort would produce. It is the one merge loop
// shared by every sorted-run combiner (MergeSamples here, the sharded
// event merge in internal/sim), so their tie-handling can never diverge.
// The linear scan over run heads is deliberate: run counts are shard or
// member counts (single digits), where a scan beats a heap.
func MergeSorted[E any](dst []E, less func(a, b E) bool, runs ...[]E) []E {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if cap(dst)-len(dst) < total {
		grown := make([]E, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	pos := make([]int, len(runs))
	for emitted := 0; emitted < total; emitted++ {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best < 0 || less(r[pos[i]], runs[best][pos[best]]) {
				best = i
			}
		}
		dst = append(dst, runs[best][pos[best]])
		pos[best]++
	}
	return dst
}

// MergeTimelines returns the pointwise sum of the given step functions:
// the merged value at any instant equals the sum of the inputs' values at
// that instant. It is how per-cluster series (committed GPUs, provisioned
// GPUs) combine into federation-wide ones.
//
// Because integration is linear, the merged timeline's Integral over any
// window equals the sum of the inputs' Integrals over that window (up to
// floating-point rounding) — the property the federated metrics tests pin.
//
// Each input's points are already time-sorted (Timeline.Set enforces
// non-decreasing times), so the merge is a zero-intermediate k-way sweep:
// no per-point index records, no sort — just one cursor per input and an
// output pre-sized to the exact total. Ties pick the lowest input index,
// matching the stable sort the previous implementation used; coincident
// timestamps collapse into one point (last write wins), so the result is
// bit-identical to the concat-and-stable-sort path it replaces.
func MergeTimelines(tls ...*Timeline) *Timeline {
	out := NewTimeline()
	total := 0
	for _, tl := range tls {
		if tl != nil {
			total += len(tl.times)
		}
	}
	if total == 0 {
		return out
	}
	out.times = make([]int64, 0, total)
	out.values = make([]float64, 0, total)
	// Sweep: track each input's current value; at every breakpoint (in
	// global time order) emit the running sum, collapsing same-timestamp
	// writes the way Timeline.Set does.
	cur := make([]float64, len(tls))
	pos := make([]int, len(tls))
	sum := 0.0
	for emitted := 0; emitted < total; emitted++ {
		best := -1
		var bt int64
		for i, tl := range tls {
			if tl == nil || pos[i] >= len(tl.times) {
				continue
			}
			if t := tl.times[pos[i]]; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		tl := tls[best]
		v := tl.values[pos[best]]
		pos[best]++
		sum += v - cur[best]
		cur[best] = v
		if n := len(out.times); n > 0 && out.times[n-1] == bt {
			out.values[n-1] = sum
			continue
		}
		out.times = append(out.times, bt)
		out.values = append(out.values, sum)
	}
	return out
}
