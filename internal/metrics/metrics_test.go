package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSamplePercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{s.Percentile(50), s.Mean(), s.Min(), s.Max(), s.FracBelow(1)} {
		if !math.IsNaN(v) {
			t.Errorf("empty sample stat = %v, want NaN", v)
		}
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestFracBelow(t *testing.T) {
	s := NewSample(1, 2, 3, 4)
	if got := s.FracBelow(2); got != 0.5 {
		t.Errorf("FracBelow(2) = %v, want 0.5", got)
	}
	if got := s.FracBelow(0.5); got != 0 {
		t.Errorf("FracBelow(0.5) = %v, want 0", got)
	}
	if got := s.FracBelow(4); got != 1 {
		t.Errorf("FracBelow(4) = %v, want 1", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSample()
		for i := 0; i < 200; i++ {
			s.Add(r.ExpFloat64() * 100)
		}
		pts := s.CDF(40)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return pts[len(pts)-1].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := NewSample(xs...)
		sort.Float64s(xs)
		return s.Percentile(0) == xs[0] && s.Percentile(100) == xs[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummaryAndTable(t *testing.T) {
	s := NewSample(1, 2, 3)
	if !strings.Contains(s.Summary("ms"), "n=3") {
		t.Error("Summary missing n")
	}
	tbl := FormatCDFTable([]string{"a", "b"}, []*Sample{s, s}, []float64{50, 99}, "s")
	if !strings.Contains(tbl, "p50") || !strings.Contains(tbl, "p99") {
		t.Errorf("table missing rows: %q", tbl)
	}
}

// TestMergeSamplesMatchesConcat pins the sortedness-preservation contract:
// a k-way merge of sorted shard samples answers every query exactly like
// the concatenation of the raw observations.
func TestMergeSamplesMatchesConcat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(5)
		parts := make([]*Sample, 0, k+1)
		concat := NewSample()
		for i := 0; i < k; i++ {
			if r.Intn(5) == 0 {
				parts = append(parts, nil) // nil inputs must be harmless
				continue
			}
			s := NewSample()
			for j := r.Intn(200); j > 0; j-- {
				x := math.Floor(r.ExpFloat64()*1e5) / 16
				s.Add(x)
				concat.Add(x)
			}
			parts = append(parts, s)
		}
		m := MergeSamples(parts...)
		if m.N() != concat.N() {
			t.Fatalf("seed %d: N = %d, want %d", seed, m.N(), concat.N())
		}
		if m.N() == 0 {
			if !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) || !math.IsNaN(m.Percentile(50)) {
				t.Fatalf("seed %d: empty merge must answer NaN", seed)
			}
			continue
		}
		for _, p := range []float64{0, 12.5, 50, 90, 99, 100} {
			if got, want := m.Percentile(p), concat.Percentile(p); got != want {
				t.Fatalf("seed %d: p%v = %v, want %v", seed, p, got, want)
			}
		}
		if m.Min() != concat.Min() || m.Max() != concat.Max() {
			t.Fatalf("seed %d: min/max %v/%v, want %v/%v",
				seed, m.Min(), m.Max(), concat.Min(), concat.Max())
		}
	}
}

// TestSampleIncrementalMinMax checks Min/Max against a sorted copy after
// every insertion order, including negatives and duplicates, without ever
// triggering the lazy sort.
func TestSampleIncrementalMinMax(t *testing.T) {
	s := NewSample()
	vals := []float64{3, -1, 7, -1, 7, 0}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		s.Add(v)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		if s.Min() != lo || s.Max() != hi {
			t.Fatalf("after Add(%v): Min/Max = %v/%v, want %v/%v", v, s.Min(), s.Max(), lo, hi)
		}
	}
	s.Grow(100)
	if s.N() != len(vals) || s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("Grow changed observable state: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
}

var tz = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestTimelineAtAndIntegral(t *testing.T) {
	tl := NewTimeline()
	tl.Set(tz, 10)                 // 10 GPUs from 0h
	tl.Set(tz.Add(time.Hour), 20)  // 20 GPUs from 1h
	tl.Set(tz.Add(3*time.Hour), 0) // 0 from 3h
	if got := tl.At(tz.Add(30 * time.Minute)); got != 10 {
		t.Errorf("At(0.5h) = %v", got)
	}
	if got := tl.At(tz.Add(-time.Minute)); got != 0 {
		t.Errorf("At(before) = %v", got)
	}
	if got := tl.At(tz.Add(5 * time.Hour)); got != 0 {
		t.Errorf("At(after) = %v", got)
	}
	// Integral over [0h, 4h] = 10*1 + 20*2 + 0*1 = 50 GPU-hours.
	if got := tl.Integral(tz, tz.Add(4*time.Hour)); math.Abs(got-50) > 1e-9 {
		t.Errorf("Integral = %v, want 50", got)
	}
	// Partial window [0.5h, 1.5h] = 10*0.5 + 20*0.5 = 15.
	got := tl.Integral(tz.Add(30*time.Minute), tz.Add(90*time.Minute))
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("partial Integral = %v, want 15", got)
	}
	if tl.Max() != 20 {
		t.Errorf("Max = %v", tl.Max())
	}
	if got := tl.MeanOver(tz, tz.Add(4*time.Hour)); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("MeanOver = %v, want 12.5", got)
	}
}

func TestTimelineDeltaAndOverwrite(t *testing.T) {
	tl := NewTimeline()
	tl.Delta(tz, 3)
	tl.Delta(tz.Add(time.Minute), 2)
	if tl.Last() != 5 {
		t.Fatalf("Last = %v", tl.Last())
	}
	tl.Set(tz.Add(time.Minute), 7) // overwrite same timestamp
	if tl.Last() != 7 || tl.Len() != 2 {
		t.Fatalf("overwrite failed: last=%v len=%d", tl.Last(), tl.Len())
	}
}

func TestTimelineBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards time")
		}
	}()
	tl := NewTimeline()
	tl.Set(tz.Add(time.Hour), 1)
	tl.Set(tz, 2)
}

func TestTimelineDownsampleAndFormat(t *testing.T) {
	tl := NewTimeline()
	tl.Set(tz, 1)
	tl.Set(tz.Add(time.Hour), 2)
	pts := tl.Downsample(tz, tz.Add(2*time.Hour), 5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].V != 1 || pts[4].V != 2 {
		t.Fatalf("pts = %+v", pts)
	}
	out := FormatSeries(tz, tz.Add(2*time.Hour), 3, []string{"gpus"}, []*Timeline{tl})
	if !strings.Contains(out, "gpus") {
		t.Errorf("FormatSeries = %q", out)
	}
}

// Property: integral of a non-negative step function is additive over
// adjacent windows.
func TestIntegralAdditiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		cur := tz
		for i := 0; i < 50; i++ {
			cur = cur.Add(time.Duration(1+r.Intn(3600)) * time.Second)
			tl.Set(cur, float64(r.Intn(100)))
		}
		mid := tz.Add(12 * time.Hour)
		end := tz.Add(48 * time.Hour)
		whole := tl.Integral(tz, end)
		parts := tl.Integral(tz, mid) + tl.Integral(mid, end)
		return math.Abs(whole-parts) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBillingModel(t *testing.T) {
	b := Billing{ServerHourlyUSD: 10, GPUsPerServer: 8, UserMultiplier: 1.15, StandbyFraction: 0.125}
	// Paper example: standby replica on a $10/hr VM is $1.44/hr (rounded).
	if got := b.StandbyRevenue(1); math.Abs(got-1.4375) > 1e-9 {
		t.Errorf("StandbyRevenue(1h) = %v, want 1.4375", got)
	}
	// Paper example: 4 of 8 GPUs is $5.75/hr, i.e. 4 GPU-hours in one hour.
	if got := b.ActiveRevenue(4); math.Abs(got-5.75) > 1e-9 {
		t.Errorf("ActiveRevenue(4 gpu-h) = %v, want 5.75", got)
	}
	if got := b.ProviderCost(3); math.Abs(got-30) > 1e-9 {
		t.Errorf("ProviderCost = %v", got)
	}
	if got := b.ReservationRevenue(8); math.Abs(got-11.5) > 1e-9 {
		t.Errorf("ReservationRevenue(8) = %v, want 11.5", got)
	}
	if got := ProfitMargin(200, 100); got != 50 {
		t.Errorf("ProfitMargin = %v", got)
	}
	if got := ProfitMargin(0, 100); got != 0 {
		t.Errorf("ProfitMargin(0 revenue) = %v", got)
	}
	d := DefaultBilling()
	if d.GPUsPerServer != 8 || d.UserMultiplier != 1.15 {
		t.Errorf("DefaultBilling = %+v", d)
	}
}

func TestCoalescedTimeline(t *testing.T) {
	g := 15 * time.Second
	tl := NewCoalescedTimeline(g)
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	// Five deltas inside one 15s bucket collapse to one point carrying the
	// bucket's final cumulative value.
	for i := 0; i < 5; i++ {
		tl.Delta(base.Add(time.Duration(i)*2*time.Second), 1)
	}
	tl.Delta(base.Add(16*time.Second), -2)
	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	if got := tl.At(base.Add(14 * time.Second)); got != 5 {
		t.Errorf("At(+14s) = %v, want 5", got)
	}
	if got := tl.At(base.Add(20 * time.Second)); got != 3 {
		t.Errorf("At(+20s) = %v, want 3", got)
	}
	// Quantization floors, so the second point sits at +15s exactly.
	if got := tl.At(base.Add(15 * time.Second)); got != 3 {
		t.Errorf("At(+15s) = %v, want 3", got)
	}
}

func TestCoalescedTimelineBoundedPoints(t *testing.T) {
	g := time.Minute
	tl := NewCoalescedTimeline(g)
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	span := 2 * time.Hour
	for d := time.Duration(0); d < span; d += time.Second {
		tl.Delta(base.Add(d), 1)
	}
	if max := int(span/g) + 1; tl.Len() > max {
		t.Fatalf("coalesced timeline stored %d points, bound is %d", tl.Len(), max)
	}
	if got := tl.Last(); got != 7200 {
		t.Fatalf("Last = %v, want 7200", got)
	}
}

func TestReservoirSample(t *testing.T) {
	s := NewSample()
	s.Reservoir(100, 7)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if s.N() != 10000 {
		t.Fatalf("N = %d, want 10000", s.N())
	}
	if got := len(s.Values()); got != 100 {
		t.Fatalf("kept %d values, want 100", got)
	}
	// Extrema stay exact even when evicted from the reservoir.
	if s.Min() != 0 || s.Max() != 9999 {
		t.Fatalf("min/max = %v/%v, want 0/9999", s.Min(), s.Max())
	}
	// The kept subset is a uniform draw: the median estimate should land
	// near the true median (loose bound; the draw is seeded and stable).
	if p50 := s.Percentile(50); p50 < 2500 || p50 > 7500 {
		t.Fatalf("p50 = %v, far from 5000", p50)
	}
	// Deterministic across runs with the same seed.
	s2 := NewSample()
	s2.Reservoir(100, 7)
	for i := 0; i < 10000; i++ {
		s2.Add(float64(i))
	}
	v1, v2 := s.Values(), s2.Values()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("reservoir not deterministic at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}
