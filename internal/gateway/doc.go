// Package gateway is NotebookOS's HTTP front door: the Jupyter-Server
// role of the architecture (paper Fig. 3, step 1). Clients create
// sessions, submit cell executions, stream replies, and inspect cluster
// state over a REST + Server-Sent-Events API (stdlib-only stand-in for
// Jupyter's HTTP/WebSocket endpoints).
//
//	POST   /api/sessions                 {"user": ..., "gpus": n}    -> session
//	GET    /api/sessions                                              -> sessions
//	DELETE /api/sessions/{id}                                         -> 204
//	POST   /api/sessions/{id}/execute    {"code": ..., "timeout_ms"}  -> reply
//	GET    /api/sessions/{id}/events     (text/event-stream)          -> replies
//	GET    /api/cluster                                               -> status
//	GET    /healthz                                                   -> ok
package gateway
