package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"notebookos/internal/jupyter"
	"notebookos/internal/platform"
)

func newServer(t *testing.T) (*httptest.Server, *platform.Platform) {
	t.Helper()
	p, err := platform.New(platform.Config{Hosts: 4, TimeScale: 0.001, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p))
	t.Cleanup(func() {
		srv.Close()
		p.Stop()
	})
	return srv, p
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestSessionCRUDAndExecute(t *testing.T) {
	srv, _ := newServer(t)

	// Create.
	resp := postJSON(t, srv.URL+"/api/sessions", map[string]any{"user": "alice", "gpus": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	created := decode[map[string]any](t, resp)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("created = %v", created)
	}

	// List.
	resp, err := http.Get(srv.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]map[string]any](t, resp)
	if len(list) != 1 {
		t.Fatalf("list = %v", list)
	}

	// Get one.
	resp, err = http.Get(srv.URL + "/api/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	got := decode[map[string]any](t, resp)
	if got["id"] != id {
		t.Fatalf("get = %v", got)
	}

	// Execute.
	resp = postJSON(t, srv.URL+"/api/sessions/"+id+"/execute",
		map[string]any{"code": "x = 6 * 7\nprint(x)\n", "timeout_ms": 30000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status = %d", resp.StatusCode)
	}
	reply := decode[jupyter.ExecuteReplyContent](t, resp)
	if reply.Status != "ok" || !strings.Contains(reply.Output, "42") {
		t.Fatalf("reply = %+v", reply)
	}

	// Cluster status shows the session.
	resp, err = http.Get(srv.URL + "/api/cluster")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[platform.Status](t, resp)
	if status.Sessions != 1 || status.TotalGPUs != 32 {
		t.Fatalf("status = %+v", status)
	}

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/sessions/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/api/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestExecuteErrors(t *testing.T) {
	srv, _ := newServer(t)
	resp := postJSON(t, srv.URL+"/api/sessions/unknown/execute", map[string]any{"code": "x=1\n"})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown session should not execute")
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/api/sessions", map[string]any{"user": "bob", "gpus": 1})
	created := decode[map[string]any](t, resp)
	id := created["id"].(string)

	resp = postJSON(t, srv.URL+"/api/sessions/"+id+"/execute", map[string]any{"code": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty code status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	r, _ := http.NewRequest(http.MethodPut, srv.URL+"/api/sessions", nil)
	resp2, err := http.DefaultClient.Do(r)
	if err != nil || resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT sessions = %d, %v", resp2.StatusCode, err)
	}
	resp2.Body.Close()
}

func TestEventsStream(t *testing.T) {
	srv, p := newServer(t)
	resp := postJSON(t, srv.URL+"/api/sessions", map[string]any{"user": "carol", "gpus": 1})
	created := decode[map[string]any](t, resp)
	id := created["id"].(string)

	// Open the SSE stream, then trigger an execution.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/sessions/"+id+"/events", nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	go func() {
		time.Sleep(100 * time.Millisecond)
		_, _ = p.ExecuteAsync(id, "print(\"streamed\")\n")
	}()

	scanner := bufio.NewScanner(stream.Body)
	deadline := time.After(20 * time.Second)
	found := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "data: ") {
				found <- strings.TrimPrefix(line, "data: ")
				return
			}
		}
	}()
	select {
	case data := <-found:
		msg, err := jupyter.Decode([]byte(data))
		if err != nil {
			t.Fatalf("bad SSE payload: %v", err)
		}
		content, err := msg.ParseExecuteReply()
		if err != nil || !strings.Contains(content.Output, "streamed") {
			t.Fatalf("content = %+v, %v", content, err)
		}
	case <-deadline:
		t.Fatal("no SSE event")
	}
}

func TestEventsUnknownSession(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/api/sessions/ghost/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCreateSessionOverCapacity(t *testing.T) {
	srv, _ := newServer(t)
	resp := postJSON(t, srv.URL+"/api/sessions", map[string]any{"user": "greedy", "gpus": 64})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want conflict", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("error body = %v, %v", e, err)
	}
}
