package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"notebookos/internal/platform"
	"notebookos/internal/resources"
)

// Server is the HTTP gateway over a platform.
type Server struct {
	p   *platform.Platform
	mux *http.ServeMux
}

// New returns a gateway for the platform.
func New(p *platform.Platform) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
	s.mux.HandleFunc("/api/sessions", s.handleSessions)
	s.mux.HandleFunc("/api/sessions/", s.handleSession)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.p.Status())
}

// createSessionRequest is the POST /api/sessions body.
type createSessionRequest struct {
	User      string `json:"user"`
	GPUs      int    `json:"gpus"`
	Millicpus int64  `json:"millicpus"`
	MemoryMB  int64  `json:"memory_mb"`
	VRAMGB    int    `json:"vram_gb"`
}

// sessionView is the JSON rendering of a session.
type sessionView struct {
	ID       string    `json:"id"`
	KernelID string    `json:"kernel_id"`
	User     string    `json:"user"`
	GPUs     int       `json:"gpus"`
	Created  time.Time `json:"created"`
}

func viewOf(sess *platform.Session) sessionView {
	return sessionView{
		ID:       sess.ID,
		KernelID: sess.KernelID,
		User:     sess.User,
		GPUs:     sess.Request.GPUs,
		Created:  sess.Created,
	}
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		sessions := s.p.Sessions()
		out := make([]sessionView, 0, len(sessions))
		for _, sess := range sessions {
			out = append(out, viewOf(sess))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req createSessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.User == "" {
			req.User = "anonymous"
		}
		spec := resources.Spec{
			Millicpus: req.Millicpus,
			MemoryMB:  req.MemoryMB,
			GPUs:      req.GPUs,
			VRAMGB:    float64(req.VRAMGB),
		}
		if spec.Millicpus == 0 {
			spec.Millicpus = int64(req.GPUs+1) * 2000
		}
		if spec.MemoryMB == 0 {
			spec.MemoryMB = int64(req.GPUs+1) * 8192
		}
		if spec.VRAMGB == 0 {
			spec.VRAMGB = float64(req.GPUs) * 16
		}
		sess, err := s.p.CreateSession(req.User, spec)
		if err != nil {
			httpError(w, http.StatusConflict, "create session: %v", err)
			return
		}
		writeJSON(w, http.StatusCreated, viewOf(sess))
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// executeRequest is the POST /api/sessions/{id}/execute body.
type executeRequest struct {
	Code      string `json:"code"`
	TimeoutMS int64  `json:"timeout_ms"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/sessions/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	if id == "" {
		httpError(w, http.StatusNotFound, "missing session id")
		return
	}
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		sess, ok := s.p.Session(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown session %s", id)
			return
		}
		writeJSON(w, http.StatusOK, viewOf(sess))
	case action == "" && r.Method == http.MethodDelete:
		if err := s.p.CloseSession(id); err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case action == "execute" && r.Method == http.MethodPost:
		s.handleExecute(w, r, id)
	case action == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, id)
	default:
		httpError(w, http.StatusNotFound, "unknown route")
	}
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request, id string) {
	var req executeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Code == "" {
		httpError(w, http.StatusBadRequest, "empty code")
		return
	}
	timeout := 60 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	reply, err := s.p.ExecuteSync(id, req.Code, timeout)
	if err != nil {
		httpError(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleEvents streams the session's execute_reply messages as SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	if _, ok := s.p.Session(id); !ok {
		httpError(w, http.StatusNotFound, "unknown session %s", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, cancel := s.p.Subscribe(id)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case msg := <-ch:
			data, err := msg.Encode()
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: execute_reply\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
