package sim

import (
	"math"
	"sync"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/des"
	"notebookos/internal/federation"
	"notebookos/internal/trace"
)

// Shared virtual capacity pool
//
// The legacy sharded runners split cluster capacity proportionally once,
// up front, and never let the shards talk again — cheap, but a worker
// then saturates or autoscales on its own shard's load while another
// shard's GPUs sit idle, and merged saved-GPU-hours drift well below the
// unsharded run (measured 7-8 % at k=2, 19-22 % at k=4). No per-shard
// formula closes that gap: the unsharded capacity trajectory is driven
// by emergency scale-outs and empty-host availability — global placement
// state a set of k independent clusters cannot reconstruct.
//
// The lease pool therefore keeps ONE source of capacity truth: a
// capacity ledger, which is a full single-cluster (or single-federation)
// simulation of the parent config — the exact run `Run(cfg)` would have
// executed — advanced epoch-by-epoch in lockstep with the shard workers.
// The ledger makes every capacity decision (formula autoscaling,
// emergency scale-outs, empty-host scale-ins, migrations) the way the
// unsharded run makes it, because it *is* the unsharded run; the shards
// never decide capacity, they lease it:
//
//  1. trace.ProportionalShares still sizes the workers' clusters, but as
//     the *initial lease grant* only;
//  2. at every epoch boundary (default: the autoscale interval) the
//     ledger and all workers rendezvous at a barrier, where the pool
//     re-apportions the ledger's live host count across the shards —
//     topping up shards whose next arrival would no longer place
//     (draining their capacity wait-queues: the attach notification is
//     the cross-shard wakeup), reclaiming idle hosts from shards holding
//     more than they need;
//  3. the merged Result reports the ledger's capacity metrics —
//     provisioned/committed timelines, scale events and counters,
//     integrated hours — which are byte-identical to the unsharded run's
//     by construction (drift is exactly zero at every k). The workers
//     contribute what sharding exists to parallelize: the task-level
//     latency distributions, which retain a small, documented
//     shard-local placement approximation.
//
// Between barriers the ledger and the workers are fully independent
// single-threaded simulations, so determinism survives: each one's
// randomness is a pure function of (seed, shard index), the barrier
// provides the happens-before edges, and reconciliation order is fixed
// by shard index. k <= 1 never enters this file and stays byte-identical
// to Run. See docs/SHARDING.md for the full protocol, the cost model
// (the ledger is a serial spine — Amdahl applies), and the measured
// before/after drift.

// ShardCapacity selects how sharded runners treat cluster capacity; see
// Config.ShardCapacity.
type ShardCapacity int

const (
	// LegacySplit is the static proportional capacity split (the zero
	// value): shards never share capacity after the initial grant. Fast
	// and byte-stable with prior releases, but saved-GPUh drifts with k.
	LegacySplit ShardCapacity = iota
	// LeasePool runs a shared virtual capacity pool: a capacity ledger
	// replays the unsharded run's capacity decisions and the shards lease
	// hosts from it at epoch barriers. Capacity metrics (saved-GPUh,
	// scale events, provisioned/committed series) match the unsharded
	// run exactly, at every shard count (pinned by
	// TestShardedSavingsDriftBound and TestLeasePoolCapacityExact).
	LeasePool
)

// epochBarrier is a reusable k-party generation barrier. The last
// arrival runs the barrier action while every other party is parked on
// the condition variable, then releases the generation — giving the
// action exclusive access to all workers' state with the mutex providing
// the happens-before edges the race detector (and the memory model)
// demand.
type epochBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newEpochBarrier(parties int) *epochBarrier {
	b := &epochBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties arrive; the last arrival runs onLast,
// then every party proceeds.
func (b *epochBarrier) await(onLast func()) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		onLast()
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// epochBoundaries lists the barrier instants — start+epoch, start+2·epoch,
// …, ending at the first boundary >= end. These are exactly the virtual
// times the unsharded autoscaler ticks at, so the ledger's state at a
// barrier is its state just after the tick the unsharded run would have
// taken there.
func epochBoundaries(start, end time.Time, epoch time.Duration) []time.Time {
	var ts []time.Time
	for t := start.Add(epoch); ; t = t.Add(epoch) {
		ts = append(ts, t)
		if !t.Before(end) {
			return ts
		}
	}
}

// runBarriers drives the engines (the ledger's and the workers') in
// epoch-sized steps: each engine runs to the next boundary on its own
// goroutine, all rendezvous, the last arrival runs reconcile, and the
// generation releases. After the final boundary each engine drains its
// in-flight tail past the window independently, as Run does.
func runBarriers(engines []*des.Engine, start, end time.Time, epoch time.Duration, reconcile func()) {
	bounds := epochBoundaries(start, end, epoch)
	bar := newEpochBarrier(len(engines))
	var wg sync.WaitGroup
	for _, eng := range engines {
		eng := eng
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, t := range bounds {
				eng.RunUntil(t)
				bar.await(reconcile)
			}
			eng.RunUntil(end.Add(24 * time.Hour))
		}()
	}
	wg.Wait()
}

// ---- planning (pure) -----------------------------------------------------

// shardLoad is one worker's barrier-time capacity snapshot — plain
// counters, so the planning step is a pure function testable without
// running simulations (see TestLeaseConservation).
type shardLoad struct {
	// Hosts and PendingHosts are the shard's attached and in-flight host
	// counts. EmptyHosts counts hosts with no replicas and no commitments
	// (detachable as-is); IdleHosts counts hosts with no commitments
	// (superset of empty: their idle replicas can be rehomed within the
	// shard to free the host for return to the pool).
	Hosts        int
	PendingHosts int
	EmptyHosts   int
	IdleHosts    int
	// Waiters counts tasks parked on the shard's capacity wait-queue.
	Waiters int
	// CommittedGPUs weights where fresh grants land; SubscribedGPUs and
	// MaxReqGPUs drive the placement-headroom targets (MaxReqGPUs is the
	// largest per-session GPU request the shard has seen — the
	// conservative margin for the next arrival).
	CommittedGPUs  int
	SubscribedGPUs int
	MaxReqGPUs     int
	// Floor is the structural minimum host count the shard must keep.
	Floor int
}

// leaseParams fixes the placement-headroom model's constants: one host
// absorbs up to Watermark·GPUsPerHost·Replicas subscribed GPUs before
// the placement policy stops considering it viable.
type leaseParams struct {
	GPUsPerHost int
	Watermark   float64
	Replicas    int
}

// leasePlan is one barrier's reconciliation, in hosts per shard. All
// three moves are lease bookkeeping — instant, no scale events: the pool
// level they track is owned by the ledger, which models provisioning
// latency and records the events itself.
type leasePlan struct {
	// Transfer is the net host delta per shard from rebalancing within
	// the current total: hosts move from shards holding idle capacity to
	// shards at risk of a placement failure. Always sums to zero —
	// transfers conserve the pool (TestLeaseConservation).
	Transfer []int
	// Provision is the fresh lease grant per shard when the ledger's
	// level exceeds the shards' total. Sums to exactly the deficit.
	Provision []int
	// Retire is the lease return per shard when the shards' total exceeds
	// the ledger's level; capped by each shard's surplus over its
	// placement need, so it may under-shoot the excess — the next barrier
	// retries against fresher state.
	Retire []int
}

// planLeases computes one barrier's reconciliation from the shards'
// snapshots and the ledger's live host count: first the rebalance
// (idle hosts toward shards near placement failure), then grants or
// returns to pin the shards' total to the ledger's. Pure function of its
// inputs; all tie-breaks resolve toward the lower shard index.
func planLeases(loads []shardLoad, target int, p leaseParams) leasePlan {
	k := len(loads)
	plan := leasePlan{
		Transfer:  make([]int, k),
		Provision: make([]int, k),
		Retire:    make([]int, k),
	}
	// Phase 1: rebalance by placement headroom. The residual shard-local
	// distortion in a split is the emergency scale-out: session creation
	// needs R hosts under the SR watermark, a hot shard runs out of
	// watermark headroom the pool still had globally, and the shard
	// instantly provisions R hosts the ledger never charged. So each
	// shard's need is the host count at which the *next* arrival still
	// places — its subscribed GPUs plus a worst-seen-request margin,
	// divided by the per-host watermark budget, never below R while the
	// shard hosts sessions — and the pool tops deficit shards up from
	// shards holding idle hosts beyond their own need, *before* the
	// failure happens. Donors free non-empty idle hosts by rehoming their
	// idle replicas within the shard (see sim.donateHosts).
	capPerHost := p.Watermark * float64(p.GPUsPerHost*p.Replicas)
	needs := make([]int, k)
	spare := make([]int, k)
	want := make([]int, k)
	total := 0
	for i, l := range loads {
		total += l.Hosts + l.PendingHosts
		need := 1
		if l.SubscribedGPUs > 0 {
			denom := capPerHost - float64(l.MaxReqGPUs)
			if denom < 1 {
				denom = 1
			}
			need = int(math.Ceil(float64(l.SubscribedGPUs) / denom))
			if need < p.Replicas {
				need = p.Replicas
			}
		}
		if need < l.Floor {
			need = l.Floor
		}
		needs[i] = need
		w := need - (l.Hosts + l.PendingHosts)
		if w < l.Waiters {
			w = l.Waiters
		}
		if w < 0 {
			w = 0
		}
		want[i] = w
		s := l.IdleHosts
		if m := l.Hosts - need; s > m {
			s = m
		}
		if s < 0 {
			s = 0
		}
		spare[i] = s
	}
	planTransfers(spare, want, plan.Transfer)

	// Phase 2: pin the shards' total to the ledger's level. A deficit
	// becomes fresh grants — unmet wants first (transfers ran out of
	// spare), the remainder largest-remainder over committed load, so new
	// capacity lands where the demand is (ProportionalShares falls back
	// to an even split when nothing is committed yet). An excess becomes
	// lease returns in shard-index order, never below a shard's placement
	// need or structural floor, and never from a shard with parked
	// waiters.
	if delta := target - total; delta > 0 {
		for i := 0; i < k && delta > 0; i++ {
			g := want[i]
			if g > delta {
				g = delta
			}
			plan.Provision[i] = g
			delta -= g
		}
		if delta > 0 {
			weights := make([]float64, k)
			for i, l := range loads {
				weights[i] = float64(l.CommittedGPUs)
			}
			for i, n := range trace.ProportionalShares(weights, delta, 0) {
				plan.Provision[i] += n
			}
		}
	} else if delta < 0 {
		excess := -delta
		for i, l := range loads {
			if excess == 0 {
				break
			}
			if l.Waiters > 0 {
				continue
			}
			floor := needs[i]
			if floor < l.Floor {
				floor = l.Floor
			}
			avail := l.Hosts + plan.Transfer[i] - floor
			if avail > excess {
				avail = excess
			}
			if avail > 0 {
				plan.Retire[i] = avail
				excess -= avail
			}
		}
	}
	return plan
}

// planTransfers fills transfer with the barrier's instant host moves:
// want[i] hosts toward shard i, drawn from the other shards' spare in
// shard-index order (lower-index takers fill first, from lower-index
// donors first — the fixed order is part of the determinism argument).
// spare and want are consumed in place; what remains in want is the
// unmet residue the grant phase may cover. The resulting deltas always
// sum to zero: transfers move leases between shards, they never create
// or destroy capacity.
func planTransfers(spare, want []int, transfer []int) {
	for i := range transfer {
		transfer[i] = 0
		// A shard holding both waiters and spare idle hosts serves itself
		// first (rare: an idle host normally drains the queue before the
		// barrier).
		if n := min(spare[i], want[i]); n > 0 {
			spare[i] -= n
			want[i] -= n
		}
	}
	for i := range want {
		for j := 0; j < len(spare) && want[i] > 0; j++ {
			if j == i || spare[j] == 0 {
				continue
			}
			give := spare[j]
			if give > want[i] {
				give = want[i]
			}
			spare[j] -= give
			transfer[j] -= give
			transfer[i] += give
			want[i] -= give
		}
	}
}

// leaseFloor is each shard's structural host floor: one host, so the
// worker's cluster never empties (a zero-host shard would deadlock its
// own capacity wait-queue). The placement need (planLeases) supplies the
// dynamic R-host floor while a shard actually holds sessions; a hard R
// floor would pin k·R hosts through idle periods the ledger spends near
// its MinHosts level.
const leaseFloor = 1

// ---- single-cluster pool -------------------------------------------------

// leaseDebug, when non-nil, observes every barrier's snapshot and plan
// (test instrumentation only).
var leaseDebug func([]shardLoad, leasePlan)

// leasePool coordinates the capacity ledger and k single-cluster workers
// at epoch barriers.
type leasePool struct {
	ledger  *sim
	workers []*sim
	params  leaseParams
	loads   []shardLoad
}

// reconcile runs one barrier's reconciliation; it executes inside the
// barrier action, so the ledger and every worker are parked and the pool
// has exclusive access to all of them.
func (p *leasePool) reconcile() {
	for i, w := range p.workers {
		p.loads[i] = w.leaseLoad()
	}
	plan := planLeases(p.loads, p.ledger.cluster.NumHosts(), p.params)
	if leaseDebug != nil {
		leaseDebug(p.loads, plan)
	}
	// Detach before attach, and attach only what donors actually freed
	// (an eviction can fail when the remaining hosts lack watermark room
	// for a replica), so transfers conserve the shards' total by
	// construction.
	pot := 0
	for i, d := range plan.Transfer {
		if d < 0 {
			pot += p.workers[i].donateHosts(-d)
		}
	}
	for i, d := range plan.Transfer {
		if d > 0 && pot > 0 {
			g := d
			if g > pot {
				g = pot
			}
			p.workers[i].attachHosts(g)
			pot -= g
		}
	}
	for i, n := range plan.Provision {
		if n > 0 {
			p.workers[i].attachHosts(n)
		}
	}
	for i, n := range plan.Retire {
		if n > 0 {
			p.workers[i].donateHosts(n)
		}
	}
}

// leaseLoad snapshots the worker's barrier-time counters for the pool.
// Only called from the barrier action, while the worker is parked.
func (s *sim) leaseLoad() shardLoad {
	l := shardLoad{
		Hosts:          s.cluster.NumHosts(),
		PendingHosts:   s.pendingHosts,
		Waiters:        s.waitq.Len(),
		CommittedGPUs:  s.cluster.CommittedGPUs(),
		SubscribedGPUs: s.cluster.SubscribedGPUs(),
		MaxReqGPUs:     s.leaseMaxReq,
		Floor:          leaseFloor,
	}
	for _, sh := range s.hostList {
		if sh.h.Committed().IsZero() {
			l.IdleHosts++
			if sh.h.NumReplicas() == 0 {
				l.EmptyHosts++
			}
		}
	}
	return l
}

// attachHosts attaches n leased hosts now: the capacity already exists in
// the pool, so there is no provisioning latency and no scale-out event
// (the ledger models both). The cluster's AddHost notification queues a
// wait-queue drain at the barrier instant — the cross-shard wakeup:
// tasks parked here retry against capacity the pool just granted.
func (s *sim) attachHosts(n int) {
	for i := 0; i < n; i++ {
		s.addHost()
	}
	if n > 0 {
		s.sampleProvisioned()
	}
}

// detachEmptyHosts detaches up to n empty hosts (no replicas, nothing
// committed) and returns the count removed. No scale-in event: the lease
// moves, the pool level is the ledger's to change.
func (s *sim) detachEmptyHosts(n int) int {
	removed := 0
	for i := 0; i < len(s.hostList) && removed < n; {
		sh := s.hostList[i]
		if sh.h.NumReplicas() == 0 && sh.h.Committed().IsZero() {
			if err := s.cluster.RemoveHost(sh.h.ID); err == nil {
				s.hostList = append(s.hostList[:i], s.hostList[i+1:]...)
				s.noteHosts(-1)
				removed++
				continue
			}
		}
		i++
	}
	if removed > 0 {
		s.sampleProvisioned()
	}
	return removed
}

// donateHosts frees up to n hosts for return to the pool (or transfer to
// another shard) and reports the count actually detached: natural
// empties first, then committed-free hosts whose idle replicas rehome
// onto this shard's remaining hosts. An idle replica holds no execution
// state (its checkpoints live in the remote store), so the rehoming is
// barrier-time bookkeeping — no latency, no migration event;
// docs/SHARDING.md spells out this modeling choice.
func (s *sim) donateHosts(n int) int {
	removed := s.detachEmptyHosts(n)
	for removed < n && s.evictOneHost() {
		removed++
	}
	return removed
}

// evictOneHost picks the committed-free host with the fewest replicas,
// rehomes each replica onto another host (most-subscribed candidate
// under the SR watermark, never two replicas of one session together),
// detaches the emptied host, and reports success. A half-evicted host
// (a replica with no viable target) stays attached with the moves kept —
// still a valid state; a later barrier may finish the job.
func (s *sim) evictOneHost() bool {
	var victim *simHost
	for _, sh := range s.hostList {
		if !sh.h.Committed().IsZero() || sh.h.NumReplicas() == 0 {
			continue
		}
		if victim == nil || sh.h.NumReplicas() < victim.h.NumReplicas() {
			victim = sh
		}
	}
	if victim == nil {
		return false
	}
	gphr := float64(s.cfg.HostCapacity.GPUs * s.cfg.ReplicasPerKernel)
	for _, ss := range s.leaseSessions {
		if ss.closed {
			continue
		}
		for idx, h := range ss.hosts {
			if h != victim.h {
				continue
			}
			var best *cluster.Host
			bestSub := -1
			for _, cand := range s.hostList {
				ch := cand.h
				if ch == victim.h || hostsContain(ss.hosts, ch) || !ss.req.Fits(ch.Capacity) {
					continue
				}
				sub := ch.SubscribedGPUs()
				if float64(sub+ss.req.GPUs)/gphr > s.cfg.SRHighWatermark {
					continue
				}
				if sub > bestSub {
					bestSub, best = sub, ch
				}
			}
			if best == nil {
				return false
			}
			key := ss.replicaKeyFor(idx + 1)
			_ = victim.h.RemoveReplica(key)
			_ = best.PlaceReplica(key, ss.req)
			ss.hosts[idx] = best
		}
	}
	if victim.h.NumReplicas() > 0 {
		// Replicas this worker no longer tracks (defensive) block eviction.
		return false
	}
	return s.detachEmptyHosts(1) == 1
}

// runShardedLeased builds the capacity ledger from the parent config and
// lease-managed workers from the prepared worker configs (whose Hosts
// fields carry the initial lease grants), then drives all of them
// through the barrier protocol. cfg must be exactly what Run would have
// received — the ledger's result is the unsharded run's, byte for byte.
func runShardedLeased(cfg Config, wcfgs []Config) (*Result, error) {
	ledger, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	defer ledger.close()
	workers := make([]*sim, len(wcfgs))
	for i := range wcfgs {
		wcfgs[i].leaseManaged = true
		w, err := newSim(wcfgs[i])
		if err != nil {
			for _, b := range workers[:i] {
				b.close()
			}
			return nil, err
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.close()
		}
	}()
	pool := &leasePool{
		ledger:  ledger,
		workers: workers,
		params: leaseParams{
			GPUsPerHost: cfg.HostCapacity.GPUs,
			Watermark:   cfg.SRHighWatermark,
			Replicas:    cfg.ReplicasPerKernel,
		},
		loads: make([]shardLoad, len(wcfgs)),
	}
	engines := make([]*des.Engine, 0, len(workers)+1)
	engines = append(engines, ledger.eng)
	for _, w := range workers {
		engines = append(engines, w.eng)
	}
	runBarriers(engines, ledger.start, ledger.end, cfg.LeaseEpoch, pool.reconcile)
	lres, err := ledger.finish()
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(workers))
	for i, w := range workers {
		r, err := w.finish()
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return leasedResult(lres, MergeResults(results...)), nil
}

// leasedResult assembles the LeasePool result: the ledger is
// authoritative for everything the cluster determines — capacity and
// commitment timelines, scale/migration events and counters, integrated
// hours — all byte-identical to the unsharded run. The workers are
// authoritative for what sharding parallelizes: the task-level latency
// distributions (which keep the shard-local placement approximation) and
// the session/task counts proving no work was lost in the split.
func leasedResult(ledger, merged *Result) *Result {
	out := *ledger
	out.Interactivity = merged.Interactivity
	out.TCT = merged.TCT
	out.StepLatency = merged.StepLatency
	out.SyncLatency = merged.SyncLatency
	out.ReadLatency = merged.ReadLatency
	out.WriteLatency = merged.WriteLatency
	out.Sessions = merged.Sessions
	out.Tasks = merged.Tasks
	return &out
}

// ---- federated pool ------------------------------------------------------

// fedLeasePool coordinates the federated capacity ledger and k worker
// federations at epoch barriers. Host shapes differ across members, so
// leases move between shards only within a member; the ledger carries
// the parent's autoscaling — including, under PooledAutoscale, the
// federation.FederatedAutoscaler deciding once per tick over the whole
// (pooled) workload's counters.
type fedLeasePool struct {
	ledger   *fedSim
	workers  []*fedSim
	specs    []FedClusterSpec
	replicas int

	// Reusable buffers: loads[i][m] is shard i's snapshot of member m.
	loads    [][]federation.MemberLoad
	spare    []int
	want     []int
	transfer []int
	weights  []float64
}

// floor returns the hosts member m of shard i must keep: one host (the
// worker-topology invariant — every worker federation keeps every
// member), raised to R when m is the shard's only member with R hosts —
// the placement anchor: a shard whose every member is below R cannot
// place any kernel and would emergency-scale on each arrival.
func (p *fedLeasePool) floor(i, m int) int {
	f := 1
	if r := p.replicas; r > f && p.loads[i][m].Hosts >= r {
		anchored := 0
		for mm := range p.specs {
			if p.loads[i][mm].Hosts >= r {
				anchored++
			}
		}
		if anchored == 1 {
			f = r
		}
	}
	return f
}

// reconcile runs one barrier's reconciliation (inside the barrier
// action; the ledger and all workers parked). Order is fixed: members
// ascending, shards ascending within a member.
func (p *fedLeasePool) reconcile() {
	k := len(p.workers)
	for i, w := range p.workers {
		w.fillLeaseLoads(p.loads[i])
	}
	for m := range p.specs {
		// Phase 1: rebalance within the member toward the
		// subscription-proportional ideal (equal shard SRs reproduce what
		// global placement would have seen and prevent emergency
		// scale-outs), with waiters homed at the member raising a shard's
		// ask further. The federated pool moves only natural empties — no
		// replica eviction (docs/SHARDING.md records the simplification).
		totalHosts := 0
		for i := 0; i < k; i++ {
			totalHosts += p.loads[i][m].Hosts
			p.weights[i] = float64(p.loads[i][m].SubscribedGPUs)
		}
		ideal := trace.ProportionalShares(p.weights, totalHosts, 1)
		for i := 0; i < k; i++ {
			l := p.loads[i][m]
			target := ideal[i]
			if f := p.floor(i, m); target < f {
				target = f
			}
			w := target - l.Hosts
			if d := p.workers[i].qdepth[m]; w < d {
				w = d
			}
			if w < 0 {
				w = 0
			}
			p.want[i] = w
			s := l.EmptyHosts
			if max := l.Hosts - target; s > max {
				s = max
			}
			if s < 0 {
				s = 0
			}
			p.spare[i] = s
		}
		planTransfers(p.spare, p.want, p.transfer)
		for i, d := range p.transfer {
			if d < 0 {
				p.workers[i].detachMemberEmpty(m, -d)
			}
		}
		for i, d := range p.transfer {
			if d > 0 {
				p.workers[i].attachMemberHosts(m, d)
			}
		}
		for i, d := range p.transfer {
			p.loads[i][m].Hosts += d
			p.loads[i][m].EmptyHosts += d // transfers move only empties
		}
		// Phase 2: pin the shards' member-m total to the ledger's level —
		// grants toward unmet wants first, then largest-remainder over
		// committed load; returns in shard-index order from natural
		// empties above the floor.
		total := 0
		for i := 0; i < k; i++ {
			total += p.loads[i][m].Hosts + p.loads[i][m].PendingHosts
		}
		if delta := p.ledger.members[m].c.NumHosts() - total; delta > 0 {
			for i := 0; i < k && delta > 0; i++ {
				g := p.want[i]
				if g > delta {
					g = delta
				}
				if g > 0 {
					p.workers[i].attachMemberHosts(m, g)
					p.loads[i][m].Hosts += g
					delta -= g
				}
			}
			if delta > 0 {
				for i := 0; i < k; i++ {
					p.weights[i] = float64(p.loads[i][m].CommittedGPUs)
				}
				for i, n := range trace.ProportionalShares(p.weights, delta, 0) {
					if n > 0 {
						p.workers[i].attachMemberHosts(m, n)
						p.loads[i][m].Hosts += n
					}
				}
			}
		} else if delta < 0 {
			excess := -delta
			for i := 0; i < k && excess > 0; i++ {
				if p.workers[i].qdepth[m] > 0 {
					continue
				}
				l := p.loads[i][m]
				avail := l.EmptyHosts
				if max := l.Hosts - p.floor(i, m); avail > max {
					avail = max
				}
				if avail > excess {
					avail = excess
				}
				if avail <= 0 {
					continue
				}
				removed := p.workers[i].detachMemberEmpty(m, avail)
				p.loads[i][m].Hosts -= removed
				p.loads[i][m].EmptyHosts -= removed
				excess -= removed
			}
		}
	}
}

// fillLeaseLoads snapshots every member's barrier-time counters. Only
// called from the barrier action, while the worker is parked.
func (s *fedSim) fillLeaseLoads(out []federation.MemberLoad) {
	for i, m := range s.members {
		l := federation.MemberLoad{
			Hosts:          m.c.NumHosts(),
			PendingHosts:   m.pendingHosts,
			GPUsPerHost:    m.spec.HostCapacity.GPUs,
			CommittedGPUs:  m.c.CommittedGPUs(),
			SubscribedGPUs: m.c.SubscribedGPUs(),
		}
		for _, fh := range m.hosts {
			if hostEmpty(fh) {
				l.EmptyHosts++
			}
		}
		out[i] = l
	}
}

// attachMemberHosts attaches n leased hosts to member m now — see
// sim.attachHosts: no latency, no scale event, and the AddHost
// notification is the cross-shard wakeup at the boundary.
func (s *fedSim) attachMemberHosts(m, n int) {
	for i := 0; i < n; i++ {
		s.addHost(m)
	}
	if n > 0 {
		s.sampleProvisioned()
	}
}

// detachMemberEmpty detaches up to n empty hosts from member mi and
// returns the count removed — see sim.detachEmptyHosts.
func (s *fedSim) detachMemberEmpty(mi, n int) int {
	m := s.members[mi]
	removed := 0
	for i := 0; i < len(m.hosts) && removed < n; {
		if s.removeHostIfEmpty(m, i) {
			removed++
			continue
		}
		i++
	}
	if removed > 0 {
		s.sampleProvisioned()
	}
	return removed
}

// runFederatedShardedLeased builds the federated capacity ledger from
// the parent config and lease-managed worker federations from the
// prepared worker configs, then drives all of them through the barrier
// protocol. cfg must be exactly what RunFederated would have received —
// the ledger's result is the unsharded run's, byte for byte.
func runFederatedShardedLeased(cfg FedConfig, wcfgs []FedConfig) (*FedResult, error) {
	// cfg already went through withDefaults (which normalizes an explicit
	// NoInterClusterPenalty to 0); restore the sentinel so the ledger's
	// own defaulting pass keeps it zero instead of re-defaulting.
	if cfg.InterClusterPenalty == 0 {
		cfg.InterClusterPenalty = NoInterClusterPenalty
	}
	ledger, err := newFedSim(cfg)
	if err != nil {
		return nil, err
	}
	defer ledger.close()
	k := len(wcfgs)
	workers := make([]*fedSim, k)
	for i := range wcfgs {
		wcfgs[i].leaseManaged = true
		w, err := newFedSim(wcfgs[i])
		if err != nil {
			for _, b := range workers[:i] {
				b.close()
			}
			return nil, err
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.close()
		}
	}()
	pool := &fedLeasePool{
		ledger:   ledger,
		workers:  workers,
		specs:    cfg.Clusters,
		replicas: cfg.ReplicasPerKernel,
		spare:    make([]int, k),
		want:     make([]int, k),
		transfer: make([]int, k),
		weights:  make([]float64, k),
	}
	pool.loads = make([][]federation.MemberLoad, k)
	for i := range pool.loads {
		pool.loads[i] = make([]federation.MemberLoad, len(cfg.Clusters))
	}
	engines := make([]*des.Engine, 0, k+1)
	engines = append(engines, ledger.eng)
	for _, w := range workers {
		engines = append(engines, w.eng)
	}
	runBarriers(engines, ledger.start, ledger.end, cfg.LeaseEpoch, pool.reconcile)
	lres, err := ledger.finish()
	if err != nil {
		return nil, err
	}
	results := make([]*FedResult, k)
	for i, w := range workers {
		r, err := w.finish()
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return leasedFedResult(lres, MergeFedResults(results...)), nil
}

// leasedFedResult assembles the federated LeasePool result — the same
// split as leasedResult: the ledger owns the per-cluster and
// federation-wide capacity series, routing and scale counters, and
// integrated hours (byte-identical to RunFederated); the workers own the
// latency distributions and the task count.
func leasedFedResult(ledger, merged *FedResult) *FedResult {
	out := *ledger
	out.Interactivity = merged.Interactivity
	out.TCT = merged.TCT
	out.ClassDelay = merged.ClassDelay
	out.Tasks = merged.Tasks
	return &out
}
