package sim

import (
	"math"
	"testing"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/trace"
)

func fedQuickTrace(seed int64) *trace.Trace {
	cfg := trace.AdobeExcerptConfig(seed)
	cfg.Duration = 4 * time.Hour
	return trace.MustGenerate(cfg)
}

func runFed(t *testing.T, tr *trace.Trace, k int, route federation.RoutePolicy) *FedResult {
	t.Helper()
	res, err := RunFederated(FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(k, 30),
		Route:    route,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFederatedMergedIntegralEqualsSum pins the metrics-merging invariant:
// the federation-wide committed/provisioned series must integrate to the
// sum of the per-cluster integrals.
func TestFederatedMergedIntegralEqualsSum(t *testing.T) {
	tr := fedQuickTrace(42)
	for _, k := range []int{2, 3, 4} {
		res := runFed(t, tr, k, federation.LeastSubscribed{})
		var comm, prov float64
		for _, c := range res.Clusters {
			comm += c.CommittedGPUs.Integral(tr.Start, tr.End)
			prov += c.ProvisionedGPUs.Integral(tr.Start, tr.End)
		}
		if got := res.CommittedGPUs.Integral(tr.Start, tr.End); !closeRel(got, comm) {
			t.Errorf("k=%d: merged committed integral %.6f != per-cluster sum %.6f", k, got, comm)
		}
		if got := res.ProvisionedGPUs.Integral(tr.Start, tr.End); !closeRel(got, prov) {
			t.Errorf("k=%d: merged provisioned integral %.6f != per-cluster sum %.6f", k, got, prov)
		}
		if res.Tasks == 0 {
			t.Errorf("k=%d: no tasks simulated", k)
		}
	}
}

func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// fedFingerprint collapses a FedResult into comparable values.
type fedFingerprint struct {
	tasks, immediate          int
	localPl, remotePl         int
	remoteExec                int
	migrations, cross         int
	scaleOuts, scaleIns       int
	coldStarts, warmStarts    int
	delayP50, delayP99        float64
	tctP50, tctP99            float64
	activeGPUHours, provHours float64
	reservedHours             float64
	sessIntegral              float64
	perClusterCommitted       [8]float64
}

func fedFingerprintOf(tr *trace.Trace, r *FedResult) fedFingerprint {
	fp := fedFingerprint{
		tasks: r.Tasks, immediate: r.ImmediateCommits,
		localPl: r.LocalPlacements, remotePl: r.RemotePlacements,
		remoteExec: r.RemoteExecutions,
		migrations: r.Migrations, cross: r.CrossMigrations,
		scaleOuts: r.ScaleOuts, scaleIns: r.ScaleIns,
		coldStarts: r.ColdStarts, warmStarts: r.WarmStarts,
		delayP50:       r.Interactivity.Percentile(50),
		delayP99:       r.Interactivity.Percentile(99),
		tctP50:         r.TCT.Percentile(50),
		tctP99:         r.TCT.Percentile(99),
		activeGPUHours: r.ActiveGPUHours,
		provHours:      r.ProvisionedGPUHours,
		reservedHours:  r.ReservedGPUHours,
		sessIntegral:   r.ActiveSessions.Integral(tr.Start, tr.End),
	}
	for i, c := range r.Clusters {
		if i < len(fp.perClusterCommitted) {
			fp.perClusterCommitted[i] = c.CommittedGPUs.Integral(tr.Start, tr.End)
		}
	}
	return fp
}

// TestFederatedSameSeedBitForBit double-runs federated simulations with a
// fixed seed across every route policy and asserts identical results —
// the determinism guarantee the federated wait-queue and route policies
// must preserve.
func TestFederatedSameSeedBitForBit(t *testing.T) {
	tr := fedQuickTrace(33)
	for _, route := range []federation.RoutePolicy{
		federation.LocalFirst{},
		federation.LeastSubscribed{},
		federation.LatencyAware{},
	} {
		a := runFed(t, tr, 4, route)
		b := runFed(t, tr, 4, route)
		fa, fb := fedFingerprintOf(tr, a), fedFingerprintOf(tr, b)
		if fa != fb {
			t.Errorf("%s: same seed diverged:\n  run1: %+v\n  run2: %+v", route.Name(), fa, fb)
		}
	}
}

// TestFederatedSpillsAcrossClusters checks the federation actually routes:
// with more than one cluster and a balancing policy, some sessions or
// executions must cross the home-cluster boundary.
func TestFederatedSpillsAcrossClusters(t *testing.T) {
	tr := fedQuickTrace(42)
	res := runFed(t, tr, 4, federation.LeastSubscribed{})
	if res.RemotePlacements == 0 && res.RemoteExecutions == 0 && res.CrossMigrations == 0 {
		t.Error("4-cluster least-subscribed run never crossed a cluster boundary")
	}
	if res.LocalPlacements+res.RemotePlacements == 0 {
		t.Error("no sessions placed")
	}
}

// TestDefaultFedClustersConserveHosts pins the sweep-fairness property:
// every cluster count splits exactly the same host budget (raised to one
// host per cluster when the budget is smaller than the cluster count).
func TestDefaultFedClustersConserveHosts(t *testing.T) {
	for _, budget := range []int{4, 8, 10, 30} {
		for k := 1; k <= 8; k++ {
			specs := DefaultFedClusters(k, budget)
			want := budget
			if want < k {
				want = k
			}
			total := 0
			for _, s := range specs {
				if s.Hosts < 1 {
					t.Errorf("budget=%d k=%d: cluster %s has %d hosts", budget, k, s.Name, s.Hosts)
				}
				total += s.Hosts
			}
			if total != want {
				t.Errorf("budget=%d k=%d: %d total hosts, want %d", budget, k, total, want)
			}
			if k > 1 && specs[0].Hosts < specs[k-1].Hosts {
				t.Errorf("budget=%d k=%d: sizes not descending: %d..%d",
					budget, k, specs[0].Hosts, specs[k-1].Hosts)
			}
		}
	}
	// The canonical 30-host sweep must stay strictly heterogeneous.
	for k := 2; k <= 8; k++ {
		specs := DefaultFedClusters(k, 30)
		if specs[0].Hosts <= specs[k-1].Hosts {
			t.Errorf("k=%d: expected heterogeneous sizes, got %d..%d",
				k, specs[0].Hosts, specs[k-1].Hosts)
		}
	}
}
