package sim

import (
	"sync"

	"notebookos/internal/federation"
	"notebookos/internal/metrics"
	"notebookos/internal/trace"
)

// ShardSeed derives the seed for shard index i from a run seed as
// seed ^ splitmix64(i) — the one shared helper every sharded path
// (RunSharded, RunFederatedSharded, and the streaming generators via
// trace.ShardSeed, which now owns the implementation) uses, so sharded
// experiment output is reproducible under any worker scheduling: the
// shard's randomness is a pure function of (run seed, shard index), never
// of which goroutine ran first.
func ShardSeed(seed int64, shard int) int64 {
	return trace.ShardSeed(seed, shard)
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a cheap,
// well-mixed 64-bit hash. It decorrelates consecutive shard indices; the
// raw XOR of a small index would only flip low bits and keep the shards'
// rand streams nearly in lockstep. Kept here (mirroring trace.splitmix64)
// so sim's own tests pin the hash this package's seeds depend on.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunSharded partitions the config's trace into k session-partitioned
// shards (trace.Split), runs one worker simulation per shard on parallel
// goroutines, and merges the workers deterministically with MergeResults.
// k <= 1 is exactly Run — byte-identical output, same seed.
//
// Capacity splits proportionally to each shard's reserved-GPU-hour weight
// via trace.ProportionalShares: Hosts (floored at 1 per shard, so every
// worker can place something), MinHosts (via floorShares, so every worker
// keeps an explicit floor of at least 1 and never falls back to the
// default), and ScalingBufferHosts (no floor; its zero is a real zero).
// Worker i runs with ShardSeed(Seed, i).
//
// Capacity semantics depend on cfg.ShardCapacity (see docs/SHARDING.md
// for the full story and measured drift):
//
//   - LeasePool (recommended): the proportional split is only the initial
//     lease grant. A capacity ledger — a full unsharded replay of cfg —
//     runs alongside the workers, and at every epoch boundary
//     (cfg.LeaseEpoch, default the autoscale interval) the workers'
//     leases are re-apportioned to sum exactly to the ledger's live host
//     count. The merged result reports the ledger's capacity metrics, so
//     saved-GPU-hours, scale events, and every other cluster-determined
//     number are byte-identical to the unsharded run at every k — drift
//     exactly 0.000% (pinned by TestLeasePoolCapacityExact and, at ≤1%,
//     by TestShardedSavingsDriftBound).
//   - LegacySplit (the zero value): shards never share capacity after the
//     initial grant. A worker saturates or autoscales on its own shard's
//     load, so transient peaks the unsharded cluster absorbed with another
//     shard's idle GPUs instead trigger per-shard scale-outs, and merged
//     saved-GPU-hours drift below the unsharded run — measured 7-8% at
//     k=2 and 19-22% at k=4 (bounded at 12% / 25% by the same test).
//
// Interactivity and TCT distributions are unbiased by construction under
// either mode: every task runs under the same policy code.
func RunSharded(cfg Config, shards int) (*Result, error) {
	if shards <= 1 {
		return Run(cfg)
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	// Each worker needs at least one real host: a zero share would read as
	// "use the default" to the worker's own config defaulting and invent
	// capacity. More shards than hosts cannot each hold a host, so clamp.
	if shards > cfg.Hosts {
		shards = cfg.Hosts
	}
	if shards <= 1 {
		return Run(cfg) // Config defaulting is idempotent
	}
	parts := cfg.Trace.Split(shards)
	weights := make([]float64, len(parts))
	for i, p := range parts {
		weights[i] = p.Weight
	}
	hosts := trace.ProportionalShares(weights, cfg.Hosts, 1)
	// The floor split must leave no zero share: a worker's MinHosts=0 would
	// read as "use the default" (4) and multiply the aggregate floor.
	minHosts := floorShares(weights, cfg.MinHosts)
	buffers := trace.ProportionalShares(weights, cfg.ScalingBufferHosts, 0)

	wcfgs := make([]Config, len(parts))
	for i := range parts {
		wcfg := cfg
		wcfg.Trace = parts[i].Trace
		wcfg.Hosts = hosts[i]
		wcfg.MinHosts = minHosts[i]
		wcfg.ScalingBufferHosts = buffers[i]
		wcfg.Seed = ShardSeed(cfg.Seed, i)
		wcfgs[i] = wcfg
	}
	if cfg.ShardCapacity == LeasePool {
		return runShardedLeased(cfg, wcfgs)
	}

	results := make([]*Result, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int, wcfg Config) {
			defer wg.Done()
			results[i], errs[i] = Run(wcfg)
		}(i, wcfgs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeResults(results...), nil
}

// MergeResults combines per-shard worker results into one Result, in the
// argument order and only the argument order — workers land in a slice
// indexed by shard, so the merge is byte-identical regardless of which
// worker finished first.
//
// Merge rules:
//
//   - Timelines merge pointwise with metrics.MergeTimelines, so the
//     merged Timeline's Integral over any window equals the sum of the
//     shard integrals (the MergeTimelines invariant). This is exact for
//     extensive series (provisioned/committed GPUs, active sessions and
//     trainings). SR is intensive — a ratio — so its merged series is the
//     sum of per-shard ratios: useful as a saturation indicator, not a
//     cluster-wide subscription ratio.
//   - Samples (interactivity, TCT, per-step latencies, sync/read/write)
//     combine with metrics.MergeSamples: each shard's sample is sorted in
//     place (what the first percentile query would have forced anyway) and
//     the sorted runs k-way merge into a pre-sized, already-sorted result.
//     Merging sorted runs yields exactly the sequence a concat-then-sort
//     would, so every quantile is bit-identical and completion-order
//     independent.
//   - Events k-way merge by time: each worker records events at its own
//     non-decreasing sim clock, so the per-shard slices are already sorted
//     and the merge is a pre-sized sweep; equal-time events keep shard
//     order, matching the stable sort this replaces.
//   - Counters and integrated hours sum.
func MergeResults(results ...*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	out := &Result{
		Policy:      results[0].Policy,
		StepLatency: map[Step]*metrics.Sample{},
	}
	prov := make([]*metrics.Timeline, len(results))
	comm := make([]*metrics.Timeline, len(results))
	sess := make([]*metrics.Timeline, len(results))
	train := make([]*metrics.Timeline, len(results))
	srs := make([]*metrics.Timeline, len(results))
	events := 0
	for i, r := range results {
		prov[i] = r.ProvisionedGPUs
		comm[i] = r.CommittedGPUs
		sess[i] = r.ActiveSessions
		train[i] = r.ActiveTrainings
		srs[i] = r.SR
		events += len(r.Events)
	}
	out.ProvisionedGPUs = metrics.MergeTimelines(prov...)
	out.CommittedGPUs = metrics.MergeTimelines(comm...)
	out.ActiveSessions = metrics.MergeTimelines(sess...)
	out.ActiveTrainings = metrics.MergeTimelines(train...)
	out.SR = metrics.MergeTimelines(srs...)

	out.Interactivity = mergeSamples(results, func(r *Result) *metrics.Sample { return r.Interactivity })
	out.TCT = mergeSamples(results, func(r *Result) *metrics.Sample { return r.TCT })
	out.SyncLatency = mergeSamples(results, func(r *Result) *metrics.Sample { return r.SyncLatency })
	out.ReadLatency = mergeSamples(results, func(r *Result) *metrics.Sample { return r.ReadLatency })
	out.WriteLatency = mergeSamples(results, func(r *Result) *metrics.Sample { return r.WriteLatency })
	for _, st := range Steps() {
		st := st
		out.StepLatency[st] = mergeSamples(results, func(r *Result) *metrics.Sample { return r.StepLatency[st] })
	}

	out.Events = mergeEvents(results, events)

	for _, r := range results {
		out.Sessions += r.Sessions
		out.Tasks += r.Tasks
		out.ImmediateCommits += r.ImmediateCommits
		out.ExecutorReuse += r.ExecutorReuse
		out.Migrations += r.Migrations
		out.FailedMigrations += r.FailedMigrations
		out.ScaleOuts += r.ScaleOuts
		out.ScaleIns += r.ScaleIns
		out.ColdStarts += r.ColdStarts
		out.WarmStarts += r.WarmStarts
		out.ActiveGPUHours += r.ActiveGPUHours
		out.StandbyReplicaHours += r.StandbyReplicaHours
		out.ReservedGPUHours += r.ReservedGPUHours
		out.ServerHours += r.ServerHours
		out.HostCrashes += r.HostCrashes
		out.HostRecoveries += r.HostRecoveries
		out.Failovers += r.Failovers
		out.TaskRestarts += r.TaskRestarts
		out.Abandonments += r.Abandonments
		out.LostGPUHours += r.LostGPUHours
	}
	out.Availability = mergeFaultTimelines(results, func(r *Result) *metrics.Timeline { return r.Availability })
	out.RecoveryTime = mergeFaultSamples(results, func(r *Result) *metrics.Sample { return r.RecoveryTime })
	return out
}

// mergeFaultTimelines merges the shards' fault recorders while preserving
// the zero-fault contract: when no shard recorded one (faults disabled)
// the merged field stays nil, exactly like an unsharded run's.
func mergeFaultTimelines(results []*Result, get func(*Result) *metrics.Timeline) *metrics.Timeline {
	ins := make([]*metrics.Timeline, 0, len(results))
	for _, r := range results {
		if tl := get(r); tl != nil {
			ins = append(ins, tl)
		}
	}
	if len(ins) == 0 {
		return nil
	}
	return metrics.MergeTimelines(ins...)
}

// mergeFaultSamples is mergeFaultTimelines for sample recorders.
func mergeFaultSamples(results []*Result, get func(*Result) *metrics.Sample) *metrics.Sample {
	ins := make([]*metrics.Sample, 0, len(results))
	for _, r := range results {
		if sm := get(r); sm != nil {
			ins = append(ins, sm)
		}
	}
	if len(ins) == 0 {
		return nil
	}
	return metrics.MergeSamples(ins...)
}

// mergeSamples k-way merges one sample per result via metrics.MergeSamples
// (nil samples are skipped there; a shard's StepLatency map always covers
// Steps(), but be defensive).
func mergeSamples(results []*Result, get func(*Result) *metrics.Sample) *metrics.Sample {
	ins := make([]*metrics.Sample, len(results))
	for i, r := range results {
		ins[i] = get(r)
	}
	return metrics.MergeSamples(ins...)
}

// mergeEvents k-way merges the per-shard event slices, which are each
// time-ordered (recorded at a monotone sim clock), into one pre-sized
// slice. metrics.MergeSorted resolves ties toward the lowest shard index —
// the order the previous concat-and-stable-sort produced.
func mergeEvents(results []*Result, total int) []Event {
	runs := make([][]Event, len(results))
	for i, r := range results {
		runs[i] = r.Events
	}
	return metrics.MergeSorted(make([]Event, 0, total),
		func(a, b Event) bool { return a.T < b.T }, runs...)
}

// RunFederatedSharded is RunSharded for the federated simulator: the
// trace splits into k session-partitioned shards, each shard runs a full
// federation whose member clusters carry a proportional slice of the
// configured hosts (floored at 1 host per member per shard, so every
// worker federation keeps the configured topology), and the per-shard
// FedResults merge with MergeFedResults. Worker i runs with
// ShardSeed(Seed, i); per-member MinHosts and the federation-wide
// FedMinHosts floor — whether caller-set or defaulted by the parent
// config — split proportionally across the shards like the hosts do
// (floored at 1 per worker), so the configured scale-in policy survives
// sharding. k <= 1 is exactly RunFederated. Capacity semantics follow
// cfg.ShardCapacity as in RunSharded, applied per member: under LeasePool
// a ledger federation replays the whole cfg (including PooledAutoscale's
// one-decision-per-tick over the pooled counters), leases move between
// shards within a member (host shapes differ across members), and each
// member's lease total is pinned to the ledger member's live host count —
// so per-member capacity series and the federation-wide savings are exact
// (TestLeasePoolFederatedCapacityExact); under LegacySplit shard
// federations never share capacity.
func RunFederatedSharded(cfg FedConfig, shards int) (*FedResult, error) {
	if shards <= 1 {
		return RunFederated(cfg)
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	// Every worker federation keeps the configured topology, so each
	// member needs at least one host in every shard (a zero share would
	// read as "use the default" to the worker's own config defaulting and
	// invent capacity). The smallest member therefore bounds the shard
	// count.
	for _, spec := range cfg.Clusters {
		if shards > spec.Hosts {
			shards = spec.Hosts
		}
	}
	if shards <= 1 {
		// Re-entering RunFederated after withDefaults: restore the explicit
		// no-penalty sentinel so the second defaulting pass keeps it zero.
		if cfg.InterClusterPenalty == 0 {
			cfg.InterClusterPenalty = NoInterClusterPenalty
		}
		return RunFederated(cfg)
	}
	parts := cfg.Trace.Split(shards)
	weights := make([]float64, len(parts))
	for i, p := range parts {
		weights[i] = p.Weight
	}
	// memberHosts[m] / memberFloors[m] are member m's host count and
	// scale-in floor split across the shards; fedFloors is the
	// federation-wide floor's split. Floors keep at least 1 per worker: a
	// zero would read as "use the default" to the worker's own config
	// defaulting and silently replace the caller's (or the parent
	// default's) floor policy.
	memberHosts := make([][]int, len(cfg.Clusters))
	memberFloors := make([][]int, len(cfg.Clusters))
	for m, spec := range cfg.Clusters {
		memberHosts[m] = trace.ProportionalShares(weights, spec.Hosts, 1)
		memberFloors[m] = floorShares(weights, spec.MinHosts)
	}
	fedFloors := floorShares(weights, cfg.FedMinHosts)

	wcfgs := make([]FedConfig, len(parts))
	for i := range parts {
		wcfg := cfg
		wcfg.Trace = parts[i].Trace
		wcfg.Clusters = make([]FedClusterSpec, len(cfg.Clusters))
		for m, spec := range cfg.Clusters {
			spec.Hosts = memberHosts[m][i]
			spec.MinHosts = memberFloors[m][i]
			wcfg.Clusters[m] = spec
		}
		wcfg.FedMinHosts = fedFloors[i]
		if wcfg.InterClusterPenalty == 0 {
			// The parent withDefaults normalized an explicit
			// NoInterClusterPenalty to 0; keep it an explicit zero for the
			// worker's own withDefaults pass instead of re-defaulting to 25ms.
			wcfg.InterClusterPenalty = NoInterClusterPenalty
		}
		wcfg.Seed = ShardSeed(cfg.Seed, i)
		// Stateful route policies (round-robin's rotation counter) must
		// not be shared across the parallel workers.
		wcfg.Route = federation.FreshPolicy(cfg.Route)
		wcfgs[i] = wcfg
	}
	if cfg.ShardCapacity == LeasePool {
		return runFederatedShardedLeased(cfg, wcfgs)
	}

	results := make([]*FedResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int, wcfg FedConfig) {
			defer wg.Done()
			results[i], errs[i] = RunFederated(wcfg)
		}(i, wcfgs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeFedResults(results...), nil
}

// floorShares splits a scale-in floor across shard weights with every
// share at least 1 (see the floor comment in RunFederatedSharded). The
// workers' floors may sum to slightly more than the parent's when the
// floor is smaller than the shard count — conservative: shards can only
// drain less, never more, than the configured policy allows.
func floorShares(weights []float64, floor int) []int {
	shares := trace.ProportionalShares(weights, floor, 1)
	for i, s := range shares {
		if s < 1 {
			shares[i] = 1
		}
	}
	return shares
}

// MergeFedResults combines per-shard federated results in argument order,
// under the same rules as MergeResults: timelines merge pointwise (both
// federation-wide and per member cluster, matched by member index — every
// shard federation has the same member list), samples concatenate,
// counters and integrated hours sum. FinalHosts sums across shards: it is
// the total live fleet the k worker federations ended with.
func MergeFedResults(results ...*FedResult) *FedResult {
	if len(results) == 0 {
		return nil
	}
	out := &FedResult{}
	members := len(results[0].Clusters)
	for m := 0; m < members; m++ {
		prov := make([]*metrics.Timeline, len(results))
		comm := make([]*metrics.Timeline, len(results))
		merged := &FedClusterResult{Name: results[0].Clusters[m].Name}
		for i, r := range results {
			c := r.Clusters[m]
			prov[i] = c.ProvisionedGPUs
			comm[i] = c.CommittedGPUs
			merged.HomeSessions += c.HomeSessions
			merged.PlacedSessions += c.PlacedSessions
			merged.Tasks += c.Tasks
			merged.MigrationsIn += c.MigrationsIn
			merged.ScaleOuts += c.ScaleOuts
			merged.ScaleIns += c.ScaleIns
			merged.FinalHosts += c.FinalHosts
		}
		merged.ProvisionedGPUs = metrics.MergeTimelines(prov...)
		merged.CommittedGPUs = metrics.MergeTimelines(comm...)
		out.Clusters = append(out.Clusters, merged)
	}

	prov := make([]*metrics.Timeline, len(results))
	comm := make([]*metrics.Timeline, len(results))
	sess := make([]*metrics.Timeline, len(results))
	for i, r := range results {
		prov[i] = r.ProvisionedGPUs
		comm[i] = r.CommittedGPUs
		sess[i] = r.ActiveSessions
	}
	out.ProvisionedGPUs = metrics.MergeTimelines(prov...)
	out.CommittedGPUs = metrics.MergeTimelines(comm...)
	out.ActiveSessions = metrics.MergeTimelines(sess...)

	inter := make([]*metrics.Sample, len(results))
	tct := make([]*metrics.Sample, len(results))
	for i, r := range results {
		inter[i] = r.Interactivity
		tct[i] = r.TCT
	}
	out.Interactivity = metrics.MergeSamples(inter...)
	out.TCT = metrics.MergeSamples(tct...)
	// ClassDelay merges per class when any shard recorded it (all shards
	// share the parent's SLOAware flag, so presence is uniform in
	// practice); trace.SLOClasses() fixes the class iteration order.
	if results[0].ClassDelay != nil {
		out.ClassDelay = make(map[trace.SLOClass]*metrics.Sample, len(results[0].ClassDelay))
		for _, cl := range trace.SLOClasses() {
			ins := make([]*metrics.Sample, len(results))
			for i, r := range results {
				if r.ClassDelay != nil {
					ins[i] = r.ClassDelay[cl]
				}
			}
			out.ClassDelay[cl] = metrics.MergeSamples(ins...)
		}
	}
	for _, r := range results {
		out.Tasks += r.Tasks
		out.ImmediateCommits += r.ImmediateCommits
		out.LocalPlacements += r.LocalPlacements
		out.RemotePlacements += r.RemotePlacements
		out.RemoteExecutions += r.RemoteExecutions
		out.Migrations += r.Migrations
		out.CrossMigrations += r.CrossMigrations
		out.ScaleOuts += r.ScaleOuts
		out.ScaleIns += r.ScaleIns
		out.ColdStarts += r.ColdStarts
		out.WarmStarts += r.WarmStarts
		out.ActiveGPUHours += r.ActiveGPUHours
		out.ProvisionedGPUHours += r.ProvisionedGPUHours
		out.ReservedGPUHours += r.ReservedGPUHours
		out.HostCrashes += r.HostCrashes
		out.HostRecoveries += r.HostRecoveries
		out.Failovers += r.Failovers
		out.TaskRestarts += r.TaskRestarts
		out.Abandonments += r.Abandonments
		out.LostGPUHours += r.LostGPUHours
	}
	{
		ins := make([]*metrics.Timeline, 0, len(results))
		for _, r := range results {
			if r.Availability != nil {
				ins = append(ins, r.Availability)
			}
		}
		if len(ins) > 0 {
			out.Availability = metrics.MergeTimelines(ins...)
		}
	}
	{
		ins := make([]*metrics.Sample, 0, len(results))
		for _, r := range results {
			if r.RecoveryTime != nil {
				ins = append(ins, r.RecoveryTime)
			}
		}
		if len(ins) > 0 {
			out.RecoveryTime = metrics.MergeSamples(ins...)
		}
	}
	return out
}
