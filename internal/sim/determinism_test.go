package sim

import (
	"testing"
	"time"

	"notebookos/internal/trace"
)

// fingerprint collapses a Result into the values the experiment harness
// consumes, so two runs can be compared for bit-identical behavior.
type fingerprint struct {
	tasks, immediate, reuse     int
	migrations, failed          int
	scaleOuts, scaleIns         int
	coldStarts, warmStarts      int
	events                      int
	tctP50, tctP99              float64
	delayP50, delayP99          float64
	activeGPUHours, serverHours float64
	reservedHours, standbyHours float64
	provisionedIntegral         float64
	committedIntegral           float64
	srMax                       float64
}

func fingerprintOf(tr *trace.Trace, r *Result) fingerprint {
	return fingerprint{
		tasks: r.Tasks, immediate: r.ImmediateCommits, reuse: r.ExecutorReuse,
		migrations: r.Migrations, failed: r.FailedMigrations,
		scaleOuts: r.ScaleOuts, scaleIns: r.ScaleIns,
		coldStarts: r.ColdStarts, warmStarts: r.WarmStarts,
		events:              len(r.Events),
		tctP50:              r.TCT.Percentile(50),
		tctP99:              r.TCT.Percentile(99),
		delayP50:            r.Interactivity.Percentile(50),
		delayP99:            r.Interactivity.Percentile(99),
		activeGPUHours:      r.ActiveGPUHours,
		serverHours:         r.ServerHours,
		reservedHours:       r.ReservedGPUHours,
		standbyHours:        r.StandbyReplicaHours,
		provisionedIntegral: r.ProvisionedGPUs.Integral(tr.Start, tr.End),
		committedIntegral:   r.CommittedGPUs.Integral(tr.Start, tr.End),
		srMax:               r.SR.Max(),
	}
}

// TestSameSeedBitForBitAllPolicies double-runs every policy with a fixed
// seed and asserts the Results are identical — the determinism guarantee
// the event-driven wait-queue and parallel harness must preserve.
func TestSameSeedBitForBitAllPolicies(t *testing.T) {
	cfg := trace.AdobeExcerptConfig(33)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		a := runPolicy(t, tr, p)
		b := runPolicy(t, tr, p)
		fa, fb := fingerprintOf(tr, a), fingerprintOf(tr, b)
		if fa != fb {
			t.Errorf("%s: same seed diverged:\n  run1: %+v\n  run2: %+v", p, fa, fb)
		}
	}
}

// TestSameSeedDeterministicUnderConcurrency runs the same config on
// several goroutines at once (the parallel harness's access pattern,
// including the shared read-only trace) and asserts identical results.
func TestSameSeedDeterministicUnderConcurrency(t *testing.T) {
	cfg := trace.AdobeExcerptConfig(34)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)

	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i], errs[i] = Run(Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 9})
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
	}
	want := fingerprintOf(tr, results[0])
	for i := 1; i < n; i++ {
		if got := fingerprintOf(tr, results[i]); got != want {
			t.Errorf("concurrent run %d diverged:\n  want %+v\n  got  %+v", i, want, got)
		}
	}
}
