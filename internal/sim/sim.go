package sim

import (
	"fmt"
	"iter"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/des"
	"notebookos/internal/metrics"
	"notebookos/internal/resources"
	"notebookos/internal/scheduler"
	"notebookos/internal/trace"
	"notebookos/internal/workload"
)

// Policy selects the scheduling baseline being simulated (§5.1.1).
type Policy string

// The four evaluated policies.
const (
	// PolicyReservation reserves GPUs for each session's entire lifetime
	// (current notebook platforms).
	PolicyReservation Policy = "reservation"
	// PolicyBatch provisions a fresh container per submission, FCFS.
	PolicyBatch Policy = "batch"
	// PolicyNotebookOS is the full system: 3 replicas, oversubscription,
	// dynamic GPU binding, migration, autoscaling.
	PolicyNotebookOS Policy = "notebookos"
	// PolicyLCP is NotebookOS (LCP): a large warm-container pool with
	// per-task state warm-up instead of replicated kernels.
	PolicyLCP Policy = "notebookos-lcp"
)

// Step identifies a request-path stage from Fig. 15 for the latency
// breakdowns of Figs. 16-19.
type Step string

// Request-path steps (numbers follow Fig. 15).
const (
	StepGSProcess  Step = "GS P Rq (1)"
	StepPreProcess Step = "K PP Rq (5)"
	StepElection   Step = "K PRP (6)"
	StepIntermed   Step = "K PRP Exec (7)"
	StepExec       Step = "K Exec (8)"
	StepPostProc   Step = "K P Rsp (9)"
	StepReturn     Step = "LS<-K (10)"
	StepE2E        Step = "E2E"
)

// Steps lists the recorded steps in display order.
func Steps() []Step {
	return []Step{StepE2E, StepGSProcess, StepPreProcess, StepElection, StepIntermed, StepExec, StepPostProc, StepReturn}
}

// Config parameterizes one simulation run.
type Config struct {
	// Trace is the workload to replay. Exactly one of Trace and Source must
	// be set.
	Trace *trace.Trace
	// Source is a lazily-iterated session stream (see trace.Source) used in
	// place of Trace: sessions are admitted into the simulation one at a
	// time, in arrival order, as virtual time reaches them, so the full
	// workload never needs to exist in memory. A materialized Trace and its
	// AsSource adapter produce byte-identical results; a trace.StreamGen
	// synthesizes the sessions on the fly.
	Source trace.Source
	// LeanMetrics bounds the result's memory by the simulated window instead
	// of the workload size: delta timelines coalesce at SampleEvery
	// resolution, distribution samples keep a seeded reservoir of
	// LeanSampleCap observations (min/max/N stay exact), and the Fig. 10
	// event record is skipped. Required for bounded-memory million-session
	// streaming runs; off by default.
	LeanMetrics bool
	// LeanSampleCap is the per-distribution reservoir size under LeanMetrics
	// (default 4096).
	LeanSampleCap int
	// Policy is the baseline to simulate.
	Policy Policy
	// Hosts is the initial server count (paper: 30 8-GPU VMs).
	Hosts int
	// HostCapacity defaults to p3.16xlarge.
	HostCapacity resources.Spec
	// ReplicasPerKernel is R (default 3).
	ReplicasPerKernel int
	// PrewarmPerHost sizes the warm pool (NotebookOS: small, for
	// migrations; LCP: large).
	PrewarmPerHost int
	// ScaleFactor is the autoscaler's f (default 1.05).
	ScaleFactor float64
	// ScalingBufferHosts keeps spare servers for bursts.
	ScalingBufferHosts int
	// AutoscaleInterval is the autoscaler period (default 60s).
	AutoscaleInterval time.Duration
	// MinHosts floors scale-in (default 4).
	MinHosts int
	// SRHighWatermark caps per-host subscription (default 3.0).
	SRHighWatermark float64
	// Latencies are the protocol latency models.
	Latencies Latencies
	// Seed drives all randomness.
	Seed int64
	// SampleEvery is the metrics sampling period (default 5 min).
	SampleEvery time.Duration
	// ShardCapacity selects how the sharded runners treat cluster capacity.
	// Run itself ignores it: the choice only exists when a trace is split
	// across workers. LegacySplit (the zero value) keeps the static
	// proportional split; LeasePool reconciles a shared virtual capacity
	// pool at epoch barriers so k>1 tracks the unsharded run to ~1%. See
	// RunSharded and docs/SHARDING.md.
	ShardCapacity ShardCapacity
	// LeaseEpoch is the barrier period of the LeasePool capacity protocol
	// (default AutoscaleInterval, so pooled capacity decisions keep the
	// unsharded autoscaler's cadence). Only meaningful with
	// ShardCapacity == LeasePool.
	LeaseEpoch time.Duration
	// Faults declares the deterministic fault model: per-host exponential
	// crash/recover churn, scheduled outage windows, and (in federated
	// runs) network-degradation episodes. Nil or empty means a
	// failure-free world and leaves the run byte-identical to builds
	// without fault injection; see trace.FaultSpec and docs/FAULTS.md.
	Faults *trace.FaultSpec

	// leaseManaged marks a sharded worker whose capacity is governed by a
	// lease pool at epoch barriers: the worker's own autoscale ticks are
	// suppressed (the pool makes one global decision per barrier with the
	// unsharded formula). Set only by the lease runner, never by callers.
	leaseManaged bool
}

func (c *Config) withDefaults() error {
	if c.Trace == nil && c.Source == nil {
		return fmt.Errorf("sim: config requires Trace or Source")
	}
	if c.Trace != nil && c.Source != nil {
		return fmt.Errorf("sim: config requires exactly one of Trace and Source")
	}
	if c.LeanMetrics && c.LeanSampleCap <= 0 {
		c.LeanSampleCap = 4096
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Policy == "" {
		c.Policy = PolicyNotebookOS
	}
	if c.Hosts <= 0 {
		c.Hosts = 30
	}
	if c.HostCapacity.IsZero() {
		c.HostCapacity = resources.P316xlarge()
	}
	if c.ReplicasPerKernel <= 0 {
		c.ReplicasPerKernel = 3
	}
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1.05
	}
	if c.AutoscaleInterval <= 0 {
		c.AutoscaleInterval = time.Minute
	}
	if c.LeaseEpoch <= 0 {
		c.LeaseEpoch = c.AutoscaleInterval
	}
	if c.MinHosts <= 0 {
		c.MinHosts = 4
	}
	if c.SRHighWatermark <= 0 {
		c.SRHighWatermark = scheduler.DefaultSRHighWatermark
	}
	if c.Latencies.GSProcess == nil {
		c.Latencies = DefaultLatencies()
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Minute
	}
	if c.PrewarmPerHost == 0 {
		switch c.Policy {
		case PolicyLCP:
			c.PrewarmPerHost = 6
		case PolicyNotebookOS:
			c.PrewarmPerHost = 1
		}
	}
	return nil
}

// Event mirrors scheduler events for the Fig. 10 timeline. T is the event
// time in Unix nanoseconds — the DES engine's native int64 ordering key —
// which keeps a long trace's event record at 24 bytes instead of the 40 a
// time.Time field costs, and makes merge comparisons integer compares.
type Event struct {
	T    int64
	Kind scheduler.EventKind
}

// Time returns the event time as a time.Time in UTC.
func (e Event) Time() time.Time { return time.Unix(0, e.T).UTC() }

// Result carries everything the experiment harness needs to regenerate
// the paper's tables and figures.
type Result struct {
	Policy Policy

	// Timelines (Figs. 7, 8, 10, 14, 20).
	ProvisionedGPUs *metrics.Timeline
	CommittedGPUs   *metrics.Timeline
	ActiveSessions  *metrics.Timeline
	ActiveTrainings *metrics.Timeline
	SR              *metrics.Timeline

	// Distributions (Figs. 9, 11, 16-19).
	Interactivity *metrics.Sample          // seconds
	TCT           *metrics.Sample          // seconds
	StepLatency   map[Step]*metrics.Sample // seconds
	SyncLatency   *metrics.Sample          // seconds
	ReadLatency   *metrics.Sample          // seconds
	WriteLatency  *metrics.Sample          // seconds

	// Events and counters (Fig. 10, §5.3.2). Events is nil under
	// Config.LeanMetrics.
	Events           []Event
	Sessions         int
	Tasks            int
	ImmediateCommits int
	ExecutorReuse    int
	Migrations       int
	FailedMigrations int
	ScaleOuts        int
	ScaleIns         int
	ColdStarts       int
	WarmStarts       int

	// Revenue inputs (Fig. 12): integrated GPU/replica hours.
	ActiveGPUHours      float64
	StandbyReplicaHours float64
	ReservedGPUHours    float64
	ServerHours         float64

	// Fault-injection outcomes (docs/FAULTS.md). All zero — and the two
	// recorders nil — unless Config.Faults is enabled. HostCrashes and
	// HostRecoveries count crash/repair events; Failovers counts quorum-
	// preserving replica losses absorbed at one election cost;
	// TaskRestarts counts checkpoint-restore resubmissions after quorum
	// or executor loss; Abandonments counts tasks whose SLO-class retry
	// budget ran out (counted, never silently dropped); LostGPUHours
	// integrates GPU time thrown away by aborted executions.
	HostCrashes    int
	HostRecoveries int
	Failovers      int
	TaskRestarts   int
	Abandonments   int
	LostGPUHours   float64
	// Availability tracks the live host count as a delta timeline — its
	// integral over any window is exactly the fleet's up-host-hours.
	Availability *metrics.Timeline
	// RecoveryTime samples every recovery charge paid: failover election
	// rounds and checkpoint-restore restart penalties, in seconds.
	RecoveryTime *metrics.Sample
}

// simSession is the per-session simulation state.
type simSession struct {
	src   *trace.Session
	req   resources.Spec
	assig workload.Assignment

	// NotebookOS: replica hosts; Reservation: the single reserved host.
	hosts []*cluster.Host
	// holder is the session's exclusive-commit key ("<kind>/<id>"), built
	// once at session creation. A session's tasks are strictly serialized
	// (running + FCFS queue), so at most one commitment per session is ever
	// outstanding and one key can serve every task — the per-attempt
	// "<kind>/<id>/<nanos>" keys were the task path's largest allocation
	// source on long traces.
	holder string
	// rkeys caches the session's replica subscription keys ("<id>/r<i>"),
	// built once at kernel creation and reused at shutdown and on every
	// migration.
	rkeys        []string
	lastExecutor int
	busyUntil    time.Time
	queue        []trace.Task
	running      bool
	closed       bool
	// cur is the in-flight task state machine (nil between tasks), the
	// handle the fault layer aborts through; restarts counts the current
	// task's checkpoint-restore resubmissions against its retry budget.
	cur      runningTask
	restarts int
}

// replicaKeyFor returns the cached key for replica i (1-based).
func (ss *simSession) replicaKeyFor(i int) string {
	if len(ss.rkeys) < i {
		ss.rkeys = extendReplicaKeys(ss.rkeys, ss.src.ID, i)
	}
	return ss.rkeys[i-1]
}

// simHost pairs a cluster host with the simulator's per-host state (the
// warm-container count), so the hot placement scans walk one slice
// instead of re-fetching the host list and hitting a string-keyed map.
type simHost struct {
	h *cluster.Host
	// warm counts pre-warmed containers available on the host.
	warm int
}

// sim is the mutable simulation state.
type sim struct {
	cfg     Config
	eng     *des.Engine
	rng     *rand.Rand
	cluster *cluster.Cluster
	policy  scheduler.PlacementPolicy
	res     *Result

	// start/end bound the simulated window (the trace's or the source's).
	start, end time.Time
	// streaming is set when sessions arrive lazily from cfg.Source; lean
	// mirrors cfg.LeanMetrics for the hot recording paths.
	streaming bool
	lean      bool
	// kind is the holder-key namespace, wr the workload-assignment stream
	// (shared by the up-front loop and the lazy injector so both draw in
	// arrival order).
	kind string
	wr   *rand.Rand
	// pull yields the source's next session under streaming; stopPull
	// releases the iterator (see close); srcErr holds the source's
	// iteration error once the stream is exhausted.
	pull     func() (*trace.Session, bool)
	stopPull func()
	srcErr   error
	// reserved integrates reserved GPUs (session request sizes over session
	// lifetimes) online, replacing the trace-scan integral when streaming.
	reserved gpuHoursAcc

	hostSeq int
	// hostList mirrors the cluster membership in insertion order and
	// carries warm-pool counts.
	hostList []*simHost
	// pendingHosts counts servers being provisioned (scale-out latency).
	pendingHosts int
	// waitq parks tasks blocked on cluster capacity; it is woken by the
	// cluster's Release/AddHost notifications.
	waitq *capacityWaitQueue

	// Fault-injection state (see faults.go), live only when cfg.Faults is
	// enabled: frng feeds the crash-path draws (elections, container
	// starts during repair) so fault handling never perturbs the
	// scheduling RNG; faultSessions tracks live sessions in arrival order
	// for crash repair.
	faultsOn      bool
	frng          *rand.Rand
	faultSessions []*simSession

	// Lease-pool bookkeeping, maintained only when cfg.leaseManaged: the
	// live NotebookOS sessions in arrival order (so barrier-time replica
	// rehoming can find a replica's owner deterministically) and the
	// largest per-session GPU request seen (the headroom margin the pool
	// plans with).
	leaseSessions []*simSession
	leaseMaxReq   int
}

// holderKind names the exclusive-commit key namespace each policy's task
// path uses; Reservation holds for whole sessions under "sess".
func holderKind(p Policy) string {
	switch p {
	case PolicyReservation:
		return "sess"
	case PolicyBatch:
		return "batch"
	case PolicyLCP:
		return "lcp"
	default:
		return "nbos"
	}
}

// extendReplicaKeys grows keys to n entries of "<id>/r<i>" (1-based),
// carving every new key out of one backing buffer: a kernel's R keys cost
// two allocations (buffer + slice) instead of one per key.
func extendReplicaKeys(keys []string, id string, n int) []string {
	if cap(keys) < n {
		nk := make([]string, len(keys), n)
		copy(nk, keys)
		keys = nk
	}
	start := len(keys)
	size := 0
	for i := start + 1; i <= n; i++ {
		size += len(id) + 2 + decimalDigits(i)
	}
	var b strings.Builder
	b.Grow(size)
	for i := start + 1; i <= n; i++ {
		b.WriteString(id)
		b.WriteString("/r")
		b.WriteString(strconv.Itoa(i))
	}
	blob := b.String()
	pos := 0
	for i := start + 1; i <= n; i++ {
		l := len(id) + 2 + decimalDigits(i)
		keys = append(keys, blob[pos:pos+l])
		pos += l
	}
	return keys
}

// decimalDigits returns the number of base-10 digits of i > 0.
func decimalDigits(i int) int {
	d := 1
	for i >= 10 {
		i /= 10
		d++
	}
	return d
}

// Run executes the simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()
	s.eng.RunUntil(s.end.Add(24 * time.Hour))
	return s.finish()
}

// newSim builds a ready-to-run simulation: cluster and hosts in place,
// every trace (or injector) event scheduled, sampling and autoscale ticks
// armed. Callers drive the engine themselves — Run in one RunUntil shot to
// past the window's end, the lease runner (runLeased) in epoch-sized steps
// with barrier reconciliation between them — and then collect the result
// with finish. Pair with close, which releases the streaming source's
// iterator.
func newSim(cfg Config) (*sim, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	src := cfg.Source
	if src == nil {
		src = cfg.Trace.AsSource()
	}
	start, end := src.Window()
	eng := des.New(start)
	s := &sim{
		cfg:       cfg,
		eng:       eng,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		cluster:   cluster.New(cfg.ReplicasPerKernel),
		policy:    scheduler.LeastLoaded{SRHighWatermark: cfg.SRHighWatermark},
		start:     start,
		end:       end,
		streaming: cfg.Source != nil,
		lean:      cfg.LeanMetrics,
		kind:      holderKind(cfg.Policy),
		wr:        rand.New(rand.NewSource(cfg.Seed + 2)),
		waitq:     newCapacityWaitQueue(eng),
	}
	s.reserved.lastNS = start.UnixNano()

	// Lean mode swaps the unbounded recorders for window-bounded ones:
	// timelines coalesce at the sampling period, samples keep seeded
	// reservoirs (each with its own derived seed, so merges stay
	// reproducible).
	newTL := metrics.NewTimeline
	if s.lean {
		newTL = func() *metrics.Timeline { return metrics.NewCoalescedTimeline(cfg.SampleEvery) }
	}
	sampleSeq := cfg.Seed + 1000
	newSample := func() *metrics.Sample {
		sm := metrics.NewSample()
		if s.lean {
			sampleSeq++
			sm.Reservoir(cfg.LeanSampleCap, sampleSeq)
		}
		return sm
	}
	s.res = &Result{
		Policy:          cfg.Policy,
		ProvisionedGPUs: newTL(),
		CommittedGPUs:   newTL(),
		ActiveSessions:  newTL(),
		ActiveTrainings: newTL(),
		SR:              newTL(),
		Interactivity:   newSample(),
		TCT:             newSample(),
		StepLatency:     map[Step]*metrics.Sample{},
		SyncLatency:     newSample(),
		ReadLatency:     newSample(),
		WriteLatency:    newSample(),
	}
	for _, st := range Steps() {
		s.res.StepLatency[st] = newSample()
	}
	s.cluster.SetCapacityNotifier(s.waitq.Notify)
	// Fault injection arms before the initial hosts join so every host
	// slot — including the first Hosts — carries a crash clock, and the
	// availability timeline sees every membership change (faults.go).
	s.initFaults()

	// Pre-size the metric columns from the source's expectation: delta
	// series record two points per task (or session), sampled series one
	// point per period. For a materialized trace the hints are exact upper
	// bounds (coincident timestamps collapse), so long traces pay one
	// allocation per column instead of a geometric growth ladder — the
	// dominant allocation cost of 90-day runs. A streaming source supplies
	// analytic expectations instead of a trace scan; under LeanMetrics the
	// recorders bound themselves and the hints are skipped entirely.
	exp := src.Expect()
	sessions, numTasks := exp.Sessions, exp.Tasks
	ticks := int(end.Sub(start)/cfg.SampleEvery) + 2
	if !s.lean {
		s.res.ProvisionedGPUs.Grow(ticks + 64)
		s.res.CommittedGPUs.Grow(2 * numTasks)
		s.res.ActiveSessions.Grow(2 * sessions)
		s.res.ActiveTrainings.Grow(2 * numTasks)
		if cfg.Policy == PolicyNotebookOS || cfg.Policy == PolicyLCP {
			s.res.SR.Grow(2*sessions + ticks)
		}
		s.res.Interactivity.Grow(numTasks)
		s.res.TCT.Grow(numTasks)
		s.res.SyncLatency.Grow(numTasks)
		s.res.ReadLatency.Grow(numTasks)
		s.res.WriteLatency.Grow(numTasks)
		for _, st := range Steps() {
			s.res.StepLatency[st].Grow(numTasks) // one observation per executed task
		}
		s.res.Events = make([]Event, 0, sessions+64)
	}
	for i := 0; i < cfg.Hosts; i++ {
		s.addHost()
	}

	if s.streaming {
		// Sessions are admitted lazily: the injector event at each session's
		// start materializes it, schedules its end and task arrivals, and
		// pulls the next one — pending-event count tracks concurrency, not
		// workload size.
		next, stop := iter.Pull(func(yield func(*trace.Session) bool) {
			s.srcErr = src.Sessions(yield)
		})
		s.stopPull = stop
		s.pull = next
		if first, ok := next(); ok {
			s.eng.ScheduleRunner(first.Start, &injector{s: s, sess: first})
		}
	} else {
		// The whole trace is scheduled up front: one event per session
		// boundary plus one per task arrival.
		s.eng.Reserve(2*sessions + numTasks + 16)
		for _, sess := range cfg.Trace.Sessions {
			sess := sess
			ss := &simSession{
				src:    sess,
				req:    sess.Request,
				assig:  workload.Assign(s.wr),
				holder: s.kind + "/" + sess.ID,
			}
			s.eng.Schedule(sess.Start, func() { s.sessionStart(ss) })
			s.eng.Schedule(sess.End, func() { s.sessionEnd(ss) })
			for _, task := range sess.Tasks {
				task := task
				s.eng.Schedule(task.Submit, func() { s.taskArrive(ss, task) })
			}
		}
	}

	// Periodic sampling and autoscaling. A lease-managed worker skips its
	// own autoscale ticks: the pool runs the same formula once per barrier
	// over the pooled counters instead.
	s.scheduleSampling()
	if (cfg.Policy == PolicyNotebookOS || cfg.Policy == PolicyLCP) && !cfg.leaseManaged {
		s.scheduleAutoscale()
	}
	return s, nil
}

// close releases the streaming source's iterator; safe on any sim and
// safe to call more than once.
func (s *sim) close() {
	if s.stopPull != nil {
		s.stopPull()
		s.stopPull = nil
	}
}

// finish surfaces a streaming-source error and computes the integrated
// metrics. Call once, after the engine has run past the window's end.
func (s *sim) finish() (*Result, error) {
	if s.srcErr != nil {
		return nil, s.srcErr
	}
	s.finalizeIntegrals()
	return s.res, nil
}

func (s *sim) now() time.Time { return s.eng.Now() }

func (s *sim) addHost() *simHost {
	s.hostSeq++
	h := cluster.NewHost(fmt.Sprintf("sim-h%04d", s.hostSeq), s.cfg.HostCapacity)
	if err := s.cluster.AddHost(h); err != nil {
		panic(err)
	}
	sh := &simHost{h: h, warm: s.cfg.PrewarmPerHost}
	s.hostList = append(s.hostList, sh)
	if s.faultsOn {
		s.armHostFaults(sh)
	}
	return sh
}

func (s *sim) recordEvent(kind scheduler.EventKind) {
	if s.lean {
		return
	}
	s.res.Events = append(s.res.Events, Event{T: s.now().UnixNano(), Kind: kind})
}

// ---- session lifecycle -------------------------------------------------

func (s *sim) sessionStart(ss *simSession) {
	s.res.Sessions++
	if s.faultsOn {
		s.faultSessions = append(s.faultSessions, ss)
	}
	s.res.ActiveSessions.Delta(s.now(), 1)
	s.reserved.bump(s.now().UnixNano(), float64(ss.req.GPUs))
	switch s.cfg.Policy {
	case PolicyReservation:
		// Bind GPUs for the whole session; grow the cluster when full
		// (the provider provisions to fit all reservations).
		sh := s.hostWithIdle(ss.req)
		if sh == nil {
			sh = s.addHost()
		}
		if err := sh.h.Commit(ss.holder, ss.req); err != nil {
			// A fresh host always fits a valid request.
			panic(err)
		}
		ss.hosts = []*cluster.Host{sh.h}
	case PolicyNotebookOS:
		hosts, err := s.policy.SelectHosts(s.cluster, ss.req, s.cfg.ReplicasPerKernel)
		if err != nil {
			// Scale out synchronously at creation (placement pauses until
			// the servers are ready; the provisioning delay is charged to
			// session creation, not to any task).
			for i := 0; i < s.cfg.ReplicasPerKernel; i++ {
				s.addHost()
			}
			s.res.ScaleOuts++
			s.recordEvent(scheduler.EventScaleOut)
			hosts, err = s.policy.SelectHosts(s.cluster, ss.req, s.cfg.ReplicasPerKernel)
			if err != nil {
				return // pathological request; drop the session
			}
		}
		for i, h := range hosts {
			_ = h.PlaceReplica(ss.replicaKeyFor(i+1), ss.req)
		}
		ss.hosts = hosts
		if s.cfg.leaseManaged {
			s.leaseSessions = append(s.leaseSessions, ss)
			if ss.req.GPUs > s.leaseMaxReq {
				s.leaseMaxReq = ss.req.GPUs
			}
		}
		s.recordEvent(scheduler.EventKernelCreated)
		s.sampleSR()
	case PolicyBatch, PolicyLCP:
		// No per-session provisioning: containers come per task.
	}
}

func (s *sim) sessionEnd(ss *simSession) {
	if ss.closed {
		return
	}
	ss.closed = true
	if s.faultsOn {
		for i, live := range s.faultSessions {
			if live == ss {
				s.faultSessions = append(s.faultSessions[:i], s.faultSessions[i+1:]...)
				break
			}
		}
	}
	s.res.ActiveSessions.Delta(s.now(), -1)
	s.reserved.bump(s.now().UnixNano(), -float64(ss.req.GPUs))
	switch s.cfg.Policy {
	case PolicyReservation:
		if len(ss.hosts) > 0 && ss.hosts[0] != nil {
			_ = ss.hosts[0].Release(ss.holder)
		}
	case PolicyNotebookOS:
		for i, h := range ss.hosts {
			if h == nil {
				continue // crash-emptied slot (faults.go)
			}
			_ = h.RemoveReplica(ss.replicaKeyFor(i + 1))
		}
		if s.cfg.leaseManaged {
			for i, live := range s.leaseSessions {
				if live == ss {
					s.leaseSessions = append(s.leaseSessions[:i], s.leaseSessions[i+1:]...)
					break
				}
			}
		}
		s.sampleSR()
	}
}

// ---- task pipeline -----------------------------------------------------

func (s *sim) taskArrive(ss *simSession, task trace.Task) {
	if ss.running {
		// IDLT users do not submit concurrent tasks, but platform-induced
		// delays can push a completion past the next trace submission;
		// those tasks queue FCFS within the session.
		ss.queue = append(ss.queue, task)
		return
	}
	ss.running = true
	s.startTask(ss, task, s.now())
}

func (s *sim) finishTask(ss *simSession, submit time.Time, interactivity, exec, post time.Duration) {
	tct := s.now().Sub(submit)
	s.res.Interactivity.Add(interactivity.Seconds())
	s.res.TCT.Add(tct.Seconds())
	s.res.StepLatency[StepE2E].Add(tct.Seconds())
	s.res.Tasks++
	ss.running = false
	ss.cur = nil
	ss.restarts = 0
	if len(ss.queue) > 0 {
		next := ss.queue[0]
		ss.queue = ss.queue[1:]
		ss.running = true
		s.startTask(ss, next, s.now())
	}
}

func (s *sim) startTask(ss *simSession, task trace.Task, submit time.Time) {
	switch s.cfg.Policy {
	case PolicyReservation:
		s.runReservationTask(ss, task, submit)
	case PolicyBatch:
		s.runBatchTask(ss, task, submit)
	case PolicyNotebookOS:
		s.runNbosTask(ss, task, submit)
	case PolicyLCP:
		s.runLCPTask(ss, task, submit)
	}
}

func (s *sim) taskReq(ss *simSession, task trace.Task) resources.Spec {
	return clampTaskReq(ss.req, task.GPUs)
}

// clampTaskReq shapes a task's exclusive-commit request from its session's
// reservation: the task's GPU count (never above the reservation) with
// VRAM sized at 16 GB per GPU. Shared by the single-cluster and federated
// simulators so their request shaping cannot drift.
func clampTaskReq(sessReq resources.Spec, taskGPUs int) resources.Spec {
	r := sessReq
	r.GPUs = taskGPUs
	if r.GPUs > sessReq.GPUs {
		r.GPUs = sessReq.GPUs
	}
	r.VRAMGB = float64(r.GPUs) * 16
	return r
}

func (s *sim) sampleStep(st Step, d time.Duration) time.Duration {
	s.res.StepLatency[st].Add(d.Seconds())
	return d
}

// runReservationTask: GPUs are already bound; the task starts after
// framework overhead only. The pipeline runs as a resvTask state machine
// (one allocation per task): both lead events carry the same Runner, in the
// same order the closure version scheduled them.
func (s *sim) runReservationTask(ss *simSession, task trace.Task, submit time.Time) {
	lat := s.cfg.Latencies
	step1 := s.sampleStep(StepGSProcess, lat.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng))
	s.sampleStep(StepElection, 0)
	step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	hops := lat.Hop(s.rng) + lat.Hop(s.rng)
	delay := step1 + step5 + step7 + hops

	rt := &resvTask{s: s, ss: ss, task: task, submit: submit, delay: delay}
	ss.cur = rt
	s.eng.ScheduleRunner(submit.Add(delay), rt)
	s.eng.ScheduleRunner(submit.Add(delay+task.Duration), rt)
}

// runBatchTask: FCFS on-demand provisioning: wait for free GPUs, cold
// start a container, download model+dataset, execute, persist, terminate.
// When the cluster is saturated the task parks on the capacity wait-queue
// and is retried on the next Release/AddHost notification. The pipeline
// after commit runs as a batchTask state machine (one allocation per task);
// the retry closure is only built on the park path, which saturation makes
// rare relative to task count.
func (s *sim) runBatchTask(ss *simSession, task trace.Task, submit time.Time) {
	if s.tryBatchTask(ss, task, submit) {
		return
	}
	s.waitq.Wait(func() bool { return s.tryBatchTask(ss, task, submit) })
}

// tryBatchTask attempts the commit-and-start step and reports whether the
// task is now in flight.
func (s *sim) tryBatchTask(ss *simSession, task trace.Task, submit time.Time) bool {
	// A batch job requests the session's full configured resources, the
	// way a slurm submission would, not just the GPUs this task touches.
	req := ss.req
	sh := s.hostWithIdle(req)
	if sh == nil {
		return false
	}
	h := sh.h
	if err := h.Commit(ss.holder, req); err != nil {
		return false
	}
	queueing := s.now().Sub(submit)
	cold := s.cfg.Latencies.ColdStart(s.rng)
	s.res.ColdStarts++
	fetch := s.cfg.Latencies.Store.GetLatency(ss.assig.Model.ParamBytes+ss.assig.Dataset.SizeBytes/16, s.rng)
	s.res.ReadLatency.Add(fetch.Seconds())
	step1 := s.sampleStep(StepGSProcess, queueing+cold+s.cfg.Latencies.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, s.cfg.Latencies.PreProcess(s.rng)+fetch)
	s.sampleStep(StepElection, 0)
	step7 := s.sampleStep(StepIntermed, s.cfg.Latencies.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	delay := step1 + step5 + step7

	bt := &batchTask{s: s, ss: ss, task: task, submit: submit, h: h, delay: delay}
	ss.cur = bt
	s.eng.DeferRunner(delay, bt)
	return true
}

// runNbosTask: the full NotebookOS path: immediate commit on a replica
// host when possible, otherwise migration (warm container when available)
// and resubmission. A task that can neither commit nor migrate parks on
// the capacity wait-queue until a Release/AddHost notification.
func (s *sim) runNbosTask(ss *simSession, task trace.Task, submit time.Time) {
	if s.tryNbosTask(ss, task, submit) {
		return
	}
	s.waitq.Wait(func() bool { return s.tryNbosTask(ss, task, submit) })
}

// tryNbosTask attempts one commit-or-migrate step and reports whether it
// made progress (committed the task or scheduled a migration).
func (s *sim) tryNbosTask(ss *simSession, task trace.Task, submit time.Time) bool {
	lat := s.cfg.Latencies
	req := s.taskReq(ss, task)
	migrationDelay := s.now().Sub(submit)

	// Prefer the previous executor's host (the paper reuses the same
	// executor for 89.45% of consecutive executions).
	executor := 0
	if ss.lastExecutor > 0 && ss.lastExecutor <= len(ss.hosts) &&
		ss.hosts[ss.lastExecutor-1] != nil &&
		ss.hosts[ss.lastExecutor-1].CanCommit(req) {
		executor = ss.lastExecutor
	}
	if executor == 0 {
		for i, h := range ss.hosts {
			if h != nil && h.CanCommit(req) {
				executor = i + 1
				break
			}
		}
	}
	if executor == 0 {
		return s.tryMigrate(ss, task, submit)
	}
	h := ss.hosts[executor-1]
	holder := ss.holder
	if err := h.Commit(holder, req); err != nil {
		return s.tryMigrate(ss, task, submit)
	}
	if migrationDelay == 0 {
		s.res.ImmediateCommits++
		if executor == ss.lastExecutor {
			s.res.ExecutorReuse++
		}
	}
	ss.lastExecutor = executor

	step1 := s.sampleStep(StepGSProcess, lat.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng))
	step6 := s.sampleStep(StepElection, lat.Election(s.rng))
	step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	hops := lat.Hop(s.rng) + lat.Hop(s.rng)
	delay := migrationDelay + step1 + step5 + step6 + step7 + hops

	nt := &nbosTask{s: s, ss: ss, task: task, submit: submit, h: h, delay: delay}
	ss.cur = nt
	s.eng.ScheduleRunner(submit.Add(delay), nt)
	return true
}

// tryMigrate handles the all-YIELD path (§3.2.3): find a target with idle
// resources, pay warm/cold container plus checkpoint-restore costs, swap
// the replica, and resubmit. When no target exists it triggers a scale-out
// (at most one in flight) and reports false so the caller parks on the
// wait-queue until new capacity arrives.
func (s *sim) tryMigrate(ss *simSession, task trace.Task, submit time.Time) bool {
	lat := s.cfg.Latencies
	req := s.taskReq(ss, task)

	// The failed election itself costs one election round.
	electionCost := lat.Election(s.rng)

	var target *simHost
	bestIdle := -1
	for _, sh := range s.hostList {
		h := sh.h
		if hostsContain(ss.hosts, h) || !h.CanCommit(req) {
			continue
		}
		if idle := h.IdleGPUs(); idle > bestIdle {
			bestIdle = idle
			target = sh
		}
	}
	if target == nil {
		// Scale out; the AddHost notification wakes the wait-queue.
		if s.pendingHosts == 0 {
			s.pendingHosts++
			s.res.ScaleOuts++
			s.recordEvent(scheduler.EventScaleOut)
			provision := lat.HostProvision(s.rng)
			s.eng.Defer(provision, func() {
				s.addHost()
				s.pendingHosts--
			})
		}
		return false
	}

	var extra time.Duration
	// Container: pre-warmed if the target has pool capacity, else cold.
	if target.warm > 0 {
		target.warm--
		s.res.WarmStarts++
		extra += lat.WarmAttach(s.rng)
		// Pool replenishes in the background.
		tsh := target
		s.eng.Defer(lat.ColdStart(s.rng), func() { tsh.warm++ })
	} else {
		s.res.ColdStarts++
		extra += lat.ColdStart(s.rng)
	}
	// Persist + restore checkpointed state through the data store.
	wr := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
	rd := lat.Store.GetLatency(ss.assig.Model.ParamBytes, s.rng)
	s.res.WriteLatency.Add(wr.Seconds())
	s.res.ReadLatency.Add(rd.Seconds())
	extra += wr + rd + electionCost

	// Move the replica: a crash-emptied slot (faults.go) is refilled
	// first; otherwise the victim is the replica on the fullest host.
	victim := 0
	worst := math.MaxInt
	for i, h := range ss.hosts {
		if h == nil {
			victim = i
			break
		}
		if idle := h.IdleGPUs(); idle < worst {
			worst = idle
			victim = i
		}
	}
	oldHost := ss.hosts[victim]
	key := ss.replicaKeyFor(victim + 1)
	if oldHost != nil {
		_ = oldHost.RemoveReplica(key)
	}
	_ = target.h.PlaceReplica(key, ss.req)
	ss.hosts[victim] = target.h
	ss.lastExecutor = victim + 1
	s.res.Migrations++
	s.recordEvent(scheduler.EventMigration)
	s.sampleSR()

	s.eng.Defer(extra, func() {
		s.runNbosTask(ss, task, submit)
	})
	return true
}

// hostsContain reports whether h is one of the session's replica hosts
// (len <= R, so a linear scan beats building a set).
func hostsContain(hosts []*cluster.Host, h *cluster.Host) bool {
	for _, x := range hosts {
		if x == h {
			return true
		}
	}
	return false
}

// runLCPTask: take a warm container from the pool (or cold start), warm
// it up by downloading model + dataset (on the critical path, which is
// what stretches LCP's TCT in Fig. 9b), execute, return the container.
// Saturation parks the task on the capacity wait-queue. The pipeline after
// commit runs as an lcpTask state machine (one allocation per task); the
// retry closure is only built on the park path.
func (s *sim) runLCPTask(ss *simSession, task trace.Task, submit time.Time) {
	if s.tryLCPTask(ss, task, submit) {
		return
	}
	s.waitq.Wait(func() bool { return s.tryLCPTask(ss, task, submit) })
}

// tryLCPTask attempts the commit-and-warm-up step and reports whether the
// task is now in flight.
func (s *sim) tryLCPTask(ss *simSession, task trace.Task, submit time.Time) bool {
	req := s.taskReq(ss, task)
	var target *simHost
	warm := false
	// Prefer hosts with both idle GPUs and a warm container.
	for _, sh := range s.hostList {
		if !sh.h.CanCommit(req) {
			continue
		}
		if sh.warm > 0 {
			target = sh
			warm = true
			break
		}
		if target == nil {
			target = sh
		}
	}
	if target == nil {
		return false
	}
	if err := target.h.Commit(ss.holder, req); err != nil {
		return false
	}
	var start time.Duration
	if warm {
		target.warm--
		s.res.WarmStarts++
		start = s.cfg.Latencies.WarmAttach(s.rng)
	} else {
		s.res.ColdStarts++
		start = s.cfg.Latencies.ColdStart(s.rng)
	}
	queueing := s.now().Sub(submit)
	// Warm-up: fetch model parameters and dataset into the container.
	fetch := s.cfg.Latencies.Store.GetLatency(ss.assig.Model.ParamBytes+ss.assig.Dataset.SizeBytes/16, s.rng)
	s.res.ReadLatency.Add(fetch.Seconds())
	step1 := s.sampleStep(StepGSProcess, queueing+start+s.cfg.Latencies.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, s.cfg.Latencies.PreProcess(s.rng)+fetch)
	s.sampleStep(StepElection, 0)
	step7 := s.sampleStep(StepIntermed, s.cfg.Latencies.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	delay := step1 + step5 + step7

	lt := &lcpTask{s: s, ss: ss, task: task, submit: submit, target: target, delay: delay}
	ss.cur = lt
	s.eng.DeferRunner(delay, lt)
	return true
}

func (s *sim) markTraining(ss *simSession, task trace.Task, at time.Time, start bool) {
	g := float64(task.GPUs)
	if start {
		s.res.ActiveTrainings.Delta(at, 1)
		s.res.CommittedGPUs.Delta(at, g)
	} else {
		s.res.ActiveTrainings.Delta(at, -1)
		s.res.CommittedGPUs.Delta(at, -g)
	}
}

// hostWithIdle returns a host that can commit req right now (most idle
// first), or nil.
func (s *sim) hostWithIdle(req resources.Spec) *simHost {
	var best *simHost
	bestIdle := -1
	for _, sh := range s.hostList {
		if !sh.h.CanCommit(req) {
			continue
		}
		if idle := sh.h.IdleGPUs(); idle > bestIdle {
			bestIdle = idle
			best = sh
		}
	}
	return best
}

func (s *sim) sampleSR() {
	s.res.SR.Set(s.now(), s.cluster.ClusterSR())
}

// ---- periodic sampling & autoscaling ------------------------------------

func (s *sim) scheduleSampling() {
	var tick func()
	tick = func() {
		s.sampleProvisioned()
		if s.now().Before(s.end) {
			s.eng.DeferLate(s.cfg.SampleEvery, tick)
		}
	}
	s.eng.DeferLate(0, tick)
}

// sampleProvisioned records the provisioned-GPU series whose meaning is
// policy-dependent (Fig. 8): Reservation provisions what sessions reserve;
// Batch provisions what runs; NotebookOS/(LCP) provision whole servers.
func (s *sim) sampleProvisioned() {
	switch s.cfg.Policy {
	case PolicyReservation:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.CommittedGPUs()))
	case PolicyBatch:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.CommittedGPUs()))
	default:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.TotalGPUs()))
		s.sampleSR()
	}
}

func (s *sim) scheduleAutoscale() {
	var tick func()
	tick = func() {
		s.autoscaleOnce()
		if s.now().Before(s.end) {
			s.eng.DeferLate(s.cfg.AutoscaleInterval, tick)
		}
	}
	s.eng.DeferLate(s.cfg.AutoscaleInterval, tick)
}

func (s *sim) autoscaleOnce() {
	committed := s.cluster.CommittedGPUs()
	gpusPerHost := s.cfg.HostCapacity.GPUs
	expected := s.cfg.ScaleFactor*float64(committed) + float64(s.cfg.ScalingBufferHosts*gpusPerHost)
	if s.cfg.Policy == PolicyLCP {
		// The LCP baseline keeps a large warm-container pool sized to the
		// session population, trading resource cost for interactivity
		// (§5.1.1); reserve roughly one GPU of capacity per live session.
		expected += 0.75 * s.res.ActiveSessions.Last()
	}
	total := s.cluster.TotalGPUs() + s.pendingHosts*gpusPerHost

	if float64(total) < expected {
		need := int(math.Ceil((expected - float64(total)) / float64(gpusPerHost)))
		s.provisionAt(need, s.cfg.Latencies.HostProvision(s.rng))
		return
	}
	// Scale in: release up to 2 idle servers (no replicas, nothing
	// committed) while above the floor.
	if float64(total)-float64(gpusPerHost) > expected && s.cluster.NumHosts() > s.cfg.MinHosts {
		released := 0
		for i := 0; i < len(s.hostList); {
			if released >= 2 || s.cluster.NumHosts() <= s.cfg.MinHosts {
				break
			}
			sh := s.hostList[i]
			removed := false
			if sh.h.NumReplicas() == 0 && sh.h.Committed().IsZero() {
				if err := s.cluster.RemoveHost(sh.h.ID); err == nil {
					s.hostList = append(s.hostList[:i], s.hostList[i+1:]...)
					s.noteHosts(-1)
					released++
					removed = true
				}
			}
			if float64(s.cluster.TotalGPUs())-float64(gpusPerHost) <= expected {
				break
			}
			if !removed {
				i++
			}
		}
		if released > 0 {
			s.res.ScaleIns++
			s.recordEvent(scheduler.EventScaleIn)
			s.sampleProvisioned()
		}
	}
}

// provisionAt starts a scale-out of need hosts: they count as pending
// immediately and land after the given provisioning latency. The latency
// is a parameter, not a draw, so the lease pool can charge its own rng's
// draw (one per pooled decision, like the unsharded autoscaler's one per
// tick) while the worker's local paths pass a worker-rng draw.
func (s *sim) provisionAt(need int, provision time.Duration) {
	s.pendingHosts += need
	s.res.ScaleOuts++
	s.recordEvent(scheduler.EventScaleOut)
	s.eng.Defer(provision, func() {
		for i := 0; i < need; i++ {
			s.addHost()
		}
		s.pendingHosts -= need
		s.sampleProvisioned()
	})
}

// finalizeIntegrals computes the integrated hour metrics for the cost
// model (Fig. 12).
func (s *sim) finalizeIntegrals() {
	start, end := s.start, s.end
	s.res.ActiveGPUHours = s.res.CommittedGPUs.Integral(start, end)
	s.res.ServerHours = s.res.ProvisionedGPUs.Integral(start, end) / float64(s.cfg.HostCapacity.GPUs)
	if s.streaming {
		// No trace to scan: the online accumulator integrated reserved GPUs
		// as sessions came and went (bit-for-bit it is a different summation
		// order than the trace-scan timeline, so the two agree to rounding).
		s.res.ReservedGPUHours = s.reserved.finish(end.UnixNano())
	} else {
		s.res.ReservedGPUHours = s.cfg.Trace.ReservedGPUs().Integral(start, end)
	}
	if s.cfg.Policy == PolicyNotebookOS {
		// Each session keeps R standby replicas alive; the executor is
		// billed as active while training. Replica-hours approximate
		// R x session-hours.
		sessHours := s.res.ActiveSessions.Integral(start, end)
		s.res.StandbyReplicaHours = sessHours * float64(s.cfg.ReplicasPerKernel)
	}
}
