package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/des"
	"notebookos/internal/metrics"
	"notebookos/internal/resources"
	"notebookos/internal/scheduler"
	"notebookos/internal/trace"
	"notebookos/internal/workload"
)

// Policy selects the scheduling baseline being simulated (§5.1.1).
type Policy string

// The four evaluated policies.
const (
	// PolicyReservation reserves GPUs for each session's entire lifetime
	// (current notebook platforms).
	PolicyReservation Policy = "reservation"
	// PolicyBatch provisions a fresh container per submission, FCFS.
	PolicyBatch Policy = "batch"
	// PolicyNotebookOS is the full system: 3 replicas, oversubscription,
	// dynamic GPU binding, migration, autoscaling.
	PolicyNotebookOS Policy = "notebookos"
	// PolicyLCP is NotebookOS (LCP): a large warm-container pool with
	// per-task state warm-up instead of replicated kernels.
	PolicyLCP Policy = "notebookos-lcp"
)

// Step identifies a request-path stage from Fig. 15 for the latency
// breakdowns of Figs. 16-19.
type Step string

// Request-path steps (numbers follow Fig. 15).
const (
	StepGSProcess  Step = "GS P Rq (1)"
	StepPreProcess Step = "K PP Rq (5)"
	StepElection   Step = "K PRP (6)"
	StepIntermed   Step = "K PRP Exec (7)"
	StepExec       Step = "K Exec (8)"
	StepPostProc   Step = "K P Rsp (9)"
	StepReturn     Step = "LS<-K (10)"
	StepE2E        Step = "E2E"
)

// Steps lists the recorded steps in display order.
func Steps() []Step {
	return []Step{StepE2E, StepGSProcess, StepPreProcess, StepElection, StepIntermed, StepExec, StepPostProc, StepReturn}
}

// Config parameterizes one simulation run.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// Policy is the baseline to simulate.
	Policy Policy
	// Hosts is the initial server count (paper: 30 8-GPU VMs).
	Hosts int
	// HostCapacity defaults to p3.16xlarge.
	HostCapacity resources.Spec
	// ReplicasPerKernel is R (default 3).
	ReplicasPerKernel int
	// PrewarmPerHost sizes the warm pool (NotebookOS: small, for
	// migrations; LCP: large).
	PrewarmPerHost int
	// ScaleFactor is the autoscaler's f (default 1.05).
	ScaleFactor float64
	// ScalingBufferHosts keeps spare servers for bursts.
	ScalingBufferHosts int
	// AutoscaleInterval is the autoscaler period (default 60s).
	AutoscaleInterval time.Duration
	// MinHosts floors scale-in (default 4).
	MinHosts int
	// SRHighWatermark caps per-host subscription (default 3.0).
	SRHighWatermark float64
	// Latencies are the protocol latency models.
	Latencies Latencies
	// Seed drives all randomness.
	Seed int64
	// SampleEvery is the metrics sampling period (default 5 min).
	SampleEvery time.Duration
}

func (c *Config) withDefaults() error {
	if c.Trace == nil {
		return fmt.Errorf("sim: config requires Trace")
	}
	if c.Policy == "" {
		c.Policy = PolicyNotebookOS
	}
	if c.Hosts <= 0 {
		c.Hosts = 30
	}
	if c.HostCapacity.IsZero() {
		c.HostCapacity = resources.P316xlarge()
	}
	if c.ReplicasPerKernel <= 0 {
		c.ReplicasPerKernel = 3
	}
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1.05
	}
	if c.AutoscaleInterval <= 0 {
		c.AutoscaleInterval = time.Minute
	}
	if c.MinHosts <= 0 {
		c.MinHosts = 4
	}
	if c.SRHighWatermark <= 0 {
		c.SRHighWatermark = scheduler.DefaultSRHighWatermark
	}
	if c.Latencies.GSProcess == nil {
		c.Latencies = DefaultLatencies()
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Minute
	}
	if c.PrewarmPerHost == 0 {
		switch c.Policy {
		case PolicyLCP:
			c.PrewarmPerHost = 6
		case PolicyNotebookOS:
			c.PrewarmPerHost = 1
		}
	}
	return nil
}

// Event mirrors scheduler events for the Fig. 10 timeline.
type Event struct {
	Time time.Time
	Kind scheduler.EventKind
}

// Result carries everything the experiment harness needs to regenerate
// the paper's tables and figures.
type Result struct {
	Policy Policy

	// Timelines (Figs. 7, 8, 10, 14, 20).
	ProvisionedGPUs *metrics.Timeline
	CommittedGPUs   *metrics.Timeline
	ActiveSessions  *metrics.Timeline
	ActiveTrainings *metrics.Timeline
	SR              *metrics.Timeline

	// Distributions (Figs. 9, 11, 16-19).
	Interactivity *metrics.Sample          // seconds
	TCT           *metrics.Sample          // seconds
	StepLatency   map[Step]*metrics.Sample // seconds
	SyncLatency   *metrics.Sample          // seconds
	ReadLatency   *metrics.Sample          // seconds
	WriteLatency  *metrics.Sample          // seconds

	// Events and counters (Fig. 10, §5.3.2).
	Events           []Event
	Tasks            int
	ImmediateCommits int
	ExecutorReuse    int
	Migrations       int
	FailedMigrations int
	ScaleOuts        int
	ScaleIns         int
	ColdStarts       int
	WarmStarts       int

	// Revenue inputs (Fig. 12): integrated GPU/replica hours.
	ActiveGPUHours      float64
	StandbyReplicaHours float64
	ReservedGPUHours    float64
	ServerHours         float64
}

// simSession is the per-session simulation state.
type simSession struct {
	src   *trace.Session
	req   resources.Spec
	assig workload.Assignment

	// NotebookOS: replica hosts; Reservation: the single reserved host.
	hosts        []*cluster.Host
	lastExecutor int
	busyUntil    time.Time
	queue        []trace.Task
	running      bool
	closed       bool
}

// sim is the mutable simulation state.
type sim struct {
	cfg     Config
	eng     *des.Engine
	rng     *rand.Rand
	cluster *cluster.Cluster
	policy  scheduler.PlacementPolicy
	res     *Result

	sessions map[string]*simSession
	hostSeq  int
	// pendingHosts counts servers being provisioned (scale-out latency).
	pendingHosts int
	// warm pools per host (count only; container identity is irrelevant
	// at simulation granularity).
	warmPool map[string]int
}

// Run executes the simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	s := &sim{
		cfg:      cfg,
		eng:      des.New(cfg.Trace.Start),
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		cluster:  cluster.New(cfg.ReplicasPerKernel),
		policy:   scheduler.LeastLoaded{SRHighWatermark: cfg.SRHighWatermark},
		sessions: map[string]*simSession{},
		warmPool: map[string]int{},
		res: &Result{
			Policy:          cfg.Policy,
			ProvisionedGPUs: metrics.NewTimeline(),
			CommittedGPUs:   metrics.NewTimeline(),
			ActiveSessions:  metrics.NewTimeline(),
			ActiveTrainings: metrics.NewTimeline(),
			SR:              metrics.NewTimeline(),
			Interactivity:   metrics.NewSample(),
			TCT:             metrics.NewSample(),
			StepLatency:     map[Step]*metrics.Sample{},
			SyncLatency:     metrics.NewSample(),
			ReadLatency:     metrics.NewSample(),
			WriteLatency:    metrics.NewSample(),
		},
	}
	for _, st := range Steps() {
		s.res.StepLatency[st] = metrics.NewSample()
	}
	for i := 0; i < cfg.Hosts; i++ {
		s.addHost()
	}

	wr := rand.New(rand.NewSource(cfg.Seed + 2))
	for _, sess := range cfg.Trace.Sessions {
		sess := sess
		ss := &simSession{src: sess, req: sess.Request, assig: workload.Assign(wr)}
		s.sessions[sess.ID] = ss
		s.eng.At(sess.Start, func() { s.sessionStart(ss) })
		s.eng.At(sess.End, func() { s.sessionEnd(ss) })
		for _, task := range sess.Tasks {
			task := task
			s.eng.At(task.Submit, func() { s.taskArrive(ss, task) })
		}
	}

	// Periodic sampling and autoscaling.
	s.scheduleSampling()
	if cfg.Policy == PolicyNotebookOS || cfg.Policy == PolicyLCP {
		s.scheduleAutoscale()
	}
	s.eng.RunUntil(cfg.Trace.End.Add(24 * time.Hour))
	s.finalizeIntegrals()
	return s.res, nil
}

func (s *sim) now() time.Time { return s.eng.Now() }

func (s *sim) addHost() *cluster.Host {
	s.hostSeq++
	h := cluster.NewHost(fmt.Sprintf("sim-h%04d", s.hostSeq), s.cfg.HostCapacity)
	if err := s.cluster.AddHost(h); err != nil {
		panic(err)
	}
	s.warmPool[h.ID] = s.cfg.PrewarmPerHost
	return h
}

func (s *sim) recordEvent(kind scheduler.EventKind) {
	s.res.Events = append(s.res.Events, Event{Time: s.now(), Kind: kind})
}

// ---- session lifecycle -------------------------------------------------

func (s *sim) sessionStart(ss *simSession) {
	s.res.ActiveSessions.Delta(s.now(), 1)
	switch s.cfg.Policy {
	case PolicyReservation:
		// Bind GPUs for the whole session; grow the cluster when full
		// (the provider provisions to fit all reservations).
		h := s.hostWithIdle(ss.req)
		if h == nil {
			h = s.addHost()
		}
		if err := h.Commit("sess/"+ss.src.ID, ss.req); err != nil {
			// A fresh host always fits a valid request.
			panic(err)
		}
		ss.hosts = []*cluster.Host{h}
	case PolicyNotebookOS:
		hosts, err := s.policy.SelectHosts(s.cluster, ss.req, s.cfg.ReplicasPerKernel)
		if err != nil {
			// Scale out synchronously at creation (placement pauses until
			// the servers are ready; the provisioning delay is charged to
			// session creation, not to any task).
			for i := 0; i < s.cfg.ReplicasPerKernel; i++ {
				s.addHost()
			}
			s.res.ScaleOuts++
			s.recordEvent(scheduler.EventScaleOut)
			hosts, err = s.policy.SelectHosts(s.cluster, ss.req, s.cfg.ReplicasPerKernel)
			if err != nil {
				return // pathological request; drop the session
			}
		}
		for i, h := range hosts {
			_ = h.PlaceReplica(fmt.Sprintf("%s/r%d", ss.src.ID, i+1), ss.req)
		}
		ss.hosts = hosts
		s.recordEvent(scheduler.EventKernelCreated)
		s.sampleSR()
	case PolicyBatch, PolicyLCP:
		// No per-session provisioning: containers come per task.
	}
}

func (s *sim) sessionEnd(ss *simSession) {
	if ss.closed {
		return
	}
	ss.closed = true
	s.res.ActiveSessions.Delta(s.now(), -1)
	switch s.cfg.Policy {
	case PolicyReservation:
		if len(ss.hosts) > 0 {
			_ = ss.hosts[0].Release("sess/" + ss.src.ID)
		}
	case PolicyNotebookOS:
		for i, h := range ss.hosts {
			_ = h.RemoveReplica(fmt.Sprintf("%s/r%d", ss.src.ID, i+1))
		}
		s.sampleSR()
	}
}

// ---- task pipeline -----------------------------------------------------

func (s *sim) taskArrive(ss *simSession, task trace.Task) {
	if ss.running {
		// IDLT users do not submit concurrent tasks, but platform-induced
		// delays can push a completion past the next trace submission;
		// those tasks queue FCFS within the session.
		ss.queue = append(ss.queue, task)
		return
	}
	ss.running = true
	s.startTask(ss, task, s.now())
}

func (s *sim) finishTask(ss *simSession, submit time.Time, interactivity, exec, post time.Duration) {
	tct := s.now().Sub(submit)
	s.res.Interactivity.Add(interactivity.Seconds())
	s.res.TCT.Add(tct.Seconds())
	s.res.StepLatency[StepE2E].Add(tct.Seconds())
	s.res.Tasks++
	ss.running = false
	if len(ss.queue) > 0 {
		next := ss.queue[0]
		ss.queue = ss.queue[1:]
		ss.running = true
		s.startTask(ss, next, s.now())
	}
}

func (s *sim) startTask(ss *simSession, task trace.Task, submit time.Time) {
	switch s.cfg.Policy {
	case PolicyReservation:
		s.runReservationTask(ss, task, submit)
	case PolicyBatch:
		s.runBatchTask(ss, task, submit)
	case PolicyNotebookOS:
		s.runNbosTask(ss, task, submit, 0)
	case PolicyLCP:
		s.runLCPTask(ss, task, submit)
	}
}

func (s *sim) taskReq(ss *simSession, task trace.Task) resources.Spec {
	r := ss.req
	r.GPUs = task.GPUs
	if r.GPUs > ss.req.GPUs {
		r.GPUs = ss.req.GPUs
	}
	r.VRAMGB = float64(r.GPUs) * 16
	return r
}

func (s *sim) sampleStep(st Step, d time.Duration) time.Duration {
	s.res.StepLatency[st].Add(d.Seconds())
	return d
}

// runReservationTask: GPUs are already bound; the task starts after
// framework overhead only.
func (s *sim) runReservationTask(ss *simSession, task trace.Task, submit time.Time) {
	lat := s.cfg.Latencies
	step1 := s.sampleStep(StepGSProcess, lat.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng))
	s.sampleStep(StepElection, 0)
	step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	hops := lat.Hop(s.rng) + lat.Hop(s.rng)
	delay := step1 + step5 + step7 + hops

	s.eng.At(submit.Add(delay), func() {
		s.markTraining(ss, task, s.now(), true)
	})
	s.eng.At(submit.Add(delay+task.Duration), func() {
		// Reservation persists updated state synchronously (Fig. 16 step 9).
		post := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		s.sampleStep(StepExec, task.Duration)
		ret := s.sampleStep(StepReturn, lat.Hop(s.rng))
		s.eng.After(post+ret, func() {
			s.markTraining(ss, task, s.now(), false)
			s.finishTask(ss, submit, delay, task.Duration, post)
		})
	})
}

// runBatchTask: FCFS on-demand provisioning: wait for free GPUs, cold
// start a container, download model+dataset, execute, persist, terminate.
func (s *sim) runBatchTask(ss *simSession, task trace.Task, submit time.Time) {
	lat := s.cfg.Latencies
	// A batch job requests the session's full configured resources, the
	// way a slurm submission would, not just the GPUs this task touches.
	req := ss.req
	holder := fmt.Sprintf("batch/%s/%d", ss.src.ID, submit.UnixNano())

	var attempt func()
	attempt = func() {
		h := s.hostWithIdle(req)
		if h == nil {
			// Queue: retry when capacity frees up (FCFS approximation).
			s.eng.After(15*time.Second, attempt)
			return
		}
		if err := h.Commit(holder, req); err != nil {
			s.eng.After(15*time.Second, attempt)
			return
		}
		queueing := s.now().Sub(submit)
		cold := lat.ColdStart(s.rng)
		s.res.ColdStarts++
		fetch := lat.Store.GetLatency(ss.assig.Model.ParamBytes+ss.assig.Dataset.SizeBytes/16, s.rng)
		s.res.ReadLatency.Add(fetch.Seconds())
		step1 := s.sampleStep(StepGSProcess, queueing+cold+lat.GSProcess(s.rng))
		step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng)+fetch)
		s.sampleStep(StepElection, 0)
		step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
		delay := step1 + step5 + step7

		s.eng.After(delay, func() {
			s.markTraining(ss, task, s.now(), true)
			s.eng.After(task.Duration, func() {
				s.sampleStep(StepExec, task.Duration)
				post := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
				s.res.WriteLatency.Add(post.Seconds())
				s.sampleStep(StepPostProc, post)
				ret := s.sampleStep(StepReturn, lat.Hop(s.rng))
				s.eng.After(post+ret, func() {
					s.markTraining(ss, task, s.now(), false)
					_ = h.Release(holder)
					s.finishTask(ss, submit, submit.Add(delay).Sub(submit), task.Duration, post)
				})
			})
		})
	}
	attempt()
}

// runNbosTask: the full NotebookOS path: immediate commit on a replica
// host when possible, otherwise migration (warm container when available)
// and resubmission.
func (s *sim) runNbosTask(ss *simSession, task trace.Task, submit time.Time, migrationDelay time.Duration) {
	lat := s.cfg.Latencies
	req := s.taskReq(ss, task)
	holder := fmt.Sprintf("nbos/%s/%d", ss.src.ID, submit.UnixNano())

	// Prefer the previous executor's host (the paper reuses the same
	// executor for 89.45% of consecutive executions).
	executor := 0
	if ss.lastExecutor > 0 && ss.lastExecutor <= len(ss.hosts) &&
		ss.hosts[ss.lastExecutor-1].CanCommit(req) {
		executor = ss.lastExecutor
	}
	if executor == 0 {
		for i, h := range ss.hosts {
			if h.CanCommit(req) {
				executor = i + 1
				break
			}
		}
	}
	if executor == 0 {
		s.migrateAndRetry(ss, task, submit, holder)
		return
	}
	h := ss.hosts[executor-1]
	if err := h.Commit(holder, req); err != nil {
		s.migrateAndRetry(ss, task, submit, holder)
		return
	}
	if migrationDelay == 0 {
		s.res.ImmediateCommits++
		if executor == ss.lastExecutor {
			s.res.ExecutorReuse++
		}
	}
	ss.lastExecutor = executor

	step1 := s.sampleStep(StepGSProcess, lat.GSProcess(s.rng))
	step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng))
	step6 := s.sampleStep(StepElection, lat.Election(s.rng))
	step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
	hops := lat.Hop(s.rng) + lat.Hop(s.rng)
	delay := migrationDelay + step1 + step5 + step6 + step7 + hops

	s.eng.At(submit.Add(delay), func() {
		s.markTraining(ss, task, s.now(), true)
		s.eng.After(task.Duration, func() {
			s.sampleStep(StepExec, task.Duration)
			// State replication is off the critical path (§3.2.4): the
			// reply returns after the GPU offload only.
			off := lat.Transfer.OffloadTime(ss.assig.Model.ParamBytes)
			s.sampleStep(StepPostProc, off)
			ret := s.sampleStep(StepReturn, lat.Hop(s.rng))
			// Record the async replication costs for Fig. 11.
			s.res.SyncLatency.Add(lat.Sync(s.rng).Seconds())
			s.res.WriteLatency.Add(lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng).Seconds())
			s.eng.After(off+ret, func() {
				s.markTraining(ss, task, s.now(), false)
				_ = h.Release(holder)
				s.finishTask(ss, submit, delay, task.Duration, off)
			})
		})
	})
}

// migrateAndRetry handles the all-YIELD path (§3.2.3): find a target with
// idle resources (scaling out if necessary), pay warm/cold container plus
// checkpoint-restore costs, swap the replica, and resubmit.
func (s *sim) migrateAndRetry(ss *simSession, task trace.Task, submit time.Time, holder string) {
	lat := s.cfg.Latencies
	req := s.taskReq(ss, task)

	// The failed election itself costs one election round.
	electionCost := lat.Election(s.rng)

	hosting := map[string]bool{}
	for _, h := range ss.hosts {
		hosting[h.ID] = true
	}
	var target *cluster.Host
	bestIdle := -1
	for _, h := range s.cluster.Hosts() {
		if hosting[h.ID] || !h.CanCommit(req) {
			continue
		}
		if idle := h.IdleGPUs(); idle > bestIdle {
			bestIdle = idle
			target = h
		}
	}
	var extra time.Duration
	if target == nil {
		// Scale out and retry once the server is up.
		if s.pendingHosts == 0 {
			s.pendingHosts++
			s.res.ScaleOuts++
			s.recordEvent(scheduler.EventScaleOut)
			provision := lat.HostProvision(s.rng)
			s.eng.After(provision, func() {
				s.addHost()
				s.pendingHosts--
			})
		}
		retry := 30 * time.Second
		s.eng.After(retry, func() {
			s.runNbosTask(ss, task, submit, s.now().Sub(submit))
		})
		return
	}

	// Container: pre-warmed if the target has pool capacity, else cold.
	if s.warmPool[target.ID] > 0 {
		s.warmPool[target.ID]--
		s.res.WarmStarts++
		extra += lat.WarmAttach(s.rng)
		// Pool replenishes in the background.
		tid := target.ID
		s.eng.After(lat.ColdStart(s.rng), func() { s.warmPool[tid]++ })
	} else {
		s.res.ColdStarts++
		extra += lat.ColdStart(s.rng)
	}
	// Persist + restore checkpointed state through the data store.
	wr := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
	rd := lat.Store.GetLatency(ss.assig.Model.ParamBytes, s.rng)
	s.res.WriteLatency.Add(wr.Seconds())
	s.res.ReadLatency.Add(rd.Seconds())
	extra += wr + rd + electionCost

	// Move the replica: the victim is the replica on the fullest host.
	victim := 0
	worst := math.MaxInt
	for i, h := range ss.hosts {
		if idle := h.IdleGPUs(); idle < worst {
			worst = idle
			victim = i
		}
	}
	oldHost := ss.hosts[victim]
	key := fmt.Sprintf("%s/r%d", ss.src.ID, victim+1)
	_ = oldHost.RemoveReplica(key)
	_ = target.PlaceReplica(key, ss.req)
	ss.hosts[victim] = target
	ss.lastExecutor = victim + 1
	s.res.Migrations++
	s.recordEvent(scheduler.EventMigration)
	s.sampleSR()

	s.eng.After(extra, func() {
		s.runNbosTask(ss, task, submit, s.now().Sub(submit))
	})
}

// runLCPTask: take a warm container from the pool (or cold start), warm
// it up by downloading model + dataset (on the critical path, which is
// what stretches LCP's TCT in Fig. 9b), execute, return the container.
func (s *sim) runLCPTask(ss *simSession, task trace.Task, submit time.Time) {
	lat := s.cfg.Latencies
	req := s.taskReq(ss, task)
	holder := fmt.Sprintf("lcp/%s/%d", ss.src.ID, submit.UnixNano())

	var attempt func()
	attempt = func() {
		var target *cluster.Host
		warm := false
		// Prefer hosts with both idle GPUs and a warm container.
		for _, h := range s.cluster.Hosts() {
			if !h.CanCommit(req) {
				continue
			}
			if s.warmPool[h.ID] > 0 {
				target = h
				warm = true
				break
			}
			if target == nil {
				target = h
			}
		}
		if target == nil {
			s.eng.After(15*time.Second, attempt)
			return
		}
		if err := target.Commit(holder, req); err != nil {
			s.eng.After(15*time.Second, attempt)
			return
		}
		var start time.Duration
		if warm {
			s.warmPool[target.ID]--
			s.res.WarmStarts++
			start = lat.WarmAttach(s.rng)
		} else {
			s.res.ColdStarts++
			start = lat.ColdStart(s.rng)
		}
		queueing := s.now().Sub(submit)
		// Warm-up: fetch model parameters and dataset into the container.
		fetch := lat.Store.GetLatency(ss.assig.Model.ParamBytes+ss.assig.Dataset.SizeBytes/16, s.rng)
		s.res.ReadLatency.Add(fetch.Seconds())
		step1 := s.sampleStep(StepGSProcess, queueing+start+lat.GSProcess(s.rng))
		step5 := s.sampleStep(StepPreProcess, lat.PreProcess(s.rng)+fetch)
		s.sampleStep(StepElection, 0)
		step7 := s.sampleStep(StepIntermed, lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs))
		delay := step1 + step5 + step7

		s.eng.After(delay, func() {
			s.markTraining(ss, task, s.now(), true)
			s.eng.After(task.Duration, func() {
				s.sampleStep(StepExec, task.Duration)
				post := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
				s.res.WriteLatency.Add(post.Seconds())
				s.sampleStep(StepPostProc, post)
				ret := s.sampleStep(StepReturn, lat.Hop(s.rng))
				s.eng.After(post+ret, func() {
					s.markTraining(ss, task, s.now(), false)
					_ = target.Release(holder)
					// Return the container to the pool (LCP keeps it warm).
					s.warmPool[target.ID]++
					s.finishTask(ss, submit, submit.Add(delay).Sub(submit), task.Duration, post)
				})
			})
		})
	}
	attempt()
}

func (s *sim) markTraining(ss *simSession, task trace.Task, at time.Time, start bool) {
	g := float64(task.GPUs)
	if start {
		s.res.ActiveTrainings.Delta(at, 1)
		s.res.CommittedGPUs.Delta(at, g)
	} else {
		s.res.ActiveTrainings.Delta(at, -1)
		s.res.CommittedGPUs.Delta(at, -g)
	}
}

// hostWithIdle returns a host that can commit req right now (most idle
// first), or nil.
func (s *sim) hostWithIdle(req resources.Spec) *cluster.Host {
	var best *cluster.Host
	bestIdle := -1
	for _, h := range s.cluster.Hosts() {
		if !h.CanCommit(req) {
			continue
		}
		if idle := h.IdleGPUs(); idle > bestIdle {
			bestIdle = idle
			best = h
		}
	}
	return best
}

func (s *sim) sampleSR() {
	s.res.SR.Set(s.now(), s.cluster.ClusterSR())
}

// ---- periodic sampling & autoscaling ------------------------------------

func (s *sim) scheduleSampling() {
	var tick func()
	tick = func() {
		s.sampleProvisioned()
		if s.now().Before(s.cfg.Trace.End) {
			s.eng.After(s.cfg.SampleEvery, tick)
		}
	}
	s.eng.After(0, tick)
}

// sampleProvisioned records the provisioned-GPU series whose meaning is
// policy-dependent (Fig. 8): Reservation provisions what sessions reserve;
// Batch provisions what runs; NotebookOS/(LCP) provision whole servers.
func (s *sim) sampleProvisioned() {
	switch s.cfg.Policy {
	case PolicyReservation:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.CommittedGPUs()))
	case PolicyBatch:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.CommittedGPUs()))
	default:
		s.res.ProvisionedGPUs.Set(s.now(), float64(s.cluster.TotalGPUs()))
		s.sampleSR()
	}
}

func (s *sim) scheduleAutoscale() {
	var tick func()
	tick = func() {
		s.autoscaleOnce()
		if s.now().Before(s.cfg.Trace.End) {
			s.eng.After(s.cfg.AutoscaleInterval, tick)
		}
	}
	s.eng.After(s.cfg.AutoscaleInterval, tick)
}

func (s *sim) autoscaleOnce() {
	committed := s.cluster.CommittedGPUs()
	gpusPerHost := s.cfg.HostCapacity.GPUs
	expected := s.cfg.ScaleFactor*float64(committed) + float64(s.cfg.ScalingBufferHosts*gpusPerHost)
	if s.cfg.Policy == PolicyLCP {
		// The LCP baseline keeps a large warm-container pool sized to the
		// session population, trading resource cost for interactivity
		// (§5.1.1); reserve roughly one GPU of capacity per live session.
		expected += 0.75 * s.res.ActiveSessions.Last()
	}
	total := s.cluster.TotalGPUs() + s.pendingHosts*gpusPerHost

	if float64(total) < expected {
		need := int(math.Ceil((expected - float64(total)) / float64(gpusPerHost)))
		s.pendingHosts += need
		s.res.ScaleOuts++
		s.recordEvent(scheduler.EventScaleOut)
		provision := s.cfg.Latencies.HostProvision(s.rng)
		s.eng.After(provision, func() {
			for i := 0; i < need; i++ {
				s.addHost()
			}
			s.pendingHosts -= need
			s.sampleProvisioned()
		})
		return
	}
	// Scale in: release up to 2 idle servers (no replicas, nothing
	// committed) while above the floor.
	if float64(total)-float64(gpusPerHost) > expected && s.cluster.NumHosts() > s.cfg.MinHosts {
		released := 0
		for _, h := range s.cluster.Hosts() {
			if released >= 2 || s.cluster.NumHosts() <= s.cfg.MinHosts {
				break
			}
			if h.NumReplicas() == 0 && h.Committed().IsZero() {
				if err := s.cluster.RemoveHost(h.ID); err == nil {
					delete(s.warmPool, h.ID)
					released++
				}
			}
			if float64(s.cluster.TotalGPUs())-float64(gpusPerHost) <= expected {
				break
			}
		}
		if released > 0 {
			s.res.ScaleIns++
			s.recordEvent(scheduler.EventScaleIn)
			s.sampleProvisioned()
		}
	}
}

// finalizeIntegrals computes the integrated hour metrics for the cost
// model (Fig. 12).
func (s *sim) finalizeIntegrals() {
	start, end := s.cfg.Trace.Start, s.cfg.Trace.End
	s.res.ActiveGPUHours = s.res.CommittedGPUs.Integral(start, end)
	s.res.ServerHours = s.res.ProvisionedGPUs.Integral(start, end) / float64(s.cfg.HostCapacity.GPUs)
	s.res.ReservedGPUHours = s.cfg.Trace.ReservedGPUs().Integral(start, end)
	if s.cfg.Policy == PolicyNotebookOS {
		// Each session keeps R standby replicas alive; the executor is
		// billed as active while training. Replica-hours approximate
		// R x session-hours.
		sessHours := s.res.ActiveSessions.Integral(start, end)
		s.res.StandbyReplicaHours = sessHours * float64(s.cfg.ReplicasPerKernel)
	}
}
