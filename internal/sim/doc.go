// Package sim is the discrete-event simulator of the paper's §5.5: it
// replays IDLT traces (the 17.5-hour excerpt and the 90-day summer trace)
// against the four scheduling policies — Reservation, Batch (FCFS),
// NotebookOS, and NotebookOS (LCP) — using the same cluster model and
// placement code as the live platform, with protocol latencies drawn from
// models calibrated against the live implementation and the paper's
// reported distributions.
//
// Entry points: Run simulates one policy against one cluster;
// RunFederated simulates the NotebookOS policy against a federation of
// independently sized clusters (see internal/federation), routing
// session placement and cross-cluster replica migration under a
// pluggable federation route policy; RunSharded (and its federated twin
// RunFederatedSharded) splits a long trace into session-partitioned
// shards via trace.Split, replays one worker simulation per shard on
// parallel goroutines with ShardSeed-derived seeds, and merges the
// results deterministically with MergeResults/MergeFedResults —
// timelines through metrics.MergeTimelines, samples through
// metrics.MergeSamples (k-way merges of the shards' sorted runs, so
// merged quantiles are bit-identical to concatenation), events by a
// pre-sized k-way merge on their int64 timestamps, counters by
// summation, always in shard-index order so output never
// depends on worker completion order. Capacity accounting across shards
// is Config.ShardCapacity's choice (docs/SHARDING.md): under LeasePool —
// the default for experiment -shards runs — workers lease hosts from a
// shared virtual capacity pool backed by a capacity ledger (an unsharded
// replay running as one more barrier participant), reconciled at every
// LeaseEpoch boundary, so every cluster-determined metric of a sharded
// run is byte-identical to the unsharded run at any shard count (pinned
// by TestLeasePoolCapacityExact); under the zero-value LegacySplit the
// workers never share capacity after the initial proportional grant and
// the saved-GPU-hour drift bound documented on RunSharded applies
// (pinned by TestShardedSavingsDriftBound). Latency distributions are
// shard-local — unbiased but not sample-identical — in both modes.
//
// Crossing-cost accounting in RunFederated: every federation boundary
// crossing is charged from federation.Federation.Penalty — either the
// symmetric FedConfig.InterClusterPenalty or, when FedConfig.Latency
// installs a per-pair latency matrix, the actual (home, remote) pair
// cost. A task served by a replica outside its session's home cluster
// pays two crossings (request and reply); a migration that moves a
// replica between clusters pays two crossings for the checkpoint
// transfer (persist + restore through the data store).
//
// Autoscaling in RunFederated runs in one of two modes. Per-member (the
// default): each member scales on its own committed load, floored at its
// own FedClusterSpec.MinHosts — which is clamped to at least R, because a
// member that places R-replica kernels locally becomes permanently
// unplaceable below R hosts. Pooled (FedConfig.PooledAutoscale): one
// federation.FederatedAutoscaler decision per interval, observed over the
// members' O(1) counters, with the per-member floors replaced by a single
// federation-wide floor (FedConfig.FedMinHosts, default a quarter of the
// initial fleet, clamped to R) plus the placement anchor — scale-in never
// leaves every member below R hosts, so kernels homed at drained members
// still place somewhere via routing. The clamp rule lives in
// scheduler.MinHostsFloor.
//
// Invariants:
//
//   - Determinism: a fixed Config (including Seed) replays bit-for-bit,
//     regardless of goroutine scheduling in the surrounding experiment
//     harness. All randomness comes from rand.Rand instances seeded only
//     by the config; tasks blocked on capacity park on a FIFO wait-queue
//     drained as a single DES event (see capacityWaitQueue), never on
//     polling timers; nothing iterates Go maps on result-affecting paths;
//     and pooled autoscaling decisions are pure functions of the observed
//     loads. Double-run equality is enforced by determinism tests for
//     Run, RunFederated, and the pooled/matrix federated path.
//   - SLO-aware scheduling is opt-in: FedConfig.SLOAware switches the
//     wait-queue to class-weighted priority order (rank = waited×weight,
//     FIFO within a class, waiters past FedConfig.SLOAgingBound promoted
//     ahead of everything so best-effort cannot starve) and records
//     per-class queue delays in FedResult.ClassDelay; the default FIFO
//     path is untouched and replays every existing workload
//     byte-identically. The priority drain's comparator is a total order
//     (arrival sequences are unique), so SLO-aware runs replay
//     bit-for-bit too.
//   - Saturation costs O(waiters) events: the cluster's capacity notifier
//     (Release/AddHost) wakes the wait-queue; there are no retry polls.
//   - Fault injection is opt-in and identity-preserving: Config.Faults
//     (and FedConfig.Faults) replays a deterministic fault schedule —
//     exponential host crash/recover churn, correlated outage windows,
//     degraded-network episodes — as first-class DES events (faults.go;
//     docs/FAULTS.md). The stream derives from (FaultSpec, Seed) alone
//     and its RNGs are disjoint from every workload stream, so a nil or
//     empty spec is byte-identical to the fault layer not existing
//     (TestZeroFaultSpecIsIdentity) and the lease pool's capacity ledger
//     replays the identical crash sequence — sharded fault metrics are
//     exact at any shard count (TestFaultRunsDoubleRunByteIdentical).
//     Quorum-preserving replica loss fails over without interrupting the
//     running task; executor death or quorum loss aborts into
//     checkpoint-restore resubmission under SLO-class retry budgets.
//   - Traces are read-only: a *trace.Trace may be shared by any number of
//     concurrent simulations.
package sim
