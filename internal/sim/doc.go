// Package sim is the discrete-event simulator of the paper's §5.5: it
// replays IDLT traces (the 17.5-hour excerpt and the 90-day summer trace)
// against the four scheduling policies — Reservation, Batch (FCFS),
// NotebookOS, and NotebookOS (LCP) — using the same cluster model and
// placement code as the live platform, with protocol latencies drawn from
// models calibrated against the live implementation and the paper's
// reported distributions.
//
// Two entry points exist: Run simulates one policy against one cluster,
// and RunFederated simulates the NotebookOS policy against a federation
// of independently sized clusters (see internal/federation), routing
// session placement and cross-cluster replica migration under a pluggable
// federation route policy with a configurable inter-cluster latency
// penalty.
//
// Invariants:
//
//   - Determinism: a fixed Config (including Seed) replays bit-for-bit,
//     regardless of goroutine scheduling in the surrounding experiment
//     harness. All randomness comes from rand.Rand instances seeded only
//     by the config; tasks blocked on capacity park on a FIFO wait-queue
//     drained as a single DES event (see capacityWaitQueue), never on
//     polling timers; and nothing iterates Go maps on result-affecting
//     paths. Double-run equality is enforced by determinism tests for
//     both Run and RunFederated.
//   - Saturation costs O(waiters) events: the cluster's capacity notifier
//     (Release/AddHost) wakes the wait-queue; there are no retry polls.
//   - Traces are read-only: a *trace.Trace may be shared by any number of
//     concurrent simulations.
package sim
