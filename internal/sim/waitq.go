package sim

import (
	"sort"
	"time"

	"notebookos/internal/des"
)

// A capWaiter retries an acquisition attempt when cluster capacity may
// have freed up. It returns true once it has made progress (committed
// resources or scheduled follow-up work) and should leave the queue, and
// false to keep waiting for the next capacity notification.
type capWaiter func() bool

// capacityWaitQueue replaces the simulator's former 15s/30s polling retry
// loops: tasks that cannot commit GPUs park here and are woken by the
// cluster's capacity notifier (host Release or AddHost), so a saturated
// cluster costs O(waiters) events per capacity transition instead of
// O(waiters × wait-time / poll-interval).
//
// Determinism: waiters retry in FIFO arrival order, and the drain runs as
// a single DES event scheduled at the notification timestamp (ordered by
// the engine's sequence number), so a fixed seed replays bit-for-bit.
//
// Priority mode (usePriority) replaces the FIFO retry order with an
// SLO-class-weighted one — see drainPrio — while the FIFO path above
// stays the default, byte-identical to what every existing workload
// replays.
type capacityWaitQueue struct {
	eng       *des.Engine
	q         []capWaiter
	scheduled bool
	// drainFn is the bound drain method, built once: passing w.drain to
	// Defer directly would allocate a fresh method value per notification.
	drainFn func()

	// Priority mode (off by default; see usePriority). pq replaces q as
	// the parked set, seq numbers arrivals for deterministic tie-breaks,
	// and agingNS is the promotion bound: a waiter parked at least this
	// long retries ahead of every unpromoted waiter regardless of class
	// weight, so a sustained stream of heavy-class arrivals cannot starve
	// light classes beyond the bound.
	prio    bool
	agingNS int64
	pq      []prioWaiter
	seq     uint64
}

// prioWaiter is one parked waiter in priority mode: its retry closure
// plus the ordering metadata (class weight, enqueue time, arrival
// sequence).
type prioWaiter struct {
	fn     capWaiter
	weight int64
	enqNS  int64
	seq    uint64
}

func newCapacityWaitQueue(eng *des.Engine) *capacityWaitQueue {
	w := &capacityWaitQueue{eng: eng}
	w.drainFn = w.drain
	return w
}

// defaultAgingBound is the priority queue's promotion bound when
// usePriority is given a non-positive one.
const defaultAgingBound = 30 * time.Minute

// usePriority switches the queue into class-weighted priority mode with
// the given aging bound (non-positive selects defaultAgingBound). Must be
// called before any waiter parks; the FIFO path is untouched when this is
// never called.
func (w *capacityWaitQueue) usePriority(aging time.Duration) {
	if aging <= 0 {
		aging = defaultAgingBound
	}
	w.prio = true
	w.agingNS = aging.Nanoseconds()
}

// Len returns the number of parked waiters.
func (w *capacityWaitQueue) Len() int { return len(w.q) + len(w.pq) }

// Wait parks fn until the next capacity notification. In priority mode it
// parks at weight 1 (the lightest class); classed callers use WaitClass.
func (w *capacityWaitQueue) Wait(fn capWaiter) {
	if w.prio {
		w.WaitClass(1, fn)
		return
	}
	w.q = append(w.q, fn)
}

// WaitClass parks fn with an SLO-class weight (clamped to ≥ 1): heavier
// waiters retry first when capacity frees. Outside priority mode the
// weight is ignored and the park is a plain FIFO Wait.
func (w *capacityWaitQueue) WaitClass(weight int, fn capWaiter) {
	if !w.prio {
		w.q = append(w.q, fn)
		return
	}
	if weight < 1 {
		weight = 1
	}
	w.seq++
	w.pq = append(w.pq, prioWaiter{
		fn:     fn,
		weight: int64(weight),
		enqNS:  w.eng.Now().UnixNano(),
		seq:    w.seq,
	})
}

// Notify schedules a drain at the current virtual time. Multiple
// notifications within one event coalesce into a single drain, and a
// notification with no waiters is free — so there are no lost wakeups
// (every capacity-freeing transition after a Wait triggers a drain) and
// no thundering herds.
func (w *capacityWaitQueue) Notify() {
	if w.scheduled || (len(w.q) == 0 && len(w.pq) == 0) {
		return
	}
	w.scheduled = true
	w.eng.Defer(0, w.drainFn)
}

// drain retries every parked waiter once, in FIFO arrival order (priority
// order in priority mode). Waiters that still cannot make progress stay
// queued, ahead of any waiters that arrived during the drain.
func (w *capacityWaitQueue) drain() {
	w.scheduled = false
	if w.prio {
		w.drainPrio()
		return
	}
	pending := w.q
	w.q = nil
	var kept []capWaiter
	for _, fn := range pending {
		if !fn() {
			kept = append(kept, fn)
		}
	}
	if len(kept) > 0 {
		// Waiters enqueued while draining (w.q) arrived later than the
		// kept ones; preserve FIFO order across the splice.
		w.q = append(kept, w.q...)
	}
}

// drainPrio retries the parked waiters in class-weighted priority order:
//
//   - Promoted waiters first — any waiter parked at least the aging bound
//     — in arrival order among themselves. Promotion is what makes the
//     queue starvation-free: however heavy the competing classes, a
//     best-effort waiter outranks every fresh arrival once it has waited
//     the bound.
//   - Then by descending rank, waited×weight: a weight-4 interactive
//     waiter outranks a weight-1 best-effort waiter that has waited less
//     than 4× as long. Equal weights reduce to waited alone, so FIFO
//     order is preserved within a class.
//   - Ties (same promotion state and rank) break by arrival sequence.
//
// The comparator is a total order (sequences are unique), so the sort —
// and therefore the replay — is deterministic regardless of sort
// stability. Failed waiters keep their metadata and retry ahead of
// drain-time arrivals at the next notification, exactly like the FIFO
// path's splice.
func (w *capacityWaitQueue) drainPrio() {
	pending := w.pq
	w.pq = nil
	now := w.eng.Now().UnixNano()
	aging := w.agingNS
	sort.Slice(pending, func(a, b int) bool {
		pa, pb := &pending[a], &pending[b]
		promA := now-pa.enqNS >= aging
		promB := now-pb.enqNS >= aging
		if promA != promB {
			return promA
		}
		if promA {
			return pa.seq < pb.seq
		}
		ra := (now - pa.enqNS) * pa.weight
		rb := (now - pb.enqNS) * pb.weight
		if ra != rb {
			return ra > rb
		}
		return pa.seq < pb.seq
	})
	var kept []prioWaiter
	for _, p := range pending {
		if !p.fn() {
			kept = append(kept, p)
		}
	}
	if len(kept) > 0 {
		w.pq = append(kept, w.pq...)
	}
}
