package sim

import (
	"notebookos/internal/des"
)

// A capWaiter retries an acquisition attempt when cluster capacity may
// have freed up. It returns true once it has made progress (committed
// resources or scheduled follow-up work) and should leave the queue, and
// false to keep waiting for the next capacity notification.
type capWaiter func() bool

// capacityWaitQueue replaces the simulator's former 15s/30s polling retry
// loops: tasks that cannot commit GPUs park here and are woken by the
// cluster's capacity notifier (host Release or AddHost), so a saturated
// cluster costs O(waiters) events per capacity transition instead of
// O(waiters × wait-time / poll-interval).
//
// Determinism: waiters retry in FIFO arrival order, and the drain runs as
// a single DES event scheduled at the notification timestamp (ordered by
// the engine's sequence number), so a fixed seed replays bit-for-bit.
type capacityWaitQueue struct {
	eng       *des.Engine
	q         []capWaiter
	scheduled bool
	// drainFn is the bound drain method, built once: passing w.drain to
	// Defer directly would allocate a fresh method value per notification.
	drainFn func()
}

func newCapacityWaitQueue(eng *des.Engine) *capacityWaitQueue {
	w := &capacityWaitQueue{eng: eng}
	w.drainFn = w.drain
	return w
}

// Len returns the number of parked waiters.
func (w *capacityWaitQueue) Len() int { return len(w.q) }

// Wait parks fn until the next capacity notification.
func (w *capacityWaitQueue) Wait(fn capWaiter) {
	w.q = append(w.q, fn)
}

// Notify schedules a drain at the current virtual time. Multiple
// notifications within one event coalesce into a single drain, and a
// notification with no waiters is free — so there are no lost wakeups
// (every capacity-freeing transition after a Wait triggers a drain) and
// no thundering herds.
func (w *capacityWaitQueue) Notify() {
	if w.scheduled || len(w.q) == 0 {
		return
	}
	w.scheduled = true
	w.eng.Defer(0, w.drainFn)
}

// drain retries every parked waiter once, in FIFO arrival order. Waiters
// that still cannot make progress stay queued, ahead of any waiters that
// arrived during the drain.
func (w *capacityWaitQueue) drain() {
	w.scheduled = false
	pending := w.q
	w.q = nil
	var kept []capWaiter
	for _, fn := range pending {
		if !fn() {
			kept = append(kept, fn)
		}
	}
	if len(kept) > 0 {
		// Waiters enqueued while draining (w.q) arrived later than the
		// kept ones; preserve FIFO order across the splice.
		w.q = append(kept, w.q...)
	}
}
