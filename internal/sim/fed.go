package sim

import (
	"fmt"
	"iter"
	"math"
	"math/rand"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/des"
	"notebookos/internal/federation"
	"notebookos/internal/metrics"
	"notebookos/internal/resources"
	"notebookos/internal/scheduler"
	"notebookos/internal/trace"
	"notebookos/internal/workload"
)

// FedClusterSpec sizes one member cluster of a federated simulation.
// Members may differ in host count and host shape (heterogeneous
// federations are the expected case).
type FedClusterSpec struct {
	// Name labels the cluster in results ("c0", "us-west", ...).
	Name string
	// Hosts is the initial server count.
	Hosts int
	// HostCapacity is the per-server shape (defaults to p3.16xlarge).
	HostCapacity resources.Spec
	// MinHosts floors per-member scale-in. It defaults to Hosts/4 clamped
	// through scheduler.MinHostsFloor to at least R (capped at Hosts):
	// per-member scale-in must never leave the cluster unable to host one
	// kernel's R replicas, or it becomes permanently unplaceable. Ignored
	// under PooledAutoscale, which replaces the per-member floors with one
	// federation-wide floor plus a placement anchor.
	MinHosts int
}

// DefaultFedClusters splits a total host budget across n clusters with
// deliberately heterogeneous sizes (a descending ramp: the first cluster
// is the largest), all p3.16xlarge-shaped. Every cluster gets at least
// one host; subject to that floor the total host count is exactly
// max(totalHosts, n) for every n, so cluster-count sweeps compare equal
// capacity.
func DefaultFedClusters(n, totalHosts int) []FedClusterSpec {
	if n <= 0 {
		n = 1
	}
	if totalHosts < n {
		totalHosts = n
	}
	weightSum := n * (n + 1) / 2
	specs := make([]FedClusterSpec, n)
	assigned := 0
	for i := 0; i < n; i++ {
		h := totalHosts * (n - i) / weightSum
		if h < 1 {
			h = 1
		}
		specs[i] = FedClusterSpec{Name: fmt.Sprintf("c%d", i), Hosts: h}
		assigned += h
	}
	// Hand any rounding shortfall to the largest cluster. If clamping
	// overshot the budget and drove c0 below one host, rebalance from the
	// other clusters, never taking any below one host.
	specs[0].Hosts += totalHosts - assigned
	for i := 1; i < n && specs[0].Hosts < 1; i++ {
		if specs[i].Hosts > 1 {
			take := specs[i].Hosts - 1
			if need := 1 - specs[0].Hosts; take > need {
				take = need
			}
			specs[i].Hosts -= take
			specs[0].Hosts += take
		}
	}
	if specs[0].Hosts < 1 {
		specs[0].Hosts = 1
	}
	return specs
}

// NoInterClusterPenalty selects an explicitly free cluster crossing in
// FedConfig.InterClusterPenalty (whose zero value means "default").
const NoInterClusterPenalty time.Duration = -1

// FedConfig parameterizes one federated simulation run. The simulated
// policy is always NotebookOS (federation exists to re-commit
// idle-reclaimed GPUs wherever capacity exists; the Reservation and Batch
// baselines have nothing to route).
type FedConfig struct {
	// Trace is the shared arrival stream; sessions are assigned home
	// clusters round-robin in trace order. Exactly one of Trace and Source
	// must be set.
	Trace *trace.Trace
	// Source is a lazily-iterated session stream used in place of Trace
	// (see Config.Source): sessions are admitted as virtual time reaches
	// them, keeping memory bounded by concurrency rather than trace size.
	Source trace.Source
	// LeanMetrics bounds the result's memory by the simulated window (see
	// Config.LeanMetrics): coalesced timelines, reservoir samples.
	LeanMetrics bool
	// LeanSampleCap is the per-distribution reservoir size under
	// LeanMetrics (default 4096).
	LeanSampleCap int
	// Clusters are the member clusters (default: two 15-host clusters).
	Clusters []FedClusterSpec
	// Route ranks clusters for placements and migrations (default
	// federation.LocalFirst).
	Route federation.RoutePolicy
	// InterClusterPenalty is the one-way latency between any two distinct
	// clusters (default 25 ms; pass NoInterClusterPenalty for an explicit
	// zero — the zero value means "use the default", as elsewhere in this
	// package's configs). Remote executions pay two crossings per
	// request/reply; cross-cluster migrations pay two crossings for the
	// checkpoint transfer. Ignored when Latency is set.
	InterClusterPenalty time.Duration
	// Latency is a per-pair inter-cluster latency matrix (see
	// federation.UniformMatrix / HubSpokeMatrix / GeoBandedMatrix). When
	// set it replaces InterClusterPenalty: every crossing — remote
	// execution request/reply, cross-cluster checkpoint transfer, and the
	// LatencyAware route policy's cost term — pays the actual pair cost.
	// Its size must equal the cluster count.
	Latency federation.LatencyMatrix
	// PooledAutoscale switches autoscaling from one evaluation per member
	// (each scaling on its own committed load, pinned at its own MinHosts
	// floor) to one federation.FederatedAutoscaler decision per interval:
	// federation-wide expected capacity, ScalePolicy-chosen target member,
	// and a single federation-wide floor so small members can drain to
	// near-zero.
	PooledAutoscale bool
	// FedMinHosts is the federation-wide scale-in floor under
	// PooledAutoscale, clamped through scheduler.MinHostsFloor to at least
	// R. It defaults to a quarter of the initial federation-wide host
	// count — the same floor rule a single cluster uses, applied once to
	// the whole federation instead of once per member, so the floor stays
	// flat as the cluster count grows. A bare R-host floor is legal but
	// causes drain/re-provision churn at low cluster counts.
	FedMinHosts int
	// ScalePolicy picks the member each pooled decision lands on (default
	// federation.GreedyScalePolicy).
	ScalePolicy federation.ScalePolicy
	// ReplicasPerKernel is R (default 3). A session's replicas are placed
	// within a single cluster at creation; migration may later move a
	// replica to another cluster.
	ReplicasPerKernel int
	// PrewarmPerHost sizes each host's warm-container pool (default 1).
	PrewarmPerHost int
	// SRHighWatermark caps per-host subscription (default 3.0).
	SRHighWatermark float64
	// ScaleFactor is each member's autoscaler factor f (default 1.05).
	ScaleFactor float64
	// AutoscaleInterval is the per-member autoscaler period (default 60s).
	AutoscaleInterval time.Duration
	// Latencies are the protocol latency models.
	Latencies Latencies
	// SLOAware switches the capacity wait-queue from strict FIFO to
	// SLO-class-weighted priority order: parked tasks retry by
	// waited×class-weight (trace.SLOClass.Weight — interactive 4, batch 2,
	// best-effort 1), FIFO within a class, with waiters parked longer than
	// SLOAgingBound promoted ahead of everything so best-effort cannot
	// starve. Off by default — the FIFO path replays byte-identically.
	// Per-class queue-delay samples land in FedResult.ClassDelay.
	SLOAware bool
	// SLOAgingBound is the priority queue's starvation-freedom bound
	// (default 30 min; only meaningful with SLOAware).
	SLOAgingBound time.Duration
	// Seed drives all randomness.
	Seed int64
	// SampleEvery is the metrics sampling period (default 5 min).
	SampleEvery time.Duration
	// ShardCapacity selects how the sharded federated runners treat member
	// capacity (RunFederated itself ignores it): LegacySplit (the zero
	// value) keeps the static proportional split, LeasePool reconciles a
	// shared per-member capacity pool at epoch barriers. See
	// RunFederatedSharded and docs/SHARDING.md.
	ShardCapacity ShardCapacity
	// LeaseEpoch is the barrier period of the LeasePool capacity protocol
	// (default AutoscaleInterval). Only meaningful with
	// ShardCapacity == LeasePool.
	LeaseEpoch time.Duration
	// Faults declares the deterministic fault model (see Config.Faults):
	// per-host crash/recover churn, outage windows — scopable to one
	// member by name — and network-degradation episodes that scale every
	// inter-cluster penalty for their window. Nil or empty means a
	// failure-free world and leaves the run byte-identical.
	Faults *trace.FaultSpec

	// leaseManaged marks a sharded worker federation whose capacity is
	// governed by a lease pool at epoch barriers: the worker's own
	// autoscale ticks (pooled or per-member) are suppressed. Set only by
	// the lease runner, never by callers.
	leaseManaged bool
}

func (c *FedConfig) withDefaults() error {
	if c.Trace == nil && c.Source == nil {
		return fmt.Errorf("sim: federated config requires Trace or Source")
	}
	if c.Trace != nil && c.Source != nil {
		return fmt.Errorf("sim: federated config requires exactly one of Trace and Source")
	}
	if c.LeanMetrics && c.LeanSampleCap <= 0 {
		c.LeanSampleCap = 4096
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if len(c.Clusters) == 0 {
		c.Clusters = DefaultFedClusters(2, 30)
	} else {
		// Defaults are filled in place below; copy the slice so a caller's
		// spec slice shared across (possibly concurrent) runs is never
		// mutated.
		c.Clusters = append([]FedClusterSpec(nil), c.Clusters...)
	}
	if c.ReplicasPerKernel <= 0 {
		c.ReplicasPerKernel = 3
	}
	for i := range c.Clusters {
		spec := &c.Clusters[i]
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("c%d", i)
		}
		if spec.Hosts <= 0 {
			spec.Hosts = 15
		}
		if spec.HostCapacity.IsZero() {
			spec.HostCapacity = resources.P316xlarge()
		}
		if spec.MinHosts <= 0 {
			// Per-member scale-in must never leave a cluster unable to host
			// one kernel's R replicas (the clamp rule lives in
			// scheduler.MinHostsFloor).
			spec.MinHosts = scheduler.MinHostsFloor(spec.Hosts/4, c.ReplicasPerKernel)
			if spec.MinHosts > spec.Hosts {
				spec.MinHosts = spec.Hosts
			}
		}
	}
	if c.Latency != nil {
		if err := c.Latency.Validate(); err != nil {
			return err
		}
		if c.Latency.Size() != len(c.Clusters) {
			return fmt.Errorf("sim: latency matrix covers %d members, federation has %d clusters",
				c.Latency.Size(), len(c.Clusters))
		}
	}
	if c.FedMinHosts <= 0 {
		total := 0
		for _, spec := range c.Clusters {
			total += spec.Hosts
		}
		c.FedMinHosts = scheduler.MinHostsFloor(total/4, c.ReplicasPerKernel)
	}
	if c.Route == nil {
		c.Route = federation.LocalFirst{}
	}
	if c.ScalePolicy == nil {
		c.ScalePolicy = federation.GreedyScalePolicy{}
	}
	if c.InterClusterPenalty < 0 {
		c.InterClusterPenalty = 0
	} else if c.InterClusterPenalty == 0 {
		c.InterClusterPenalty = 25 * time.Millisecond
	}
	if c.PrewarmPerHost <= 0 {
		c.PrewarmPerHost = 1
	}
	if c.SRHighWatermark <= 0 {
		c.SRHighWatermark = scheduler.DefaultSRHighWatermark
	}
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1.05
	}
	if c.AutoscaleInterval <= 0 {
		c.AutoscaleInterval = time.Minute
	}
	if c.LeaseEpoch <= 0 {
		c.LeaseEpoch = c.AutoscaleInterval
	}
	if c.Latencies.GSProcess == nil {
		c.Latencies = DefaultLatencies()
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Minute
	}
	if c.SLOAware && c.SLOAgingBound <= 0 {
		c.SLOAgingBound = defaultAgingBound
	}
	return nil
}

// FedClusterResult is one member cluster's share of a federated run.
type FedClusterResult struct {
	Name string
	// ProvisionedGPUs and CommittedGPUs are this member's series; the
	// federation-wide series in FedResult are their merge.
	ProvisionedGPUs *metrics.Timeline
	CommittedGPUs   *metrics.Timeline
	// HomeSessions counts sessions homed at this cluster; PlacedSessions
	// counts sessions whose kernel was created here (they differ when the
	// route policy spills placements to other clusters).
	HomeSessions   int
	PlacedSessions int
	// Tasks counts task executions that committed GPUs on this cluster.
	Tasks int
	// MigrationsIn counts replicas migrated onto this cluster.
	MigrationsIn int
	ScaleOuts    int
	ScaleIns     int
	// FinalHosts is the member's live host count when the run ended —
	// under pooled autoscaling small members drain here toward zero, while
	// per-member scaling pins each at its own MinHosts floor.
	FinalHosts int
}

// FedResult carries the outcome of a federated simulation: per-cluster
// series plus federation-wide merges and counters.
type FedResult struct {
	Clusters []*FedClusterResult

	// Merged federation-wide series (pointwise sums of the per-cluster
	// series; Integral equals the sum of per-cluster Integrals).
	ProvisionedGPUs *metrics.Timeline
	CommittedGPUs   *metrics.Timeline
	ActiveSessions  *metrics.Timeline

	// Distributions.
	Interactivity *metrics.Sample // seconds
	TCT           *metrics.Sample // seconds
	// ClassDelay is the per-SLO-class queue-delay distribution (the same
	// interactivity delay, split by each task's session class with the
	// unclassified zero value folded into batch). Nil unless the run was
	// SLOAware; iterate trace.SLOClasses() for a deterministic order.
	ClassDelay map[trace.SLOClass]*metrics.Sample // seconds

	// Counters.
	Tasks            int
	ImmediateCommits int
	LocalPlacements  int // sessions placed on their home cluster
	RemotePlacements int // sessions spilled to another cluster
	RemoteExecutions int // tasks executed on a non-home-cluster replica
	Migrations       int
	CrossMigrations  int // migrations that changed cluster
	ScaleOuts        int
	ScaleIns         int
	ColdStarts       int
	WarmStarts       int

	// Integrated hours over the trace window.
	ActiveGPUHours      float64
	ProvisionedGPUHours float64
	ReservedGPUHours    float64

	// Fault-injection outcomes (see Result's matching block and
	// docs/FAULTS.md). All zero — and the two recorders nil — unless
	// FedConfig.Faults is enabled.
	HostCrashes    int
	HostRecoveries int
	Failovers      int
	TaskRestarts   int
	Abandonments   int
	LostGPUHours   float64
	// Availability tracks the federation-wide live host count as a delta
	// timeline; its integral over any window is the fleet's up-host-hours.
	Availability *metrics.Timeline
	// RecoveryTime samples every recovery charge paid: failover elections
	// and checkpoint-restore restart penalties, in seconds.
	RecoveryTime *metrics.Sample
}

// GPUHoursSaved returns the headline federation saving: reserved GPU-hours
// (what the Reservation baseline would bind) minus provisioned GPU-hours.
func (r *FedResult) GPUHoursSaved() float64 {
	return r.ReservedGPUHours - r.ProvisionedGPUHours
}

// FinalHosts returns the federation-wide live host count when the run
// ended (the sum of the per-cluster FinalHosts).
func (r *FedResult) FinalHosts() int {
	n := 0
	for _, c := range r.Clusters {
		n += c.FinalHosts
	}
	return n
}

// fedHost pairs a member host with its cluster index and warm-pool count.
type fedHost struct {
	h      *cluster.Host
	member int
	warm   int
}

// fedMember is one member cluster's mutable simulation state.
type fedMember struct {
	spec    FedClusterSpec
	c       *cluster.Cluster
	hosts   []*fedHost
	res     *FedClusterResult
	hostSeq int
	// pendingHosts counts servers being provisioned for this member.
	pendingHosts int
}

// fedSession is the per-session federated simulation state.
type fedSession struct {
	src   *trace.Session
	req   resources.Spec
	assig workload.Assignment
	home  int

	// holder is the session's exclusive-commit key ("fed/<id>"), built once;
	// task serialization (running + FCFS queue) guarantees at most one
	// outstanding commitment per session, see simSession.holder.
	holder       string
	hosts        []*fedHost
	rkeys        []string
	lastExecutor int
	queue        []trace.Task
	running      bool
	closed       bool
	// cur is the in-flight task state machine (nil between tasks), the
	// handle the fault layer aborts through; restarts counts the current
	// task's checkpoint-restore resubmissions against its retry budget.
	cur      runningTask
	restarts int
}

func (ss *fedSession) replicaKeyFor(i int) string {
	if len(ss.rkeys) < i {
		ss.rkeys = extendReplicaKeys(ss.rkeys, ss.src.ID, i)
	}
	return ss.rkeys[i-1]
}

// fedSim is the mutable federated simulation state.
type fedSim struct {
	cfg       FedConfig
	eng       *des.Engine
	rng       *rand.Rand
	fed       *federation.Federation
	members   []*fedMember
	placement scheduler.LeastLoaded
	// byHost resolves the hosts returned by the placement policy back to
	// their fedHost wrappers (warm counts, member index).
	byHost map[*cluster.Host]*fedHost
	// waitq parks tasks blocked on capacity anywhere in the federation;
	// it is woken by any member's Release/AddHost via the federation's
	// capacity-notification fan-in.
	waitq *capacityWaitQueue
	// autoscaler makes the pooled decisions when cfg.PooledAutoscale is
	// set; nil in per-member mode.
	autoscaler *federation.FederatedAutoscaler
	// loads is the reusable MemberLoad buffer the pooled autoscaler
	// snapshot fills every interval (one slice for the whole run instead
	// of one per tick — 90-day runs make tens of thousands of ticks).
	loads []federation.MemberLoad
	// route is the reusable ranking scratch for the route policy — the
	// event loop is single-threaded and ranks clusters on every placement
	// and remote execution, so one scratch serves the whole run.
	route federation.RouteScratch
	// qdepth counts parked capacity waiters per home member — the
	// QueueDepth signal RoutingSnapshots carry (via SetSnapshotExtras).
	// Maintained on every park/unpark; it never affects the default path's
	// event order.
	qdepth []int
	res    *FedResult

	// Fault-injection state (see faults.go), live only when cfg.Faults is
	// enabled; mirrors sim's matching fields.
	faultsOn      bool
	frng          *rand.Rand
	faultSessions []*fedSession

	// Streaming state (see Config.Source and sim's matching fields).
	start, end time.Time
	streaming  bool
	wr         *rand.Rand
	// homeSeq counts admitted sessions for round-robin home assignment.
	homeSeq  int
	pull     func() (*trace.Session, bool)
	stopPull func()
	srcErr   error
	// reserved integrates reserved GPUs online when streaming.
	reserved gpuHoursAcc
}

// RunFederated executes a federated simulation and returns its result.
// Determinism matches Run: a fixed config replays bit-for-bit.
func RunFederated(cfg FedConfig) (*FedResult, error) {
	s, err := newFedSim(cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()
	s.eng.RunUntil(s.end.Add(24 * time.Hour))
	return s.finish()
}

// newFedSim builds a ready-to-run federated simulation (see newSim):
// members and hosts in place, events scheduled, ticks armed. Callers
// drive the engine and collect the result with finish; pair with close.
func newFedSim(cfg FedConfig) (*fedSim, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	src := cfg.Source
	if src == nil {
		src = cfg.Trace.AsSource()
	}
	start, end := src.Window()
	eng := des.New(start)
	s := &fedSim{
		cfg:       cfg,
		eng:       eng,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		fed:       federation.New(cfg.InterClusterPenalty),
		placement: scheduler.LeastLoaded{SRHighWatermark: cfg.SRHighWatermark},
		byHost:    map[*cluster.Host]*fedHost{},
		waitq:     newCapacityWaitQueue(eng),
		start:     start,
		end:       end,
		streaming: cfg.Source != nil,
		wr:        rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	s.reserved.lastNS = start.UnixNano()
	// Lean mode swaps the unbounded recorders for window-bounded ones (see
	// Run): coalesced timelines, seeded reservoir samples.
	newTL := metrics.NewTimeline
	if cfg.LeanMetrics {
		newTL = func() *metrics.Timeline { return metrics.NewCoalescedTimeline(cfg.SampleEvery) }
	}
	sampleSeq := cfg.Seed + 1000
	newSample := func() *metrics.Sample {
		sm := metrics.NewSample()
		if cfg.LeanMetrics {
			sampleSeq++
			sm.Reservoir(cfg.LeanSampleCap, sampleSeq)
		}
		return sm
	}
	s.res = &FedResult{
		ActiveSessions: newTL(),
		Interactivity:  newSample(),
		TCT:            newSample(),
	}
	s.qdepth = make([]int, len(cfg.Clusters))
	if cfg.SLOAware {
		s.waitq.usePriority(cfg.SLOAgingBound)
		// Pre-create the per-class samples in SLOClasses order so lean-mode
		// reservoir seeds are position-independent of the workload.
		s.res.ClassDelay = make(map[trace.SLOClass]*metrics.Sample, 3)
		for _, cl := range trace.SLOClasses() {
			s.res.ClassDelay[cl] = newSample()
		}
	}
	// Fault injection arms before the member clusters build so every host
	// slot — including each member's initial Hosts — carries a crash
	// clock, and the availability timeline sees every membership change.
	s.initFaults()
	for i, spec := range cfg.Clusters {
		c := cluster.New(cfg.ReplicasPerKernel)
		if _, err := s.fed.AddMember(spec.Name, c); err != nil {
			return nil, err
		}
		m := &fedMember{
			spec: spec,
			c:    c,
			res: &FedClusterResult{
				Name:            spec.Name,
				ProvisionedGPUs: newTL(),
				CommittedGPUs:   newTL(),
			},
		}
		s.members = append(s.members, m)
		s.res.Clusters = append(s.res.Clusters, m.res)
		for j := 0; j < spec.Hosts; j++ {
			s.addHost(i)
		}
	}
	if cfg.Latency != nil {
		// Size was validated against the cluster count in withDefaults.
		if err := s.fed.SetLatencyMatrix(cfg.Latency); err != nil {
			return nil, err
		}
	}
	if cfg.PooledAutoscale {
		s.autoscaler = &federation.FederatedAutoscaler{
			ScaleFactor: cfg.ScaleFactor,
			MinHosts:    cfg.FedMinHosts,
			Replicas:    cfg.ReplicasPerKernel,
			Policy:      cfg.ScalePolicy,
		}
	}
	// Any member's capacity-freeing transition wakes the shared queue.
	s.fed.SetCapacityNotifier(s.waitq.Notify)
	// Routing snapshots read the scheduler-level signals through this
	// callback: parked-waiter depth by home member, and the retirable
	// (empty) host count a scale-in could reclaim. Only Snapshot-building
	// policies (ScoredPolicy) invoke it; the closed-form trio pays nothing.
	s.fed.SetSnapshotExtras(func(member int) (int, int) {
		retirable := 0
		for _, fh := range s.members[member].hosts {
			if hostEmpty(fh) {
				retirable++
			}
		}
		return s.qdepth[member], retirable
	})

	// Pre-size metric columns from the source's expectation (see Run): for
	// a materialized trace the federation-wide series get exact hints;
	// per-member delta series split the task total evenly — an estimate, so
	// a hot member may still grow, but the bulk of the column is allocated
	// once. Lean recorders bound themselves and skip the hints.
	exp := src.Expect()
	sessions, numTasks := exp.Sessions, exp.Tasks
	ticks := int(end.Sub(start)/cfg.SampleEvery) + 2
	if !cfg.LeanMetrics {
		s.res.ActiveSessions.Grow(2 * sessions)
		s.res.Interactivity.Grow(numTasks)
		s.res.TCT.Grow(numTasks)
		for _, m := range s.members {
			m.res.ProvisionedGPUs.Grow(ticks + 64)
			m.res.CommittedGPUs.Grow(2*numTasks/len(s.members) + 16)
		}
	}

	if s.streaming {
		// Lazy admission (see the single-cluster injector): one event pulls
		// session after session, so pending events track concurrency.
		next, stop := iter.Pull(func(yield func(*trace.Session) bool) {
			s.srcErr = src.Sessions(yield)
		})
		s.stopPull = stop
		s.pull = next
		if first, ok := next(); ok {
			s.eng.ScheduleRunner(first.Start, &fedInjector{s: s, sess: first})
		}
	} else {
		s.eng.Reserve(2*sessions + numTasks + 16)
		for i, sess := range cfg.Trace.Sessions {
			sess := sess
			ss := &fedSession{
				src:    sess,
				req:    sess.Request,
				assig:  workload.Assign(s.wr),
				home:   i % len(s.members),
				holder: "fed/" + sess.ID,
			}
			s.members[ss.home].res.HomeSessions++
			s.eng.Schedule(sess.Start, func() { s.sessionStart(ss) })
			s.eng.Schedule(sess.End, func() { s.sessionEnd(ss) })
			for _, task := range sess.Tasks {
				task := task
				s.eng.Schedule(task.Submit, func() { s.taskArrive(ss, task) })
			}
		}
	}

	// A lease-managed worker skips its own autoscale ticks: the pool runs
	// the same decision once per barrier over the pooled member loads.
	s.scheduleSampling()
	if !cfg.leaseManaged {
		s.scheduleAutoscale()
	}
	return s, nil
}

// close releases the streaming source's iterator; safe to call twice.
func (s *fedSim) close() {
	if s.stopPull != nil {
		s.stopPull()
		s.stopPull = nil
	}
}

// finish surfaces a streaming-source error and computes the merged series
// and integrated hours. Call once, after the engine has run past the
// window's end.
func (s *fedSim) finish() (*FedResult, error) {
	if s.srcErr != nil {
		return nil, s.srcErr
	}
	s.finalize()
	return s.res, nil
}

func (s *fedSim) now() time.Time { return s.eng.Now() }

func (s *fedSim) addHost(member int) *fedHost {
	m := s.members[member]
	m.hostSeq++
	h := cluster.NewHost(fmt.Sprintf("%s-h%04d", m.spec.Name, m.hostSeq), m.spec.HostCapacity)
	if err := m.c.AddHost(h); err != nil {
		panic(err)
	}
	fh := &fedHost{h: h, member: member, warm: s.cfg.PrewarmPerHost}
	m.hosts = append(m.hosts, fh)
	s.byHost[h] = fh
	if s.faultsOn {
		s.armHostFaults(fh, m.hostSeq)
	}
	return fh
}

// ---- session lifecycle -------------------------------------------------

// placeSession places the session's R replicas within a single cluster,
// trying clusters in route-policy order.
func (s *fedSim) placeSession(ss *fedSession) bool {
	for _, idx := range s.cfg.Route.Order(s.fed, ss.home, &s.route) {
		m := s.members[idx]
		hosts, err := s.placement.SelectHosts(m.c, ss.req, s.cfg.ReplicasPerKernel)
		if err != nil {
			continue
		}
		ss.hosts = make([]*fedHost, len(hosts))
		for i, h := range hosts {
			_ = h.PlaceReplica(ss.replicaKeyFor(i+1), ss.req)
			ss.hosts[i] = s.byHost[h]
		}
		m.res.PlacedSessions++
		if idx == ss.home {
			s.res.LocalPlacements++
		} else {
			s.res.RemotePlacements++
		}
		return true
	}
	return false
}

func (s *fedSim) sessionStart(ss *fedSession) {
	if s.faultsOn {
		s.faultSessions = append(s.faultSessions, ss)
	}
	s.res.ActiveSessions.Delta(s.now(), 1)
	s.reserved.bump(s.now().UnixNano(), float64(ss.req.GPUs))
	if s.placeSession(ss) {
		return
	}
	// No cluster can place the kernel: scale out the home cluster
	// synchronously (as in the single-cluster simulator, the provisioning
	// delay is charged to session creation, not to any task).
	for i := 0; i < s.cfg.ReplicasPerKernel; i++ {
		s.addHost(ss.home)
	}
	s.res.ScaleOuts++
	s.members[ss.home].res.ScaleOuts++
	if !s.placeSession(ss) {
		ss.hosts = nil // pathological request; drop the session
	}
}

func (s *fedSim) sessionEnd(ss *fedSession) {
	if ss.closed {
		return
	}
	ss.closed = true
	if s.faultsOn {
		for i, live := range s.faultSessions {
			if live == ss {
				s.faultSessions = append(s.faultSessions[:i], s.faultSessions[i+1:]...)
				break
			}
		}
	}
	s.res.ActiveSessions.Delta(s.now(), -1)
	s.reserved.bump(s.now().UnixNano(), -float64(ss.req.GPUs))
	for i, fh := range ss.hosts {
		if fh == nil {
			continue // crash-emptied slot (faults.go)
		}
		_ = fh.h.RemoveReplica(ss.replicaKeyFor(i + 1))
	}
}

// ---- task pipeline -----------------------------------------------------

func (s *fedSim) taskArrive(ss *fedSession, task trace.Task) {
	if ss.running {
		ss.queue = append(ss.queue, task)
		return
	}
	ss.running = true
	s.runTask(ss, task, s.now())
}

func (s *fedSim) runTask(ss *fedSession, task trace.Task, submit time.Time) {
	if s.tryTask(ss, task, submit) {
		return
	}
	// Park until capacity frees anywhere in the federation, keeping the
	// home member's queue-depth gauge (a RoutingSnapshot signal) current
	// for the park's whole lifetime.
	home := ss.home
	s.qdepth[home]++
	retry := func() bool {
		if !s.tryTask(ss, task, submit) {
			return false
		}
		s.qdepth[home]--
		return true
	}
	if s.cfg.SLOAware {
		s.waitq.WaitClass(ss.src.SLO.Weight(), retry)
	} else {
		s.waitq.Wait(retry)
	}
}

func (s *fedSim) finishTask(ss *fedSession, submit time.Time, interactivity time.Duration) {
	s.res.Interactivity.Add(interactivity.Seconds())
	s.res.TCT.Add(s.now().Sub(submit).Seconds())
	if s.res.ClassDelay != nil {
		s.res.ClassDelay[ss.src.SLO.OrDefault()].Add(interactivity.Seconds())
	}
	s.res.Tasks++
	ss.running = false
	ss.cur = nil
	ss.restarts = 0
	if len(ss.queue) > 0 {
		next := ss.queue[0]
		ss.queue = ss.queue[1:]
		ss.running = true
		s.runTask(ss, next, s.now())
	}
}

func (s *fedSim) fedTaskReq(ss *fedSession, task trace.Task) resources.Spec {
	return clampTaskReq(ss.req, task.GPUs)
}

// tryTask attempts one commit-or-migrate step (the NotebookOS task path
// generalized across clusters) and reports whether it made progress.
func (s *fedSim) tryTask(ss *fedSession, task trace.Task, submit time.Time) bool {
	if len(ss.hosts) == 0 {
		return true // dropped session: swallow its tasks
	}
	lat := s.cfg.Latencies
	req := s.fedTaskReq(ss, task)
	migrationDelay := s.now().Sub(submit)

	executor := 0
	if ss.lastExecutor > 0 && ss.lastExecutor <= len(ss.hosts) &&
		ss.hosts[ss.lastExecutor-1] != nil &&
		ss.hosts[ss.lastExecutor-1].h.CanCommit(req) {
		executor = ss.lastExecutor
	}
	if executor == 0 {
		for i, fh := range ss.hosts {
			if fh != nil && fh.h.CanCommit(req) {
				executor = i + 1
				break
			}
		}
	}
	if executor == 0 {
		return s.tryFedMigrate(ss, task, submit)
	}
	fh := ss.hosts[executor-1]
	holder := ss.holder
	if err := fh.h.Commit(holder, req); err != nil {
		return s.tryFedMigrate(ss, task, submit)
	}
	if migrationDelay == 0 {
		s.res.ImmediateCommits++
	}
	ss.lastExecutor = executor
	s.members[fh.member].res.Tasks++

	// A replica living outside the session's home cluster serves requests
	// across the federation boundary: request and reply each pay one
	// inter-cluster crossing (summed per direction, so asymmetric
	// matrices charge correctly).
	var wan time.Duration
	if fh.member != ss.home {
		wan = s.fed.RoundTrip(ss.home, fh.member)
		s.res.RemoteExecutions++
	}

	delay := migrationDelay +
		lat.GSProcess(s.rng) +
		lat.PreProcess(s.rng) +
		lat.Election(s.rng) +
		lat.Transfer.LoadTime(ss.assig.Model.ParamBytes, task.GPUs) +
		lat.Hop(s.rng) + lat.Hop(s.rng) +
		wan

	// The pipeline runs as a fedTask state machine: one allocation per
	// task, re-scheduled phase after phase through pooled Runner events.
	ft := &fedTask{s: s, ss: ss, task: task, submit: submit, fh: fh, delay: delay}
	ss.cur = ft
	s.eng.ScheduleRunner(submit.Add(delay), ft)
	return true
}

// tryFedMigrate handles the all-YIELD path across the federation: find a
// target host anywhere (clusters in route-policy order, most-idle host
// within the chosen cluster), pay container plus checkpoint-restore costs
// — plus two inter-cluster crossings when the replica changes cluster —
// swap the replica, and resubmit. With no target anywhere, one scale-out
// of the home cluster is triggered and the caller parks on the shared
// wait-queue until *any* cluster frees capacity.
func (s *fedSim) tryFedMigrate(ss *fedSession, task trace.Task, submit time.Time) bool {
	lat := s.cfg.Latencies
	req := s.fedTaskReq(ss, task)

	// The failed election itself costs one election round.
	electionCost := lat.Election(s.rng)

	var target *fedHost
	for _, idx := range s.cfg.Route.Order(s.fed, ss.home, &s.route) {
		bestIdle := -1
		for _, fh := range s.members[idx].hosts {
			if fedHostsContain(ss.hosts, fh) || !fh.h.CanCommit(req) {
				continue
			}
			if idle := fh.h.IdleGPUs(); idle > bestIdle {
				bestIdle = idle
				target = fh
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		// Scale out the home cluster; the AddHost notification wakes the
		// shared wait-queue (as does a Release in any other cluster).
		if s.members[ss.home].pendingHosts == 0 {
			s.provisionHosts(ss.home, 1)
		}
		return false
	}

	// Victim: a crash-emptied slot (faults.go) is refilled first;
	// otherwise the replica on the fullest host.
	victim := 0
	worst := math.MaxInt
	for i, fh := range ss.hosts {
		if fh == nil {
			victim = i
			break
		}
		if idle := fh.h.IdleGPUs(); idle < worst {
			worst = idle
			victim = i
		}
	}
	old := ss.hosts[victim]
	cross := old != nil && old.member != target.member

	var extra time.Duration
	if target.warm > 0 {
		target.warm--
		s.res.WarmStarts++
		extra += lat.WarmAttach(s.rng)
		tfh := target
		s.eng.Defer(lat.ColdStart(s.rng), func() { tfh.warm++ })
	} else {
		s.res.ColdStarts++
		extra += lat.ColdStart(s.rng)
	}
	// Persist + restore checkpointed state through the data store; a
	// cross-cluster move pays the federation boundary in both directions.
	wrLat := lat.Store.PutLatency(ss.assig.Model.ParamBytes, s.rng)
	rdLat := lat.Store.GetLatency(ss.assig.Model.ParamBytes, s.rng)
	extra += wrLat + rdLat + electionCost
	if cross {
		extra += s.fed.RoundTrip(old.member, target.member)
	}

	key := ss.replicaKeyFor(victim + 1)
	if old != nil {
		_ = old.h.RemoveReplica(key)
	}
	_ = target.h.PlaceReplica(key, ss.req)
	ss.hosts[victim] = target
	ss.lastExecutor = victim + 1
	s.res.Migrations++
	s.members[target.member].res.MigrationsIn++
	if cross {
		s.res.CrossMigrations++
	}

	s.eng.Defer(extra, func() {
		s.runTask(ss, task, submit)
	})
	return true
}

// fedHostsContain reports whether fh is one of the session's replica hosts.
func fedHostsContain(hosts []*fedHost, fh *fedHost) bool {
	for _, x := range hosts {
		if x == fh {
			return true
		}
	}
	return false
}

func (s *fedSim) markTraining(member int, task trace.Task, start bool) {
	g := float64(task.GPUs)
	if !start {
		g = -g
	}
	s.members[member].res.CommittedGPUs.Delta(s.now(), g)
}

// ---- periodic sampling & autoscaling ------------------------------------

func (s *fedSim) scheduleSampling() {
	var tick func()
	tick = func() {
		s.sampleProvisioned()
		if s.now().Before(s.end) {
			s.eng.DeferLate(s.cfg.SampleEvery, tick)
		}
	}
	s.eng.DeferLate(0, tick)
}

func (s *fedSim) sampleProvisioned() {
	at := s.now()
	for _, m := range s.members {
		m.res.ProvisionedGPUs.Set(at, float64(m.c.TotalGPUs()))
	}
}

func (s *fedSim) scheduleAutoscale() {
	var tick func()
	tick = func() {
		if s.autoscaler != nil {
			s.autoscalePooled()
		} else {
			for i := range s.members {
				s.autoscaleMember(i)
			}
		}
		if s.now().Before(s.end) {
			s.eng.DeferLate(s.cfg.AutoscaleInterval, tick)
		}
	}
	s.eng.DeferLate(s.cfg.AutoscaleInterval, tick)
}

// autoscalePooled runs one pooled evaluation: snapshot every member's O(1)
// counters, let the FederatedAutoscaler make the single federation-wide
// decision, and execute it — provision hosts on the chosen member after
// the provisioning latency, or retire up to the decided number of empty
// hosts from it. Per-member MinHosts floors do not apply here; the
// autoscaler enforces the federation-wide floor and the placement anchor
// (some member always keeps R hosts).
func (s *fedSim) autoscalePooled() {
	if s.loads == nil {
		s.loads = make([]federation.MemberLoad, len(s.members))
	}
	loads := s.loads
	for i, m := range s.members {
		l := federation.MemberLoad{
			Hosts:          m.c.NumHosts(),
			PendingHosts:   m.pendingHosts,
			GPUsPerHost:    m.spec.HostCapacity.GPUs,
			CommittedGPUs:  m.c.CommittedGPUs(),
			SubscribedGPUs: m.c.SubscribedGPUs(),
		}
		for _, fh := range m.hosts {
			if hostEmpty(fh) {
				l.EmptyHosts++
			}
		}
		loads[i] = l
	}
	dec := s.autoscaler.Decide(loads)
	switch dec.Action {
	case federation.ScaleOut:
		s.provisionHosts(dec.Member, dec.Hosts)
	case federation.ScaleIn:
		m := s.members[dec.Member]
		released := 0
		for i := 0; i < len(m.hosts) && released < dec.Hosts; {
			if s.removeHostIfEmpty(m, i) {
				released++
				continue
			}
			i++
		}
		if released > 0 {
			s.res.ScaleIns++
			m.res.ScaleIns++
			s.sampleProvisioned()
		}
	}
}

// provisionHosts starts need hosts toward member idx: they count as
// pending (toward autoscaler capacity) immediately and land after the
// provisioning latency.
func (s *fedSim) provisionHosts(idx, need int) {
	s.provisionHostsAfter(idx, need, s.cfg.Latencies.HostProvision(s.rng))
}

// provisionHostsAfter is provisionHosts with the provisioning latency as
// a parameter, so the lease pool can charge a pool-rng draw (one per
// pooled decision) instead of a worker-rng draw.
func (s *fedSim) provisionHostsAfter(idx, need int, provision time.Duration) {
	m := s.members[idx]
	m.pendingHosts += need
	s.res.ScaleOuts++
	m.res.ScaleOuts++
	s.eng.Defer(provision, func() {
		for i := 0; i < need; i++ {
			s.addHost(idx)
		}
		m.pendingHosts -= need
		s.sampleProvisioned()
	})
}

// hostEmpty reports whether a host holds no replicas and no commitments —
// the one definition of "retirable" shared by the scale-in executors and
// the EmptyHosts gauge the pooled autoscaler decides on, so the gauge can
// never promise removals the executor refuses.
func hostEmpty(fh *fedHost) bool {
	return fh.h.NumReplicas() == 0 && fh.h.Committed().IsZero()
}

// removeHostIfEmpty retires m.hosts[i] when it is empty, unwiring it from
// the member and the host index; reports whether it was removed. Both
// autoscaling modes retire through this so the emptiness predicate and
// the bookkeeping cannot drift apart.
func (s *fedSim) removeHostIfEmpty(m *fedMember, i int) bool {
	fh := m.hosts[i]
	if !hostEmpty(fh) {
		return false
	}
	if err := m.c.RemoveHost(fh.h.ID); err != nil {
		return false
	}
	m.hosts = append(m.hosts[:i], m.hosts[i+1:]...)
	delete(s.byHost, fh.h)
	s.noteHosts(-1)
	return true
}

// autoscaleMember runs one member's autoscaler evaluation: each cluster
// scales against its own committed load (federations do not pool
// autoscaling decisions, only placements).
func (s *fedSim) autoscaleMember(idx int) {
	m := s.members[idx]
	gpusPerHost := m.spec.HostCapacity.GPUs
	expected := s.cfg.ScaleFactor * float64(m.c.CommittedGPUs())
	total := m.c.TotalGPUs() + m.pendingHosts*gpusPerHost

	if float64(total) < expected {
		need := int(math.Ceil((expected - float64(total)) / float64(gpusPerHost)))
		s.provisionHosts(idx, need)
		return
	}
	// Scale in: release up to 2 idle servers while above the floor.
	if float64(total)-float64(gpusPerHost) > expected && m.c.NumHosts() > m.spec.MinHosts {
		released := 0
		for i := 0; i < len(m.hosts); {
			if released >= 2 || m.c.NumHosts() <= m.spec.MinHosts {
				break
			}
			removed := s.removeHostIfEmpty(m, i)
			if removed {
				released++
			}
			if float64(m.c.TotalGPUs())-float64(gpusPerHost) <= expected {
				break
			}
			if !removed {
				i++
			}
		}
		if released > 0 {
			s.res.ScaleIns++
			m.res.ScaleIns++
			s.sampleProvisioned()
		}
	}
}

// finalize merges the per-cluster series and computes integrated hours.
func (s *fedSim) finalize() {
	start, end := s.start, s.end
	prov := make([]*metrics.Timeline, len(s.members))
	comm := make([]*metrics.Timeline, len(s.members))
	for i, m := range s.members {
		prov[i] = m.res.ProvisionedGPUs
		comm[i] = m.res.CommittedGPUs
		m.res.FinalHosts = m.c.NumHosts()
	}
	s.res.ProvisionedGPUs = metrics.MergeTimelines(prov...)
	s.res.CommittedGPUs = metrics.MergeTimelines(comm...)
	s.res.ActiveGPUHours = s.res.CommittedGPUs.Integral(start, end)
	s.res.ProvisionedGPUHours = s.res.ProvisionedGPUs.Integral(start, end)
	if s.streaming {
		s.res.ReservedGPUHours = s.reserved.finish(end.UnixNano())
	} else {
		s.res.ReservedGPUHours = s.cfg.Trace.ReservedGPUs().Integral(start, end)
	}
}
