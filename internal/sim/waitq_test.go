package sim

import (
	"testing"
	"time"

	"notebookos/internal/des"
)

var wqT0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// TestWaitQueueFIFOWakeupOrder: waiters that can all make progress retry
// (and succeed) in arrival order within one drain.
func TestWaitQueueFIFOWakeupOrder(t *testing.T) {
	eng := des.New(wqT0)
	wq := newCapacityWaitQueue(eng)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		wq.Wait(func() bool { order = append(order, i); return true })
	}
	eng.After(time.Second, wq.Notify)
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("woke %d waiters, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order = %v, want FIFO", order)
		}
	}
	if wq.Len() != 0 {
		t.Fatalf("queue not drained: %d left", wq.Len())
	}
}

// TestWaitQueueBlockedWaitersStayQueued: a waiter that cannot make
// progress stays parked, in order, and is retried on the next notify.
func TestWaitQueueBlockedWaitersStayQueued(t *testing.T) {
	eng := des.New(wqT0)
	wq := newCapacityWaitQueue(eng)
	capacity := 0
	var acquired []int
	for i := 0; i < 3; i++ {
		i := i
		wq.Wait(func() bool {
			if capacity == 0 {
				return false
			}
			capacity--
			acquired = append(acquired, i)
			return true
		})
	}
	// First notification frees one unit: only waiter 0 proceeds.
	eng.After(time.Second, func() { capacity = 1; wq.Notify() })
	eng.RunUntil(wqT0.Add(2 * time.Second))
	if len(acquired) != 1 || acquired[0] != 0 || wq.Len() != 2 {
		t.Fatalf("after 1 unit: acquired=%v queued=%d", acquired, wq.Len())
	}
	// Second notification frees two: waiters 1 and 2 proceed in order.
	eng.After(time.Second, func() { capacity = 2; wq.Notify() })
	eng.Run()
	if len(acquired) != 3 || acquired[1] != 1 || acquired[2] != 2 {
		t.Fatalf("final acquisition order = %v, want [0 1 2]", acquired)
	}
}

// TestWaitQueueNoLostWakeups: a notification arriving in the same event
// round as (but after) a failed attempt still wakes the waiter — the
// enqueue-then-notify ordering cannot drop a wakeup.
func TestWaitQueueNoLostWakeups(t *testing.T) {
	eng := des.New(wqT0)
	wq := newCapacityWaitQueue(eng)
	capacity := 0
	woke := false
	eng.After(time.Second, func() {
		// Attempt fails; park.
		wq.Wait(func() bool {
			if capacity == 0 {
				return false
			}
			woke = true
			return true
		})
		// Capacity frees later within the same virtual second.
		eng.After(0, func() { capacity = 1; wq.Notify() })
	})
	eng.Run()
	if !woke {
		t.Fatal("waiter never woke despite a post-enqueue notification")
	}
}

// TestWaitQueueCoalescesNotifies: many notifications at one timestamp
// produce a single drain (one retry per waiter), not a thundering herd.
func TestWaitQueueCoalescesNotifies(t *testing.T) {
	eng := des.New(wqT0)
	wq := newCapacityWaitQueue(eng)
	attempts := 0
	wq.Wait(func() bool { attempts++; return false })
	eng.After(time.Second, func() {
		for i := 0; i < 10; i++ {
			wq.Notify()
		}
	})
	eng.RunUntil(wqT0.Add(2 * time.Second))
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (coalesced)", attempts)
	}
	if wq.Len() != 1 {
		t.Fatalf("waiter should remain parked, queue len = %d", wq.Len())
	}
}

// TestWaitQueueWaitersAddedDuringDrain: a waiter enqueued while a drain
// is running (e.g. a woken task immediately blocking again under a new
// identity) lands behind the kept waiters and survives to the next round.
func TestWaitQueueWaitersAddedDuringDrain(t *testing.T) {
	eng := des.New(wqT0)
	wq := newCapacityWaitQueue(eng)
	var order []string
	blockedOnce := false
	wq.Wait(func() bool {
		if !blockedOnce {
			blockedOnce = true
			// Spawn a new waiter mid-drain.
			wq.Wait(func() bool { order = append(order, "spawned"); return true })
			return false
		}
		order = append(order, "original")
		return true
	})
	eng.After(time.Second, wq.Notify)
	eng.After(2*time.Second, wq.Notify)
	eng.Run()
	if len(order) != 2 || order[0] != "original" || order[1] != "spawned" {
		t.Fatalf("order = %v, want [original spawned] (FIFO across drains)", order)
	}
}
