package sim

import (
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/trace"
)

// Task state machines
//
// Each policy's task pipeline used to be a chain of nested closures: the
// commit handler allocated the training-start closure, which allocated the
// completion closure, which allocated the return closure — three to four
// heap allocations (plus captured-variable boxes) per executed task, the
// last per-task allocation source left in the hot path. Each pipeline is
// now a single struct implementing des.Runner: one allocation per task,
// re-scheduled phase after phase through the engine's pooled-event
// ScheduleRunner/DeferRunner (which allocate nothing).
//
// Byte-identity contract: these machines replicate the closure chains they
// replaced exactly — same event-scheduling topology (so engine sequence
// numbers, and therefore tie-breaks, are unchanged) and same RNG draw order
// within each phase. CI's benchsnap gated metrics pin this.
//
// Each machine also implements the fault layer's runningTask interface
// (faults.go): abort marks the machine dead — already-scheduled phase
// events no-op when they fire — unwinds any in-progress training
// accounting into LostGPUHours, releases the task's exclusive commit, and
// hands the task back for checkpoint-restore resubmission. The dead flag
// and tstartNS stamp cost nothing on the fault-free path and change no
// scheduling, preserving the byte-identity contract.

// resvTask drives the Reservation pipeline. Its two lead events (training
// start at submit+delay, completion at submit+delay+duration) are both
// scheduled up front, in that order, exactly as the closure version did;
// task durations are strictly positive, so the phases fire in order.
type resvTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	delay  time.Duration
	post   time.Duration
	tstart int64
	phase  uint8
	dead   bool
}

func (t *resvTask) Fire() {
	if t.dead {
		return
	}
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		t.tstart = s.now().UnixNano()
		s.markTraining(t.ss, t.task, s.now(), true)
	case 1: // execution done: persist state synchronously (Fig. 16 step 9)
		t.phase = 2
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		s.sampleStep(StepExec, t.task.Duration)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned
		s.markTraining(t.ss, t.task, s.now(), false)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

// runsOn: a reservation task always executes on the session's reserved
// host.
func (t *resvTask) runsOn(h *cluster.Host) bool {
	return len(t.ss.hosts) > 0 && t.ss.hosts[0] == h
}

// abort kills the machine. The session-lifetime GPU commitment stays with
// the session (repairReservation re-binds it), so nothing releases here.
func (t *resvTask) abort() (trace.Task, time.Time) {
	t.dead = true
	if t.phase >= 1 {
		t.s.markTraining(t.ss, t.task, t.s.now(), false)
		t.s.noteLostGPUHours(t.tstart, t.task.GPUs)
	}
	return t.task, t.submit
}

// batchTask drives the Batch pipeline from the training-start event on
// (commit, cold start, and the delay draws happen in tryBatchTask).
type batchTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	h      *cluster.Host
	delay  time.Duration
	post   time.Duration
	tstart int64
	phase  uint8
	dead   bool
}

func (t *batchTask) Fire() {
	if t.dead {
		return
	}
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		t.tstart = s.now().UnixNano()
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done: persist, then return
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned; container terminates
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

func (t *batchTask) runsOn(h *cluster.Host) bool { return t.h == h }

// abort kills the machine: the per-task commit releases (a no-op charge
// on a crashed host — the cluster already dropped its aggregates) and any
// started training unwinds.
func (t *batchTask) abort() (trace.Task, time.Time) {
	t.dead = true
	if t.phase >= 1 {
		t.s.markTraining(t.ss, t.task, t.s.now(), false)
		t.s.noteLostGPUHours(t.tstart, t.task.GPUs)
	}
	_ = t.h.Release(t.ss.holder)
	return t.task, t.submit
}

// nbosTask drives the NotebookOS pipeline from the training-start event on
// (executor selection, commit, and the delay draws happen in tryNbosTask).
type nbosTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	h      *cluster.Host
	delay  time.Duration
	off    time.Duration
	tstart int64
	phase  uint8
	dead   bool
}

func (t *nbosTask) Fire() {
	if t.dead {
		return
	}
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		t.tstart = s.now().UnixNano()
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		// State replication is off the critical path (§3.2.4): the reply
		// returns after the GPU offload only.
		off := s.cfg.Latencies.Transfer.OffloadTime(t.ss.assig.Model.ParamBytes)
		s.sampleStep(StepPostProc, off)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		// Record the async replication costs for Fig. 11.
		s.res.SyncLatency.Add(s.cfg.Latencies.Sync(s.rng).Seconds())
		s.res.WriteLatency.Add(s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng).Seconds())
		t.off = off
		s.eng.DeferRunner(off+ret, t)
	case 2: // reply returned
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.off)
	}
}

func (t *nbosTask) runsOn(h *cluster.Host) bool { return t.h == h }

// abort kills the machine (executor death or quorum loss — the repair
// logic in faults.go decides which): the executor's commit releases and
// any started training unwinds.
func (t *nbosTask) abort() (trace.Task, time.Time) {
	t.dead = true
	if t.phase >= 1 {
		t.s.markTraining(t.ss, t.task, t.s.now(), false)
		t.s.noteLostGPUHours(t.tstart, t.task.GPUs)
	}
	_ = t.h.Release(t.ss.holder)
	return t.task, t.submit
}

// lcpTask drives the LCP pipeline from the training-start event on (warm
// container attach and the delay draws happen in tryLCPTask). It holds the
// simHost, not just the cluster host, because the container returns to the
// target's warm pool at completion.
type lcpTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	target *simHost
	delay  time.Duration
	post   time.Duration
	tstart int64
	phase  uint8
	dead   bool
}

func (t *lcpTask) Fire() {
	if t.dead {
		return
	}
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		t.tstart = s.now().UnixNano()
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done: persist, then return
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned; container goes back to the warm pool
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.target.h.Release(t.ss.holder)
		t.target.warm++
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

func (t *lcpTask) runsOn(h *cluster.Host) bool { return t.target.h == h }

// abort kills the machine: the commit releases, training unwinds, and the
// container does NOT return to the warm pool — it died with its host.
func (t *lcpTask) abort() (trace.Task, time.Time) {
	t.dead = true
	if t.phase >= 1 {
		t.s.markTraining(t.ss, t.task, t.s.now(), false)
		t.s.noteLostGPUHours(t.tstart, t.task.GPUs)
	}
	_ = t.target.h.Release(t.ss.holder)
	return t.task, t.submit
}

// fedTask drives the federated pipeline from the training-start event on
// (placement, commit, WAN charging, and the delay draws happen in tryTask).
type fedTask struct {
	s      *fedSim
	ss     *fedSession
	task   trace.Task
	submit time.Time
	fh     *fedHost
	delay  time.Duration
	tstart int64
	phase  uint8
	dead   bool
}

func (t *fedTask) Fire() {
	if t.dead {
		return
	}
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		t.tstart = s.now().UnixNano()
		s.markTraining(t.fh.member, t.task, true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done
		t.phase = 2
		off := s.cfg.Latencies.Transfer.OffloadTime(t.ss.assig.Model.ParamBytes)
		ret := s.cfg.Latencies.Hop(s.rng)
		s.eng.DeferRunner(off+ret, t)
	case 2: // reply returned
		s.markTraining(t.fh.member, t.task, false)
		_ = t.fh.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay)
	}
}

func (t *fedTask) runsOn(h *cluster.Host) bool { return t.fh.h == h }

// abort kills the machine: the executor's commit releases and any started
// training unwinds against the executor's member cluster.
func (t *fedTask) abort() (trace.Task, time.Time) {
	t.dead = true
	if t.phase >= 1 {
		t.s.markTraining(t.fh.member, t.task, false)
		t.s.noteLostGPUHours(t.tstart, t.task.GPUs)
	}
	_ = t.fh.h.Release(t.ss.holder)
	return t.task, t.submit
}
