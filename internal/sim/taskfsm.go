package sim

import (
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/trace"
)

// Task state machines
//
// Each policy's task pipeline used to be a chain of nested closures: the
// commit handler allocated the training-start closure, which allocated the
// completion closure, which allocated the return closure — three to four
// heap allocations (plus captured-variable boxes) per executed task, the
// last per-task allocation source left in the hot path. Each pipeline is
// now a single struct implementing des.Runner: one allocation per task,
// re-scheduled phase after phase through the engine's pooled-event
// ScheduleRunner/DeferRunner (which allocate nothing).
//
// Byte-identity contract: these machines replicate the closure chains they
// replaced exactly — same event-scheduling topology (so engine sequence
// numbers, and therefore tie-breaks, are unchanged) and same RNG draw order
// within each phase. CI's benchsnap gated metrics pin this.

// resvTask drives the Reservation pipeline. Its two lead events (training
// start at submit+delay, completion at submit+delay+duration) are both
// scheduled up front, in that order, exactly as the closure version did;
// task durations are strictly positive, so the phases fire in order.
type resvTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	delay  time.Duration
	post   time.Duration
	phase  uint8
}

func (t *resvTask) Fire() {
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		s.markTraining(t.ss, t.task, s.now(), true)
	case 1: // execution done: persist state synchronously (Fig. 16 step 9)
		t.phase = 2
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		s.sampleStep(StepExec, t.task.Duration)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned
		s.markTraining(t.ss, t.task, s.now(), false)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

// batchTask drives the Batch pipeline from the training-start event on
// (commit, cold start, and the delay draws happen in tryBatchTask).
type batchTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	h      *cluster.Host
	delay  time.Duration
	post   time.Duration
	phase  uint8
}

func (t *batchTask) Fire() {
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done: persist, then return
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned; container terminates
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

// nbosTask drives the NotebookOS pipeline from the training-start event on
// (executor selection, commit, and the delay draws happen in tryNbosTask).
type nbosTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	h      *cluster.Host
	delay  time.Duration
	off    time.Duration
	phase  uint8
}

func (t *nbosTask) Fire() {
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		// State replication is off the critical path (§3.2.4): the reply
		// returns after the GPU offload only.
		off := s.cfg.Latencies.Transfer.OffloadTime(t.ss.assig.Model.ParamBytes)
		s.sampleStep(StepPostProc, off)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		// Record the async replication costs for Fig. 11.
		s.res.SyncLatency.Add(s.cfg.Latencies.Sync(s.rng).Seconds())
		s.res.WriteLatency.Add(s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng).Seconds())
		t.off = off
		s.eng.DeferRunner(off+ret, t)
	case 2: // reply returned
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.off)
	}
}

// lcpTask drives the LCP pipeline from the training-start event on (warm
// container attach and the delay draws happen in tryLCPTask). It holds the
// simHost, not just the cluster host, because the container returns to the
// target's warm pool at completion.
type lcpTask struct {
	s      *sim
	ss     *simSession
	task   trace.Task
	submit time.Time
	target *simHost
	delay  time.Duration
	post   time.Duration
	phase  uint8
}

func (t *lcpTask) Fire() {
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		s.markTraining(t.ss, t.task, s.now(), true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done: persist, then return
		t.phase = 2
		s.sampleStep(StepExec, t.task.Duration)
		post := s.cfg.Latencies.Store.PutLatency(t.ss.assig.Model.ParamBytes, s.rng)
		s.res.WriteLatency.Add(post.Seconds())
		s.sampleStep(StepPostProc, post)
		ret := s.sampleStep(StepReturn, s.cfg.Latencies.Hop(s.rng))
		t.post = post
		s.eng.DeferRunner(post+ret, t)
	case 2: // reply returned; container goes back to the warm pool
		s.markTraining(t.ss, t.task, s.now(), false)
		_ = t.target.h.Release(t.ss.holder)
		t.target.warm++
		s.finishTask(t.ss, t.submit, t.delay, t.task.Duration, t.post)
	}
}

// fedTask drives the federated pipeline from the training-start event on
// (placement, commit, WAN charging, and the delay draws happen in tryTask).
type fedTask struct {
	s      *fedSim
	ss     *fedSession
	task   trace.Task
	submit time.Time
	fh     *fedHost
	delay  time.Duration
	phase  uint8
}

func (t *fedTask) Fire() {
	s := t.s
	switch t.phase {
	case 0: // training starts
		t.phase = 1
		s.markTraining(t.fh.member, t.task, true)
		s.eng.DeferRunner(t.task.Duration, t)
	case 1: // execution done
		t.phase = 2
		off := s.cfg.Latencies.Transfer.OffloadTime(t.ss.assig.Model.ParamBytes)
		ret := s.cfg.Latencies.Hop(s.rng)
		s.eng.DeferRunner(off+ret, t)
	case 2: // reply returned
		s.markTraining(t.fh.member, t.task, false)
		_ = t.fh.h.Release(t.ss.holder)
		s.finishTask(t.ss, t.submit, t.delay)
	}
}
