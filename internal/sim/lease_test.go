package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/trace"
)

// capacityFingerprint collapses a Result to the cluster-determined
// values the capacity ledger owns under LeasePool — everything except
// the shard-merged latency distributions and session/task counts.
type capacityFingerprint struct {
	immediate, reuse            int
	migrations, failed          int
	scaleOuts, scaleIns         int
	coldStarts, warmStarts      int
	events                      int
	activeGPUHours, serverHours float64
	reservedHours, standbyHours float64
	provisionedIntegral         float64
	committedIntegral           float64
	srMax                       float64
}

func capacityFingerprintOf(tr *trace.Trace, r *Result) capacityFingerprint {
	return capacityFingerprint{
		immediate: r.ImmediateCommits, reuse: r.ExecutorReuse,
		migrations: r.Migrations, failed: r.FailedMigrations,
		scaleOuts: r.ScaleOuts, scaleIns: r.ScaleIns,
		coldStarts: r.ColdStarts, warmStarts: r.WarmStarts,
		events:              len(r.Events),
		activeGPUHours:      r.ActiveGPUHours,
		serverHours:         r.ServerHours,
		reservedHours:       r.ReservedGPUHours,
		standbyHours:        r.StandbyReplicaHours,
		provisionedIntegral: r.ProvisionedGPUs.Integral(tr.Start, tr.End),
		committedIntegral:   r.CommittedGPUs.Integral(tr.Start, tr.End),
		srMax:               r.SR.Max(),
	}
}

// TestLeasePoolCapacityExact pins the lease pool's defining guarantee:
// under ShardCapacity == LeasePool every cluster-determined metric of a
// sharded run — provisioned/committed integrals, scale and migration
// counters, integrated hours, the event log — is byte-identical to the
// unsharded run's, at every shard count, because the capacity ledger IS
// the unsharded run. Only the latency distributions keep a shard-local
// approximation.
func TestLeasePoolCapacityExact(t *testing.T) {
	tr := trace.MustGenerate(trace.AdobeExcerptConfig(42))
	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 42}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := capacityFingerprintOf(tr, base)
	for _, k := range []int{2, 4, 8} {
		c := cfg
		c.ShardCapacity = LeasePool
		res, err := RunSharded(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := capacityFingerprintOf(tr, res); got != want {
			t.Errorf("k=%d: lease-pool capacity metrics diverged from unsharded run:\n  base:  %+v\n  shard: %+v", k, want, got)
		}
		if res.Tasks != base.Tasks || res.Sessions != base.Sessions {
			t.Errorf("k=%d: sharding lost work: %d/%d tasks, %d/%d sessions",
				k, res.Tasks, base.Tasks, res.Sessions, base.Sessions)
		}
	}
}

// TestLeasePoolFederatedCapacityExact is the federated twin: per-cluster
// series, routing counters, scale counters, and the saved-GPU-hours
// headline all match RunFederated exactly under LeasePool, including the
// PooledAutoscale path (the ledger's FederatedAutoscaler decides once
// per tick over the whole — pooled — workload).
func TestLeasePoolFederatedCapacityExact(t *testing.T) {
	tr := shardQuickTrace(t, 55)
	cfg := FedConfig{
		Trace:           tr,
		Clusters:        DefaultFedClusters(4, 30),
		Route:           federation.LeastSubscribed{},
		PooledAutoscale: true,
		Seed:            17,
	}
	base, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.ShardCapacity = LeasePool
	for _, k := range []int{2, 3} {
		res, err := RunFederatedSharded(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := base.GPUHoursSaved(), res.GPUHoursSaved(); math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Errorf("k=%d: saved GPU-hours diverged: base %.3f, sharded %.3f", k, a, b)
		}
		if res.ScaleOuts != base.ScaleOuts || res.ScaleIns != base.ScaleIns {
			t.Errorf("k=%d: scale counters diverged: so=%d/%d si=%d/%d",
				k, res.ScaleOuts, base.ScaleOuts, res.ScaleIns, base.ScaleIns)
		}
		if res.LocalPlacements != base.LocalPlacements || res.RemotePlacements != base.RemotePlacements {
			t.Errorf("k=%d: routing counters diverged", k)
		}
		for m := range base.Clusters {
			bc, rc := base.Clusters[m], res.Clusters[m]
			if rc.FinalHosts != bc.FinalHosts || rc.ScaleOuts != bc.ScaleOuts || rc.ScaleIns != bc.ScaleIns {
				t.Errorf("k=%d member %d: per-cluster capacity diverged: hosts=%d/%d so=%d/%d si=%d/%d",
					k, m, rc.FinalHosts, bc.FinalHosts, rc.ScaleOuts, bc.ScaleOuts, rc.ScaleIns, bc.ScaleIns)
			}
			a := bc.ProvisionedGPUs.Integral(tr.Start, tr.End)
			b := rc.ProvisionedGPUs.Integral(tr.Start, tr.End)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Errorf("k=%d member %d: provisioned integral diverged: %.3f vs %.3f", k, m, a, b)
			}
		}
		if res.Tasks != base.Tasks {
			t.Errorf("k=%d: task count diverged: %d vs %d", k, res.Tasks, base.Tasks)
		}
	}
}

// TestLeasePoolDoubleRunByteIdentical: the lease pool's barrier protocol
// must not introduce scheduling-dependent state — two identical runs
// produce identical results, including the shard-merged latency
// distributions.
func TestLeasePoolDoubleRunByteIdentical(t *testing.T) {
	tr := shardQuickTrace(t, 61)
	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, ShardCapacity: LeasePool}
	a, err := RunSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprintOf(tr, a), fingerprintOf(tr, b); fa != fb {
		t.Errorf("lease-pool double run diverged:\n  run1: %+v\n  run2: %+v", fa, fb)
	}
}

// TestLeasePoolStreamCapacityExact: the streaming sharded runner under
// LeasePool matches the unsharded streaming run's capacity metrics — the
// ledger replays its own unsplit stream of the same generator config.
// Task counts are only near-equal here: the streaming split thins the
// Poisson process with per-shard seeds, so the workers' union is
// distributionally — not samplewise — the ledger's workload (a
// pre-existing property of the streaming split, see trace.StreamGen).
func TestLeasePoolStreamCapacityExact(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(47)
	cfg := Config{Policy: PolicyNotebookOS, Hosts: 30, LeanMetrics: true, Seed: 11}
	base, err := RunStreamSharded(gcfg, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.ShardCapacity = LeasePool
	res, err := RunStreamSharded(gcfg, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleOuts != base.ScaleOuts || res.ScaleIns != base.ScaleIns {
		t.Errorf("scale counters diverged: so=%d/%d si=%d/%d",
			res.ScaleOuts, base.ScaleOuts, res.ScaleIns, base.ScaleIns)
	}
	if a, b := base.ServerHours, res.ServerHours; math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
		t.Errorf("server hours diverged: %.3f vs %.3f", a, b)
	}
	if res.Tasks == 0 || math.Abs(float64(res.Tasks-base.Tasks)) > 0.25*float64(base.Tasks) {
		t.Errorf("sharded task count implausible vs base: %d vs %d", res.Tasks, base.Tasks)
	}
}

// TestLeaseConservation is the lease-accounting property test: from
// randomized barrier snapshots, planLeases must (a) conserve the pool
// through transfers (Σ transfer == 0), (b) grant exactly the ledger
// deficit when the ledger is above the shards' total, (c) never retire
// below a shard's placement need, structural floor, or past the excess,
// and (d) never retire from a shard with parked waiters. Together these
// give the barrier invariant: outstanding leases + the plan's net grant
// equal the ledger's capacity whenever the ledger is at or above the
// shards' total.
func TestLeaseConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := leaseParams{GPUsPerHost: 8, Watermark: 3.0, Replicas: 3}
	for iter := 0; iter < 2000; iter++ {
		k := 1 + rng.Intn(6)
		loads := make([]shardLoad, k)
		total := 0
		for i := range loads {
			hosts := rng.Intn(20)
			idle := rng.Intn(hosts + 1)
			empty := rng.Intn(idle + 1)
			loads[i] = shardLoad{
				Hosts:          hosts,
				PendingHosts:   rng.Intn(3),
				EmptyHosts:     empty,
				IdleHosts:      idle,
				Waiters:        rng.Intn(3),
				CommittedGPUs:  rng.Intn(100),
				SubscribedGPUs: rng.Intn(400),
				MaxReqGPUs:     rng.Intn(9),
				Floor:          leaseFloor,
			}
			total += hosts + loads[i].PendingHosts
		}
		target := rng.Intn(2 * (total + 5))
		plan := planLeases(loads, target, p)

		sumT, sumP, sumR := 0, 0, 0
		for i := range loads {
			sumT += plan.Transfer[i]
			sumP += plan.Provision[i]
			sumR += plan.Retire[i]
			if plan.Provision[i] < 0 || plan.Retire[i] < 0 {
				t.Fatalf("iter %d: negative plan entry: %+v", iter, plan)
			}
			if plan.Retire[i] > 0 {
				if loads[i].Waiters > 0 {
					t.Fatalf("iter %d shard %d: retired from a shard with waiters", iter, i)
				}
				if left := loads[i].Hosts + plan.Transfer[i] - plan.Retire[i]; left < loads[i].Floor {
					t.Fatalf("iter %d shard %d: retired below floor: %d < %d", iter, i, left, loads[i].Floor)
				}
			}
		}
		if sumT != 0 {
			t.Fatalf("iter %d: transfers do not conserve the pool: Σ=%d (%v)", iter, sumT, plan.Transfer)
		}
		if sumP > 0 && sumR > 0 {
			t.Fatalf("iter %d: plan both grants and retires: %+v", iter, plan)
		}
		if target >= total {
			if sumP != target-total {
				t.Fatalf("iter %d: grant misses the ledger deficit: got %d, want %d", iter, sumP, target-total)
			}
		} else {
			if sumR > total-target {
				t.Fatalf("iter %d: retired past the excess: %d > %d", iter, sumR, total-target)
			}
		}
	}
}

// TestEpochBoundaries pins the barrier schedule: boundaries step from
// start by epoch and include the first instant at or past end — the same
// instants the unsharded autoscaler ticks at, plus the closing barrier.
func TestEpochBoundaries(t *testing.T) {
	start := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	bounds := epochBoundaries(start, start.Add(150*time.Second), time.Minute)
	want := []time.Time{start.Add(time.Minute), start.Add(2 * time.Minute), start.Add(3 * time.Minute)}
	if len(bounds) != len(want) {
		t.Fatalf("got %d boundaries, want %d", len(bounds), len(want))
	}
	for i := range want {
		if !bounds[i].Equal(want[i]) {
			t.Errorf("boundary %d: got %v, want %v", i, bounds[i], want[i])
		}
	}
}
