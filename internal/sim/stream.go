package sim

import (
	"sync"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/trace"
	"notebookos/internal/workload"
)

// Streaming simulation
//
// The materialized path schedules a whole trace's events up front — one
// event per session boundary plus one per task arrival — which makes the
// engine's pending-event count (and the trace itself) linear in workload
// size. The streaming path replaces both with a single injector event: it
// fires at each session's start, materializes that session from the lazy
// trace.Source, schedules its end and task arrivals, and pulls the next
// session. Pending events then track *concurrency* (live sessions and their
// in-flight tasks), so a 90-day million-session run holds only the few
// thousand sessions alive at once.
//
// Event-order equivalence with the up-front loop: sessions arrive in
// non-decreasing start order, so every event of an earlier session is
// scheduled at an earlier (or equal) virtual time and carries a lower engine
// sequence number — the same tie-break order the up-front loop produced.
// The remaining tie class — a trace event landing on the same nanosecond
// as a periodic sampling or autoscale tick, common under coarse trace
// granularities — is closed by scheduling the ticks in the engine's late
// tie-break class (des.DeferLate): ticks lose every same-instant tie to
// model events in both paths, exactly as the up-front loop's scheduling
// order already made them. TestStreamingMatchesMaterialized pins the
// equivalence for every policy.

// gpuHoursAcc integrates a step function of GPU counts online, in
// value-hours — the streaming replacement for building a reserved-GPUs
// timeline from a trace scan and integrating it afterwards.
type gpuHoursAcc struct {
	lastNS int64
	level  float64
	hours  float64
}

// bump advances the integral to nowNS and steps the level by delta.
// Timestamps must be non-decreasing.
func (a *gpuHoursAcc) bump(nowNS int64, delta float64) {
	if a.level != 0 {
		a.hours += a.level * time.Duration(nowNS-a.lastNS).Hours()
	}
	a.lastNS = nowNS
	a.level += delta
}

// finish advances to endNS and returns the accumulated value-hours.
func (a *gpuHoursAcc) finish(endNS int64) float64 {
	a.bump(endNS, 0)
	return a.hours
}

// injector is the single-cluster streaming admitter: one event, re-scheduled
// (allocation-free, via ScheduleRunner) from each session start to the next.
type injector struct {
	s    *sim
	sess *trace.Session
}

func (in *injector) Fire() {
	s := in.s
	sess := in.sess
	ss := &simSession{
		src:    sess,
		req:    sess.Request,
		assig:  workload.Assign(s.wr),
		holder: s.kind + "/" + sess.ID,
	}
	s.sessionStart(ss)
	s.eng.Schedule(sess.End, func() { s.sessionEnd(ss) })
	for _, task := range sess.Tasks {
		task := task
		s.eng.Schedule(task.Submit, func() { s.taskArrive(ss, task) })
	}
	if next, ok := s.pull(); ok {
		in.sess = next
		s.eng.ScheduleRunner(next.Start, in)
	} else {
		in.sess = nil
	}
}

// fedInjector is the federated streaming admitter; home clusters are
// assigned round-robin in arrival order, exactly as the up-front loop does.
type fedInjector struct {
	s    *fedSim
	sess *trace.Session
}

func (in *fedInjector) Fire() {
	s := in.s
	sess := in.sess
	ss := &fedSession{
		src:    sess,
		req:    sess.Request,
		assig:  workload.Assign(s.wr),
		home:   s.homeSeq % len(s.members),
		holder: "fed/" + sess.ID,
	}
	s.homeSeq++
	s.members[ss.home].res.HomeSessions++
	s.sessionStart(ss)
	s.eng.Schedule(sess.End, func() { s.sessionEnd(ss) })
	for _, task := range sess.Tasks {
		task := task
		s.eng.Schedule(task.Submit, func() { s.taskArrive(ss, task) })
	}
	if next, ok := s.pull(); ok {
		in.sess = next
		s.eng.ScheduleRunner(next.Start, in)
	} else {
		in.sess = nil
	}
}

// RunStreamSharded is RunSharded without the trace: shard i of k runs
// against its own trace.StreamGen — an exact Poisson split of gcfg, so no
// shard ever sees (or stores) another shard's sessions and the full trace
// never exists in memory. Capacity splits equally across shards: under
// exact splitting every shard has the same expected reserved-GPU-hours (the
// analytic GenConfig.Expect, not a trace scan), so the proportional-share
// weights are uniform by construction. Worker i simulates with
// ShardSeed(Seed, i), mirroring RunSharded; k <= 1 runs a single streaming
// simulation of the whole config. Capacity semantics follow
// cfg.ShardCapacity as in RunSharded: under LeasePool the capacity ledger
// streams its own unsplit generator of gcfg, so capacity metrics equal
// the unsharded streaming run's exactly (TestLeasePoolStreamCapacityExact);
// the zero-value LegacySplit keeps the static equal split. One streaming
// caveat: the shard generators draw per-shard seeds, so the workers'
// union is distributionally — not samplewise — the ledger's workload,
// and merged task counts are near-equal rather than identical
// (docs/SHARDING.md, "Streaming").
//
// cfg.Trace and cfg.Source must be nil; each worker gets its shard's
// generator as its Source. Pass cfg.LeanMetrics to keep the workers'
// results window-bounded — with it, peak memory is governed by session
// *concurrency* and the simulated window, not by total session count.
func RunStreamSharded(gcfg trace.GenConfig, cfg Config, shards int) (*Result, error) {
	gens, err := streamShards(gcfg, &cfg.Trace, &cfg.Source, func() error { return cfg.withDefaults() },
		func() int { return cfg.Hosts }, &shards)
	if err != nil {
		return nil, err
	}
	if shards <= 1 {
		cfg.Source = gens[0]
		return Run(cfg)
	}
	weights := uniformWeights(shards)
	hosts := trace.ProportionalShares(weights, cfg.Hosts, 1)
	minHosts := floorShares(weights, cfg.MinHosts)
	buffers := trace.ProportionalShares(weights, cfg.ScalingBufferHosts, 0)

	wcfgs := make([]Config, shards)
	for i := range gens {
		wcfg := cfg
		wcfg.Source = gens[i]
		wcfg.Hosts = hosts[i]
		wcfg.MinHosts = minHosts[i]
		wcfg.ScalingBufferHosts = buffers[i]
		wcfg.Seed = ShardSeed(cfg.Seed, i)
		wcfgs[i] = wcfg
	}
	if cfg.ShardCapacity == LeasePool {
		// The capacity ledger replays the whole workload: give it its own
		// unsplit stream of gcfg (same seed, same sessions the shard
		// generators partition among themselves).
		full, err := trace.NewStreamGen(gcfg, 0, 1)
		if err != nil {
			return nil, err
		}
		cfg.Source = full
		return runShardedLeased(cfg, wcfgs)
	}

	results := make([]*Result, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int, wcfg Config) {
			defer wg.Done()
			results[i], errs[i] = Run(wcfg)
		}(i, wcfgs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeResults(results...), nil
}

// RunFederatedStreamSharded is RunFederatedSharded against streaming
// shards (see RunStreamSharded): each worker federation replays its own
// exact Poisson split of gcfg. The smallest member bounds the shard count,
// as in the materialized version.
func RunFederatedStreamSharded(gcfg trace.GenConfig, cfg FedConfig, shards int) (*FedResult, error) {
	smallest := func() int {
		min := cfg.Clusters[0].Hosts
		for _, spec := range cfg.Clusters {
			if spec.Hosts < min {
				min = spec.Hosts
			}
		}
		return min
	}
	gens, err := streamShards(gcfg, &cfg.Trace, &cfg.Source, func() error { return cfg.withDefaults() },
		smallest, &shards)
	if err != nil {
		return nil, err
	}
	// The parent withDefaults normalized an explicit NoInterClusterPenalty
	// to 0; keep it an explicit zero for the workers' own defaulting pass.
	if cfg.InterClusterPenalty == 0 {
		cfg.InterClusterPenalty = NoInterClusterPenalty
	}
	if shards <= 1 {
		cfg.Source = gens[0]
		return RunFederated(cfg)
	}
	weights := uniformWeights(shards)
	memberHosts := make([][]int, len(cfg.Clusters))
	memberFloors := make([][]int, len(cfg.Clusters))
	for m, spec := range cfg.Clusters {
		memberHosts[m] = trace.ProportionalShares(weights, spec.Hosts, 1)
		memberFloors[m] = floorShares(weights, spec.MinHosts)
	}
	fedFloors := floorShares(weights, cfg.FedMinHosts)

	wcfgs := make([]FedConfig, shards)
	for i := range gens {
		wcfg := cfg
		wcfg.Source = gens[i]
		wcfg.Clusters = make([]FedClusterSpec, len(cfg.Clusters))
		for m, spec := range cfg.Clusters {
			spec.Hosts = memberHosts[m][i]
			spec.MinHosts = memberFloors[m][i]
			wcfg.Clusters[m] = spec
		}
		wcfg.FedMinHosts = fedFloors[i]
		wcfg.Seed = ShardSeed(cfg.Seed, i)
		// Stateful route policies (round-robin's rotation counter) must
		// not be shared across the parallel workers.
		wcfg.Route = federation.FreshPolicy(cfg.Route)
		wcfgs[i] = wcfg
	}
	if cfg.ShardCapacity == LeasePool {
		full, err := trace.NewStreamGen(gcfg, 0, 1)
		if err != nil {
			return nil, err
		}
		cfg.Source = full
		return runFederatedShardedLeased(cfg, wcfgs)
	}

	results := make([]*FedResult, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range wcfgs {
		wg.Add(1)
		go func(i int, wcfg FedConfig) {
			defer wg.Done()
			results[i], errs[i] = RunFederated(wcfg)
		}(i, wcfgs[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeFedResults(results...), nil
}

// streamShards runs the shared setup of the streaming sharded runners:
// defaulting the config against a one-shard probe source (so the capacity
// split sees the same defaults the workers will), clamping the shard count
// to the capacity bound, and building the final shard generators. The
// trace/source slots are passed by pointer so the probe source can be
// installed and withdrawn in place.
func streamShards(gcfg trace.GenConfig, tr **trace.Trace, src *trace.Source,
	withDefaults func() error, capacityBound func() int, shards *int) ([]*trace.StreamGen, error) {
	*tr = nil
	probe, err := trace.NewStreamGen(gcfg, 0, 1)
	if err != nil {
		return nil, err
	}
	*src = probe
	if err := withDefaults(); err != nil {
		*src = nil
		return nil, err
	}
	*src = nil
	if *shards < 1 {
		*shards = 1
	}
	// Every worker needs at least one real host (a zero share would read as
	// "use the default" to the worker's own config defaulting and invent
	// capacity), so capacity bounds the shard count.
	if bound := capacityBound(); *shards > bound {
		*shards = bound
	}
	return trace.StreamSplit(gcfg, *shards)
}

// uniformWeights returns n equal shares — the exact-splitting invariant
// that every streaming shard has identical expected load.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
