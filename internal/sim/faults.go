package sim

import (
	"math/rand"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/metrics"
	"notebookos/internal/trace"
)

// Fault injection
//
// This file wires trace.FaultSpec's deterministic fault streams into the
// discrete-event simulators as first-class events: per-host crash/recover
// pairs armed when each host joins, scheduled outage windows, and (in the
// federated simulator) network-degradation episodes that scale every
// inter-cluster penalty. The design contract, pinned by the zero-fault
// identity and double-run determinism tests and argued in docs/FAULTS.md:
//
//   - Everything is gated on cfg.Faults.Enabled(): a nil or empty spec
//     schedules no events, draws no randomness, and allocates nothing, so
//     failure-free runs stay byte-identical to builds without this file.
//   - Fault timing is a pure function of (FaultSpec, Seed, host slot) via
//     trace.HostFault/OutageRNG — workload-independent, so the lease
//     pool's capacity ledger (a full replay of the parent config) sees the
//     identical fault stream and sharded capacity metrics stay exact.
//   - Crash-path randomness (failover elections, container starts during
//     replica rehoming) comes from a dedicated RNG (Seed+3), never from
//     the scheduling or workload streams.
//
// Failure semantics on a host crash: resident replicas die in place
// (their ss.hosts slot goes nil). A NotebookOS session that keeps raft
// quorum (2*alive > R) fails over — one election charge, lost replicas
// rehome onto the most-idle hosts — and its running task continues unless
// the executor itself died. Quorum loss, executor death, or (for the
// replica-less baselines) any crash under the running container aborts
// the task: training accounting unwinds into LostGPUHours and the task
// resubmits through restartTask with a checkpoint-restore penalty and
// SLO-class-aware exponential backoff; an exhausted retry budget counts
// an Abandonment. Crashed hosts leave the cluster through
// cluster.CrashHost (forced removal, no capacity notification) and a
// fresh replacement host — new slot, new crash clock — joins after the
// drawn repair time, while the autoscaler's next tick sees the missing
// capacity and can scale out in the interim.

// runningTask is the fault layer's view of an in-flight task state
// machine: where it executes and how to kill it. Implemented by every
// policy's task FSM (taskfsm.go).
type runningTask interface {
	// runsOn reports whether the task's executor lives on h.
	runsOn(h *cluster.Host) bool
	// abort cancels the machine — later Fire events no-op, training
	// accounting unwinds, committed GPUs release — and returns the task
	// and its original submit time for resubmission.
	abort() (trace.Task, time.Time)
}

// initFaults arms the run's fault layer: the dedicated crash-path RNG,
// the availability/recovery recorders, and one event per unscoped outage
// window. Per-host crash clocks arm in addHost as each host joins. A
// disabled spec leaves the sim untouched.
func (s *sim) initFaults() {
	f := s.cfg.Faults
	if !f.Enabled() {
		return
	}
	s.faultsOn = true
	s.frng = rand.New(rand.NewSource(s.cfg.Seed + 3))
	s.res.Availability = metrics.NewTimeline()
	s.res.RecoveryTime = metrics.NewSample()
	for i, o := range f.Outages {
		if o.Cluster != "" {
			continue // member-scoped outages apply only to federated runs
		}
		i, o := i, o
		s.eng.Schedule(s.start.Add(hoursDur(o.StartHour)), func() { s.outageStrike(i, o) })
	}
}

// hoursDur converts a spec's fractional hours to a duration.
func hoursDur(h float64) time.Duration {
	return time.Duration(h * float64(time.Hour))
}

// noteHosts records a host-count change on the availability timeline.
// Nil-safe: a no-op unless faults are enabled.
func (s *sim) noteHosts(d float64) {
	if s.res.Availability != nil {
		s.res.Availability.Delta(s.now(), d)
	}
}

// armHostFaults gives a freshly joined host its availability tick and its
// deterministic crash clock: the (uptime, downtime) pair is a pure
// function of (spec, seed, host slot), so replays — in particular the
// lease pool's capacity ledger — see the identical stream.
func (s *sim) armHostFaults(sh *simHost) {
	s.noteHosts(1)
	if up, down := s.cfg.Faults.HostFault(s.cfg.Seed, uint64(s.hostSeq)); up > 0 {
		s.eng.Defer(up, func() { s.crashHost(sh, down) })
	}
}

// crashHost kills one host: it leaves the cluster immediately (forced
// removal — resident replicas die with it), affected sessions repair
// (failover or abort+restart), and a fresh replacement host joins after
// the repair time. A host that already left the cluster — scale-in, lease
// donation — makes the crash a no-op: its clock died with it.
func (s *sim) crashHost(sh *simHost, down time.Duration) {
	idx := -1
	for i, x := range s.hostList {
		if x == sh {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	if err := s.cluster.CrashHost(sh.h.ID); err != nil {
		return
	}
	s.hostList = append(s.hostList[:idx], s.hostList[idx+1:]...)
	s.res.HostCrashes++
	s.noteHosts(-1)
	s.repairSessions(sh.h)
	s.sampleProvisioned()
	s.eng.Defer(down, func() {
		// The replacement is a fresh host slot with its own crash clock
		// (armed in addHost), never the crashed host re-attached —
		// re-attachment would double-count its stale commitments.
		s.addHost()
		s.res.HostRecoveries++
		s.sampleProvisioned()
	})
}

// outageStrike executes outage window idx: each live host is killed
// independently with probability HostFraction, drawn per host in
// host-list order from the outage's own deterministic RNG; every victim's
// replacement arrives together when the window closes.
func (s *sim) outageStrike(idx int, o trace.OutageSpec) {
	r := s.cfg.Faults.OutageRNG(s.cfg.Seed, idx)
	var victims []*simHost
	for _, sh := range s.hostList {
		if r.Float64() < o.HostFraction {
			victims = append(victims, sh)
		}
	}
	down := hoursDur(o.DurationHours)
	for _, sh := range victims {
		s.crashHost(sh, down)
	}
}

// repairSessions repairs every live session touched by a crash of h,
// in arrival order.
func (s *sim) repairSessions(h *cluster.Host) {
	for _, ss := range s.faultSessions {
		switch s.cfg.Policy {
		case PolicyNotebookOS:
			s.repairNbos(ss, h)
		case PolicyReservation:
			s.repairReservation(ss, h)
		default:
			// Batch and LCP run per-task containers with no replicas:
			// only a task executing on the crashed host is affected.
			if ss.cur != nil && ss.cur.runsOn(h) {
				s.abortRestart(ss)
			}
		}
	}
}

// repairNbos applies the replicated-kernel failure semantics: a replica
// on the crashed host dies (its slot goes nil). With raft quorum intact
// the session fails over — one election charge, dead slots rehome — and
// the running task survives unless its executor died; without quorum the
// running task aborts through the checkpoint-restore restart path.
func (s *sim) repairNbos(ss *simSession, h *cluster.Host) {
	alive, lost := 0, 0
	for i, rh := range ss.hosts {
		if rh == h {
			ss.hosts[i] = nil
			lost++
		} else if rh != nil {
			alive++
		}
	}
	execDied := ss.cur != nil && ss.cur.runsOn(h)
	if lost == 0 && !execDied {
		return
	}
	quorum := 2*alive > len(ss.hosts)
	if lost > 0 && quorum {
		s.res.Failovers++
		elect := s.cfg.Latencies.Election(s.frng)
		s.res.RecoveryTime.Add(elect.Seconds())
	}
	for i, rh := range ss.hosts {
		if rh == nil {
			s.rehomeReplica(ss, i)
		}
	}
	// The executor's GPU state died with its host; quorum loss drops the
	// raft log's tail. Either way the in-flight execution restarts from
	// its last checkpoint.
	if ss.cur != nil && (execDied || (lost > 0 && !quorum)) {
		s.abortRestart(ss)
	}
}

// repairReservation re-binds a session whose reserved host crashed: the
// running task (always on the reserved host) aborts, and the session's
// GPUs re-commit on the most-idle host — growing the cluster when full,
// exactly as sessionStart placed it.
func (s *sim) repairReservation(ss *simSession, h *cluster.Host) {
	if len(ss.hosts) == 0 || ss.hosts[0] != h {
		return
	}
	if ss.cur != nil && ss.cur.runsOn(h) {
		s.abortRestart(ss)
	}
	sh := s.hostWithIdle(ss.req)
	if sh == nil {
		sh = s.addHost()
	}
	if err := sh.h.Commit(ss.holder, ss.req); err != nil {
		// A fresh host always fits a valid request.
		panic(err)
	}
	ss.hosts[0] = sh.h
}

// rehomeReplica rebuilds the dead replica in slot `slot` on the most-idle
// host outside the session's replica set, charging a warm attach (pool
// permitting) or cold start off the task's critical path. Reports false —
// the slot stays nil, for a later migration or crash repair to fill —
// when no candidate host exists.
func (s *sim) rehomeReplica(ss *simSession, slot int) bool {
	var target *simHost
	bestIdle := -1
	for _, sh := range s.hostList {
		if hostsContain(ss.hosts, sh.h) {
			continue
		}
		if idle := sh.h.IdleGPUs(); idle > bestIdle {
			bestIdle = idle
			target = sh
		}
	}
	if target == nil {
		return false
	}
	if target.warm > 0 {
		target.warm--
		s.res.WarmStarts++
		tsh := target
		s.eng.Defer(s.cfg.Latencies.ColdStart(s.frng), func() { tsh.warm++ })
	} else {
		s.res.ColdStarts++
	}
	_ = target.h.PlaceReplica(ss.replicaKeyFor(slot+1), ss.req)
	ss.hosts[slot] = target.h
	return true
}

// abortRestart kills the session's in-flight task and resubmits it
// through the restart path.
func (s *sim) abortRestart(ss *simSession) {
	task, submit := ss.cur.abort()
	ss.cur = nil
	s.restartTask(ss, task, submit)
}

// restartTask resubmits an aborted task after a checkpoint-restore
// penalty plus exponential backoff, against an SLO-class-aware retry
// budget (interactive abandons fastest). The original submit time rides
// along, so every restart's delay lands in the interactivity and TCT
// tails. An exhausted budget abandons the task — counted, never silently
// dropped — and the session's queue moves on.
func (s *sim) restartTask(ss *simSession, task trace.Task, submit time.Time) {
	ss.restarts++
	f := s.cfg.Faults
	if ss.restarts > f.RetryBudget(ss.src.SLO) {
		s.res.Abandonments++
		ss.restarts = 0
		ss.running = false
		if len(ss.queue) > 0 {
			next := ss.queue[0]
			ss.queue = ss.queue[1:]
			ss.running = true
			s.startTask(ss, next, s.now())
		}
		return
	}
	s.res.TaskRestarts++
	penalty := f.CheckpointRestore() + f.RetryBackoff()<<(ss.restarts-1)
	s.res.RecoveryTime.Add(penalty.Seconds())
	s.eng.Defer(penalty, func() {
		if ss.closed {
			return // the session ended during the backoff; its work dies with it
		}
		s.startTask(ss, task, submit)
	})
}

// noteLostGPUHours integrates the GPU time an aborted execution threw
// away, from its training start to now.
func (s *sim) noteLostGPUHours(startNS int64, gpus int) {
	s.res.LostGPUHours += time.Duration(s.now().UnixNano()-startNS).Hours() * float64(gpus)
}

// ---- federated twin ------------------------------------------------------

// fedFaultSlot builds the unique fault-stream key for a member's host:
// member index in the high bits, the member's own host sequence in the
// low bits. The spread keeps every member's slots — and the outage key
// space at 1<<32 — disjoint.
func fedFaultSlot(member, seq int) uint64 {
	return uint64(member)<<40 | uint64(seq)
}

// initFaults is the federated twin of sim.initFaults; degradation
// episodes additionally scale every inter-cluster penalty through the
// federation's SetPenaltyScale choke point for their window.
func (s *fedSim) initFaults() {
	f := s.cfg.Faults
	if !f.Enabled() {
		return
	}
	s.faultsOn = true
	s.frng = rand.New(rand.NewSource(s.cfg.Seed + 3))
	s.res.Availability = metrics.NewTimeline()
	s.res.RecoveryTime = metrics.NewSample()
	for i, o := range f.Outages {
		i, o := i, o
		s.eng.Schedule(s.start.Add(hoursDur(o.StartHour)), func() { s.outageStrike(i, o) })
	}
	for _, d := range f.Degradations {
		d := d
		at := s.start.Add(hoursDur(d.StartHour))
		s.eng.Schedule(at, func() { s.fed.SetPenaltyScale(d.Factor) })
		s.eng.Schedule(at.Add(hoursDur(d.DurationHours)), func() { s.fed.SetPenaltyScale(1) })
	}
}

func (s *fedSim) noteHosts(d float64) {
	if s.res.Availability != nil {
		s.res.Availability.Delta(s.now(), d)
	}
}

func (s *fedSim) armHostFaults(fh *fedHost, seq int) {
	s.noteHosts(1)
	if up, down := s.cfg.Faults.HostFault(s.cfg.Seed, fedFaultSlot(fh.member, seq)); up > 0 {
		s.eng.Defer(up, func() { s.crashHost(fh, down) })
	}
}

// crashHost is the federated sim.crashHost: forced removal from the
// member cluster, session repair across the federation, replacement in
// the same member after the repair time.
func (s *fedSim) crashHost(fh *fedHost, down time.Duration) {
	m := s.members[fh.member]
	idx := -1
	for i, x := range m.hosts {
		if x == fh {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	if err := m.c.CrashHost(fh.h.ID); err != nil {
		return
	}
	m.hosts = append(m.hosts[:idx], m.hosts[idx+1:]...)
	delete(s.byHost, fh.h)
	s.res.HostCrashes++
	s.noteHosts(-1)
	s.repairSessions(fh)
	s.sampleProvisioned()
	member := fh.member
	s.eng.Defer(down, func() {
		s.addHost(member)
		s.res.HostRecoveries++
		s.sampleProvisioned()
	})
}

// outageStrike executes outage window idx across the federation: members
// in index order, hosts in list order, each live host in a matching
// member killed with probability HostFraction. An outage scoped to a
// member name hits only that member; an unscoped one hits every member.
func (s *fedSim) outageStrike(idx int, o trace.OutageSpec) {
	r := s.cfg.Faults.OutageRNG(s.cfg.Seed, idx)
	var victims []*fedHost
	for _, m := range s.members {
		if o.Cluster != "" && o.Cluster != m.spec.Name {
			continue
		}
		for _, fh := range m.hosts {
			if r.Float64() < o.HostFraction {
				victims = append(victims, fh)
			}
		}
	}
	down := hoursDur(o.DurationHours)
	for _, fh := range victims {
		s.crashHost(fh, down)
	}
}

// repairSessions applies the replicated-kernel failure semantics (see
// sim.repairNbos — the federated policy is always NotebookOS) to every
// live session touched by the crash of fh.
func (s *fedSim) repairSessions(fh *fedHost) {
	h := fh.h
	for _, ss := range s.faultSessions {
		alive, lost := 0, 0
		for i, rfh := range ss.hosts {
			if rfh == fh {
				ss.hosts[i] = nil
				lost++
			} else if rfh != nil {
				alive++
			}
		}
		execDied := ss.cur != nil && ss.cur.runsOn(h)
		if lost == 0 && !execDied {
			continue
		}
		quorum := 2*alive > len(ss.hosts)
		if lost > 0 && quorum {
			s.res.Failovers++
			elect := s.cfg.Latencies.Election(s.frng)
			s.res.RecoveryTime.Add(elect.Seconds())
		}
		for i, rfh := range ss.hosts {
			if rfh == nil {
				s.rehomeReplica(ss, i)
			}
		}
		if ss.cur != nil && (execDied || (lost > 0 && !quorum)) {
			s.abortRestart(ss)
		}
	}
}

// rehomeReplica is the federated sim.rehomeReplica: clusters are tried in
// route-policy order from the session's home, most-idle host within the
// first cluster that has a candidate.
func (s *fedSim) rehomeReplica(ss *fedSession, slot int) bool {
	var target *fedHost
	for _, idx := range s.cfg.Route.Order(s.fed, ss.home, &s.route) {
		bestIdle := -1
		for _, fh := range s.members[idx].hosts {
			if fedHostsContain(ss.hosts, fh) {
				continue
			}
			if idle := fh.h.IdleGPUs(); idle > bestIdle {
				bestIdle = idle
				target = fh
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		return false
	}
	if target.warm > 0 {
		target.warm--
		s.res.WarmStarts++
		tfh := target
		s.eng.Defer(s.cfg.Latencies.ColdStart(s.frng), func() { tfh.warm++ })
	} else {
		s.res.ColdStarts++
	}
	_ = target.h.PlaceReplica(ss.replicaKeyFor(slot+1), ss.req)
	ss.hosts[slot] = target
	return true
}

func (s *fedSim) abortRestart(ss *fedSession) {
	task, submit := ss.cur.abort()
	ss.cur = nil
	s.restartTask(ss, task, submit)
}

// restartTask is the federated sim.restartTask: same checkpoint-restore
// penalty, backoff, and SLO-class-aware budget, resubmitting through the
// federated task path (and so through the shared capacity wait-queue).
func (s *fedSim) restartTask(ss *fedSession, task trace.Task, submit time.Time) {
	ss.restarts++
	f := s.cfg.Faults
	if ss.restarts > f.RetryBudget(ss.src.SLO) {
		s.res.Abandonments++
		ss.restarts = 0
		ss.running = false
		if len(ss.queue) > 0 {
			next := ss.queue[0]
			ss.queue = ss.queue[1:]
			ss.running = true
			s.runTask(ss, next, s.now())
		}
		return
	}
	s.res.TaskRestarts++
	penalty := f.CheckpointRestore() + f.RetryBackoff()<<(ss.restarts-1)
	s.res.RecoveryTime.Add(penalty.Seconds())
	s.eng.Defer(penalty, func() {
		if ss.closed {
			return // the session ended during the backoff; its work dies with it
		}
		s.runTask(ss, task, submit)
	})
}

func (s *fedSim) noteLostGPUHours(startNS int64, gpus int) {
	s.res.LostGPUHours += time.Duration(s.now().UnixNano()-startNS).Hours() * float64(gpus)
}
