package sim

import (
	"math"
	"testing"
	"time"

	"notebookos/internal/trace"
)

// shortTrace generates a reduced excerpt for fast tests.
func shortTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.AdobeExcerptConfig(21)
	cfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(cfg)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func runPolicy(t *testing.T, tr *trace.Trace, p Policy) *Result {
	t.Helper()
	res, err := Run(Config{Trace: tr, Policy: p, Hosts: 30, Seed: 7})
	if err != nil {
		t.Fatalf("Run(%s): %v", p, err)
	}
	return res
}

func TestRunRequiresTrace(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing trace must fail")
	}
}

func TestAllPoliciesCompleteAllTasks(t *testing.T) {
	tr := shortTrace(t)
	want := tr.NumTasks()
	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		res := runPolicy(t, tr, p)
		if res.Tasks != want {
			t.Errorf("%s completed %d/%d tasks", p, res.Tasks, want)
		}
		if res.TCT.N() != want || res.Interactivity.N() != want {
			t.Errorf("%s samples: tct=%d delay=%d", p, res.TCT.N(), res.Interactivity.N())
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := shortTrace(t)
	a := runPolicy(t, tr, PolicyNotebookOS)
	b := runPolicy(t, tr, PolicyNotebookOS)
	if a.Tasks != b.Tasks || a.Migrations != b.Migrations ||
		a.TCT.Percentile(50) != b.TCT.Percentile(50) ||
		a.Interactivity.Percentile(99) != b.Interactivity.Percentile(99) {
		t.Fatal("same seed produced different results")
	}
}

func TestInteractivityOrdering(t *testing.T) {
	// Fig. 9a: Reservation ~ NotebookOS << Batch; LCP in between.
	tr := shortTrace(t)
	reserv := runPolicy(t, tr, PolicyReservation)
	nbos := runPolicy(t, tr, PolicyNotebookOS)
	batch := runPolicy(t, tr, PolicyBatch)
	lcp := runPolicy(t, tr, PolicyLCP)

	rp50 := reserv.Interactivity.Percentile(50)
	np50 := nbos.Interactivity.Percentile(50)
	bp50 := batch.Interactivity.Percentile(50)
	lp50 := lcp.Interactivity.Percentile(50)

	if np50 > rp50*5+0.5 {
		t.Errorf("NotebookOS p50 delay %.3fs should be close to Reservation %.3fs", np50, rp50)
	}
	if bp50 < np50*10 {
		t.Errorf("Batch p50 delay %.3fs should dwarf NotebookOS %.3fs", bp50, np50)
	}
	if lp50 <= np50 {
		t.Errorf("LCP p50 delay %.3fs should exceed NotebookOS %.3fs", lp50, np50)
	}
	if lp50 >= bp50 {
		t.Errorf("LCP p50 delay %.3fs should be below Batch %.3fs (warm pool)", lp50, bp50)
	}
}

func TestTCTOrdering(t *testing.T) {
	// Fig. 9b: NotebookOS ~ Reservation; LCP and Batch much longer.
	tr := shortTrace(t)
	reserv := runPolicy(t, tr, PolicyReservation)
	nbos := runPolicy(t, tr, PolicyNotebookOS)
	batch := runPolicy(t, tr, PolicyBatch)

	rt := reserv.TCT.Percentile(50)
	nt := nbos.TCT.Percentile(50)
	bt := batch.TCT.Percentile(50)
	if nt > rt*2 {
		t.Errorf("NotebookOS TCT p50 %.1fs should track Reservation %.1fs", nt, rt)
	}
	if bt <= nt {
		t.Errorf("Batch TCT p50 %.1fs should exceed NotebookOS %.1fs", bt, nt)
	}
}

func TestImmediateCommitRateHigh(t *testing.T) {
	tr := shortTrace(t)
	res := runPolicy(t, tr, PolicyNotebookOS)
	if res.Tasks == 0 {
		t.Fatal("no tasks")
	}
	rate := float64(res.ImmediateCommits) / float64(res.Tasks)
	// §5.3.2 reports 89.6%; with 30 hosts and a 4-hour excerpt the rate
	// should be at least commensurate.
	if rate < 0.7 {
		t.Errorf("immediate commit rate = %.1f%%, want >= 70%%", rate*100)
	}
	reuse := float64(res.ExecutorReuse) / float64(res.Tasks)
	if reuse < 0.5 {
		t.Errorf("executor reuse = %.1f%%, want >= 50%%", reuse*100)
	}
}

func TestProvisionedGPUOrdering(t *testing.T) {
	// Fig. 8: oracle <= Batch <= LCP <= NotebookOS <= Reservation-ish.
	tr := shortTrace(t)
	start, end := tr.Start, tr.End
	oracleHours := tr.UtilizedGPUs().Integral(start, end)
	batch := runPolicy(t, tr, PolicyBatch).ProvisionedGPUs.Integral(start, end)
	nbos := runPolicy(t, tr, PolicyNotebookOS).ProvisionedGPUs.Integral(start, end)
	lcp := runPolicy(t, tr, PolicyLCP).ProvisionedGPUs.Integral(start, end)
	reserved := tr.ReservedGPUs().Integral(start, end)

	if batch < oracleHours*0.8 {
		t.Errorf("Batch %.0f GPU-h below oracle %.0f", batch, oracleHours)
	}
	if nbos <= batch {
		t.Errorf("NotebookOS %.0f GPU-h should exceed Batch %.0f (replicas + buffer)", nbos, batch)
	}
	if lcp > nbos*1.1 {
		t.Errorf("LCP %.0f GPU-h should not materially exceed NotebookOS %.0f", lcp, nbos)
	}
	if nbos >= reserved {
		t.Errorf("NotebookOS %.0f GPU-h must save versus Reservation %.0f", nbos, reserved)
	}
}

func TestSyncLatencyShape(t *testing.T) {
	tr := shortTrace(t)
	res := runPolicy(t, tr, PolicyNotebookOS)
	if res.SyncLatency.N() == 0 {
		t.Fatal("no sync samples")
	}
	p90 := res.SyncLatency.Percentile(90) * 1000 // ms
	p99 := res.SyncLatency.Percentile(99) * 1000
	// Fig. 11: p90 = 54.79 ms, p99 = 268.25 ms.
	if p90 < 20 || p90 > 120 {
		t.Errorf("sync p90 = %.1fms, want ~55ms", p90)
	}
	if p99 < 60 || p99 > 400 {
		t.Errorf("sync p99 = %.1fms, want ~268ms", p99)
	}
	// Fig. 11: 99% of reads/writes within ~3.95/7.07s.
	if res.WriteLatency.N() > 0 {
		if w99 := res.WriteLatency.Percentile(99); w99 > 10 {
			t.Errorf("write p99 = %.2fs", w99)
		}
	}
}

func TestStepBreakdownShapes(t *testing.T) {
	tr := shortTrace(t)
	batch := runPolicy(t, tr, PolicyBatch)
	nbos := runPolicy(t, tr, PolicyNotebookOS)
	// Batch: step 1 dominated by provisioning (tens of seconds).
	if p50 := batch.StepLatency[StepGSProcess].Percentile(50); p50 < 10 {
		t.Errorf("batch step1 p50 = %.2fs, want cold-start scale", p50)
	}
	// NotebookOS: step 1 is milliseconds, step 6 tens of milliseconds.
	if p50 := nbos.StepLatency[StepGSProcess].Percentile(50); p50 > 0.1 {
		t.Errorf("nbos step1 p50 = %.3fs, want milliseconds", p50)
	}
	e50 := nbos.StepLatency[StepElection].Percentile(50)
	if e50 <= 0 || e50 > 0.2 {
		t.Errorf("nbos election p50 = %.3fs, want tens of ms", e50)
	}
	// Reservation has no election step.
	reserv := runPolicy(t, tr, PolicyReservation)
	if max := reserv.StepLatency[StepElection].Max(); max != 0 {
		t.Errorf("reservation election max = %v, want 0", max)
	}
}

func TestTimelinesNonNegative(t *testing.T) {
	tr := shortTrace(t)
	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		res := runPolicy(t, tr, p)
		for h := 0.0; h <= 5; h += 0.1 {
			at := tr.Start.Add(time.Duration(h * float64(time.Hour)))
			if v := res.CommittedGPUs.At(at); v < 0 {
				t.Fatalf("%s committed GPUs negative at +%.1fh: %v", p, h, v)
			}
			if v := res.ActiveTrainings.At(at); v < 0 {
				t.Fatalf("%s active trainings negative at +%.1fh: %v", p, h, v)
			}
		}
		if res.ActiveSessions.Max() <= 0 {
			t.Fatalf("%s has no active sessions", p)
		}
	}
}

func TestNbosEventsRecorded(t *testing.T) {
	tr := shortTrace(t)
	res := runPolicy(t, tr, PolicyNotebookOS)
	kinds := map[string]int{}
	for _, e := range res.Events {
		kinds[string(e.Kind)]++
	}
	if kinds["kernel-created"] == 0 {
		t.Error("no kernel creation events")
	}
	// Integrated hours must be consistent.
	if res.ActiveGPUHours <= 0 || res.ServerHours <= 0 || res.ReservedGPUHours <= 0 {
		t.Errorf("integrals: active=%v server=%v reserved=%v",
			res.ActiveGPUHours, res.ServerHours, res.ReservedGPUHours)
	}
	if res.StandbyReplicaHours <= 0 {
		t.Error("standby replica hours missing")
	}
	if math.IsNaN(res.TCT.Mean()) {
		t.Error("TCT mean NaN")
	}
}

func TestGPUHoursSavedPositive(t *testing.T) {
	// The headline: NotebookOS saves GPU-hours versus Reservation.
	tr := shortTrace(t)
	nbos := runPolicy(t, tr, PolicyNotebookOS)
	reservedHours := tr.ReservedGPUs().Integral(tr.Start, tr.End)
	nbosHours := nbos.ProvisionedGPUs.Integral(tr.Start, tr.End)
	saved := reservedHours - nbosHours
	if saved <= 0 {
		t.Fatalf("saved GPU-hours = %.1f, want > 0 (reserved %.1f, nbos %.1f)",
			saved, reservedHours, nbosHours)
	}
}
