package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"notebookos/internal/federation"
	"notebookos/internal/trace"
)

func shardQuickTrace(t testing.TB, seed int64) *trace.Trace {
	t.Helper()
	cfg := trace.AdobeExcerptConfig(seed)
	cfg.Duration = 4 * time.Hour
	return trace.MustGenerate(cfg)
}

// TestShardSeedHelper pins the shared seed-derivation helper: it is a
// pure function of (seed, shard), distinct across shard indices, and
// exactly the documented seed ^ splitmix64(index) formula.
func TestShardSeedHelper(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 16; i++ {
		s := ShardSeed(42, i)
		if s2 := ShardSeed(42, i); s2 != s {
			t.Fatalf("ShardSeed(42, %d) not stable: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ShardSeed collision between shards %d and %d", prev, i)
		}
		seen[s] = i
		if want := 42 ^ int64(splitmix64(uint64(i))); s != want {
			t.Fatalf("ShardSeed(42, %d) = %d, want seed^splitmix64 = %d", i, s, want)
		}
	}
}

// deepEqualResults compares two Results beyond the counter fingerprint:
// full delay/TCT sample values, event sequences, and timeline point
// counts — the "byte-identical" bar sharded runs must clear.
func deepEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	tra, trb := a.TCT.Values(), b.TCT.Values()
	if len(tra) != len(trb) {
		t.Fatalf("%s: TCT sample sizes differ: %d vs %d", label, len(tra), len(trb))
	}
	for i := range tra {
		if tra[i] != trb[i] {
			t.Fatalf("%s: TCT value %d differs: %v vs %v", label, i, tra[i], trb[i])
		}
	}
	da, db := a.Interactivity.Values(), b.Interactivity.Values()
	if len(da) != len(db) {
		t.Fatalf("%s: delay sample sizes differ: %d vs %d", label, len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("%s: delay value %d differs: %v vs %v", label, i, da[i], db[i])
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: event counts differ: %d vs %d", label, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("%s: event %d differs: %+v vs %+v", label, i, a.Events[i], b.Events[i])
		}
	}
	if a.ProvisionedGPUs.Len() != b.ProvisionedGPUs.Len() {
		t.Fatalf("%s: provisioned timeline lengths differ: %d vs %d",
			label, a.ProvisionedGPUs.Len(), b.ProvisionedGPUs.Len())
	}
}

// TestRunShardedK1IsExactlyRun: the k<=1 sharded path is the plain Run —
// identical fingerprints, samples, events, and timelines.
func TestRunShardedK1IsExactlyRun(t *testing.T) {
	tr := shardQuickTrace(t, 51)
	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		cfg := Config{Trace: tr, Policy: p, Hosts: 30, Seed: 7}
		plain, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := RunSharded(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := fingerprintOf(tr, plain), fingerprintOf(tr, sharded)
		if fa != fb {
			t.Errorf("%s: k=1 sharded diverged from Run:\n  run:     %+v\n  sharded: %+v", p, fa, fb)
		}
		deepEqualResults(t, string(p), plain, sharded)
	}
}

// TestRunShardedDoubleRunByteIdentical: two k=4 sharded runs of the same
// config are byte-identical regardless of worker goroutine scheduling.
func TestRunShardedDoubleRunByteIdentical(t *testing.T) {
	tr := shardQuickTrace(t, 52)
	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 9}
	a, err := RunSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fingerprintOf(tr, a), fingerprintOf(tr, b)
	if fa != fb {
		t.Errorf("k=4 double run diverged:\n  run1: %+v\n  run2: %+v", fa, fb)
	}
	deepEqualResults(t, "k=4 double run", a, b)
}

// shardWorkerResults replays each shard of a split exactly the way
// RunSharded does, returning the per-worker results for merge tests.
func shardWorkerResults(t *testing.T, tr *trace.Trace, cfg Config, k int) []*Result {
	t.Helper()
	if err := cfg.withDefaults(); err != nil {
		t.Fatal(err)
	}
	parts := tr.Split(k)
	weights := make([]float64, len(parts))
	for i, p := range parts {
		weights[i] = p.Weight
	}
	hosts := trace.ProportionalShares(weights, cfg.Hosts, 1)
	minHosts := trace.ProportionalShares(weights, cfg.MinHosts, 1)
	results := make([]*Result, len(parts))
	for i := range parts {
		wcfg := cfg
		wcfg.Trace = parts[i].Trace
		wcfg.Hosts = hosts[i]
		wcfg.MinHosts = minHosts[i]
		wcfg.Seed = ShardSeed(cfg.Seed, i)
		res, err := Run(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	return results
}

// TestMergeResultsIntegralEqualsShardSum pins the MergeResults timeline
// invariant: the merged Timeline's Integral over the trace window equals
// the sum of the per-shard integrals (up to float rounding), for every
// merged series.
func TestMergeResultsIntegralEqualsShardSum(t *testing.T) {
	tr := shardQuickTrace(t, 53)
	workers := shardWorkerResults(t, tr, Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 11}, 4)
	merged := MergeResults(workers...)

	series := []struct {
		name string
		get  func(*Result) float64
	}{
		{"provisioned", func(r *Result) float64 { return r.ProvisionedGPUs.Integral(tr.Start, tr.End) }},
		{"committed", func(r *Result) float64 { return r.CommittedGPUs.Integral(tr.Start, tr.End) }},
		{"sessions", func(r *Result) float64 { return r.ActiveSessions.Integral(tr.Start, tr.End) }},
		{"trainings", func(r *Result) float64 { return r.ActiveTrainings.Integral(tr.Start, tr.End) }},
	}
	for _, s := range series {
		var sum float64
		for _, w := range workers {
			sum += s.get(w)
		}
		got := s.get(merged)
		if diff := math.Abs(got - sum); diff > 1e-6*(1+math.Abs(sum)) {
			t.Errorf("%s: merged integral %v != shard sum %v (diff %v)", s.name, got, sum, diff)
		}
	}
	wantTasks := 0
	for _, w := range workers {
		wantTasks += w.Tasks
	}
	if merged.Tasks != wantTasks {
		t.Errorf("merged tasks %d != shard sum %d", merged.Tasks, wantTasks)
	}
}

// TestMergeResultsOrderIndependentQuantiles is the completion-order
// property test: merging the same worker results in any order yields
// exactly the same delay and TCT quantiles (samples are multisets — the
// merge must not depend on which worker finished first).
func TestMergeResultsOrderIndependentQuantiles(t *testing.T) {
	tr := shardQuickTrace(t, 54)
	workers := shardWorkerResults(t, tr, Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 13}, 4)
	ref := MergeResults(workers...)
	quantiles := []float64{1, 25, 50, 75, 90, 99}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(workers))
		shuffled := make([]*Result, len(workers))
		for i, j := range perm {
			shuffled[i] = workers[j]
		}
		m := MergeResults(shuffled...)
		for _, q := range quantiles {
			if a, b := ref.Interactivity.Percentile(q), m.Interactivity.Percentile(q); a != b {
				t.Fatalf("perm %v: delay p%g differs: %v vs %v", perm, q, a, b)
			}
			if a, b := ref.TCT.Percentile(q), m.TCT.Percentile(q); a != b {
				t.Fatalf("perm %v: TCT p%g differs: %v vs %v", perm, q, a, b)
			}
		}
		if m.Tasks != ref.Tasks || m.Migrations != ref.Migrations {
			t.Fatalf("perm %v: counters differ", perm)
		}
		if a, b := ref.ProvisionedGPUs.Integral(tr.Start, tr.End), m.ProvisionedGPUs.Integral(tr.Start, tr.End); math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("perm %v: provisioned integral differs: %v vs %v", perm, a, b)
		}
	}
}

// TestShardedSavingsDriftBound quantifies both capacity contracts on
// mid-size traces (the full 17.5 h excerpt and, outside -short, the
// 10-day summer prefix), as drift of sharded saved-GPU-hours from the
// unsharded run, relative to the trace's reserved GPU-hours.
//
// Under LegacySplit, shards do not share cluster capacity — each worker
// autoscales on its own shard's load, pays host-granularity rounding
// alone, and scales out when its smaller cluster cannot place R distinct
// replicas — so savings drift below the unsharded run: at most 12 % at
// k=2 and 25 % at k=4 (measured: 8.2 %/22.4 % on the excerpt,
// 7.0 %/18.7 % on the 10-day summer, seed 42). The drift grows with k
// and shrinks as shards get larger.
//
// Under LeasePool, the shared virtual capacity pool's ledger replays the
// unsharded run's capacity decisions, so the drift is exactly zero at
// every k (measured 0.000 % on both traces at k=2 and k=4; the 1 %
// bound pinned here is the documented contract, with the slack covering
// nothing but float summation order). See docs/SHARDING.md.
func TestShardedSavingsDriftBound(t *testing.T) {
	traces := []struct {
		name string
		tr   *trace.Trace
	}{
		{"excerpt-17.5h", trace.MustGenerate(trace.AdobeExcerptConfig(42))},
	}
	if !testing.Short() {
		cfg := trace.AdobeSummerConfig(42)
		cfg.Duration = 10 * 24 * time.Hour
		traces = append(traces, struct {
			name string
			tr   *trace.Trace
		}{"summer-10d", trace.MustGenerate(cfg)})
	}
	bounds := map[ShardCapacity]map[int]float64{
		LegacySplit: {2: 0.12, 4: 0.25},
		LeasePool:   {2: 0.01, 4: 0.01},
	}
	modeName := map[ShardCapacity]string{LegacySplit: "legacy-split", LeasePool: "lease-pool"}
	for _, tc := range traces {
		tr := tc.tr
		cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 42}
		reserved := tr.ReservedGPUs().Integral(tr.Start, tr.End)
		if reserved <= 0 {
			t.Fatal("trace reserves no GPU-hours")
		}
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		baseSaved := reserved - base.ProvisionedGPUs.Integral(tr.Start, tr.End)
		for _, mode := range []ShardCapacity{LegacySplit, LeasePool} {
			for _, k := range []int{2, 4} {
				c := cfg
				c.ShardCapacity = mode
				res, err := RunSharded(c, k)
				if err != nil {
					t.Fatal(err)
				}
				saved := reserved - res.ProvisionedGPUs.Integral(tr.Start, tr.End)
				drift := math.Abs(saved-baseSaved) / reserved
				t.Logf("%s %s k=%d: saved %.1f vs unsharded %.1f (reserved %.1f) — drift %.3f%%",
					tc.name, modeName[mode], k, saved, baseSaved, reserved, drift*100)
				if bound := bounds[mode][k]; drift > bound {
					t.Errorf("%s %s k=%d: sharded savings drift %.3f%% of reserved GPU-hours exceeds the %g%% contract",
						tc.name, modeName[mode], k, drift*100, bound*100)
				}
				if res.Tasks != base.Tasks {
					t.Errorf("%s %s k=%d: sharding changed the task count: %d vs %d",
						tc.name, modeName[mode], k, res.Tasks, base.Tasks)
				}
			}
		}
	}
}

// TestFederatedShardedDoubleRunByteIdentical: the sharded federated path
// replays bit-for-bit, and its k<=1 form is exactly RunFederated.
func TestFederatedShardedDoubleRunByteIdentical(t *testing.T) {
	tr := shardQuickTrace(t, 55)
	cfg := FedConfig{
		Trace:           tr,
		Clusters:        DefaultFedClusters(4, 30),
		Route:           federation.LeastSubscribed{},
		PooledAutoscale: true,
		Seed:            17,
	}
	a, err := RunFederatedSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFederatedSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fedFingerprintOf(tr, a), fedFingerprintOf(tr, b)
	if fa != fb {
		t.Errorf("sharded federated double run diverged:\n  run1: %+v\n  run2: %+v", fa, fb)
	}

	plain, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunFederatedSharded(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp, f1 := fedFingerprintOf(tr, plain), fedFingerprintOf(tr, one); fp != f1 {
		t.Errorf("k=1 sharded federated diverged from RunFederated:\n  plain:   %+v\n  sharded: %+v", fp, f1)
	}
}

// TestFloorSharesNeverZero: splitting a scale-in floor across shards
// must leave no zero share — a worker's MinHosts=0 (or FedMinHosts=0)
// would read as "use the default" and multiply the aggregate floor (the
// k=8, MinHosts=4 case: four zero shares would each re-default to 4).
func TestFloorSharesNeverZero(t *testing.T) {
	equal8 := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	shares := floorShares(equal8, 4)
	for i, s := range shares {
		if s < 1 {
			t.Errorf("floorShares(8 shards, floor 4)[%d] = %d, want >= 1", i, s)
		}
	}
	sum := 0
	for _, s := range floorShares([]float64{3, 2, 1}, 20) {
		if s < 1 {
			t.Error("floorShares share below 1")
		}
		sum += s
	}
	if sum != 20 {
		t.Errorf("floorShares(3 shards, floor 20) sums to %d, want 20", sum)
	}
}

// TestRunShardedClampsToHostCount: more shards than hosts cannot each
// hold a host, so the shard count clamps — it must never let a zero host
// share read as "use the default" and invent capacity.
func TestRunShardedClampsToHostCount(t *testing.T) {
	tr := shardQuickTrace(t, 57)
	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 3, Seed: 21}
	over, err := RunSharded(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := RunSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprintOf(tr, over), fingerprintOf(tr, clamped); fa != fb {
		t.Errorf("k=10 over 3 hosts should clamp to k=3:\n  over:    %+v\n  clamped: %+v", fa, fb)
	}

	// Federated: the smallest member of a 6-cluster split of 30 hosts has
	// a single host, so any k>1 clamps all the way down to the plain run.
	fcfg := FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(6, 30),
		Route:    federation.LeastSubscribed{},
		Seed:     21,
	}
	fOver, err := RunFederatedSharded(fcfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	fPlain, err := RunFederated(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fedFingerprintOf(tr, fOver), fedFingerprintOf(tr, fPlain); fa != fb {
		t.Errorf("federated k=4 over a 1-host member should clamp to the plain run:\n  sharded: %+v\n  plain:   %+v", fa, fb)
	}
}

// TestFederatedShardedPreservesExplicitFloor: a caller-set
// federation-wide scale-in floor splits across the worker federations
// instead of being silently replaced by the workers' default floors —
// the merged fleet can never drain below the configured floor.
func TestFederatedShardedPreservesExplicitFloor(t *testing.T) {
	tr := shardQuickTrace(t, 58)
	const floor = 20
	res, err := RunFederatedSharded(FedConfig{
		Trace:           tr,
		Clusters:        DefaultFedClusters(4, 30),
		Route:           federation.LeastSubscribed{},
		PooledAutoscale: true,
		FedMinHosts:     floor,
		Seed:            23,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalHosts(); got < floor {
		t.Errorf("merged federation drained to %d hosts below the configured %d-host floor", got, floor)
	}
}

// TestMergeFedResultsIntegralEqualsShardSum: the federated merge keeps
// the MergeTimelines invariant federation-wide and per member cluster.
func TestMergeFedResultsIntegralEqualsShardSum(t *testing.T) {
	tr := shardQuickTrace(t, 56)
	cfg := FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(3, 30),
		Route:    federation.LeastSubscribed{},
		Seed:     19,
	}
	merged, err := RunFederatedSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var perCluster float64
	for _, c := range merged.Clusters {
		perCluster += c.ProvisionedGPUs.Integral(tr.Start, tr.End)
	}
	fedWide := merged.ProvisionedGPUs.Integral(tr.Start, tr.End)
	if math.Abs(perCluster-fedWide) > 1e-6*(1+math.Abs(fedWide)) {
		t.Errorf("federation-wide provisioned integral %v != per-cluster sum %v", fedWide, perCluster)
	}
	if merged.ProvisionedGPUHours <= 0 {
		t.Error("merged federated run provisioned nothing")
	}
}
