package sim

import (
	"math"
	"math/rand"
	"time"

	"notebookos/internal/gpu"
	"notebookos/internal/store"
)

// Latencies collects every latency model the simulator samples. The
// defaults reproduce the shapes of the paper's Figs. 9, 11, and 16-19.
type Latencies struct {
	// GSProcess is the Global Scheduler's per-request bookkeeping
	// (Fig. 15 step 1, excluding queueing/provisioning).
	GSProcess func(r *rand.Rand) time.Duration
	// Hop is one network hop between components (steps 2/4/10/12).
	Hop func(r *rand.Rand) time.Duration
	// PreProcess is the kernel's request pre-processing (step 5).
	PreProcess func(r *rand.Rand) time.Duration
	// Election is the executor election protocol (step 6, NotebookOS
	// only): "typically takes tens of milliseconds at most".
	Election func(r *rand.Rand) time.Duration
	// Sync is one small-object Raft synchronization (Fig. 11 "Sync"):
	// p90 = 54.79 ms, p95 = 66.69 ms, p99 = 268.25 ms.
	Sync func(r *rand.Rand) time.Duration
	// ColdStart is on-demand container provisioning (tens of seconds).
	ColdStart func(r *rand.Rand) time.Duration
	// WarmAttach binds a pre-warmed container (sub-second).
	WarmAttach func(r *rand.Rand) time.Duration
	// HostProvision is EC2-style server provisioning during scale-out.
	HostProvision func(r *rand.Rand) time.Duration
	// Store models large-object checkpoint reads/writes (Fig. 11).
	Store store.LatencyModel
	// Transfer models host<->VRAM parameter loads (§3.3).
	Transfer gpu.TransferModel
}

// DefaultLatencies returns the calibrated latency models.
func DefaultLatencies() Latencies {
	return Latencies{
		GSProcess:  uniformMS(1, 4),
		Hop:        uniformMS(0, 1),
		PreProcess: uniformMS(1, 3),
		// Election: log-uniform 5-80 ms, matching "tens of milliseconds".
		Election: func(r *rand.Rand) time.Duration {
			return logUniform(r, 5*time.Millisecond, 80*time.Millisecond)
		},
		// Sync: body 4-50 ms with a heavy tail to ~300 ms so that
		// p90/p95/p99 land near 55/67/268 ms.
		Sync: func(r *rand.Rand) time.Duration {
			u := r.Float64()
			switch {
			case u < 0.85:
				return logUniform(r, 4*time.Millisecond, 50*time.Millisecond)
			case u < 0.97:
				return logUniform(r, 50*time.Millisecond, 70*time.Millisecond)
			default:
				return logUniform(r, 70*time.Millisecond, 300*time.Millisecond)
			}
		},
		ColdStart: func(r *rand.Rand) time.Duration {
			return 18*time.Second + time.Duration(r.Int63n(int64(27*time.Second)))
		},
		WarmAttach: func(r *rand.Rand) time.Duration {
			return 80*time.Millisecond + time.Duration(r.Int63n(int64(320*time.Millisecond)))
		},
		HostProvision: func(r *rand.Rand) time.Duration {
			return 60*time.Second + time.Duration(r.Int63n(int64(60*time.Second)))
		},
		Store:    store.S3Model(),
		Transfer: gpu.DefaultTransfer(),
	}
}

func uniformMS(lo, hi int64) func(*rand.Rand) time.Duration {
	return func(r *rand.Rand) time.Duration {
		if hi <= lo {
			return time.Duration(lo) * time.Millisecond
		}
		return time.Duration(lo+r.Int63n(hi-lo)) * time.Millisecond
	}
}

func logUniform(r *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	ratio := float64(hi) / float64(lo)
	return time.Duration(float64(lo) * math.Pow(ratio, r.Float64()))
}
