package sim

import (
	"testing"
	"time"

	"notebookos/internal/des"
	"notebookos/internal/federation"
	"notebookos/internal/trace"
)

// prioHarness parks labeled waiters on a priority-mode queue and records
// the order capacity is granted in: each waiter consumes one unit when
// available and fails (stays parked) otherwise.
type prioHarness struct {
	wq       *capacityWaitQueue
	capacity int
	served   []string
}

func newPrioHarness(eng *des.Engine, aging time.Duration) *prioHarness {
	h := &prioHarness{wq: newCapacityWaitQueue(eng)}
	h.wq.usePriority(aging)
	return h
}

func (h *prioHarness) park(label string, weight int) {
	h.wq.WaitClass(weight, func() bool {
		if h.capacity == 0 {
			return false
		}
		h.capacity--
		h.served = append(h.served, label)
		return true
	})
}

func (h *prioHarness) free(n int) {
	h.capacity += n
	h.wq.Notify()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWaitQueuePriorityOrdering is the table-driven drain-order test:
// class weights rank heavier classes first at equal waits, equal ranks
// fall back to arrival order (FIFO within a class), and a light waiter
// that has waited proportionally longer outranks a heavy one — rank is
// waited×weight, not weight alone.
func TestWaitQueuePriorityOrdering(t *testing.T) {
	type park struct {
		label  string
		weight int
		at     time.Duration
	}
	cases := []struct {
		name  string
		parks []park
		drain time.Duration
		want  []string
	}{
		{
			name: "heavier class first at equal waits",
			parks: []park{
				{"be", 1, 0}, {"bat", 2, 0}, {"int", 4, 0},
			},
			drain: time.Second,
			want:  []string{"int", "bat", "be"},
		},
		{
			name: "FIFO within a class",
			parks: []park{
				{"a", 4, 0}, {"b", 4, 0}, {"c", 4, 0},
			},
			drain: time.Second,
			want:  []string{"a", "b", "c"},
		},
		{
			name: "rank is waited times weight",
			// be has waited 5s (rank 5), int only 1s (rank 4): the
			// best-effort waiter goes first despite the lighter class.
			parks: []park{
				{"be", 1, 0}, {"int", 4, 4 * time.Second},
			},
			drain: 5 * time.Second,
			want:  []string{"be", "int"},
		},
		{
			name: "equal rank breaks by arrival sequence",
			// int parked at 3s has rank 4×1s = 4s at the drain; be parked
			// at 0 has rank 4s too — the earlier arrival (be) wins.
			parks: []park{
				{"be", 1, 0}, {"int", 4, 3 * time.Second},
			},
			drain: 4 * time.Second,
			want:  []string{"be", "int"},
		},
		{
			name: "zero-time parks drain in arrival order",
			// All ranks are zero at a same-timestamp drain; only the
			// sequence orders them.
			parks: []park{
				{"x", 1, time.Second}, {"y", 4, time.Second}, {"z", 2, time.Second},
			},
			drain: time.Second,
			want:  []string{"x", "y", "z"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := des.New(wqT0)
			h := newPrioHarness(eng, time.Hour)
			for _, p := range tc.parks {
				p := p
				eng.After(p.at, func() { h.park(p.label, p.weight) })
			}
			eng.After(tc.drain, func() { h.free(len(tc.parks)) })
			eng.Run()
			if !equalStrings(h.served, tc.want) {
				t.Fatalf("drain order %v, want %v", h.served, tc.want)
			}
		})
	}
}

// TestWaitQueuePriorityPromotionPreventsStarvation is the
// starvation-freedom property. The adversary is a sustained interactive
// stream: a fresh weight-4 waiter parks 2.6 s before every drain (rank
// 10.4 s), each drain frees exactly one unit, and the lone best-effort
// waiter's rank (its age) never catches up within the horizon. With a
// huge aging bound the best-effort waiter is starved through every drain;
// with a 3 s bound it is promoted at the first drain past the bound and
// served ahead of the entire unpromoted stream.
func TestWaitQueuePriorityPromotionPreventsStarvation(t *testing.T) {
	run := func(aging time.Duration) []string {
		eng := des.New(wqT0)
		h := newPrioHarness(eng, aging)
		eng.After(0, func() { h.park("be", 1) })
		for j := 3; j <= 8; j++ {
			j := j
			eng.After(time.Duration(j)*time.Second-2600*time.Millisecond, func() {
				h.park("int", 4)
			})
			eng.After(time.Duration(j)*time.Second, func() { h.free(1) })
		}
		eng.Run()
		return h.served
	}

	starved := run(time.Hour)
	for i, label := range starved {
		if label == "be" {
			t.Fatalf("control run: best-effort served at drain %d despite the interactive stream (order %v)", i, starved)
		}
	}
	fair := run(3 * time.Second)
	if len(fair) == 0 || fair[0] != "be" {
		t.Fatalf("aging run: best-effort not served first once promoted (order %v)", fair)
	}
}

// TestWaitQueuePriorityFailedWaitersKeepAge: a waiter that fails a drain
// keeps its original enqueue time — its rank keeps growing — and retries
// ahead of waiters that arrived mid-drain, like the FIFO path's splice.
func TestWaitQueuePriorityFailedWaitersKeepAge(t *testing.T) {
	eng := des.New(wqT0)
	h := newPrioHarness(eng, time.Hour)
	spawned := false
	eng.After(0, func() {
		h.wq.WaitClass(1, func() bool {
			if h.capacity == 0 {
				if !spawned {
					spawned = true
					// A same-weight waiter arriving mid-drain: younger, so
					// it must rank behind the kept original.
					h.park("spawned", 1)
				}
				return false
			}
			h.capacity--
			h.served = append(h.served, "original")
			return true
		})
	})
	eng.After(time.Second, func() { h.free(0) })   // drain with no capacity: original fails, spawns
	eng.After(2*time.Second, func() { h.free(2) }) // both served, original first
	eng.Run()
	if !equalStrings(h.served, []string{"original", "spawned"}) {
		t.Fatalf("order %v, want [original spawned]", h.served)
	}
}

// TestWaitQueuePriorityPlainWaitIsWeightOne: Wait on a priority-mode
// queue parks at weight 1, interchangeable with WaitClass(1, ...) — and
// weights below 1 clamp up to 1.
func TestWaitQueuePriorityPlainWaitIsWeightOne(t *testing.T) {
	eng := des.New(wqT0)
	h := newPrioHarness(eng, time.Hour)
	eng.After(0, func() {
		h.wq.Wait(func() bool {
			if h.capacity == 0 {
				return false
			}
			h.capacity--
			h.served = append(h.served, "plain")
			return true
		})
		h.park("clamped", -3)
		h.park("classed", 1)
	})
	eng.After(time.Second, func() { h.free(3) })
	eng.Run()
	if !equalStrings(h.served, []string{"plain", "clamped", "classed"}) {
		t.Fatalf("order %v, want arrival order at equal effective weight", h.served)
	}
}

// sloQuickTrace is a classed trace for the SLO-aware federated tests: the
// flash-crowd scenario carries all three SLO classes (researcher =
// interactive, batch-heavy = batch, student = best-effort) and its spikes
// actually engage the wait-queue.
func sloQuickTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	spec := trace.FlashCrowdScenario()
	cfg, err := spec.Config(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 6 * time.Hour
	return trace.MustGenerate(cfg)
}

// TestFederatedSLOAwareSameSeedBitForBit double-runs an SLO-aware
// federated simulation per route policy and asserts bit-identical results
// including every per-class delay distribution — the priority wait-queue
// must be as deterministic as the FIFO path it replaces.
func TestFederatedSLOAwareSameSeedBitForBit(t *testing.T) {
	tr := sloQuickTrace(t, 33)
	for _, route := range []federation.RoutePolicy{
		federation.LocalFirst{},
		federation.LeastSubscribedScored(),
		federation.RoundRobin(),
	} {
		run := func() (*FedResult, fedFingerprint) {
			res, err := RunFederated(FedConfig{
				Trace:    tr,
				Clusters: DefaultFedClusters(2, 30),
				Route:    route,
				SLOAware: true,
				Seed:     7,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, fedFingerprintOf(tr, res)
		}
		ra, fa := run()
		rb, fb := run()
		if fa != fb {
			t.Fatalf("%s: SLO-aware double run diverged:\n%+v\n%+v", route.Name(), fa, fb)
		}
		for _, cl := range trace.SLOClasses() {
			pa, pb := ra.ClassDelay[cl].Percentile(50), rb.ClassDelay[cl].Percentile(50)
			if pa != pb || ra.ClassDelay[cl].N() != rb.ClassDelay[cl].N() {
				t.Fatalf("%s: class %s diverged: p50 %v vs %v", route.Name(), cl, pa, pb)
			}
		}
	}
}

// TestFederatedSLOAwareClassDelays: an SLO-aware run on a classed trace
// populates every class's delay sample, and a FIFO (default) run leaves
// ClassDelay nil — the classed accounting is strictly opt-in.
func TestFederatedSLOAwareClassDelays(t *testing.T) {
	tr := sloQuickTrace(t, 11)
	cfg := FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(2, 30),
		Route:    federation.LocalFirst{},
		Seed:     7,
	}
	fifo, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.ClassDelay != nil {
		t.Fatal("FIFO run must not allocate ClassDelay")
	}
	cfg.SLOAware = true
	slo, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cl := range trace.SLOClasses() {
		s := slo.ClassDelay[cl]
		if s == nil {
			t.Fatalf("class %s missing from ClassDelay", cl)
		}
		if s.N() == 0 {
			t.Fatalf("class %s has no delay samples on a classed trace", cl)
		}
		total += s.N()
	}
	if total != slo.Tasks {
		t.Fatalf("class delay samples %d != tasks %d", total, slo.Tasks)
	}
}
