package sim

import (
	"testing"
	"time"

	"notebookos/internal/metrics"
	"notebookos/internal/trace"
)

// TestStreamingMatchesMaterialized pins the streaming path's event-order
// equivalence argument: simulating a lazily-injected StreamGen(k=1) source
// produces the same result as materializing the same GenConfig and
// replaying it up front — for every policy. (StreamGen(k=1) emits
// byte-identical sessions, so any divergence here would be the injector's
// event ordering, not the generator.)
func TestStreamingMatchesMaterialized(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(41)
	tr := trace.MustGenerate(gcfg)
	gen, err := trace.NewStreamGen(gcfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		mat, err := Run(Config{Trace: tr, Policy: p, Hosts: 30, Seed: 5})
		if err != nil {
			t.Fatalf("%s materialized: %v", p, err)
		}
		str, err := Run(Config{Source: gen, Policy: p, Hosts: 30, Seed: 5})
		if err != nil {
			t.Fatalf("%s streaming: %v", p, err)
		}
		fm, fs := fingerprintOf(tr, mat), fingerprintOf(tr, str)
		if fm != fs {
			t.Errorf("%s: streaming diverged from materialized:\n  materialized: %+v\n  streaming:    %+v", p, fm, fs)
		}
		if mat.Sessions != str.Sessions || mat.Sessions != len(tr.Sessions) {
			t.Errorf("%s: session counts diverged: materialized %d, streaming %d, trace %d",
				p, mat.Sessions, str.Sessions, len(tr.Sessions))
		}
	}
}

// TestStreamingFederatedMatchesMaterialized is the federated analogue.
func TestStreamingFederatedMatchesMaterialized(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(43)
	gcfg.Duration = 8 * time.Hour
	tr := trace.MustGenerate(gcfg)
	gen, err := trace.NewStreamGen(gcfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := RunFederated(FedConfig{Trace: tr, Seed: 5})
	if err != nil {
		t.Fatalf("materialized: %v", err)
	}
	str, err := RunFederated(FedConfig{Source: gen, Seed: 5})
	if err != nil {
		t.Fatalf("streaming: %v", err)
	}
	if mat.Tasks != str.Tasks || mat.Migrations != str.Migrations ||
		mat.CrossMigrations != str.CrossMigrations ||
		mat.ScaleOuts != str.ScaleOuts || mat.ScaleIns != str.ScaleIns ||
		mat.RemoteExecutions != str.RemoteExecutions {
		t.Errorf("counters diverged:\n  materialized: %+v\n  streaming:    %+v", mat, str)
	}
	if mat.ActiveGPUHours != str.ActiveGPUHours ||
		mat.ProvisionedGPUHours != str.ProvisionedGPUHours ||
		mat.ReservedGPUHours != str.ReservedGPUHours {
		t.Errorf("hours diverged: materialized (%.6f, %.6f, %.6f) streaming (%.6f, %.6f, %.6f)",
			mat.ActiveGPUHours, mat.ProvisionedGPUHours, mat.ReservedGPUHours,
			str.ActiveGPUHours, str.ProvisionedGPUHours, str.ReservedGPUHours)
	}
	if p50m, p50s := mat.TCT.Percentile(50), str.TCT.Percentile(50); p50m != p50s {
		t.Errorf("TCT p50 diverged: %.6f vs %.6f", p50m, p50s)
	}
}

// TestRunStreamShardedDeterministic double-runs the streaming sharded path
// (including lean metrics, whose reservoirs are seeded) and asserts
// identical merged results — the same guarantee RunSharded gives, without
// a trace ever being materialized.
func TestRunStreamShardedDeterministic(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(47)
	run := func() *Result {
		res, err := RunStreamSharded(gcfg, Config{Policy: PolicyNotebookOS, Hosts: 30, LeanMetrics: true, Seed: 11}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Sessions == 0 || a.Tasks == 0 {
		t.Fatalf("empty run: %d sessions, %d tasks", a.Sessions, a.Tasks)
	}
	type fp struct {
		sessions, tasks, migrations, outs, ins int
		active, reserved, server               float64
		tctP50, delayP50                       float64
	}
	of := func(r *Result) fp {
		return fp{
			sessions: r.Sessions, tasks: r.Tasks, migrations: r.Migrations,
			outs: r.ScaleOuts, ins: r.ScaleIns,
			active: r.ActiveGPUHours, reserved: r.ReservedGPUHours, server: r.ServerHours,
			tctP50: r.TCT.Percentile(50), delayP50: r.Interactivity.Percentile(50),
		}
	}
	if of(a) != of(b) {
		t.Errorf("streaming sharded double-run diverged:\n  run1: %+v\n  run2: %+v", of(a), of(b))
	}
}

// TestMillionSessionStreamCanary is the scale canary ISSUE 6 gates on: a
// 90-day, ~10^6-session workload simulated end to end through the
// streaming sharded path with lean metrics, with peak heap measured via
// runtime.ReadMemStats. Memory must be bounded by session *concurrency*
// and the window — sublinear in total session count — which the test pins
// two ways: an absolute budget, and (in full mode) a full-window run whose
// session count is ~8x the short window's but whose peak heap must stay
// within a small constant factor of it. -short runs only the 1/8 window.
func TestMillionSessionStreamCanary(t *testing.T) {
	base := Config{Policy: PolicyNotebookOS, Hosts: 128, LeanMetrics: true, Seed: 3}
	small := trace.MillionSessionConfig(3)
	small.Duration = small.Duration / 8

	var resSmall *Result
	peakSmall := metrics.PeakHeapDuring(func() {
		var err error
		resSmall, err = RunStreamSharded(small, base, 2)
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		return
	}
	if resSmall.Sessions < 100_000 {
		t.Fatalf("small window admitted only %d sessions; canary lost its scale", resSmall.Sessions)
	}
	if resSmall.Tasks == 0 {
		t.Fatal("small window executed no tasks")
	}
	const budget = 1 << 30 // 1 GiB: far above a healthy bounded run, catches O(sessions) regressions
	if peakSmall > budget/4 {
		t.Errorf("small-window peak heap %d MiB exceeds %d MiB", peakSmall>>20, (budget/4)>>20)
	}
	t.Logf("small window: %d sessions, %d tasks, peak heap %d MiB",
		resSmall.Sessions, resSmall.Tasks, peakSmall>>20)
	if testing.Short() {
		return
	}

	var resFull *Result
	peakFull := metrics.PeakHeapDuring(func() {
		var err error
		resFull, err = RunStreamSharded(trace.MillionSessionConfig(3), base, 2)
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		return
	}
	if resFull.Sessions < 900_000 || resFull.Sessions > 1_100_000 {
		t.Errorf("full window admitted %d sessions, want ~1M", resFull.Sessions)
	}
	if peakFull > budget {
		t.Errorf("full-run peak heap %d MiB exceeds budget %d MiB", peakFull>>20, budget>>20)
	}
	// ~8x the sessions must not cost ~8x the memory. A factor 3 leaves room
	// for the larger steady-state cluster and GC timing noise while still
	// refuting linear growth.
	if min := uint64(32 << 20); peakSmall < min {
		peakSmall = min // avoid a vacuous ratio when the small run is tiny
	}
	if peakFull > 3*peakSmall {
		t.Errorf("peak heap grew superlinearly: small window %d MiB -> full %d MiB (>3x) for ~8x sessions",
			peakSmall>>20, peakFull>>20)
	}
	t.Logf("full window: %d sessions, %d tasks, peak heap %d MiB",
		resFull.Sessions, resFull.Tasks, peakFull>>20)
}
