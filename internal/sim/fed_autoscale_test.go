package sim

import (
	"testing"
	"time"

	"notebookos/internal/federation"
)

// TestFederatedPooledSameSeedBitForBit is the fed-autoscale determinism
// test: double-running a pooled-autoscaling federated simulation (with a
// non-uniform latency matrix, covering both tentpole paths) must produce
// identical results.
func TestFederatedPooledSameSeedBitForBit(t *testing.T) {
	tr := fedQuickTrace(33)
	cfg := FedConfig{
		Trace:           tr,
		Clusters:        DefaultFedClusters(5, 30),
		Route:           federation.LatencyAware{},
		Latency:         federation.GeoBandedMatrix(5, 2, 5*time.Millisecond, 40*time.Millisecond),
		PooledAutoscale: true,
		Seed:            7,
	}
	run := func() fedFingerprint {
		res, err := RunFederated(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fedFingerprintOf(tr, res)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("pooled run diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// TestFederatedPooledDrainsBelowPerMemberFloors pins the point of pooled
// autoscaling: on a fragmented federation (k=6 over 30 hosts) the pooled
// run must end with fewer live hosts than the sum of the per-member
// MinHosts floors that pin the per-member run, and must not save fewer
// GPU-hours than it.
func TestFederatedPooledDrainsBelowPerMemberFloors(t *testing.T) {
	tr := fedQuickTrace(42)
	base := FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(6, 30),
		Route:    federation.LeastSubscribed{},
		Seed:     42,
	}
	pooledCfg := base
	pooledCfg.PooledAutoscale = true
	member, err := RunFederated(base)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunFederated(pooledCfg)
	if err != nil {
		t.Fatal(err)
	}
	memberHosts, pooledHosts := member.FinalHosts(), pooled.FinalHosts()
	if pooledHosts >= memberHosts {
		t.Errorf("pooled ended with %d hosts, per-member with %d — pooling did not drain the floors",
			pooledHosts, memberHosts)
	}
	if pooled.GPUHoursSaved() < member.GPUHoursSaved() {
		t.Errorf("pooled saved %.1f GPUh < per-member %.1f", pooled.GPUHoursSaved(), member.GPUHoursSaved())
	}
	// The placement anchor: some member still holds R hosts.
	anchored := false
	for _, c := range pooled.Clusters {
		if c.FinalHosts >= 3 {
			anchored = true
		}
	}
	if !anchored {
		t.Error("no member retained R hosts after pooled scale-in")
	}
}

// TestFedConfigLatencyMatrixValidation: a matrix sized for the wrong
// member count must be rejected, not silently mis-indexed.
func TestFedConfigLatencyMatrixValidation(t *testing.T) {
	tr := fedQuickTrace(42)
	_, err := RunFederated(FedConfig{
		Trace:    tr,
		Clusters: DefaultFedClusters(4, 30),
		Latency:  federation.UniformMatrix(3, 25*time.Millisecond),
		Seed:     42,
	})
	if err == nil {
		t.Fatal("3-member matrix accepted for a 4-cluster federation")
	}
}
