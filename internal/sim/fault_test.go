package sim

import (
	"container/heap"
	"math"
	"testing"
	"time"

	"notebookos/internal/trace"
)

// faultFingerprint extends fingerprint with the fault-injection outcomes,
// so double-run comparisons pin the failure path bit-for-bit too.
type faultFingerprint struct {
	base                           fingerprint
	crashes, recoveries, failovers int
	restarts, abandonments         int
	lostGPUHours                   float64
	upHostHours                    float64
	recoveryN                      int
	recoveryP99                    float64
}

func faultFingerprintOf(tr *trace.Trace, r *Result) faultFingerprint {
	f := faultFingerprint{
		base:         fingerprintOf(tr, r),
		crashes:      r.HostCrashes,
		recoveries:   r.HostRecoveries,
		failovers:    r.Failovers,
		restarts:     r.TaskRestarts,
		abandonments: r.Abandonments,
		lostGPUHours: r.LostGPUHours,
	}
	if r.Availability != nil {
		f.upHostHours = r.Availability.Integral(tr.Start, tr.End)
	}
	if r.RecoveryTime != nil {
		f.recoveryN = r.RecoveryTime.N()
		f.recoveryP99 = r.RecoveryTime.Percentile(99)
	}
	return f
}

// TestZeroFaultSpecIsIdentity pins the zero-fault contract: a nil Faults
// pointer and an explicit empty FaultSpec produce byte-identical results
// (no extra RNG draws, no extra events, recorders left nil) on the plain,
// lease-pool sharded, and streaming paths, for every policy.
func TestZeroFaultSpecIsIdentity(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(61)
	gcfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(gcfg)

	for _, p := range []Policy{PolicyReservation, PolicyBatch, PolicyNotebookOS, PolicyLCP} {
		base, err := Run(Config{Trace: tr, Policy: p, Hosts: 30, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		empty, err := Run(Config{Trace: tr, Policy: p, Hosts: 30, Seed: 7, Faults: &trace.FaultSpec{}})
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := fingerprintOf(tr, base), fingerprintOf(tr, empty); fa != fb {
			t.Errorf("%s: empty FaultSpec changed the run:\n  nil:   %+v\n  empty: %+v", p, fa, fb)
		}
		for name, r := range map[string]*Result{"nil": base, "empty": empty} {
			if r.Availability != nil || r.RecoveryTime != nil {
				t.Errorf("%s/%s: fault recorders must stay nil without faults", p, name)
			}
			if r.HostCrashes != 0 || r.Failovers != 0 || r.TaskRestarts != 0 || r.Abandonments != 0 {
				t.Errorf("%s/%s: fault counters must stay zero without faults", p, name)
			}
		}
	}

	// Lease-pool sharded path: the ledger replays the parent config, so the
	// identity must hold through the barrier protocol too.
	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, ShardCapacity: LeasePool}
	a, err := RunSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &trace.FaultSpec{}
	b, err := RunSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprintOf(tr, a), fingerprintOf(tr, b); fa != fb {
		t.Errorf("lease k=2: empty FaultSpec changed the run:\n  nil:   %+v\n  empty: %+v", fa, fb)
	}
	if b.Availability != nil || b.RecoveryTime != nil {
		t.Error("lease k=2: fault recorders must stay nil without faults")
	}

	// Streaming path.
	genA, err := trace.NewStreamGen(gcfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	genB, err := trace.NewStreamGen(gcfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Run(Config{Source: genA, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Run(Config{Source: genB, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &trace.FaultSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprintOf(tr, sa), fingerprintOf(tr, sb); fa != fb {
		t.Errorf("streaming: empty FaultSpec changed the run:\n  nil:   %+v\n  empty: %+v", fa, fb)
	}
}

// TestFaultRunsDoubleRunByteIdentical pins fault-stream determinism: two
// runs of the same config under a heavy fault profile are byte-identical —
// fault counters included — on the plain, lease-pool sharded, and
// streaming sharded paths.
func TestFaultRunsDoubleRunByteIdentical(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(62)
	gcfg.Duration = 8 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.HeavyFaultProfile()
	faults.HostMTBFHours = 8 // churn hard enough to exercise every repair path

	cfg := Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &faults}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := faultFingerprintOf(tr, a), faultFingerprintOf(tr, b)
	if fa != fb {
		t.Errorf("plain double run diverged:\n  run1: %+v\n  run2: %+v", fa, fb)
	}
	if a.HostCrashes == 0 || a.TaskRestarts == 0 {
		t.Errorf("heavy profile must exercise the fault path, got crashes=%d restarts=%d",
			a.HostCrashes, a.TaskRestarts)
	}
	if a.Availability == nil || a.RecoveryTime == nil {
		t.Fatal("fault recorders must be live under faults")
	}

	lcfg := cfg
	lcfg.ShardCapacity = LeasePool
	la, err := RunSharded(lcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := RunSharded(lcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fla, flb := faultFingerprintOf(tr, la), faultFingerprintOf(tr, lb); fla != flb {
		t.Errorf("lease k=3 double run diverged:\n  run1: %+v\n  run2: %+v", fla, flb)
	}
	// The lease pool's capacity ledger replays the parent config unsharded,
	// so its fault stream — and every capacity metric derived from it — is
	// exactly the plain run's.
	if la.HostCrashes != a.HostCrashes || la.Failovers != a.Failovers ||
		la.TaskRestarts != a.TaskRestarts || la.Abandonments != a.Abandonments {
		t.Errorf("lease ledger fault counters diverged from unsharded: sharded %d/%d/%d/%d, plain %d/%d/%d/%d",
			la.HostCrashes, la.Failovers, la.TaskRestarts, la.Abandonments,
			a.HostCrashes, a.Failovers, a.TaskRestarts, a.Abandonments)
	}
	if got, want := la.Availability.Integral(tr.Start, tr.End), a.Availability.Integral(tr.Start, tr.End); got != want {
		t.Errorf("lease ledger availability integral diverged: sharded %v, plain %v", got, want)
	}

	scfg := Config{Policy: PolicyNotebookOS, Hosts: 30, LeanMetrics: true, Seed: 7, Faults: &faults}
	sa, err := RunStreamSharded(gcfg, scfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := RunStreamSharded(gcfg, scfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fsa, fsb := faultFingerprintOf(tr, sa), faultFingerprintOf(tr, sb); fsa != fsb {
		t.Errorf("stream k=2 double run diverged:\n  run1: %+v\n  run2: %+v", fsa, fsb)
	}
}

// TestFederatedFaultsDoubleRunByteIdentical is the federated twin,
// additionally exercising member-scoped outages and the penalty-scale
// degradation path.
func TestFederatedFaultsDoubleRunByteIdentical(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(63)
	gcfg.Duration = 8 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.FaultSpec{
		HostMTBFHours: 12,
		HostMTTRHours: 0.5,
		Outages:       []trace.OutageSpec{{StartHour: 3, DurationHours: 1, HostFraction: 0.5, Cluster: "c0"}},
		Degradations:  []trace.DegradeSpec{{StartHour: 2, DurationHours: 2, Factor: 6}},
	}
	cfg := FedConfig{Trace: tr, Clusters: DefaultFedClusters(3, 30), Seed: 7, Faults: &faults}
	a, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.HostCrashes != b.HostCrashes || a.Failovers != b.Failovers ||
		a.TaskRestarts != b.TaskRestarts || a.Abandonments != b.Abandonments ||
		a.LostGPUHours != b.LostGPUHours || a.Tasks != b.Tasks ||
		a.TCT.Percentile(99) != b.TCT.Percentile(99) ||
		a.Availability.Integral(tr.Start, tr.End) != b.Availability.Integral(tr.Start, tr.End) {
		t.Errorf("federated double run diverged:\n  run1: crashes=%d failovers=%d restarts=%d\n  run2: crashes=%d failovers=%d restarts=%d",
			a.HostCrashes, a.Failovers, a.TaskRestarts, b.HostCrashes, b.Failovers, b.TaskRestarts)
	}
	if a.HostCrashes == 0 {
		t.Error("federated heavy profile must crash hosts")
	}

	// Zero-fault identity for the federated runner.
	base, err := RunFederated(FedConfig{Trace: tr, Clusters: DefaultFedClusters(3, 30), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := RunFederated(FedConfig{Trace: tr, Clusters: DefaultFedClusters(3, 30), Seed: 7, Faults: &trace.FaultSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Tasks != empty.Tasks || base.TCT.Percentile(99) != empty.TCT.Percentile(99) ||
		base.ProvisionedGPUHours != empty.ProvisionedGPUHours ||
		base.Migrations != empty.Migrations || base.ScaleOuts != empty.ScaleOuts {
		t.Error("federated: empty FaultSpec changed the run")
	}
	if empty.Availability != nil || empty.RecoveryTime != nil {
		t.Error("federated: fault recorders must stay nil without faults")
	}
}

// probeRunningNbosSession steps the simulation forward until some session
// has an in-flight nbosTask, returning the session and its machine.
func probeRunningNbosSession(t *testing.T, s *sim) (*simSession, *nbosTask) {
	t.Helper()
	for at := 10 * time.Minute; at < s.end.Sub(s.start); at += 10 * time.Minute {
		s.eng.RunUntil(s.start.Add(at))
		for _, ss := range s.faultSessions {
			if nt, ok := ss.cur.(*nbosTask); ok && !nt.dead {
				return ss, nt
			}
		}
	}
	t.Fatal("no session with an in-flight nbosTask found")
	return nil, nil
}

// TestReplicaCrashFailsOverWithoutRestart pins the acceptance criterion:
// killing one replica of a 3-replica session whose task is mid-execution
// fails the session over (one election charge) WITHOUT restarting the
// task.
func TestReplicaCrashFailsOverWithoutRestart(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(64)
	gcfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(gcfg)
	// Enabled spec with astronomically rare natural crashes: the only crash
	// in this run is the one the test injects.
	faults := trace.FaultSpec{HostMTBFHours: 1e9, HostMTTRHours: 1}
	s, err := newSim(Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()

	ss, nt := probeRunningNbosSession(t, s)
	var victim *simHost
	for _, sh := range s.hostList {
		if sh.h == nt.h {
			continue // never the executor
		}
		if hostsContain(ss.hosts, sh.h) {
			victim = sh
			break
		}
	}
	if victim == nil {
		t.Fatal("session has no non-executor replica host")
	}
	before := *s.res
	s.crashHost(victim, time.Hour)
	if s.res.Failovers != before.Failovers+1 {
		t.Errorf("non-executor replica crash must fail over once, got %d -> %d", before.Failovers, s.res.Failovers)
	}
	if s.res.TaskRestarts != before.TaskRestarts {
		t.Errorf("quorum-preserving failover must NOT restart the task, restarts %d -> %d",
			before.TaskRestarts, s.res.TaskRestarts)
	}
	if nt.dead {
		t.Error("the in-flight task must survive a quorum-preserving failover")
	}
	for i, h := range ss.hosts {
		if h == nil {
			t.Errorf("replica slot %d not rehomed after failover", i)
		}
		if h == victim.h {
			t.Errorf("replica slot %d still points at the crashed host", i)
		}
	}
	// The run must still complete and stay internally consistent.
	s.eng.RunUntil(s.end.Add(24 * time.Hour))
	res, err := s.finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.HostCrashes != 1 || res.HostRecoveries != 1 {
		t.Errorf("expected exactly the injected crash/recovery, got %d/%d", res.HostCrashes, res.HostRecoveries)
	}
}

// TestExecutorCrashRestartsTask: crashing the host the task is executing
// on aborts it through the checkpoint-restore path, and the task still
// completes after the retry.
func TestExecutorCrashRestartsTask(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(65)
	gcfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.FaultSpec{HostMTBFHours: 1e9, HostMTTRHours: 1}
	s, err := newSim(Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()

	_, nt := probeRunningNbosSession(t, s)
	var victim *simHost
	for _, sh := range s.hostList {
		if sh.h == nt.h {
			victim = sh
			break
		}
	}
	if victim == nil {
		t.Fatal("executor host not in host list")
	}
	s.crashHost(victim, time.Hour)
	if !nt.dead {
		t.Fatal("executor crash must abort the in-flight task")
	}
	if s.res.TaskRestarts != 1 {
		t.Errorf("executor crash must restart the task once, got %d", s.res.TaskRestarts)
	}
	s.eng.RunUntil(s.end.Add(24 * time.Hour))
	res, err := s.finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandonments != 0 {
		t.Errorf("one restart is within every retry budget, got %d abandonments", res.Abandonments)
	}
	if res.LostGPUHours <= 0 && nt.phase >= 1 {
		t.Error("an aborted mid-training execution must record lost GPU-hours")
	}
}

// TestQuorumLossRestartsTask: a session already down one replica that
// loses a second (non-executor) replica loses raft quorum — the task
// aborts through the checkpoint-restore path with no failover credit.
func TestQuorumLossRestartsTask(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(66)
	gcfg.Duration = 4 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.FaultSpec{HostMTBFHours: 1e9, HostMTTRHours: 1}
	s, err := newSim(Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()

	ss, nt := probeRunningNbosSession(t, s)
	// Knock out one non-executor replica by hand (an unrehomed loss), then
	// crash a second: 1 alive of 3 is below quorum.
	downed := false
	var victim *simHost
	for i, h := range ss.hosts {
		if h == nt.h || h == nil {
			continue
		}
		if !downed {
			_ = h.RemoveReplica(ss.replicaKeyFor(i + 1))
			ss.hosts[i] = nil
			downed = true
			continue
		}
		for _, sh := range s.hostList {
			if sh.h == h {
				victim = sh
				break
			}
		}
		break
	}
	if !downed || victim == nil {
		t.Fatal("could not set up the two-replica loss")
	}
	before := s.res.Failovers
	s.crashHost(victim, time.Hour)
	if !nt.dead {
		t.Fatal("quorum loss must abort the in-flight task")
	}
	if s.res.TaskRestarts != 1 {
		t.Errorf("quorum loss must restart the task, got %d restarts", s.res.TaskRestarts)
	}
	if s.res.Failovers != before {
		t.Errorf("quorum loss is not a failover, got %d -> %d", before, s.res.Failovers)
	}
}

// TestRetryBudgetAbandonsBySLOClass pins the SLO-aware retry budget:
// interactive work abandons after 1 restart (MaxRetries/3 floored at 1),
// batch after MaxRetries, and every abandonment is counted.
func TestRetryBudgetAbandonsBySLOClass(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(67)
	gcfg.Duration = 2 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.FaultSpec{HostMTBFHours: 1e9, HostMTTRHours: 1, MaxRetries: 3}
	s, err := newSim(Config{Trace: tr, Policy: PolicyNotebookOS, Hosts: 30, Seed: 7, Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	s.eng.RunUntil(s.start.Add(time.Minute))

	task := trace.Task{Submit: s.now(), Duration: time.Hour, GPUs: 1}
	inter := &simSession{src: &trace.Session{ID: "probe-i", SLO: trace.SLOInteractive}, running: true}
	s.restartTask(inter, task, s.now())
	if s.res.TaskRestarts != 1 || s.res.Abandonments != 0 {
		t.Fatalf("first interactive restart must be granted: restarts=%d abandoned=%d",
			s.res.TaskRestarts, s.res.Abandonments)
	}
	s.restartTask(inter, task, s.now())
	if s.res.Abandonments != 1 {
		t.Errorf("interactive budget is 1 (MaxRetries/3 floored): second restart must abandon, got %d",
			s.res.Abandonments)
	}
	if inter.running {
		t.Error("abandonment with an empty queue must leave the session idle")
	}

	batch := &simSession{src: &trace.Session{ID: "probe-b", SLO: trace.SLOBatch}, running: true}
	for i := 0; i < 3; i++ {
		s.restartTask(batch, task, s.now())
	}
	if s.res.Abandonments != 1 {
		t.Errorf("batch budget is 3: three restarts must all be granted, abandoned=%d", s.res.Abandonments)
	}
	s.restartTask(batch, task, s.now())
	if s.res.Abandonments != 2 {
		t.Errorf("fourth batch restart must abandon, got %d", s.res.Abandonments)
	}
	// Backoff doubles per attempt on top of the checkpoint-restore charge:
	// 30+15, then 30+30, 30+60 for the batch session's three attempts.
	want := []float64{45, 45, 60, 90}
	got := s.res.RecoveryTime.Values()
	if len(got) != len(want) {
		t.Fatalf("expected %d recovery charges, got %v", len(want), got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("recovery charge %d: want %vs, got %vs", i, want[i], got[i])
		}
	}
}

// renewalEvent is one crash or recovery in the reference replay of
// TestAvailabilityIntegralMatchesRenewalChain.
type renewalEvent struct {
	at    time.Time
	delta int
	down  time.Duration
}

type renewalHeap []renewalEvent

func (h renewalHeap) Len() int            { return len(h) }
func (h renewalHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h renewalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *renewalHeap) Push(x interface{}) { *h = append(*h, x.(renewalEvent)) }
func (h *renewalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestAvailabilityIntegralMatchesRenewalChain is the availability-timeline
// property test: under the Batch policy the host count changes ONLY
// through fault churn (no autoscaler, no per-session provisioning), so
// the Availability integral must exactly equal the up-host-hours of the
// host slots' alternating renewal chain, replayed independently here from
// trace.HostFault alone.
func TestAvailabilityIntegralMatchesRenewalChain(t *testing.T) {
	gcfg := trace.AdobeExcerptConfig(68)
	gcfg.Duration = 12 * time.Hour
	tr := trace.MustGenerate(gcfg)
	faults := trace.FaultSpec{HostMTBFHours: 6, HostMTTRHours: 0.75}
	const hosts = 30
	const seed = 7
	res, err := Run(Config{Trace: tr, Policy: PolicyBatch, Hosts: hosts, Seed: seed, Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostCrashes < 10 {
		t.Fatalf("want a busy renewal chain, got %d crashes", res.HostCrashes)
	}

	// Reference replay: slot k's clock starts when the slot joins; a crash
	// at t with downtime d recovers at t+d into a fresh slot (the next
	// sequence number, assigned in recovery-time order — the order the
	// simulator's addHost calls fire).
	var h renewalHeap
	slot := 0
	arm := func(at time.Time) {
		slot++
		if up, down := faults.HostFault(seed, uint64(slot)); up > 0 {
			heap.Push(&h, renewalEvent{at: at.Add(up), delta: -1, down: down})
		}
	}
	for i := 0; i < hosts; i++ {
		arm(tr.Start)
	}
	// The simulator drains events until end+24h (Run's drain window), so
	// the chain replays to the same stopping point; the integral clamps
	// contributions at the window end like Timeline.Integral does.
	stop := tr.End.Add(24 * time.Hour)
	clamp := func(at time.Time) time.Time {
		if at.After(tr.End) {
			return tr.End
		}
		return at
	}
	live := float64(hosts)
	integral := 0.0
	last := tr.Start
	crashes := 0
	for h.Len() > 0 {
		ev := heap.Pop(&h).(renewalEvent)
		if ev.at.After(stop) {
			break
		}
		integral += live * clamp(ev.at).Sub(clamp(last)).Hours()
		last = ev.at
		live += float64(ev.delta)
		if ev.delta < 0 {
			crashes++
			heap.Push(&h, renewalEvent{at: ev.at.Add(ev.down), delta: +1})
		} else {
			arm(ev.at)
		}
	}
	integral += live * tr.End.Sub(clamp(last)).Hours()

	got := res.Availability.Integral(tr.Start, tr.End)
	if math.Abs(got-integral) > 1e-6*integral {
		t.Errorf("availability integral diverged from renewal replay: sim %.6f, replay %.6f up-host-hours",
			got, integral)
	}
	if res.HostCrashes != crashes {
		t.Errorf("crash count diverged from renewal replay: sim %d, replay %d", res.HostCrashes, crashes)
	}
}
