package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// These tests pin the statistical contract of the scenario generators: the
// realized traces must track the declared arrival shapes, cohort weights,
// and heavy-tailed distributions, not merely be deterministic. Every test
// runs at fixed seeds, so each is a reproducible pinned property — the
// z-score bounds (4-5 sigma) are chosen so a correct generator passes at
// essentially any seed while a mis-scaled rate or a mis-weighted cohort
// pick fails by a wide margin.

// elapsedStart returns a session's arrival offset from the trace start.
func elapsedStart(tr *Trace, s *Session) time.Duration {
	return s.Start.Sub(tr.Start)
}

// countArrivals counts sessions arriving within [from, to) elapsed time.
func countArrivals(tr *Trace, from, to time.Duration) int {
	n := 0
	for _, s := range tr.Sessions {
		if e := elapsedStart(tr, s); e >= from && e < to {
			n++
		}
	}
	return n
}

// poissonZ returns the normal-approximation z-score of an observed Poisson
// count against its expectation.
func poissonZ(observed int, expected float64) float64 {
	return (float64(observed) - expected) / math.Sqrt(expected)
}

// TestArrivalRateFollowsDiurnalWindows: for the campus scenario, arrivals
// aggregated per diurnal window across days match the analytic per-window
// integral — the peak windows really are ~7.6x the night windows.
func TestArrivalRateFollowsDiurnalWindows(t *testing.T) {
	s := CampusDiurnalScenario()
	tr := genScenario(t, s, 1)
	days := int(s.DurationHours / 24)
	for wi, w := range s.Arrival.Diurnal {
		var expected float64
		observed := 0
		for d := 0; d < days; d++ {
			from := time.Duration(d)*dayHours + hoursDur(w.StartHour)
			to := time.Duration(d)*dayHours + hoursDur(w.EndHour)
			expected += s.Arrival.ExpectedArrivals(from, to)
			observed += countArrivals(tr, from, to)
		}
		if z := poissonZ(observed, expected); math.Abs(z) > 4 {
			t.Errorf("window %d [%v,%v)h: %d arrivals vs expected %.1f (z=%.1f)",
				wi, w.StartHour, w.EndHour, observed, expected, z)
		}
	}
	// The contrast itself: realized peak-window rate over night-window rate
	// must be near the declared 1.9/0.25 ratio, nowhere near flat.
	peak := 0
	night := 0
	for d := 0; d < days; d++ {
		base := time.Duration(d) * dayHours
		night += countArrivals(tr, base, base+hoursDur(8))
		peak += countArrivals(tr, base+hoursDur(8), base+hoursDur(12))
		peak += countArrivals(tr, base+hoursDur(14), base+hoursDur(18))
	}
	perHourPeak := float64(peak) / (float64(days) * 8)
	perHourNight := float64(night) / (float64(days) * 8)
	ratio := perHourPeak / perHourNight
	if want := 1.9 / 0.25; ratio < want*0.6 || ratio > want*1.6 {
		t.Errorf("peak/night arrival-rate ratio %.2f, want near %.2f", ratio, want)
	}
}

// TestArrivalRateFollowsWeekdayOverlay: for the weekly scenario, per-day
// arrival totals track the declared weekday multipliers, and the weekend
// really is quieter than the busiest weekday.
func TestArrivalRateFollowsWeekdayOverlay(t *testing.T) {
	s := WeeklyMixedScenario()
	tr := genScenario(t, s, 2)
	counts := make([]int, 7)
	for d := 0; d < 7; d++ {
		from := time.Duration(d) * dayHours
		expected := s.Arrival.ExpectedArrivals(from, from+dayHours)
		counts[d] = countArrivals(tr, from, from+dayHours)
		if z := poissonZ(counts[d], expected); math.Abs(z) > 4 {
			t.Errorf("day %d: %d arrivals vs expected %.1f (z=%.1f)", d, counts[d], expected, z)
		}
	}
	weekend := counts[5] + counts[6]
	if weekend*2 >= counts[0]+counts[1] {
		t.Errorf("weekend days (%d arrivals) not quieter than the two busiest weekdays (%d)",
			weekend, counts[0]+counts[1])
	}
}

// TestArrivalRateFollowsSpikes: for the flash-crowd scenario, each spike
// interval carries its multiplied share of arrivals and the off-spike
// stretches stay at the base rate.
func TestArrivalRateFollowsSpikes(t *testing.T) {
	s := FlashCrowdScenario()
	tr := genScenario(t, s, 3)
	for si, sp := range s.Arrival.Spikes {
		from, to := hoursDur(sp.StartHour), hoursDur(sp.EndHour)
		expected := s.Arrival.ExpectedArrivals(from, to)
		observed := countArrivals(tr, from, to)
		if z := poissonZ(observed, expected); math.Abs(z) > 4 {
			t.Errorf("spike %d [%v,%v)h: %d arrivals vs expected %.1f (z=%.1f)",
				si, sp.StartHour, sp.EndHour, observed, expected, z)
		}
		// Compare against the same-length window just before the spike:
		// the spike must visibly stand out of the base process.
		before := countArrivals(tr, from-(to-from), from)
		if observed <= before {
			t.Errorf("spike %d: %d arrivals not above the %d in the preceding window",
				si, observed, before)
		}
	}
	quiet := countArrivals(tr, 0, hoursDur(30))
	expectedQuiet := s.Arrival.BaseSessionsPerHour * 30
	if z := poissonZ(quiet, expectedQuiet); math.Abs(z) > 4 {
		t.Errorf("pre-spike stretch: %d arrivals vs expected %.1f (z=%.1f)", quiet, expectedQuiet, z)
	}
}

// TestCohortMixMatchesWeights: in every built-in scenario the realized
// cohort proportions match the declared weights within binomial tolerance.
func TestCohortMixMatchesWeights(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		tr := genScenario(t, s, 4)
		counts := map[string]int{}
		for _, sess := range tr.Sessions {
			counts[sess.Cohort]++
		}
		n := float64(len(tr.Sessions))
		var totalW float64
		for _, c := range s.Cohorts {
			totalW += c.Weight
		}
		for _, c := range s.Cohorts {
			p := c.Weight / totalW
			expected := n * p
			sd := math.Sqrt(n * p * (1 - p))
			if got := counts[c.Name]; math.Abs(float64(got)-expected) > 4*sd {
				t.Errorf("%s cohort %q: %d of %.0f sessions, expected %.1f +- %.1f",
					s.Name, c.Name, got, n, expected, 4*sd)
			}
		}
		if len(counts) != len(s.Cohorts) {
			t.Errorf("%s: realized %d distinct cohorts, spec declares %d",
				s.Name, len(counts), len(s.Cohorts))
		}
	}
}

// empiricalQuantile returns the p-th quantile of the (sorted in place)
// sample.
func empiricalQuantile(xs []float64, p float64) float64 {
	sort.Float64s(xs)
	i := int(p * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// TestParetoSamplerQuantiles: empirical quantiles of the Pareto sampler
// match the closed-form inverse CDF, including deep in the tail, and the
// tail really is heavier than any light-tailed distribution's — the p99.9
// to median ratio exceeds what an exponential with the same median yields.
func TestParetoSamplerQuantiles(t *testing.T) {
	p := Pareto{Xm: 3 * 3600, Alpha: 1.5}
	r := rand.New(rand.NewSource(11))
	const n = 200_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.Sample(r)
		if xs[i] < p.Xm {
			t.Fatalf("draw %v below scale %v", xs[i], p.Xm)
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 0.999} {
		got := empiricalQuantile(xs, q)
		want := p.Value(q)
		tol := 0.05
		if q >= 0.99 {
			tol = 0.15 // ~2000 (resp. 200) tail samples at n=200k
		}
		if relDev(want, got) > tol {
			t.Errorf("pareto q%.3f: empirical %.0f vs analytic %.0f", q, got, want)
		}
	}
	heavyRatio := empiricalQuantile(xs, 0.999) / empiricalQuantile(xs, 0.5)
	expRatio := math.Log(1-0.999) / math.Log(1-0.5) // exponential p99.9/p50
	if heavyRatio < 2*expRatio {
		t.Errorf("pareto p99.9/p50 = %.1f, not heavy-tailed vs exponential's %.1f",
			heavyRatio, expRatio)
	}
}

// TestLogNormalSamplerQuantiles: empirical quantiles of the log-normal
// sampler match the analytic exp(mu + sigma*Phi^-1(p)), and the sample
// mean matches the closed form SamplerMean uses.
func TestLogNormalSamplerQuantiles(t *testing.T) {
	l := LogNormal{Mu: math.Log(2 * 3600), Sigma: 0.9}
	r := rand.New(rand.NewSource(12))
	const n = 200_000
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = l.Sample(r)
		sum += xs[i]
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := empiricalQuantile(xs, q)
		want := l.Value(q)
		tol := 0.05
		if q >= 0.99 {
			tol = 0.10
		}
		if relDev(want, got) > tol {
			t.Errorf("lognormal q%.2f: empirical %.0f vs analytic %.0f", q, got, want)
		}
	}
	if relDev(SamplerMean(l), sum/n) > 0.05 {
		t.Errorf("lognormal sample mean %.0f vs analytic %.0f", sum/n, SamplerMean(l))
	}
	if med := l.Value(0.5); relDev(math.Exp(l.Mu), med) > 1e-9 {
		t.Errorf("lognormal median %v, want exp(mu)=%v", med, math.Exp(l.Mu))
	}
}

// TestBatchHeavyTaskDurationsHeavyTailed: the heavy tail survives the trip
// through trace generation — task durations of batch-heavy cohort sessions
// in the realized scenarios track the declared Pareto, not a thin-tailed
// lookalike. Truncated final tasks (clamped at session end) are excluded;
// the 15 s quantization is far below the tolerances.
func TestBatchHeavyTaskDurationsHeavyTailed(t *testing.T) {
	spec := BatchHeavyCohort(1).TaskDuration
	want := Pareto{Xm: spec.Scale, Alpha: spec.Shape}
	var durs []float64
	for seed := int64(1); seed <= 4; seed++ {
		for _, s := range BuiltinScenarios() {
			tr := genScenario(t, s, seed)
			for _, sess := range tr.Sessions {
				if sess.Cohort != "batch-heavy" {
					continue
				}
				for _, task := range sess.Tasks {
					if task.End().Before(sess.End) {
						durs = append(durs, task.Duration.Seconds())
					}
				}
			}
		}
	}
	if len(durs) < 2000 {
		t.Fatalf("only %d untruncated batch-heavy tasks collected", len(durs))
	}
	for _, q := range []float64{0.5, 0.9} {
		got := empiricalQuantile(durs, q)
		if relDev(want.Value(q), got) > 0.20 {
			t.Errorf("in-trace batch-heavy q%.1f: %.0fs vs analytic %.0fs (n=%d)",
				q, got, want.Value(q), len(durs))
		}
	}
	if ratio := empiricalQuantile(durs, 0.99) / empiricalQuantile(durs, 0.5); ratio < 5 {
		t.Errorf("in-trace batch-heavy p99/p50 = %.1f, tail lost in generation", ratio)
	}
}
