package trace

import (
	"fmt"
	"math/rand"
	"time"
)

// ShardSeed derives the seed for shard index i from a run seed as
// seed ^ splitmix64(i): a pure function of (run seed, shard index), so any
// sharded path — materialized or streaming — gives shard i the same
// randomness regardless of worker scheduling. splitmix64 decorrelates
// consecutive indices; the raw XOR of a small index would only flip low
// bits and keep the shards' rand streams nearly in lockstep.
func ShardSeed(seed int64, shard int) int64 {
	return seed ^ int64(splitmix64(uint64(shard)))
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamGen is a Source that synthesizes shard i-of-k of a generated
// workload on the fly: sessions are built one at a time inside Sessions and
// handed to the consumer, so the full trace never exists in memory — peak
// footprint is one session, independent of how many the window holds.
//
// Sharding uses exact Poisson splitting rather than generate-then-Split:
// thinning a Poisson process with intensity rate(t) and acceptance ratio
// rate(t)/max is distributionally identical to k independent thinned
// processes each with candidate rate max/k and the same acceptance ratio
// (rate(t)/k)/(max/k). Each shard therefore runs its own arrival process
// from ShardSeed-derived randomness and never sees — or stores — another
// shard's sessions. The union of k shards is statistically the full
// workload (expected counts and reserved GPU-hours match), but it is NOT
// the byte-for-byte session set of Generate followed by Split: those two
// draw different random numbers. The k=1 stream IS byte-identical to
// Generate — same seed, same draw order, same IDs — which is what pins the
// streaming path against the materialized one in tests.
type StreamGen struct {
	cfg       GenConfig
	shard, of int
	name      string
	// prefix names the shard's sessions. For k=1 it is cfg.Name, making IDs
	// byte-identical to Generate's; for k>1 each shard gets a disjoint
	// prefix, since per-shard session counters would otherwise collide.
	prefix string
	seed   int64
}

// NewStreamGen returns the Source for shard `shard` of `of` of the workload
// cfg generates. of <= 1 yields the whole workload, byte-identical to
// Generate(cfg) with the same seed; of > 1 yields shard `shard`'s exact
// Poisson split, seeded with ShardSeed(cfg.Seed, shard).
func NewStreamGen(cfg GenConfig, shard, of int) (*StreamGen, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if of < 1 {
		of = 1
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("trace: shard %d out of range [0,%d)", shard, of)
	}
	g := &StreamGen{cfg: cfg, shard: shard, of: of}
	if of == 1 {
		g.name = cfg.Name
		g.prefix = cfg.Name
		g.seed = cfg.Seed
	} else {
		g.name = fmt.Sprintf("%s/stream%d-of-%d", cfg.Name, shard, of)
		g.prefix = fmt.Sprintf("%s-p%d", cfg.Name, shard)
		g.seed = ShardSeed(cfg.Seed, shard)
	}
	return g, nil
}

// StreamSplit returns the k Poisson-split shard sources of the workload cfg
// generates (k <= 1 returns the single whole-workload source).
func StreamSplit(cfg GenConfig, k int) ([]*StreamGen, error) {
	if k < 1 {
		k = 1
	}
	out := make([]*StreamGen, k)
	for i := range out {
		g, err := NewStreamGen(cfg, i, k)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// Name implements Source.
func (g *StreamGen) Name() string { return g.name }

// Window implements Source.
func (g *StreamGen) Window() (time.Time, time.Time) {
	return g.cfg.Start, g.cfg.Start.Add(g.cfg.Duration)
}

// Granularity implements Source.
func (g *StreamGen) Granularity() time.Duration { return g.cfg.Granularity }

// Seed returns the shard's derived RNG seed.
func (g *StreamGen) Seed() int64 { return g.seed }

// Expect implements Source with the config's analytic expectations divided
// across the shard count.
func (g *StreamGen) Expect() Expectation { return g.cfg.Expect(g.of) }

// Sessions implements Source: the same thinned non-homogeneous Poisson loop
// as Generate — for of == 1 literally the same draws in the same order —
// with the candidate rate divided by the shard count. The acceptance test
// is unchanged because the ratio (rate/k)/(max/k) equals rate/max; keeping
// the comparison against the undivided MaxSessionsPerHour also keeps the
// k=1 float arithmetic bit-identical to Generate's.
func (g *StreamGen) Sessions(yield func(*Session) bool) error {
	cfg := g.cfg
	r := rand.New(rand.NewSource(g.seed))
	end := cfg.Start.Add(cfg.Duration)
	maxRate := cfg.MaxSessionsPerHour / float64(g.of)
	t := cfg.Start
	id := 0
	for {
		gapHours := r.ExpFloat64() / maxRate
		t = t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !t.Before(end) {
			return nil
		}
		rate := cfg.SessionsPerHour(t.Sub(cfg.Start))
		if rate > cfg.MaxSessionsPerHour {
			return fmt.Errorf("trace: intensity %v exceeds MaxSessionsPerHour %v", rate, cfg.MaxSessionsPerHour)
		}
		if r.Float64()*cfg.MaxSessionsPerHour > rate {
			continue // thinned
		}
		id++
		if !yield(genSession(cfg, r, sessionID(g.prefix, id), t, end)) {
			return nil
		}
	}
}
