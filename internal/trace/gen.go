package trace

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"notebookos/internal/resources"
)

// GenConfig parameterizes the synthetic workload generator. The model is:
//
//   - Sessions arrive by a non-homogeneous Poisson process with intensity
//     SessionsPerHour(elapsed).
//   - Each session lives for SessionLifetime seconds and reserves
//     RequestGPUs GPUs (plus proportional CPU/memory/VRAM).
//   - With probability PNeverTrains the session never submits a GPU task
//     (the paper finds ~70 % of reserved GPUs are never used, §2.3.3).
//   - A training session works in bursts: within a burst, tasks are
//     submitted with think time ThinkTime after the previous completion;
//     after each task the burst ends with probability PBurstEnd, followed
//     by a long idle gap of BurstGap seconds. Bursty activity is what
//     reconciles the short within-burst IATs of Fig. 2(b) with the very low
//     session-lifetime GPU activity of Fig. 2(c).
type GenConfig struct {
	Name string
	// Start and Duration delimit the generated trace.
	Start    time.Time
	Duration time.Duration
	// Seed makes generation deterministic.
	Seed int64
	// SessionsPerHour is the Poisson arrival intensity as a function of
	// elapsed time since Start. It must be bounded by MaxSessionsPerHour.
	SessionsPerHour    func(elapsed time.Duration) float64
	MaxSessionsPerHour float64
	// SessionLifetime samples session lifetimes, in seconds.
	SessionLifetime Sampler
	// PNeverTrains is the probability a session submits no GPU tasks.
	PNeverTrains float64
	// ThinkTime samples the user's think time between a task's completion
	// and the next submission within a burst, in seconds.
	ThinkTime Sampler
	// TaskDuration samples task execution times, in seconds.
	TaskDuration Sampler
	// PBurstEnd is the probability that a completed task ends the burst.
	PBurstEnd float64
	// BurstGap samples the idle gap between bursts, in seconds.
	BurstGap Sampler
	// PHeavy splits training sessions into heavy and light users: a
	// heavy session (probability PHeavy) uses HeavyPBurstEnd/HeavyBurstGap
	// instead of the base burst parameters. Real IDLT activity is highly
	// skewed: a minority of sessions trains nearly continuously while the
	// majority barely touches its GPUs (paper Fig. 2(c) vs Fig. 20).
	// Zero or negative disables the split (all sessions use the base).
	PHeavy float64
	// HeavyPBurstEnd is the burst-end probability for heavy sessions.
	HeavyPBurstEnd float64
	// HeavyBurstGap samples inter-burst gaps for heavy sessions.
	HeavyBurstGap Sampler
	// RequestGPUs samples the per-session GPU reservation.
	RequestGPUs *IntWeights
	// TaskGPUs samples per-task GPU counts, capped at the session request.
	TaskGPUs *IntWeights
	// ConcurrentSubmission models BDLT batch queues (Philly/Alibaba):
	// the next task is submitted ThinkTime after the previous *submission*
	// rather than after its completion, so jobs overlap. IDLT users "do
	// not submit concurrent tasks" (paper Observation 2), so AdobeTrace
	// configs leave this false.
	ConcurrentSubmission bool
	// Granularity quantizes task submit times and durations (15 s for
	// AdobeTrace); zero disables quantization.
	Granularity time.Duration
	// Cohorts splits the arriving population into weighted user classes,
	// each with its own session-shape distributions: every arrival first
	// draws a cohort (probability Weight / sum of Weights), then samples
	// its lifetime, GPU demand, and burst behavior from that cohort's
	// distributions. When non-empty, the base session-shape fields above
	// (SessionLifetime .. TaskGPUs, PHeavy and the heavy split included)
	// are ignored and may be nil; when empty, generation draws exactly as
	// it always did — no extra randomness is consumed, so single-population
	// configs stay bit-identical to their pre-cohort output.
	Cohorts []Cohort
}

// Cohort is one user-population class of a multi-cohort workload: students
// vs researchers vs batch-heavy pipelines, each with its own session
// lifetime, idle-gap, and GPU-demand distributions (heavy-tailed Pareto and
// LogNormal samplers included). Cohort membership is drawn per arrival, so
// the classes interleave on the same arrival process rather than running as
// separate workloads.
type Cohort struct {
	// Name tags generated sessions (Session.Cohort) for mix verification.
	Name string
	// SLO is the service-level class stamped on the cohort's sessions
	// (Session.SLO); the zero value leaves them unclassified (scheduled as
	// SLOBatch). Stamping consumes no randomness, so adding or changing
	// SLO classes never perturbs generated workloads.
	SLO SLOClass
	// Weight is the cohort's relative share of arrivals (need not sum to 1).
	Weight float64
	// SessionLifetime samples session lifetimes, in seconds.
	SessionLifetime Sampler
	// PNeverTrains is the probability a session submits no GPU tasks.
	PNeverTrains float64
	// ThinkTime samples within-burst think times, in seconds.
	ThinkTime Sampler
	// TaskDuration samples task execution times, in seconds.
	TaskDuration Sampler
	// PBurstEnd is the probability a completed task ends the burst.
	PBurstEnd float64
	// BurstGap samples the idle gap between bursts, in seconds.
	BurstGap Sampler
	// RequestGPUs samples the per-session GPU reservation.
	RequestGPUs *IntWeights
	// TaskGPUs samples per-task GPU counts, capped at the session request.
	TaskGPUs *IntWeights
}

func (c GenConfig) validate() error {
	switch {
	case c.SessionsPerHour == nil:
		return fmt.Errorf("trace: SessionsPerHour required")
	case c.MaxSessionsPerHour <= 0:
		return fmt.Errorf("trace: MaxSessionsPerHour must be positive")
	case c.Duration <= 0:
		return fmt.Errorf("trace: non-positive duration")
	}
	if len(c.Cohorts) == 0 {
		switch {
		case c.SessionLifetime == nil || c.ThinkTime == nil || c.TaskDuration == nil || c.BurstGap == nil:
			return fmt.Errorf("trace: all samplers required")
		case c.RequestGPUs == nil || c.TaskGPUs == nil:
			return fmt.Errorf("trace: GPU samplers required")
		}
		return nil
	}
	var total float64
	for i, co := range c.Cohorts {
		switch {
		case co.SessionLifetime == nil || co.ThinkTime == nil || co.TaskDuration == nil || co.BurstGap == nil:
			return fmt.Errorf("trace: cohort %d (%s): all samplers required", i, co.Name)
		case co.RequestGPUs == nil || co.TaskGPUs == nil:
			return fmt.Errorf("trace: cohort %d (%s): GPU samplers required", i, co.Name)
		case co.Weight < 0:
			return fmt.Errorf("trace: cohort %d (%s): negative weight %v", i, co.Name, co.Weight)
		}
		total += co.Weight
	}
	if total <= 0 {
		return fmt.Errorf("trace: cohort weights sum to zero")
	}
	return nil
}

// sessionShape is the effective per-session distribution set — the base
// config's fields, or the drawn cohort's in a multi-cohort workload.
type sessionShape struct {
	cohort         string
	slo            SLOClass
	lifetime       Sampler
	pNever         float64
	think          Sampler
	taskDur        Sampler
	pBurstEnd      float64
	burstGap       Sampler
	pHeavy         float64
	heavyPBurstEnd float64
	heavyBurstGap  Sampler
	reqGPUs        *IntWeights
	taskGPUs       *IntWeights
}

func (c GenConfig) baseShape() sessionShape {
	return sessionShape{
		lifetime:       c.SessionLifetime,
		pNever:         c.PNeverTrains,
		think:          c.ThinkTime,
		taskDur:        c.TaskDuration,
		pBurstEnd:      c.PBurstEnd,
		burstGap:       c.BurstGap,
		pHeavy:         c.PHeavy,
		heavyPBurstEnd: c.HeavyPBurstEnd,
		heavyBurstGap:  c.HeavyBurstGap,
		reqGPUs:        c.RequestGPUs,
		taskGPUs:       c.TaskGPUs,
	}
}

func (co Cohort) shape() sessionShape {
	return sessionShape{
		cohort:    co.Name,
		slo:       co.SLO,
		lifetime:  co.SessionLifetime,
		pNever:    co.PNeverTrains,
		think:     co.ThinkTime,
		taskDur:   co.TaskDuration,
		pBurstEnd: co.PBurstEnd,
		burstGap:  co.BurstGap,
		reqGPUs:   co.RequestGPUs,
		taskGPUs:  co.TaskGPUs,
	}
}

// pickShape draws the arriving session's cohort. The draw is the FIRST
// randomness genSession consumes, and single-population configs consume
// none here, which is what keeps (a) cohortless generation bit-identical
// to the pre-cohort generator and (b) the k=1 stream in lockstep with the
// materialized path for every config shape.
func (c GenConfig) pickShape(r *rand.Rand) sessionShape {
	if len(c.Cohorts) == 0 {
		return c.baseShape()
	}
	var total float64
	for _, co := range c.Cohorts {
		total += co.Weight
	}
	u := r.Float64() * total
	for i := range c.Cohorts {
		u -= c.Cohorts[i].Weight
		if u < 0 {
			return c.Cohorts[i].shape()
		}
	}
	return c.Cohorts[len(c.Cohorts)-1].shape()
}

// Generate produces a synthetic trace from cfg. The same config and seed
// always produce the identical trace.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{
		Name:        cfg.Name,
		Start:       cfg.Start,
		End:         cfg.Start.Add(cfg.Duration),
		Granularity: cfg.Granularity,
	}

	// Non-homogeneous Poisson arrivals by thinning.
	t := cfg.Start
	id := 0
	for {
		gapHours := r.ExpFloat64() / cfg.MaxSessionsPerHour
		t = t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !t.Before(tr.End) {
			break
		}
		rate := cfg.SessionsPerHour(t.Sub(cfg.Start))
		if rate > cfg.MaxSessionsPerHour {
			return nil, fmt.Errorf("trace: intensity %v exceeds MaxSessionsPerHour %v", rate, cfg.MaxSessionsPerHour)
		}
		if r.Float64()*cfg.MaxSessionsPerHour > rate {
			continue // thinned
		}
		id++
		sess := genSession(cfg, r, sessionID(cfg.Name, id), t, tr.End)
		tr.Sessions = append(tr.Sessions, sess)
	}
	return tr, nil
}

// sessionID builds "<name>-s<id>" with the id zero-padded to five digits
// (wider ids print in full) — the format fmt.Sprintf("%s-s%05d", ...)
// produced, built with strconv appends instead: one string allocation per
// session instead of Sprintf's verb parsing and interface boxing, which is
// measurable at million-session scale. Shared by Generate and StreamGen so
// the two paths cannot drift.
func sessionID(name string, id int) string {
	digits := 1
	for v := id; v >= 10; v /= 10 {
		digits++
	}
	pad := 5 - digits
	if pad < 0 {
		pad = 0
	}
	b := make([]byte, 0, len(name)+2+pad+digits)
	b = append(b, name...)
	b = append(b, '-', 's')
	for ; pad > 0; pad-- {
		b = append(b, '0')
	}
	b = strconv.AppendInt(b, int64(id), 10)
	return string(b)
}

// MustGenerate is Generate that panics on error; for tests and examples.
func MustGenerate(cfg GenConfig) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

func genSession(cfg GenConfig, r *rand.Rand, id string, start, traceEnd time.Time) *Session {
	sh := cfg.pickShape(r)
	life := time.Duration(sh.lifetime.Sample(r) * float64(time.Second))
	end := start.Add(life)
	if end.After(traceEnd) {
		end = traceEnd
	}
	gpus := sh.reqGPUs.SampleInt(r)
	sess := &Session{
		ID:     id,
		Cohort: sh.cohort,
		SLO:    sh.slo,
		Start:  start,
		End:    end,
		Request: resources.Spec{
			Millicpus: int64(gpus) * 8000,
			MemoryMB:  int64(gpus) * 61 * 1024,
			GPUs:      gpus,
			VRAMGB:    float64(gpus) * 16,
		},
	}
	if gpus == 0 || r.Float64() < sh.pNever {
		return sess
	}
	pBurstEnd := sh.pBurstEnd
	burstGap := sh.burstGap
	if sh.pHeavy > 0 && r.Float64() < sh.pHeavy {
		if sh.heavyPBurstEnd > 0 {
			pBurstEnd = sh.heavyPBurstEnd
		}
		if sh.heavyBurstGap != nil {
			burstGap = sh.heavyBurstGap
		}
	}

	// First submission happens after an initial think time.
	cur := start.Add(cfg.sampleDur(r, sh.think))
	for cur.Before(end) {
		d := cfg.quantize(cfg.sampleDur(r, sh.taskDur))
		if cur.Add(d).After(end) {
			// Truncate the final task to the session end; drop slivers.
			d = end.Sub(cur)
			if d < cfg.minDuration() {
				break
			}
		}
		tg := sh.taskGPUs.SampleInt(r)
		if tg > gpus {
			tg = gpus
		}
		if tg < 1 {
			tg = 1
		}
		submit := cfg.quantizeTime(cur)
		if submit.Before(start) {
			submit = start
		}
		sess.Tasks = append(sess.Tasks, Task{
			Submit:   submit,
			Duration: d,
			GPUs:     tg,
		})
		if !cfg.ConcurrentSubmission {
			cur = cur.Add(d)
		}
		if r.Float64() < pBurstEnd {
			cur = cur.Add(cfg.sampleDur(r, burstGap))
		} else {
			cur = cur.Add(cfg.sampleDur(r, sh.think))
		}
	}
	return sess
}

func (c GenConfig) sampleDur(r *rand.Rand, s Sampler) time.Duration {
	d := time.Duration(s.Sample(r) * float64(time.Second))
	if d < 0 {
		d = 0
	}
	return d
}

func (c GenConfig) minDuration() time.Duration {
	if c.Granularity > 0 {
		return c.Granularity
	}
	return time.Second
}

func (c GenConfig) quantize(d time.Duration) time.Duration {
	if c.Granularity <= 0 {
		return d
	}
	q := d.Round(c.Granularity)
	if q < c.Granularity {
		q = c.Granularity
	}
	return q
}

func (c GenConfig) quantizeTime(t time.Time) time.Time {
	if c.Granularity <= 0 {
		return t
	}
	// Truncate (floor) so a quantized submission never lands after the
	// un-quantized one, keeping tasks within their session window.
	return t.Truncate(c.Granularity)
}
