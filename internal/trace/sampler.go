package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sampler draws values from a distribution.
type Sampler interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
}

// Knot pins one point of a quantile function: the P-th quantile equals V.
type Knot struct {
	P float64 // cumulative probability in [0, 1]
	V float64 // value at that probability; must be > 0
}

// Quantile samples by inverting a piecewise quantile function defined by
// knots, interpolating log-linearly in value between knots. Log-linear
// interpolation suits the heavy-tailed, orders-of-magnitude-spanning
// durations and inter-arrival times of GPU cluster traces.
type Quantile struct {
	knots []Knot
}

// NewQuantile validates and returns a quantile sampler. Knots must have
// strictly increasing P starting at 0 and ending at 1, and positive
// non-decreasing V.
func NewQuantile(knots ...Knot) (*Quantile, error) {
	if len(knots) < 2 {
		return nil, fmt.Errorf("trace: need at least 2 knots, got %d", len(knots))
	}
	if knots[0].P != 0 || knots[len(knots)-1].P != 1 {
		return nil, fmt.Errorf("trace: knots must span P=0..1")
	}
	for i, k := range knots {
		if k.V <= 0 {
			return nil, fmt.Errorf("trace: knot %d has non-positive value %v", i, k.V)
		}
		if i > 0 {
			if k.P <= knots[i-1].P {
				return nil, fmt.Errorf("trace: knot P not increasing at %d", i)
			}
			if k.V < knots[i-1].V {
				return nil, fmt.Errorf("trace: knot V decreasing at %d", i)
			}
		}
	}
	q := &Quantile{knots: make([]Knot, len(knots))}
	copy(q.knots, knots)
	return q, nil
}

// MustQuantile is NewQuantile that panics on error; for package-level
// trace-definition literals.
func MustQuantile(knots ...Knot) *Quantile {
	q, err := NewQuantile(knots...)
	if err != nil {
		panic(err)
	}
	return q
}

// Value returns the p-th quantile (p clamped to [0,1]).
func (q *Quantile) Value(p float64) float64 {
	if p <= 0 {
		return q.knots[0].V
	}
	if p >= 1 {
		return q.knots[len(q.knots)-1].V
	}
	i := sort.Search(len(q.knots), func(i int) bool { return q.knots[i].P >= p })
	// Invariant: 0 < i < len(knots) because P spans [0,1].
	lo, hi := q.knots[i-1], q.knots[i]
	frac := (p - lo.P) / (hi.P - lo.P)
	if lo.V == hi.V {
		return lo.V
	}
	return lo.V * math.Pow(hi.V/lo.V, frac)
}

// Sample implements Sampler by inverse-transform sampling.
func (q *Quantile) Sample(r *rand.Rand) float64 {
	return q.Value(r.Float64())
}

// Mean numerically estimates the distribution mean from n quantile strips.
func (q *Quantile) Mean(n int) float64 {
	if n <= 0 {
		n = 1000
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += q.Value((float64(i) + 0.5) / float64(n))
	}
	return sum / float64(n)
}

// Fixed always samples the same value.
type Fixed float64

// Sample implements Sampler.
func (f Fixed) Sample(*rand.Rand) float64 { return float64(f) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}

// Exponential samples an exponential distribution with the given mean.
type Exponential struct {
	MeanVal float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() * e.MeanVal
}

// LogNormal samples a log-normal distribution with parameters Mu and Sigma
// (of the underlying normal).
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Sampler.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Value returns the analytic p-th quantile: exp(mu + sigma*Phi^-1(p)).
// Statistical generator tests compare empirical quantiles against this.
func (l LogNormal) Value(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*math.Erfinv(2*p-1))
}

// Pareto samples a (type-I) Pareto distribution with scale Xm (minimum
// value) and tail index Alpha: P(X > x) = (Xm/x)^Alpha for x >= Xm. The
// heavy-tailed option for session lifetimes and batch task durations —
// smaller Alpha means a heavier tail (Alpha <= 1 has infinite mean).
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Sampler by inverse-transform sampling.
func (p Pareto) Sample(r *rand.Rand) float64 {
	return p.Value(r.Float64())
}

// Value returns the analytic q-th quantile: Xm * (1-q)^(-1/Alpha).
func (p Pareto) Value(q float64) float64 {
	if q <= 0 {
		return p.Xm
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xm * math.Pow(1-q, -1/p.Alpha)
}

// Mean returns the analytic mean Alpha*Xm/(Alpha-1); +Inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// IntWeights samples non-negative integers with the given relative weights:
// Weights[i] is the weight of value Values[i]. Used for per-task GPU counts.
type IntWeights struct {
	Values  []int
	Weights []float64
	total   float64
}

// NewIntWeights validates and returns a weighted integer sampler.
func NewIntWeights(values []int, weights []float64) (*IntWeights, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("trace: values/weights mismatch (%d vs %d)", len(values), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("trace: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("trace: all weights zero")
	}
	iw := &IntWeights{Values: values, Weights: weights, total: total}
	return iw, nil
}

// MustIntWeights is NewIntWeights that panics on error.
func MustIntWeights(values []int, weights []float64) *IntWeights {
	iw, err := NewIntWeights(values, weights)
	if err != nil {
		panic(err)
	}
	return iw
}

// Mean returns the expectation of the sampled integer.
func (iw *IntWeights) Mean() float64 {
	var sum float64
	for i, w := range iw.Weights {
		sum += float64(iw.Values[i]) * w
	}
	return sum / iw.total
}

// Prob returns the probability of sampling exactly v.
func (iw *IntWeights) Prob(v int) float64 {
	var sum float64
	for i, w := range iw.Weights {
		if iw.Values[i] == v {
			sum += w
		}
	}
	return sum / iw.total
}

// SamplerMean returns the distribution mean of s: closed-form for the known
// sampler types, numeric for Quantile, and a fixed-seed Monte Carlo estimate
// for unknown implementations (deterministic across runs, so capacity plans
// built from it are reproducible).
func SamplerMean(s Sampler) float64 {
	switch v := s.(type) {
	case Fixed:
		return float64(v)
	case *Quantile:
		return v.Mean(4096)
	case Uniform:
		return (v.Lo + v.Hi) / 2
	case Exponential:
		return v.MeanVal
	case LogNormal:
		return math.Exp(v.Mu + v.Sigma*v.Sigma/2)
	case Pareto:
		if m := v.Mean(); !math.IsInf(m, 1) {
			return m
		}
		// Infinite-mean tail: fall back to a finite quantile-grid estimate
		// (midpoints never reach q=1) so capacity plans stay usable.
		var sum float64
		const n = 4096
		for i := 0; i < n; i++ {
			sum += v.Value((float64(i) + 0.5) / n)
		}
		return sum / n
	default:
		r := rand.New(rand.NewSource(1))
		const n = 4096
		var sum float64
		for i := 0; i < n; i++ {
			sum += s.Sample(r)
		}
		return sum / n
	}
}

// SampleInt draws one integer.
func (iw *IntWeights) SampleInt(r *rand.Rand) int {
	u := r.Float64() * iw.total
	for i, w := range iw.Weights {
		u -= w
		if u < 0 {
			return iw.Values[i]
		}
	}
	return iw.Values[len(iw.Values)-1]
}
