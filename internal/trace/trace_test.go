package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"notebookos/internal/resources"
)

func TestQuantileValidation(t *testing.T) {
	if _, err := NewQuantile(Knot{0, 1}); err == nil {
		t.Error("single knot should fail")
	}
	if _, err := NewQuantile(Knot{0.1, 1}, Knot{1, 2}); err == nil {
		t.Error("must start at P=0")
	}
	if _, err := NewQuantile(Knot{0, 1}, Knot{0.9, 2}); err == nil {
		t.Error("must end at P=1")
	}
	if _, err := NewQuantile(Knot{0, 2}, Knot{1, 1}); err == nil {
		t.Error("decreasing V should fail")
	}
	if _, err := NewQuantile(Knot{0, -1}, Knot{1, 1}); err == nil {
		t.Error("non-positive V should fail")
	}
	if _, err := NewQuantile(Knot{0, 1}, Knot{0.5, 2}, Knot{0.5, 3}, Knot{1, 4}); err == nil {
		t.Error("non-increasing P should fail")
	}
}

func TestQuantileValueHitsKnots(t *testing.T) {
	q := MustQuantile(Knot{0, 10}, Knot{0.5, 100}, Knot{1, 1000})
	if got := q.Value(0); got != 10 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := q.Value(0.5); math.Abs(got-100) > 1e-9 {
		t.Errorf("Value(0.5) = %v", got)
	}
	if got := q.Value(1); got != 1000 {
		t.Errorf("Value(1) = %v", got)
	}
	// Log-linear midpoint of [10,100] over P in [0,0.5] is at P=0.25.
	if got := q.Value(0.25); math.Abs(got-math.Sqrt(10*100)) > 1e-6 {
		t.Errorf("Value(0.25) = %v, want geometric mean", got)
	}
	// Clamping.
	if q.Value(-1) != 10 || q.Value(2) != 1000 {
		t.Error("clamping failed")
	}
}

func TestQuantileSampleMatchesKnotsProperty(t *testing.T) {
	q := adobeDuration()
	r := rand.New(rand.NewSource(7))
	n := 200_000
	below120, below300 := 0, 0
	for i := 0; i < n; i++ {
		v := q.Sample(r)
		if v <= 120 {
			below120++
		}
		if v <= 300 {
			below300++
		}
	}
	p50 := float64(below120) / float64(n)
	p75 := float64(below300) / float64(n)
	if math.Abs(p50-0.5) > 0.01 {
		t.Errorf("P(d<=120s) = %v, want ~0.50", p50)
	}
	if math.Abs(p75-0.75) > 0.01 {
		t.Errorf("P(d<=300s) = %v, want ~0.75", p75)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	q := adobeThink()
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return q.Value(pa) <= q.Value(pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimpleSamplers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Fixed(42).Sample(r) != 42 {
		t.Error("Fixed")
	}
	u := Uniform{Lo: 5, Hi: 6}
	for i := 0; i < 100; i++ {
		if v := u.Sample(r); v < 5 || v >= 6 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	e := Exponential{MeanVal: 100}
	var sum float64
	for i := 0; i < 20000; i++ {
		sum += e.Sample(r)
	}
	if mean := sum / 20000; math.Abs(mean-100) > 5 {
		t.Errorf("Exponential mean = %v", mean)
	}
	ln := LogNormal{Mu: 0, Sigma: 0.0001}
	if v := ln.Sample(r); math.Abs(v-1) > 0.01 {
		t.Errorf("LogNormal(0, ~0) = %v", v)
	}
}

func TestIntWeights(t *testing.T) {
	if _, err := NewIntWeights([]int{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := NewIntWeights([]int{1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewIntWeights([]int{1, 2}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	iw := MustIntWeights([]int{1, 8}, []float64{0.75, 0.25})
	r := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	for i := 0; i < 100_000; i++ {
		counts[iw.SampleInt(r)]++
	}
	if frac := float64(counts[1]) / 100_000; math.Abs(frac-0.75) > 0.01 {
		t.Errorf("P(1) = %v, want ~0.75", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := AdobeExcerptConfig(11)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if len(a.Sessions) != len(b.Sessions) || a.NumTasks() != b.NumTasks() {
		t.Fatalf("same seed differs: %d/%d sessions, %d/%d tasks",
			len(a.Sessions), len(b.Sessions), a.NumTasks(), b.NumTasks())
	}
	c := MustGenerate(AdobeExcerptConfig(12))
	if len(a.Sessions) == len(c.Sessions) && a.NumTasks() == c.NumTasks() {
		t.Log("different seeds produced identical shape (possible but unlikely)")
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, cfg := range []GenConfig{
		AdobeExcerptConfig(1),
		PhillyConfig(2),
		AlibabaConfig(3),
	} {
		tr := MustGenerate(cfg)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if len(tr.Sessions) == 0 || tr.NumTasks() == 0 {
			t.Errorf("%s: empty trace (%d sessions, %d tasks)",
				cfg.Name, len(tr.Sessions), tr.NumTasks())
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := AdobeExcerptConfig(1)
	cfg.SessionsPerHour = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("nil intensity should fail")
	}
	cfg = AdobeExcerptConfig(1)
	cfg.MaxSessionsPerHour = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero max intensity should fail")
	}
	cfg = AdobeExcerptConfig(1)
	cfg.SessionsPerHour = func(time.Duration) float64 { return 100 }
	if _, err := Generate(cfg); err == nil {
		t.Error("intensity above max should fail")
	}
}

func TestAdobeDurationPercentiles(t *testing.T) {
	// The generated excerpt must reproduce the published AdobeTrace
	// percentiles (§2.3.1) within tolerance.
	tr := MustGenerate(AdobeExcerptConfig(42))
	d := tr.Durations()
	checks := []struct {
		p, want, tol float64
	}{
		{50, 120, 45},
		{75, 300, 90},
		{90, 1020, 300},
	}
	for _, c := range checks {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > c.tol {
			t.Errorf("duration p%.0f = %.0fs, want %.0f±%.0f", c.p, got, c.want, c.tol)
		}
	}
}

func TestExcerptShapeMatchesFig7(t *testing.T) {
	tr := MustGenerate(AdobeExcerptConfig(42))
	sessions := tr.ActiveSessions()
	maxSessions := sessions.Max()
	if maxSessions < 60 || maxSessions > 120 {
		t.Errorf("max active sessions = %v, want ~90", maxSessions)
	}
	tasks := tr.ActiveTasks()
	mean := tasks.MeanOver(tr.Start, tr.End)
	if mean < 8 || mean > 40 {
		t.Errorf("mean active trainings = %v, want ~19.5", mean)
	}
}

func TestWindowClamps(t *testing.T) {
	tr := MustGenerate(AdobeExcerptConfig(9))
	mid := tr.Start.Add(8 * time.Hour)
	w := tr.Window(tr.Start, mid)
	if err := w.Validate(); err != nil {
		t.Fatalf("window invalid: %v", err)
	}
	for _, s := range w.Sessions {
		if s.Start.Before(w.Start) || s.End.After(w.End) {
			t.Fatalf("session %s outside window", s.ID)
		}
		for _, task := range s.Tasks {
			if task.End().After(w.End) {
				t.Fatalf("task in %s overruns window", s.ID)
			}
		}
	}
}

func TestTimelinesConsistent(t *testing.T) {
	tr := MustGenerate(AdobeExcerptConfig(5))
	util := tr.UtilizedGPUs()
	res := tr.ReservedGPUs()
	// Spot-check: utilization never exceeds reservation.
	for h := 0.0; h < 17.5; h += 0.25 {
		at := tr.Start.Add(time.Duration(h * float64(time.Hour)))
		if util.At(at) > res.At(at) {
			t.Fatalf("utilized %v > reserved %v at +%.2fh", util.At(at), res.At(at), h)
		}
	}
	// All timelines must end at zero... sessions may outlive the trace end,
	// so instead check totals: GPU busy integral equals utilized integral.
	var busyGPUHours float64
	for _, s := range tr.Sessions {
		for _, task := range s.Tasks {
			busyGPUHours += task.Duration.Hours() * float64(task.GPUs)
		}
	}
	// Integrate beyond the end to catch tasks finishing after tr.End.
	integ := util.Integral(tr.Start, tr.End.Add(24*time.Hour))
	if math.Abs(busyGPUHours-integ) > 1e-6*math.Max(1, busyGPUHours) {
		t.Fatalf("utilized integral %v != task GPU-hours %v", integ, busyGPUHours)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Trace {
		s := &Session{
			ID:      "s1",
			Start:   TraceEpoch,
			End:     TraceEpoch.Add(time.Hour),
			Request: resources.Spec{GPUs: 2},
			Tasks: []Task{
				{Submit: TraceEpoch.Add(time.Minute), Duration: time.Minute, GPUs: 1},
			},
		}
		return &Trace{Name: "t", Start: TraceEpoch, End: TraceEpoch.Add(time.Hour), Sessions: []*Session{s}}
	}
	tr := base()
	if err := tr.Validate(); err != nil {
		t.Fatalf("base should validate: %v", err)
	}
	tr = base()
	tr.Sessions[0].End = TraceEpoch.Add(-time.Hour)
	if tr.Validate() == nil {
		t.Error("end-before-start not caught")
	}
	tr = base()
	tr.Sessions[0].Tasks[0].GPUs = 4
	if tr.Validate() == nil {
		t.Error("task GPUs > request not caught")
	}
	tr = base()
	tr.Sessions[0].Tasks[0].Duration = 0
	if tr.Validate() == nil {
		t.Error("zero duration not caught")
	}
	tr = base()
	tr.Sessions[0].Tasks[0].Submit = TraceEpoch.Add(-time.Minute)
	if tr.Validate() == nil {
		t.Error("task outside session not caught")
	}
}

func TestPhillyVsAdobeContrast(t *testing.T) {
	// Observation 1/2 from the paper: IDLT tasks are much shorter and
	// sparser than BDLT tasks.
	adobe := MustGenerate(AdobeExcerptConfig(1))
	philly := MustGenerate(PhillyConfig(1))
	if adobe.Durations().Percentile(50) >= philly.Durations().Percentile(50) {
		t.Error("Adobe median duration should be below Philly's")
	}
	if adobe.IATs().Percentile(50) <= philly.IATs().Percentile(50) {
		t.Error("Adobe median IAT should exceed Philly's")
	}
}

func TestSessionAccessors(t *testing.T) {
	s := &Session{
		Start: TraceEpoch,
		End:   TraceEpoch.Add(100 * time.Minute),
		Tasks: []Task{
			{Submit: TraceEpoch, Duration: 10 * time.Minute, GPUs: 1},
		},
	}
	if s.Lifetime() != 100*time.Minute {
		t.Errorf("Lifetime = %v", s.Lifetime())
	}
	if s.GPUBusy() != 10*time.Minute {
		t.Errorf("GPUBusy = %v", s.GPUBusy())
	}
	if got := s.ActiveFraction(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("ActiveFraction = %v", got)
	}
}
