package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"
)

// This file is the declarative fault layer: a FaultSpec describes a
// deterministic chaos schedule — per-host exponential crash/recover
// pairs, scheduled outage windows, and network-degradation episodes — as
// plain serializable data, the same way ScenarioSpec describes a
// workload. The spec carries no state: every draw is a pure function of
// (spec, run seed, host slot), so two simulations given the same seed
// replay byte-identical fault streams regardless of sharding or worker
// scheduling. That purity is what keeps the lease pool's capacity ledger
// exact under faults (docs/FAULTS.md, docs/SHARDING.md).

// FaultSpec declares a deterministic fault model for a simulation run.
// The zero value (and a nil pointer) means a failure-free world: every
// hook in the simulator is gated on Enabled, so an empty spec leaves
// runs byte-identical to builds that predate fault injection.
type FaultSpec struct {
	// HostMTBFHours is the mean time between failures of one host slot:
	// each host that joins the cluster draws an exponential uptime with
	// this mean and crashes when it expires. 0 disables crash/recover
	// churn (outages and degradations still apply).
	HostMTBFHours float64 `json:"host_mtbf_hours,omitempty"`
	// HostMTTRHours is the mean time to repair: a crashed host's
	// replacement arrives after an exponential downtime with this mean.
	// Required (positive) whenever HostMTBFHours is set.
	HostMTTRHours float64 `json:"host_mttr_hours,omitempty"`
	// CheckpointRestoreSeconds prices one task restart after quorum loss:
	// the time to pull the last checkpoint from the remote store and
	// replay to the failure point. 0 means DefaultCheckpointRestore.
	CheckpointRestoreSeconds float64 `json:"checkpoint_restore_seconds,omitempty"`
	// RetryBackoffSeconds is the base of the exponential backoff between
	// restart attempts of the same task. 0 means DefaultRetryBackoff.
	RetryBackoffSeconds float64 `json:"retry_backoff_seconds,omitempty"`
	// MaxRetries is the batch-class restart budget per task; the
	// interactive class abandons sooner and best-effort later (see
	// RetryBudget). 0 means DefaultMaxRetries.
	MaxRetries int `json:"max_retries,omitempty"`
	// Outages lists scheduled cluster/AZ failure windows.
	Outages []OutageSpec `json:"outages,omitempty"`
	// Degradations lists network-degradation episodes that scale every
	// inter-cluster penalty of a federated run.
	Degradations []DegradeSpec `json:"degradations,omitempty"`
}

// OutageSpec is one scheduled outage window: at StartHour (elapsed hours
// from the trace start) each live host is killed independently with
// probability HostFraction; the victims' replacements arrive together
// when the window closes.
type OutageSpec struct {
	StartHour     float64 `json:"start_hour"`
	DurationHours float64 `json:"duration_hours"`
	// HostFraction in (0, 1] is the per-host kill probability.
	HostFraction float64 `json:"host_fraction"`
	// Cluster names the federated member the outage hits ("" hits every
	// member; single-cluster runs apply only unscoped outages).
	Cluster string `json:"cluster,omitempty"`
}

// DegradeSpec is one network-degradation episode: between StartHour and
// StartHour+DurationHours every inter-cluster penalty is multiplied by
// Factor (through federation.SetPenaltyScale). Single-cluster runs have
// no inter-cluster links and ignore these.
type DegradeSpec struct {
	StartHour     float64 `json:"start_hour"`
	DurationHours float64 `json:"duration_hours"`
	// Factor >= 1 scales the penalties for the episode.
	Factor float64 `json:"factor"`
}

// Fault-model defaults; see the corresponding FaultSpec fields.
const (
	DefaultCheckpointRestore = 30 * time.Second
	DefaultRetryBackoff      = 15 * time.Second
	DefaultMaxRetries        = 3
)

// Enabled reports whether the spec injects any fault at all. Nil-safe:
// the simulator gates every fault hook on this, so a nil or empty spec
// costs nothing and changes nothing.
func (f *FaultSpec) Enabled() bool {
	if f == nil {
		return false
	}
	return f.HostMTBFHours > 0 || len(f.Outages) > 0 || len(f.Degradations) > 0
}

// Validate checks the spec's internal consistency.
func (f *FaultSpec) Validate() error {
	if f == nil {
		return nil
	}
	if f.HostMTBFHours < 0 || f.HostMTTRHours < 0 {
		return fmt.Errorf("trace: faults need non-negative MTBF/MTTR, got %v/%v",
			f.HostMTBFHours, f.HostMTTRHours)
	}
	if f.HostMTBFHours > 0 && f.HostMTTRHours <= 0 {
		return fmt.Errorf("trace: faults with host_mtbf_hours %v need positive host_mttr_hours",
			f.HostMTBFHours)
	}
	if f.CheckpointRestoreSeconds < 0 || f.RetryBackoffSeconds < 0 || f.MaxRetries < 0 {
		return fmt.Errorf("trace: faults need non-negative restart knobs")
	}
	for i, o := range f.Outages {
		if o.StartHour < 0 || o.DurationHours <= 0 {
			return fmt.Errorf("trace: outage %d invalid window [%v, +%vh)", i, o.StartHour, o.DurationHours)
		}
		if o.HostFraction <= 0 || o.HostFraction > 1 {
			return fmt.Errorf("trace: outage %d host_fraction %v outside (0,1]", i, o.HostFraction)
		}
	}
	for i, d := range f.Degradations {
		if d.StartHour < 0 || d.DurationHours <= 0 {
			return fmt.Errorf("trace: degradation %d invalid window [%v, +%vh)", i, d.StartHour, d.DurationHours)
		}
		if d.Factor < 1 {
			return fmt.Errorf("trace: degradation %d factor %v below 1", i, d.Factor)
		}
	}
	return nil
}

// faultSalt decorrelates the fault stream from every other seed-derived
// stream in the system (shard seeds, the simulator's scheduling and
// workload RNGs, lean-metrics reservoirs): the same run seed feeds them
// all, and the fault draws must not echo any of them.
const faultSalt = 0x5fa1700d5eed5a17

// faultRNG derives the deterministic RNG for one fault stream keyed by
// (seed, key): splitmix64 over the salted seed plus the key, so nearby
// keys (consecutive host slots, outage indexes) decorrelate fully.
func faultRNG(seed int64, key uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(splitmix64(uint64(seed)^faultSalt) + key))))
}

// HostFault returns the deterministic (uptime, downtime) pair for host
// slot `slot` of a run seeded with `seed`: the host crashes after an
// exponential uptime with mean HostMTBFHours, and its replacement
// arrives after an exponential downtime with mean HostMTTRHours. A pure
// function of (spec, seed, slot) — the replacement occupies a fresh slot
// with its own pair, so host lifecycles form an alternating renewal
// process whose long-run down fraction is MTTR/(MTBF+MTTR) (pinned by
// TestHostFaultDowntimeFraction). Returns (0, 0) when crash churn is
// disabled.
func (f *FaultSpec) HostFault(seed int64, slot uint64) (up, down time.Duration) {
	if f == nil || f.HostMTBFHours <= 0 {
		return 0, 0
	}
	r := faultRNG(seed, slot)
	up = time.Duration(r.ExpFloat64() * f.HostMTBFHours * float64(time.Hour))
	down = time.Duration(r.ExpFloat64() * f.HostMTTRHours * float64(time.Hour))
	return up, down
}

// OutageRNG returns the deterministic RNG for outage index i's per-host
// kill draws. The simulator draws one Float64 per live host in host-list
// order, so a replayed run — in particular the lease pool's capacity
// ledger, which replays the parent seed over the parent workload —
// selects the identical victims.
func (f *FaultSpec) OutageRNG(seed int64, i int) *rand.Rand {
	return faultRNG(seed, uint64(1<<32)+uint64(i))
}

// CheckpointRestore returns the configured checkpoint-restore penalty.
func (f *FaultSpec) CheckpointRestore() time.Duration {
	if f == nil || f.CheckpointRestoreSeconds <= 0 {
		return DefaultCheckpointRestore
	}
	return time.Duration(f.CheckpointRestoreSeconds * float64(time.Second))
}

// RetryBackoff returns the base backoff between restart attempts;
// attempt n waits RetryBackoff << (n-1).
func (f *FaultSpec) RetryBackoff() time.Duration {
	if f == nil || f.RetryBackoffSeconds <= 0 {
		return DefaultRetryBackoff
	}
	return time.Duration(f.RetryBackoffSeconds * float64(time.Second))
}

// RetryBudget returns the restart budget for one task of the given SLO
// class. Interactive users will not wait out repeated checkpoint-restore
// cycles, so that class abandons fastest; best-effort work retries
// longest. The batch budget is MaxRetries (or DefaultMaxRetries).
func (f *FaultSpec) RetryBudget(class SLOClass) int {
	base := DefaultMaxRetries
	if f != nil && f.MaxRetries > 0 {
		base = f.MaxRetries
	}
	switch class.OrDefault() {
	case SLOInteractive:
		b := base / 3
		if b < 1 {
			b = 1
		}
		return b
	case SLOBestEffort:
		return base * 2
	default:
		return base
	}
}

// ParseFaults decodes a JSON FaultSpec, rejecting unknown fields so
// typos in hand-written chaos files fail loudly.
func ParseFaults(data []byte) (FaultSpec, error) {
	var f FaultSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return FaultSpec{}, fmt.Errorf("trace: parse faults: %w", err)
	}
	if err := f.Validate(); err != nil {
		return FaultSpec{}, err
	}
	return f, nil
}

// LoadFaults reads and parses a JSON FaultSpec file.
func LoadFaults(path string) (FaultSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FaultSpec{}, fmt.Errorf("trace: load faults: %w", err)
	}
	return ParseFaults(data)
}

// ResolveFaults returns the built-in fault profile of that name, or —
// when no built-in matches — treats the argument as a JSON spec file.
func ResolveFaults(nameOrPath string) (FaultSpec, error) {
	if f, ok := BuiltinFaultProfile(nameOrPath); ok {
		return f, nil
	}
	f, err := LoadFaults(nameOrPath)
	if err != nil {
		return FaultSpec{}, fmt.Errorf("%w (and %q names no built-in fault profile; built-ins: %v)",
			err, nameOrPath, BuiltinFaultProfileNames())
	}
	return f, nil
}

// ---- built-in fault profiles ---------------------------------------------

// LightFaultProfile models routine hardware churn: rare crashes (200 h
// MTBF) repaired in about half an hour.
func LightFaultProfile() FaultSpec {
	return FaultSpec{HostMTBFHours: 200, HostMTTRHours: 0.5}
}

// HeavyFaultProfile models a bad week: daily-scale crashes with hour-long
// repairs plus a degraded-network episode.
func HeavyFaultProfile() FaultSpec {
	return FaultSpec{
		HostMTBFHours: 24,
		HostMTTRHours: 1,
		Degradations:  []DegradeSpec{{StartHour: 6, DurationHours: 2, Factor: 8}},
	}
}

// AZOutageFaultProfile models an availability-zone failure: light
// background churn, then a 90-minute window that kills 40% of the fleet
// at hour 8, with the WAN degraded 4x for the same stretch.
func AZOutageFaultProfile() FaultSpec {
	return FaultSpec{
		HostMTBFHours: 300,
		HostMTTRHours: 0.5,
		Outages:       []OutageSpec{{StartHour: 8, DurationHours: 1.5, HostFraction: 0.4}},
		Degradations:  []DegradeSpec{{StartHour: 8, DurationHours: 1.5, Factor: 4}},
	}
}

// BuiltinFaultProfiles returns the registered fault profiles with their
// registry names, in listing order.
func BuiltinFaultProfiles() map[string]FaultSpec {
	return map[string]FaultSpec{
		"light":     LightFaultProfile(),
		"heavy":     HeavyFaultProfile(),
		"az-outage": AZOutageFaultProfile(),
	}
}

// BuiltinFaultProfile finds a registered fault profile by name.
func BuiltinFaultProfile(name string) (FaultSpec, bool) {
	f, ok := BuiltinFaultProfiles()[name]
	return f, ok
}

// BuiltinFaultProfileNames lists the registered profile names.
func BuiltinFaultProfileNames() []string {
	return []string{"light", "heavy", "az-outage"}
}
