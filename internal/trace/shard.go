package trace

import "fmt"

// Shard is one session-partitioned slice of a Trace, produced by Split.
// Every session — and therefore its entire task chain, since tasks belong
// to exactly one session — lives whole within exactly one shard, so a
// worker simulation replaying a shard never sees a session whose history
// is elsewhere. Shards keep the parent's full [Start, End) window: their
// timelines align point-for-point, which is what lets a merged result
// integrate over the same range as an unsharded run.
type Shard struct {
	// Index is this shard's position within the split, 0-based.
	Index int
	// Count is the total number of shards in the split.
	Count int
	// Trace is the shard's sub-trace: a subset of the parent's sessions
	// (shared pointers — traces are read-only after generation) over the
	// parent's full time window.
	Trace *Trace
	// Weight is the shard's share of the parent's total session weight in
	// [0, 1]. Session weight is reserved GPU-hours (Request.GPUs x
	// lifetime) — the Reservation-baseline demand — so capacity split
	// proportionally to Weight gives each worker cluster the same
	// demand-to-capacity ratio the unsharded cluster saw. Under sim's
	// lease pool that proportional split is only the initial lease grant;
	// host ownership then moves between shards at every epoch barrier
	// (docs/SHARDING.md).
	Weight float64
}

// sessionWeight is the load-balancing weight used by Split: the session's
// reserved GPU-hours. Sessions reserving zero GPUs weigh a nominal
// epsilon so they still spread across shards.
func sessionWeight(s *Session) float64 {
	w := float64(s.Request.GPUs) * s.Lifetime().Hours()
	if w <= 0 {
		w = 1e-9
	}
	return w
}

// Split partitions the trace's sessions into k shards. The partition is
// deterministic: sessions are taken in trace order and each is assigned
// to the shard with the least accumulated weight so far (ties broken by
// lowest shard index), so shards carry near-equal reserved-GPU-hour load
// even when session sizes vary. Within a shard, sessions keep their
// original relative order. k <= 1 returns a single shard holding every
// session; k greater than the session count leaves the excess shards
// empty (their traces have no sessions but keep the full window).
func (tr *Trace) Split(k int) []Shard {
	if k < 1 {
		k = 1
	}
	shards := make([]Shard, k)
	acc := make([]float64, k)
	var total float64
	for i := range shards {
		shards[i] = Shard{
			Index: i,
			Count: k,
			Trace: &Trace{
				Name:        fmt.Sprintf("%s/shard%d-of-%d", tr.Name, i, k),
				Start:       tr.Start,
				End:         tr.End,
				Granularity: tr.Granularity,
			},
		}
	}
	for _, s := range tr.Sessions {
		w := sessionWeight(s)
		best := 0
		for i := 1; i < k; i++ {
			if acc[i] < acc[best] {
				best = i
			}
		}
		shards[best].Trace.Sessions = append(shards[best].Trace.Sessions, s)
		acc[best] += w
		total += w
	}
	for i := range shards {
		if total > 0 {
			shards[i].Weight = acc[i] / total
		} else {
			shards[i].Weight = 1 / float64(k)
		}
	}
	return shards
}

// ProportionalShares splits an integer total across the given weights
// using the largest-remainder method, with every share floored at min.
// The rounding rules, in order:
//
//  1. Each share starts at floor(total * weight / weightSum). Zero or
//     all-zero weights fall back to equal weights.
//  2. The leftover units (total - sum of floors) go one each to the
//     largest fractional remainders; remainder ties break toward the
//     lower index.
//  3. Shares below min are raised to min, funded by repeatedly taking one
//     unit from the currently largest share strictly above min (ties
//     again toward the lower index). If total < min*len(weights) the
//     floor is unsatisfiable; shares are then as even as possible and the
//     caller gets what exists — nothing is invented.
//
// The result always sums to exactly total (for total >= 0), and is a pure
// function of its arguments, so sharded capacity splits are reproducible.
// For sim's sharded runners this split is the initial lease grant: final
// capacity under the lease pool is re-apportioned at epoch barriers, and
// only the legacy static split keeps these shares for the whole run.
func ProportionalShares(weights []float64, total, min int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	shares := make([]int, n)
	if total <= 0 {
		return shares
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	rem := make([]float64, n)
	assigned := 0
	for i, w := range weights {
		frac := 1 / float64(n)
		if sum > 0 {
			if w < 0 {
				w = 0
			}
			frac = w / sum
		}
		exact := float64(total) * frac
		shares[i] = int(exact)
		rem[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		shares[best]++
		rem[best] = -1
		assigned++
	}
	if min > 0 {
		for i := range shares {
			for shares[i] < min {
				donor, donorVal := -1, min
				for j := range shares {
					if j != i && shares[j] > donorVal {
						donor, donorVal = j, shares[j]
					}
				}
				if donor < 0 {
					break // floor unsatisfiable: total < min*n
				}
				shares[donor]--
				shares[i]++
			}
		}
	}
	return shares
}
