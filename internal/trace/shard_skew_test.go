package trace

import (
	"math"
	"testing"
)

// Edge cases for the sharding primitives under the skewed loads the
// scenario cohorts produce: a handful of batch-heavy sessions can carry
// most of the reserved GPU-hours, so both the integer capacity division
// (ProportionalShares with its min floor) and the greedy session partition
// (Split) must stay sane when one share dwarfs the rest.

// TestProportionalSharesSkewed: table-driven extremes of the
// largest-remainder division — dominant shares, starving floors funded
// from the largest share, and floors that cannot be satisfied at all.
func TestProportionalSharesSkewed(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		total   int
		min     int
		want    []int
	}{
		// One dominant weight: the floor for every starved shard comes out
		// of the dominant share, one unit per shard.
		{"dominant-funds-three-floors", []float64{1000, 1, 1, 1}, 16, 2, []int{10, 2, 2, 2}},
		// Zero-weight shards still get the floor.
		{"zero-weight-gets-floor", []float64{0, 0, 5}, 10, 1, []int{1, 1, 8}},
		// Floor exactly exhausts the total: everyone sits at the floor.
		{"floor-exhausts-total", []float64{9, 3, 1}, 6, 2, []int{2, 2, 2}},
		// Floor unsatisfiable (total < min*n): as even as possible, larger
		// shares first, never negative.
		{"unsatisfiable-floor-skewed", []float64{100, 1, 1, 1}, 3, 2, []int{2, 1, 0, 0}},
		// min greater than an even split but total still covers it: the
		// dominant share absorbs the entire shortfall.
		{"high-floor-compresses-dominant", []float64{50, 1, 1, 1, 1}, 20, 3, []int{8, 3, 3, 3, 3}},
		// Skew mild enough that largest-remainder alone satisfies the floor:
		// result must equal the floor-free division.
		{"floor-inactive", []float64{6, 3, 1}, 20, 1, []int{12, 6, 2}},
		// A single shard takes everything regardless of floor.
		{"single-shard", []float64{0.001}, 7, 3, []int{7}},
		// Tiny-but-nonzero weights round to zero and then get floored.
		{"epsilon-weights", []float64{1, 1e-12, 1e-12}, 12, 1, []int{10, 1, 1}},
	}
	for _, c := range cases {
		got := ProportionalShares(c.weights, c.total, c.min)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("%s: ProportionalShares(%v, %d, %d) = %v, want %v",
					c.name, c.weights, c.total, c.min, got, c.want)
				break
			}
		}
		if sum != c.total {
			t.Errorf("%s: shares %v sum to %d, want %d", c.name, got, sum, c.total)
		}
	}
}

// skewedScenario is a two-cohort spec engineered so reserved GPU-hours
// concentrate in a thin batch-heavy slice: 85% tiny student sessions, 15%
// day-scale 8-GPU batch sessions.
func skewedScenario() ScenarioSpec {
	s := ScenarioSpec{
		Name:          "skew-test",
		DurationHours: 72,
		Arrival:       ArrivalSpec{BaseSessionsPerHour: 8},
		Cohorts: []CohortSpec{
			StudentCohort(0.85),
			BatchHeavyCohort(0.15),
		},
	}
	return s
}

// TestSplitSkewedCohortLoad: splitting a batch-heavy-skewed trace obeys the
// greedy least-loaded guarantee — no shard exceeds the ideal share by more
// than the single heaviest session — and the weights track the realized
// per-shard GPU-hours exactly.
func TestSplitSkewedCohortLoad(t *testing.T) {
	tr := genScenario(t, skewedScenario(), 9)

	var total, maxSession float64
	for _, s := range tr.Sessions {
		w := float64(s.Request.GPUs) * s.Lifetime().Hours()
		total += w
		if w > maxSession {
			maxSession = w
		}
	}
	// The skew must actually be present for this test to mean anything:
	// the heaviest single session carries more than 2% of the total load.
	if maxSession < 0.02*total {
		t.Fatalf("scenario not skewed: max session %.1f GPUh of %.1f total", maxSession, total)
	}

	for _, k := range []int{2, 4, 8} {
		shards := tr.Split(k)
		var weightSum float64
		count := 0
		for _, sh := range shards {
			count += len(sh.Trace.Sessions)
			weightSum += sh.Weight
			var load float64
			for _, s := range sh.Trace.Sessions {
				load += float64(s.Request.GPUs) * s.Lifetime().Hours()
			}
			// Greedy least-loaded bound: load <= ideal + heaviest item.
			if bound := total/float64(k) + maxSession; load > bound+1e-6 {
				t.Errorf("k=%d shard %d load %.1f GPUh exceeds greedy bound %.1f",
					k, sh.Index, load, bound)
			}
			if want := load / total; math.Abs(sh.Weight-want) > 1e-6 {
				t.Errorf("k=%d shard %d weight %.6f, realized share %.6f",
					k, sh.Index, sh.Weight, want)
			}
		}
		if count != len(tr.Sessions) {
			t.Errorf("k=%d: shards hold %d sessions, trace has %d", k, count, len(tr.Sessions))
		}
		if math.Abs(weightSum-1) > 1e-6 {
			t.Errorf("k=%d: weights sum to %v", k, weightSum)
		}
	}
}

// TestSplitOneGiantSession: a trace where one session outweighs everything
// else combined still partitions exactly — the giant lands alone-ish on one
// shard and the remaining shards absorb the rest near-evenly.
func TestSplitOneGiantSession(t *testing.T) {
	s := skewedScenario()
	s.Cohorts = []CohortSpec{StudentCohort(1)}
	tr := genScenario(t, s, 10)
	// Promote the first session to a giant that outweighs the rest of the
	// trace combined: full-window, 64 GPUs.
	g := tr.Sessions[0]
	g.End = tr.End
	g.Request.GPUs = 64
	g.Tasks = nil

	shards := tr.Split(4)
	giantShard := -1
	for _, sh := range shards {
		for _, sess := range sh.Trace.Sessions {
			if sess == g {
				giantShard = sh.Index
			}
		}
	}
	if giantShard == -1 {
		t.Fatal("giant session missing from every shard")
	}
	// The giant dominates its shard's weight, and the other shards split
	// the remainder within the usual greedy balance.
	gw := shards[giantShard].Weight
	if gw < 0.5 {
		t.Errorf("giant shard weight %.3f, expected it to dominate (> 0.5)", gw)
	}
	rest := (1 - gw) / 3
	for _, sh := range shards {
		if sh.Index == giantShard {
			continue
		}
		if sh.Weight > 2.5*rest {
			t.Errorf("shard %d weight %.4f far above even remainder share %.4f",
				sh.Index, sh.Weight, rest)
		}
	}
}
