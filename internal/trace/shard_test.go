package trace

import (
	"testing"
	"time"
)

func shardTestTrace(t *testing.T, seed int64) *Trace {
	t.Helper()
	cfg := AdobeExcerptConfig(seed)
	cfg.Duration = 4 * time.Hour
	return MustGenerate(cfg)
}

// TestSplitPartitionsSessionsExactly: the shards' session sets form an
// exact partition of the parent's — every session appears in exactly one
// shard, nothing is invented, and within a shard sessions keep their
// original relative order.
func TestSplitPartitionsSessionsExactly(t *testing.T) {
	tr := shardTestTrace(t, 42)
	for _, k := range []int{1, 2, 3, 4, 7} {
		shards := tr.Split(k)
		if len(shards) != k {
			t.Fatalf("Split(%d) returned %d shards", k, len(shards))
		}
		seen := map[string]int{}
		total := 0
		for i, sh := range shards {
			if sh.Index != i || sh.Count != k {
				t.Errorf("k=%d shard %d: Index=%d Count=%d", k, i, sh.Index, sh.Count)
			}
			if !sh.Trace.Start.Equal(tr.Start) || !sh.Trace.End.Equal(tr.End) {
				t.Errorf("k=%d shard %d window %v-%v != parent %v-%v",
					k, i, sh.Trace.Start, sh.Trace.End, tr.Start, tr.End)
			}
			lastIdx := -1
			for _, s := range sh.Trace.Sessions {
				if prev, dup := seen[s.ID]; dup {
					t.Fatalf("k=%d: session %s in shards %d and %d", k, s.ID, prev, i)
				}
				seen[s.ID] = i
				total++
				// Original relative order: find the session's index in the
				// parent and assert it increases within the shard.
				idx := -1
				for j, ps := range tr.Sessions {
					if ps == s {
						idx = j
						break
					}
				}
				if idx < 0 {
					t.Fatalf("k=%d: shard %d holds session %s not in parent", k, i, s.ID)
				}
				if idx <= lastIdx {
					t.Errorf("k=%d shard %d: sessions out of trace order", k, i)
				}
				lastIdx = idx
			}
		}
		if total != len(tr.Sessions) {
			t.Errorf("k=%d: shards hold %d sessions, parent has %d", k, total, len(tr.Sessions))
		}
	}
}

// TestSplitNeverCutsTaskChains: a shard session IS the parent session
// (shared pointer, traces are read-only), so its task chain is exactly
// the parent's — no task is dropped, duplicated, or moved to a different
// shard than its session.
func TestSplitNeverCutsTaskChains(t *testing.T) {
	tr := shardTestTrace(t, 43)
	byID := map[string]*Session{}
	for _, s := range tr.Sessions {
		byID[s.ID] = s
	}
	shards := tr.Split(4)
	tasks := 0
	for _, sh := range shards {
		for _, s := range sh.Trace.Sessions {
			orig := byID[s.ID]
			if s != orig {
				t.Fatalf("shard session %s is a copy, not the parent session", s.ID)
			}
			if len(s.Tasks) != len(orig.Tasks) {
				t.Fatalf("session %s task chain cut: %d vs %d tasks", s.ID, len(s.Tasks), len(orig.Tasks))
			}
			tasks += len(s.Tasks)
		}
		if err := sh.Trace.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", sh.Index, err)
		}
	}
	if tasks != tr.NumTasks() {
		t.Errorf("shards hold %d tasks, parent has %d", tasks, tr.NumTasks())
	}
}

// TestSplitWeightsAndBalance: weights sum to 1 and the greedy assignment
// keeps shard loads near-equal (no shard more than twice the ideal share
// on a real trace).
func TestSplitWeightsAndBalance(t *testing.T) {
	tr := shardTestTrace(t, 44)
	shards := tr.Split(4)
	var sum float64
	for _, sh := range shards {
		sum += sh.Weight
		if sh.Weight < 0 || sh.Weight > 1 {
			t.Errorf("shard %d weight %v out of range", sh.Index, sh.Weight)
		}
		if sh.Weight > 2.0/float64(len(shards)) {
			t.Errorf("shard %d weight %v exceeds twice the ideal share", sh.Index, sh.Weight)
		}
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
}

// TestSplitDeterministic: two splits of the same trace are identical.
func TestSplitDeterministic(t *testing.T) {
	tr := shardTestTrace(t, 45)
	a, b := tr.Split(3), tr.Split(3)
	for i := range a {
		if len(a[i].Trace.Sessions) != len(b[i].Trace.Sessions) {
			t.Fatalf("shard %d: %d vs %d sessions", i, len(a[i].Trace.Sessions), len(b[i].Trace.Sessions))
		}
		for j := range a[i].Trace.Sessions {
			if a[i].Trace.Sessions[j] != b[i].Trace.Sessions[j] {
				t.Fatalf("shard %d session %d differs between splits", i, j)
			}
		}
	}
}

func TestProportionalShares(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		total   int
		min     int
		want    []int
	}{
		{"equal", []float64{1, 1, 1}, 30, 1, []int{10, 10, 10}},
		{"largest-remainder", []float64{1, 1, 1}, 10, 0, []int{4, 3, 3}},
		{"proportional", []float64{3, 1}, 8, 1, []int{6, 2}},
		{"min-floor", []float64{100, 1e-9}, 10, 1, []int{9, 1}},
		{"zero-weights-fall-back-equal", []float64{0, 0}, 4, 1, []int{2, 2}},
		{"unsatisfiable-floor", []float64{1, 1, 1}, 2, 1, []int{1, 1, 0}},
		{"zero-total", []float64{1, 2}, 0, 0, []int{0, 0}},
	}
	for _, c := range cases {
		got := ProportionalShares(c.weights, c.total, c.min)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v", c.name, got)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("%s: ProportionalShares(%v, %d, %d) = %v, want %v",
					c.name, c.weights, c.total, c.min, got, c.want)
				break
			}
		}
		if c.total >= 0 && sum != c.total {
			t.Errorf("%s: shares %v sum to %d, want %d", c.name, got, sum, c.total)
		}
	}
}
