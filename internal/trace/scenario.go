package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// This file is the declarative scenario layer: a ScenarioSpec describes a
// synthetic workload family — an arrival process composed from diurnal
// windows, weekly overlays, and flash-crowd spikes, plus weighted user
// cohorts with their own (optionally heavy-tailed) distributions — as plain
// serializable data. Spec.Config compiles it to a GenConfig, so every
// existing consumer works unchanged: Generate materializes it, StreamGen
// streams exact Poisson splits of it (thinning only needs the piecewise-
// constant rate to be bounded), and GenConfig.Expect blends analytic
// expectations across the cohorts for metrics pre-sizing and capacity
// shares. Specs load from JSON files or from the built-in registry.

// Dist declaratively names a distribution; exactly the fields of its Kind
// are meaningful. All values are in seconds when used for times.
type Dist struct {
	// Kind selects the distribution: "fixed", "uniform", "exponential",
	// "lognormal", "pareto", or "quantile".
	Kind string `json:"kind"`
	// Value is the constant for Kind "fixed".
	Value float64 `json:"value,omitempty"`
	// Lo and Hi delimit Kind "uniform".
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Mean parameterizes Kind "exponential".
	Mean float64 `json:"mean,omitempty"`
	// Mu and Sigma parameterize Kind "lognormal" (of the underlying normal).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Scale (x_m, the minimum) and Shape (alpha, the tail index)
	// parameterize Kind "pareto". Shape must exceed 1 so the mean — which
	// capacity planning and Expect lean on — is finite.
	Scale float64 `json:"scale,omitempty"`
	Shape float64 `json:"shape,omitempty"`
	// Knots pin Kind "quantile" (see NewQuantile).
	Knots []Knot `json:"knots,omitempty"`
}

// Sampler compiles the declaration to a trace.Sampler.
func (d Dist) Sampler() (Sampler, error) {
	switch d.Kind {
	case "fixed":
		if d.Value <= 0 {
			return nil, fmt.Errorf("trace: fixed dist needs positive value, got %v", d.Value)
		}
		return Fixed(d.Value), nil
	case "uniform":
		if d.Lo < 0 || d.Hi <= d.Lo {
			return nil, fmt.Errorf("trace: uniform dist needs 0 <= lo < hi, got [%v,%v)", d.Lo, d.Hi)
		}
		return Uniform{Lo: d.Lo, Hi: d.Hi}, nil
	case "exponential":
		if d.Mean <= 0 {
			return nil, fmt.Errorf("trace: exponential dist needs positive mean, got %v", d.Mean)
		}
		return Exponential{MeanVal: d.Mean}, nil
	case "lognormal":
		if d.Sigma <= 0 {
			return nil, fmt.Errorf("trace: lognormal dist needs positive sigma, got %v", d.Sigma)
		}
		return LogNormal{Mu: d.Mu, Sigma: d.Sigma}, nil
	case "pareto":
		if d.Scale <= 0 {
			return nil, fmt.Errorf("trace: pareto dist needs positive scale, got %v", d.Scale)
		}
		if d.Shape <= 1 {
			return nil, fmt.Errorf("trace: pareto dist needs shape > 1 (finite mean), got %v", d.Shape)
		}
		return Pareto{Xm: d.Scale, Alpha: d.Shape}, nil
	case "quantile":
		return NewQuantile(d.Knots...)
	default:
		return nil, fmt.Errorf("trace: unknown dist kind %q", d.Kind)
	}
}

// IntDist is a declarative weighted integer distribution (GPU counts).
type IntDist struct {
	Values  []int     `json:"values"`
	Weights []float64 `json:"weights"`
}

func (d IntDist) weights() (*IntWeights, error) {
	return NewIntWeights(d.Values, d.Weights)
}

// RateWindow scales the arrival rate within a repeating hour-of-day window
// [StartHour, EndHour) — the building block of diurnal shapes. Hours
// outside every window keep factor 1.
type RateWindow struct {
	StartHour float64 `json:"start_hour"`
	EndHour   float64 `json:"end_hour"`
	Factor    float64 `json:"factor"`
}

// Spike scales the arrival rate over one absolute interval of the scenario,
// [StartHour, EndHour) in elapsed hours — a flash crowd (factor > 1) or a
// lull (factor < 1).
type Spike struct {
	StartHour float64 `json:"start_hour"`
	EndHour   float64 `json:"end_hour"`
	Factor    float64 `json:"factor"`
}

// ArrivalSpec composes a piecewise-constant Poisson intensity:
//
//	rate(t) = Base x diurnal(hour-of-day) x weekday(day mod 7) x spikes(t)
//
// Each layer is optional. The composed rate stays piecewise-constant, so
// StreamGen's exact per-shard Poisson thinning applies unchanged — the
// acceptance ratio rate(t)/MaxRate is well-defined because MaxRate bounds
// the product of the layers' maxima.
type ArrivalSpec struct {
	// BaseSessionsPerHour is the reference arrival intensity.
	BaseSessionsPerHour float64 `json:"base_sessions_per_hour"`
	// Diurnal lists non-overlapping hour-of-day windows, repeated daily.
	Diurnal []RateWindow `json:"diurnal,omitempty"`
	// Weekday holds 7 per-day multipliers; index 0 is the scenario's first
	// day (specs are calendar-free). Empty disables the weekly overlay.
	Weekday []float64 `json:"weekday,omitempty"`
	// Spikes lists non-overlapping absolute intervals with rate multipliers.
	Spikes []Spike `json:"spikes,omitempty"`
}

const dayHours = 24 * time.Hour

func hoursDur(h float64) time.Duration {
	return time.Duration(h * float64(time.Hour))
}

// Rate returns the composed intensity at the given elapsed time.
func (a ArrivalSpec) Rate(elapsed time.Duration) float64 {
	r := a.BaseSessionsPerHour
	if len(a.Diurnal) > 0 {
		hod := (elapsed % dayHours).Hours()
		for _, w := range a.Diurnal {
			if hod >= w.StartHour && hod < w.EndHour {
				r *= w.Factor
				break
			}
		}
	}
	if len(a.Weekday) == 7 {
		r *= a.Weekday[int(elapsed/dayHours)%7]
	}
	for _, sp := range a.Spikes {
		h := elapsed.Hours()
		if h >= sp.StartHour && h < sp.EndHour {
			r *= sp.Factor
			break
		}
	}
	return r
}

// MaxRate returns an upper bound on Rate over all times: the product of
// each layer's maximum factor (including the implicit factor-1 regions).
// Thinning only needs a bound, so looseness costs rejected candidate draws
// but never correctness.
func (a ArrivalSpec) MaxRate() float64 {
	maxOf := func(factors []float64) float64 {
		m := 1.0
		for _, f := range factors {
			if f > m {
				m = f
			}
		}
		return m
	}
	r := a.BaseSessionsPerHour
	var fs []float64
	for _, w := range a.Diurnal {
		fs = append(fs, w.Factor)
	}
	r *= maxOf(fs)
	if len(a.Weekday) == 7 {
		r *= maxOf(a.Weekday)
	}
	fs = fs[:0]
	for _, sp := range a.Spikes {
		fs = append(fs, sp.Factor)
	}
	return r * maxOf(fs)
}

// ExpectedArrivals integrates the composed rate over [from, to) elapsed
// time — exactly, by scanning the piecewise-constant segments between rate
// breakpoints. Statistical tests compare per-window empirical counts
// against this; reports print it next to realized counts.
func (a ArrivalSpec) ExpectedArrivals(from, to time.Duration) float64 {
	var sum float64
	for t := from; t < to; {
		next := a.nextBreak(t, to)
		sum += a.Rate(t+(next-t)/2) * (next - t).Hours()
		t = next
	}
	return sum
}

// nextBreak returns the earliest rate breakpoint strictly after t, capped
// at `to`: the next diurnal window edge (today's or tomorrow's), the next
// day boundary, or the next spike edge.
func (a ArrivalSpec) nextBreak(t, to time.Duration) time.Duration {
	next := to
	consider := func(b time.Duration) {
		if b > t && b < next {
			next = b
		}
	}
	dayStart := t - t%dayHours
	consider(dayStart + dayHours)
	for _, w := range a.Diurnal {
		for _, base := range []time.Duration{dayStart, dayStart + dayHours} {
			consider(base + hoursDur(w.StartHour))
			consider(base + hoursDur(w.EndHour))
		}
	}
	for _, sp := range a.Spikes {
		consider(hoursDur(sp.StartHour))
		consider(hoursDur(sp.EndHour))
	}
	return next
}

func (a ArrivalSpec) validate() error {
	if a.BaseSessionsPerHour <= 0 {
		return fmt.Errorf("trace: scenario needs positive base_sessions_per_hour, got %v", a.BaseSessionsPerHour)
	}
	for i, w := range a.Diurnal {
		if w.StartHour < 0 || w.EndHour > 24 || w.StartHour >= w.EndHour {
			return fmt.Errorf("trace: diurnal window %d invalid [%v,%v)", i, w.StartHour, w.EndHour)
		}
		if w.Factor < 0 {
			return fmt.Errorf("trace: diurnal window %d negative factor %v", i, w.Factor)
		}
		for j := 0; j < i; j++ {
			p := a.Diurnal[j]
			if w.StartHour < p.EndHour && p.StartHour < w.EndHour {
				return fmt.Errorf("trace: diurnal windows %d and %d overlap", j, i)
			}
		}
	}
	if n := len(a.Weekday); n != 0 && n != 7 {
		return fmt.Errorf("trace: weekday overlay needs 7 factors, got %d", n)
	}
	for i, f := range a.Weekday {
		if f < 0 {
			return fmt.Errorf("trace: weekday %d negative factor %v", i, f)
		}
	}
	for i, sp := range a.Spikes {
		if sp.StartHour < 0 || sp.StartHour >= sp.EndHour {
			return fmt.Errorf("trace: spike %d invalid [%v,%v)", i, sp.StartHour, sp.EndHour)
		}
		if sp.Factor < 0 {
			return fmt.Errorf("trace: spike %d negative factor %v", i, sp.Factor)
		}
		for j := 0; j < i; j++ {
			p := a.Spikes[j]
			if sp.StartHour < p.EndHour && p.StartHour < sp.EndHour {
				return fmt.Errorf("trace: spikes %d and %d overlap", j, i)
			}
		}
	}
	return nil
}

// CohortSpec is the declarative form of one user cohort (see Cohort).
type CohortSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// SLO is the cohort's service-level class: "interactive", "batch",
	// "best-effort", or empty for unclassified (scheduled as batch).
	SLO string `json:"slo,omitempty"`
	// SessionLifetime, ThinkTime, TaskDuration, and BurstGap are in seconds.
	SessionLifetime Dist    `json:"session_lifetime"`
	PNeverTrains    float64 `json:"p_never_trains"`
	ThinkTime       Dist    `json:"think_time"`
	TaskDuration    Dist    `json:"task_duration"`
	PBurstEnd       float64 `json:"p_burst_end"`
	BurstGap        Dist    `json:"burst_gap"`
	RequestGPUs     IntDist `json:"request_gpus"`
	TaskGPUs        IntDist `json:"task_gpus"`
}

func (c CohortSpec) cohort() (Cohort, error) {
	fail := func(field string, err error) (Cohort, error) {
		return Cohort{}, fmt.Errorf("trace: cohort %q %s: %w", c.Name, field, err)
	}
	life, err := c.SessionLifetime.Sampler()
	if err != nil {
		return fail("session_lifetime", err)
	}
	think, err := c.ThinkTime.Sampler()
	if err != nil {
		return fail("think_time", err)
	}
	dur, err := c.TaskDuration.Sampler()
	if err != nil {
		return fail("task_duration", err)
	}
	gap, err := c.BurstGap.Sampler()
	if err != nil {
		return fail("burst_gap", err)
	}
	req, err := c.RequestGPUs.weights()
	if err != nil {
		return fail("request_gpus", err)
	}
	task, err := c.TaskGPUs.weights()
	if err != nil {
		return fail("task_gpus", err)
	}
	if c.Name == "" {
		return Cohort{}, fmt.Errorf("trace: cohort needs a name")
	}
	if c.Weight <= 0 {
		return Cohort{}, fmt.Errorf("trace: cohort %q needs positive weight, got %v", c.Name, c.Weight)
	}
	if c.PNeverTrains < 0 || c.PNeverTrains > 1 || c.PBurstEnd < 0 || c.PBurstEnd > 1 {
		return Cohort{}, fmt.Errorf("trace: cohort %q probabilities out of [0,1]", c.Name)
	}
	slo, err := ParseSLOClass(c.SLO)
	if err != nil {
		return Cohort{}, fmt.Errorf("trace: cohort %q slo: %w", c.Name, err)
	}
	return Cohort{
		Name:            c.Name,
		SLO:             slo,
		Weight:          c.Weight,
		SessionLifetime: life,
		PNeverTrains:    c.PNeverTrains,
		ThinkTime:       think,
		TaskDuration:    dur,
		PBurstEnd:       c.PBurstEnd,
		BurstGap:        gap,
		RequestGPUs:     req,
		TaskGPUs:        task,
	}, nil
}

// ScenarioSpec is a complete declarative synthetic workload: an arrival
// shape plus a cohort mix over a duration. It is plain data — JSON in and
// out — and compiles to a GenConfig via Config, which is what both the
// materialized path (Generate) and the streaming sharded path (StreamGen /
// sim.RunStreamSharded) consume, so one spec drives every execution mode.
type ScenarioSpec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// DurationHours is the scenario window length.
	DurationHours float64 `json:"duration_hours"`
	// GranularitySeconds quantizes task submit times and durations
	// (0 disables quantization).
	GranularitySeconds float64      `json:"granularity_seconds,omitempty"`
	Arrival            ArrivalSpec  `json:"arrival"`
	Cohorts            []CohortSpec `json:"cohorts"`
	// Faults optionally declares a deterministic chaos schedule to run the
	// scenario under (host crash churn, outage windows, degraded-network
	// episodes). The workload compiled by Config is fault-agnostic; runners
	// thread the spec into the simulation (sim.Config.Faults), so the same
	// scenario runs failure-free when the block is omitted.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// Validate checks the spec without compiling a usable config.
func (s ScenarioSpec) Validate() error {
	_, err := s.Config(1)
	return err
}

// Config compiles the spec into a GenConfig rooted at TraceEpoch. The same
// spec and seed always compile to the same workload, on either path.
func (s ScenarioSpec) Config(seed int64) (GenConfig, error) {
	if s.Name == "" {
		return GenConfig{}, fmt.Errorf("trace: scenario needs a name")
	}
	if s.DurationHours <= 0 {
		return GenConfig{}, fmt.Errorf("trace: scenario %q needs positive duration_hours, got %v", s.Name, s.DurationHours)
	}
	if s.GranularitySeconds < 0 {
		return GenConfig{}, fmt.Errorf("trace: scenario %q negative granularity", s.Name)
	}
	if err := s.Arrival.validate(); err != nil {
		return GenConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if len(s.Cohorts) == 0 {
		return GenConfig{}, fmt.Errorf("trace: scenario %q needs at least one cohort", s.Name)
	}
	if err := s.Faults.Validate(); err != nil {
		return GenConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	cohorts := make([]Cohort, len(s.Cohorts))
	for i, cs := range s.Cohorts {
		c, err := cs.cohort()
		if err != nil {
			return GenConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		cohorts[i] = c
	}
	arrival := s.Arrival // copy; the closure must not alias the caller's spec
	return GenConfig{
		Name:               s.Name,
		Start:              TraceEpoch,
		Duration:           hoursDur(s.DurationHours),
		Seed:               seed,
		SessionsPerHour:    arrival.Rate,
		MaxSessionsPerHour: arrival.MaxRate(),
		Granularity:        time.Duration(s.GranularitySeconds * float64(time.Second)),
		Cohorts:            cohorts,
	}, nil
}

// MustConfig is Config that panics on error; for registry literals & tests.
func (s ScenarioSpec) MustConfig(seed int64) GenConfig {
	cfg, err := s.Config(seed)
	if err != nil {
		panic(err)
	}
	return cfg
}

// ParseScenario decodes a JSON spec, rejecting unknown fields so typos in
// hand-written scenario files fail loudly instead of silently defaulting.
func ParseScenario(data []byte) (ScenarioSpec, error) {
	var s ScenarioSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return ScenarioSpec{}, fmt.Errorf("trace: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ScenarioSpec{}, err
	}
	return s, nil
}

// LoadScenario reads and parses a JSON spec file.
func LoadScenario(path string) (ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("trace: load scenario: %w", err)
	}
	return ParseScenario(data)
}

// ResolveScenario returns the built-in spec of that name, or — when no
// built-in matches — treats the argument as a JSON spec file path.
func ResolveScenario(nameOrPath string) (ScenarioSpec, error) {
	if s, ok := BuiltinScenario(nameOrPath); ok {
		return s, nil
	}
	s, err := LoadScenario(nameOrPath)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("%w (and %q names no built-in scenario; built-ins: %v)",
			err, nameOrPath, BuiltinScenarioNames())
	}
	return s, nil
}

// ---- built-in scenario family -------------------------------------------

// StudentCohort models coursework users: many short workday sessions on
// small GPU slices, most never training (notebooks as calculators).
// Lifetimes are log-normal with a ~2 h median. The campus free tier is
// best-effort: coursework tolerates queueing, so it yields to paying
// classes under saturation.
func StudentCohort(weight float64) CohortSpec {
	return CohortSpec{
		Name:            "student",
		Weight:          weight,
		SLO:             string(SLOBestEffort),
		SessionLifetime: Dist{Kind: "lognormal", Mu: math.Log(2 * 3600), Sigma: 0.9},
		PNeverTrains:    0.6,
		ThinkTime:       Dist{Kind: "lognormal", Mu: math.Log(180), Sigma: 1.0},
		TaskDuration:    Dist{Kind: "lognormal", Mu: math.Log(120), Sigma: 1.1},
		PBurstEnd:       0.25,
		BurstGap:        Dist{Kind: "lognormal", Mu: math.Log(3600), Sigma: 1.0},
		RequestGPUs:     IntDist{Values: []int{1, 2}, Weights: []float64{0.85, 0.15}},
		TaskGPUs:        IntDist{Values: []int{1, 2}, Weights: []float64{0.9, 0.1}},
	}
}

// ResearcherCohort models interactive researchers: Pareto-tailed multi-hour
// sessions (x_m = 3 h, alpha = 1.5 — a minority keeps notebooks alive for
// days), medium GPU demand, intermittent training bursts. Researchers sit
// at the notebook waiting for cells: the interactive class.
func ResearcherCohort(weight float64) CohortSpec {
	return CohortSpec{
		Name:            "researcher",
		Weight:          weight,
		SLO:             string(SLOInteractive),
		SessionLifetime: Dist{Kind: "pareto", Scale: 3 * 3600, Shape: 1.5},
		PNeverTrains:    0.35,
		ThinkTime:       Dist{Kind: "lognormal", Mu: math.Log(300), Sigma: 1.0},
		TaskDuration:    Dist{Kind: "lognormal", Mu: math.Log(600), Sigma: 1.3},
		PBurstEnd:       0.15,
		BurstGap:        Dist{Kind: "lognormal", Mu: math.Log(4 * 3600), Sigma: 1.0},
		RequestGPUs:     IntDist{Values: []int{1, 2, 4}, Weights: []float64{0.45, 0.35, 0.2}},
		TaskGPUs:        IntDist{Values: []int{1, 2, 4}, Weights: []float64{0.55, 0.3, 0.15}},
	}
}

// BatchHeavyCohort models pipeline-style heavy users: few arrivals, large
// reservations, day-scale Pareto lifetimes (x_m = 24 h, alpha = 1.4) and
// Pareto task durations (x_m = 30 min, alpha = 1.6) submitted nearly
// back-to-back — the skew source for shard-balance stress tests. Pipeline
// throughput work is the batch class.
func BatchHeavyCohort(weight float64) CohortSpec {
	return CohortSpec{
		Name:            "batch-heavy",
		Weight:          weight,
		SLO:             string(SLOBatch),
		SessionLifetime: Dist{Kind: "pareto", Scale: 24 * 3600, Shape: 1.4},
		PNeverTrains:    0.05,
		ThinkTime:       Dist{Kind: "exponential", Mean: 60},
		TaskDuration:    Dist{Kind: "pareto", Scale: 1800, Shape: 1.6},
		PBurstEnd:       0.05,
		BurstGap:        Dist{Kind: "exponential", Mean: 2 * 3600},
		RequestGPUs:     IntDist{Values: []int{4, 8}, Weights: []float64{0.55, 0.45}},
		TaskGPUs:        IntDist{Values: []int{2, 4, 8}, Weights: []float64{0.3, 0.45, 0.25}},
	}
}

// CampusDiurnalScenario: three weekdays of campus traffic — thin nights, a
// strong 9-18 peak with a lunch dip — over a student-dominated mix.
func CampusDiurnalScenario() ScenarioSpec {
	return ScenarioSpec{
		Name:               "campus-diurnal",
		Description:        "3-day campus diurnal cycle, student-dominated cohort mix",
		DurationHours:      72,
		GranularitySeconds: 15,
		Arrival: ArrivalSpec{
			BaseSessionsPerHour: 6,
			Diurnal: []RateWindow{
				{StartHour: 0, EndHour: 8, Factor: 0.25},
				{StartHour: 8, EndHour: 12, Factor: 1.9},
				{StartHour: 12, EndHour: 14, Factor: 1.3},
				{StartHour: 14, EndHour: 18, Factor: 1.9},
				{StartHour: 18, EndHour: 24, Factor: 0.65},
			},
		},
		Cohorts: []CohortSpec{
			StudentCohort(0.62),
			ResearcherCohort(0.30),
			BatchHeavyCohort(0.08),
		},
	}
}

// WeeklyMixedScenario: one full week layering the diurnal cycle with a
// weekday/weekend overlay (day 0 is the scenario's Monday), over a
// researcher-dominated mix — the multi-period arrival shape.
func WeeklyMixedScenario() ScenarioSpec {
	return ScenarioSpec{
		Name:               "weekly-mixed",
		Description:        "7-day diurnal x weekday overlay, researcher-dominated cohort mix",
		DurationHours:      168,
		GranularitySeconds: 15,
		Arrival: ArrivalSpec{
			BaseSessionsPerHour: 5,
			Diurnal: []RateWindow{
				{StartHour: 0, EndHour: 8, Factor: 0.3},
				{StartHour: 8, EndHour: 18, Factor: 1.8},
				{StartHour: 18, EndHour: 24, Factor: 0.7},
			},
			Weekday: []float64{1.25, 1.2, 1.15, 1.1, 0.95, 0.45, 0.35},
		},
		Cohorts: []CohortSpec{
			StudentCohort(0.35),
			ResearcherCohort(0.50),
			BatchHeavyCohort(0.15),
		},
	}
}

// FlashCrowdScenario: a flat base rate punctuated by two deadline spikes
// (6x for 3 h, then 9x for 90 min) over a student-heavy mix — the bursty
// arrival shape that stresses autoscaling and the capacity wait-queue.
func FlashCrowdScenario() ScenarioSpec {
	return ScenarioSpec{
		Name:               "flash-crowd",
		Description:        "flat arrivals with 6x and 9x deadline spikes, student-heavy mix",
		DurationHours:      72,
		GranularitySeconds: 15,
		Arrival: ArrivalSpec{
			BaseSessionsPerHour: 4,
			Spikes: []Spike{
				{StartHour: 30, EndHour: 33, Factor: 6},
				{StartHour: 54, EndHour: 55.5, Factor: 9},
			},
		},
		Cohorts: []CohortSpec{
			StudentCohort(0.75),
			ResearcherCohort(0.20),
			BatchHeavyCohort(0.05),
		},
	}
}

// BuiltinScenarios returns the registered scenario family, in listing order.
func BuiltinScenarios() []ScenarioSpec {
	return []ScenarioSpec{
		CampusDiurnalScenario(),
		WeeklyMixedScenario(),
		FlashCrowdScenario(),
	}
}

// BuiltinScenario finds a registered scenario by name.
func BuiltinScenario(name string) (ScenarioSpec, bool) {
	for _, s := range BuiltinScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return ScenarioSpec{}, false
}

// BuiltinScenarioNames lists the registered scenario names.
func BuiltinScenarioNames() []string {
	all := BuiltinScenarios()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
