package trace

import (
	"math"
	"math/rand"
	"time"
)

// Source is a workload the simulator can replay without holding it in
// memory: sessions are emitted lazily, one at a time, in non-decreasing
// Start order. A Source is deterministic — iterating it twice yields the
// identical session sequence — which is what lets sharded runs and CI
// baselines reproduce bit-for-bit.
//
// Two implementations exist: (*Trace).AsSource adapts a materialized trace
// (every current byte preserved), and StreamGen synthesizes one shard of a
// generated workload on the fly so the full trace never exists at once.
type Source interface {
	// Name identifies the workload (trace name or shard-qualified name).
	Name() string
	// Window returns the workload's [start, end) time range.
	Window() (start, end time.Time)
	// Granularity is the source's sampling granularity (zero if none).
	Granularity() time.Duration
	// Sessions iterates the workload's sessions in non-decreasing Start
	// order, stopping early if yield returns false. The yielded *Session
	// is owned by the caller from that point on; the Source retains no
	// reference, so a consumer that drops it after use keeps peak memory
	// proportional to concurrent sessions, not total sessions.
	Sessions(yield func(*Session) bool) error
	// Expect returns sizing expectations for the workload, used for
	// pre-allocation hints and proportional capacity shares. Exact is true
	// when the counts are actual (materialized trace) rather than analytic
	// expectations.
	Expect() Expectation
}

// Expectation summarizes a workload's expected size. For a materialized
// trace the values are exact counts; for a streaming generator they are
// analytic expectations derived from the generator's distributions.
type Expectation struct {
	// Sessions is the (expected) session count.
	Sessions int
	// Tasks is the (expected) total task count.
	Tasks int
	// ReservedGPUHours is the (expected) integral of reserved GPUs over
	// the window: sum over sessions of Request.GPUs x lifetime-hours. This
	// is the Reservation-baseline demand, the same weight Split balances,
	// so capacity shares derived from it match the materialized path.
	ReservedGPUHours float64
	// Exact reports whether the counts are actual rather than expected.
	Exact bool
}

// AsSource adapts the materialized trace to the Source interface. The
// iteration yields the trace's own *Session pointers in trace order
// (Generate and Split both emit sessions in arrival order), so a simulation
// fed through the adapter sees byte-for-byte what it would see scanning
// tr.Sessions directly.
func (tr *Trace) AsSource() Source { return traceSource{tr} }

type traceSource struct{ tr *Trace }

func (s traceSource) Name() string                   { return s.tr.Name }
func (s traceSource) Window() (time.Time, time.Time) { return s.tr.Start, s.tr.End }
func (s traceSource) Granularity() time.Duration     { return s.tr.Granularity }
func (s traceSource) Sessions(yield func(*Session) bool) error {
	for _, sess := range s.tr.Sessions {
		if !yield(sess) {
			return nil
		}
	}
	return nil
}

func (s traceSource) Expect() Expectation {
	var gpuh float64
	for _, sess := range s.tr.Sessions {
		gpuh += float64(sess.Request.GPUs) * sess.Lifetime().Hours()
	}
	return Expectation{
		Sessions:         len(s.tr.Sessions),
		Tasks:            s.tr.NumTasks(),
		ReservedGPUHours: gpuh,
		Exact:            true,
	}
}

// Expect computes analytic size expectations for the workload this config
// generates, divided across the given shard count (shards <= 1 means the
// whole workload). It replaces the trace scans the simulator used for
// pre-size hints and sharded capacity shares: because each quantity is an
// expectation under the generator's own distributions, it converges on the
// materialized trace's measured value as the session count grows, without
// ever generating a session.
//
// The derivation mirrors Generate step for step:
//
//   - Arrivals: the expected session count is the integral of the Poisson
//     intensity SessionsPerHour over the window (midpoint rule — exact for
//     the piecewise-linear ramps the built-in configs use, up to
//     discretization at the breakpoints).
//   - Lifetimes: genSession clamps session ends to the trace end, so a
//     session arriving at elapsed time t lives E[min(L, window-t)], not
//     E[L] — for heavy-tailed lifetimes comparable to the window the
//     difference is large (2x on the built-in excerpt). The clamped mean is
//     taken against a deterministic quantile grid of the lifetime sampler,
//     weighted by the arrival intensity at each t.
//   - Reserved GPU-hours: arrivals x E[clamped lifetime-hours] x E[request
//     GPUs]; lifetime and GPU request are drawn independently in genSession.
//   - Tasks: only sessions with a nonzero GPU request that pass the
//     PNeverTrains coin train. A training session submits roughly
//     lifetime / E[cycle] tasks, where a cycle is one task plus the think
//     time or burst gap that follows it (burst parameters blended across
//     the heavy/light split). Under ConcurrentSubmission the task duration
//     does not advance the clock, so it drops out of the cycle.
func (c GenConfig) Expect(shards int) Expectation {
	if shards < 1 {
		shards = 1
	}
	// A multi-cohort workload is a probability-weighted mixture of session
	// populations on one shared arrival process, so every per-session
	// expectation blends linearly across the classes. A single-population
	// config is the one-class mixture — same arithmetic, weight 1.
	type class struct {
		w            float64 // probability of the class, sums to 1
		shape        sessionShape
		lifeGrid     []float64
		lifeWeighted float64
	}
	var classes []class
	if len(c.Cohorts) == 0 {
		classes = []class{{w: 1, shape: c.baseShape()}}
	} else {
		var total float64
		for _, co := range c.Cohorts {
			total += co.Weight
		}
		for _, co := range c.Cohorts {
			classes = append(classes, class{w: co.Weight / total, shape: co.shape()})
		}
	}
	for k := range classes {
		classes[k].lifeGrid = samplerGrid(classes[k].shape.lifetime, 256)
	}

	const steps = 1024
	var lambda float64
	for i := 0; i < steps; i++ {
		at := time.Duration((float64(i) + 0.5) / steps * float64(c.Duration))
		rate := c.SessionsPerHour(at)
		lambda += rate
		w := (c.Duration - at).Seconds()
		for k := range classes {
			var m float64
			for _, v := range classes[k].lifeGrid {
				if v > w {
					v = w
				}
				m += v
			}
			classes[k].lifeWeighted += rate * m / float64(len(classes[k].lifeGrid))
		}
	}
	stepH := c.Duration.Hours() / steps
	sessions := lambda * stepH / float64(shards)

	var reserved, tasks float64
	for k := range classes {
		cl := &classes[k]
		sh := cl.shape
		meanLife := 0.0 // arrival-weighted E[min(L, window remaining)], seconds
		if lambda > 0 {
			meanLife = cl.lifeWeighted / lambda
		}
		reserved += cl.w * sessions * (meanLife / 3600) * sh.reqGPUs.Mean()

		pNever := math.Min(math.Max(sh.pNever, 0), 1)
		pTrain := (1 - sh.reqGPUs.Prob(0)) * (1 - pNever)

		meanThink := SamplerMean(sh.think)
		meanDur := SamplerMean(sh.taskDur)
		cycle := func(pEnd, gap float64) float64 {
			cy := pEnd*gap + (1-pEnd)*meanThink
			if !c.ConcurrentSubmission {
				cy += meanDur
			}
			return math.Max(cy, 1)
		}
		// Blend per-class task RATES, not cycle lengths: heavy sessions'
		// short cycles dominate the task count, and E[1/cycle] != 1/E[cycle].
		rate := 1 / cycle(sh.pBurstEnd, SamplerMean(sh.burstGap))
		if sh.pHeavy > 0 {
			hEnd := sh.pBurstEnd
			if sh.heavyPBurstEnd > 0 {
				hEnd = sh.heavyPBurstEnd
			}
			hGap := SamplerMean(sh.burstGap)
			if sh.heavyBurstGap != nil {
				hGap = SamplerMean(sh.heavyBurstGap)
			}
			p := math.Min(sh.pHeavy, 1)
			rate = (1-p)*rate + p/cycle(hEnd, hGap)
		}
		tasks += cl.w * sessions * pTrain * meanLife * rate
	}

	return Expectation{
		Sessions:         int(math.Ceil(sessions)),
		Tasks:            int(math.Ceil(tasks)),
		ReservedGPUHours: reserved,
	}
}

// samplerGrid returns n deterministic representative draws of s: an
// inverse-CDF midpoint grid for the samplers with a closed (or tabulated)
// quantile function, a fixed-seed Monte Carlo draw otherwise. Deterministic
// so the expectations — and the capacity plans built from them — are a pure
// function of the config.
func samplerGrid(s Sampler, n int) []float64 {
	out := make([]float64, n)
	p := func(i int) float64 { return (float64(i) + 0.5) / float64(n) }
	switch v := s.(type) {
	case Fixed:
		for i := range out {
			out[i] = float64(v)
		}
	case *Quantile:
		for i := range out {
			out[i] = v.Value(p(i))
		}
	case Uniform:
		for i := range out {
			out[i] = v.Lo + p(i)*(v.Hi-v.Lo)
		}
	case Exponential:
		for i := range out {
			out[i] = -v.MeanVal * math.Log(1-p(i))
		}
	case LogNormal:
		for i := range out {
			out[i] = v.Value(p(i))
		}
	case Pareto:
		for i := range out {
			out[i] = v.Value(p(i))
		}
	default:
		r := rand.New(rand.NewSource(1))
		for i := range out {
			out[i] = s.Sample(r)
		}
	}
	return out
}
