package trace

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func fmtSessionID(name string, id int) string {
	return fmt.Sprintf("%s-s%05d", name, id)
}

// collect drains a Source into a slice.
func collect(t *testing.T, src Source) []*Session {
	t.Helper()
	var out []*Session
	if err := src.Sessions(func(s *Session) bool {
		out = append(out, s)
		return true
	}); err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	return out
}

func sameSession(a, b *Session) bool {
	if a.ID != b.ID || a.Cohort != b.Cohort || !a.Start.Equal(b.Start) || !a.End.Equal(b.End) ||
		a.Request != b.Request || len(a.Tasks) != len(b.Tasks) {
		return false
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			return false
		}
	}
	return true
}

// TestStreamGenK1ByteIdentical pins the streaming path against the
// materialized one: StreamGen(cfg, 0, 1) must produce exactly the sessions
// Generate(cfg) produces — same IDs, times, requests, and tasks — for every
// built-in config shape (quantized IDLT, heavy-split, concurrent BDLT).
func TestStreamGenK1ByteIdentical(t *testing.T) {
	for _, cfg := range []GenConfig{
		AdobeExcerptConfig(7),
		PhillyConfig(11),
		AlibabaConfig(13),
		quickSummer(17),
	} {
		tr := MustGenerate(cfg)
		g, err := NewStreamGen(cfg, 0, 1)
		if err != nil {
			t.Fatalf("%s: NewStreamGen: %v", cfg.Name, err)
		}
		got := collect(t, g)
		if len(got) != len(tr.Sessions) {
			t.Fatalf("%s: stream yielded %d sessions, Generate %d", cfg.Name, len(got), len(tr.Sessions))
		}
		for i := range got {
			if !sameSession(got[i], tr.Sessions[i]) {
				t.Fatalf("%s: session %d differs: stream %+v vs materialized %+v",
					cfg.Name, i, got[i], tr.Sessions[i])
			}
		}
		if g.Name() != tr.Name {
			t.Errorf("%s: stream name %q != trace name %q", cfg.Name, g.Name(), tr.Name)
		}
		ws, we := g.Window()
		if !ws.Equal(tr.Start) || !we.Equal(tr.End) {
			t.Errorf("%s: stream window [%v,%v) != trace [%v,%v)", cfg.Name, ws, we, tr.Start, tr.End)
		}
	}
}

// quickSummer is a shortened AdobeSummerConfig so the heavy-split ramp shape
// is covered without generating 92 days.
func quickSummer(seed int64) GenConfig {
	cfg := AdobeSummerConfig(seed)
	cfg.Duration = 5 * 24 * time.Hour
	return cfg
}

// scaled multiplies the arrival intensity by f: the statistical tests need
// thousands of sessions so Poisson noise sits well inside the tolerances,
// without generating weeks of trace.
func scaled(cfg GenConfig, f float64) GenConfig {
	base := cfg.SessionsPerHour
	cfg.SessionsPerHour = func(e time.Duration) float64 { return f * base(e) }
	cfg.MaxSessionsPerHour *= f
	return cfg
}

// TestTraceAsSource pins the materialized adapter: same sessions in order,
// exact expectations.
func TestTraceAsSource(t *testing.T) {
	tr := MustGenerate(AdobeExcerptConfig(42))
	src := tr.AsSource()
	got := collect(t, src)
	if len(got) != len(tr.Sessions) {
		t.Fatalf("adapter yielded %d sessions, trace has %d", len(got), len(tr.Sessions))
	}
	for i := range got {
		if got[i] != tr.Sessions[i] { // identical pointers
			t.Fatalf("adapter session %d is not the trace's own pointer", i)
		}
	}
	exp := src.Expect()
	if !exp.Exact {
		t.Error("trace adapter expectation not marked Exact")
	}
	if exp.Sessions != len(tr.Sessions) || exp.Tasks != tr.NumTasks() {
		t.Errorf("expect counts %d/%d, want %d/%d", exp.Sessions, exp.Tasks, len(tr.Sessions), tr.NumTasks())
	}
	var gpuh float64
	for _, s := range tr.Sessions {
		gpuh += float64(s.Request.GPUs) * s.Lifetime().Hours()
	}
	if math.Abs(exp.ReservedGPUHours-gpuh) > 1e-6 {
		t.Errorf("expect reserved %v, want %v", exp.ReservedGPUHours, gpuh)
	}
}

// TestStreamSplitUnionConsistent checks exact Poisson splitting: the union
// of k shard streams must be statistically consistent with the whole
// workload — session count, task count, and reserved GPU-hours within a few
// percent — and every shard must carry roughly 1/k of the load. The union
// is not byte-identical to Generate (different draws by design); this test
// bounds the drift that IS expected.
func TestStreamSplitUnionConsistent(t *testing.T) {
	cfg := scaled(quickSummer(42), 25)
	const k = 4
	gens, err := StreamSplit(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	var uSessions, uTasks int
	var uGPUh float64
	perShard := make([]int, k)
	for i, g := range gens {
		for _, s := range collect(t, g) {
			uSessions++
			uTasks += len(s.Tasks)
			uGPUh += float64(s.Request.GPUs) * s.Lifetime().Hours()
			perShard[i]++
		}
	}
	tr := MustGenerate(cfg)
	var mGPUh float64
	for _, s := range tr.Sessions {
		mGPUh += float64(s.Request.GPUs) * s.Lifetime().Hours()
	}

	relTol := func(got, want, tol float64, what string) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: zero baseline", what)
		}
		if d := math.Abs(got-want) / want; d > tol {
			t.Errorf("%s: union %v vs materialized %v (drift %.1f%% > %.0f%%)",
				what, got, want, 100*d, 100*tol)
		}
	}
	relTol(float64(uSessions), float64(len(tr.Sessions)), 0.05, "sessions")
	relTol(float64(uTasks), float64(tr.NumTasks()), 0.10, "tasks")
	relTol(uGPUh, mGPUh, 0.10, "reserved GPU-hours")
	for i, n := range perShard {
		relTol(float64(n), float64(uSessions)/k, 0.10, "shard "+string(rune('0'+i))+" count")
	}

	// Shard prefixes must be disjoint so merged metrics never alias IDs.
	if gens[0].Name() == gens[1].Name() {
		t.Error("shard names collide")
	}
}

// TestStreamGenDeterministic re-iterates one shard source and requires the
// identical session sequence — the property every consumer (double runs,
// CI baselines) leans on.
func TestStreamGenDeterministic(t *testing.T) {
	g, err := NewStreamGen(quickSummer(42), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := collect(t, g), collect(t, g)
	if len(a) != len(b) {
		t.Fatalf("re-iteration yielded %d vs %d sessions", len(a), len(b))
	}
	for i := range a {
		if !sameSession(a[i], b[i]) {
			t.Fatalf("session %d differs across iterations", i)
		}
	}
}

// TestExpectMatchesGenerate bounds the analytic Expect against a real
// generated trace: the expectations drive pre-size hints and capacity
// shares, so they must land in the right ballpark (sessions tight — pure
// Poisson mean; tasks and GPU-hours are distribution blends, looser).
func TestExpectMatchesGenerate(t *testing.T) {
	for _, cfg := range []GenConfig{
		scaled(AdobeExcerptConfig(42), 25),
		scaled(quickSummer(42), 25),
	} {
		tr := MustGenerate(cfg)
		exp := cfg.Expect(1)
		if exp.Exact {
			t.Errorf("%s: analytic expectation marked Exact", cfg.Name)
		}
		check := func(got, want, tol float64, what string) {
			t.Helper()
			if want == 0 {
				return
			}
			if d := math.Abs(got-want) / want; d > tol {
				t.Errorf("%s %s: expect %v vs generated %v (drift %.1f%% > %.0f%%)",
					cfg.Name, what, got, want, 100*d, 100*tol)
			}
		}
		check(float64(exp.Sessions), float64(len(tr.Sessions)), 0.10, "sessions")
		check(float64(exp.Tasks), float64(tr.NumTasks()), 0.50, "tasks")
		var gpuh float64
		for _, s := range tr.Sessions {
			gpuh += float64(s.Request.GPUs) * s.Lifetime().Hours()
		}
		check(exp.ReservedGPUHours, gpuh, 0.25, "reserved GPU-hours")

		// Dividing across shards must conserve totals.
		e4 := cfg.Expect(4)
		if got := 4 * e4.ReservedGPUHours; math.Abs(got-exp.ReservedGPUHours) > 1e-6*exp.ReservedGPUHours+1e-9 {
			t.Errorf("%s: 4x shard expectation %v != whole %v", cfg.Name, got, exp.ReservedGPUHours)
		}
	}
}

// TestSessionIDFormat pins the strconv builder against the fmt format it
// replaced.
func TestSessionIDFormat(t *testing.T) {
	for _, id := range []int{1, 9, 10, 99, 12345, 99999, 100000, 1234567} {
		got := sessionID("adobe", id)
		want := fmtSessionID("adobe", id)
		if got != want {
			t.Errorf("sessionID(%d) = %q, want %q", id, got, want)
		}
	}
}
