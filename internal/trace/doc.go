// Package trace models IDLT workload traces and generates synthetic
// equivalents of the three traces the paper analyzes (§2.3): the Adobe
// research cluster trace (AdobeTrace), the Microsoft Philly trace, and the
// Alibaba GPU Cluster 2020 trace.
//
// The proprietary AdobeTrace is not publicly available, so this package
// substitutes inverse-CDF samplers whose quantile knots are pinned to the
// percentiles the paper publishes (e.g. task-duration p50 = 120 s,
// p75 = 300 s, p90 = 17 min; per-session IAT p50 = 300 s, p75 = 480 s,
// minimum 240 s). Every scheduling-relevant distribution the evaluation
// depends on is therefore reproduced by construction; see DESIGN.md §2.
//
// For long traces, (*Trace).Split partitions the session set into
// session-partitioned Shards — each session and its entire task chain
// stays whole within one shard, shards keep the parent's full time
// window, and assignment is a deterministic greedy balance on reserved
// GPU-hours — so sim.RunSharded can replay one worker simulation per
// shard in parallel and merge the results. ProportionalShares carries
// the documented largest-remainder rounding rules for splitting integer
// capacity (hosts) across shard weights; under sim's lease pool that
// split is only the initial lease grant — shards then trade host leases
// at epoch barriers against a shared capacity ledger (docs/SHARDING.md),
// while the legacy static split keeps the shares for the whole run.
//
// Beyond the paper's fixed traces, the scenario lab (scenario.go) defines
// a declarative synthetic workload family: a ScenarioSpec composes an
// arrival process from diurnal windows, a weekly overlay, and flash-crowd
// spikes, over weighted user cohorts with their own — optionally
// heavy-tailed (Pareto, log-normal) — distributions, all as plain JSON
// data. A spec compiles to an ordinary GenConfig, so Generate, the
// streaming StreamGen/StreamSplit path, and the analytic Expect all
// consume it unchanged, and the generators are pinned by statistical
// tests against the spec's own analytic forms (ArrivalSpec.
// ExpectedArrivals, the samplers' closed-form quantiles).
//
// Cohorts optionally carry an SLOClass ("interactive", "batch",
// "best-effort" — each a scheduling weight plus a max-queue-delay
// target) stamped onto their generated Sessions; stamping consumes no
// randomness, so classing a workload never perturbs it. The federated
// simulator's SLO-aware wait-queue (sim.FedConfig.SLOAware) is the
// consumer.
//
// FaultSpec (faults.go) is the workload's chaos counterpart: a
// declarative, JSON-serializable fault schedule — per-host exponential
// crash/recover churn, correlated outage windows, degraded-network
// episodes, and checkpoint-restore retry economics with SLO-class
// budgets. Its streams are pure functions of (spec, seed, slot), keyed
// through a dedicated splitmix64 salt so they never touch workload
// randomness; a ScenarioSpec can embed one, and the simulators thread it
// in as sim.Config.Faults (docs/FAULTS.md).
package trace
