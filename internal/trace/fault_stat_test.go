package trace

import (
	"math"
	"testing"
)

// These tests pin the statistical contract of the fault stream the same
// way scenario_stat_test.go pins the workload generators: the realized
// crash/recover pairs must follow the declared exponential model, not
// merely be deterministic. Fixed seeds make each a reproducible pinned
// property; the 4-sigma bounds pass at essentially any seed for a correct
// stream and fail by a wide margin for a mis-scaled mean.

// TestHostFaultDeterministicPerSlot: HostFault is a pure function of
// (spec, seed, slot) — the replay guarantee the lease pool's capacity
// ledger rests on — and distinct slots decorrelate.
func TestHostFaultDeterministicPerSlot(t *testing.T) {
	f := FaultSpec{HostMTBFHours: 24, HostMTTRHours: 1}
	u1, d1 := f.HostFault(7, 12)
	u2, d2 := f.HostFault(7, 12)
	if u1 != u2 || d1 != d2 {
		t.Fatalf("same (seed, slot) must replay identically: (%v,%v) vs (%v,%v)", u1, d1, u2, d2)
	}
	u3, _ := f.HostFault(7, 13)
	if u1 == u3 {
		t.Error("adjacent slots must draw different uptimes")
	}
	u4, _ := f.HostFault(8, 12)
	if u1 == u4 {
		t.Error("different seeds must draw different uptimes")
	}
	if u, d := (&FaultSpec{}).HostFault(7, 12); u != 0 || d != 0 {
		t.Error("disabled churn must return (0, 0)")
	}
}

// TestHostFaultMeansMatchSpec: across many slots the empirical uptime and
// downtime means match HostMTBFHours and HostMTTRHours. Exponential means
// have SE = mean/sqrt(n).
func TestHostFaultMeansMatchSpec(t *testing.T) {
	f := FaultSpec{HostMTBFHours: 36, HostMTTRHours: 1.5}
	const n = 20000
	var upSum, downSum float64
	for slot := uint64(1); slot <= n; slot++ {
		up, down := f.HostFault(11, slot)
		upSum += up.Hours()
		downSum += down.Hours()
	}
	if z := (upSum/n - f.HostMTBFHours) / (f.HostMTBFHours / math.Sqrt(n)); math.Abs(z) > 4 {
		t.Errorf("uptime mean %.2fh vs MTBF %.2fh (z=%.1f)", upSum/n, f.HostMTBFHours, z)
	}
	if z := (downSum/n - f.HostMTTRHours) / (f.HostMTTRHours / math.Sqrt(n)); math.Abs(z) > 4 {
		t.Errorf("downtime mean %.2fh vs MTTR %.2fh (z=%.1f)", downSum/n, f.HostMTTRHours, z)
	}
}

// TestHostFaultDowntimeFraction: host slots form an alternating renewal
// process, so the long-run down fraction over many cycles must match the
// analytic MTTR/(MTBF+MTTR). For the ratio-of-sums estimator over n
// exponential cycles the delta method gives SE = sqrt(2)*R*(1-R)/sqrt(n).
func TestHostFaultDowntimeFraction(t *testing.T) {
	f := FaultSpec{HostMTBFHours: 24, HostMTTRHours: 2}
	const n = 20000
	var upSum, downSum float64
	for slot := uint64(1); slot <= n; slot++ {
		up, down := f.HostFault(13, slot)
		upSum += up.Hours()
		downSum += down.Hours()
	}
	analytic := f.HostMTTRHours / (f.HostMTBFHours + f.HostMTTRHours)
	got := downSum / (upSum + downSum)
	se := math.Sqrt2 * analytic * (1 - analytic) / math.Sqrt(n)
	if z := (got - analytic) / se; math.Abs(z) > 4 {
		t.Errorf("down fraction %.5f vs analytic %.5f (z=%.1f)", got, analytic, z)
	}
}

// TestOutageHitCountBinomial: the per-host kill draws of an outage window
// hit HostFraction of a large fleet to binomial accuracy, and distinct
// outage indexes select decorrelated victim sets.
func TestOutageHitCountBinomial(t *testing.T) {
	f := FaultSpec{Outages: []OutageSpec{
		{StartHour: 4, DurationHours: 1, HostFraction: 0.3},
		{StartHour: 9, DurationHours: 1, HostFraction: 0.3},
	}}
	const hosts = 5000
	victims := make([][]bool, len(f.Outages))
	for i, o := range f.Outages {
		r := f.OutageRNG(17, i)
		victims[i] = make([]bool, hosts)
		hits := 0
		for hIdx := 0; hIdx < hosts; hIdx++ {
			if r.Float64() < o.HostFraction {
				victims[i][hIdx] = true
				hits++
			}
		}
		p := o.HostFraction
		z := (float64(hits) - p*hosts) / math.Sqrt(hosts*p*(1-p))
		if math.Abs(z) > 4 {
			t.Errorf("outage %d: %d/%d victims vs p=%.2f (z=%.1f)", i, hits, hosts, p, z)
		}
	}
	// Independence across outage indexes: overlap of the two victim sets
	// tracks p^2 to binomial accuracy.
	both := 0
	for hIdx := 0; hIdx < hosts; hIdx++ {
		if victims[0][hIdx] && victims[1][hIdx] {
			both++
		}
	}
	p2 := f.Outages[0].HostFraction * f.Outages[1].HostFraction
	if z := (float64(both) - p2*hosts) / math.Sqrt(hosts*p2*(1-p2)); math.Abs(z) > 4 {
		t.Errorf("outage victim sets correlated: overlap %d vs expected %.1f (z=%.1f)", both, p2*hosts, z)
	}
}

// TestRetryBudgetOrdering pins the SLO-class budget shape: interactive
// abandons fastest, best-effort retries longest, and the interactive
// budget never reaches zero.
func TestRetryBudgetOrdering(t *testing.T) {
	for _, retries := range []int{0, 1, 3, 9} {
		f := FaultSpec{MaxRetries: retries}
		i := f.RetryBudget(SLOInteractive)
		b := f.RetryBudget(SLOBatch)
		e := f.RetryBudget(SLOBestEffort)
		if !(i <= b && b <= e) {
			t.Errorf("MaxRetries=%d: budgets must order interactive<=batch<=best-effort, got %d/%d/%d",
				retries, i, b, e)
		}
		if i < 1 {
			t.Errorf("MaxRetries=%d: interactive budget must stay >= 1, got %d", retries, i)
		}
		if unclassified := f.RetryBudget(""); unclassified != b {
			t.Errorf("MaxRetries=%d: unclassified must fold into batch, got %d vs %d", retries, unclassified, b)
		}
	}
}
