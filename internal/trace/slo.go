package trace

import (
	"fmt"
	"time"
)

// SLOClass is a session's service-level objective class: the scheduling
// priority its tasks carry when they contend for saturated capacity, plus
// the queue-delay target the class is held to in reports. The zero value
// means "unclassified" and schedules as SLOBatch — pre-SLO traces replay
// under exactly the middle class's behavior.
type SLOClass string

// The SLO classes, from most to least latency-sensitive.
const (
	// SLOInteractive marks sessions a human is waiting on: highest queue
	// weight, tightest queue-delay target.
	SLOInteractive SLOClass = "interactive"
	// SLOBatch marks throughput-oriented work with a relaxed delay target
	// — and is what unclassified sessions schedule as.
	SLOBatch SLOClass = "batch"
	// SLOBestEffort marks preemptible filler load: lowest weight, hours-
	// scale delay target; the priority wait-queue's aging bound is what
	// keeps it from starving outright.
	SLOBestEffort SLOClass = "best-effort"
)

// SLOClasses returns every class in a fixed report order (most to least
// latency-sensitive) — the iteration order result maps and ledgers use so
// output is deterministic.
func SLOClasses() []SLOClass {
	return []SLOClass{SLOInteractive, SLOBatch, SLOBestEffort}
}

// Valid reports whether the class is one of the three classes or the
// unclassified zero value.
func (c SLOClass) Valid() bool {
	switch c {
	case SLOInteractive, SLOBatch, SLOBestEffort, "":
		return true
	}
	return false
}

// OrDefault resolves the unclassified zero value to SLOBatch.
func (c SLOClass) OrDefault() SLOClass {
	if c == "" {
		return SLOBatch
	}
	return c
}

// Weight is the class's capacity wait-queue weight: a parked task's
// effective priority grows as waited×Weight, so an interactive task
// outranks a best-effort task that has waited less than 4× as long.
func (c SLOClass) Weight() int {
	switch c.OrDefault() {
	case SLOInteractive:
		return 4
	case SLOBestEffort:
		return 1
	default:
		return 2
	}
}

// MaxQueueDelay is the class's queue-delay target — the per-class bound
// experiment reports and SLO-attainment checks compare delay percentiles
// against. It is a reporting target, not an admission deadline: the
// scheduler never drops work for exceeding it.
func (c SLOClass) MaxQueueDelay() time.Duration {
	switch c.OrDefault() {
	case SLOInteractive:
		return 30 * time.Second
	case SLOBestEffort:
		return 2 * time.Hour
	default:
		return 10 * time.Minute
	}
}

// ParseSLOClass validates a declarative class name ("" is the valid
// unclassified value).
func ParseSLOClass(s string) (SLOClass, error) {
	c := SLOClass(s)
	if !c.Valid() {
		return "", fmt.Errorf("trace: unknown SLO class %q (want %v or empty)", s, SLOClasses())
	}
	return c, nil
}
