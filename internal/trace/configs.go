package trace

import (
	"time"
)

// TraceEpoch is the nominal start of the Adobe summer trace window
// (June 1, per §2.3: "a representative subset spanning June 1–August 31").
var TraceEpoch = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

// AdobeGranularity is the sample granularity of AdobeTrace (§2.3).
const AdobeGranularity = 15 * time.Second

// adobeDuration pins the task-duration quantiles published in §2.3.1:
// p50 = 120 s, p75 = 300 s (5 min), p90 = 1,020 s (17 min),
// p95 = 2,160 s (36 min), p99 = 10,920 s (182 min). The floor is the 15 s
// trace granularity; the ceiling is a 24 h assumption for the extreme tail.
func adobeDuration() *Quantile {
	return MustQuantile(
		Knot{0, 15},
		Knot{0.50, 120},
		Knot{0.75, 300},
		Knot{0.90, 1020},
		Knot{0.95, 2160},
		Knot{0.99, 10920},
		Knot{1, 86400},
	)
}

// adobeThink pins within-burst think times so that submission IATs
// (think + preceding task duration) reproduce §2.3.2: IAT p50 = 300 s,
// p75 = 480 s, minimum observed event IAT 240 s (§5.4).
func adobeThink() *Quantile {
	return MustQuantile(
		Knot{0, 120},
		Knot{0.50, 180},
		Knot{0.75, 300},
		Knot{0.90, 700},
		Knot{0.99, 3600},
		Knot{1, 14400},
	)
}

// phillyDuration approximates PhillyTrace task durations: the paper gives
// p50 = 621 s (§2.3.1); the long BDLT tail (multi-hour to multi-day jobs)
// follows Jeon et al. (ATC '19).
func phillyDuration() *Quantile {
	return MustQuantile(
		Knot{0, 30},
		Knot{0.50, 621},
		Knot{0.75, 4200},
		Knot{0.90, 21600},
		Knot{0.99, 259200},
		Knot{1, 864000},
	)
}

// phillyIAT approximates PhillyTrace per-session IATs: p50 = 44 s (§2.3.2).
func phillyIAT() *Quantile {
	return MustQuantile(
		Knot{0, 1},
		Knot{0.50, 44},
		Knot{0.75, 180},
		Knot{0.90, 900},
		Knot{0.99, 14400},
		Knot{1, 86400},
	)
}

// alibabaDuration approximates AlibabaTrace durations: p50 = 957 s.
func alibabaDuration() *Quantile {
	return MustQuantile(
		Knot{0, 10},
		Knot{0.50, 957},
		Knot{0.75, 5400},
		Knot{0.90, 28800},
		Knot{0.99, 345600},
		Knot{1, 1209600},
	)
}

// alibabaIAT approximates AlibabaTrace per-session IATs: p50 = 38 s.
func alibabaIAT() *Quantile {
	return MustQuantile(
		Knot{0, 1},
		Knot{0.50, 38},
		Knot{0.75, 150},
		Knot{0.90, 720},
		Knot{0.99, 10800},
		Knot{1, 43200},
	)
}

// adobeRequestGPUs skews reservations toward whole and half servers, as on
// the p3.16xlarge-based Adobe research cluster (§2.4).
func adobeRequestGPUs() *IntWeights {
	return MustIntWeights(
		[]int{1, 2, 4, 8},
		[]float64{0.30, 0.25, 0.25, 0.20},
	)
}

// adobeTaskGPUs skews per-task usage below the reservation: most IDLT
// debugging tasks exercise a subset of the reserved GPUs.
func adobeTaskGPUs() *IntWeights {
	return MustIntWeights(
		[]int{1, 2, 4, 8},
		[]float64{0.45, 0.30, 0.17, 0.08},
	)
}

// AdobeSummerConfig generates the 90-day (June–August) AdobeTrace
// equivalent used by the simulation study (Figs. 2, 12, 13, 14, 20).
//
// Session arrivals ramp so that month-end active session counts track
// Fig. 20 (≈206 / 312 / 397 at the ends of June / July / August, max 433):
// long-lived sessions (users leave notebooks running, §2.4-C1) accumulate
// against slow churn. Bursty task submission (about an hour of activity,
// then a many-hour gap) reproduces Fig. 2(c): most sessions use their GPUs
// for at most a few percent of their lifetime.
func AdobeSummerConfig(seed int64) GenConfig {
	return GenConfig{
		Name:     "adobe-summer",
		Start:    TraceEpoch,
		Duration: 92 * 24 * time.Hour,
		Seed:     seed,
		SessionsPerHour: func(elapsed time.Duration) float64 {
			// Linear ramp 0.9 -> 1.8 sessions/hour over the summer.
			frac := elapsed.Hours() / (92 * 24)
			return 0.9 + 0.9*frac
		},
		MaxSessionsPerHour: 1.8,
		// Lifetimes: median ~6 days, heavy tail of weeks-long notebooks.
		SessionLifetime: MustQuantile(
			Knot{0, 3600},
			Knot{0.25, 2 * 86400},
			Knot{0.50, 6 * 86400},
			Knot{0.75, 14 * 86400},
			Knot{0.95, 35 * 86400},
			Knot{1, 70 * 86400},
		),
		PNeverTrains: 0.55,
		ThinkTime:    adobeThink(),
		TaskDuration: adobeDuration(),
		// Light users: short rare bursts with day-scale gaps.
		PBurstEnd: 0.30,
		BurstGap: MustQuantile(
			Knot{0, 3600},
			Knot{0.50, 24 * 3600},
			Knot{0.75, 2 * 86400},
			Knot{0.95, 6 * 86400},
			Knot{1, 14 * 86400},
		),
		// Heavy users (most of the training population) run long
		// near-continuous campaigns: they produce the bulk of Fig. 20's
		// concurrent trainings while light users reproduce Fig. 2(c)'s
		// low per-session activity.
		PHeavy:         0.8,
		HeavyPBurstEnd: 0.015,
		HeavyBurstGap: MustQuantile(
			Knot{0, 900},
			Knot{0.50, 5400},
			Knot{0.90, 6 * 3600},
			Knot{1, 24 * 3600},
		),
		RequestGPUs: adobeRequestGPUs(),
		TaskGPUs:    adobeTaskGPUs(),
		Granularity: AdobeGranularity,
	}
}

// AdobeExcerptConfig generates the 17.5-hour busy-window excerpt used by
// the prototype evaluation (§5.2, Figs. 7–10): sessions ramp from 0 to ~87
// with a peak of ~90, while the mean number of concurrently active
// trainings is ~19.5 with a peak of ~34. The excerpt is a concentrated
// active period, so sessions train with far higher duty than the summer
// average — exactly why it stresses the schedulers.
func AdobeExcerptConfig(seed int64) GenConfig {
	return GenConfig{
		Name:     "adobe-17p5h",
		Start:    TraceEpoch,
		Duration: 17*time.Hour + 30*time.Minute,
		Seed:     seed,
		SessionsPerHour: func(elapsed time.Duration) float64 {
			// Fast initial onboarding that tapers: approaches ~90 total.
			if elapsed < 3*time.Hour {
				return 9
			}
			if elapsed < 10*time.Hour {
				return 5.5
			}
			return 3.5
		},
		MaxSessionsPerHour: 9,
		// Sessions outlive the excerpt: the paper's excerpt ends with 87
		// still-active sessions.
		SessionLifetime: Fixed(48 * 3600),
		PNeverTrains:    0.26,
		ThinkTime:       adobeThink(),
		TaskDuration:    adobeDuration(),
		PBurstEnd:       0.045,
		BurstGap: MustQuantile(
			Knot{0, 1800},
			Knot{0.50, 2 * 3600},
			Knot{0.95, 6 * 3600},
			Knot{1, 12 * 3600},
		),
		RequestGPUs: adobeRequestGPUs(),
		TaskGPUs:    adobeTaskGPUs(),
		Granularity: AdobeGranularity,
	}
}

// MillionSessionConfig parameterizes the 90-day million-session scale
// canary: ~463 arrivals/hour for 2160 hours ≈ 1.0 M sessions. It is an
// Adobe-shaped population compressed for scale testing — shorter lifetimes
// (median 6 h) keep steady-state concurrency near rate × E[lifetime] ≈ 5-6 k
// live sessions, and a high PNeverTrains with rare, widely-spaced bursts
// keeps the task total near 10^5, so the canary exercises million-session
// *arrival* volume without a million-task simulation bill. The config is
// only ever simulated through trace.StreamGen (materializing it would
// allocate the gigabytes the streaming path exists to avoid); think times
// bottom out above the autoscale and sampling tick intervals, preserving
// the streaming path's event-order equivalence argument.
func MillionSessionConfig(seed int64) GenConfig {
	return GenConfig{
		Name:               "million-90d",
		Start:              TraceEpoch,
		Duration:           90 * 24 * time.Hour,
		Seed:               seed,
		SessionsPerHour:    func(time.Duration) float64 { return 463 },
		MaxSessionsPerHour: 463,
		SessionLifetime: MustQuantile(
			Knot{0, 900},
			Knot{0.50, 6 * 3600},
			Knot{0.75, 12 * 3600},
			Knot{0.95, 48 * 3600},
			Knot{1, 96 * 3600},
		),
		PNeverTrains: 0.9,
		ThinkTime:    adobeThink(),
		TaskDuration: adobeDuration(),
		PBurstEnd:    0.5,
		BurstGap: MustQuantile(
			Knot{0, 3600},
			Knot{0.50, 24 * 3600},
			Knot{1, 4 * 86400},
		),
		RequestGPUs: adobeRequestGPUs(),
		TaskGPUs:    adobeTaskGPUs(),
		Granularity: AdobeGranularity,
	}
}

// PhillyConfig generates a PhillyTrace-like BDLT workload, used only for
// the Fig. 2 workload-characterisation contrast.
func PhillyConfig(seed int64) GenConfig {
	return GenConfig{
		Name:               "philly",
		Start:              TraceEpoch,
		Duration:           30 * 24 * time.Hour,
		Seed:               seed,
		SessionsPerHour:    func(time.Duration) float64 { return 2 },
		MaxSessionsPerHour: 2,
		SessionLifetime: MustQuantile(
			Knot{0, 3600},
			Knot{0.50, 2 * 86400},
			Knot{0.95, 20 * 86400},
			Knot{1, 40 * 86400},
		),
		PNeverTrains: 0.02,
		ThinkTime:    phillyIAT(),
		TaskDuration: phillyDuration(),
		PBurstEnd:    0.05,
		BurstGap: MustQuantile(
			Knot{0, 600},
			Knot{0.50, 4 * 3600},
			Knot{1, 2 * 86400},
		),
		RequestGPUs:          MustIntWeights([]int{1, 2, 4, 8}, []float64{0.5, 0.2, 0.2, 0.1}),
		TaskGPUs:             MustIntWeights([]int{1, 2, 4, 8}, []float64{0.5, 0.2, 0.2, 0.1}),
		Granularity:          time.Second,
		ConcurrentSubmission: true,
	}
}

// AlibabaConfig generates an AlibabaTrace-like mixed training/inference
// workload, used only for the Fig. 2 contrast.
func AlibabaConfig(seed int64) GenConfig {
	return GenConfig{
		Name:               "alibaba",
		Start:              TraceEpoch,
		Duration:           30 * 24 * time.Hour,
		Seed:               seed,
		SessionsPerHour:    func(time.Duration) float64 { return 3 },
		MaxSessionsPerHour: 3,
		SessionLifetime: MustQuantile(
			Knot{0, 3600},
			Knot{0.50, 3 * 86400},
			Knot{0.95, 25 * 86400},
			Knot{1, 50 * 86400},
		),
		PNeverTrains: 0.05,
		ThinkTime:    alibabaIAT(),
		TaskDuration: alibabaDuration(),
		PBurstEnd:    0.05,
		BurstGap: MustQuantile(
			Knot{0, 600},
			Knot{0.50, 6 * 3600},
			Knot{1, 2 * 86400},
		),
		RequestGPUs:          MustIntWeights([]int{1, 2, 4, 8}, []float64{0.45, 0.25, 0.2, 0.1}),
		TaskGPUs:             MustIntWeights([]int{1, 2, 4, 8}, []float64{0.45, 0.25, 0.2, 0.1}),
		Granularity:          time.Second,
		ConcurrentSubmission: true,
	}
}
