package trace

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// genScenario compiles and materializes a scenario at the given seed.
func genScenario(t *testing.T, s ScenarioSpec, seed int64) *Trace {
	t.Helper()
	cfg, err := s.Config(seed)
	if err != nil {
		t.Fatalf("%s: Config: %v", s.Name, err)
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("%s: Generate: %v", s.Name, err)
	}
	return tr
}

// TestScenarioDoubleRunByteIdentical: compiling and generating the same
// scenario twice at the same seed yields the identical trace — every
// session, cohort label, and task — and a different seed yields a
// different one (the seed actually reaches the generator).
func TestScenarioDoubleRunByteIdentical(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		a := genScenario(t, s, 42)
		b := genScenario(t, s, 42)
		if len(a.Sessions) != len(b.Sessions) {
			t.Fatalf("%s: %d vs %d sessions across runs", s.Name, len(a.Sessions), len(b.Sessions))
		}
		for i := range a.Sessions {
			if !sameSession(a.Sessions[i], b.Sessions[i]) {
				t.Fatalf("%s: session %d differs across identical runs", s.Name, i)
			}
		}
		c := genScenario(t, s, 43)
		same := len(a.Sessions) == len(c.Sessions)
		if same {
			for i := range a.Sessions {
				if !sameSession(a.Sessions[i], c.Sessions[i]) {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 42 and 43 generated identical traces", s.Name)
		}
	}
}

// TestScenarioStreamK1BitIdentical: for every built-in scenario the
// streaming path with a single shard emits bit-for-bit the sessions the
// materialized path produces — the property that lets one ScenarioSpec
// drive both execution modes interchangeably.
func TestScenarioStreamK1BitIdentical(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		cfg := s.MustConfig(42)
		tr := MustGenerate(cfg)
		g, err := NewStreamGen(cfg, 0, 1)
		if err != nil {
			t.Fatalf("%s: NewStreamGen: %v", s.Name, err)
		}
		got := collect(t, g)
		if len(got) != len(tr.Sessions) {
			t.Fatalf("%s: stream yielded %d sessions, Generate %d", s.Name, len(got), len(tr.Sessions))
		}
		for i := range got {
			if !sameSession(got[i], tr.Sessions[i]) {
				t.Fatalf("%s: session %d differs: stream %+v vs materialized %+v",
					s.Name, i, got[i], tr.Sessions[i])
			}
		}
	}
}

// TestScenarioStreamUnionMatchesExpectation: the union of a k-way stream
// split is a valid realization of the scenario — total sessions within
// Poisson tolerance of the analytic arrival integral, every shard
// in-window and internally ordered, cohort labels drawn from the spec.
func TestScenarioStreamUnionMatchesExpectation(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		cfg := s.MustConfig(7)
		const k = 4
		gens, err := StreamSplit(cfg, k)
		if err != nil {
			t.Fatalf("%s: StreamSplit: %v", s.Name, err)
		}
		names := map[string]bool{}
		for _, c := range s.Cohorts {
			names[c.Name] = true
		}
		total := 0
		for _, g := range gens {
			sessions := collect(t, g)
			total += len(sessions)
			if len(sessions) == 0 {
				t.Errorf("%s: shard %s empty", s.Name, g.Name())
			}
			ws, we := g.Window()
			prev := time.Time{}
			for _, sess := range sessions {
				if sess.Start.Before(ws) || !sess.Start.Before(we) {
					t.Fatalf("%s: %s starts outside window", s.Name, sess.ID)
				}
				if sess.Start.Before(prev) {
					t.Fatalf("%s: %s out of order", s.Name, sess.ID)
				}
				prev = sess.Start
				if !names[sess.Cohort] {
					t.Fatalf("%s: %s has unknown cohort %q", s.Name, sess.ID, sess.Cohort)
				}
			}
		}
		lambda := s.Arrival.ExpectedArrivals(0, hoursDur(s.DurationHours))
		if dev := math.Abs(float64(total) - lambda); dev > 5*math.Sqrt(lambda) {
			t.Errorf("%s: union of %d shards has %d sessions, expected %.1f +- %.1f",
				s.Name, k, total, lambda, 5*math.Sqrt(lambda))
		}
	}
}

// TestScenarioExpectShardConservation: analytic expectations divide
// conservatively across shards — k times the per-shard expectation
// recovers the whole-workload expectation (up to per-shard ceil rounding).
func TestScenarioExpectShardConservation(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		cfg := s.MustConfig(1)
		whole := cfg.Expect(1)
		for _, k := range []int{2, 4, 8} {
			per := cfg.Expect(k)
			if got := per.Sessions * k; got < whole.Sessions || got > whole.Sessions+k {
				t.Errorf("%s: %d shards x %d sessions = %d, whole expects %d",
					s.Name, k, per.Sessions, got, whole.Sessions)
			}
			if got := per.ReservedGPUHours * float64(k); math.Abs(got-whole.ReservedGPUHours) > 1e-6*whole.ReservedGPUHours {
				t.Errorf("%s: %d shards reserve %v GPUh total, whole expects %v",
					s.Name, k, got, whole.ReservedGPUHours)
			}
		}
		if whole.Exact {
			t.Errorf("%s: analytic expectation claims to be exact", s.Name)
		}
	}
}

// TestScenarioExpectMatchesGenerate: the analytic expectations track the
// realized scenario workloads within the same tolerances the built-in
// configs are held to (sessions tight, tasks and GPU-hours loose — they
// compound lifetime clamping with cycle-rate blending).
func TestScenarioExpectMatchesGenerate(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		cfg := s.MustConfig(21)
		tr := MustGenerate(cfg)
		exp := cfg.Expect(1)
		got := tr.AsSource().Expect()
		if relDev(float64(exp.Sessions), float64(got.Sessions)) > 0.10 {
			t.Errorf("%s: expected %d sessions, generated %d", s.Name, exp.Sessions, got.Sessions)
		}
		if relDev(float64(exp.Tasks), float64(got.Tasks)) > 0.50 {
			t.Errorf("%s: expected %d tasks, generated %d", s.Name, exp.Tasks, got.Tasks)
		}
		if relDev(exp.ReservedGPUHours, got.ReservedGPUHours) > 0.35 {
			t.Errorf("%s: expected %.0f reserved GPUh, generated %.0f",
				s.Name, exp.ReservedGPUHours, got.ReservedGPUHours)
		}
	}
}

func relDev(want, got float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestScenarioJSONRoundTrip: specs survive JSON — the decoded spec is
// structurally identical and compiles to a generator that reproduces the
// original trace byte-for-byte. This is what makes file-based scenarios
// (-scenario path/to.json) equivalent citizens of the built-in family.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, s := range BuiltinScenarios() {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name, err)
		}
		back, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: ParseScenario: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: spec changed across JSON round trip", s.Name)
		}
		a, b := genScenario(t, s, 5), genScenario(t, back, 5)
		if len(a.Sessions) != len(b.Sessions) {
			t.Fatalf("%s: round-tripped spec generated %d sessions, original %d",
				s.Name, len(b.Sessions), len(a.Sessions))
		}
		for i := range a.Sessions {
			if !sameSession(a.Sessions[i], b.Sessions[i]) {
				t.Fatalf("%s: session %d differs after JSON round trip", s.Name, i)
			}
		}
	}
}

// TestParseScenarioRejectsUnknownFields: typos in hand-written files fail
// loudly instead of silently defaulting.
func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	data, err := json.Marshal(CampusDiurnalScenario())
	if err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(string(data), `"duration_hours"`, `"duraton_hours"`, 1)
	if _, err := ParseScenario([]byte(broken)); err == nil {
		t.Error("misspelled field accepted silently")
	}
}

// TestScenarioValidationErrors: each malformed spec fails Validate with a
// message naming the problem.
func TestScenarioValidationErrors(t *testing.T) {
	base := CampusDiurnalScenario
	cases := []struct {
		name    string
		mutate  func(*ScenarioSpec)
		wantSub string
	}{
		{"no-name", func(s *ScenarioSpec) { s.Name = "" }, "name"},
		{"zero-duration", func(s *ScenarioSpec) { s.DurationHours = 0 }, "duration"},
		{"negative-granularity", func(s *ScenarioSpec) { s.GranularitySeconds = -1 }, "granularity"},
		{"zero-base-rate", func(s *ScenarioSpec) { s.Arrival.BaseSessionsPerHour = 0 }, "base_sessions_per_hour"},
		{"inverted-window", func(s *ScenarioSpec) { s.Arrival.Diurnal[0] = RateWindow{StartHour: 9, EndHour: 8, Factor: 1} }, "window"},
		{"window-past-24", func(s *ScenarioSpec) { s.Arrival.Diurnal[0] = RateWindow{StartHour: 20, EndHour: 25, Factor: 1} }, "window"},
		{"overlapping-windows", func(s *ScenarioSpec) { s.Arrival.Diurnal[1].StartHour = 6 }, "overlap"},
		{"negative-window-factor", func(s *ScenarioSpec) { s.Arrival.Diurnal[0].Factor = -0.5 }, "factor"},
		{"weekday-wrong-arity", func(s *ScenarioSpec) { s.Arrival.Weekday = []float64{1, 2, 3} }, "7 factors"},
		{"negative-weekday", func(s *ScenarioSpec) { s.Arrival.Weekday = []float64{1, 1, 1, -1, 1, 1, 1} }, "weekday"},
		{"inverted-spike", func(s *ScenarioSpec) { s.Arrival.Spikes = []Spike{{StartHour: 10, EndHour: 10, Factor: 2}} }, "spike"},
		{"overlapping-spikes", func(s *ScenarioSpec) {
			s.Arrival.Spikes = []Spike{{StartHour: 1, EndHour: 5, Factor: 2}, {StartHour: 4, EndHour: 6, Factor: 3}}
		}, "overlap"},
		{"no-cohorts", func(s *ScenarioSpec) { s.Cohorts = nil }, "cohort"},
		{"unnamed-cohort", func(s *ScenarioSpec) { s.Cohorts[0].Name = "" }, "name"},
		{"zero-cohort-weight", func(s *ScenarioSpec) { s.Cohorts[0].Weight = 0 }, "weight"},
		{"bad-probability", func(s *ScenarioSpec) { s.Cohorts[0].PNeverTrains = 1.5 }, "probabilities"},
		{"unknown-dist-kind", func(s *ScenarioSpec) { s.Cohorts[0].ThinkTime.Kind = "zipf" }, "unknown dist kind"},
		{"pareto-infinite-mean", func(s *ScenarioSpec) {
			s.Cohorts[1].SessionLifetime = Dist{Kind: "pareto", Scale: 3600, Shape: 0.9}
		}, "shape > 1"},
		{"lognormal-zero-sigma", func(s *ScenarioSpec) {
			s.Cohorts[0].TaskDuration = Dist{Kind: "lognormal", Mu: 1, Sigma: 0}
		}, "sigma"},
		{"uniform-inverted", func(s *ScenarioSpec) {
			s.Cohorts[0].BurstGap = Dist{Kind: "uniform", Lo: 10, Hi: 5}
		}, "uniform"},
		{"gpu-weights-mismatch", func(s *ScenarioSpec) {
			s.Cohorts[0].RequestGPUs = IntDist{Values: []int{1, 2}, Weights: []float64{1}}
		}, "mismatch"},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted malformed spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	for _, s := range BuiltinScenarios() {
		if err := s.Validate(); err != nil {
			t.Errorf("built-in %s fails its own validation: %v", s.Name, err)
		}
	}
}

// TestResolveScenario: names hit the registry, paths hit the filesystem,
// and misses report the available built-ins.
func TestResolveScenario(t *testing.T) {
	s, err := ResolveScenario("flash-crowd")
	if err != nil || s.Name != "flash-crowd" {
		t.Fatalf("builtin lookup: %v, %v", s.Name, err)
	}

	custom := WeeklyMixedScenario()
	custom.Name = "my-campus"
	data, err := json.Marshal(custom)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "my-campus.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = ResolveScenario(path)
	if err != nil || s.Name != "my-campus" {
		t.Fatalf("file lookup: %v, %v", s.Name, err)
	}

	_, err = ResolveScenario("no-such-scenario")
	if err == nil {
		t.Fatal("bogus name resolved")
	}
	for _, name := range BuiltinScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("miss error %q does not list built-in %q", err, name)
		}
	}
}

// TestArrivalRateComposition pins Rate's layer algebra and MaxRate's bound
// on a spec exercising all three layers at once.
func TestArrivalRateComposition(t *testing.T) {
	a := ArrivalSpec{
		BaseSessionsPerHour: 10,
		Diurnal:             []RateWindow{{StartHour: 8, EndHour: 18, Factor: 2}},
		Weekday:             []float64{1, 0.5, 1, 1, 1, 1, 1},
		Spikes:              []Spike{{StartHour: 33, EndHour: 35, Factor: 3}},
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{2 * time.Hour, 10},          // day 0, outside window
		{9 * time.Hour, 20},          // day 0, in window
		{26 * time.Hour, 5},          // day 1 off-window: 10 x 0.5 weekday
		{34 * time.Hour, 30},         // day 1 hour-of-day 10: 10 x 2 x 0.5 x 3 (spike)
		{40 * time.Hour, 10},         // day 1 in-window, past the spike
		{(7*24 + 2) * time.Hour, 10}, // weekday overlay wraps to day 0
	}
	for _, c := range cases {
		if got := a.Rate(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got, want := a.MaxRate(), 10*2*1*3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxRate = %v, want %v", got, want)
	}
	// The exact piecewise integral over day 0: 8h@10 + 10h@20 + 6h@10.
	if got, want := a.ExpectedArrivals(0, dayHours), 8*10+10*20+6*10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedArrivals(day 0) = %v, want %v", got, want)
	}
	// Sub-hour slice inside the spike on day 1: hour-of-day 10, factor
	// 2 (window) x 0.5 (weekday) x 3 (spike) = 30/h for 30 min.
	if got, want := a.ExpectedArrivals(34*time.Hour, 34*time.Hour+30*time.Minute), 15.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedArrivals(spike slice) = %v, want %v", got, want)
	}
	// Additivity: integrating the whole window in one call equals the sum
	// of per-day integrals.
	var sum float64
	for d := time.Duration(0); d < 3*dayHours; d += dayHours {
		sum += a.ExpectedArrivals(d, d+dayHours)
	}
	if got := a.ExpectedArrivals(0, 3*dayHours); math.Abs(got-sum) > 1e-9 {
		t.Errorf("ExpectedArrivals not additive: %v vs %v", got, sum)
	}
}
