package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"notebookos/internal/metrics"
	"notebookos/internal/resources"
)

// Task is one user-submitted cell task execution involving GPU training
// (an "IDLT task" in the paper's terminology, §2.1).
type Task struct {
	// Submit is when the user submits the cell for execution.
	Submit time.Time
	// Duration is the pure execution time of the training task, excluding
	// any platform-induced queueing or provisioning delay.
	Duration time.Duration
	// GPUs is the number of GPUs the task trains on.
	GPUs int
}

// End returns the task's completion time assuming zero platform delay.
func (t Task) End() time.Time { return t.Submit.Add(t.Duration) }

// Session is one persistent notebook session: a user's long-lived working
// instance with its resource reservation and the tasks submitted within it.
type Session struct {
	ID string
	// Cohort names the user-population class the session was generated
	// from (GenConfig.Cohorts); empty for single-population workloads.
	// Purely descriptive — the simulator ignores it — but it lets
	// statistical tests and reports verify cohort mixes on real streams.
	Cohort string
	// SLO is the session's service-level class (Cohort.SLO at generation
	// time). Unlike Cohort it is *not* purely descriptive: an SLO-aware
	// scheduler weights the session's tasks by it in the capacity
	// wait-queue. The zero value schedules as SLOBatch.
	SLO SLOClass
	// Start and End delimit the session container's lifetime.
	Start, End time.Time
	// Request is the session's resource request (the reservation the
	// Reservation baseline would bind for the whole lifetime).
	Request resources.Spec
	// Tasks are the session's cell task executions, in submission order.
	Tasks []Task
}

// Lifetime returns the session's total duration.
func (s *Session) Lifetime() time.Duration { return s.End.Sub(s.Start) }

// GPUBusy returns the total GPU-occupied wall time (sum of task durations).
func (s *Session) GPUBusy() time.Duration {
	var d time.Duration
	for _, t := range s.Tasks {
		d += t.Duration
	}
	return d
}

// ActiveFraction returns the fraction of the session lifetime during which
// its GPUs were actively used — the dashed series of Fig. 2(c).
func (s *Session) ActiveFraction() float64 {
	lt := s.Lifetime()
	if lt <= 0 {
		return 0
	}
	return float64(s.GPUBusy()) / float64(lt)
}

// Trace is a workload trace: a set of sessions over a time range, with the
// sampling granularity of the source (15 s for AdobeTrace).
type Trace struct {
	Name        string
	Start, End  time.Time
	Granularity time.Duration
	Sessions    []*Session

	// Derived timelines are immutable once built (a Trace is read-only
	// after generation), so they are computed at most once per trace and
	// shared — including across the parallel experiment harness's
	// goroutines. sync.Once makes the laziness race-free.
	reservedOnce sync.Once
	reservedTL   *metrics.Timeline
	utilizedOnce sync.Once
	utilizedTL   *metrics.Timeline
}

// NumTasks returns the total number of tasks across all sessions.
func (tr *Trace) NumTasks() int {
	n := 0
	for _, s := range tr.Sessions {
		n += len(s.Tasks)
	}
	return n
}

// Durations returns the sample of all task durations, in seconds
// (Fig. 2(a)).
func (tr *Trace) Durations() *metrics.Sample {
	s := metrics.NewSample()
	s.Grow(tr.NumTasks())
	for _, sess := range tr.Sessions {
		for _, t := range sess.Tasks {
			s.Add(t.Duration.Seconds())
		}
	}
	return s
}

// IATs returns the sample of task inter-arrival times measured within each
// user session independently, in seconds, matching the paper's methodology
// for Fig. 2(b).
func (tr *Trace) IATs() *metrics.Sample {
	s := metrics.NewSample()
	s.Grow(tr.NumTasks() - len(tr.Sessions))
	for _, sess := range tr.Sessions {
		for i := 1; i < len(sess.Tasks); i++ {
			s.Add(sess.Tasks[i].Submit.Sub(sess.Tasks[i-1].Submit).Seconds())
		}
	}
	return s
}

// ActiveFractions returns the per-session active-GPU-fraction sample
// (dashed series of Fig. 2(c)), as fractions in [0, 1].
func (tr *Trace) ActiveFractions() *metrics.Sample {
	s := metrics.NewSample()
	for _, sess := range tr.Sessions {
		s.Add(sess.ActiveFraction())
	}
	return s
}

// ActiveSessions returns the timeline of concurrently live sessions
// (secondary axis of Figs. 7 and 20).
func (tr *Trace) ActiveSessions() *metrics.Timeline {
	type ev struct {
		t time.Time
		d float64
	}
	evs := make([]ev, 0, 2*len(tr.Sessions))
	for _, s := range tr.Sessions {
		evs = append(evs, ev{s.Start, 1}, ev{s.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t.Before(evs[j].t) })
	tl := metrics.NewTimeline()
	tl.Grow(len(evs))
	for _, e := range evs {
		tl.Delta(e.t, e.d)
	}
	return tl
}

// ActiveTasks returns the timeline of concurrently executing training
// tasks (primary axis of Figs. 7 and 20), assuming zero platform delay.
func (tr *Trace) ActiveTasks() *metrics.Timeline {
	type ev struct {
		t time.Time
		d float64
	}
	evs := make([]ev, 0, 2*tr.NumTasks())
	for _, s := range tr.Sessions {
		for _, t := range s.Tasks {
			evs = append(evs, ev{t.Submit, 1}, ev{t.End(), -1})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t.Before(evs[j].t) })
	tl := metrics.NewTimeline()
	tl.Grow(len(evs))
	for _, e := range evs {
		tl.Delta(e.t, e.d)
	}
	return tl
}

// ReservedGPUs returns the timeline of GPUs reserved by live sessions —
// what the Reservation baseline provisions (Fig. 2(d), "Reserved GPUs").
// The timeline is built once and cached; callers must not mutate it.
func (tr *Trace) ReservedGPUs() *metrics.Timeline {
	tr.reservedOnce.Do(func() {
		type ev struct {
			t time.Time
			d float64
		}
		evs := make([]ev, 0, 2*len(tr.Sessions))
		for _, s := range tr.Sessions {
			g := float64(s.Request.GPUs)
			evs = append(evs, ev{s.Start, g}, ev{s.End, -g})
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].t.Before(evs[j].t) })
		tl := metrics.NewTimeline()
		tl.Grow(len(evs))
		for _, e := range evs {
			tl.Delta(e.t, e.d)
		}
		tr.reservedTL = tl
	})
	return tr.reservedTL
}

// UtilizedGPUs returns the timeline of GPUs actively used by executing
// tasks (Fig. 2(d), "Utilized GPUs"; also the Fig. 8 "oracle": the exact
// number of GPUs required to serve training requests). The timeline is
// built once and cached; callers must not mutate it.
func (tr *Trace) UtilizedGPUs() *metrics.Timeline {
	tr.utilizedOnce.Do(func() {
		type ev struct {
			t time.Time
			d float64
		}
		evs := make([]ev, 0, 2*tr.NumTasks())
		for _, s := range tr.Sessions {
			for _, t := range s.Tasks {
				g := float64(t.GPUs)
				evs = append(evs, ev{t.Submit, g}, ev{t.End(), -g})
			}
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].t.Before(evs[j].t) })
		tl := metrics.NewTimeline()
		tl.Grow(len(evs))
		for _, e := range evs {
			tl.Delta(e.t, e.d)
		}
		tr.utilizedTL = tl
	})
	return tr.utilizedTL
}

// UtilizationCDF returns the cluster GPU-utilization sample (solid series of
// Fig. 2(c)): utilized/reserved sampled every step across the trace.
func (tr *Trace) UtilizationCDF(step time.Duration) *metrics.Sample {
	res := tr.ReservedGPUs()
	util := tr.UtilizedGPUs()
	s := metrics.NewSample()
	for t := tr.Start; t.Before(tr.End); t = t.Add(step) {
		r := res.At(t)
		if r == 0 {
			continue
		}
		s.Add(util.At(t) / r)
	}
	return s
}

// Window returns a sub-trace containing only sessions that start within
// [from, to), with session ends and tasks clamped to the window. It models
// the paper's 17.5-hour excerpt methodology (§5.1.2).
func (tr *Trace) Window(from, to time.Time) *Trace {
	out := &Trace{
		Name:        fmt.Sprintf("%s[%s,%s)", tr.Name, from.Format("01-02T15:04"), to.Format("01-02T15:04")),
		Start:       from,
		End:         to,
		Granularity: tr.Granularity,
	}
	for _, s := range tr.Sessions {
		if s.Start.Before(from) || !s.Start.Before(to) {
			continue
		}
		ns := &Session{ID: s.ID, Cohort: s.Cohort, SLO: s.SLO, Start: s.Start, End: s.End, Request: s.Request}
		if ns.End.After(to) {
			ns.End = to
		}
		for _, t := range s.Tasks {
			if t.Submit.Before(from) || !t.Submit.Before(to) {
				continue
			}
			if t.End().After(to) {
				t.Duration = to.Sub(t.Submit)
			}
			ns.Tasks = append(ns.Tasks, t)
		}
		out.Sessions = append(out.Sessions, ns)
	}
	return out
}

// Validate checks internal consistency: sessions within the trace range,
// tasks within their session, positive durations, tasks ordered, and no
// task requesting more GPUs than its session reserved.
func (tr *Trace) Validate() error {
	for _, s := range tr.Sessions {
		if s.End.Before(s.Start) {
			return fmt.Errorf("trace: session %s ends before it starts", s.ID)
		}
		prev := time.Time{}
		for i, t := range s.Tasks {
			if t.Submit.Before(s.Start) || t.Submit.After(s.End) {
				return fmt.Errorf("trace: session %s task %d submitted outside session", s.ID, i)
			}
			if t.Duration <= 0 {
				return fmt.Errorf("trace: session %s task %d non-positive duration", s.ID, i)
			}
			if t.GPUs < 0 || t.GPUs > s.Request.GPUs {
				return fmt.Errorf("trace: session %s task %d GPUs %d exceeds request %d",
					s.ID, i, t.GPUs, s.Request.GPUs)
			}
			if !prev.IsZero() && t.Submit.Before(prev) {
				return fmt.Errorf("trace: session %s tasks out of order at %d", s.ID, i)
			}
			prev = t.Submit
		}
	}
	return nil
}
