package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "kernel-1/state/7/model" // keys may contain '/'
	payload := bytes.Repeat([]byte("p"), 4096)
	if err := fs.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get: %v (len %d)", err, len(got))
	}
	// Overwrite.
	if err := fs.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Get(key)
	if string(got) != "v2" {
		t.Fatalf("overwrite = %q", got)
	}
	if err := fs.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := fs.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestFileStoreList(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		if err := fs.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := fs.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"a/1", "a/2"}) {
		t.Fatalf("List = %v", keys)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("durable", []byte("still here")); err != nil {
		t.Fatal(err)
	}
	// Re-open the same directory: data must survive.
	fs2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get("durable")
	if err != nil || string(got) != "still here" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestFileStoreBehindKVServer(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", fs)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("network file store Get = %q, %v", got, err)
	}
}
