package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
)

// This file implements a minimal TCP key-value protocol so a NotebookOS
// deployment can run one shared store process per cluster (the way the
// paper's prototype points kernels at a Redis/S3 endpoint). Frames are
// length-prefixed:
//
//	request:  op(1) keyLen(u32) key [valLen(u64) val]   (val only for put)
//	response: status(1) payloadLen(u64) payload
//
// Status codes: 0 OK, 1 not found, 2 error (payload carries the message).

const (
	opPut    = 'P'
	opGet    = 'G'
	opDelete = 'D'
	opList   = 'L'

	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
)

// maxFrame bounds a single value (1 GiB) to keep a corrupt peer from
// forcing a huge allocation.
const maxFrame = 1 << 30

// Server serves a Store over TCP.
type Server struct {
	backend Store
	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  bool
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0") backed by backend.
func NewServer(addr string, backend Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		op, key, val, err := readRequest(conn)
		if err != nil {
			return
		}
		switch op {
		case opPut:
			if err := s.backend.Put(key, val); err != nil {
				writeResponse(conn, statusError, []byte(err.Error()))
				continue
			}
			writeResponse(conn, statusOK, nil)
		case opGet:
			data, err := s.backend.Get(key)
			switch {
			case errors.Is(err, ErrNotFound):
				writeResponse(conn, statusNotFound, nil)
			case err != nil:
				writeResponse(conn, statusError, []byte(err.Error()))
			default:
				writeResponse(conn, statusOK, data)
			}
		case opDelete:
			err := s.backend.Delete(key)
			switch {
			case errors.Is(err, ErrNotFound):
				writeResponse(conn, statusNotFound, nil)
			case err != nil:
				writeResponse(conn, statusError, []byte(err.Error()))
			default:
				writeResponse(conn, statusOK, nil)
			}
		case opList:
			lister, ok := s.backend.(Lister)
			if !ok {
				writeResponse(conn, statusError, []byte("store: backend cannot list"))
				continue
			}
			keys, err := lister.List(key)
			if err != nil {
				writeResponse(conn, statusError, []byte(err.Error()))
				continue
			}
			writeResponse(conn, statusOK, []byte(strings.Join(keys, "\n")))
		default:
			writeResponse(conn, statusError, []byte(fmt.Sprintf("store: unknown op %q", op)))
		}
	}
}

func readRequest(r io.Reader) (op byte, key string, val []byte, err error) {
	var header [5]byte
	if _, err = io.ReadFull(r, header[:]); err != nil {
		return 0, "", nil, err
	}
	op = header[0]
	keyLen := binary.BigEndian.Uint32(header[1:5])
	if keyLen > maxFrame {
		return 0, "", nil, fmt.Errorf("store: key too large (%d)", keyLen)
	}
	kb := make([]byte, keyLen)
	if _, err = io.ReadFull(r, kb); err != nil {
		return 0, "", nil, err
	}
	key = string(kb)
	if op == opPut {
		var lenBuf [8]byte
		if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
			return 0, "", nil, err
		}
		valLen := binary.BigEndian.Uint64(lenBuf[:])
		if valLen > maxFrame {
			return 0, "", nil, fmt.Errorf("store: value too large (%d)", valLen)
		}
		val = make([]byte, valLen)
		if _, err = io.ReadFull(r, val); err != nil {
			return 0, "", nil, err
		}
	}
	return op, key, val, nil
}

func writeResponse(w io.Writer, status byte, payload []byte) error {
	var header [9]byte
	header[0] = status
	binary.BigEndian.PutUint64(header[1:], uint64(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a Store backed by a remote Server. Operations on a single
// Client are serialized; use one Client per goroutine for parallelism.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var header [5]byte
	header[0] = op
	binary.BigEndian.PutUint32(header[1:5], uint32(len(key)))
	if _, err := c.conn.Write(header[:]); err != nil {
		return 0, nil, err
	}
	if _, err := io.WriteString(c.conn, key); err != nil {
		return 0, nil, err
	}
	if op == opPut {
		var lenBuf [8]byte
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(val)))
		if _, err := c.conn.Write(lenBuf[:]); err != nil {
			return 0, nil, err
		}
		if _, err := c.conn.Write(val); err != nil {
			return 0, nil, err
		}
	}
	var respHeader [9]byte
	if _, err := io.ReadFull(c.conn, respHeader[:]); err != nil {
		return 0, nil, err
	}
	payloadLen := binary.BigEndian.Uint64(respHeader[1:])
	if payloadLen > maxFrame {
		return 0, nil, fmt.Errorf("store: response too large (%d)", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(c.conn, payload); err != nil {
		return 0, nil, err
	}
	return respHeader[0], payload, nil
}

// Put implements Store.
func (c *Client) Put(key string, data []byte) error {
	status, payload, err := c.roundTrip(opPut, key, data)
	if err != nil {
		return err
	}
	return statusToError(status, key, payload)
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, error) {
	status, payload, err := c.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, key, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Delete implements Store.
func (c *Client) Delete(key string) error {
	status, payload, err := c.roundTrip(opDelete, key, nil)
	if err != nil {
		return err
	}
	return statusToError(status, key, payload)
}

// List implements Lister.
func (c *Client) List(prefix string) ([]string, error) {
	status, payload, err := c.roundTrip(opList, prefix, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToError(status, prefix, payload); err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	return strings.Split(string(payload), "\n"), nil
}

func statusToError(status byte, key string, payload []byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	default:
		return errors.New(string(payload))
	}
}
