package store

import (
	"container/list"
	"sync"
)

// Cache is the node-level cache of §3.2.4: a byte-bounded LRU in front of
// a (typically remote, latency-bearing) Store. Reads served from the cache
// avoid the backend entirely; writes go through to the backend and
// populate the cache.
type Cache struct {
	mu       sync.Mutex
	inner    Store
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element

	hits   int64
	misses int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache wraps inner with an LRU holding at most capacity bytes.
func NewCache(inner Store, capacity int64) *Cache {
	return &Cache{
		inner:    inner,
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Put implements Store (write-through).
func (c *Cache) Put(key string, data []byte) error {
	if err := c.inner.Put(key, data); err != nil {
		return err
	}
	c.mu.Lock()
	c.insert(key, data)
	c.mu.Unlock()
	return nil
}

// Get implements Store, serving from the cache when possible.
func (c *Cache) Get(key string) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.mu.Unlock()
		cp := make([]byte, len(data))
		copy(cp, data)
		return cp, nil
	}
	c.misses++
	c.mu.Unlock()

	data, err := c.inner.Get(key)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.insert(key, data)
	c.mu.Unlock()
	return data, nil
}

// Delete implements Store, invalidating the cache entry.
func (c *Cache) Delete(key string) error {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.remove(el)
	}
	c.mu.Unlock()
	return c.inner.Delete(key)
}

// insert adds or refreshes a cache entry, evicting LRU entries to fit.
// Objects larger than the capacity are not cached. Caller holds c.mu.
func (c *Cache) insert(key string, data []byte) {
	if int64(len(data)) > c.capacity {
		if el, ok := c.items[key]; ok {
			c.remove(el)
		}
		return
	}
	if el, ok := c.items[key]; ok {
		c.remove(el)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	el := c.ll.PushFront(&cacheEntry{key: key, data: cp})
	c.items[key] = el
	c.used += int64(len(cp))
	for c.used > c.capacity {
		c.remove(c.ll.Back())
	}
}

// remove drops an entry. Caller holds c.mu.
func (c *Cache) remove(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= int64(len(ent.data))
}

// Stats returns cache hits, misses, and bytes resident.
func (c *Cache) Stats() (hits, misses, usedBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
