// Package store implements the Distributed Data Store NotebookOS uses for
// large-object checkpointing (paper §3.2.4): model parameters and datasets
// are written asynchronously off the critical path, and Raft log entries
// carry pointers that encode retrieval. The paper's prototype supports AWS
// S3, Redis, and HDFS; this package provides an in-memory store, latency
// models for those three backends, a node-level LRU cache, and a real TCP
// key-value server/client for cross-process deployments.
package store
