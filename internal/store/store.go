package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get/Delete for missing keys.
var ErrNotFound = errors.New("store: key not found")

// Store is the pluggable large-object store interface.
type Store interface {
	// Put writes data under key, overwriting any prior value.
	Put(key string, data []byte) error
	// Get returns the data stored under key.
	Get(key string) ([]byte, error)
	// Delete removes key. Deleting a missing key returns ErrNotFound.
	Delete(key string) error
}

// Lister is implemented by stores that can enumerate keys.
type Lister interface {
	// List returns the sorted keys with the given prefix.
	List(prefix string) ([]string, error)
}

// Mem is an in-memory Store, safe for concurrent use.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Put implements Store.
func (s *Mem) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *Mem) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Store.
func (s *Mem) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(s.m, key)
	return nil
}

// List implements Lister.
func (s *Mem) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored keys.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Bytes returns the total stored payload size.
func (s *Mem) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, v := range s.m {
		n += int64(len(v))
	}
	return n
}
