package store

import (
	"math/rand"
	"sync"
	"time"

	"notebookos/internal/simclock"
)

// LatencyModel describes a backend's transfer-time behaviour: a fixed
// per-operation base cost plus a throughput term, with multiplicative
// jitter. The presets below are calibrated so that checkpointing the
// paper's models (45 MB ResNet-18 up to ~550 MB GPT-2) reproduces the
// Fig. 11 distribution: 99 % of reads within ~3.95 s and writes within
// ~7.07 s.
type LatencyModel struct {
	Name       string
	PutBase    time.Duration
	PutPerMB   time.Duration
	GetBase    time.Duration
	GetPerMB   time.Duration
	DeleteBase time.Duration
	// Jitter is the +/- fraction of uniform noise applied to each latency.
	Jitter float64
}

// S3Model models AWS S3 (the paper's recommended backend).
func S3Model() LatencyModel {
	return LatencyModel{
		Name:    "s3",
		PutBase: 45 * time.Millisecond, PutPerMB: 11 * time.Millisecond,
		GetBase: 30 * time.Millisecond, GetPerMB: 6500 * time.Microsecond,
		DeleteBase: 25 * time.Millisecond,
		Jitter:     0.25,
	}
}

// RedisModel models a Redis deployment on the cluster network.
func RedisModel() LatencyModel {
	return LatencyModel{
		Name:    "redis",
		PutBase: 1 * time.Millisecond, PutPerMB: 9 * time.Millisecond,
		GetBase: 800 * time.Microsecond, GetPerMB: 5 * time.Millisecond,
		DeleteBase: 500 * time.Microsecond,
		Jitter:     0.15,
	}
}

// HDFSModel models an HDFS deployment.
func HDFSModel() LatencyModel {
	return LatencyModel{
		Name:    "hdfs",
		PutBase: 20 * time.Millisecond, PutPerMB: 14 * time.Millisecond,
		GetBase: 12 * time.Millisecond, GetPerMB: 8 * time.Millisecond,
		DeleteBase: 8 * time.Millisecond,
		Jitter:     0.3,
	}
}

// PutLatency returns a sampled write latency for size bytes.
func (m LatencyModel) PutLatency(size int64, r *rand.Rand) time.Duration {
	return m.jittered(m.PutBase+time.Duration(float64(m.PutPerMB)*float64(size)/(1<<20)), r)
}

// GetLatency returns a sampled read latency for size bytes.
func (m LatencyModel) GetLatency(size int64, r *rand.Rand) time.Duration {
	return m.jittered(m.GetBase+time.Duration(float64(m.GetPerMB)*float64(size)/(1<<20)), r)
}

func (m LatencyModel) jittered(d time.Duration, r *rand.Rand) time.Duration {
	if m.Jitter <= 0 || r == nil {
		return d
	}
	f := 1 + m.Jitter*(2*r.Float64()-1)
	return time.Duration(float64(d) * f)
}

// Timed wraps a Store, sleeping on the provided clock according to a
// LatencyModel and recording per-operation latencies. The live platform
// passes a real clock; unit tests pass a virtual one.
type Timed struct {
	inner Store
	model LatencyModel
	clock simclock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	putSecs  []float64
	getSecs  []float64
	putBytes int64
	getBytes int64
}

// NewTimed wraps inner with the given latency model.
func NewTimed(inner Store, model LatencyModel, clock simclock.Clock, seed int64) *Timed {
	return &Timed{inner: inner, model: model, clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// Put implements Store with modeled latency.
func (t *Timed) Put(key string, data []byte) error {
	t.mu.Lock()
	d := t.model.PutLatency(int64(len(data)), t.rng)
	t.putSecs = append(t.putSecs, d.Seconds())
	t.putBytes += int64(len(data))
	t.mu.Unlock()
	t.clock.Sleep(d)
	return t.inner.Put(key, data)
}

// Get implements Store with modeled latency.
func (t *Timed) Get(key string) ([]byte, error) {
	data, err := t.inner.Get(key)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	d := t.model.GetLatency(int64(len(data)), t.rng)
	t.getSecs = append(t.getSecs, d.Seconds())
	t.getBytes += int64(len(data))
	t.mu.Unlock()
	t.clock.Sleep(d)
	return data, nil
}

// Delete implements Store with modeled latency.
func (t *Timed) Delete(key string) error {
	t.clock.Sleep(t.model.DeleteBase)
	return t.inner.Delete(key)
}

// Latencies returns copies of the recorded put and get latencies (seconds).
func (t *Timed) Latencies() (puts, gets []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	puts = append([]float64(nil), t.putSecs...)
	gets = append([]float64(nil), t.getSecs...)
	return puts, gets
}

// Traffic returns total bytes written and read.
func (t *Timed) Traffic() (putBytes, getBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.putBytes, t.getBytes
}
