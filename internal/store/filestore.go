package store

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is a Store persisted to a directory, one file per key — the
// local-disk analogue of the paper's HDFS backend, useful for durable
// single-node deployments and for checkpoints that must survive process
// restarts. Keys are hex-encoded into file names so arbitrary key strings
// (including '/') are safe.
type File struct {
	dir string
	mu  sync.RWMutex
}

// NewFile creates (if needed) and opens a file-backed store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &File{dir: dir}, nil
}

func (f *File) path(key string) string {
	return filepath.Join(f.dir, hex.EncodeToString([]byte(key))+".obj")
}

// Put implements Store with an atomic rename so readers never observe a
// partially written object.
func (f *File) Put(key string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp, err := os.CreateTemp(f.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, f.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// Get implements Store.
func (f *File) Get(key string) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	data, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return data, nil
}

// Delete implements Store.
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path(key))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// List implements Lister.
func (f *File) List(prefix string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".obj") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".obj"))
		if err != nil {
			continue
		}
		key := string(raw)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}
