package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"notebookos/internal/metrics"
	"notebookos/internal/simclock"
)

func TestMemBasics(t *testing.T) {
	s := NewMem()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) err = %v", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestMemIsolation(t *testing.T) {
	s := NewMem()
	data := []byte("hello")
	s.Put("k", data)
	data[0] = 'X' // caller mutation must not leak in
	got, _ := s.Get("k")
	if string(got) != "hello" {
		t.Fatalf("stored value mutated: %q", got)
	}
	got[0] = 'Y' // returned copy mutation must not leak in
	again, _ := s.Get("k")
	if string(again) != "hello" {
		t.Fatalf("second read mutated: %q", again)
	}
}

func TestMemList(t *testing.T) {
	s := NewMem()
	for _, k := range []string{"m/a", "m/b", "d/x"} {
		s.Put(k, []byte("v"))
	}
	keys, err := s.List("m/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"m/a", "m/b"}) {
		t.Fatalf("List = %v", keys)
	}
	if s.Len() != 3 || s.Bytes() != 3 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

// Property: the store behaves like a map for any operation sequence.
func TestMemMapEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewMem()
		shadow := map[string]string{}
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < 300; i++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", r.Intn(1000))
				s.Put(k, []byte(v))
				shadow[k] = v
			case 1:
				got, err := s.Get(k)
				want, ok := shadow[k]
				if ok != (err == nil) {
					return false
				}
				if ok && string(got) != want {
					return false
				}
			case 2:
				err := s.Delete(k)
				_, ok := shadow[k]
				if ok != (err == nil) {
					return false
				}
				delete(shadow, k)
			}
		}
		return s.Len() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTimedLatencyModel(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	ts := NewTimed(NewMem(), LatencyModel{
		Name: "test", PutBase: 10 * time.Millisecond, PutPerMB: time.Millisecond,
		GetBase: 5 * time.Millisecond, GetPerMB: time.Millisecond,
	}, clock, 1)

	done := make(chan error, 1)
	go func() { done <- ts.Put("k", make([]byte, 2<<20)) }()
	// The put must block until virtual time advances by 10ms + 2MB*1ms/MB.
	deadline := time.Now().Add(time.Second)
	for clock.PendingTimers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(12 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	puts, gets := ts.Latencies()
	if len(puts) != 1 || len(gets) != 0 {
		t.Fatalf("latencies = %v/%v", puts, gets)
	}
	if puts[0] != 0.012 {
		t.Fatalf("put latency = %vs, want 0.012", puts[0])
	}
	pb, gb := ts.Traffic()
	if pb != 2<<20 || gb != 0 {
		t.Fatalf("traffic = %d/%d", pb, gb)
	}
}

func TestTimedGetMissingSkipsSleep(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	ts := NewTimed(NewMem(), S3Model(), clock, 1)
	if _, err := ts.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyPresetsMatchFig11(t *testing.T) {
	// Checkpointing the paper's large models must land inside the Fig. 11
	// envelope: 99% of reads < ~3.95s, writes < ~7.07s.
	r := rand.New(rand.NewSource(7))
	m := S3Model()
	writes := metrics.NewSample()
	reads := metrics.NewSample()
	for i := 0; i < 2000; i++ {
		size := int64(45+r.Intn(510)) << 20 // 45MB (ResNet-18) .. ~550MB (GPT-2)
		writes.Add(m.PutLatency(size, r).Seconds())
		reads.Add(m.GetLatency(size, r).Seconds())
	}
	if p99 := writes.Percentile(99); p99 > 8.0 || p99 < 3.0 {
		t.Errorf("write p99 = %.2fs, want ~7.07s", p99)
	}
	if p99 := reads.Percentile(99); p99 > 4.6 || p99 < 1.8 {
		t.Errorf("read p99 = %.2fs, want ~3.95s", p99)
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	mem := NewMem()
	c := NewCache(mem, 100)
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 0 || used != 80 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, used)
	}
	// Inserting 40 more bytes must evict LRU ("b", since "a" was touched).
	c.Put("c", make([]byte, 40))
	if _, _, used := c.Stats(); used > 100 {
		t.Fatalf("used = %d exceeds capacity", used)
	}
	// "b" now misses in cache but hits the backend.
	if _, err := c.Get("b"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ = c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestCacheOversizedObjectBypasses(t *testing.T) {
	c := NewCache(NewMem(), 10)
	c.Put("big", make([]byte, 100))
	if _, _, used := c.Stats(); used != 0 {
		t.Fatalf("oversized object cached: used=%d", used)
	}
	got, err := c.Get("big")
	if err != nil || len(got) != 100 {
		t.Fatalf("backend read failed: %v", err)
	}
}

func TestCacheDeleteInvalidates(t *testing.T) {
	c := NewCache(NewMem(), 1000)
	c.Put("k", []byte("v"))
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
}

func TestKVNetRoundTrip(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := bytes.Repeat([]byte("x"), 1<<16)
	if err := c.Put("model/ckpt-1", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("model/ckpt-1")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get: %v (len %d)", err, len(got))
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
	c.Put("model/ckpt-2", []byte("y"))
	keys, err := c.List("model/")
	if err != nil || len(keys) != 2 {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := c.Delete("model/ckpt-1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.Delete("model/ckpt-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestKVNetConcurrentClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 50; j++ {
				val := []byte(fmt.Sprintf("v%d-%d", i, j))
				if err := c.Put(key, val); err != nil {
					errs <- err
					return
				}
				got, err := c.Get(key)
				if err != nil || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("get %s: %v", key, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKVNetServerClose(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := c.Put("k", []byte("v")); err == nil {
		t.Error("Put after server close should fail")
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
