package gpu

import (
	"fmt"
	"sync"
	"time"
)

// Pool is one server's set of GPU devices with exclusive allocation.
type Pool struct {
	host string

	mu      sync.Mutex
	free    []int            // free device IDs, LIFO
	holders map[string][]int // holder -> allocated device IDs
	total   int
}

// NewPool returns a pool of n devices (IDs 0..n-1) on the named host.
func NewPool(host string, n int) *Pool {
	p := &Pool{host: host, holders: make(map[string][]int), total: n}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

// Host returns the owning server's name.
func (p *Pool) Host() string { return p.host }

// Total returns the number of devices on the server.
func (p *Pool) Total() int { return p.total }

// Free returns the number of unallocated devices.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// InUse returns the number of allocated devices.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total - len(p.free)
}

// Allocate exclusively binds n devices to holder and returns their IDs —
// the device IDs the Global Scheduler embeds in request metadata.
func (p *Pool) Allocate(holder string, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: non-positive allocation %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.holders[holder]; ok {
		return nil, fmt.Errorf("gpu: %q already holds devices on %s", holder, p.host)
	}
	if n > len(p.free) {
		return nil, fmt.Errorf("gpu: %s has %d free devices, need %d", p.host, len(p.free), n)
	}
	ids := make([]int, n)
	copy(ids, p.free[len(p.free)-n:])
	p.free = p.free[:len(p.free)-n]
	p.holders[holder] = ids
	return ids, nil
}

// Release returns holder's devices to the pool.
func (p *Pool) Release(holder string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids, ok := p.holders[holder]
	if !ok {
		return fmt.Errorf("gpu: %q holds no devices on %s", holder, p.host)
	}
	delete(p.holders, holder)
	p.free = append(p.free, ids...)
	return nil
}

// Holding returns the devices allocated to holder.
func (p *Pool) Holding(holder string) ([]int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids, ok := p.holders[holder]
	if !ok {
		return nil, false
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out, true
}

// TransferModel describes host-memory <-> VRAM copy performance.
type TransferModel struct {
	// Base is the fixed per-transfer setup cost.
	Base time.Duration
	// PerGB is the time to move one gigabyte over PCIe.
	PerGB time.Duration
}

// DefaultTransfer approximates PCIe gen3 x16 (~12 GB/s effective): loading
// a ~1 GB model takes a bit over 100 ms, matching §3.3's "couple hundred
// milliseconds".
func DefaultTransfer() TransferModel {
	return TransferModel{Base: 12 * time.Millisecond, PerGB: 85 * time.Millisecond}
}

// LoadTime returns the time to copy bytes of parameters from host memory
// onto each of n allocated devices. Copies to distinct devices proceed
// concurrently but share host-side bandwidth, so time grows mildly with n.
func (t TransferModel) LoadTime(bytes int64, n int) time.Duration {
	if bytes <= 0 || n <= 0 {
		return 0
	}
	gb := float64(bytes) / float64(1<<30)
	// Host->device copies to k devices contend on the host link: model as
	// 1 + 0.25*(k-1) slowdown.
	contention := 1 + 0.25*float64(n-1)
	return t.Base + time.Duration(gb*contention*float64(t.PerGB))
}

// OffloadTime returns the time to copy bytes back to host memory after a
// task completes (§3.3: results return only after GPU state is copied out).
func (t TransferModel) OffloadTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	gb := float64(bytes) / float64(1<<30)
	return t.Base + time.Duration(gb*float64(t.PerGB))
}
