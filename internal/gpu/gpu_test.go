package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAllocateRelease(t *testing.T) {
	p := NewPool("h1", 8)
	ids, err := p.Allocate("replica-a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 || p.Free() != 4 || p.InUse() != 4 {
		t.Fatalf("ids=%v free=%d inuse=%d", ids, p.Free(), p.InUse())
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 8 || seen[id] {
			t.Fatalf("bad device id %d in %v", id, ids)
		}
		seen[id] = true
	}
	if _, err := p.Allocate("replica-b", 5); err == nil {
		t.Fatal("overallocation must fail")
	}
	if _, err := p.Allocate("replica-a", 1); err == nil {
		t.Fatal("duplicate holder must fail")
	}
	if got, ok := p.Holding("replica-a"); !ok || len(got) != 4 {
		t.Fatalf("Holding = %v,%v", got, ok)
	}
	if err := p.Release("replica-a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Release("replica-a"); err == nil {
		t.Fatal("double release must fail")
	}
	if p.Free() != 8 {
		t.Fatalf("free = %d after release", p.Free())
	}
}

func TestAllocateValidation(t *testing.T) {
	p := NewPool("h", 2)
	if _, err := p.Allocate("x", 0); err == nil {
		t.Error("zero allocation must fail")
	}
	if _, err := p.Allocate("x", -1); err == nil {
		t.Error("negative allocation must fail")
	}
	if p.Host() != "h" || p.Total() != 2 {
		t.Error("accessors")
	}
}

// Property: any sequence of allocations and releases conserves devices:
// free + in-use == total, and no device is held twice.
func TestPoolConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewPool("h", 8)
		holders := map[string]bool{}
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 200; i++ {
			name := names[r.Intn(len(names))]
			if holders[name] {
				if err := p.Release(name); err != nil {
					return false
				}
				delete(holders, name)
			} else {
				n := 1 + r.Intn(4)
				if n <= p.Free() {
					if _, err := p.Allocate(name, n); err != nil {
						return false
					}
					holders[name] = true
				}
			}
			if p.Free()+p.InUse() != 8 {
				return false
			}
			// No device held twice.
			seen := map[int]bool{}
			for h := range holders {
				ids, ok := p.Holding(h)
				if !ok {
					return false
				}
				for _, id := range ids {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransferModel(t *testing.T) {
	m := DefaultTransfer()
	// Loading a ~500MB model onto one GPU should be on the order of
	// "a couple hundred milliseconds" (paper §3.3) or less.
	d := m.LoadTime(500<<20, 1)
	if d <= 0 || d > 500*time.Millisecond {
		t.Errorf("LoadTime(500MB,1) = %v", d)
	}
	// More devices contend: strictly slower.
	if m.LoadTime(500<<20, 4) <= d {
		t.Error("multi-device load should be slower")
	}
	if m.LoadTime(0, 1) != 0 || m.LoadTime(100, 0) != 0 {
		t.Error("degenerate transfers must be free")
	}
	if m.OffloadTime(500<<20) <= 0 || m.OffloadTime(0) != 0 {
		t.Error("offload times")
	}
}
