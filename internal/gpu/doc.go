// Package gpu models per-server GPU devices and NotebookOS's dynamic GPU
// binding (paper §3.3): all of a server's GPUs are visible to every hosted
// replica container, but device IDs are exclusively allocated to one
// replica only while a cell task executes. It also models the host<->VRAM
// transfer cost paid when model parameters are loaded onto the allocated
// devices ("typically only takes up to a couple hundred milliseconds").
package gpu
