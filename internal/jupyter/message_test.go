package jupyter

import (
	"strings"
	"testing"
)

func TestNewAndValidate(t *testing.T) {
	m, err := New(MsgExecuteRequest, "sess-1", "alice", ExecuteRequestContent{Code: "x = 1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Header.MsgType != MsgExecuteRequest || m.Header.Session != "sess-1" {
		t.Fatalf("header = %+v", m.Header)
	}
	if m.Header.Version != ProtocolVersion {
		t.Errorf("version = %q", m.Header.Version)
	}
}

func TestValidateCatchesMissingFields(t *testing.T) {
	var m Message
	if m.Validate() == nil {
		t.Error("empty message must not validate")
	}
	m.Header.MsgID = "x"
	if m.Validate() == nil {
		t.Error("missing type must not validate")
	}
	m.Header.MsgType = MsgStatus
	if m.Validate() == nil {
		t.Error("missing session must not validate")
	}
	m.Header.Session = "s"
	if m.Validate() != nil {
		t.Error("complete header must validate")
	}
}

func TestUniqueMsgIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewMsgID()
		if seen[id] {
			t.Fatalf("duplicate msg id %s", id)
		}
		seen[id] = true
	}
}

func TestChildLinksParent(t *testing.T) {
	req := MustNew(MsgExecuteRequest, "s", "u", ExecuteRequestContent{Code: "y"})
	req.KernelID = "kernel-7"
	reply, err := req.Child(MsgExecuteReply, ExecuteReplyContent{Status: "ok", ExecutionCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reply.ParentHeader == nil || reply.ParentHeader.MsgID != req.Header.MsgID {
		t.Fatal("parent header not linked")
	}
	if reply.KernelID != "kernel-7" {
		t.Fatal("kernel routing not inherited")
	}
	if reply.Header.Session != "s" {
		t.Fatal("session not inherited")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := MustNew(MsgExecuteRequest, "s", "u", ExecuteRequestContent{Code: "a = 1\n"})
	m.KernelID = "k1"
	m = m.WithMeta(MetaGPUDeviceIDs, "[0,1]")
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.MsgID != m.Header.MsgID || back.KernelID != "k1" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Metadata[MetaGPUDeviceIDs] != "[0,1]" {
		t.Fatal("metadata lost")
	}
	c, err := back.ParseExecuteRequest()
	if err != nil || c.Code != "a = 1\n" {
		t.Fatalf("content = %+v, %v", c, err)
	}
	if _, err := Decode([]byte("nope")); err == nil {
		t.Error("bad json must fail")
	}
}

func TestAsYield(t *testing.T) {
	req := MustNew(MsgExecuteRequest, "s", "u", ExecuteRequestContent{Code: "train()"})
	y := req.AsYield(2)
	if y.Header.MsgType != MsgYieldRequest {
		t.Fatalf("type = %s", y.Header.MsgType)
	}
	if y.Metadata[MetaTargetReplica] != "2" {
		t.Fatalf("target = %q", y.Metadata[MetaTargetReplica])
	}
	// Original must be unchanged (WithMeta copies).
	if req.Header.MsgType != MsgExecuteRequest || len(req.Metadata) != 0 {
		t.Fatal("AsYield mutated original")
	}
	// Yield requests still parse as execute content.
	if _, err := y.ParseExecuteRequest(); err != nil {
		t.Fatalf("yield parse: %v", err)
	}
}

func TestParseWrongType(t *testing.T) {
	m := MustNew(MsgStatus, "s", "u", StatusContent{ExecutionState: "busy"})
	if _, err := m.ParseExecuteRequest(); err == nil {
		t.Error("status must not parse as execute_request")
	}
	if _, err := m.ParseExecuteReply(); err == nil {
		t.Error("status must not parse as execute_reply")
	}
}

func TestParseExecuteReply(t *testing.T) {
	m := MustNew(MsgExecuteReply, "s", "u", ExecuteReplyContent{
		Status: "error", EName: "NameError", EValue: "x is not defined", Replica: 2, Yielded: false,
	})
	c, err := m.ParseExecuteReply()
	if err != nil {
		t.Fatal(err)
	}
	if c.Status != "error" || c.EName != "NameError" || c.Replica != 2 {
		t.Fatalf("content = %+v", c)
	}
}

func TestNewRejectsUnmarshalable(t *testing.T) {
	if _, err := New(MsgStatus, "s", "u", make(chan int)); err == nil {
		t.Error("unmarshalable content must fail")
	}
	if !strings.Contains(MsgYieldRequest, "yield") {
		t.Error("yield constant sanity")
	}
}
