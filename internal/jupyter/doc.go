// Package jupyter implements the subset of the IPython messaging protocol
// NotebookOS uses (paper §4): execute_request/execute_reply exchanges,
// NotebookOS's yield_request conversion (§3.2.2), kernel lifecycle and
// status messages. Messages follow the Jupyter envelope structure (header,
// parent header, metadata, content) so any Jupyter-style client maps onto
// them directly.
package jupyter
