package jupyter

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// Message type constants from the IPython wire protocol, plus the
// NotebookOS-specific yield_request (an execute_request converted by the
// Global Scheduler to tell a replica not to contend for execution).
const (
	MsgExecuteRequest    = "execute_request"
	MsgYieldRequest      = "yield_request"
	MsgExecuteReply      = "execute_reply"
	MsgStatus            = "status"
	MsgKernelInfoRequest = "kernel_info_request"
	MsgKernelInfoReply   = "kernel_info_reply"
	MsgShutdownRequest   = "shutdown_request"
	MsgShutdownReply     = "shutdown_reply"
	MsgStreamOutput      = "stream"
)

// ProtocolVersion is the advertised protocol version.
const ProtocolVersion = "5.3"

// Header identifies a message and its session.
type Header struct {
	MsgID    string    `json:"msg_id"`
	MsgType  string    `json:"msg_type"`
	Session  string    `json:"session"`
	Username string    `json:"username"`
	Date     time.Time `json:"date"`
	Version  string    `json:"version"`
}

// Message is a Jupyter protocol envelope.
type Message struct {
	Header       Header            `json:"header"`
	ParentHeader *Header           `json:"parent_header,omitempty"`
	Metadata     map[string]string `json:"metadata,omitempty"`
	Content      json.RawMessage   `json:"content"`
	// KernelID is the routing key NotebookOS's Global Scheduler uses to
	// deliver the message to the right distributed kernel's replicas.
	KernelID string `json:"kernel_id,omitempty"`
}

// Metadata keys NotebookOS embeds in requests (paper §3.3: the Global
// Scheduler embeds allocated GPU device IDs in request metadata).
const (
	MetaGPUDeviceIDs   = "gpu_device_ids"
	MetaTargetReplica  = "target_replica"
	MetaResourceReq    = "resource_request"
	MetaElectionTermID = "election_term"
)

var msgCounter atomic.Int64

// NewMsgID returns a unique message ID.
func NewMsgID() string {
	return fmt.Sprintf("msg-%d-%d", time.Now().UnixNano(), msgCounter.Add(1))
}

// New creates a message of the given type in the given session.
func New(msgType, session, username string, content any) (Message, error) {
	raw, err := json.Marshal(content)
	if err != nil {
		return Message{}, fmt.Errorf("jupyter: marshal content: %w", err)
	}
	return Message{
		Header: Header{
			MsgID:    NewMsgID(),
			MsgType:  msgType,
			Session:  session,
			Username: username,
			Date:     time.Now().UTC(),
			Version:  ProtocolVersion,
		},
		Metadata: map[string]string{},
		Content:  raw,
	}, nil
}

// MustNew is New but panics on marshal failure; for static content types.
func MustNew(msgType, session, username string, content any) Message {
	m, err := New(msgType, session, username, content)
	if err != nil {
		panic(err)
	}
	return m
}

// Child creates a reply-style message whose parent header is m's header
// and which inherits m's session and kernel routing.
func (m Message) Child(msgType string, content any) (Message, error) {
	c, err := New(msgType, m.Header.Session, m.Header.Username, content)
	if err != nil {
		return Message{}, err
	}
	parent := m.Header
	c.ParentHeader = &parent
	c.KernelID = m.KernelID
	return c, nil
}

// WithMeta returns a copy of m with the metadata key set.
func (m Message) WithMeta(key, value string) Message {
	meta := make(map[string]string, len(m.Metadata)+1)
	for k, v := range m.Metadata {
		meta[k] = v
	}
	meta[key] = value
	m.Metadata = meta
	return m
}

// AsYield converts an execute_request into a yield_request targeted at the
// designated executor replica (paper §3.2.2: "it will convert the
// execute_request message into a yield_request").
func (m Message) AsYield(targetReplica int) Message {
	out := m
	out.Header.MsgType = MsgYieldRequest
	out = out.WithMeta(MetaTargetReplica, fmt.Sprint(targetReplica))
	return out
}

// Encode serializes the message.
func (m Message) Encode() ([]byte, error) { return json.Marshal(m) }

// Decode parses a message.
func Decode(data []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("jupyter: decode: %w", err)
	}
	return m, nil
}

// Validate checks required envelope fields.
func (m Message) Validate() error {
	switch {
	case m.Header.MsgID == "":
		return fmt.Errorf("jupyter: missing msg_id")
	case m.Header.MsgType == "":
		return fmt.Errorf("jupyter: missing msg_type")
	case m.Header.Session == "":
		return fmt.Errorf("jupyter: missing session")
	}
	return nil
}

// ExecuteRequestContent is the content of execute_request / yield_request.
type ExecuteRequestContent struct {
	Code         string `json:"code"`
	Silent       bool   `json:"silent"`
	StoreHistory bool   `json:"store_history"`
}

// ExecuteReplyContent is the content of execute_reply.
type ExecuteReplyContent struct {
	Status         string `json:"status"` // "ok" or "error"
	ExecutionCount int    `json:"execution_count"`
	// Output carries captured stdout (NotebookOS merges replica replies,
	// so a single field suffices for the prototype).
	Output string `json:"output,omitempty"`
	// EName/EValue describe the error when Status == "error".
	EName  string `json:"ename,omitempty"`
	EValue string `json:"evalue,omitempty"`
	// Replica identifies which kernel replica executed the code.
	Replica int `json:"replica,omitempty"`
	// Yielded marks replies from standby replicas that did not execute.
	Yielded bool `json:"yielded,omitempty"`
}

// StatusContent is the content of status messages.
type StatusContent struct {
	ExecutionState string `json:"execution_state"` // "busy", "idle", "starting"
}

// KernelInfoReplyContent describes the kernel implementation.
type KernelInfoReplyContent struct {
	Implementation string `json:"implementation"`
	Banner         string `json:"banner"`
	LanguageName   string `json:"language_name"`
}

// ShutdownContent is the content of shutdown request/reply.
type ShutdownContent struct {
	Restart bool `json:"restart"`
}

// ParseExecuteRequest extracts execute/yield request content.
func (m Message) ParseExecuteRequest() (ExecuteRequestContent, error) {
	var c ExecuteRequestContent
	if m.Header.MsgType != MsgExecuteRequest && m.Header.MsgType != MsgYieldRequest {
		return c, fmt.Errorf("jupyter: %s is not an execute/yield request", m.Header.MsgType)
	}
	if err := json.Unmarshal(m.Content, &c); err != nil {
		return c, fmt.Errorf("jupyter: parse execute_request: %w", err)
	}
	return c, nil
}

// ParseExecuteReply extracts execute_reply content.
func (m Message) ParseExecuteReply() (ExecuteReplyContent, error) {
	var c ExecuteReplyContent
	if m.Header.MsgType != MsgExecuteReply {
		return c, fmt.Errorf("jupyter: %s is not an execute_reply", m.Header.MsgType)
	}
	if err := json.Unmarshal(m.Content, &c); err != nil {
		return c, fmt.Errorf("jupyter: parse execute_reply: %w", err)
	}
	return c, nil
}
