package container

import (
	"errors"
	"testing"
	"time"

	"notebookos/internal/simclock"
)

func fastProv() *Provisioner {
	return NewProvisioner(simclock.Real{}, FastLatency(), 1)
}

func TestContainerLifecycle(t *testing.T) {
	p := fastProv()
	c := p.Provision("h1")
	if c.State() != Warm {
		t.Fatalf("state = %v, want warm", c.State())
	}
	if c.Host != "h1" || c.ID == "" {
		t.Fatalf("container = %+v", c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Running {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Run(); err == nil {
		t.Fatal("Run from Running must fail")
	}
	c.Terminate()
	if c.State() != Terminated {
		t.Fatalf("state = %v", c.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Provisioning: "provisioning", Warm: "warm", Running: "running", Terminated: "terminated",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should render")
	}
}

func TestProvisionerLatencyOnVirtualClock(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	p := NewProvisioner(clock, DefaultLatency(), 7)
	done := make(chan *Container, 1)
	go func() { done <- p.Provision("h1") }()
	// Cold start is 18-45s: nothing before 18s of virtual time.
	deadline := time.Now().Add(2 * time.Second)
	for clock.PendingTimers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("provision returned before virtual time advanced")
	default:
	}
	clock.Advance(45 * time.Second)
	select {
	case c := <-done:
		if c.State() != Warm {
			t.Fatalf("state = %v", c.State())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("provision never completed")
	}
	cold, warm := p.Stats()
	if cold != 1 || warm != 0 {
		t.Fatalf("stats = %d/%d", cold, warm)
	}
}

func TestPrewarmerTakeAndRefill(t *testing.T) {
	p := fastProv()
	pw := NewPrewarmer(p, FixedPool{N: 2})
	pw.WarmHost("h1")
	if got := pw.Available("h1"); got != 2 {
		t.Fatalf("available = %d", got)
	}
	c, err := pw.Take("h1")
	if err != nil {
		t.Fatal(err)
	}
	if !c.WarmStart() {
		t.Error("taken container should be marked warm-start")
	}
	// Background refill restores the target size.
	deadline := time.Now().Add(2 * time.Second)
	for pw.Available("h1") < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pw.Available("h1"); got != 2 {
		t.Fatalf("available after refill = %d", got)
	}
}

func TestPrewarmerEmptyHost(t *testing.T) {
	pw := NewPrewarmer(fastProv(), FixedPool{N: 1})
	if _, err := pw.Take("unknown-host"); !errors.Is(err, ErrNoWarmContainer) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrewarmerReturn(t *testing.T) {
	p := fastProv()
	pw := NewPrewarmer(p, FixedPool{N: 0}) // no auto-refill: LCP-style manual pool
	c := p.Provision("h1")
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	pw.Return(c)
	if c.State() != Warm {
		t.Fatalf("returned container state = %v", c.State())
	}
	got, err := pw.Take("h1")
	if err != nil || got != c {
		t.Fatalf("Take = %v, %v", got, err)
	}
}

func TestPrewarmerNoOverRefill(t *testing.T) {
	p := fastProv()
	pw := NewPrewarmer(p, FixedPool{N: 3})
	pw.WarmHost("h1")
	// Take all three quickly; refills must converge to exactly 3.
	for i := 0; i < 3; i++ {
		if _, err := pw.Take("h1"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for pw.Available("h1") < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Allow any in-flight refills to land, then confirm no overshoot.
	time.Sleep(50 * time.Millisecond)
	if got := pw.Available("h1"); got != 3 {
		t.Fatalf("available = %d, want exactly 3", got)
	}
}
