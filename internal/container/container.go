package container

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"notebookos/internal/simclock"
)

// State is a container's lifecycle state.
type State int

// Container lifecycle states.
const (
	// Provisioning: the container image is being pulled/started.
	Provisioning State = iota
	// Warm: runtime initialized (Python + common dependencies preloaded),
	// waiting in the pre-warm pool.
	Warm
	// Running: hosting a kernel replica.
	Running
	// Terminated: stopped; terminal state.
	Terminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Warm:
		return "warm"
	case Running:
		return "running"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Container is one kernel replica container.
type Container struct {
	ID   string
	Host string

	mu        sync.Mutex
	state     State
	createdAt time.Time
	// warmStart records whether this container came from the pre-warm
	// pool, for metrics.
	warmStart bool
}

// State returns the current lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// WarmStart reports whether the container was served from the warm pool.
func (c *Container) WarmStart() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.warmStart
}

// CreatedAt returns the provisioning completion time.
func (c *Container) CreatedAt() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.createdAt
}

func (c *Container) setState(s State) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// Run transitions Warm -> Running.
func (c *Container) Run() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Warm {
		return fmt.Errorf("container %s: cannot run from state %s", c.ID, c.state)
	}
	c.state = Running
	return nil
}

// Terminate moves the container to Terminated from any state.
func (c *Container) Terminate() {
	c.setState(Terminated)
}

// LatencyModel samples provisioning latencies. Defaults follow the paper's
// observations: on-demand (cold) Docker container provisioning takes tens
// of seconds (the long tails of Figs. 9a and 17), while a pre-warmed
// container only pays a sub-second attach cost.
type LatencyModel struct {
	// ColdStart samples a full container provisioning delay.
	ColdStart func(r *rand.Rand) time.Duration
	// WarmAttach samples the cost of binding a pre-warmed container.
	WarmAttach func(r *rand.Rand) time.Duration
}

// DefaultLatency returns the production-calibrated model.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		ColdStart: func(r *rand.Rand) time.Duration {
			// 18–45 s uniform: image pull + runtime init + dependency load.
			return 18*time.Second + time.Duration(r.Int63n(int64(27*time.Second)))
		},
		WarmAttach: func(r *rand.Rand) time.Duration {
			// 80–400 ms.
			return 80*time.Millisecond + time.Duration(r.Int63n(int64(320*time.Millisecond)))
		},
	}
}

// FastLatency returns a millisecond-scale model for tests and examples.
func FastLatency() LatencyModel {
	return LatencyModel{
		ColdStart:  func(*rand.Rand) time.Duration { return 5 * time.Millisecond },
		WarmAttach: func(*rand.Rand) time.Duration { return time.Millisecond },
	}
}

// Provisioner creates containers with modeled latency.
type Provisioner struct {
	clock   simclock.Clock
	latency LatencyModel

	mu      sync.Mutex
	rng     *rand.Rand
	counter int64
	// metrics
	coldStarts int64
	warmTakes  int64
}

// NewProvisioner returns a provisioner using clock for delays.
func NewProvisioner(clock simclock.Clock, latency LatencyModel, seed int64) *Provisioner {
	return &Provisioner{clock: clock, latency: latency, rng: rand.New(rand.NewSource(seed))}
}

// Provision cold-starts a new Warm container on host, blocking for the
// modeled cold-start latency.
func (p *Provisioner) Provision(host string) *Container {
	p.mu.Lock()
	p.counter++
	p.coldStarts++
	id := fmt.Sprintf("ctr-%s-%d", host, p.counter)
	delay := p.latency.ColdStart(p.rng)
	p.mu.Unlock()

	p.clock.Sleep(delay)
	c := &Container{ID: id, Host: host, state: Warm, createdAt: p.clock.Now()}
	return c
}

// Attach pays the warm-attach latency for a pooled container.
func (p *Provisioner) Attach(c *Container) {
	p.mu.Lock()
	p.warmTakes++
	delay := p.latency.WarmAttach(p.rng)
	p.mu.Unlock()
	p.clock.Sleep(delay)
	c.mu.Lock()
	c.warmStart = true
	c.mu.Unlock()
}

// Stats returns (cold starts, warm takes).
func (p *Provisioner) Stats() (cold, warm int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.coldStarts, p.warmTakes
}

// PoolPolicy decides how many warm containers each host should hold. The
// paper makes both the initial-pool and maintenance policies pluggable.
type PoolPolicy interface {
	// InitialSize is the number of containers pre-warmed when a host joins.
	InitialSize(host string) int
	// TargetSize is the pool size maintained after takes.
	TargetSize(host string) int
}

// FixedPool keeps N warm containers per host — the paper's default policy
// ("the Container Prewarmer ensures that each server has a specified,
// minimum number of pre-warmed containers available").
type FixedPool struct{ N int }

// InitialSize implements PoolPolicy.
func (f FixedPool) InitialSize(string) int { return f.N }

// TargetSize implements PoolPolicy.
func (f FixedPool) TargetSize(string) int { return f.N }

// Prewarmer maintains per-host pools of warm containers.
type Prewarmer struct {
	prov   *Provisioner
	policy PoolPolicy

	mu    sync.Mutex
	pools map[string][]*Container
	// refilling tracks hosts with an async refill in flight so concurrent
	// takes do not over-provision.
	refilling map[string]int
}

// NewPrewarmer returns a prewarmer over the given provisioner and policy.
func NewPrewarmer(prov *Provisioner, policy PoolPolicy) *Prewarmer {
	return &Prewarmer{
		prov:      prov,
		policy:    policy,
		pools:     make(map[string][]*Container),
		refilling: make(map[string]int),
	}
}

// ErrNoWarmContainer is returned by Take when the host's pool is empty.
var ErrNoWarmContainer = errors.New("container: no pre-warmed container available")

// WarmHost synchronously fills host's pool to the policy's initial size.
func (pw *Prewarmer) WarmHost(host string) {
	n := pw.policy.InitialSize(host)
	for i := 0; i < n; i++ {
		c := pw.prov.Provision(host)
		pw.mu.Lock()
		pw.pools[host] = append(pw.pools[host], c)
		pw.mu.Unlock()
	}
}

// Take removes a warm container from host's pool, paying the warm-attach
// latency, and triggers an asynchronous refill toward the target size.
func (pw *Prewarmer) Take(host string) (*Container, error) {
	pw.mu.Lock()
	pool := pw.pools[host]
	if len(pool) == 0 {
		pw.mu.Unlock()
		return nil, fmt.Errorf("%w on host %s", ErrNoWarmContainer, host)
	}
	c := pool[len(pool)-1]
	pw.pools[host] = pool[:len(pool)-1]
	deficit := pw.policy.TargetSize(host) - len(pw.pools[host]) - pw.refilling[host]
	if deficit > 0 {
		pw.refilling[host] += deficit
	}
	pw.mu.Unlock()

	for i := 0; i < deficit; i++ {
		go func() {
			nc := pw.prov.Provision(host)
			pw.mu.Lock()
			pw.pools[host] = append(pw.pools[host], nc)
			pw.refilling[host]--
			pw.mu.Unlock()
		}()
	}
	pw.prov.Attach(c)
	return c, nil
}

// Return places a container back in its host's pool (NotebookOS (LCP)
// baseline behaviour: "the container is returned to the pool rather than
// being terminated").
func (pw *Prewarmer) Return(c *Container) {
	c.setState(Warm)
	pw.mu.Lock()
	pw.pools[c.Host] = append(pw.pools[c.Host], c)
	pw.mu.Unlock()
}

// Available returns the number of warm containers pooled on host.
func (pw *Prewarmer) Available(host string) int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return len(pw.pools[host])
}
