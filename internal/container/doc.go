// Package container models the container runtime beneath NotebookOS: the
// kernel replica containers Local Schedulers provision (paper §3.2.1), the
// cold-start/warm-start latency gap that dominates the Batch baseline's
// interactivity delays (Figs. 9, 16–19), and the pre-warmed container pool
// maintained by the Container Prewarmer (§3.2.3) with pluggable policies.
package container
