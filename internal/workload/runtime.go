package workload

import (
	"fmt"
	"math"
	"time"

	"notebookos/internal/gpu"
	"notebookos/internal/kernel"
	"notebookos/internal/pynb"
	"notebookos/internal/simclock"
)

// RuntimeOptions tunes the notebook runtime installed into kernels.
type RuntimeOptions struct {
	// Clock is used by train() to occupy simulated GPU time.
	Clock simclock.Clock
	// TimeScale compresses training durations: a train() of `seconds=s`
	// occupies s*TimeScale of clock time. Tests and examples use small
	// scales so real deployments stay responsive.
	TimeScale float64
	// Transfer models host<->VRAM parameter movement (§3.3).
	Transfer gpu.TransferModel
}

// Install adds the NotebookOS notebook builtins to a kernel replica's
// interpreter. It has the signature of kernel.Config.InstallRuntime, so a
// scheduler configures kernels with:
//
//	InstallRuntime: workload.NewRuntime(opts).Install
type Runtime struct {
	opts RuntimeOptions
}

// NewRuntime returns a runtime installer.
func NewRuntime(opts RuntimeOptions) *Runtime {
	if opts.Clock == nil {
		opts.Clock = simclock.Real{}
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Transfer.PerGB == 0 {
		opts.Transfer = gpu.DefaultTransfer()
	}
	return &Runtime{opts: opts}
}

// Install implements kernel.Config.InstallRuntime.
func (rt *Runtime) Install(in *pynb.Interp, r *kernel.Replica) {
	in.RegisterBuiltin("load_dataset", func(c *pynb.CallCtx) (pynb.Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		name, ok := v.(pynb.Str)
		if !ok {
			return nil, fmt.Errorf("load_dataset expects a dataset name string")
		}
		ds, ok := DatasetByName(string(name))
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		obj := pynb.NewObject("Dataset", ds.SizeBytes)
		obj.Fields["name"] = pynb.Str(ds.Name)
		obj.Fields["size_bytes"] = pynb.Int(ds.SizeBytes)
		obj.Fields["domain"] = pynb.Str(string(ds.Domain))
		return obj, nil
	})

	in.RegisterBuiltin("create_model", func(c *pynb.CallCtx) (pynb.Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		name, ok := v.(pynb.Str)
		if !ok {
			return nil, fmt.Errorf("create_model expects a model name string")
		}
		m, ok := ModelByName(string(name))
		if !ok {
			return nil, fmt.Errorf("unknown model %q", name)
		}
		obj := pynb.NewObject("Model", m.ParamBytes)
		obj.Fields["name"] = pynb.Str(m.Name)
		obj.Fields["param_bytes"] = pynb.Int(m.ParamBytes)
		obj.Fields["epochs_trained"] = pynb.Int(0)
		obj.Fields["loss"] = pynb.Float(math.Inf(1))
		return obj, nil
	})

	// train(model, dataset, epochs=1, gpus=1, seconds=...) performs one
	// IDLT task: it loads parameters onto the allocated GPUs, occupies
	// them for the training duration, copies state back to host memory,
	// and returns a result object (paper §3.3's execution flow).
	in.RegisterBuiltin("train", func(c *pynb.CallCtx) (pynb.Value, error) {
		mv, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		model, ok := mv.(*pynb.Object)
		if !ok || model.Class != "Model" {
			return nil, fmt.Errorf("train expects a Model as first argument")
		}
		dv, err := c.Arg(1)
		if err != nil {
			return nil, err
		}
		dataset, ok := dv.(*pynb.Object)
		if !ok || dataset.Class != "Dataset" {
			return nil, fmt.Errorf("train expects a Dataset as second argument")
		}
		epochs, err := c.KwInt("epochs", 1)
		if err != nil {
			return nil, err
		}
		gpus, err := c.KwInt("gpus", 1)
		if err != nil {
			return nil, err
		}
		seconds, err := c.KwFloat("seconds", 0)
		if err != nil {
			return nil, err
		}
		if epochs < 1 || gpus < 1 {
			return nil, fmt.Errorf("train requires epochs >= 1 and gpus >= 1")
		}
		if seconds <= 0 {
			// Duration model: proportional to dataset size and epochs,
			// inversely proportional to GPUs.
			gb := float64(dataset.Payload) / float64(1<<30)
			seconds = 30 * gb * float64(epochs) / float64(gpus)
		}

		// Parameter load onto each allocated device, then training time,
		// then copy back to host memory before returning (§3.3).
		load := rt.opts.Transfer.LoadTime(model.Payload, int(gpus))
		offload := rt.opts.Transfer.OffloadTime(model.Payload)
		trainDur := scaleSeconds(seconds, rt.opts.TimeScale)
		rt.opts.Clock.Sleep(load + trainDur + offload)

		prevEpochs := int64(0)
		if e, ok := model.Fields["epochs_trained"].(pynb.Int); ok {
			prevEpochs = int64(e)
		}
		model.Fields["epochs_trained"] = pynb.Int(prevEpochs + epochs)
		loss := 2.0 / math.Sqrt(float64(prevEpochs+epochs))
		model.Fields["loss"] = pynb.Float(loss)

		res := pynb.NewObject("TrainResult", 0)
		res.Fields["loss"] = pynb.Float(loss)
		res.Fields["epochs"] = pynb.Int(epochs)
		res.Fields["gpus"] = pynb.Int(gpus)
		res.Fields["seconds"] = pynb.Float(seconds)
		return res, nil
	})

	// evaluate(model, dataset) is a short CPU/GPU-light task.
	in.RegisterBuiltin("evaluate", func(c *pynb.CallCtx) (pynb.Value, error) {
		mv, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		model, ok := mv.(*pynb.Object)
		if !ok || model.Class != "Model" {
			return nil, fmt.Errorf("evaluate expects a Model")
		}
		loss := pynb.Float(math.Inf(1))
		if l, ok := model.Fields["loss"].(pynb.Float); ok {
			loss = l
		}
		res := pynb.NewObject("EvalResult", 0)
		res.Fields["loss"] = loss
		res.Fields["accuracy"] = pynb.Float(math.Max(0, 1-float64(loss)/2))
		return res, nil
	})
}

func scaleSeconds(s, scale float64) time.Duration {
	return time.Duration(s * scale * float64(time.Second))
}
