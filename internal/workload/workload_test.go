package workload

import (
	"math/rand"
	"strings"
	"testing"

	"notebookos/internal/pynb"
	"notebookos/internal/simclock"
)

func TestCatalogIntegrity(t *testing.T) {
	if len(Models()) != 6 || len(Datasets()) != 6 {
		t.Fatalf("catalog sizes: %d models, %d datasets (Table 1 has 6+6)",
			len(Models()), len(Datasets()))
	}
	for _, m := range Models() {
		if m.Name == "" || m.ParamBytes <= 0 || m.Domain == "" {
			t.Errorf("bad model %+v", m)
		}
	}
	for _, d := range Datasets() {
		if d.Name == "" || d.SizeBytes <= 0 || d.Domain == "" {
			t.Errorf("bad dataset %+v", d)
		}
	}
	if _, ok := ModelByName("resnet18"); !ok {
		t.Error("resnet18 missing")
	}
	if _, ok := ModelByName("nonexistent"); ok {
		t.Error("bogus model found")
	}
	if _, ok := DatasetByName("cifar10"); !ok {
		t.Error("cifar10 missing")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Error("bogus dataset found")
	}
}

func TestAssignIsDomainConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := Assign(r)
		if a.Model.Domain != a.Domain || a.Dataset.Domain != a.Domain {
			t.Fatalf("cross-domain assignment: %+v", a)
		}
	}
}

func TestTrainingCellParses(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := Assign(r)
	cell := a.TrainingCell(2, 4, 30)
	if _, err := pynb.Parse(cell); err != nil {
		t.Fatalf("generated cell does not parse: %v\n%s", err, cell)
	}
	if !strings.Contains(cell, a.Model.Name) || !strings.Contains(cell, a.Dataset.Name) {
		t.Fatalf("cell missing assignment: %s", cell)
	}
}

func newRuntimeInterp(t *testing.T) *pynb.Interp {
	t.Helper()
	in := pynb.New()
	rt := NewRuntime(RuntimeOptions{Clock: simclock.Real{}, TimeScale: 1e-6})
	rt.Install(in, nil)
	return in
}

func TestRuntimeTrainFlow(t *testing.T) {
	in := newRuntimeInterp(t)
	out, err := in.Run(`
model = create_model("bert")
data = load_dataset("imdb")
r1 = train(model, data, epochs=1, gpus=2, seconds=10)
r2 = train(model, data, epochs=3, gpus=2, seconds=10)
print(model.epochs_trained)
print(r2.loss < r1.loss)
e = evaluate(model, data)
print(e.accuracy > 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "True") {
		t.Fatalf("output = %q", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	in := newRuntimeInterp(t)
	bad := []string{
		"m = create_model(\"not-a-model\")\n",
		"d = load_dataset(\"not-a-dataset\")\n",
		"m = create_model(5)\n",
		"d = load_dataset(5)\n",
		"r = train(1, 2)\n",
		"m = create_model(\"bert\")\nr = train(m, m)\n",
		"m = create_model(\"bert\")\nd = load_dataset(\"imdb\")\nr = train(m, d, epochs=0)\n",
		"m = create_model(\"bert\")\nd = load_dataset(\"imdb\")\nr = train(m, d, gpus=0)\n",
		"e = evaluate(5, 6)\n",
	}
	for _, src := range bad {
		if _, err := in.Run(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestTrainDefaultDuration(t *testing.T) {
	in := newRuntimeInterp(t)
	// No seconds kwarg: duration derived from dataset size/epochs/gpus.
	out, err := in.Run(`
m = create_model("resnet18")
d = load_dataset("cifar10")
r = train(m, d, epochs=1, gpus=1)
print(r.seconds > 0)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "True") {
		t.Fatalf("output = %q", out)
	}
}

func TestModelIsLargeObject(t *testing.T) {
	in := newRuntimeInterp(t)
	if _, err := in.Run("m = create_model(\"vgg16\")\n"); err != nil {
		t.Fatal(err)
	}
	m := in.Globals["m"]
	if m.SizeBytes() < 500<<20 {
		t.Fatalf("vgg16 object size = %d, want >500MB (drives large-object path)", m.SizeBytes())
	}
}
