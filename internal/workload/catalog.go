package workload

import (
	"fmt"
	"math/rand"
)

// Domain is an application domain from Table 1.
type Domain string

// Application domains of Table 1.
const (
	ComputerVision    Domain = "computer-vision"
	NLP               Domain = "natural-language-processing"
	SpeechRecognition Domain = "speech-recognition"
)

// Model is a deep learning model with its approximate parameter footprint.
type Model struct {
	Name string
	// ParamBytes is the serialized parameter size (fp32).
	ParamBytes int64
	Domain     Domain
}

// Dataset is a training dataset with its approximate on-disk size.
type Dataset struct {
	Name      string
	SizeBytes int64
	Domain    Domain
}

// Models returns the Table 1 models with representative sizes.
func Models() []Model {
	return []Model{
		{Name: "vgg16", ParamBytes: 528 << 20, Domain: ComputerVision},
		{Name: "resnet18", ParamBytes: 45 << 20, Domain: ComputerVision},
		{Name: "inception_v3", ParamBytes: 92 << 20, Domain: ComputerVision},
		{Name: "bert", ParamBytes: 440 << 20, Domain: NLP},
		{Name: "gpt2", ParamBytes: 548 << 20, Domain: NLP},
		{Name: "deepspeech2", ParamBytes: 349 << 20, Domain: SpeechRecognition},
	}
}

// Datasets returns the Table 1 datasets with representative sizes.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "cifar10", SizeBytes: 163 << 20, Domain: ComputerVision},
		{Name: "cifar100", SizeBytes: 161 << 20, Domain: ComputerVision},
		{Name: "tiny-imagenet", SizeBytes: 237 << 20, Domain: ComputerVision},
		{Name: "imdb", SizeBytes: 80 << 20, Domain: NLP},
		{Name: "cola", SizeBytes: 1 << 20, Domain: NLP},
		{Name: "librispeech", SizeBytes: 60 << 30, Domain: SpeechRecognition},
	}
}

// ModelByName finds a model in the catalog.
func ModelByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// DatasetByName finds a dataset in the catalog.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Assignment pairs a model and dataset from the same domain, as the
// paper's workload driver does ("randomly assigns each client an
// application domain, after which a random dataset and model are
// assigned").
type Assignment struct {
	Domain  Domain
	Model   Model
	Dataset Dataset
}

// Assign draws a random domain-consistent model/dataset pair.
func Assign(r *rand.Rand) Assignment {
	domains := []Domain{ComputerVision, NLP, SpeechRecognition}
	d := domains[r.Intn(len(domains))]
	var models []Model
	for _, m := range Models() {
		if m.Domain == d {
			models = append(models, m)
		}
	}
	var datasets []Dataset
	for _, ds := range Datasets() {
		if ds.Domain == d {
			datasets = append(datasets, ds)
		}
	}
	return Assignment{
		Domain:  d,
		Model:   models[r.Intn(len(models))],
		Dataset: datasets[r.Intn(len(datasets))],
	}
}

// TrainingCell renders the pynb cell a workload client submits for one
// training task.
func (a Assignment) TrainingCell(epochs int, gpus int, seconds float64) string {
	return fmt.Sprintf(
		"model = create_model(%q)\ndata = load_dataset(%q)\nresult = train(model, data, epochs=%d, gpus=%d, seconds=%g)\nprint(result.loss)\n",
		a.Model.Name, a.Dataset.Name, epochs, gpus, seconds)
}
