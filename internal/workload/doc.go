// Package workload provides the evaluation workload substrate: the model
// and dataset catalog of the paper's Table 1, and the notebook runtime
// builtins (load_dataset, create_model, train, ...) that cell code run on
// NotebookOS kernels uses to perform simulated IDLT tasks.
package workload
