// Package des implements a deterministic discrete-event simulation engine.
// The simulator in internal/sim uses it to replay multi-day IDLT workloads
// (paper §5.5 simulates the full 90-day trace) in milliseconds of wall time.
//
// An Engine is single-threaded by design: events execute in (time, sequence)
// order on the caller's goroutine, which makes simulations reproducible
// bit-for-bit for a fixed seed.
//
// Determinism rules every client must follow:
//
//   - All randomness is drawn from seeded rand.Rand instances owned by the
//     simulation, never from global or time-derived sources.
//   - Events scheduled for the same virtual instant run in Schedule/Defer
//     call order (the engine breaks time ties by a monotonically increasing
//     sequence number), so scheduling order is part of the contract.
//   - Event handlers must not depend on host-map iteration order, wall-clock
//     time, or goroutine interleaving; one Engine is never shared between
//     goroutines.
//
// Internally the ready queue is a hand-rolled 4-ary heap keyed by an
// int64-nanosecond (time, sequence) pair; Cancel reaps via a maintained
// heap index, and no-handle Schedule/Defer recycle event allocations from
// a pool refilled in geometrically growing arena blocks (O(log peak)
// allocations for any pending-event peak). Engine.Reserve pre-sizes both
// the heap and the arena from a caller's peak hint — simulations that
// schedule a whole trace up front pass one event per session boundary and
// task arrival.
package des
