package des

import (
	"time"
)

// Handler is the work executed when an event fires.
type Handler func()

// Runner is the allocation-lean alternative to Handler: an event can carry
// a pre-built state object whose Fire method advances it. Scheduling a
// Handler closure allocates the closure plus its captured variables every
// time; a Runner is typically a pointer to a struct that lives for a whole
// task and is re-scheduled phase after phase, so a multi-phase task costs
// one allocation total. The interface value itself is pointer-shaped, so
// storing it in the pooled Event allocates nothing.
type Runner interface {
	Fire()
}

// Event is a scheduled occurrence. Cancel removes a not-yet-fired event
// from the engine's queue; cancelling a fired event is a no-op.
type Event struct {
	at time.Time
	// atns caches at.UnixNano(): heap comparisons are the engine's hottest
	// operation and integer compares beat time.Time's wall/monotonic
	// decoding. Simulation timestamps stay well within int64-nanosecond
	// range (years 1678-2262).
	atns     int64
	seq      int64
	fn       Handler
	run      Runner
	canceled bool
	pooled   bool
	index    int // heap index, -1 once popped
	eng      *Engine
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() time.Time { return e.at }

// Cancel prevents the event from firing and immediately reaps it from the
// engine's queue (via the maintained heap index), so long simulations do
// not accumulate dead heap entries.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 && e.eng != nil {
		e.eng.remove(e.index)
		e.fn = nil
		e.run = nil
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event executor with a virtual clock.
type Engine struct {
	now     time.Time
	pq      eventHeap
	seq     int64
	steps   int64
	stopped bool
	// free recycles events scheduled through Schedule/Defer, which hand
	// out no handle and therefore cannot be retained or cancelled by the
	// caller. The simulator's hot path schedules hundreds of thousands of
	// such fire-and-forget events per run. When the list runs dry it is
	// refilled from a freshly allocated block (geometrically growing, see
	// blockSize) rather than one Event at a time, so a long run costs
	// O(log peak) event allocations instead of O(peak).
	free []*Event
	// blockSize is the size of the next arena block handed to free.
	blockSize int
}

// New returns an engine whose clock starts at start.
func New(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Reserve pre-sizes the engine for an expected peak of n pending events:
// the heap gets capacity n and the pooled-event arena is pre-filled to n
// events in a single block. Simulations that schedule a whole trace up
// front (one event per session boundary and task arrival) call it once, so
// neither the heap nor the arena pays a geometric growth ladder.
func (e *Engine) Reserve(n int) {
	if cap(e.pq) < n {
		pq := make(eventHeap, len(e.pq), n)
		copy(pq, e.pq)
		e.pq = pq
	}
	if extra := n - len(e.free); extra > 0 {
		block := make([]Event, extra)
		if cap(e.free) < n {
			free := make([]*Event, len(e.free), n)
			copy(free, e.free)
			e.free = free
		}
		for i := range block {
			block[i].eng = e
			e.free = append(e.free, &block[i])
		}
	}
}

// refill hands a new arena block to the free list. Pooled events never
// outlive the engine, so block backing arrays are simply retained until
// the engine itself is collected.
func (e *Engine) refill() {
	if e.blockSize < 64 {
		e.blockSize = 64
	} else if e.blockSize < 8192 {
		e.blockSize *= 2
	}
	block := make([]Event, e.blockSize)
	if cap(e.free) < e.blockSize {
		e.free = make([]*Event, 0, e.blockSize)
	}
	for i := range block {
		block[i].eng = e
		e.free = append(e.free, &block[i])
	}
}

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Len returns the number of pending (not yet fired) events. Cancelled
// events are reaped eagerly and are not counted.
func (e *Engine) Len() int { return len(e.pq) }

// At schedules fn at absolute time t and returns a cancellable handle.
// Scheduling in the past schedules at the current time (it will still run
// strictly after the current event).
func (e *Engine) At(t time.Time, fn Handler) *Event {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, atns: t.UnixNano(), seq: e.seq, fn: fn, eng: e}
	e.push(ev)
	return ev
}

// After schedules fn d from now and returns a cancellable handle.
func (e *Engine) After(d time.Duration, fn Handler) *Event {
	return e.At(e.now.Add(d), fn)
}

// Schedule schedules fn at absolute time t without returning a handle.
// The event cannot be cancelled, which lets the engine recycle its
// allocation once fired. Prefer this in hot paths that never cancel.
func (e *Engine) Schedule(t time.Time, fn Handler) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	if len(e.free) == 0 {
		e.refill()
	}
	n := len(e.free) - 1
	ev := e.free[n]
	e.free[n] = nil
	e.free = e.free[:n]
	ev.at, ev.atns, ev.seq, ev.fn, ev.canceled = t, t.UnixNano(), e.seq, fn, false
	ev.pooled = true
	e.push(ev)
}

// Defer schedules fn d from now without returning a handle (see Schedule).
func (e *Engine) Defer(d time.Duration, fn Handler) {
	e.Schedule(e.now.Add(d), fn)
}

// lateBias pushes an event's sequence number past every normally scheduled
// event, so late events lose all same-timestamp ties regardless of when
// they were scheduled. Normal sequence numbers count actual schedules and
// stay far below the bias.
const lateBias = int64(1) << 62

// ScheduleLate schedules fn at absolute time t in the late tie-break
// class: at equal timestamps it fires after every normally scheduled
// event, and after earlier-scheduled late events. Periodic observers
// (sampling, autoscaling ticks) use it so that their position relative to
// model events at the same instant does not depend on when the tick
// happened to be scheduled — a simulation that schedules its workload up
// front and one that schedules it lazily then interleave identically.
func (e *Engine) ScheduleLate(t time.Time, fn Handler) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	if len(e.free) == 0 {
		e.refill()
	}
	n := len(e.free) - 1
	ev := e.free[n]
	e.free[n] = nil
	e.free = e.free[:n]
	ev.at, ev.atns, ev.seq, ev.fn, ev.canceled = t, t.UnixNano(), e.seq+lateBias, fn, false
	ev.pooled = true
	e.push(ev)
}

// DeferLate schedules fn d from now in the late tie-break class (see
// ScheduleLate).
func (e *Engine) DeferLate(d time.Duration, fn Handler) {
	e.ScheduleLate(e.now.Add(d), fn)
}

// ScheduleRunner schedules r.Fire at absolute time t without returning a
// handle — Schedule for Runner state machines: the pooled event carries the
// interface value directly, so re-scheduling a long-lived Runner allocates
// nothing.
func (e *Engine) ScheduleRunner(t time.Time, r Runner) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	if len(e.free) == 0 {
		e.refill()
	}
	n := len(e.free) - 1
	ev := e.free[n]
	e.free[n] = nil
	e.free = e.free[:n]
	ev.at, ev.atns, ev.seq, ev.fn, ev.run, ev.canceled = t, t.UnixNano(), e.seq, nil, r, false
	ev.pooled = true
	e.push(ev)
}

// DeferRunner schedules r.Fire d from now without returning a handle (see
// ScheduleRunner).
func (e *Engine) DeferRunner(d time.Duration, r Runner) {
	e.ScheduleRunner(e.now.Add(d), r)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with firing time <= deadline (or until Stop),
// then advances the clock to deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	dns := deadline.UnixNano()
	for len(e.pq) > 0 && !e.stopped && e.pq[0].atns <= dns {
		e.step()
	}
	if !e.stopped && deadline.After(e.now) {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := e.pop()
	if ev.canceled {
		return
	}
	e.now = ev.at
	e.steps++
	fn, run := ev.fn, ev.run
	if ev.pooled {
		ev.fn = nil
		ev.run = nil
		e.free = append(e.free, ev)
	}
	if fn != nil {
		fn()
	} else {
		run.Fire()
	}
}

// ---- event queue --------------------------------------------------------

// eventHeap is a hand-rolled 4-ary min-heap ordered by (atns, seq).
// Hand-rolling (instead of container/heap) removes interface dispatch
// from the engine's hottest loop, and the wider fan-out halves sift depth
// — swaps, not compares, dominate once the ordering key is an integer.
type eventHeap []*Event

// eventBefore is the strict (time, sequence) ordering.
func eventBefore(a, b *Event) bool {
	if a.atns != b.atns {
		return a.atns < b.atns
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.pq)
	e.pq = append(e.pq, ev)
	e.pq.siftUp(ev.index)
}

func (e *Engine) pop() *Event {
	h := e.pq
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.pq = h[:n]
	if n > 0 {
		last.index = 0
		e.pq[0] = last
		e.pq.siftDown(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	h := e.pq
	ev := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.pq = h[:n]
	if i < n {
		last.index = i
		e.pq[i] = last
		e.pq.siftDown(i)
		e.pq.siftUp(last.index)
	}
	ev.index = -1
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(h[j], h[best]) {
				best = j
			}
		}
		if !eventBefore(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].index = i
		i = best
	}
	h[i] = ev
	ev.index = i
}
