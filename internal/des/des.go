// Package des implements a deterministic discrete-event simulation engine.
// The simulator in internal/sim uses it to replay multi-day IDLT workloads
// (paper §5.5 simulates the full 90-day trace) in milliseconds of wall time.
//
// An Engine is single-threaded by design: events execute in (time, sequence)
// order on the caller's goroutine, which makes simulations reproducible
// bit-for-bit for a fixed seed.
package des

import (
	"container/heap"
	"time"
)

// Handler is the work executed when an event fires.
type Handler func()

// Event is a scheduled occurrence. Cancel prevents a not-yet-fired event
// from running; cancelling a fired event is a no-op.
type Event struct {
	at       time.Time
	seq      int64
	fn       Handler
	canceled bool
	index    int // heap index, -1 once popped
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() time.Time { return e.at }

// Cancel prevents the event from firing.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event executor with a virtual clock.
type Engine struct {
	now     time.Time
	pq      eventHeap
	seq     int64
	steps   int64
	stopped bool
}

// New returns an engine whose clock starts at start.
func New(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Len returns the number of pending (not yet fired) events, including
// cancelled ones that have not been reaped.
func (e *Engine) Len() int { return len(e.pq) }

// At schedules fn at absolute time t. Scheduling in the past schedules at
// the current time (it will still run strictly after the current event).
func (e *Engine) At(t time.Time, fn Handler) *Event {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn Handler) *Event {
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with firing time <= deadline (or until Stop),
// then advances the clock to deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped && !e.pq[0].at.After(deadline) {
		e.step()
	}
	if !e.stopped && deadline.After(e.now) {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.pq).(*Event)
	if ev.canceled {
		return
	}
	e.now = ev.at
	e.steps++
	ev.fn()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
