package des

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := New(t0)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := e.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("Now = +%v, want +3s", got)
	}
	if e.Steps() != 3 {
		t.Fatalf("Steps = %d", e.Steps())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New(t0)
	var fired []time.Duration
	e.After(time.Second, func() {
		fired = append(fired, e.Now().Sub(t0))
		e.After(time.Second, func() {
			fired = append(fired, e.Now().Sub(t0))
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New(t0)
	ran := false
	ev := e.After(time.Second, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() should be true")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(t0)
	var fired int
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Minute, func() { fired++ })
	}
	e.RunUntil(t0.Add(5 * time.Minute))
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if !e.Now().Equal(t0.Add(5 * time.Minute)) {
		t.Fatalf("Now = %v", e.Now())
	}
	e.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

func TestStop(t *testing.T) {
	e := New(t0)
	var fired int
	e.After(time.Second, func() { fired++; e.Stop() })
	e.After(2*time.Second, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (stopped)", fired)
	}
	e.Run() // resume
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after resume", fired)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := New(t0)
	var at time.Time
	e.After(time.Hour, func() {
		e.At(t0, func() { at = e.Now() }) // t0 is in the past by then
	})
	e.Run()
	if !at.Equal(t0.Add(time.Hour)) {
		t.Fatalf("past event ran at %v, want clamp to now", at)
	}
}

// Property: regardless of insertion order, events fire in non-decreasing
// time order and the engine executes exactly the non-cancelled ones.
func TestOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New(t0)
		n := 50 + r.Intn(100)
		canceled := 0
		var fireTimes []time.Time
		for i := 0; i < n; i++ {
			d := time.Duration(r.Intn(10_000)) * time.Millisecond
			ev := e.After(d, func() { fireTimes = append(fireTimes, e.Now()) })
			if r.Intn(5) == 0 {
				ev.Cancel()
				canceled++
			}
		}
		e.Run()
		if len(fireTimes) != n-canceled {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i].Before(fireTimes[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCancelReapsImmediately: cancelling removes the event from the queue
// right away, so Len reflects only live events and long runs do not
// accumulate dead heap entries.
func TestCancelReapsImmediately(t *testing.T) {
	e := New(t0)
	evs := make([]*Event, 100)
	for i := range evs {
		evs[i] = e.After(time.Duration(i+1)*time.Second, func() {})
	}
	if e.Len() != 100 {
		t.Fatalf("Len = %d, want 100", e.Len())
	}
	for i, ev := range evs {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	if e.Len() != 50 {
		t.Fatalf("Len after cancelling half = %d, want 50", e.Len())
	}
	fired := 0
	e.Run()
	if fired = int(e.Steps()); fired != 50 {
		t.Fatalf("fired %d events, want 50", fired)
	}
	if e.Len() != 0 {
		t.Fatalf("Len after run = %d, want 0", e.Len())
	}
}

// TestScheduleRecyclesDeterministically: the no-handle Schedule/Defer path
// recycles event allocations without disturbing (time, seq) ordering.
func TestScheduleRecyclesDeterministically(t *testing.T) {
	run := func() []int {
		e := New(t0)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration((i*7919)%100) * time.Millisecond
			e.Defer(d, func() {
				order = append(order, i)
				if i%3 == 0 {
					e.Defer(time.Millisecond, func() { order = append(order, 1000+i) })
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Ties must still break by scheduling sequence.
	e := New(t0)
	var tie []int
	for i := 0; i < 10; i++ {
		i := i
		e.Defer(time.Second, func() { tie = append(tie, i) })
	}
	e.Run()
	for i, v := range tie {
		if v != i {
			t.Fatalf("tie order = %v, want FIFO", tie)
		}
	}
}

// TestCancelInterleavedWithPooled: cancellable and pooled events coexist
// on one queue; removal keeps the heap invariant intact.
func TestCancelInterleavedWithPooled(t *testing.T) {
	e := New(t0)
	var fired []int
	var cancels []*Event
	for i := 0; i < 200; i++ {
		i := i
		d := time.Duration((i*131)%977) * time.Millisecond
		if i%2 == 0 {
			cancels = append(cancels, e.After(d, func() { fired = append(fired, i) }))
		} else {
			e.Schedule(t0.Add(d), func() { fired = append(fired, i) })
		}
	}
	for i, ev := range cancels {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	e.Run()
	want := 200 - (len(cancels)+1)/2
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after run", e.Len())
	}
}

// TestReservePreservesBehavior: Reserve is a pure capacity hint — firing
// order, Len, and recycling are unchanged whether or not (and whenever)
// it is called, and reserved engines run identically to unreserved ones.
func TestReservePreservesBehavior(t *testing.T) {
	run := func(reserve bool) []int {
		e := New(t0)
		if reserve {
			e.Reserve(128)
		}
		var order []int
		for i := 0; i < 60; i++ {
			i := i
			e.Defer(time.Duration((i*104729)%50)*time.Millisecond, func() {
				order = append(order, i)
			})
		}
		if reserve {
			e.Reserve(16) // shrinking hints are no-ops
		}
		e.Run()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestArenaPooledEventsRecycle: far more Schedule calls than the peak
// pending count must not grow allocations linearly — fired events return
// to the arena-backed free list and are reused.
func TestArenaPooledEventsRecycle(t *testing.T) {
	e := New(t0)
	fired := 0
	var chain func()
	chain = func() {
		fired++
		if fired < 10000 {
			e.Defer(time.Millisecond, chain)
		}
	}
	e.Defer(0, chain)
	e.Run()
	if fired != 10000 {
		t.Fatalf("fired = %d", fired)
	}
	// Peak pending was 1, so the free list must have stayed at the first
	// arena block's size rather than growing with the 10k schedules.
	if len(e.free) > 64 {
		t.Fatalf("free list grew to %d; pooled events are not recycling", len(e.free))
	}
}

// stepper is a Runner that re-schedules itself a fixed number of times.
type stepper struct {
	e     *Engine
	left  int
	fired []time.Duration
}

func (s *stepper) Fire() {
	s.fired = append(s.fired, s.e.Now().Sub(t0))
	if s.left--; s.left > 0 {
		s.e.DeferRunner(time.Second, s)
	}
}

func TestRunnerInterleavesWithHandlers(t *testing.T) {
	e := New(t0)
	s := &stepper{e: e, left: 3}
	e.ScheduleRunner(t0.Add(time.Second), s)
	var handlerAt []time.Duration
	e.Defer(90*time.Second, func() { handlerAt = append(handlerAt, e.Now().Sub(t0)) })
	e.DeferRunner(2500*time.Millisecond, &stepper{e: e, left: 1, fired: s.fired})
	e.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(s.fired) != 3 {
		t.Fatalf("stepper fired %d times: %v", len(s.fired), s.fired)
	}
	for i, w := range want {
		if s.fired[i] != w {
			t.Fatalf("stepper fired at %v, want %v", s.fired, want)
		}
	}
	if len(handlerAt) != 1 || handlerAt[0] != 90*time.Second {
		t.Fatalf("handler fired at %v", handlerAt)
	}
	if e.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", e.Steps())
	}
}

func TestRunnerScheduleAllocs(t *testing.T) {
	e := New(t0)
	e.Reserve(4)
	s := &stepper{e: e, left: 1 << 30}
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleRunner(e.Now(), s)
		e.step()
	})
	if allocs > 0 {
		t.Fatalf("ScheduleRunner+step allocates %.1f per op, want 0", allocs)
	}
}

func TestLateEventsLoseAllTies(t *testing.T) {
	e := New(t0)
	var order []string
	at := t0.Add(time.Second)
	// A late event scheduled FIRST still fires after normal events at the
	// same instant — including normal events scheduled afterwards.
	e.ScheduleLate(at, func() { order = append(order, "late1") })
	e.Schedule(at, func() { order = append(order, "a") })
	e.DeferLate(time.Second, func() { order = append(order, "late2") })
	e.Schedule(at, func() { order = append(order, "b") })
	e.Schedule(at.Add(time.Second), func() { order = append(order, "next") })
	e.Run()
	want := []string{"a", "b", "late1", "late2", "next"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
