package pynb

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) (*Interp, string) {
	t.Helper()
	in := New()
	out, err := in.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return in, out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("x = 1 + 2.5  # comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIdent, TokOp, TokInt, TokOp, TokFloat, TokNewline, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] = %v, want %v", i, toks[i], k)
		}
	}
}

func TestLexIndentation(t *testing.T) {
	src := "if x:\n    y = 1\n    z = 2\nw = 3\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	var indents, dedents int
	for _, tok := range toks {
		switch tok.Kind {
		case TokIndent:
			indents++
		case TokDedent:
			dedents++
		}
	}
	if indents != 1 || dedents != 1 {
		t.Fatalf("indents=%d dedents=%d, want 1/1", indents, dedents)
	}
}

func TestLexBracketsSuppressNewlines(t *testing.T) {
	src := "xs = [1,\n      2,\n      3]\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 1 {
		t.Fatalf("newlines = %d, want 1 (inside brackets suppressed)", newlines)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`s = "a\nb\tc\"d"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "a\nb\tc\"d" {
		t.Fatalf("string = %q", toks[2].Text)
	}
	if _, err := Lex("s = \"unterminated\n"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex(`s = "bad \q esc"` + "\n"); err == nil {
		t.Error("unknown escape should fail")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("x = 1 @ 2\n"); err == nil {
		t.Error("unknown character should fail")
	}
	if _, err := Lex("if x:\n    a = 1\n  b = 2\n"); err == nil {
		t.Error("inconsistent dedent should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = \n",
		"1 = x\n",
		"if x\n    y = 1\n",
		"for in range(3):\n    pass\n",
		"f(a=1, 2)\n",
		"if x:\n",
		"x = (1 + \n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	in, _ := run(t, `
a = 2 + 3 * 4
b = (2 + 3) * 4
c = 7 // 2
d = 7 / 2
e = 7 % 3
f = 2 ** 10
g = -5 + 1
h = 2.5 * 2
`)
	want := map[string]Value{
		"a": Int(14), "b": Int(20), "c": Int(3), "d": Float(3.5),
		"e": Int(1), "f": Int(1024), "g": Int(-4), "h": Float(5),
	}
	for k, v := range want {
		if got := in.Globals[k]; got != v {
			t.Errorf("%s = %v (%T), want %v", k, got, got, v)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	in := New()
	for _, src := range []string{"x = 1 / 0\n", "x = 1 // 0\n", "x = 1 % 0\n"} {
		if _, err := in.Run(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestStringsAndLists(t *testing.T) {
	in, out := run(t, `
s = "hello" + " " + "world"
xs = [1, 2, 3]
xs.append(4)
xs[0] = 10
n = len(xs)
first = xs[0]
last = xs[-1]
sub = s[0]
print(s, n, first, last, sub)
`)
	if !strings.Contains(out, "hello world 4 10 4 h") {
		t.Fatalf("output = %q", out)
	}
	if got := in.Globals["n"]; got != Int(4) {
		t.Errorf("n = %v", got)
	}
}

func TestControlFlow(t *testing.T) {
	in, _ := run(t, `
total = 0
for i in range(10):
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
status = "small"
if total > 100:
    status = "big"
elif total > 10:
    status = "medium"
else:
    status = "small"
`)
	// odd i <= 7: 1+3+5+7 = 16 -> "medium"
	if got := in.Globals["total"]; got != Int(16) {
		t.Errorf("total = %v, want 16", got)
	}
	if got := in.Globals["status"]; got != Str("medium") {
		t.Errorf("status = %v, want medium", got)
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// The right side of `and` must not evaluate when left is falsy:
	// 1/0 would raise.
	in, _ := run(t, `
a = False and 1 / 0
b = True or 1 / 0
c = not False
`)
	if got := in.Globals["a"]; got != Bool(false) {
		t.Errorf("a = %v", got)
	}
	if got := in.Globals["b"]; got != Bool(true) {
		t.Errorf("b = %v", got)
	}
	if got := in.Globals["c"]; got != Bool(true) {
		t.Errorf("c = %v", got)
	}
}

func TestComparisonsAndMembership(t *testing.T) {
	in, _ := run(t, `
a = 3 < 5
b = "abc" == "abc"
c = 2 in [1, 2, 3]
d = "ell" in "hello"
e = 5 >= 5.0
f = [1, 2] == [1, 2]
`)
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if got := in.Globals[k]; got != Bool(true) {
			t.Errorf("%s = %v, want True", k, got)
		}
	}
}

func TestCoreBuiltins(t *testing.T) {
	in, _ := run(t, `
a = sum([1, 2, 3])
b = min(5, 2, 9)
c = max([1.5, 2.5])
d = abs(-4)
e = round(2.7)
f = round(2.71828, 2)
g = int("42")
h = float(3)
i = str(99)
`)
	want := map[string]Value{
		"a": Int(6), "b": Int(2), "c": Float(2.5), "d": Int(4),
		"e": Int(3), "g": Int(42), "h": Float(3), "i": Str("99"),
	}
	for k, v := range want {
		if got := in.Globals[k]; got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	f := in.Globals["f"].(Float)
	if math.Abs(float64(f)-2.72) > 1e-9 {
		t.Errorf("f = %v", f)
	}
}

func TestForOverListAndString(t *testing.T) {
	in, _ := run(t, `
acc = 0
for v in [10, 20, 30]:
    acc += v
s = ""
for ch in "abc":
    s = s + ch
`)
	if got := in.Globals["acc"]; got != Int(60) {
		t.Errorf("acc = %v", got)
	}
	if got := in.Globals["s"]; got != Str("abc") {
		t.Errorf("s = %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	bad := []string{
		"x = undefined_name\n",
		"x = [1][5]\n",
		"x = [1]['a']\n",
		"x = 5[0]\n",
		"x = \"a\" + 1\n",
		"x = [].pop()\n",
		"x = (5).missing()\n",
		"for v in 5:\n    pass\n",
		"x = -\"s\"\n",
	}
	for _, src := range bad {
		in := New()
		if _, err := in.Run(src); err == nil {
			t.Errorf("%q should fail at runtime", src)
		}
	}
}

func TestStepBudget(t *testing.T) {
	in := New()
	in.MaxSteps = 100
	if _, err := in.Run("for i in range(1000):\n    x = i\n"); err == nil {
		t.Fatal("step budget should trip")
	}
}

func TestObjectsAndMethods(t *testing.T) {
	in := New()
	model := NewObject("Model", 1<<20)
	model.Fields["name"] = Str("resnet18")
	model.Fields["epochs"] = Int(0)
	in.Globals["model"] = model
	in.RegisterMethod("Model", "train_step", func(c *CallCtx) (Value, error) {
		m := c.Recv.(*Object)
		m.Fields["epochs"] = m.Fields["epochs"].(Int) + 1
		return Float(0.42), nil
	})
	out, err := in.Run(`
loss = model.train_step()
loss = model.train_step()
print(model.name, model.epochs, loss)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "resnet18 2 0.42") {
		t.Fatalf("output = %q", out)
	}
	if model.Fields["epochs"] != Int(2) {
		t.Errorf("epochs = %v", model.Fields["epochs"])
	}
}

func TestAnalyzeAssigned(t *testing.T) {
	m, err := Parse(`
x = 1
y += 2
zs[0] = 3
for i in range(3):
    w = i
model.load_state(ckpt)
q = unrelated + 1
if cond:
    nested = True
`)
	if err != nil {
		t.Fatal(err)
	}
	got := AnalyzeAssigned(m)
	want := []string{"i", "model", "nested", "q", "w", "x", "y", "zs"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AnalyzeAssigned = %v, want %v", got, want)
	}
}

func TestAnalyzeReferenced(t *testing.T) {
	m, err := Parse("y = x + f(z)\n")
	if err != nil {
		t.Fatal(err)
	}
	got := AnalyzeReferenced(m)
	want := []string{"f", "x", "y", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AnalyzeReferenced = %v, want %v", got, want)
	}
}

func TestValueSizes(t *testing.T) {
	if Int(1).SizeBytes() != 8 || Float(1).SizeBytes() != 8 {
		t.Error("number sizes")
	}
	if Str("abcd").SizeBytes() != 20 {
		t.Errorf("str size = %d", Str("abcd").SizeBytes())
	}
	big := NewObject("Model", 500<<20)
	if big.SizeBytes() < 500<<20 {
		t.Error("object payload must dominate size")
	}
	lst := NewList(Int(1), Int(2))
	if lst.SizeBytes() <= 24 {
		t.Error("list size must include elements")
	}
}

func TestValueReprs(t *testing.T) {
	cases := map[string]Value{
		"1":        Int(1),
		"1.5":      Float(1.5),
		"2.0":      Float(2.0),
		"True":     Bool(true),
		"None":     None{},
		"hi":       Str("hi"),
		`[1, "a"]`: NewList(Int(1), Str("a")),
	}
	for want, v := range cases {
		if got := v.Repr(); got != want {
			t.Errorf("Repr(%T) = %q, want %q", v, got, want)
		}
	}
	o := NewObject("Dataset", 0)
	o.Fields["name"] = Str("cifar10")
	if got := o.Repr(); !strings.Contains(got, "Dataset") {
		t.Errorf("object repr = %q", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	obj := NewObject("Model", 12345)
	obj.Fields["name"] = Str("bert")
	obj.Fields["layers"] = NewList(Int(12), Int(24))
	values := []Value{
		Int(-7), Float(3.25), Str("hello"), Bool(true), None{},
		NewList(Int(1), Str("x"), NewList(Float(2.5))),
		obj,
	}
	for _, v := range values {
		data, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if back.Repr() != v.Repr() || back.SizeBytes() != v.SizeBytes() {
			t.Errorf("round trip %v -> %v", v.Repr(), back.Repr())
		}
	}
}

func TestCodecRejectsBuiltin(t *testing.T) {
	if _, err := EncodeValue(&Builtin{Name: "f"}); err == nil {
		t.Error("builtins must not serialize")
	}
	if _, err := DecodeValue([]byte(`{"t":"mystery"}`)); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := DecodeValue([]byte(`not json`)); err == nil {
		t.Error("bad json must fail")
	}
}

// Property: integer arithmetic in pynb matches Go semantics for + - *.
func TestArithmeticMatchesGoProperty(t *testing.T) {
	f := func(a, b int16) bool {
		in := New()
		in.Globals["a"] = Int(int64(a))
		in.Globals["b"] = Int(int64(b))
		if _, err := in.Run("s = a + b\nd = a - b\np = a * b\n"); err != nil {
			return false
		}
		return in.Globals["s"] == Int(int64(a)+int64(b)) &&
			in.Globals["d"] == Int(int64(a)-int64(b)) &&
			in.Globals["p"] == Int(int64(a)*int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: codec round trip preserves Repr for arbitrary nested values.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, fv float64, s string, b bool) bool {
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			fv = 0
		}
		v := NewList(Int(i), Float(fv), Str(s), Bool(b), None{})
		data, err := EncodeValue(v)
		if err != nil {
			return false
		}
		back, err := DecodeValue(data)
		if err != nil {
			return false
		}
		return back.Repr() == v.Repr()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTokenAndKindStrings(t *testing.T) {
	if TokIdent.String() != "IDENT" {
		t.Error("kind string")
	}
	if TokKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
	tok := Token{Kind: TokInt, Text: "5", Line: 1, Col: 2}
	if !strings.Contains(tok.String(), "INT") {
		t.Error("token string")
	}
}
