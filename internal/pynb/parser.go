package pynb

import (
	"strconv"
)

// Parse lexes and parses source code into a Module.
func Parse(src string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return t, errAt(t.Line, t.Col, "expected %s, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseModule() (*Module, error) {
	m := &Module{pos: pos{1, 1}}
	for !p.at(TokEOF, "") {
		if p.accept(TokNewline, "") {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		m.Stmts = append(m.Stmts, s)
	}
	return m, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "pass":
			p.next()
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &PassStmt{pos{t.Line, t.Col}}, nil
		case "break":
			p.next()
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &BreakStmt{pos{t.Line, t.Col}}, nil
		case "continue":
			p.next()
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &ContinueStmt{pos{t.Line, t.Col}}, nil
		}
	}
	return p.parseSimpleStmt()
}

// parseSimpleStmt parses assignment or expression statements.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Augmented assignment.
	for _, op := range []string{"+=", "-=", "*=", "/="} {
		if p.accept(TokOp, op) {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := validAssignTarget(lhs); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &AssignStmt{pos{t.Line, t.Col}, lhs, op[:1], rhs}, nil
		}
	}
	if p.accept(TokOp, "=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := validAssignTarget(lhs); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline, ""); err != nil {
			return nil, err
		}
		return &AssignStmt{pos{t.Line, t.Col}, lhs, "", rhs}, nil
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	return &ExprStmt{pos{t.Line, t.Col}, lhs}, nil
}

func validAssignTarget(e Expr) error {
	switch e.(type) {
	case *NameExpr, *IndexExpr:
		return nil
	default:
		l, c := e.Pos()
		return errAt(l, c, "invalid assignment target")
	}
}

func (p *parser) parseIf() (Stmt, error) {
	t, _ := p.expect(TokKeyword, "if")
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &IfStmt{pos{t.Line, t.Col}, cond, body, nil}
	if p.at(TokKeyword, "elif") {
		// Rewrite `elif` as `else: if ...` by patching the token.
		p.toks[p.pos].Text = "if"
		els, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{els}
	} else if p.accept(TokKeyword, "else") {
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t, _ := p.expect(TokKeyword, "for")
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	iter, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{pos{t.Line, t.Col}, name.Text, iter, body}, nil
}

// parseBlock parses `: NEWLINE INDENT stmts DEDENT`.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(TokDedent, "") && !p.at(TokEOF, "") {
		if p.accept(TokNewline, "") {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	if _, err := p.expect(TokDedent, ""); err != nil {
		return nil, err
	}
	if len(body) == 0 {
		t := p.cur()
		return nil, errAt(t.Line, t.Col, "empty block")
	}
	return body, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or > and > not > comparison > additive > multiplicative > unary-minus
//	> power > postfix (call, index, attribute) > atom
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		t := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{pos{t.Line, t.Col}, "or", l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		t := p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{pos{t.Line, t.Col}, "and", l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.at(TokKeyword, "not") {
		t := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{pos{t.Line, t.Col}, "not", x}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokOp && compareOps[p.cur().Text] {
		t := p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Compare{pos{t.Line, t.Col}, t.Text, l, r}, nil
	}
	// Membership test `x in xs` is parsed as a comparison.
	if p.at(TokKeyword, "in") {
		t := p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Compare{pos{t.Line, t.Col}, "in", l, r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		t := p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinOp{pos{t.Line, t.Col}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "//") || p.at(TokOp, "%") {
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{pos{t.Line, t.Col}, t.Text, l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(TokOp, "-") {
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{pos{t.Line, t.Col}, "-", x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.at(TokOp, "**") {
		t := p.next()
		// Exponentiation is right-associative.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{pos{t.Line, t.Col}, "**", l, r}, nil
	}
	return l, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokOp, "("):
			t := p.next()
			call := &CallExpr{pos: pos{t.Line, t.Col}, Func: x}
			for !p.at(TokOp, ")") {
				// Keyword arguments look like IDENT '=' expr.
				if p.cur().Kind == TokIdent && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=" {
					name := p.next().Text
					p.next() // '='
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Kwargs = append(call.Kwargs, Kwarg{Name: name, Value: v})
				} else {
					if len(call.Kwargs) > 0 {
						tt := p.cur()
						return nil, errAt(tt.Line, tt.Col, "positional argument after keyword argument")
					}
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
				}
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			x = call
		case p.at(TokOp, "["):
			t := p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{pos{t.Line, t.Col}, x, i}
		case p.at(TokOp, "."):
			t := p.next()
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &AttrExpr{pos{t.Line, t.Col}, x, name.Text}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad integer %q", t.Text)
		}
		return &IntLit{pos{t.Line, t.Col}, v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad float %q", t.Text)
		}
		return &FloatLit{pos{t.Line, t.Col}, v}, nil
	case TokString:
		p.next()
		return &StringLit{pos{t.Line, t.Col}, t.Text}, nil
	case TokIdent:
		p.next()
		return &NameExpr{pos{t.Line, t.Col}, t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "True":
			p.next()
			return &BoolLit{pos{t.Line, t.Col}, true}, nil
		case "False":
			p.next()
			return &BoolLit{pos{t.Line, t.Col}, false}, nil
		case "None":
			p.next()
			return &NoneLit{pos{t.Line, t.Col}}, nil
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			lit := &ListLit{pos: pos{t.Line, t.Col}}
			for !p.at(TokOp, "]") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			return lit, nil
		}
	}
	return nil, errAt(t.Line, t.Col, "unexpected token %s", t)
}
