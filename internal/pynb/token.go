package pynb

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokInt
	TokFloat
	TokString
	TokKeyword
	TokOp
)

var kindNames = map[TokKind]string{
	TokEOF:     "EOF",
	TokNewline: "NEWLINE",
	TokIndent:  "INDENT",
	TokDedent:  "DEDENT",
	TokIdent:   "IDENT",
	TokInt:     "INT",
	TokFloat:   "FLOAT",
	TokString:  "STRING",
	TokKeyword: "KEYWORD",
	TokOp:      "OP",
}

// String names the kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords recognized by the lexer.
var keywords = map[string]bool{
	"if": true, "elif": true, "else": true, "for": true, "in": true,
	"and": true, "or": true, "not": true,
	"True": true, "False": true, "None": true,
	"pass": true, "break": true, "continue": true,
}

// operators, longest first so the lexer can match greedily.
var operators = []string{
	"**", "//", "==", "!=", "<=", ">=",
	"+=", "-=", "*=", "/=",
	"+", "-", "*", "/", "%",
	"<", ">", "=",
	"(", ")", "[", "]", "{", "}",
	",", ":", ".",
}
