package pynb

import (
	"fmt"
	"strings"
)

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pynb: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes source code, producing INDENT/DEDENT tokens from leading
// whitespace the way CPython's tokenizer does.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1, indents: []int{0}}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

type lexer struct {
	src     string
	pos     int
	line    int
	col     int
	toks    []Token
	indents []int
	// parenDepth tracks bracket nesting: newlines inside brackets are
	// insignificant, as in Python.
	parenDepth  int
	atLineStart bool
}

func (l *lexer) run() error {
	l.atLineStart = true
	for l.pos < len(l.src) {
		if l.atLineStart && l.parenDepth == 0 {
			if err := l.handleIndent(); err != nil {
				return err
			}
			if l.pos >= len(l.src) {
				break
			}
		}
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.consumeNewline()
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case isDigit(c):
			if err := l.lexNumber(); err != nil {
				return err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			if !l.lexOperator() {
				return errAt(l.line, l.col, "unexpected character %q", string(c))
			}
		}
	}
	// Close the final line and any open indentation.
	if len(l.toks) > 0 && l.toks[len(l.toks)-1].Kind != TokNewline {
		l.emit(TokNewline, "\n")
	}
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.emit(TokDedent, "")
	}
	l.emit(TokEOF, "")
	return nil
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) emit(kind TokKind, text string) {
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: l.line, Col: l.col})
}

func (l *lexer) consumeNewline() {
	if l.parenDepth > 0 {
		l.advance(1)
		return
	}
	// Collapse blank lines: only emit NEWLINE if the line had content.
	if len(l.toks) > 0 {
		last := l.toks[len(l.toks)-1].Kind
		if last != TokNewline && last != TokIndent && last != TokDedent {
			l.emit(TokNewline, "\n")
		}
	}
	l.advance(1)
	l.atLineStart = true
}

// handleIndent measures leading spaces at a line start and emits
// INDENT/DEDENT tokens. Tabs count as 8 columns, like CPython.
func (l *lexer) handleIndent() error {
	width := 0
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ':
			width++
			l.advance(1)
		case '\t':
			width += 8 - width%8
			l.advance(1)
		case '\r':
			l.advance(1)
		default:
			goto measured
		}
	}
measured:
	l.atLineStart = false
	if l.pos >= len(l.src) {
		return nil
	}
	// Blank or comment-only lines do not affect indentation.
	if l.src[l.pos] == '\n' || l.src[l.pos] == '#' {
		return nil
	}
	cur := l.indents[len(l.indents)-1]
	switch {
	case width > cur:
		l.indents = append(l.indents, width)
		l.emit(TokIndent, "")
	case width < cur:
		for len(l.indents) > 1 && l.indents[len(l.indents)-1] > width {
			l.indents = l.indents[:len(l.indents)-1]
			l.emit(TokDedent, "")
		}
		if l.indents[len(l.indents)-1] != width {
			return errAt(l.line, l.col, "inconsistent dedent")
		}
	}
	return nil
}

func (l *lexer) lexNumber() error {
	startLine, startCol := l.line, l.col
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == '_') {
		if l.src[l.pos] == '.' {
			if isFloat {
				return errAt(l.line, l.col, "malformed number")
			}
			// A trailing '.' followed by an identifier is attribute access
			// on an int literal; we do not support that, so require digits.
			if l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1]) {
				break
			}
			isFloat = true
		}
		l.advance(1)
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
	return nil
}

func (l *lexer) lexString(quote byte) error {
	startLine, startCol := l.line, l.col
	l.advance(1) // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.advance(1)
			l.toks = append(l.toks, Token{Kind: TokString, Text: b.String(), Line: startLine, Col: startCol})
			return nil
		case '\n':
			return errAt(startLine, startCol, "unterminated string")
		case '\\':
			if l.pos+1 >= len(l.src) {
				return errAt(l.line, l.col, "dangling escape")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			default:
				return errAt(l.line, l.col, "unknown escape \\%c", esc)
			}
			l.advance(2)
		default:
			b.WriteByte(c)
			l.advance(1)
		}
	}
	return errAt(startLine, startCol, "unterminated string")
}

func (l *lexer) lexIdent() {
	startLine, startCol := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.advance(1)
	}
	text := l.src[start:l.pos]
	kind := TokIdent
	if keywords[text] {
		kind = TokKeyword
	}
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
}

func (l *lexer) lexOperator() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			switch op {
			case "(", "[", "{":
				l.parenDepth++
			case ")", "]", "}":
				if l.parenDepth > 0 {
					l.parenDepth--
				}
			}
			l.toks = append(l.toks, Token{Kind: TokOp, Text: op, Line: l.line, Col: l.col})
			l.advance(len(op))
			return true
		}
	}
	return false
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
