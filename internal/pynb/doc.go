// Package pynb implements a small Python-like notebook language: lexer,
// parser, AST, interpreter, and the AST analysis NotebookOS uses for kernel
// state replication (paper §3.2.4). The real system analyzes Python ASTs to
// find globals mutated by a cell so they can be synchronized to standby
// replicas via Raft; pynb reproduces that mechanism end to end for cell
// code written in its Python subset.
//
// Supported syntax: assignments (including augmented and indexed),
// expression statements, if/elif/else, for-in loops with range() or list
// iterables, arithmetic/comparison/boolean operators, calls with keyword
// arguments, attribute access, list and index expressions, and comments.
package pynb
