package pynb

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// RuntimeError reports an execution failure with position information.
type RuntimeError struct {
	Line, Col int
	Msg       string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("pynb: runtime error at line %d: %s", e.Line, e.Msg)
}

func rtErr(n Node, format string, args ...any) error {
	l, c := n.Pos()
	return &RuntimeError{Line: l, Col: c, Msg: fmt.Sprintf(format, args...)}
}

// Sentinels for loop control flow.
var (
	errBreak    = errors.New("pynb: break")
	errContinue = errors.New("pynb: continue")
)

// MethodFn implements a method on a class of Objects (or built-in types).
type MethodFn func(call *CallCtx) (Value, error)

// Interp executes pynb modules against a set of global variables — the
// kernel namespace of an IPython process in the paper's terms.
type Interp struct {
	// Globals is the kernel namespace: the user-visible variables.
	Globals map[string]Value
	// Builtins are free functions available to cell code.
	Builtins map[string]*Builtin
	// Methods maps class name to method table, letting the notebook
	// runtime attach behaviour to Objects (e.g. Model.eval).
	Methods map[string]map[string]MethodFn
	// MaxSteps bounds statement executions to catch runaway cells.
	MaxSteps int64

	steps  int64
	stdout strings.Builder
}

// New returns an interpreter with the core builtins installed.
func New() *Interp {
	in := &Interp{
		Globals:  map[string]Value{},
		Builtins: map[string]*Builtin{},
		Methods:  map[string]map[string]MethodFn{},
		MaxSteps: 10_000_000,
	}
	in.installCore()
	return in
}

// Stdout returns everything printed so far and clears the buffer.
func (in *Interp) Stdout() string {
	s := in.stdout.String()
	in.stdout.Reset()
	return s
}

// RegisterBuiltin installs a free function.
func (in *Interp) RegisterBuiltin(name string, fn func(*CallCtx) (Value, error)) {
	in.Builtins[name] = &Builtin{Name: name, Fn: fn}
}

// RegisterMethod installs a method on a class.
func (in *Interp) RegisterMethod(class, name string, fn MethodFn) {
	if in.Methods[class] == nil {
		in.Methods[class] = map[string]MethodFn{}
	}
	in.Methods[class][name] = fn
}

// Run parses and executes src. It returns the accumulated print output.
func (in *Interp) Run(src string) (string, error) {
	m, err := Parse(src)
	if err != nil {
		return "", err
	}
	if err := in.Exec(m); err != nil {
		return in.Stdout(), err
	}
	return in.Stdout(), nil
}

// Exec executes a parsed module.
func (in *Interp) Exec(m *Module) error {
	in.steps = 0
	return in.execBlock(m.Stmts)
}

func (in *Interp) execBlock(stmts []Stmt) error {
	for _, s := range stmts {
		if err := in.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s Stmt) error {
	in.steps++
	if in.steps > in.MaxSteps {
		return rtErr(s, "step budget exceeded (%d)", in.MaxSteps)
	}
	switch x := s.(type) {
	case *AssignStmt:
		return in.execAssign(x)
	case *ExprStmt:
		_, err := in.eval(x.X)
		return err
	case *IfStmt:
		cond, err := in.eval(x.Cond)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.execBlock(x.Body)
		}
		return in.execBlock(x.Else)
	case *ForStmt:
		return in.execFor(x)
	case *PassStmt:
		return nil
	case *BreakStmt:
		return errBreak
	case *ContinueStmt:
		return errContinue
	default:
		return rtErr(s, "unknown statement %T", s)
	}
}

func (in *Interp) execAssign(a *AssignStmt) error {
	val, err := in.eval(a.Value)
	if err != nil {
		return err
	}
	if a.Op != "" {
		cur, err := in.eval(a.Target)
		if err != nil {
			return err
		}
		val, err = binaryOp(a, a.Op, cur, val)
		if err != nil {
			return err
		}
	}
	switch t := a.Target.(type) {
	case *NameExpr:
		in.Globals[t.Name] = val
		return nil
	case *IndexExpr:
		base, err := in.eval(t.X)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.I)
		if err != nil {
			return err
		}
		lst, ok := base.(*List)
		if !ok {
			return rtErr(t, "%s does not support item assignment", base.Type())
		}
		i, ok := idx.(Int)
		if !ok {
			return rtErr(t, "list index must be int, got %s", idx.Type())
		}
		n := int64(len(lst.Elems))
		ii := int64(i)
		if ii < 0 {
			ii += n
		}
		if ii < 0 || ii >= n {
			return rtErr(t, "list index %d out of range (len %d)", i, n)
		}
		lst.Elems[ii] = val
		return nil
	default:
		return rtErr(a, "invalid assignment target")
	}
}

func (in *Interp) execFor(f *ForStmt) error {
	iter, err := in.eval(f.Iter)
	if err != nil {
		return err
	}
	var elems []Value
	switch v := iter.(type) {
	case *List:
		elems = v.Elems
	case Str:
		for _, r := range string(v) {
			elems = append(elems, Str(string(r)))
		}
	default:
		return rtErr(f, "%s is not iterable", iter.Type())
	}
	for _, e := range elems {
		in.steps++
		if in.steps > in.MaxSteps {
			return rtErr(f, "step budget exceeded (%d)", in.MaxSteps)
		}
		in.Globals[f.Var] = e
		err := in.execBlock(f.Body)
		switch {
		case err == nil:
		case errors.Is(err, errBreak):
			return nil
		case errors.Is(err, errContinue):
		default:
			return err
		}
	}
	return nil
}

func (in *Interp) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *IntLit:
		return Int(x.Value), nil
	case *FloatLit:
		return Float(x.Value), nil
	case *StringLit:
		return Str(x.Value), nil
	case *BoolLit:
		return Bool(x.Value), nil
	case *NoneLit:
		return None{}, nil
	case *NameExpr:
		if v, ok := in.Globals[x.Name]; ok {
			return v, nil
		}
		if b, ok := in.Builtins[x.Name]; ok {
			return b, nil
		}
		return nil, rtErr(x, "name %q is not defined", x.Name)
	case *ListLit:
		lst := &List{Elems: make([]Value, 0, len(x.Elems))}
		for _, el := range x.Elems {
			v, err := in.eval(el)
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, v)
		}
		return lst, nil
	case *BinOp:
		l, err := in.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(x.R)
		if err != nil {
			return nil, err
		}
		return binaryOp(x, x.Op, l, r)
	case *Compare:
		return in.evalCompare(x)
	case *BoolOp:
		l, err := in.eval(x.L)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			if !l.Truthy() {
				return l, nil
			}
			return in.eval(x.R)
		}
		if l.Truthy() {
			return l, nil
		}
		return in.eval(x.R)
	case *UnaryOp:
		v, err := in.eval(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case Int:
				return Int(-n), nil
			case Float:
				return Float(-n), nil
			}
			return nil, rtErr(x, "bad operand for unary -: %s", v.Type())
		case "not":
			return Bool(!v.Truthy()), nil
		}
		return nil, rtErr(x, "unknown unary op %q", x.Op)
	case *CallExpr:
		return in.evalCall(x)
	case *AttrExpr:
		v, err := in.eval(x.X)
		if err != nil {
			return nil, err
		}
		if obj, ok := v.(*Object); ok {
			if f, ok := obj.Fields[x.Name]; ok {
				return f, nil
			}
		}
		return nil, rtErr(x, "%s has no attribute %q", v.Type(), x.Name)
	case *IndexExpr:
		base, err := in.eval(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.I)
		if err != nil {
			return nil, err
		}
		return indexValue(x, base, idx)
	default:
		return nil, rtErr(e, "unknown expression %T", e)
	}
}

func (in *Interp) evalCompare(c *Compare) (Value, error) {
	l, err := in.eval(c.L)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(c.R)
	if err != nil {
		return nil, err
	}
	if c.Op == "in" {
		switch container := r.(type) {
		case *List:
			for _, e := range container.Elems {
				if eq, err := valueEqual(e, l); err == nil && eq {
					return Bool(true), nil
				}
			}
			return Bool(false), nil
		case Str:
			ls, ok := l.(Str)
			if !ok {
				return nil, rtErr(c, "'in <str>' requires str, got %s", l.Type())
			}
			return Bool(strings.Contains(string(container), string(ls))), nil
		default:
			return nil, rtErr(c, "%s is not a container", r.Type())
		}
	}
	if c.Op == "==" || c.Op == "!=" {
		eq, err := valueEqual(l, r)
		if err != nil {
			return nil, rtErr(c, "%v", err)
		}
		if c.Op == "!=" {
			eq = !eq
		}
		return Bool(eq), nil
	}
	cmp, err := valueOrder(l, r)
	if err != nil {
		return nil, rtErr(c, "%v", err)
	}
	switch c.Op {
	case "<":
		return Bool(cmp < 0), nil
	case "<=":
		return Bool(cmp <= 0), nil
	case ">":
		return Bool(cmp > 0), nil
	case ">=":
		return Bool(cmp >= 0), nil
	}
	return nil, rtErr(c, "unknown comparison %q", c.Op)
}

func (in *Interp) evalCall(call *CallExpr) (Value, error) {
	args := make([]Value, 0, len(call.Args))
	for _, a := range call.Args {
		v, err := in.eval(a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	kw := map[string]Value{}
	for _, k := range call.Kwargs {
		v, err := in.eval(k.Value)
		if err != nil {
			return nil, err
		}
		kw[k.Name] = v
	}

	// Method call: receiver.method(...).
	if attr, ok := call.Func.(*AttrExpr); ok {
		recv, err := in.eval(attr.X)
		if err != nil {
			return nil, err
		}
		fn, err := in.lookupMethod(recv, attr.Name)
		if err != nil {
			return nil, rtErr(call, "%v", err)
		}
		out, err := fn(&CallCtx{Recv: recv, Args: args, Kw: kw, Interp: in})
		if err != nil {
			var rerr *RuntimeError
			if errors.As(err, &rerr) {
				return nil, err
			}
			return nil, rtErr(call, "%v", err)
		}
		return out, nil
	}

	fnv, err := in.eval(call.Func)
	if err != nil {
		return nil, err
	}
	b, ok := fnv.(*Builtin)
	if !ok {
		return nil, rtErr(call, "%s is not callable", fnv.Type())
	}
	out, err := b.Fn(&CallCtx{Args: args, Kw: kw, Interp: in})
	if err != nil {
		var rerr *RuntimeError
		if errors.As(err, &rerr) {
			return nil, err
		}
		return nil, rtErr(call, "%s: %v", b.Name, err)
	}
	return out, nil
}

func (in *Interp) lookupMethod(recv Value, name string) (MethodFn, error) {
	class := recv.Type()
	if obj, ok := recv.(*Object); ok {
		class = obj.Class
	}
	if tbl, ok := in.Methods[class]; ok {
		if fn, ok := tbl[name]; ok {
			return fn, nil
		}
	}
	// Built-in list methods.
	if _, ok := recv.(*List); ok {
		switch name {
		case "append":
			return listAppend, nil
		case "pop":
			return listPop, nil
		}
	}
	return nil, fmt.Errorf("%s has no method %q", class, name)
}

func listAppend(c *CallCtx) (Value, error) {
	lst := c.Recv.(*List)
	v, err := c.Arg(0)
	if err != nil {
		return nil, err
	}
	lst.Elems = append(lst.Elems, v)
	return None{}, nil
}

func listPop(c *CallCtx) (Value, error) {
	lst := c.Recv.(*List)
	if len(lst.Elems) == 0 {
		return nil, errors.New("pop from empty list")
	}
	v := lst.Elems[len(lst.Elems)-1]
	lst.Elems = lst.Elems[:len(lst.Elems)-1]
	return v, nil
}

func indexValue(n Node, base, idx Value) (Value, error) {
	i, ok := idx.(Int)
	if !ok {
		return nil, rtErr(n, "index must be int, got %s", idx.Type())
	}
	switch b := base.(type) {
	case *List:
		ln := int64(len(b.Elems))
		ii := int64(i)
		if ii < 0 {
			ii += ln
		}
		if ii < 0 || ii >= ln {
			return nil, rtErr(n, "list index %d out of range (len %d)", i, ln)
		}
		return b.Elems[ii], nil
	case Str:
		ln := int64(len(b))
		ii := int64(i)
		if ii < 0 {
			ii += ln
		}
		if ii < 0 || ii >= ln {
			return nil, rtErr(n, "string index %d out of range (len %d)", i, ln)
		}
		return Str(string(b)[ii : ii+1]), nil
	default:
		return nil, rtErr(n, "%s is not subscriptable", base.Type())
	}
}

func binaryOp(n Node, op string, l, r Value) (Value, error) {
	// String concatenation and list concatenation.
	if op == "+" {
		if ls, ok := l.(Str); ok {
			if rs, ok := r.(Str); ok {
				return Str(string(ls) + string(rs)), nil
			}
			return nil, rtErr(n, "cannot concatenate str and %s", r.Type())
		}
		if ll, ok := l.(*List); ok {
			if rl, ok := r.(*List); ok {
				out := &List{Elems: make([]Value, 0, len(ll.Elems)+len(rl.Elems))}
				out.Elems = append(out.Elems, ll.Elems...)
				out.Elems = append(out.Elems, rl.Elems...)
				return out, nil
			}
			return nil, rtErr(n, "cannot concatenate list and %s", r.Type())
		}
	}
	li, lIsInt := l.(Int)
	ri, rIsInt := r.(Int)
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, rtErr(n, "unsupported operands for %s: %s and %s", op, l.Type(), r.Type())
	}
	bothInt := lIsInt && rIsInt
	switch op {
	case "+":
		if bothInt {
			return li + ri, nil
		}
		return Float(lf + rf), nil
	case "-":
		if bothInt {
			return li - ri, nil
		}
		return Float(lf - rf), nil
	case "*":
		if bothInt {
			return li * ri, nil
		}
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return nil, rtErr(n, "division by zero")
		}
		return Float(lf / rf), nil
	case "//":
		if rf == 0 {
			return nil, rtErr(n, "division by zero")
		}
		if bothInt {
			q := int64(math.Floor(float64(li) / float64(ri)))
			return Int(q), nil
		}
		return Float(math.Floor(lf / rf)), nil
	case "%":
		if !bothInt {
			return nil, rtErr(n, "%% requires integers")
		}
		if ri == 0 {
			return nil, rtErr(n, "modulo by zero")
		}
		m := li % ri
		if (m < 0 && ri > 0) || (m > 0 && ri < 0) {
			m += ri
		}
		return m, nil
	case "**":
		if bothInt && ri >= 0 {
			out := Int(1)
			for i := Int(0); i < ri; i++ {
				out *= li
			}
			return out, nil
		}
		return Float(math.Pow(lf, rf)), nil
	}
	return nil, rtErr(n, "unknown operator %q", op)
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

func valueEqual(a, b Value) (bool, error) {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af == bf, nil
		}
	}
	switch x := a.(type) {
	case Str:
		y, ok := b.(Str)
		return ok && x == y, nil
	case None:
		_, ok := b.(None)
		return ok, nil
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false, nil
		}
		for i := range x.Elems {
			eq, err := valueEqual(x.Elems[i], y.Elems[i])
			if err != nil || !eq {
				return false, err
			}
		}
		return true, nil
	case *Object:
		return a == b, nil
	}
	return false, nil
}

func valueOrder(a, b Value) (int, error) {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if as, ok := a.(Str); ok {
		if bs, ok := b.(Str); ok {
			return strings.Compare(string(as), string(bs)), nil
		}
	}
	return 0, fmt.Errorf("cannot order %s and %s", a.Type(), b.Type())
}

// installCore registers the language's built-in functions.
func (in *Interp) installCore() {
	in.RegisterBuiltin("print", func(c *CallCtx) (Value, error) {
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = a.Repr()
		}
		c.Interp.stdout.WriteString(strings.Join(parts, " "))
		c.Interp.stdout.WriteByte('\n')
		return None{}, nil
	})
	in.RegisterBuiltin("len", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case *List:
			return Int(len(x.Elems)), nil
		case Str:
			return Int(len(x)), nil
		default:
			return nil, fmt.Errorf("object of type %s has no len()", v.Type())
		}
	})
	in.RegisterBuiltin("range", func(c *CallCtx) (Value, error) {
		var lo, hi, step int64
		step = 1
		switch len(c.Args) {
		case 1:
			n, err := c.IntArg(0)
			if err != nil {
				return nil, err
			}
			hi = n
		case 2, 3:
			var err error
			if lo, err = c.IntArg(0); err != nil {
				return nil, err
			}
			if hi, err = c.IntArg(1); err != nil {
				return nil, err
			}
			if len(c.Args) == 3 {
				if step, err = c.IntArg(2); err != nil {
					return nil, err
				}
			}
		default:
			return nil, errors.New("range expects 1-3 arguments")
		}
		if step == 0 {
			return nil, errors.New("range step must not be zero")
		}
		const maxRange = 10_000_000
		lst := &List{}
		if step > 0 {
			for i := lo; i < hi; i += step {
				if int64(len(lst.Elems)) > maxRange {
					return nil, errors.New("range too large")
				}
				lst.Elems = append(lst.Elems, Int(i))
			}
		} else {
			for i := lo; i > hi; i += step {
				if int64(len(lst.Elems)) > maxRange {
					return nil, errors.New("range too large")
				}
				lst.Elems = append(lst.Elems, Int(i))
			}
		}
		return lst, nil
	})
	in.RegisterBuiltin("str", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		return Str(v.Repr()), nil
	})
	in.RegisterBuiltin("int", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		if f, ok := toFloat(v); ok {
			return Int(int64(f)), nil
		}
		if s, ok := v.(Str); ok {
			var out int64
			_, err := fmt.Sscanf(strings.TrimSpace(string(s)), "%d", &out)
			if err != nil {
				return nil, fmt.Errorf("invalid literal for int(): %q", string(s))
			}
			return Int(out), nil
		}
		return nil, fmt.Errorf("cannot convert %s to int", v.Type())
	})
	in.RegisterBuiltin("float", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		if f, ok := toFloat(v); ok {
			return Float(f), nil
		}
		return nil, fmt.Errorf("cannot convert %s to float", v.Type())
	})
	in.RegisterBuiltin("abs", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case Int:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case Float:
			return Float(math.Abs(float64(x))), nil
		}
		return nil, fmt.Errorf("bad operand for abs(): %s", v.Type())
	})
	in.RegisterBuiltin("sum", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		lst, ok := v.(*List)
		if !ok {
			return nil, fmt.Errorf("sum() requires a list, got %s", v.Type())
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, e := range lst.Elems {
			f, ok := toFloat(e)
			if !ok {
				return nil, fmt.Errorf("sum() element %s is not numeric", e.Type())
			}
			fsum += f
			if i, ok := e.(Int); ok {
				isum += int64(i)
			} else {
				allInt = false
			}
		}
		if allInt {
			return Int(isum), nil
		}
		return Float(fsum), nil
	})
	in.RegisterBuiltin("min", builtinMinMax(-1))
	in.RegisterBuiltin("max", builtinMinMax(1))
	in.RegisterBuiltin("round", func(c *CallCtx) (Value, error) {
		v, err := c.Arg(0)
		if err != nil {
			return nil, err
		}
		f, ok := toFloat(v)
		if !ok {
			return nil, fmt.Errorf("round() requires a number, got %s", v.Type())
		}
		digits, err := c.KwInt("ndigits", 0)
		if err != nil {
			return nil, err
		}
		if len(c.Args) > 1 {
			if digits, err = c.IntArg(1); err != nil {
				return nil, err
			}
		}
		if digits == 0 {
			return Int(int64(math.Round(f))), nil
		}
		scale := math.Pow(10, float64(digits))
		return Float(math.Round(f*scale) / scale), nil
	})
}

func builtinMinMax(sign int) func(*CallCtx) (Value, error) {
	return func(c *CallCtx) (Value, error) {
		vals := c.Args
		if len(vals) == 1 {
			if lst, ok := vals[0].(*List); ok {
				vals = lst.Elems
			}
		}
		if len(vals) == 0 {
			return nil, errors.New("min()/max() of empty sequence")
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp, err := valueOrder(v, best)
			if err != nil {
				return nil, err
			}
			if cmp*sign > 0 {
				best = v
			}
		}
		return best, nil
	}
}
