package pynb

import (
	"encoding/json"
	"fmt"
)

// wireValue is the JSON envelope for serialized values. Kernel replicas
// serialize updated globals into Raft log entries (small values) or the
// distributed data store (large values) using this format.
type wireValue struct {
	T       string               `json:"t"`
	Int     int64                `json:"i,omitempty"`
	Float   float64              `json:"f,omitempty"`
	Str     string               `json:"s,omitempty"`
	Bool    bool                 `json:"b,omitempty"`
	Elems   []json.RawMessage    `json:"e,omitempty"`
	Class   string               `json:"c,omitempty"`
	Payload int64                `json:"p,omitempty"`
	Fields  map[string]wireValue `json:"fl,omitempty"`
}

// EncodeValue serializes a value. Builtins cannot be serialized.
func EncodeValue(v Value) ([]byte, error) {
	w, err := toWire(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// DecodeValue parses a value serialized by EncodeValue.
func DecodeValue(data []byte) (Value, error) {
	var w wireValue
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("pynb: decode: %w", err)
	}
	return fromWire(w)
}

func toWire(v Value) (wireValue, error) {
	switch x := v.(type) {
	case Int:
		return wireValue{T: "int", Int: int64(x)}, nil
	case Float:
		return wireValue{T: "float", Float: float64(x)}, nil
	case Str:
		return wireValue{T: "str", Str: string(x)}, nil
	case Bool:
		return wireValue{T: "bool", Bool: bool(x)}, nil
	case None:
		return wireValue{T: "none"}, nil
	case *List:
		w := wireValue{T: "list"}
		for _, e := range x.Elems {
			b, err := EncodeValue(e)
			if err != nil {
				return wireValue{}, err
			}
			w.Elems = append(w.Elems, b)
		}
		return w, nil
	case *Object:
		w := wireValue{T: "obj", Class: x.Class, Payload: x.Payload, Fields: map[string]wireValue{}}
		for k, f := range x.Fields {
			fw, err := toWire(f)
			if err != nil {
				return wireValue{}, err
			}
			w.Fields[k] = fw
		}
		return w, nil
	default:
		return wireValue{}, fmt.Errorf("pynb: cannot serialize %s", v.Type())
	}
}

func fromWire(w wireValue) (Value, error) {
	switch w.T {
	case "int":
		return Int(w.Int), nil
	case "float":
		return Float(w.Float), nil
	case "str":
		return Str(w.Str), nil
	case "bool":
		return Bool(w.Bool), nil
	case "none":
		return None{}, nil
	case "list":
		lst := &List{}
		for _, raw := range w.Elems {
			e, err := DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
		}
		return lst, nil
	case "obj":
		o := NewObject(w.Class, w.Payload)
		for k, fw := range w.Fields {
			f, err := fromWire(fw)
			if err != nil {
				return nil, err
			}
			o.Fields[k] = f
		}
		return o, nil
	default:
		return nil, fmt.Errorf("pynb: unknown wire type %q", w.T)
	}
}
