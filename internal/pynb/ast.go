package pynb

import "strings"

// Node is the common interface of all AST nodes.
type Node interface {
	// Pos returns the (line, col) of the node's first token.
	Pos() (int, int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// Module is a parsed cell: a sequence of statements.
type Module struct {
	pos
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// AssignStmt is `target = value` where target is a name or an index
// expression (`xs[i] = v`). Op is "" for plain assignment or one of
// "+", "-", "*", "/" for augmented assignment.
type AssignStmt struct {
	pos
	Target Expr // *NameExpr or *IndexExpr
	Op     string
	Value  Expr
}

// ExprStmt is a bare expression evaluated for effect.
type ExprStmt struct {
	pos
	X Expr
}

// IfStmt is if/elif/else; elif chains are parsed as nested IfStmt in Else.
type IfStmt struct {
	pos
	Cond Expr
	Body []Stmt
	Else []Stmt
}

// ForStmt is `for var in iterable:`.
type ForStmt struct {
	pos
	Var  string
	Iter Expr
	Body []Stmt
}

// PassStmt is `pass`.
type PassStmt struct{ pos }

// BreakStmt is `break`.
type BreakStmt struct{ pos }

// ContinueStmt is `continue`.
type ContinueStmt struct{ pos }

func (*AssignStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*PassStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// NameExpr is an identifier reference.
type NameExpr struct {
	pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	pos
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	pos
	Value string
}

// BoolLit is True or False.
type BoolLit struct {
	pos
	Value bool
}

// NoneLit is None.
type NoneLit struct{ pos }

// ListLit is `[a, b, c]`.
type ListLit struct {
	pos
	Elems []Expr
}

// BinOp is a binary arithmetic operation (+ - * / // % **).
type BinOp struct {
	pos
	Op   string
	L, R Expr
}

// Compare is a single comparison (== != < <= > >=). Chained comparisons
// are not supported.
type Compare struct {
	pos
	Op   string
	L, R Expr
}

// BoolOp is `and` / `or` with short-circuit evaluation.
type BoolOp struct {
	pos
	Op   string
	L, R Expr
}

// UnaryOp is `-x` or `not x`.
type UnaryOp struct {
	pos
	Op string
	X  Expr
}

// CallExpr is `f(args..., k=v...)` where f is a name or attribute.
type CallExpr struct {
	pos
	Func   Expr
	Args   []Expr
	Kwargs []Kwarg
}

// Kwarg is one keyword argument of a call.
type Kwarg struct {
	Name  string
	Value Expr
}

// AttrExpr is `x.name`.
type AttrExpr struct {
	pos
	X    Expr
	Name string
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	pos
	X Expr
	I Expr
}

func (*NameExpr) expr()  {}
func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*StringLit) expr() {}
func (*BoolLit) expr()   {}
func (*NoneLit) expr()   {}
func (*ListLit) expr()   {}
func (*BinOp) expr()     {}
func (*Compare) expr()   {}
func (*BoolOp) expr()    {}
func (*UnaryOp) expr()   {}
func (*CallExpr) expr()  {}
func (*AttrExpr) expr()  {}
func (*IndexExpr) expr() {}

// Walk visits every node in depth-first order, calling fn on each. If fn
// returns false, the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Module:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *AssignStmt:
		Walk(x.Target, fn)
		Walk(x.Value, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		for _, s := range x.Body {
			Walk(s, fn)
		}
		for _, s := range x.Else {
			Walk(s, fn)
		}
	case *ForStmt:
		Walk(x.Iter, fn)
		for _, s := range x.Body {
			Walk(s, fn)
		}
	case *ListLit:
		for _, e := range x.Elems {
			Walk(e, fn)
		}
	case *BinOp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Compare:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *BoolOp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *UnaryOp:
		Walk(x.X, fn)
	case *CallExpr:
		Walk(x.Func, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
		for _, k := range x.Kwargs {
			Walk(k.Value, fn)
		}
	case *AttrExpr:
		Walk(x.X, fn)
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.I, fn)
	}
}

// AnalyzeAssigned returns the sorted set of top-level (global) names the
// module assigns anywhere — the state NotebookOS replicates to standby
// replicas after a cell executes (paper Fig. 6). It includes plain and
// augmented assignment targets, the base name of indexed assignments
// (`xs[0] = v` mutates xs), and for-loop variables.
func AnalyzeAssigned(m *Module) []string {
	set := map[string]bool{}
	Walk(m, func(n Node) bool {
		switch x := n.(type) {
		case *AssignStmt:
			switch t := x.Target.(type) {
			case *NameExpr:
				set[t.Name] = true
			case *IndexExpr:
				if base, ok := rootName(t); ok {
					set[base] = true
				}
			}
		case *ForStmt:
			set[x.Var] = true
		case *CallExpr:
			// Method calls may mutate their receiver (e.g. xs.append(v),
			// model.load_state(...)); conservatively mark the receiver as
			// assigned, like the paper's conservative AST analysis.
			if attr, ok := x.Func.(*AttrExpr); ok {
				if base, ok := rootName(attr.X); ok {
					set[base] = true
				}
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// AnalyzeReferenced returns the sorted set of names the module reads.
func AnalyzeReferenced(m *Module) []string {
	set := map[string]bool{}
	Walk(m, func(n Node) bool {
		if x, ok := n.(*NameExpr); ok {
			set[x.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func rootName(e Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *NameExpr:
			return x.Name, true
		case *IndexExpr:
			e = x.X
		case *AttrExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

func sortStrings(xs []string) {
	// Insertion sort keeps this file dependency-free; the slices are tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && strings.Compare(xs[j], xs[j-1]) < 0; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
