package pynb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a runtime value in the pynb interpreter. Values know their size
// so the kernel's state-replication layer can decide which globals are
// "small" (replicated inline through the Raft log) and which are "large"
// (checkpointed to the distributed data store with a pointer in the log),
// per paper §3.2.4.
type Value interface {
	// Type returns the Python-style type name.
	Type() string
	// Repr renders the value the way print would.
	Repr() string
	// Truthy reports the value's boolean interpretation.
	Truthy() bool
	// SizeBytes estimates the value's in-memory size.
	SizeBytes() int64
}

// Int is an integer value.
type Int int64

// Type implements Value.
func (Int) Type() string { return "int" }

// Repr implements Value.
func (v Int) Repr() string { return strconv.FormatInt(int64(v), 10) }

// Truthy implements Value.
func (v Int) Truthy() bool { return v != 0 }

// SizeBytes implements Value.
func (Int) SizeBytes() int64 { return 8 }

// Float is a floating-point value.
type Float float64

// Type implements Value.
func (Float) Type() string { return "float" }

// Repr implements Value.
func (v Float) Repr() string {
	s := strconv.FormatFloat(float64(v), 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Truthy implements Value.
func (v Float) Truthy() bool { return v != 0 }

// SizeBytes implements Value.
func (Float) SizeBytes() int64 { return 8 }

// Str is a string value.
type Str string

// Type implements Value.
func (Str) Type() string { return "str" }

// Repr implements Value.
func (v Str) Repr() string { return string(v) }

// Truthy implements Value.
func (v Str) Truthy() bool { return len(v) > 0 }

// SizeBytes implements Value.
func (v Str) SizeBytes() int64 { return int64(len(v)) + 16 }

// Bool is a boolean value.
type Bool bool

// Type implements Value.
func (Bool) Type() string { return "bool" }

// Repr implements Value.
func (v Bool) Repr() string {
	if v {
		return "True"
	}
	return "False"
}

// Truthy implements Value.
func (v Bool) Truthy() bool { return bool(v) }

// SizeBytes implements Value.
func (Bool) SizeBytes() int64 { return 1 }

// None is the unit value.
type None struct{}

// Type implements Value.
func (None) Type() string { return "NoneType" }

// Repr implements Value.
func (None) Repr() string { return "None" }

// Truthy implements Value.
func (None) Truthy() bool { return false }

// SizeBytes implements Value.
func (None) SizeBytes() int64 { return 0 }

// List is a mutable sequence.
type List struct {
	Elems []Value
}

// NewList returns a list of the given elements.
func NewList(elems ...Value) *List { return &List{Elems: elems} }

// Type implements Value.
func (*List) Type() string { return "list" }

// Repr implements Value.
func (v *List) Repr() string {
	parts := make([]string, len(v.Elems))
	for i, e := range v.Elems {
		if s, ok := e.(Str); ok {
			parts[i] = fmt.Sprintf("%q", string(s))
		} else {
			parts[i] = e.Repr()
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Truthy implements Value.
func (v *List) Truthy() bool { return len(v.Elems) > 0 }

// SizeBytes implements Value.
func (v *List) SizeBytes() int64 {
	var n int64 = 24
	for _, e := range v.Elems {
		n += 8 + e.SizeBytes()
	}
	return n
}

// Object is a structured value with named fields and an explicit payload
// size — models, datasets, and tensors in the notebook runtime. Class tags
// the object's kind ("Model", "Dataset", "Tensor", ...).
type Object struct {
	Class string
	// Fields holds the object's attributes.
	Fields map[string]Value
	// Payload is the object's bulk size in bytes (e.g. model parameters);
	// SizeBytes adds it to the fields' sizes. This is what makes models
	// and datasets "large objects" in the replication protocol.
	Payload int64
}

// NewObject returns an object of the given class.
func NewObject(class string, payload int64) *Object {
	return &Object{Class: class, Fields: map[string]Value{}, Payload: payload}
}

// Type implements Value.
func (o *Object) Type() string { return o.Class }

// Repr implements Value.
func (o *Object) Repr() string {
	name := ""
	if v, ok := o.Fields["name"]; ok {
		name = " " + v.Repr()
	}
	return fmt.Sprintf("<%s%s>", o.Class, name)
}

// Truthy implements Value.
func (o *Object) Truthy() bool { return true }

// SizeBytes implements Value.
func (o *Object) SizeBytes() int64 {
	n := o.Payload + 48
	for _, v := range o.Fields {
		n += v.SizeBytes()
	}
	return n
}

// Builtin is a callable provided by the runtime.
type Builtin struct {
	Name string
	Fn   func(call *CallCtx) (Value, error)
}

// Type implements Value.
func (*Builtin) Type() string { return "builtin_function_or_method" }

// Repr implements Value.
func (b *Builtin) Repr() string { return fmt.Sprintf("<built-in function %s>", b.Name) }

// Truthy implements Value.
func (*Builtin) Truthy() bool { return true }

// SizeBytes implements Value.
func (*Builtin) SizeBytes() int64 { return 8 }

// CallCtx carries the arguments of a builtin or method invocation.
type CallCtx struct {
	// Recv is the receiver for method calls, nil for free functions.
	Recv Value
	Args []Value
	Kw   map[string]Value
	// Interp exposes the interpreter (e.g. for print output).
	Interp *Interp
}

// Arg returns the i-th positional argument or an error.
func (c *CallCtx) Arg(i int) (Value, error) {
	if i >= len(c.Args) {
		return nil, fmt.Errorf("pynb: missing argument %d", i)
	}
	return c.Args[i], nil
}

// IntArg returns positional argument i as an int.
func (c *CallCtx) IntArg(i int) (int64, error) {
	v, err := c.Arg(i)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case Int:
		return int64(x), nil
	case Float:
		return int64(x), nil
	default:
		return 0, fmt.Errorf("pynb: argument %d must be a number, got %s", i, v.Type())
	}
}

// KwInt returns keyword argument name as an int, or def if absent.
func (c *CallCtx) KwInt(name string, def int64) (int64, error) {
	v, ok := c.Kw[name]
	if !ok {
		return def, nil
	}
	switch x := v.(type) {
	case Int:
		return int64(x), nil
	case Float:
		return int64(x), nil
	default:
		return 0, fmt.Errorf("pynb: keyword %q must be a number, got %s", name, v.Type())
	}
}

// KwFloat returns keyword argument name as a float, or def if absent.
func (c *CallCtx) KwFloat(name string, def float64) (float64, error) {
	v, ok := c.Kw[name]
	if !ok {
		return def, nil
	}
	switch x := v.(type) {
	case Int:
		return float64(x), nil
	case Float:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("pynb: keyword %q must be a number, got %s", name, v.Type())
	}
}
