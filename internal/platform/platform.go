package platform

import (
	"fmt"
	"sync"
	"time"

	"notebookos/internal/cluster"
	"notebookos/internal/container"
	"notebookos/internal/jupyter"
	"notebookos/internal/resources"
	"notebookos/internal/scheduler"
	"notebookos/internal/simclock"
	"notebookos/internal/store"
	"notebookos/internal/workload"
)

// Config configures an in-process NotebookOS deployment.
type Config struct {
	// Hosts is the initial GPU server count.
	Hosts int
	// HostCapacity is each server's capacity (default p3.16xlarge).
	HostCapacity resources.Spec
	// ReplicasPerKernel is R (default 3).
	ReplicasPerKernel int
	// Policy is the placement policy (default least-loaded).
	Policy scheduler.PlacementPolicy
	// Clock drives the deployment (default wall clock).
	Clock simclock.Clock
	// Store is the large-object store (default in-memory).
	Store store.Store
	// TimeScale compresses train() durations (default 1.0 = real time).
	TimeScale float64
	// PrewarmPerHost sizes the pre-warm container pool.
	PrewarmPerHost int
	// ContainerLatency models container provisioning (default fast).
	ContainerLatency container.LatencyModel
	// AutoscaleInterval enables the auto-scaler when > 0.
	AutoscaleInterval time.Duration
	// ScaleFactor is the auto-scaler's f (default 1.05).
	ScaleFactor float64
	// MinHosts floors scale-in (default the initial host count).
	MinHosts int
	// ScalingBufferHosts keeps spare servers for bursts.
	ScalingBufferHosts int
	// EnableScaleOut mints new hosts on demand.
	EnableScaleOut bool
	// Seed makes the deployment deterministic.
	Seed int64
}

// Session is one persistent notebook session bound to a distributed
// kernel.
type Session struct {
	ID       string
	KernelID string
	User     string
	Request  resources.Spec
	Created  time.Time
}

// Platform is a running NotebookOS deployment.
type Platform struct {
	cfg Config

	Cluster   *cluster.Cluster
	Scheduler *scheduler.GlobalScheduler

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	subs     map[string]map[int]chan jupyter.Message
	subSeq   int
	stopped  bool
}

// New builds and starts a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 4
	}
	if cfg.HostCapacity.IsZero() {
		cfg.HostCapacity = resources.P316xlarge()
	}
	if cfg.ReplicasPerKernel <= 0 {
		cfg.ReplicasPerKernel = cluster.DefaultReplicasPerKernel
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.MinHosts <= 0 {
		cfg.MinHosts = cfg.Hosts
	}
	if cfg.ContainerLatency.ColdStart == nil {
		cfg.ContainerLatency = container.FastLatency()
	}

	c := cluster.New(cfg.ReplicasPerKernel)
	for i := 0; i < cfg.Hosts; i++ {
		if err := c.AddHost(cluster.NewHost(fmt.Sprintf("host-%03d", i+1), cfg.HostCapacity)); err != nil {
			return nil, err
		}
	}
	p := &Platform{
		cfg:      cfg,
		Cluster:  c,
		sessions: map[string]*Session{},
		subs:     map[string]map[int]chan jupyter.Message{},
	}
	rt := workload.NewRuntime(workload.RuntimeOptions{
		Clock:     cfg.Clock,
		TimeScale: cfg.TimeScale,
	})
	scfg := scheduler.Config{
		Cluster:            c,
		Policy:             cfg.Policy,
		Clock:              cfg.Clock,
		Store:              cfg.Store,
		ContainerLatency:   cfg.ContainerLatency,
		PrewarmPerHost:     cfg.PrewarmPerHost,
		ScaleFactor:        cfg.ScaleFactor,
		MinHosts:           cfg.MinHosts,
		ScalingBufferHosts: cfg.ScalingBufferHosts,
		AutoscaleInterval:  cfg.AutoscaleInterval,
		OnReply:            p.fanOut,
		InstallRuntime:     rt.Install,
		KernelTickInterval: 10 * time.Millisecond,
		NetMaxDelay:        2 * time.Millisecond,
		Seed:               cfg.Seed,
	}
	gs, err := scheduler.New(scfg)
	if err != nil {
		return nil, err
	}
	if cfg.EnableScaleOut {
		gs.SetHostFactory(scheduler.StandardHostFactory(gs))
	}
	p.Scheduler = gs
	return p, nil
}

// fanOut delivers a reply to all session subscribers.
func (p *Platform) fanOut(session string, msg jupyter.Message) {
	p.mu.Lock()
	chans := make([]chan jupyter.Message, 0, len(p.subs[session]))
	for _, ch := range p.subs[session] {
		chans = append(chans, ch)
	}
	p.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- msg:
		default: // slow subscriber: drop rather than block the scheduler
		}
	}
}

// Subscribe returns a channel of the session's replies and a cancel
// function. The gateway's SSE endpoint uses it.
func (p *Platform) Subscribe(sessionID string) (<-chan jupyter.Message, func()) {
	ch := make(chan jupyter.Message, 64)
	p.mu.Lock()
	p.subSeq++
	id := p.subSeq
	if p.subs[sessionID] == nil {
		p.subs[sessionID] = map[int]chan jupyter.Message{}
	}
	p.subs[sessionID][id] = ch
	p.mu.Unlock()
	return ch, func() {
		p.mu.Lock()
		delete(p.subs[sessionID], id)
		p.mu.Unlock()
	}
}

// CreateSession starts a notebook session with a dedicated distributed
// kernel.
func (p *Platform) CreateSession(user string, req resources.Spec) (*Session, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.seq++
	s := &Session{
		ID:       fmt.Sprintf("sess-%04d", p.seq),
		KernelID: fmt.Sprintf("kernel-%04d", p.seq),
		User:     user,
		Request:  req,
		Created:  p.cfg.Clock.Now(),
	}
	p.mu.Unlock()
	if err := p.Scheduler.StartKernel(s.KernelID, s.ID, req); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.sessions[s.ID] = s
	p.mu.Unlock()
	return s, nil
}

// Session returns a session by ID.
func (p *Platform) Session(id string) (*Session, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[id]
	return s, ok
}

// Sessions lists sessions in creation order.
func (p *Platform) Sessions() []*Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Session, 0, len(p.sessions))
	for _, s := range p.sessions {
		out = append(out, s)
	}
	// Insertion order approximation: sort by ID (zero-padded sequence).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CloseSession terminates a session and its kernel.
func (p *Platform) CloseSession(id string) error {
	p.mu.Lock()
	s, ok := p.sessions[id]
	delete(p.sessions, id)
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("platform: unknown session %s", id)
	}
	return p.Scheduler.StopKernel(s.KernelID)
}

// ExecuteAsync submits a cell; replies arrive on Subscribe channels and
// carry the returned request message ID as their parent header.
func (p *Platform) ExecuteAsync(sessionID, code string) (string, error) {
	s, ok := p.Session(sessionID)
	if !ok {
		return "", fmt.Errorf("platform: unknown session %s", sessionID)
	}
	_, msgID, err := p.Scheduler.Execute(s.KernelID, code)
	return msgID, err
}

// ExecuteSync submits a cell and waits for the executor's reply.
func (p *Platform) ExecuteSync(sessionID, code string, timeout time.Duration) (jupyter.ExecuteReplyContent, error) {
	ch, cancel := p.Subscribe(sessionID)
	defer cancel()
	msgID, err := p.ExecuteAsync(sessionID, code)
	if err != nil {
		return jupyter.ExecuteReplyContent{}, err
	}
	deadline := p.cfg.Clock.After(timeout)
	for {
		select {
		case msg := <-ch:
			content, err := msg.ParseExecuteReply()
			if err != nil {
				continue
			}
			if msg.ParentHeader != nil && msg.ParentHeader.MsgID == msgID && !content.Yielded {
				return content, nil
			}
		case <-deadline:
			return jupyter.ExecuteReplyContent{}, fmt.Errorf("platform: execution %s timed out after %v", msgID, timeout)
		}
	}
}

// HostStatus is one host's status snapshot.
type HostStatus struct {
	ID             string  `json:"id"`
	GPUs           int     `json:"gpus"`
	CommittedGPUs  int     `json:"committed_gpus"`
	SubscribedGPUs int     `json:"subscribed_gpus"`
	Replicas       int     `json:"replicas"`
	SR             float64 `json:"subscription_ratio"`
}

// Status is a cluster-wide status snapshot for the gateway.
type Status struct {
	Hosts             []HostStatus    `json:"hosts"`
	TotalGPUs         int             `json:"total_gpus"`
	CommittedGPUs     int             `json:"committed_gpus"`
	SubscribedGPUs    int             `json:"subscribed_gpus"`
	ClusterSR         float64         `json:"cluster_sr"`
	Sessions          int             `json:"sessions"`
	SchedulerStats    scheduler.Stats `json:"scheduler_stats"`
	ReplicasPerKernel int             `json:"replicas_per_kernel"`
}

// Status reports the platform's current state.
func (p *Platform) Status() Status {
	st := Status{
		TotalGPUs:         p.Cluster.TotalGPUs(),
		CommittedGPUs:     p.Cluster.CommittedGPUs(),
		SubscribedGPUs:    p.Cluster.SubscribedGPUs(),
		ClusterSR:         p.Cluster.ClusterSR(),
		SchedulerStats:    p.Scheduler.Stats(),
		ReplicasPerKernel: p.Cluster.ReplicasPerKernel(),
	}
	for _, h := range p.Cluster.Hosts() {
		st.Hosts = append(st.Hosts, HostStatus{
			ID:             h.ID,
			GPUs:           h.Capacity.GPUs,
			CommittedGPUs:  h.Committed().GPUs,
			SubscribedGPUs: h.Subscribed().GPUs,
			Replicas:       h.NumReplicas(),
			SR:             h.SubscriptionRatio(p.Cluster.ReplicasPerKernel()),
		})
	}
	p.mu.Lock()
	st.Sessions = len(p.sessions)
	p.mu.Unlock()
	return st
}

// Stop shuts the platform down.
func (p *Platform) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	p.Scheduler.Stop()
}
