package platform

import (
	"strings"
	"testing"
	"time"

	"notebookos/internal/resources"
)

func gpuReq(n int) resources.Spec {
	return resources.Spec{Millicpus: int64(n+1) * 2000, MemoryMB: int64(n+1) * 8192, GPUs: n, VRAMGB: float64(n) * 16}
}

func newPlatform(t *testing.T, opts ...func(*Config)) *Platform {
	t.Helper()
	cfg := Config{Hosts: 4, TimeScale: 0.001, Seed: 3}
	for _, o := range opts {
		o(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func TestSessionLifecycle(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("alice", gpuReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID == "" || s.KernelID == "" {
		t.Fatalf("session = %+v", s)
	}
	got, ok := p.Session(s.ID)
	if !ok || got != s {
		t.Fatal("Session lookup")
	}
	if len(p.Sessions()) != 1 {
		t.Fatal("Sessions list")
	}
	if err := p.CloseSession(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseSession(s.ID); err == nil {
		t.Fatal("double close must fail")
	}
	if p.Cluster.SubscribedGPUs() != 0 {
		t.Fatal("subscriptions must be released")
	}
}

func TestExecuteSyncRoundTrip(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("alice", gpuReq(1))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := p.ExecuteSync(s.ID, "x = 2 ** 6\nprint(x)\n", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != "ok" || !strings.Contains(reply.Output, "64") {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestExecuteTrainingCell(t *testing.T) {
	p := newPlatform(t)
	s, err := p.CreateSession("bob", gpuReq(2))
	if err != nil {
		t.Fatal(err)
	}
	code := "m = create_model(\"resnet18\")\nd = load_dataset(\"cifar10\")\nr = train(m, d, epochs=1, gpus=2, seconds=2)\nprint(r.loss)\n"
	reply, err := p.ExecuteSync(s.ID, code, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Status != "ok" {
		t.Fatalf("reply = %+v", reply)
	}
	// GPUs must be fully released once the task completes (§3.3).
	if got := p.Cluster.CommittedGPUs(); got != 0 {
		t.Fatalf("committed GPUs after task = %d", got)
	}
}

func TestStatePersistsAcrossCells(t *testing.T) {
	p := newPlatform(t)
	s, _ := p.CreateSession("carol", gpuReq(1))
	if _, err := p.ExecuteSync(s.ID, "total = 5\n", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Even if another replica executes the next cell, Raft-synchronized
	// state makes `total` visible.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		reply, err := p.ExecuteSync(s.ID, "total = total + 1\nprint(total)\n", 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Status == "ok" {
			if !strings.Contains(reply.Output, "6") {
				t.Fatalf("output = %q", reply.Output)
			}
			return
		}
		// The winning replica may not have received replicated state yet;
		// retry briefly (same behaviour a user would see on racing cells).
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("state never became visible")
}

func TestSubscribeReceivesReplies(t *testing.T) {
	p := newPlatform(t)
	s, _ := p.CreateSession("dave", gpuReq(1))
	ch, cancel := p.Subscribe(s.ID)
	defer cancel()
	if _, err := p.ExecuteAsync(s.ID, "x = 1\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-ch:
		content, err := msg.ParseExecuteReply()
		if err != nil || content.Status != "ok" {
			t.Fatalf("reply = %+v, %v", content, err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("no reply on subscription")
	}
}

func TestStatusSnapshot(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.CreateSession("eve", gpuReq(2)); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.TotalGPUs != 32 || len(st.Hosts) != 4 {
		t.Fatalf("status = %+v", st)
	}
	if st.SubscribedGPUs != 6 {
		t.Fatalf("subscribed = %d, want 6 (3 replicas x 2)", st.SubscribedGPUs)
	}
	if st.Sessions != 1 || st.ReplicasPerKernel != 3 {
		t.Fatalf("status = %+v", st)
	}
}

func TestUnknownSessionErrors(t *testing.T) {
	p := newPlatform(t)
	if _, err := p.ExecuteAsync("nope", "x=1\n"); err == nil {
		t.Fatal("unknown session must fail")
	}
	if _, err := p.ExecuteSync("nope", "x=1\n", time.Second); err == nil {
		t.Fatal("unknown session must fail")
	}
	if _, err := p.CreateSession("x", resources.Spec{GPUs: -1}); err == nil {
		t.Fatal("invalid request must fail")
	}
}
