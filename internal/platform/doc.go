// Package platform is the composition root of the live NotebookOS stack:
// it wires the cluster model, Global and Local Schedulers, distributed
// kernels, the data store, and the notebook runtime into one process, and
// exposes the session-level API the gateway (and the examples) use.
package platform
