package resources

import (
	"errors"
	"fmt"
)

// Spec is a resource vector. The zero value requests nothing.
//
// Millicpus follow the Kubernetes convention used by the paper: 1000
// millicpus equal one vCPU. VRAM is tracked in gigabytes because model
// checkpoints are sized in GB.
type Spec struct {
	Millicpus int64   `json:"millicpus"`
	MemoryMB  int64   `json:"memory_mb"`
	GPUs      int     `json:"gpus"`
	VRAMGB    float64 `json:"vram_gb"`
}

// ErrNegative is returned by Validate for specs with any negative component.
var ErrNegative = errors.New("resources: negative component")

// Validate reports whether every component of s is non-negative.
func (s Spec) Validate() error {
	if s.Millicpus < 0 || s.MemoryMB < 0 || s.GPUs < 0 || s.VRAMGB < 0 {
		return fmt.Errorf("%w: %v", ErrNegative, s)
	}
	return nil
}

// Add returns the component-wise sum of s and t.
func (s Spec) Add(t Spec) Spec {
	return Spec{
		Millicpus: s.Millicpus + t.Millicpus,
		MemoryMB:  s.MemoryMB + t.MemoryMB,
		GPUs:      s.GPUs + t.GPUs,
		VRAMGB:    s.VRAMGB + t.VRAMGB,
	}
}

// Sub returns the component-wise difference s - t. The result may have
// negative components; callers that require non-negativity should Validate.
func (s Spec) Sub(t Spec) Spec {
	return Spec{
		Millicpus: s.Millicpus - t.Millicpus,
		MemoryMB:  s.MemoryMB - t.MemoryMB,
		GPUs:      s.GPUs - t.GPUs,
		VRAMGB:    s.VRAMGB - t.VRAMGB,
	}
}

// Scale returns s with every component multiplied by k (GPUs rounded down).
func (s Spec) Scale(k float64) Spec {
	return Spec{
		Millicpus: int64(float64(s.Millicpus) * k),
		MemoryMB:  int64(float64(s.MemoryMB) * k),
		GPUs:      int(float64(s.GPUs) * k),
		VRAMGB:    s.VRAMGB * k,
	}
}

// Fits reports whether s fits within capacity c, component-wise.
func (s Spec) Fits(c Spec) bool {
	return s.Millicpus <= c.Millicpus &&
		s.MemoryMB <= c.MemoryMB &&
		s.GPUs <= c.GPUs &&
		s.VRAMGB <= c.VRAMGB
}

// IsZero reports whether s requests no resources at all.
func (s Spec) IsZero() bool {
	return s.Millicpus == 0 && s.MemoryMB == 0 && s.GPUs == 0 && s.VRAMGB == 0
}

// Max returns the component-wise maximum of s and t.
func (s Spec) Max(t Spec) Spec {
	m := s
	if t.Millicpus > m.Millicpus {
		m.Millicpus = t.Millicpus
	}
	if t.MemoryMB > m.MemoryMB {
		m.MemoryMB = t.MemoryMB
	}
	if t.GPUs > m.GPUs {
		m.GPUs = t.GPUs
	}
	if t.VRAMGB > m.VRAMGB {
		m.VRAMGB = t.VRAMGB
	}
	return m
}

// String renders the spec compactly, e.g. "cpu=4000m mem=16384MB gpu=2 vram=32GB".
func (s Spec) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMB gpu=%d vram=%gGB",
		s.Millicpus, s.MemoryMB, s.GPUs, s.VRAMGB)
}

// P316xlarge is the capacity of one 8-GPU server matching the paper's
// evaluation hosts (AWS p3.16xlarge: 8 V100s, 64 vCPUs, 488 GB host memory,
// 16 GB VRAM per GPU).
func P316xlarge() Spec {
	return Spec{Millicpus: 64_000, MemoryMB: 488 * 1024, GPUs: 8, VRAMGB: 128}
}
