// Package resources defines the resource vectors NotebookOS schedules:
// CPU (in millicpus), host memory (in megabytes), GPUs, and GPU memory
// (VRAM, in gigabytes). It mirrors the resource-request argument of the
// paper's StartKernelReplica RPC (§3.2.1) and provides the arithmetic the
// schedulers use for capacity checks and subscription-ratio accounting.
package resources
