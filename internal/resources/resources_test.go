package resources

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func spec(cpu, mem int64, gpus int, vram float64) Spec {
	return Spec{Millicpus: cpu, MemoryMB: mem, GPUs: gpus, VRAMGB: vram}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		in Spec
		ok bool
	}{
		{Spec{}, true},
		{spec(1000, 2048, 1, 16), true},
		{spec(-1, 0, 0, 0), false},
		{spec(0, -1, 0, 0), false},
		{spec(0, 0, -1, 0), false},
		{spec(0, 0, 0, -0.5), false},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := spec(1000, 2048, 2, 32)
	b := spec(500, 1024, 1, 16)
	sum := a.Add(b)
	want := spec(1500, 3072, 3, 48)
	if sum != want {
		t.Fatalf("Add = %v, want %v", sum, want)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub = %v, want %v", got, a)
	}
}

func TestFits(t *testing.T) {
	cap := P316xlarge()
	if !spec(64000, 488*1024, 8, 128).Fits(cap) {
		t.Error("full capacity should fit itself")
	}
	if spec(0, 0, 9, 0).Fits(cap) {
		t.Error("9 GPUs must not fit an 8-GPU host")
	}
	if !(Spec{}).IsZero() {
		t.Error("zero Spec should be IsZero")
	}
}

func TestScale(t *testing.T) {
	s := spec(1000, 1000, 4, 10)
	got := s.Scale(0.5)
	want := spec(500, 500, 2, 5)
	if got != want {
		t.Fatalf("Scale(0.5) = %v, want %v", got, want)
	}
}

func TestMax(t *testing.T) {
	a := spec(100, 5, 2, 1)
	b := spec(50, 10, 1, 4)
	want := spec(100, 10, 2, 4)
	if got := a.Max(b); got != want {
		t.Fatalf("Max = %v, want %v", got, want)
	}
	if got := b.Max(a); got != want {
		t.Fatalf("Max should be symmetric; got %v", got)
	}
}

func TestString(t *testing.T) {
	s := spec(4000, 16384, 2, 32).String()
	for _, part := range []string{"cpu=4000m", "mem=16384MB", "gpu=2", "vram=32GB"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
}

// genSpec yields non-negative specs for property tests.
func genSpec(r *rand.Rand) Spec {
	return Spec{
		Millicpus: r.Int63n(100_000),
		MemoryMB:  r.Int63n(1 << 20),
		GPUs:      r.Intn(16),
		VRAMGB:    float64(r.Intn(256)),
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpec(r), genSpec(r)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpec(r), genSpec(r)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitsMonotoneProperty(t *testing.T) {
	// If a fits c then a also fits c plus anything non-negative.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, c, extra := genSpec(r), genSpec(r), genSpec(r)
		if !a.Fits(c) {
			return true
		}
		return a.Fits(c.Add(extra))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolCommitRelease(t *testing.T) {
	p := NewPool(P316xlarge())
	req := spec(8000, 32*1024, 4, 64)
	if err := p.Commit("k1", req); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := p.Committed(); got != req {
		t.Fatalf("Committed = %v, want %v", got, req)
	}
	if p.CanCommit(spec(0, 0, 5, 0)) {
		t.Error("5 more GPUs should not fit after committing 4 of 8")
	}
	if err := p.Commit("k2", spec(0, 0, 4, 0)); err != nil {
		t.Fatalf("second Commit: %v", err)
	}
	if err := p.Commit("k3", spec(0, 0, 1, 0)); err == nil {
		t.Error("overcommit should fail")
	}
	if err := p.Release("k1"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := p.Release("k1"); err == nil {
		t.Error("double release should fail")
	}
	if got := p.Committed(); got != spec(0, 0, 4, 0) {
		t.Fatalf("after release Committed = %v", got)
	}
	if p.Holders() != 1 {
		t.Fatalf("Holders = %d, want 1", p.Holders())
	}
}

func TestPoolDuplicateHolder(t *testing.T) {
	p := NewPool(P316xlarge())
	if err := p.Commit("k", spec(0, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit("k", spec(0, 0, 1, 0)); err == nil {
		t.Error("duplicate holder should fail")
	}
	if got, ok := p.Holding("k"); !ok || got != spec(0, 0, 1, 0) {
		t.Errorf("Holding = %v,%v", got, ok)
	}
}

func TestPoolRejectsNegative(t *testing.T) {
	p := NewPool(P316xlarge())
	if err := p.Commit("k", spec(-1, 0, 0, 0)); err == nil {
		t.Error("negative request must be rejected")
	}
}

// Property: a random sequence of commits and releases never drives the
// committed vector negative or past capacity, and idle+committed==capacity.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capSpec := spec(10_000, 10_000, 8, 128)
		p := NewPool(capSpec)
		live := map[string]bool{}
		for i := 0; i < 200; i++ {
			id := string(rune('a' + r.Intn(8)))
			if live[id] && r.Intn(2) == 0 {
				if err := p.Release(id); err != nil {
					return false
				}
				delete(live, id)
				continue
			}
			req := Spec{
				Millicpus: r.Int63n(4000),
				MemoryMB:  r.Int63n(4000),
				GPUs:      r.Intn(5),
				VRAMGB:    float64(r.Intn(64)),
			}
			if !live[id] && p.CanCommit(req) {
				if err := p.Commit(id, req); err != nil {
					return false
				}
				live[id] = true
			}
			c := p.Committed()
			if c.Validate() != nil || !c.Fits(capSpec) {
				return false
			}
			if got := p.Idle().Add(c); got != capSpec {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestP316xlargeShape(t *testing.T) {
	h := P316xlarge()
	if h.GPUs != 8 || h.Millicpus != 64000 {
		t.Fatalf("unexpected host shape: %v", h)
	}
}
