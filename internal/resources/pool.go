package resources

import (
	"fmt"
	"sync"
)

// Pool tracks exclusive commitments against a fixed capacity. It is the
// accounting primitive behind dynamic GPU binding (§3.3): GPUs (and the
// rest of a replica's resource request) are committed to a replica only
// while a cell task executes, then released.
//
// A Pool is safe for concurrent use.
type Pool struct {
	mu        sync.Mutex
	capacity  Spec
	committed Spec
	holders   map[string]Spec

	// onCommit/onRelease observe successful commits and releases. They are
	// invoked outside the pool lock so observers may inspect the pool; the
	// cluster layer uses them to maintain O(1) committed-GPU aggregates and
	// to wake capacity wait-queues on release.
	onCommit  func(Spec)
	onRelease func(Spec)
}

// NewPool returns a pool with the given capacity and nothing committed.
func NewPool(capacity Spec) *Pool {
	return &Pool{capacity: capacity, holders: make(map[string]Spec)}
}

// Observe registers observers called after every successful Commit and
// Release respectively (either may be nil). Observers run outside the pool
// lock, on the committing/releasing goroutine. Observe must be called
// before the pool is shared between goroutines.
func (p *Pool) Observe(onCommit, onRelease func(Spec)) {
	p.onCommit = onCommit
	p.onRelease = onRelease
}

// Capacity returns the pool's total capacity.
func (p *Pool) Capacity() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Committed returns the sum of all active commitments.
func (p *Pool) Committed() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}

// Idle returns capacity minus commitments.
func (p *Pool) Idle() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity.Sub(p.committed)
}

// CanCommit reports whether req currently fits in the pool's idle capacity.
func (p *Pool) CanCommit(req Spec) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return req.Fits(p.capacity.Sub(p.committed))
}

// Commit exclusively binds req to holder. It fails if the holder already
// has a commitment or if req does not fit in the idle capacity.
func (p *Pool) Commit(holder string, req Spec) error {
	if err := req.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	if _, ok := p.holders[holder]; ok {
		p.mu.Unlock()
		return fmt.Errorf("resources: %q already holds a commitment", holder)
	}
	if !req.Fits(p.capacity.Sub(p.committed)) {
		idle := p.capacity.Sub(p.committed)
		p.mu.Unlock()
		return fmt.Errorf("resources: insufficient idle capacity for %v (idle %v)", req, idle)
	}
	p.holders[holder] = req
	p.committed = p.committed.Add(req)
	p.mu.Unlock()
	if p.onCommit != nil {
		p.onCommit(req)
	}
	return nil
}

// Release returns holder's commitment to the pool. Releasing a holder with
// no commitment is an error so accounting bugs surface immediately.
func (p *Pool) Release(holder string) error {
	p.mu.Lock()
	req, ok := p.holders[holder]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("resources: %q holds no commitment", holder)
	}
	delete(p.holders, holder)
	p.committed = p.committed.Sub(req)
	p.mu.Unlock()
	if p.onRelease != nil {
		p.onRelease(req)
	}
	return nil
}

// Holding returns the commitment held by holder, if any.
func (p *Pool) Holding(holder string) (Spec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.holders[holder]
	return s, ok
}

// Holders returns the number of active commitments.
func (p *Pool) Holders() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.holders)
}
