package resources

import (
	"fmt"
	"sync"
)

// Pool tracks exclusive commitments against a fixed capacity. It is the
// accounting primitive behind dynamic GPU binding (§3.3): GPUs (and the
// rest of a replica's resource request) are committed to a replica only
// while a cell task executes, then released.
//
// A Pool is safe for concurrent use.
type Pool struct {
	mu        sync.Mutex
	capacity  Spec
	committed Spec
	holders   map[string]Spec
}

// NewPool returns a pool with the given capacity and nothing committed.
func NewPool(capacity Spec) *Pool {
	return &Pool{capacity: capacity, holders: make(map[string]Spec)}
}

// Capacity returns the pool's total capacity.
func (p *Pool) Capacity() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Committed returns the sum of all active commitments.
func (p *Pool) Committed() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}

// Idle returns capacity minus commitments.
func (p *Pool) Idle() Spec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity.Sub(p.committed)
}

// CanCommit reports whether req currently fits in the pool's idle capacity.
func (p *Pool) CanCommit(req Spec) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return req.Fits(p.capacity.Sub(p.committed))
}

// Commit exclusively binds req to holder. It fails if the holder already
// has a commitment or if req does not fit in the idle capacity.
func (p *Pool) Commit(holder string, req Spec) error {
	if err := req.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.holders[holder]; ok {
		return fmt.Errorf("resources: %q already holds a commitment", holder)
	}
	if !req.Fits(p.capacity.Sub(p.committed)) {
		return fmt.Errorf("resources: insufficient idle capacity for %v (idle %v)",
			req, p.capacity.Sub(p.committed))
	}
	p.holders[holder] = req
	p.committed = p.committed.Add(req)
	return nil
}

// Release returns holder's commitment to the pool. Releasing a holder with
// no commitment is an error so accounting bugs surface immediately.
func (p *Pool) Release(holder string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	req, ok := p.holders[holder]
	if !ok {
		return fmt.Errorf("resources: %q holds no commitment", holder)
	}
	delete(p.holders, holder)
	p.committed = p.committed.Sub(req)
	return nil
}

// Holding returns the commitment held by holder, if any.
func (p *Pool) Holding(holder string) (Spec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.holders[holder]
	return s, ok
}

// Holders returns the number of active commitments.
func (p *Pool) Holders() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.holders)
}
