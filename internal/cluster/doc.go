// Package cluster models the GPU server cluster NotebookOS schedules over:
// hosts with fixed capacities, the replicas subscribed to each host, the
// resources exclusively committed during cell execution, and the
// subscription-ratio (SR) arithmetic of paper §3.4.1. Both the live
// schedulers (internal/scheduler) and the discrete-event simulator
// (internal/sim) operate on this state, so placement decisions cannot
// drift between the two.
//
// Cluster-wide GPU aggregates (total / subscribed / committed) are
// maintained incrementally: every PlaceReplica, RemoveReplica, Commit,
// Release, AddHost, and RemoveHost updates atomic counters, so TotalGPUs,
// SubscribedGPUs, CommittedGPUs, and SRLimit are O(1) instead of O(hosts)
// scans. The invariant — counters always equal a from-scratch recount over
// the member hosts — is enforced by a property test.
package cluster
