package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"notebookos/internal/resources"
)

// recount recomputes the cluster aggregates from scratch by scanning every
// member host — the ground truth the incremental counters must track.
func recount(c *Cluster) (total, subscribed, committed int) {
	for _, h := range c.Hosts() {
		total += h.Capacity.GPUs
		subscribed += h.Subscribed().GPUs
		committed += h.Committed().GPUs
	}
	return
}

func checkAggregates(t *testing.T, c *Cluster, step string) {
	t.Helper()
	total, subscribed, committed := recount(c)
	if got := c.TotalGPUs(); got != total {
		t.Fatalf("%s: TotalGPUs = %d, recount = %d", step, got, total)
	}
	if got := c.SubscribedGPUs(); got != subscribed {
		t.Fatalf("%s: SubscribedGPUs = %d, recount = %d", step, got, subscribed)
	}
	if got := c.CommittedGPUs(); got != committed {
		t.Fatalf("%s: CommittedGPUs = %d, recount = %d", step, got, committed)
	}
}

// TestAggregatesMatchRecountProperty drives a random operation sequence
// (add/remove hosts, place/remove replicas, commit/release) and asserts
// after every step that the O(1) incremental counters equal a from-scratch
// recount.
func TestAggregatesMatchRecountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(3)
		cap8 := resources.Spec{Millicpus: 64000, MemoryMB: 488 << 10, GPUs: 8, VRAMGB: 128}
		var hosts []*Host
		type placement struct {
			h   *Host
			key string
		}
		var replicas, commits []placement
		nextID := 0

		for step := 0; step < 300; step++ {
			switch op := r.Intn(6); op {
			case 0: // add host
				nextID++
				h := NewHost(fmt.Sprintf("h%03d", nextID), cap8)
				if err := c.AddHost(h); err != nil {
					return false
				}
				hosts = append(hosts, h)
			case 1: // remove a replica-free host
				for i, h := range hosts {
					if h.NumReplicas() == 0 {
						if err := c.RemoveHost(h.ID); err != nil {
							return false
						}
						hosts = append(hosts[:i], hosts[i+1:]...)
						// Drop bookkeeping for commitments on the removed
						// host (they no longer count toward the cluster).
						kept := commits[:0]
						for _, p := range commits {
							if p.h != h {
								kept = append(kept, p)
							}
						}
						commits = kept
						break
					}
				}
			case 2: // place replica
				if len(hosts) > 0 {
					h := hosts[r.Intn(len(hosts))]
					key := fmt.Sprintf("k%d/r%d", step, r.Intn(3)+1)
					req := resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: r.Intn(4) + 1, VRAMGB: 16}
					if err := h.PlaceReplica(key, req); err == nil {
						replicas = append(replicas, placement{h, key})
					}
				}
			case 3: // remove replica
				if len(replicas) > 0 {
					i := r.Intn(len(replicas))
					p := replicas[i]
					if err := p.h.RemoveReplica(p.key); err != nil {
						return false
					}
					replicas = append(replicas[:i], replicas[i+1:]...)
				}
			case 4: // commit
				if len(hosts) > 0 {
					h := hosts[r.Intn(len(hosts))]
					key := fmt.Sprintf("c%d", step)
					req := resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: r.Intn(4) + 1, VRAMGB: 16}
					if h.Commit(key, req) == nil {
						commits = append(commits, placement{h, key})
					}
				}
			case 5: // release
				if len(commits) > 0 {
					i := r.Intn(len(commits))
					p := commits[i]
					if err := p.h.Release(p.key); err != nil {
						return false
					}
					commits = append(commits[:i], commits[i+1:]...)
				}
			}
			total, subscribed, committed := recount(c)
			if c.TotalGPUs() != total || c.SubscribedGPUs() != subscribed || c.CommittedGPUs() != committed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAggregatesAttachDetach: a host that already carries subscriptions
// and commitments contributes them on AddHost and withdraws them on
// RemoveHost.
func TestAggregatesAttachDetach(t *testing.T) {
	cap8 := resources.Spec{Millicpus: 64000, MemoryMB: 488 << 10, GPUs: 8, VRAMGB: 128}
	req := resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: 2, VRAMGB: 32}
	h := NewHost("pre", cap8)
	if err := h.Commit("warm", req); err != nil {
		t.Fatal(err)
	}
	c := New(3)
	checkAggregates(t, c, "empty")
	if err := c.AddHost(h); err != nil {
		t.Fatal(err)
	}
	checkAggregates(t, c, "after add")
	if got := c.CommittedGPUs(); got != 2 {
		t.Fatalf("CommittedGPUs = %d, want 2 (pre-existing commitment)", got)
	}
	if err := c.RemoveHost("pre"); err != nil {
		t.Fatal(err)
	}
	checkAggregates(t, c, "after remove")
	if got := c.TotalGPUs(); got != 0 {
		t.Fatalf("TotalGPUs = %d, want 0", got)
	}
	// Mutations after detach must not corrupt the (now empty) cluster.
	if err := h.Release("warm"); err != nil {
		t.Fatal(err)
	}
	checkAggregates(t, c, "after detached release")
}

// TestCapacityNotifierFires: AddHost and member Release fire the
// notifier; a detached host's Release does not.
func TestCapacityNotifierFires(t *testing.T) {
	cap8 := resources.Spec{Millicpus: 64000, MemoryMB: 488 << 10, GPUs: 8, VRAMGB: 128}
	req := resources.Spec{Millicpus: 4000, MemoryMB: 16 << 10, GPUs: 1, VRAMGB: 16}
	c := New(3)
	fired := 0
	c.SetCapacityNotifier(func() { fired++ })

	h := NewHost("n1", cap8)
	if err := c.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("AddHost fired %d notifications, want 1", fired)
	}
	if err := h.Commit("x", req); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("Commit should not notify (fired=%d)", fired)
	}
	if err := h.Release("x"); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("Release fired %d notifications, want 2", fired)
	}
	if err := c.RemoveHost("n1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Commit("y", req); err != nil {
		t.Fatal(err)
	}
	if err := h.Release("y"); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("detached Release fired notification (fired=%d)", fired)
	}
}

// TestAggregatesConcurrentMembershipAndCommits hammers commit/release on
// one goroutine while the host joins and leaves the cluster on another
// (the live control plane's autoscaler pattern). At quiescence the
// incremental counters must match a recount exactly — the commit/release
// deltas and the attach/detach snapshots serialize on the host lock.
func TestAggregatesConcurrentMembershipAndCommits(t *testing.T) {
	cap8 := resources.Spec{Millicpus: 64000, MemoryMB: 488 << 10, GPUs: 8, VRAMGB: 128}
	req := resources.Spec{Millicpus: 1000, MemoryMB: 4 << 10, GPUs: 1, VRAMGB: 16}
	c := New(3)
	h := NewHost("contended", cap8)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("c%d", i)
			if h.Commit(key, req) == nil {
				_ = h.Release(key)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := c.AddHost(h); err != nil {
			t.Fatal(err)
		}
		if err := c.RemoveHost(h.ID); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	// Quiescent and detached: everything released, nothing attached.
	checkAggregates(t, c, "after contention")
	if got := c.CommittedGPUs(); got != 0 {
		t.Fatalf("CommittedGPUs = %d, want 0 (counter drifted)", got)
	}
	// Re-attach: the host's ledger must still be exact.
	if err := c.AddHost(h); err != nil {
		t.Fatal(err)
	}
	checkAggregates(t, c, "after re-add")
}
