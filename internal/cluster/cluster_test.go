package cluster

import (
	"math"
	"testing"

	"notebookos/internal/resources"
)

func req(gpus int) resources.Spec {
	return resources.Spec{Millicpus: int64(gpus) * 8000, MemoryMB: int64(gpus) * 61 * 1024, GPUs: gpus, VRAMGB: float64(gpus) * 16}
}

func TestHostSubscription(t *testing.T) {
	h := NewHost("h1", resources.P316xlarge())
	if err := h.PlaceReplica("k1/r1", req(4)); err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceReplica("k1/r1", req(4)); err == nil {
		t.Fatal("duplicate placement must fail")
	}
	if err := h.PlaceReplica("k2/r1", req(4)); err != nil {
		t.Fatal(err)
	}
	if got := h.Subscribed().GPUs; got != 8 {
		t.Fatalf("subscribed = %d", got)
	}
	if !h.HasReplica("k1/r1") || h.NumReplicas() != 2 {
		t.Fatal("replica bookkeeping")
	}
	if r, ok := h.ReplicaRequest("k2/r1"); !ok || r.GPUs != 4 {
		t.Fatal("ReplicaRequest")
	}
	if got := h.Replicas(); len(got) != 2 || got[0] != "k1/r1" {
		t.Fatalf("Replicas = %v", got)
	}
	if err := h.RemoveReplica("k1/r1"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveReplica("k1/r1"); err == nil {
		t.Fatal("double removal must fail")
	}
	if got := h.Subscribed().GPUs; got != 4 {
		t.Fatalf("subscribed after removal = %d", got)
	}
}

func TestSubscriptionRatioPaperExample(t *testing.T) {
	// Paper §3.4.1: 8-GPU server with 4 kernel containers each requiring
	// 4 GPUs: S=16, SR = 16/(8*3) = 0.667.
	h := NewHost("H", resources.P316xlarge())
	for i := 0; i < 4; i++ {
		if err := h.PlaceReplica(string(rune('a'+i)), req(4)); err != nil {
			t.Fatal(err)
		}
	}
	sr := h.SubscriptionRatio(3)
	if math.Abs(sr-16.0/24.0) > 1e-9 {
		t.Fatalf("SR = %v, want 0.667", sr)
	}
	if NewHost("x", resources.Spec{}).SubscriptionRatio(3) != 0 {
		t.Fatal("zero-GPU host SR should be 0")
	}
}

func TestHostCommitIndependentOfSubscription(t *testing.T) {
	h := NewHost("h1", resources.P316xlarge())
	// Oversubscribe: 5 replicas of 4 GPUs each (S=20 > G=8).
	for i := 0; i < 5; i++ {
		if err := h.PlaceReplica(string(rune('a'+i)), req(4)); err != nil {
			t.Fatal(err)
		}
	}
	// But only 2 can commit at once.
	if err := h.Commit("a", req(4)); err != nil {
		t.Fatal(err)
	}
	if err := h.Commit("b", req(4)); err != nil {
		t.Fatal(err)
	}
	if h.CanCommit(req(4)) {
		t.Fatal("third 4-GPU commit must not fit")
	}
	if h.IdleGPUs() != 0 {
		t.Fatalf("idle = %d", h.IdleGPUs())
	}
	if err := h.Release("a"); err != nil {
		t.Fatal(err)
	}
	if h.IdleGPUs() != 4 {
		t.Fatalf("idle after release = %d", h.IdleGPUs())
	}
}

func TestClusterAccounting(t *testing.T) {
	c := New(3)
	if c.ReplicasPerKernel() != 3 {
		t.Fatal("R")
	}
	h1 := NewHost("h1", resources.P316xlarge())
	h2 := NewHost("h2", resources.P316xlarge())
	if err := c.AddHost(h1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(h1); err == nil {
		t.Fatal("duplicate host must fail")
	}
	if err := c.AddHost(h2); err != nil {
		t.Fatal(err)
	}
	if c.NumHosts() != 2 || c.TotalGPUs() != 16 {
		t.Fatalf("hosts=%d gpus=%d", c.NumHosts(), c.TotalGPUs())
	}
	h1.PlaceReplica("k1/r1", req(4))
	h2.PlaceReplica("k1/r2", req(4))
	if got := c.SubscribedGPUs(); got != 8 {
		t.Fatalf("subscribed = %d", got)
	}
	// SR limit = 8 / (16*3).
	if got := c.SRLimit(); math.Abs(got-8.0/48.0) > 1e-9 {
		t.Fatalf("SRLimit = %v", got)
	}
	h1.Commit("k1/r1/t1", req(2))
	if got := c.CommittedGPUs(); got != 2 {
		t.Fatalf("committed = %d", got)
	}
	// Removal requires no replicas.
	if err := c.RemoveHost("h1"); err == nil {
		t.Fatal("removal with replicas must fail")
	}
	h2.RemoveReplica("k1/r2")
	if err := c.RemoveHost("h2"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveHost("h2"); err == nil {
		t.Fatal("double removal must fail")
	}
	if _, ok := c.Host("h2"); ok {
		t.Fatal("h2 should be gone")
	}
	if got := len(c.Hosts()); got != 1 {
		t.Fatalf("hosts = %d", got)
	}
}

func TestClusterDefaultR(t *testing.T) {
	if New(0).ReplicasPerKernel() != DefaultReplicasPerKernel {
		t.Fatal("default R")
	}
}

func TestPlaceReplicaRejectsNegative(t *testing.T) {
	h := NewHost("h", resources.P316xlarge())
	if err := h.PlaceReplica("r", resources.Spec{GPUs: -1}); err == nil {
		t.Fatal("negative request must fail")
	}
}
