package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"notebookos/internal/gpu"
	"notebookos/internal/resources"
)

// DefaultReplicasPerKernel is R in the SR formula: each distributed kernel
// has three replicas (§3.1; R=5 costs too much, R=2 is unsupported by Raft).
const DefaultReplicasPerKernel = 3

// aggregates holds the cluster-wide incremental GPU counters. Mutations
// happen under the owning host's lock (see Host.committedGPUs); atomics
// make the reads lock-free without taking host or cluster locks.
type aggregates struct {
	totalGPUs      atomic.Int64
	subscribedGPUs atomic.Int64
	committedGPUs  atomic.Int64
}

// Host is one GPU server.
type Host struct {
	ID       string
	Capacity resources.Spec

	// Committed tracks exclusive bindings during cell execution.
	committed *resources.Pool
	// devices tracks per-device GPU allocation, built lazily: the
	// simulator creates tens of thousands of hosts per benchmark run and
	// never touches device identity, while the live Local Scheduler does.
	devicesOnce sync.Once
	devices     *gpu.Pool

	mu         sync.Mutex
	subscribed resources.Spec
	replicas   map[string]resources.Spec
	// committedGPUs is the host's own ledger of committed GPUs, updated
	// under mu by the pool observers. attach/detach read it (also under
	// mu) instead of snapshotting the pool, so a commit/release delta and
	// a membership change can never interleave in a way that makes the
	// cluster counters drift: every delta lands in the ledger exactly
	// once, and in the aggregates exactly when the host is attached.
	committedGPUs int
	// agg points at the owning cluster's counters while the host is a
	// member; nil otherwise.
	agg *aggregates
	// released is invoked (without locks held) after every successful
	// Release while the host is a cluster member; the cluster forwards it
	// to capacity wait-queues.
	released func()
}

// NewHost returns a host with the given capacity.
func NewHost(id string, capacity resources.Spec) *Host {
	h := &Host{
		ID:        id,
		Capacity:  capacity,
		committed: resources.NewPool(capacity),
		replicas:  map[string]resources.Spec{},
	}
	h.committed.Observe(h.onCommitted, h.onReleased)
	return h
}

// Devices returns the host's per-device GPU allocation pool, creating it
// on first use.
func (h *Host) Devices() *gpu.Pool {
	h.devicesOnce.Do(func() {
		h.devices = gpu.NewPool(h.ID, h.Capacity.GPUs)
	})
	return h.devices
}

func (h *Host) onCommitted(req resources.Spec) {
	h.mu.Lock()
	h.committedGPUs += req.GPUs
	if h.agg != nil {
		h.agg.committedGPUs.Add(int64(req.GPUs))
	}
	h.mu.Unlock()
}

func (h *Host) onReleased(req resources.Spec) {
	h.mu.Lock()
	h.committedGPUs -= req.GPUs
	if h.agg != nil {
		h.agg.committedGPUs.Add(-int64(req.GPUs))
	}
	released := h.released
	h.mu.Unlock()
	if released != nil {
		released()
	}
}

// attach makes the host contribute to a cluster's aggregate counters and
// wires its release notifier. Called by Cluster.AddHost.
func (h *Host) attach(agg *aggregates, released func()) {
	h.mu.Lock()
	h.agg = agg
	h.released = released
	agg.totalGPUs.Add(int64(h.Capacity.GPUs))
	agg.subscribedGPUs.Add(int64(h.subscribed.GPUs))
	agg.committedGPUs.Add(int64(h.committedGPUs))
	h.mu.Unlock()
}

// detach reverses attach. Called by Cluster.RemoveHost.
func (h *Host) detach() {
	h.mu.Lock()
	if agg := h.agg; agg != nil {
		agg.totalGPUs.Add(-int64(h.Capacity.GPUs))
		agg.subscribedGPUs.Add(-int64(h.subscribed.GPUs))
		agg.committedGPUs.Add(-int64(h.committedGPUs))
	}
	h.agg = nil
	h.released = nil
	h.mu.Unlock()
}

// PlaceReplica subscribes a kernel replica's resource request on the host.
// Subscription does not commit resources (paper §3.2.1: "resources are not
// exclusively committed... the kernel replicas subscribe to the requested
// resources").
func (h *Host) PlaceReplica(replicaID string, req resources.Spec) error {
	if err := req.Validate(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.replicas[replicaID]; ok {
		return fmt.Errorf("cluster: replica %s already on host %s", replicaID, h.ID)
	}
	h.replicas[replicaID] = req
	h.subscribed = h.subscribed.Add(req)
	if h.agg != nil {
		h.agg.subscribedGPUs.Add(int64(req.GPUs))
	}
	return nil
}

// RemoveReplica unsubscribes a replica (kernel shutdown or migration).
func (h *Host) RemoveReplica(replicaID string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	req, ok := h.replicas[replicaID]
	if !ok {
		return fmt.Errorf("cluster: replica %s not on host %s", replicaID, h.ID)
	}
	delete(h.replicas, replicaID)
	h.subscribed = h.subscribed.Sub(req)
	if h.agg != nil {
		h.agg.subscribedGPUs.Add(-int64(req.GPUs))
	}
	return nil
}

// HasReplica reports whether the replica is subscribed on this host.
func (h *Host) HasReplica(replicaID string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.replicas[replicaID]
	return ok
}

// ReplicaRequest returns the subscribed request of a replica.
func (h *Host) ReplicaRequest(replicaID string) (resources.Spec, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	req, ok := h.replicas[replicaID]
	return req, ok
}

// Replicas returns the IDs of replicas subscribed on the host, sorted.
func (h *Host) Replicas() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.replicas))
	for id := range h.replicas {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NumReplicas returns the number of subscribed replicas.
func (h *Host) NumReplicas() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.replicas)
}

// Subscribed returns the sum of subscribed resource requests.
func (h *Host) Subscribed() resources.Spec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subscribed
}

// SubscribedGPUs returns the host's subscribed GPU count.
func (h *Host) SubscribedGPUs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subscribed.GPUs
}

// SubscriptionRatio returns S/(G*R) for this host (paper §3.4.1), where S
// is subscribed GPUs, G the host's GPU count, and R replicas per kernel.
func (h *Host) SubscriptionRatio(replicasPerKernel int) float64 {
	h.mu.Lock()
	s := h.subscribed.GPUs
	h.mu.Unlock()
	g := h.Capacity.GPUs
	if g == 0 || replicasPerKernel == 0 {
		return 0
	}
	return float64(s) / float64(g*replicasPerKernel)
}

// Commit exclusively binds req to holder for the duration of a cell
// execution (dynamic GPU binding, §3.3).
func (h *Host) Commit(holder string, req resources.Spec) error {
	return h.committed.Commit(holder, req)
}

// Release returns holder's committed resources. While the host is a
// cluster member, a successful release also fires the cluster's capacity
// notifier so wait-queues can hand the freed capacity to queued work.
func (h *Host) Release(holder string) error {
	return h.committed.Release(holder)
}

// CanCommit reports whether req fits the host's currently idle capacity.
func (h *Host) CanCommit(req resources.Spec) bool {
	return h.committed.CanCommit(req)
}

// Committed returns the resources currently exclusively bound.
func (h *Host) Committed() resources.Spec {
	return h.committed.Committed()
}

// IdleGPUs returns GPUs not exclusively committed right now.
func (h *Host) IdleGPUs() int {
	return h.Capacity.GPUs - h.committed.Committed().GPUs
}

// Cluster is the set of hosts plus cluster-wide SR accounting.
type Cluster struct {
	mu    sync.Mutex
	hosts map[string]*Host
	// list holds the member hosts in insertion order. It is an immutable
	// snapshot, rebuilt on every membership change, so iteration never
	// holds the cluster lock.
	list              []*Host
	replicasPerKernel int
	agg               aggregates
	// notifier is invoked after every capacity-freeing transition
	// (AddHost, or any member host's Release).
	notifier func()
}

// New returns an empty cluster with the given replication factor R.
func New(replicasPerKernel int) *Cluster {
	if replicasPerKernel <= 0 {
		replicasPerKernel = DefaultReplicasPerKernel
	}
	return &Cluster{
		hosts:             map[string]*Host{},
		replicasPerKernel: replicasPerKernel,
	}
}

// ReplicasPerKernel returns R.
func (c *Cluster) ReplicasPerKernel() int { return c.replicasPerKernel }

// SetCapacityNotifier registers fn to run after every capacity-freeing
// transition: a host joining the cluster or a member host releasing a
// commitment. The simulator points this at its capacity wait-queue so a
// saturated cluster costs O(waiters) wakeup events instead of polling.
// Must be set before the cluster is shared between goroutines.
func (c *Cluster) SetCapacityNotifier(fn func()) {
	c.mu.Lock()
	c.notifier = fn
	c.mu.Unlock()
}

func (c *Cluster) capacityFreed() {
	c.mu.Lock()
	fn := c.notifier
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// AddHost adds a host; the ID must be unique.
func (c *Cluster) AddHost(h *Host) error {
	c.mu.Lock()
	if _, ok := c.hosts[h.ID]; ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: host %s already present", h.ID)
	}
	c.hosts[h.ID] = h
	c.list = append(append(make([]*Host, 0, len(c.list)+1), c.list...), h)
	c.mu.Unlock()
	h.attach(&c.agg, c.capacityFreed)
	c.capacityFreed()
	return nil
}

// RemoveHost removes a host; it must have no subscribed replicas.
func (c *Cluster) RemoveHost(id string) error {
	c.mu.Lock()
	h, ok := c.hosts[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: host %s not present", id)
	}
	if n := h.NumReplicas(); n > 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: host %s still has %d replicas", id, n)
	}
	delete(c.hosts, id)
	list := make([]*Host, 0, len(c.list)-1)
	for _, lh := range c.list {
		if lh != h {
			list = append(list, lh)
		}
	}
	c.list = list
	c.mu.Unlock()
	h.detach()
	return nil
}

// CrashHost forcibly removes a host, replicas and commitments included —
// the fault-injection path (hardware failure, outage window). detach
// subtracts the host's subscribed and committed contributions from the
// cluster aggregates in one step, so the counters stay consistent even
// though the dead host still carries replica subscriptions; a later
// RemoveReplica or Release against the detached host is harmless (its
// aggregate hooks are membership-gated). No capacity notification fires:
// a crash only removes capacity.
func (c *Cluster) CrashHost(id string) error {
	c.mu.Lock()
	h, ok := c.hosts[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: host %s not present", id)
	}
	delete(c.hosts, id)
	list := make([]*Host, 0, len(c.list)-1)
	for _, lh := range c.list {
		if lh != h {
			list = append(list, lh)
		}
	}
	c.list = list
	c.mu.Unlock()
	h.detach()
	return nil
}

// Host returns a host by ID.
func (c *Cluster) Host(id string) (*Host, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[id]
	return h, ok
}

// Hosts returns a copy of all hosts in insertion order. Prefer ForEachHost
// in hot paths: it does not allocate.
func (c *Cluster) Hosts() []*Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Host, len(c.list))
	copy(out, c.list)
	return out
}

// ForEachHost calls fn for every host in insertion order until fn returns
// false. It iterates a membership snapshot without allocating, so fn may
// add or remove hosts (the iteration still sees the snapshot).
func (c *Cluster) ForEachHost(fn func(*Host) bool) {
	c.mu.Lock()
	list := c.list
	c.mu.Unlock()
	for _, h := range list {
		if !fn(h) {
			return
		}
	}
}

// NumHosts returns the number of hosts.
func (c *Cluster) NumHosts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hosts)
}

// TotalGPUs returns the cluster GPU capacity (sum of G). O(1): maintained
// incrementally on AddHost/RemoveHost.
func (c *Cluster) TotalGPUs() int {
	return int(c.agg.totalGPUs.Load())
}

// SubscribedGPUs returns the cluster-wide subscribed GPU count (sum of S).
// O(1): maintained incrementally on PlaceReplica/RemoveReplica.
func (c *Cluster) SubscribedGPUs() int {
	return int(c.agg.subscribedGPUs.Load())
}

// CommittedGPUs returns the GPUs actively committed to executing replicas
// across the cluster (sum of C in the auto-scaler formula, §3.4.2). O(1):
// maintained incrementally on Commit/Release.
func (c *Cluster) CommittedGPUs() int {
	return int(c.agg.committedGPUs.Load())
}

// SRLimit returns the dynamic cluster-wide subscription-ratio limit
// (paper §3.4.1): sum(S) / (sum(G) * R). A host whose SR would exceed this
// limit after a placement is rejected.
func (c *Cluster) SRLimit() float64 {
	g := c.TotalGPUs()
	if g == 0 {
		return 0
	}
	return float64(c.SubscribedGPUs()) / float64(g*c.replicasPerKernel)
}

// ClusterSR returns the current cluster-wide subscription ratio, which by
// construction equals SRLimit (the limit tracks the live ratio).
func (c *Cluster) ClusterSR() float64 { return c.SRLimit() }
