// Package cluster models the GPU server cluster NotebookOS schedules over:
// hosts with fixed capacities, the replicas subscribed to each host, the
// resources exclusively committed during cell execution, and the
// subscription-ratio (SR) arithmetic of paper §3.4.1. Both the live
// schedulers (internal/scheduler) and the discrete-event simulator
// (internal/sim) operate on this state, so placement decisions cannot
// drift between the two.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"notebookos/internal/gpu"
	"notebookos/internal/resources"
)

// DefaultReplicasPerKernel is R in the SR formula: each distributed kernel
// has three replicas (§3.1; R=5 costs too much, R=2 is unsupported by Raft).
const DefaultReplicasPerKernel = 3

// Host is one GPU server.
type Host struct {
	ID       string
	Capacity resources.Spec

	// Committed tracks exclusive bindings during cell execution.
	committed *resources.Pool
	// Devices tracks per-device GPU allocation.
	Devices *gpu.Pool

	mu         sync.Mutex
	subscribed resources.Spec
	replicas   map[string]resources.Spec
}

// NewHost returns a host with the given capacity.
func NewHost(id string, capacity resources.Spec) *Host {
	return &Host{
		ID:        id,
		Capacity:  capacity,
		committed: resources.NewPool(capacity),
		Devices:   gpu.NewPool(id, capacity.GPUs),
		replicas:  map[string]resources.Spec{},
	}
}

// PlaceReplica subscribes a kernel replica's resource request on the host.
// Subscription does not commit resources (paper §3.2.1: "resources are not
// exclusively committed... the kernel replicas subscribe to the requested
// resources").
func (h *Host) PlaceReplica(replicaID string, req resources.Spec) error {
	if err := req.Validate(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.replicas[replicaID]; ok {
		return fmt.Errorf("cluster: replica %s already on host %s", replicaID, h.ID)
	}
	h.replicas[replicaID] = req
	h.subscribed = h.subscribed.Add(req)
	return nil
}

// RemoveReplica unsubscribes a replica (kernel shutdown or migration).
func (h *Host) RemoveReplica(replicaID string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	req, ok := h.replicas[replicaID]
	if !ok {
		return fmt.Errorf("cluster: replica %s not on host %s", replicaID, h.ID)
	}
	delete(h.replicas, replicaID)
	h.subscribed = h.subscribed.Sub(req)
	return nil
}

// HasReplica reports whether the replica is subscribed on this host.
func (h *Host) HasReplica(replicaID string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.replicas[replicaID]
	return ok
}

// ReplicaRequest returns the subscribed request of a replica.
func (h *Host) ReplicaRequest(replicaID string) (resources.Spec, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	req, ok := h.replicas[replicaID]
	return req, ok
}

// Replicas returns the IDs of replicas subscribed on the host, sorted.
func (h *Host) Replicas() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.replicas))
	for id := range h.replicas {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NumReplicas returns the number of subscribed replicas.
func (h *Host) NumReplicas() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.replicas)
}

// Subscribed returns the sum of subscribed resource requests.
func (h *Host) Subscribed() resources.Spec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subscribed
}

// SubscriptionRatio returns S/(G*R) for this host (paper §3.4.1), where S
// is subscribed GPUs, G the host's GPU count, and R replicas per kernel.
func (h *Host) SubscriptionRatio(replicasPerKernel int) float64 {
	h.mu.Lock()
	s := h.subscribed.GPUs
	h.mu.Unlock()
	g := h.Capacity.GPUs
	if g == 0 || replicasPerKernel == 0 {
		return 0
	}
	return float64(s) / float64(g*replicasPerKernel)
}

// Commit exclusively binds req to holder for the duration of a cell
// execution (dynamic GPU binding, §3.3).
func (h *Host) Commit(holder string, req resources.Spec) error {
	return h.committed.Commit(holder, req)
}

// Release returns holder's committed resources.
func (h *Host) Release(holder string) error {
	return h.committed.Release(holder)
}

// CanCommit reports whether req fits the host's currently idle capacity.
func (h *Host) CanCommit(req resources.Spec) bool {
	return h.committed.CanCommit(req)
}

// Committed returns the resources currently exclusively bound.
func (h *Host) Committed() resources.Spec {
	return h.committed.Committed()
}

// IdleGPUs returns GPUs not exclusively committed right now.
func (h *Host) IdleGPUs() int {
	return h.Capacity.GPUs - h.committed.Committed().GPUs
}

// Cluster is the set of hosts plus cluster-wide SR accounting.
type Cluster struct {
	mu                sync.Mutex
	hosts             map[string]*Host
	order             []string // host IDs in insertion order
	replicasPerKernel int
}

// New returns an empty cluster with the given replication factor R.
func New(replicasPerKernel int) *Cluster {
	if replicasPerKernel <= 0 {
		replicasPerKernel = DefaultReplicasPerKernel
	}
	return &Cluster{
		hosts:             map[string]*Host{},
		replicasPerKernel: replicasPerKernel,
	}
}

// ReplicasPerKernel returns R.
func (c *Cluster) ReplicasPerKernel() int { return c.replicasPerKernel }

// AddHost adds a host; the ID must be unique.
func (c *Cluster) AddHost(h *Host) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.hosts[h.ID]; ok {
		return fmt.Errorf("cluster: host %s already present", h.ID)
	}
	c.hosts[h.ID] = h
	c.order = append(c.order, h.ID)
	return nil
}

// RemoveHost removes a host; it must have no subscribed replicas.
func (c *Cluster) RemoveHost(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[id]
	if !ok {
		return fmt.Errorf("cluster: host %s not present", id)
	}
	if h.NumReplicas() > 0 {
		return fmt.Errorf("cluster: host %s still has %d replicas", id, h.NumReplicas())
	}
	delete(c.hosts, id)
	for i, hid := range c.order {
		if hid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// Host returns a host by ID.
func (c *Cluster) Host(id string) (*Host, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[id]
	return h, ok
}

// Hosts returns all hosts in insertion order.
func (c *Cluster) Hosts() []*Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Host, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.hosts[id])
	}
	return out
}

// NumHosts returns the number of hosts.
func (c *Cluster) NumHosts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hosts)
}

// TotalGPUs returns the cluster GPU capacity (sum of G).
func (c *Cluster) TotalGPUs() int {
	total := 0
	for _, h := range c.Hosts() {
		total += h.Capacity.GPUs
	}
	return total
}

// SubscribedGPUs returns the cluster-wide subscribed GPU count (sum of S).
func (c *Cluster) SubscribedGPUs() int {
	total := 0
	for _, h := range c.Hosts() {
		total += h.Subscribed().GPUs
	}
	return total
}

// CommittedGPUs returns the GPUs actively committed to executing replicas
// across the cluster (sum of C in the auto-scaler formula, §3.4.2).
func (c *Cluster) CommittedGPUs() int {
	total := 0
	for _, h := range c.Hosts() {
		total += h.Committed().GPUs
	}
	return total
}

// SRLimit returns the dynamic cluster-wide subscription-ratio limit
// (paper §3.4.1): sum(S) / (sum(G) * R). A host whose SR would exceed this
// limit after a placement is rejected.
func (c *Cluster) SRLimit() float64 {
	g := c.TotalGPUs()
	if g == 0 {
		return 0
	}
	return float64(c.SubscribedGPUs()) / float64(g*c.replicasPerKernel)
}

// ClusterSR returns the current cluster-wide subscription ratio, which by
// construction equals SRLimit (the limit tracks the live ratio).
func (c *Cluster) ClusterSR() float64 { return c.SRLimit() }
