// Package simclock abstracts time so the live platform runs on the wall
// clock while tests and the simulator run on a virtual clock that can be
// advanced deterministically. Evaluation workloads span 17.5 hours to 90
// days (paper §5), so virtual time is essential for fast reproduction.
package simclock
