package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(90 * time.Second)
	if got := v.Now().Sub(epoch); got != 90*time.Second {
		t.Fatalf("advanced %v, want 90s", got)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	c1 := v.After(10 * time.Second)
	c2 := v.After(5 * time.Second)
	v.Advance(7 * time.Second)
	select {
	case at := <-c2:
		if got := at.Sub(epoch); got != 5*time.Second {
			t.Fatalf("c2 fired at +%v, want +5s", got)
		}
	default:
		t.Fatal("c2 should have fired")
	}
	select {
	case <-c1:
		t.Fatal("c1 must not fire yet")
	default:
	}
	v.Advance(5 * time.Second)
	select {
	case <-c1:
	default:
		t.Fatal("c1 should have fired after 12s total")
	}
	if v.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", v.PendingTimers())
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(-1s) should fire immediately")
	}
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Hour)
	v.AdvanceTo(epoch) // in the past: ignored
	if got := v.Now().Sub(epoch); got != time.Hour {
		t.Fatalf("Now moved backwards: +%v", got)
	}
}

func TestVirtualSleepUnblocks(t *testing.T) {
	v := NewVirtual(epoch)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(time.Minute)
		close(done)
	}()
	// Let the sleeper register its timer before advancing.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(2 * time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep never unblocked")
	}
	wg.Wait()
}

func TestVirtualTiesFireFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	c1 := v.After(time.Second)
	c2 := v.After(time.Second)
	v.Advance(time.Second)
	at1 := <-c1
	at2 := <-c2
	if !at1.Equal(at2) {
		t.Fatalf("tie deadlines differ: %v vs %v", at1, at2)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now is unreasonable")
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("Real.Sleep returned too early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
