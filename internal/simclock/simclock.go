package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used across NotebookOS.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced Clock. Time only moves when Advance (or
// AdvanceTo) is called; pending timers whose deadlines are reached fire in
// deadline order. Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    int64
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 and is
// delivered to (never closed) when virtual time passes the deadline.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.timers, &timer{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks the calling goroutine until another
// goroutine advances the clock past the deadline.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves virtual time forward by d, firing due timers in order.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves virtual time to t (no-op if t is in the past), firing due
// timers in deadline order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return
	}
	for len(v.timers) > 0 && !v.timers[0].at.After(t) {
		tm := heap.Pop(&v.timers).(*timer)
		v.now = tm.at
		tm.ch <- tm.at
	}
	v.now = t
}

// PendingTimers returns the number of timers not yet fired.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

type timer struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
