package federation

import (
	"fmt"
	"sync"
	"time"

	"notebookos/internal/cluster"
)

// Member is one cluster of a federation.
type Member struct {
	// Index is the member's position in the federation (0-based); route
	// policies use it for deterministic tie-breaking.
	Index int
	// Name identifies the cluster in experiment output ("us-west", ...).
	Name string
	// Cluster is the member's host inventory and SR accounting.
	Cluster *cluster.Cluster
}

// Federation is a set of member clusters sharing one scheduling tier.
type Federation struct {
	mu      sync.Mutex
	members []*Member
	// penalty is the symmetric inter-cluster latency penalty (zero within
	// a cluster), the fallback when no latency matrix is installed.
	penalty time.Duration
	// matrix, when non-nil, answers Penalty per ordered pair.
	matrix LatencyMatrix
	// notifier receives the fan-in of every member's capacity notifier.
	notifier func()
	// extras, when non-nil, supplies the scheduler-level RoutingSnapshot
	// fields (queue depth, retirable hosts); read without locking under the
	// same set-before-share contract as matrix.
	extras SnapshotExtras
	// penaltyScale multiplies every non-zero Penalty while a
	// network-degradation episode is active (sim fault injection). 0 (the
	// zero value) and 1 both mean undegraded; read without locking —
	// mutations come only from the single-threaded simulation event loop
	// that also performs every read.
	penaltyScale float64
}

// New returns an empty federation with the given symmetric inter-cluster
// penalty. Install a per-pair LatencyMatrix with SetLatencyMatrix to
// replace the single penalty.
func New(interClusterPenalty time.Duration) *Federation {
	return &Federation{penalty: interClusterPenalty}
}

// SetLatencyMatrix installs a per-pair latency matrix; Penalty then
// answers from it instead of the symmetric penalty. The matrix must cover
// every current member (AddMember re-checks for members added later, so
// an undersized matrix fails loudly instead of silently making crossings
// free). Like AddMember, call before the federation is shared between
// goroutines — Penalty reads the matrix without locking.
func (f *Federation) SetLatencyMatrix(m LatencyMatrix) error {
	if err := m.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m != nil && m.Size() < len(f.members) {
		return fmt.Errorf("federation: latency matrix covers %d members, federation has %d",
			m.Size(), len(f.members))
	}
	f.matrix = m
	return nil
}

// LatencyMatrix returns the installed matrix (nil when the federation uses
// the symmetric penalty).
func (f *Federation) LatencyMatrix() LatencyMatrix {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.matrix
}

// AddMember adds a cluster to the federation and wires its capacity
// notifier into the federation's fan-in. The member's previous notifier,
// if any, is replaced. Must be called before the federation is shared
// between goroutines.
func (f *Federation) AddMember(name string, c *cluster.Cluster) (*Member, error) {
	if c == nil {
		return nil, fmt.Errorf("federation: nil cluster %q", name)
	}
	f.mu.Lock()
	for _, m := range f.members {
		if m.Name == name {
			f.mu.Unlock()
			return nil, fmt.Errorf("federation: member %q already present", name)
		}
	}
	if f.matrix != nil && f.matrix.Size() < len(f.members)+1 {
		f.mu.Unlock()
		return nil, fmt.Errorf("federation: latency matrix covers %d members, cannot add member %d",
			f.matrix.Size(), len(f.members)+1)
	}
	m := &Member{Index: len(f.members), Name: name, Cluster: c}
	f.members = append(f.members, m)
	f.mu.Unlock()
	c.SetCapacityNotifier(f.capacityFreed)
	return m, nil
}

// capacityFreed forwards any member's capacity-freeing transition to the
// federation-level notifier.
func (f *Federation) capacityFreed() {
	f.mu.Lock()
	fn := f.notifier
	f.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// SetSnapshotExtras installs the callback that fills a RoutingSnapshot's
// scheduler-level fields (capacity wait-queue depth and retirable-host
// count per member). Like SetLatencyMatrix's matrix, the callback is read
// without locking by Snapshot — install it before the federation is
// shared between goroutines.
func (f *Federation) SetSnapshotExtras(fn SnapshotExtras) {
	f.mu.Lock()
	f.extras = fn
	f.mu.Unlock()
}

// SetCapacityNotifier registers fn to run whenever any member cluster
// frees capacity (a host Release or AddHost in that cluster). The
// federated simulator points this at its capacity wait-queue, so work
// blocked on a saturated cluster wakes when any cluster frees capacity.
func (f *Federation) SetCapacityNotifier(fn func()) {
	f.mu.Lock()
	f.notifier = fn
	f.mu.Unlock()
}

// Members returns the member list in index order. The returned slice is a
// copy; the *Member values are shared.
func (f *Federation) Members() []*Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Member(nil), f.members...)
}

// AppendMembers appends the member list in index order to buf and returns
// it — Members for callers that reuse a buffer and cannot afford the
// per-call copy allocation.
func (f *Federation) AppendMembers(buf []*Member) []*Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append(buf, f.members...)
}

// Member returns the member at index i.
func (f *Federation) Member(i int) (*Member, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.members) {
		return nil, false
	}
	return f.members[i], true
}

// NumMembers returns the number of member clusters.
func (f *Federation) NumMembers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Penalty returns the one-way inter-cluster latency cost of a crossing
// from member i to member j: zero when i == j, the matrix pair cost when a
// LatencyMatrix is installed, the configured symmetric penalty otherwise.
func (f *Federation) Penalty(i, j int) time.Duration {
	if i == j {
		return 0
	}
	p := f.penalty
	if f.matrix != nil {
		p = f.matrix.Penalty(i, j)
	}
	if s := f.penaltyScale; s > 0 && s != 1 {
		p = time.Duration(float64(p) * s)
	}
	return p
}

// SetPenaltyScale sets the multiplier applied to every non-zero Penalty —
// the fault layer's network-degradation choke point (trace.DegradeSpec).
// Scale <= 0 or 1 restores the undegraded matrix. Penalty reads the scale
// without locking, so callers must mutate it only from the goroutine that
// also performs the reads (the simulation event loop).
func (f *Federation) SetPenaltyScale(scale float64) {
	f.penaltyScale = scale
}

// RoundTrip returns the cost of crossing from member i to member j and
// back: Penalty(i, j) + Penalty(j, i), which differs from 2×Penalty(i, j)
// when an asymmetric latency matrix is installed. This is the charge for
// a remote execution's request/reply pair and for a cross-cluster
// migration's persist/restore checkpoint transfer.
func (f *Federation) RoundTrip(i, j int) time.Duration {
	return f.Penalty(i, j) + f.Penalty(j, i)
}

// TotalGPUs returns the federation-wide GPU capacity: the sum of the
// members' O(1) counters, so the read is O(members) with no host scans.
func (f *Federation) TotalGPUs() int {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	n := 0
	for _, m := range members {
		n += m.Cluster.TotalGPUs()
	}
	return n
}

// SubscribedGPUs returns the federation-wide subscribed GPU count.
func (f *Federation) SubscribedGPUs() int {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	n := 0
	for _, m := range members {
		n += m.Cluster.SubscribedGPUs()
	}
	return n
}

// CommittedGPUs returns the federation-wide actively-committed GPU count.
func (f *Federation) CommittedGPUs() int {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	n := 0
	for _, m := range members {
		n += m.Cluster.CommittedGPUs()
	}
	return n
}

// NumHosts returns the federation-wide host count.
func (f *Federation) NumHosts() int {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	n := 0
	for _, m := range members {
		n += m.Cluster.NumHosts()
	}
	return n
}

// SR returns the federation-wide subscription ratio, computed the same way
// as a single cluster's dynamic SR limit: sum(S) / (sum(G) * R), with R
// taken from the first member (members share a replication factor).
func (f *Federation) SR() float64 {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	if len(members) == 0 {
		return 0
	}
	g := 0
	s := 0
	for _, m := range members {
		g += m.Cluster.TotalGPUs()
		s += m.Cluster.SubscribedGPUs()
	}
	r := members[0].Cluster.ReplicasPerKernel()
	if g == 0 || r == 0 {
		return 0
	}
	return float64(s) / float64(g*r)
}
