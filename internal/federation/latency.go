package federation

import (
	"fmt"
	"time"
)

// LatencyMatrix is the one-way inter-cluster latency between every ordered
// pair of member clusters: m[i][j] is the cost of one crossing from member
// i to member j. The diagonal is zero (no cost within a cluster). The
// generators below all produce symmetric matrices, but the type permits
// asymmetric ones (e.g. measured RTT halves that differ by direction).
//
// A federation carrying a matrix answers Penalty(i, j) from it instead of
// the legacy single symmetric penalty, so everything built on Penalty —
// the LatencyAware route policy, the federated simulator's remote-execution
// and cross-migration crossing charges, and Deployment.CrossingCost — pays
// the actual pair cost.
type LatencyMatrix [][]time.Duration

// Size returns the member count the matrix covers.
func (m LatencyMatrix) Size() int { return len(m) }

// Validate rejects ragged matrices: every row must have exactly Size()
// entries. Penalty treats a missing entry as a free crossing, so
// installers (SetLatencyMatrix, the simulator's config validation) call
// this to fail loudly instead of silently zeroing some pair costs.
func (m LatencyMatrix) Validate() error {
	for i, row := range m {
		if len(row) != len(m) {
			return fmt.Errorf("federation: latency matrix row %d has %d entries, want %d",
				i, len(row), len(m))
		}
	}
	return nil
}

// Penalty returns the one-way cost of crossing from member i to member j;
// zero within a cluster or for out-of-range indexes.
func (m LatencyMatrix) Penalty(i, j int) time.Duration {
	if i == j || i < 0 || j < 0 || i >= len(m) || j >= len(m[i]) {
		return 0
	}
	return m[i][j]
}

// MaxPenalty returns the largest pair cost in the matrix.
func (m LatencyMatrix) MaxPenalty() time.Duration {
	var max time.Duration
	for _, row := range m {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// newMatrix allocates an n×n zero matrix.
func newMatrix(n int) LatencyMatrix {
	if n < 0 {
		n = 0
	}
	m := make(LatencyMatrix, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
	}
	return m
}

// UniformMatrix returns the matrix equivalent of the legacy symmetric
// penalty: every distinct pair costs d.
func UniformMatrix(n int, d time.Duration) LatencyMatrix {
	m := newMatrix(n)
	for i := range m {
		for j := range m[i] {
			if i != j {
				m[i][j] = d
			}
		}
	}
	return m
}

// HubSpokeMatrix models a hub-and-spoke topology (one well-connected
// region, the rest peering through it): hub↔spoke crossings cost spoke,
// spoke↔spoke crossings cost 2×spoke (the traffic transits the hub). An
// out-of-range hub index defaults to member 0.
func HubSpokeMatrix(n, hub int, spoke time.Duration) LatencyMatrix {
	if hub < 0 || hub >= n {
		hub = 0
	}
	m := newMatrix(n)
	for i := range m {
		for j := range m[i] {
			switch {
			case i == j:
			case i == hub || j == hub:
				m[i][j] = spoke
			default:
				m[i][j] = 2 * spoke
			}
		}
	}
	return m
}

// GeoBandedMatrix models members laid out in geographic bands (member i
// belongs to band i/bandSize): two distinct members pay near plus step for
// every band boundary between them, so same-band neighbours are cheap and
// the cost grows linearly with geographic distance. bandSize below 1 is
// treated as 1 (every member its own band).
func GeoBandedMatrix(n, bandSize int, near, step time.Duration) LatencyMatrix {
	if bandSize < 1 {
		bandSize = 1
	}
	m := newMatrix(n)
	for i := range m {
		for j := range m[i] {
			if i == j {
				continue
			}
			bi, bj := i/bandSize, j/bandSize
			dist := bi - bj
			if dist < 0 {
				dist = -dist
			}
			m[i][j] = near + time.Duration(dist)*step
		}
	}
	return m
}
