package federation

import "sort"

// RoutePolicy ranks member clusters for a placement (session creation,
// task re-commit, or replica migration) originating at a session's home
// cluster. Order must be deterministic for a given federation state:
// federated simulations replay bit-for-bit only if cluster ranking does.
type RoutePolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Order returns every member index in preference order for work homed
	// at member home. Callers try members in this order and skip those
	// that cannot serve the request.
	//
	// scratch, when non-nil, provides the buffers the ranking is built in:
	// the returned slice aliases scratch and is valid only until the next
	// Order call with the same scratch. Hot paths that rank on every task
	// (the federated simulator routes hundreds of thousands of placements
	// per run) pass a per-caller scratch and never allocate; one-shot or
	// concurrent callers pass nil and get a fresh slice. A scratch must not
	// be shared across goroutines.
	Order(f *Federation, home int, scratch *RouteScratch) []int
}

// RouteScratch holds the reusable buffers a RoutePolicy ranks in — the
// index permutation, the per-member scores, and the sort.Interface state —
// so repeated Order calls on a hot path allocate nothing after the first.
// The zero value is ready to use.
type RouteScratch struct {
	sorter  scoreSorter
	members []*Member
	snaps   []RoutingSnapshot
}

// grow readies the scratch for n members and returns the index slice.
func (s *RouteScratch) grow(n int) []int {
	if cap(s.sorter.idx) < n {
		s.sorter.idx = make([]int, n)
		s.sorter.vals = make([]float64, n)
	}
	s.sorter.idx = s.sorter.idx[:n]
	s.sorter.vals = s.sorter.vals[:n]
	return s.sorter.idx
}

// growSnaps readies the scratch's snapshot buffer for n members.
func (s *RouteScratch) growSnaps(n int) []RoutingSnapshot {
	if cap(s.snaps) < n {
		s.snaps = make([]RoutingSnapshot, n)
	}
	s.snaps = s.snaps[:n]
	return s.snaps
}

// scoreSorter is the stable sort.Interface behind orderByScore. Sorting
// through a *scoreSorter held inside a RouteScratch keeps sort.Stable
// allocation-free: the interface value is a pointer to long-lived state,
// unlike sort.SliceStable's per-call closure.
type scoreSorter struct {
	idx  []int
	vals []float64
	home int
}

func (s *scoreSorter) Len() int      { return len(s.idx) }
func (s *scoreSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *scoreSorter) Less(a, b int) bool {
	i, j := s.idx[a], s.idx[b]
	if s.vals[i] != s.vals[j] {
		return s.vals[i] < s.vals[j]
	}
	if (i == s.home) != (j == s.home) {
		return i == s.home
	}
	return i < j
}

// LocalFirst routes to the home cluster first and only spills to other
// clusters (in index order) when the home cluster cannot serve — the
// conservative default that minimizes cross-cluster traffic.
type LocalFirst struct{}

// Name implements RoutePolicy.
func (LocalFirst) Name() string { return "local-first" }

// Order implements RoutePolicy.
func (LocalFirst) Order(f *Federation, home int, scratch *RouteScratch) []int {
	if scratch == nil {
		scratch = &RouteScratch{}
	}
	n := f.NumMembers()
	out := scratch.grow(n)[:0]
	if home >= 0 && home < n {
		out = append(out, home)
	}
	for i := 0; i < n; i++ {
		if i != home {
			out = append(out, i)
		}
	}
	return out
}

// LeastSubscribed routes to the member with the lowest subscription ratio,
// ignoring locality — a pure load-balancing policy. Ties prefer the home
// cluster, then the lower member index.
type LeastSubscribed struct{}

// Name implements RoutePolicy.
func (LeastSubscribed) Name() string { return "least-subscribed" }

// Order implements RoutePolicy.
func (LeastSubscribed) Order(f *Federation, home int, scratch *RouteScratch) []int {
	return orderByScore(f, home, scratch, func(m *Member) float64 {
		return clusterSR(m)
	})
}

// LatencyAware trades load balance against the inter-cluster crossing
// cost: a remote cluster is preferred only when its subscription ratio
// undercuts the home cluster's by more than the crossing is worth. The
// score is
//
//	SR(cluster) + Weight × RoundTrip(home, cluster)/2 per second
//
// — the average one-way cost, which equals Penalty(home, cluster) for
// symmetric matrices and stays consistent with what remote executions
// actually pay (the round trip) when an asymmetric matrix is installed.
// With the default weight, a 100 ms crossing costs 0.5 SR points —
// remote clusters need substantially more headroom to win.
type LatencyAware struct {
	// Weight converts one second of inter-cluster penalty into
	// subscription-ratio points. Zero or negative selects
	// DefaultLatencyWeight; to ignore latency entirely use
	// LeastSubscribed instead (it is exactly the Weight→0 limit).
	Weight float64
}

// DefaultLatencyWeight is LatencyAware's default SR-points-per-second.
const DefaultLatencyWeight = 5.0

// Name implements RoutePolicy.
func (LatencyAware) Name() string { return "latency-aware" }

// Order implements RoutePolicy.
func (p LatencyAware) Order(f *Federation, home int, scratch *RouteScratch) []int {
	w := p.Weight
	if w <= 0 {
		w = DefaultLatencyWeight
	}
	return orderByScore(f, home, scratch, func(m *Member) float64 {
		return clusterSR(m) + w*f.RoundTrip(home, m.Index).Seconds()/2
	})
}

// clusterSR is a member's current subscription ratio (sum of subscribed
// GPUs over G×R), the load signal the balancing policies rank on.
func clusterSR(m *Member) float64 {
	g := m.Cluster.TotalGPUs()
	r := m.Cluster.ReplicasPerKernel()
	if g == 0 || r == 0 {
		return 0
	}
	return float64(m.Cluster.SubscribedGPUs()) / float64(g*r)
}

// orderByScore sorts member indexes by ascending score with deterministic
// tie-breaking: home first, then lower index. The result lives in scratch
// (a fresh one when nil).
func orderByScore(f *Federation, home int, scratch *RouteScratch, score func(*Member) float64) []int {
	if scratch == nil {
		scratch = &RouteScratch{}
	}
	scratch.members = f.AppendMembers(scratch.members[:0])
	members := scratch.members
	out := scratch.grow(len(members))
	for i, m := range members {
		out[i] = i
		scratch.sorter.vals[i] = score(m)
	}
	scratch.sorter.home = home
	sort.Stable(&scratch.sorter)
	return out
}
