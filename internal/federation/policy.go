package federation

import "sort"

// RoutePolicy ranks member clusters for a placement (session creation,
// task re-commit, or replica migration) originating at a session's home
// cluster. Order must be deterministic for a given federation state:
// federated simulations replay bit-for-bit only if cluster ranking does.
type RoutePolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Order returns every member index in preference order for work homed
	// at member home. Callers try members in this order and skip those
	// that cannot serve the request.
	Order(f *Federation, home int) []int
}

// LocalFirst routes to the home cluster first and only spills to other
// clusters (in index order) when the home cluster cannot serve — the
// conservative default that minimizes cross-cluster traffic.
type LocalFirst struct{}

// Name implements RoutePolicy.
func (LocalFirst) Name() string { return "local-first" }

// Order implements RoutePolicy.
func (LocalFirst) Order(f *Federation, home int) []int {
	n := f.NumMembers()
	out := make([]int, 0, n)
	if home >= 0 && home < n {
		out = append(out, home)
	}
	for i := 0; i < n; i++ {
		if i != home {
			out = append(out, i)
		}
	}
	return out
}

// LeastSubscribed routes to the member with the lowest subscription ratio,
// ignoring locality — a pure load-balancing policy. Ties prefer the home
// cluster, then the lower member index.
type LeastSubscribed struct{}

// Name implements RoutePolicy.
func (LeastSubscribed) Name() string { return "least-subscribed" }

// Order implements RoutePolicy.
func (LeastSubscribed) Order(f *Federation, home int) []int {
	return orderByScore(f, home, func(m *Member) float64 {
		return clusterSR(m)
	})
}

// LatencyAware trades load balance against the inter-cluster crossing
// cost: a remote cluster is preferred only when its subscription ratio
// undercuts the home cluster's by more than the crossing is worth. The
// score is
//
//	SR(cluster) + Weight × RoundTrip(home, cluster)/2 per second
//
// — the average one-way cost, which equals Penalty(home, cluster) for
// symmetric matrices and stays consistent with what remote executions
// actually pay (the round trip) when an asymmetric matrix is installed.
// With the default weight, a 100 ms crossing costs 0.5 SR points —
// remote clusters need substantially more headroom to win.
type LatencyAware struct {
	// Weight converts one second of inter-cluster penalty into
	// subscription-ratio points. Zero or negative selects
	// DefaultLatencyWeight; to ignore latency entirely use
	// LeastSubscribed instead (it is exactly the Weight→0 limit).
	Weight float64
}

// DefaultLatencyWeight is LatencyAware's default SR-points-per-second.
const DefaultLatencyWeight = 5.0

// Name implements RoutePolicy.
func (LatencyAware) Name() string { return "latency-aware" }

// Order implements RoutePolicy.
func (p LatencyAware) Order(f *Federation, home int) []int {
	w := p.Weight
	if w <= 0 {
		w = DefaultLatencyWeight
	}
	return orderByScore(f, home, func(m *Member) float64 {
		return clusterSR(m) + w*f.RoundTrip(home, m.Index).Seconds()/2
	})
}

// clusterSR is a member's current subscription ratio (sum of subscribed
// GPUs over G×R), the load signal the balancing policies rank on.
func clusterSR(m *Member) float64 {
	g := m.Cluster.TotalGPUs()
	r := m.Cluster.ReplicasPerKernel()
	if g == 0 || r == 0 {
		return 0
	}
	return float64(m.Cluster.SubscribedGPUs()) / float64(g*r)
}

// orderByScore sorts member indexes by ascending score with deterministic
// tie-breaking: home first, then lower index.
func orderByScore(f *Federation, home int, score func(*Member) float64) []int {
	members := f.Members()
	vals := make([]float64, len(members))
	for i, m := range members {
		vals[i] = score(m)
	}
	out := make([]int, len(members))
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		i, j := out[a], out[b]
		if vals[i] != vals[j] {
			return vals[i] < vals[j]
		}
		if (i == home) != (j == home) {
			return i == home
		}
		return i < j
	})
	return out
}
